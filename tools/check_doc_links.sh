#!/usr/bin/env bash
# Dead-link check for the docs: every relative markdown link in README.md
# and docs/*.md must resolve to a file or directory in the tree. External
# (http/https/mailto) and pure-anchor links are skipped; `#section`
# fragments are stripped before the existence check. Exits non-zero listing
# every dead link, so CI can gate on it (see .github/workflows/ci.yml).
set -u

root="${1:-.}"
fail=0

for f in "$root"/README.md "$root"/docs/*.md; do
  [ -f "$f" ] || continue
  dir=$(dirname "$f")
  # Inline markdown links: the (target) half of ](target), optional title.
  while IFS= read -r target; do
    case "$target" in
      http://* | https://* | mailto:* | '#'*) continue ;;
    esac
    path="${target%%#*}"     # drop the fragment
    path="${path%% *}"       # drop an optional "title"
    [ -n "$path" ] || continue
    if [ ! -e "$dir/$path" ]; then
      echo "dead link in $f: ($target)" >&2
      fail=1
    fi
  done < <(grep -oE '\]\([^)]+\)' "$f" | sed -e 's/^](//' -e 's/)$//')
done

if [ "$fail" -ne 0 ]; then
  echo "docs link check failed" >&2
fi
exit "$fail"
