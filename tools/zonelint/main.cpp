// zonelint CLI: static trust-chain analysis over zone master files.
//
//   zonelint --root <dir>                lint every *.zone under <dir>
//   zonelint [--root <dir>] FILES        lint exactly FILES
//   zonelint --json ...                  print findings as ratchet JSON
//   --baseline FILE        diff findings against FILE (the ratchet): fresh
//                          findings fail, stale baseline entries fail
//   --update-baseline      rewrite the baseline file with current findings
//   --now UNIXTIME         enable the signature-window rules at this time
//
// The origin of each zone is derived from the file name: `par.a.com.zone`
// is parsed with $ORIGIN par.a.com. Findings map onto the dfixer_lint
// ratchet schema (rule = error-code name, severity from the analyzer's
// criticality table) so CI diffs both tools' baselines with the same logic.
#include <algorithm>
#include <cstdint>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "analyzer/errorcode.h"
#include "dfixer_lint/ratchet.h"
#include "dnscore/masterfile.h"
#include "zonelint/zonelint.h"

namespace fs = std::filesystem;
using dfx::analyzer::ErrorCode;

namespace {

struct Args {
  fs::path root = fs::current_path();
  std::vector<fs::path> files;
  std::string baseline;
  bool update_baseline = false;
  bool as_json = false;
  dfx::UnixTime now = 0;
};

std::string relative_to(const fs::path& path, const fs::path& root) {
  std::error_code ec;
  const fs::path rel = fs::relative(path, root, ec);
  if (ec || rel.empty()) return path.generic_string();
  return rel.generic_string();
}

/// `par.a.com.zone` → origin `par.a.com.`; unparsable stems fall back to
/// the root origin (relative names then fail loudly in the parser).
dfx::dns::Name origin_from_filename(const fs::path& path) {
  std::string stem = path.stem().string();
  auto parsed = dfx::dns::Name::parse(stem);
  return parsed.value_or(dfx::dns::Name::root());
}

bool lint_file(const fs::path& path, const fs::path& root, dfx::UnixTime now,
               std::vector<dfx::lint::Violation>& out) {
  std::ifstream in(path);
  if (!in) {
    std::cerr << "zonelint: cannot read " << path << "\n";
    return false;
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  const dfx::dns::Name origin = origin_from_filename(path);
  auto parsed = dfx::dns::parse_master_file(buffer.str(), origin);
  if (const auto* err = std::get_if<dfx::dns::MasterFileError>(&parsed)) {
    dfx::lint::Violation v;
    v.file = relative_to(path, root);
    v.line = err->line == 0 ? 1 : err->line;
    v.rule = "unparsable-zone-file";
    v.severity = "error";
    v.excerpt = err->message;
    out.push_back(std::move(v));
    return true;
  }
  dfx::zone::Zone zone(origin);
  for (const auto& rr : std::get<std::vector<dfx::dns::ResourceRecord>>(
           std::move(parsed))) {
    zone.add(rr);
  }
  dfx::zonelint::LintOptions options;
  options.now = now;
  const dfx::zonelint::Report report = dfx::zonelint::lint_zone(zone, {},
                                                                options);
  const std::string file = relative_to(path, root);
  const auto push = [&](const dfx::zonelint::Finding& f, bool companion) {
    dfx::lint::Violation v;
    v.file = file;
    v.line = 1;  // master files carry no per-finding anchor; key on rule
    v.rule = dfx::analyzer::error_code_name(f.code);
    v.severity = companion || !dfx::analyzer::is_critical(f.code)
                     ? "warning"
                     : "error";
    v.excerpt = f.detail;
    out.push_back(std::move(v));
  };
  for (const auto& f : report.findings) push(f, false);
  for (const auto& f : report.companions) push(f, true);
  return true;
}

std::string read_file(const std::string& path, bool& ok) {
  std::ifstream in(path);
  ok = static_cast<bool>(in);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

}  // namespace

int main(int argc, char** argv) {
  Args args;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--root") {
      if (++i >= argc) {
        std::cerr << "zonelint: --root needs an argument\n";
        return 2;
      }
      args.root = argv[i];
    } else if (arg == "--baseline") {
      if (++i >= argc) {
        std::cerr << "zonelint: --baseline needs an argument\n";
        return 2;
      }
      args.baseline = argv[i];
    } else if (arg == "--update-baseline") {
      args.update_baseline = true;
    } else if (arg == "--json") {
      args.as_json = true;
    } else if (arg == "--now") {
      if (++i >= argc) {
        std::cerr << "zonelint: --now needs an argument\n";
        return 2;
      }
      args.now = static_cast<dfx::UnixTime>(std::atoll(argv[i]));
    } else if (arg == "--help" || arg == "-h") {
      std::cout << "usage: zonelint [--root DIR] [--json] [--now UNIXTIME] "
                   "[--baseline FILE] [--update-baseline] [FILES...]\n";
      return 0;
    } else {
      args.files.emplace_back(arg);
    }
  }
  if (args.update_baseline && args.baseline.empty()) {
    std::cerr << "zonelint: --update-baseline needs --baseline FILE\n";
    return 2;
  }

  if (args.files.empty()) {
    std::error_code ec;
    for (fs::recursive_directory_iterator it(args.root, ec), end;
         !ec && it != end; it.increment(ec)) {
      if (it->is_regular_file() && it->path().extension() == ".zone") {
        args.files.push_back(it->path());
      }
    }
    std::sort(args.files.begin(), args.files.end());
  }

  std::vector<dfx::lint::Violation> findings;
  for (const auto& file : args.files) {
    if (!lint_file(file, args.root, args.now, findings)) return 2;
  }

  if (args.as_json) {
    std::cout << dfx::lint::findings_to_json(findings, "zonelint");
  }

  if (args.baseline.empty()) {
    for (const auto& v : findings) {
      if (!args.as_json) {
        std::cout << v.file << ":" << v.line << ": " << v.severity << " ["
                  << v.rule << "] " << v.excerpt << "\n";
      }
    }
    return findings.empty() ? 0 : 1;
  }

  if (args.update_baseline) {
    std::ofstream out(args.baseline);
    if (!out) {
      std::cerr << "zonelint: cannot write " << args.baseline << "\n";
      return 2;
    }
    out << dfx::lint::findings_to_json(findings, "zonelint");
    std::cout << "zonelint: baseline updated (" << findings.size()
              << " findings)\n";
    return 0;
  }

  bool ok = false;
  const std::string text = read_file(args.baseline, ok);
  if (!ok) {
    std::cerr << "zonelint: cannot read baseline " << args.baseline << "\n";
    return 2;
  }
  std::string error;
  auto baseline = dfx::lint::findings_from_json(text, &error);
  if (!baseline.has_value()) {
    std::cerr << "zonelint: bad baseline: " << error << "\n";
    return 2;
  }
  const auto diff = dfx::lint::ratchet_diff(findings, *baseline);
  for (const auto& v : diff.fresh) {
    std::cout << "fresh: " << v.file << ":" << v.line << " [" << v.rule
              << "] " << v.excerpt << "\n";
  }
  for (const auto& v : diff.stale) {
    std::cout << "stale: " << v.file << ":" << v.line << " [" << v.rule
              << "] (baseline entry no longer found — prune it)\n";
  }
  if (!diff.clean()) {
    std::cout << "zonelint: ratchet violated (" << diff.fresh.size()
              << " fresh, " << diff.stale.size() << " stale)\n";
    return 1;
  }
  std::cout << "zonelint: clean against baseline (" << findings.size()
            << " findings)\n";
  return 0;
}
