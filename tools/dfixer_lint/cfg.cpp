#include "dfixer_lint/cfg.h"

#include <set>
#include <string_view>
#include <utility>

namespace dfx::lint {
namespace {

constexpr std::size_t kNone = static_cast<std::size_t>(-1);

bool text_is(const std::vector<Token>& t, std::size_t i, std::string_view s) {
  return i < t.size() && t[i].text == s;
}

bool is_open(std::string_view s) { return s == "(" || s == "[" || s == "{"; }
bool is_close(std::string_view s) { return s == ")" || s == "]" || s == "}"; }

// Index of the closer matching the opener at `i`, or kNone. All three
// bracket kinds count toward one depth, so a lambda body inside an argument
// list never terminates the scan early.
std::size_t match_bracket(const std::vector<Token>& t, std::size_t i,
                          std::size_t limit) {
  int depth = 0;
  for (std::size_t j = i; j < limit; ++j) {
    const std::string_view s = t[j].text;
    if (is_open(s)) {
      ++depth;
    } else if (is_close(s)) {
      if (--depth == 0) return j;
      if (depth < 0) return kNone;
    }
  }
  return kNone;
}

// First occurrence of `what` at bracket depth 0 within [b, e), or kNone.
std::size_t find_top(const std::vector<Token>& t, std::size_t b, std::size_t e,
                     std::string_view what) {
  int depth = 0;
  for (std::size_t j = b; j < e; ++j) {
    const std::string_view s = t[j].text;
    if (is_open(s)) {
      ++depth;
    } else if (is_close(s)) {
      --depth;
    } else if (depth == 0 && s == what) {
      return j;
    }
  }
  return kNone;
}

bool is_control_keyword(std::string_view s) {
  static const std::set<std::string_view> kControl = {
      "if",     "else",    "while",  "for",      "do",        "switch",
      "case",   "default", "return", "break",    "continue",  "goto",
      "throw",  "try",     "catch",  "operator", "sizeof",    "alignof",
      "decltype", "new",   "delete", "static_assert", "co_return",
      "co_await", "co_yield", "requires"};
  return kControl.contains(s);
}

// Builds one Cfg over the token range of a function body.
class Builder {
 public:
  Builder(const std::vector<Token>& toks, Cfg* cfg) : t_(toks), cfg_(cfg) {}

  void build(std::size_t body_begin, std::size_t body_end) {
    cfg_->entry = new_block();
    cfg_->exit = new_block();
    const std::size_t last = parse_range(body_begin, body_end, cfg_->entry);
    if (last != kNone) add_edge(last, cfg_->exit);
  }

 private:
  std::size_t new_block() {
    cfg_->blocks.emplace_back();
    return cfg_->blocks.size() - 1;
  }

  void add_edge(std::size_t from, std::size_t to) {
    CfgEdge e;
    e.to = to;
    cfg_->blocks[from].succs.push_back(e);
    cfg_->blocks[to].preds.push_back(from);
  }

  void add_cond_edge(std::size_t from, std::size_t to, std::size_t cb,
                     std::size_t ce, bool polarity) {
    CfgEdge e;
    e.to = to;
    e.has_cond = true;
    e.cond_true = polarity;
    e.cond_begin = cb;
    e.cond_end = ce;
    cfg_->blocks[from].succs.push_back(e);
    cfg_->blocks[to].preds.push_back(from);
  }

  void add_stmt(std::size_t block, std::size_t b, std::size_t e,
                StmtKind k = StmtKind::kPlain) {
    if (b < e) cfg_->blocks[block].stmts.push_back({b, e, k});
  }

  // Parse every statement in [i, end); `cur` is the live block. Returns the
  // block execution falls out of, or kNone when all paths jumped away.
  std::size_t parse_range(std::size_t i, std::size_t end, std::size_t cur) {
    while (i < end) {
      if (cur == kNone) cur = new_block();  // dead code still parses
      auto [ni, nc] = parse_stmt(i, end, cur);
      i = ni > i ? ni : i + 1;  // guarantee progress on malformed input
      cur = nc;
    }
    return cur;
  }

  // One statement starting at `i`. Returns {index past the statement, block
  // execution continues in (kNone after an unconditional jump)}.
  std::pair<std::size_t, std::size_t> parse_stmt(std::size_t i,
                                                 std::size_t end,
                                                 std::size_t cur) {
    const std::string_view s = t_[i].text;
    if (s == ";") return {i + 1, cur};
    if (s == "{") {
      const std::size_t close = match_bracket(t_, i, end);
      if (close == kNone) return {end, cur};
      return {close + 1, parse_range(i + 1, close, cur)};
    }
    if (t_[i].kind == Tok::kIdent) {
      if (s == "if") return parse_if(i, end, cur);
      if (s == "while") return parse_while(i, end, cur);
      if (s == "for") return parse_for(i, end, cur);
      if (s == "do") return parse_do(i, end, cur);
      if (s == "switch") return parse_switch(i, end, cur);
      if (s == "try") return parse_try(i, end, cur);
      if (s == "break" || s == "continue") {
        const std::vector<std::size_t>& targets =
            s == "break" ? break_targets_ : continue_targets_;
        if (!targets.empty()) add_edge(cur, targets.back());
        return {skip_simple(i, end), kNone};
      }
      if (s == "return" || s == "throw" || s == "co_return") {
        const std::size_t next = skip_simple(i, end);
        add_stmt(cur, i, next);
        add_edge(cur, cfg_->exit);
        return {next, kNone};
      }
      if (s == "else" || s == "case" || s == "default" || s == "catch") {
        // Stray pieces of a construct we already consumed (or malformed
        // input): step over the token rather than looping on it.
        return {i + 1, cur};
      }
    }
    // Plain statement: everything up to the top-level ';'.
    const std::size_t next = skip_simple(i, end);
    add_stmt(cur, i, next);
    return {next, cur};
  }

  // Index past the ';' (bracket-balanced) ending a simple statement, or
  // `end` when it runs off the range.
  std::size_t skip_simple(std::size_t i, std::size_t end) const {
    int depth = 0;
    for (std::size_t j = i; j < end; ++j) {
      const std::string_view s = t_[j].text;
      if (is_open(s)) {
        ++depth;
      } else if (is_close(s)) {
        --depth;
        if (depth < 0) return j;  // enclosing brace: statement ends here
      } else if (depth == 0 && s == ";") {
        return j + 1;
      }
    }
    return end;
  }

  std::pair<std::size_t, std::size_t> parse_if(std::size_t i, std::size_t end,
                                               std::size_t cur) {
    std::size_t j = i + 1;
    if (text_is(t_, j, "constexpr")) ++j;
    if (!text_is(t_, j, "(")) return fallback(i, end, cur);
    const std::size_t close = match_bracket(t_, j, end);
    if (close == kNone) return fallback(i, end, cur);
    std::size_t cond_b = j + 1;
    // C++17 init-statement: `if (auto v = f(); v)` — the init is a plain
    // statement of the current block, the condition is what follows it.
    const std::size_t semi = find_top(t_, cond_b, close, ";");
    if (semi != kNone) {
      add_stmt(cur, cond_b, semi + 1);
      cond_b = semi + 1;
    }
    const std::size_t cond_e = close;
    add_stmt(cur, cond_b, cond_e);  // side effects inside the condition
    const std::size_t then_entry = new_block();
    add_cond_edge(cur, then_entry, cond_b, cond_e, true);
    auto [after_then, then_exit] = parse_stmt(close + 1, end, then_entry);
    if (text_is(t_, after_then, "else")) {
      const std::size_t else_entry = new_block();
      add_cond_edge(cur, else_entry, cond_b, cond_e, false);
      auto [after_else, else_exit] =
          parse_stmt(after_then + 1, end, else_entry);
      const std::size_t join = new_block();
      if (then_exit != kNone) add_edge(then_exit, join);
      if (else_exit != kNone) add_edge(else_exit, join);
      return {after_else, join};
    }
    const std::size_t join = new_block();
    add_cond_edge(cur, join, cond_b, cond_e, false);
    if (then_exit != kNone) add_edge(then_exit, join);
    return {after_then, join};
  }

  std::pair<std::size_t, std::size_t> parse_while(std::size_t i,
                                                  std::size_t end,
                                                  std::size_t cur) {
    if (!text_is(t_, i + 1, "(")) return fallback(i, end, cur);
    const std::size_t close = match_bracket(t_, i + 1, end);
    if (close == kNone) return fallback(i, end, cur);
    const std::size_t cond_b = i + 2, cond_e = close;
    const std::size_t head = new_block();
    add_edge(cur, head);
    add_stmt(head, cond_b, cond_e, StmtKind::kLoopCond);
    const std::size_t body = new_block();
    const std::size_t after = new_block();
    add_cond_edge(head, body, cond_b, cond_e, true);
    add_cond_edge(head, after, cond_b, cond_e, false);
    break_targets_.push_back(after);
    continue_targets_.push_back(head);
    auto [ni, body_exit] = parse_stmt(close + 1, end, body);
    break_targets_.pop_back();
    continue_targets_.pop_back();
    if (body_exit != kNone) add_edge(body_exit, head);  // back edge
    return {ni, after};
  }

  std::pair<std::size_t, std::size_t> parse_for(std::size_t i, std::size_t end,
                                                std::size_t cur) {
    if (!text_is(t_, i + 1, "(")) return fallback(i, end, cur);
    const std::size_t close = match_bracket(t_, i + 1, end);
    if (close == kNone) return fallback(i, end, cur);
    const std::size_t semi1 = find_top(t_, i + 2, close, ";");
    if (semi1 == kNone) {
      // Range-based for: `for (decl : range)`. The head both binds the
      // element (treated like an assignment across ':') and branches.
      const std::size_t head = new_block();
      add_edge(cur, head);
      add_stmt(head, i + 2, close, StmtKind::kRangeHead);
      const std::size_t body = new_block();
      const std::size_t after = new_block();
      add_edge(head, body);
      add_edge(head, after);
      break_targets_.push_back(after);
      continue_targets_.push_back(head);
      auto [ni, body_exit] = parse_stmt(close + 1, end, body);
      break_targets_.pop_back();
      continue_targets_.pop_back();
      if (body_exit != kNone) add_edge(body_exit, head);
      return {ni, after};
    }
    std::size_t semi2 = find_top(t_, semi1 + 1, close, ";");
    if (semi2 == kNone) semi2 = close;
    add_stmt(cur, i + 2, semi1 + 1);  // init statement
    const std::size_t head = new_block();
    add_edge(cur, head);
    const std::size_t body = new_block();
    const std::size_t after = new_block();
    const std::size_t cond_b = semi1 + 1, cond_e = semi2;
    if (cond_b < cond_e) {
      add_stmt(head, cond_b, cond_e, StmtKind::kLoopCond);
      add_cond_edge(head, body, cond_b, cond_e, true);
      add_cond_edge(head, after, cond_b, cond_e, false);
    } else {
      add_edge(head, body);  // `for (;;)`: exits only through break
    }
    const std::size_t inc = new_block();
    if (semi2 < close) add_stmt(inc, semi2 + 1, close);
    add_edge(inc, head);
    break_targets_.push_back(after);
    continue_targets_.push_back(inc);
    auto [ni, body_exit] = parse_stmt(close + 1, end, body);
    break_targets_.pop_back();
    continue_targets_.pop_back();
    if (body_exit != kNone) add_edge(body_exit, inc);
    return {ni, after};
  }

  std::pair<std::size_t, std::size_t> parse_do(std::size_t i, std::size_t end,
                                               std::size_t cur) {
    const std::size_t body = new_block();
    add_edge(cur, body);
    const std::size_t cond_blk = new_block();
    const std::size_t after = new_block();
    break_targets_.push_back(after);
    continue_targets_.push_back(cond_blk);
    auto [ni, body_exit] = parse_stmt(i + 1, end, body);
    break_targets_.pop_back();
    continue_targets_.pop_back();
    if (body_exit != kNone) add_edge(body_exit, cond_blk);
    if (text_is(t_, ni, "while") && text_is(t_, ni + 1, "(")) {
      const std::size_t close = match_bracket(t_, ni + 1, end);
      if (close != kNone) {
        add_stmt(cond_blk, ni + 2, close, StmtKind::kLoopCond);
        add_cond_edge(cond_blk, body, ni + 2, close, true);
        add_cond_edge(cond_blk, after, ni + 2, close, false);
        ni = close + 1;
        if (text_is(t_, ni, ";")) ++ni;
        return {ni, after};
      }
    }
    add_edge(cond_blk, after);  // malformed tail: degrade gracefully
    return {ni, after};
  }

  std::pair<std::size_t, std::size_t> parse_switch(std::size_t i,
                                                   std::size_t end,
                                                   std::size_t cur) {
    if (!text_is(t_, i + 1, "(")) return fallback(i, end, cur);
    const std::size_t close = match_bracket(t_, i + 1, end);
    if (close == kNone || !text_is(t_, close + 1, "{")) {
      return fallback(i, end, cur);
    }
    const std::size_t bclose = match_bracket(t_, close + 1, end);
    if (bclose == kNone) return fallback(i, end, cur);
    add_stmt(cur, i + 2, close);  // side effects inside the switched expr
    const std::size_t dispatch = cur;
    const std::size_t after = new_block();
    break_targets_.push_back(after);
    std::size_t inner = kNone;
    bool has_default = false;
    std::size_t k = close + 2;
    while (k < bclose) {
      const std::string_view w = t_[k].text;
      if (t_[k].kind == Tok::kIdent && (w == "case" || w == "default")) {
        std::size_t colon = find_top(t_, k + 1, bclose, ":");
        if (colon == kNone) colon = k;
        const std::size_t label = new_block();
        if (inner != kNone) add_edge(inner, label);  // fallthrough
        add_edge(dispatch, label);
        if (w == "default") has_default = true;
        inner = label;
        k = colon + 1;
        continue;
      }
      if (inner == kNone) inner = new_block();  // stmts before any label
      auto [nk, ninner] = parse_stmt(k, bclose, inner);
      k = nk > k ? nk : k + 1;
      inner = ninner;
      if (inner == kNone && k < bclose) {
        const std::string_view nw = t_[k].text;
        if (nw != "case" && nw != "default" && nw != "}") {
          inner = new_block();  // dead code between a jump and the next label
        }
      }
    }
    break_targets_.pop_back();
    if (inner != kNone) add_edge(inner, after);
    if (!has_default) add_edge(dispatch, after);
    return {bclose + 1, after};
  }

  std::pair<std::size_t, std::size_t> parse_try(std::size_t i, std::size_t end,
                                                std::size_t cur) {
    const std::size_t tb = new_block();
    add_edge(cur, tb);
    auto [ni, try_exit] = parse_stmt(i + 1, end, tb);
    const std::size_t join = new_block();
    if (try_exit != kNone) add_edge(try_exit, join);
    while (text_is(t_, ni, "catch") && text_is(t_, ni + 1, "(")) {
      const std::size_t pclose = match_bracket(t_, ni + 1, end);
      if (pclose == kNone) break;
      const std::size_t cb = new_block();
      add_edge(cur, cb);  // entered with (at best) the state at try entry
      auto [ni2, cexit] = parse_stmt(pclose + 1, end, cb);
      if (cexit != kNone) add_edge(cexit, join);
      ni = ni2;
    }
    return {ni, join};
  }

  // A construct we could not parse: swallow it as one plain statement.
  std::pair<std::size_t, std::size_t> fallback(std::size_t i, std::size_t end,
                                               std::size_t cur) {
    const std::size_t next = skip_simple(i, end);
    add_stmt(cur, i, next);
    return {next, cur};
  }

  const std::vector<Token>& t_;
  Cfg* cfg_;
  std::vector<std::size_t> break_targets_;
  std::vector<std::size_t> continue_targets_;
};

// Skips the qualifier soup between a parameter list's ')' and the body '{':
// cv/ref qualifiers, noexcept(...), override/final/mutable, a trailing
// return type, and a constructor initializer list. Returns the index of the
// body '{', or kNone when this is not a definition.
std::size_t find_body_open(const std::vector<Token>& t, std::size_t after_params,
                           std::size_t n) {
  std::size_t j = after_params;
  while (j < n) {
    const std::string_view s = t[j].text;
    if (s == "{") return j;
    if (s == "const" || s == "override" || s == "final" || s == "&" ||
        s == "&&" || s == "mutable" || s == "constexpr") {
      ++j;
      continue;
    }
    if (s == "noexcept") {
      ++j;
      if (text_is(t, j, "(")) {
        const std::size_t c = match_bracket(t, j, n);
        if (c == kNone) return kNone;
        j = c + 1;
      }
      continue;
    }
    if (s == "->") {
      // Trailing return type: advance to the body or a declaration end.
      ++j;
      int depth = 0;
      while (j < n) {
        const std::string_view w = t[j].text;
        if (is_open(w)) ++depth;
        if (is_close(w)) --depth;
        if (depth == 0 && (w == "{" || w == ";" || w == "=")) break;
        if (depth < 0) return kNone;
        ++j;
      }
      continue;
    }
    if (s == ":") {
      // Constructor initializer list: `name(args)` / `name{args}` items
      // separated by commas, then the body '{'.
      ++j;
      while (j < n) {
        // One item: identifiers/template bits up to its bracket group.
        while (j < n && t[j].text != "(" && t[j].text != "{" &&
               t[j].text != ";" && t[j].text != "}") {
          ++j;
        }
        if (j >= n || t[j].text == ";" || t[j].text == "}") return kNone;
        if (t[j].text == "{") {
          // Either an init brace or the body itself. An init brace is
          // directly preceded by an identifier or '>' (template args);
          // anything else means the body starts here.
          const std::string_view prev = t[j - 1].text;
          const bool init_brace =
              t[j - 1].kind == Tok::kIdent || prev == ">";
          if (!init_brace) return j;
        }
        const std::size_t c = match_bracket(t, j, n);
        if (c == kNone) return kNone;
        j = c + 1;
        if (text_is(t, j, ",")) {
          ++j;
          continue;
        }
        if (text_is(t, j, "{")) return j;
        return kNone;
      }
      return kNone;
    }
    return kNone;
  }
  return kNone;
}

}  // namespace

std::vector<Cfg> build_cfgs(const std::vector<Token>& tokens) {
  std::vector<Cfg> out;
  const std::size_t n = tokens.size();
  for (std::size_t i = 0; i < n; ++i) {
    const std::string_view s = tokens[i].text;
    // Lambda introducer: '[' in prefix position (not a subscript, not an
    // attribute) with `](params)...{` or `]...{` after it.
    if (s == "[" && !text_is(tokens, i + 1, "[")) {
      const bool postfix =
          i > 0 && (tokens[i - 1].kind == Tok::kIdent ||
                    tokens[i - 1].kind == Tok::kNumber ||
                    tokens[i - 1].text == ")" || tokens[i - 1].text == "]");
      if (!postfix) {
        const std::size_t cap_close = match_bracket(tokens, i, n);
        if (cap_close != kNone) {
          std::size_t j = cap_close + 1;
          std::size_t pb = 0, pe = 0;
          if (text_is(tokens, j, "(")) {
            const std::size_t pc = match_bracket(tokens, j, n);
            if (pc != kNone) {
              pb = j + 1;
              pe = pc;
              j = pc + 1;
            }
          }
          const std::size_t body = find_body_open(tokens, j, n);
          if (body != kNone) {
            const std::size_t bclose = match_bracket(tokens, body, n);
            if (bclose != kNone) {
              Cfg cfg;
              cfg.name = "<lambda>";
              cfg.params_begin = pb;
              cfg.params_end = pe;
              cfg.body_open = body;
              cfg.body_close = bclose;
              Builder(tokens, &cfg).build(body + 1, bclose);
              out.push_back(std::move(cfg));
              i = body;  // keep scanning inside for nested lambdas
              continue;
            }
          }
        }
      }
      continue;
    }
    // Named function definition: `name(params) <qualifiers> {`.
    if (tokens[i].kind != Tok::kIdent || is_control_keyword(s)) continue;
    if (!text_is(tokens, i + 1, "(")) continue;
    if (i > 0 &&
        (tokens[i - 1].text == "." || tokens[i - 1].text == "->")) {
      continue;  // member call expression
    }
    const std::size_t pclose = match_bracket(tokens, i + 1, n);
    if (pclose == kNone) continue;
    const std::size_t body = find_body_open(tokens, pclose + 1, n);
    if (body == kNone) continue;
    const std::size_t bclose = match_bracket(tokens, body, n);
    if (bclose == kNone) continue;
    Cfg cfg;
    cfg.name = std::string(s);
    cfg.params_begin = i + 2;
    cfg.params_end = pclose;
    cfg.body_open = body;
    cfg.body_close = bclose;
    Builder(tokens, &cfg).build(body + 1, bclose);
    out.push_back(std::move(cfg));
    i = body;  // descend into the body: nested lambdas get their own Cfg
  }
  return out;
}

const Cfg* enclosing_cfg(const std::vector<Cfg>& cfgs, std::size_t i) {
  const Cfg* best = nullptr;
  for (const Cfg& c : cfgs) {
    if (c.body_open < i && i < c.body_close) {
      if (best == nullptr || c.body_open > best->body_open) best = &c;
    }
  }
  return best;
}

bool locate(const Cfg& cfg, std::size_t token, std::size_t* block_out,
            std::size_t* stmt_out) {
  for (std::size_t b = 0; b < cfg.blocks.size(); ++b) {
    const std::vector<CfgStmt>& stmts = cfg.blocks[b].stmts;
    for (std::size_t s = 0; s < stmts.size(); ++s) {
      if (stmts[s].begin <= token && token < stmts[s].end) {
        *block_out = b;
        *stmt_out = s;
        return true;
      }
    }
  }
  return false;
}

}  // namespace dfx::lint
