#include "dfixer_lint/ratchet.h"

#include <algorithm>
#include <set>
#include <tuple>

#include "json/json.h"

namespace dfx::lint {
namespace {

using Key = std::tuple<std::string, std::string, std::size_t>;

Key key_of(const Violation& v) { return {v.file, v.rule, v.line}; }

}  // namespace

std::string findings_to_json(const std::vector<Violation>& findings,
                             std::string_view tool) {
  json::Array arr;
  arr.reserve(findings.size());
  for (const Violation& v : findings) {
    json::Object entry;
    entry["rule"] = v.rule;
    entry["file"] = v.file;
    entry["line"] = static_cast<std::int64_t>(v.line);
    entry["severity"] = v.severity.empty() ? std::string(severity_of(v.rule))
                                           : v.severity;
    entry["excerpt"] = v.excerpt;
    arr.emplace_back(std::move(entry));
  }
  json::Object doc;
  doc["schema_version"] = std::int64_t{1};
  doc["tool"] = std::string(tool);
  doc["findings"] = std::move(arr);
  return json::serialize_pretty(json::Value(std::move(doc))) + "\n";
}

std::optional<std::vector<Violation>> findings_from_json(std::string_view text,
                                                         std::string* error) {
  const auto set_error = [&](std::string msg) {
    if (error != nullptr) *error = std::move(msg);
  };
  auto parsed = json::parse(text);
  if (const auto* pe = std::get_if<json::ParseError>(&parsed)) {
    set_error("JSON parse error at offset " + std::to_string(pe->offset) +
              ": " + pe->message);
    return std::nullopt;
  }
  const json::Value& doc = std::get<json::Value>(parsed);
  if (!doc.is_object()) {
    set_error("ratchet document must be a JSON object");
    return std::nullopt;
  }
  if (doc.get_int("schema_version", -1) != 1) {
    set_error("unsupported or missing schema_version (want 1)");
    return std::nullopt;
  }
  const json::Value* findings = doc.find("findings");
  if (findings == nullptr || !findings->is_array()) {
    set_error("missing 'findings' array");
    return std::nullopt;
  }
  std::vector<Violation> out;
  out.reserve(findings->as_array().size());
  for (const json::Value& entry : findings->as_array()) {
    if (!entry.is_object()) {
      set_error("finding entries must be objects");
      return std::nullopt;
    }
    Violation v;
    v.rule = entry.get_string("rule", "");
    v.file = entry.get_string("file", "");
    v.line = static_cast<std::size_t>(entry.get_int("line", 0));
    v.severity = entry.get_string("severity", "");
    v.excerpt = entry.get_string("excerpt", "");
    if (v.rule.empty() || v.file.empty() || v.line == 0) {
      set_error("finding entry needs non-empty rule/file and a 1-based line");
      return std::nullopt;
    }
    out.push_back(std::move(v));
  }
  return out;
}

RatchetDiff ratchet_diff(const std::vector<Violation>& current,
                         const std::vector<Violation>& baseline) {
  std::set<Key> current_keys;
  std::set<Key> baseline_keys;
  for (const auto& v : current) current_keys.insert(key_of(v));
  for (const auto& v : baseline) baseline_keys.insert(key_of(v));
  RatchetDiff diff;
  for (const auto& v : current) {
    if (!baseline_keys.contains(key_of(v))) diff.fresh.push_back(v);
  }
  for (const auto& v : baseline) {
    if (!current_keys.contains(key_of(v))) diff.stale.push_back(v);
  }
  const auto by_key = [](const Violation& a, const Violation& b) {
    return key_of(a) < key_of(b);
  };
  std::sort(diff.fresh.begin(), diff.fresh.end(), by_key);
  std::sort(diff.stale.begin(), diff.stale.end(), by_key);
  return diff;
}

}  // namespace dfx::lint
