// Program-wide call graph for dfixer_lint's interprocedural pass. Nodes are
// function DEFINITIONS (one per CFG built from the analyzed files, qualified
// by back-walking `Class::` / `ns::` pairs before the name token); edges are
// call sites resolved from the token stream against the definition set, with
// method calls matched by qualified-name heuristics and everything else —
// std::, libc, system headers — recorded as unresolved externals so the
// summary layer can model them conservatively.
//
// Like the rest of the linter this is name-based: no types, no overload
// resolution. When several definitions share an unqualified name, a call
// resolves to ALL of them unless the call spells a qualifier that narrows
// the candidate set — over-approximating the edge set, which keeps the
// effect/taint summaries sound-per-model at the cost of precision.
// docs/STATIC_ANALYSIS.md ("Interprocedural analysis") documents the
// envelope.
#pragma once

#include <cstddef>
#include <map>
#include <set>
#include <string>
#include <string_view>
#include <vector>

#include "dfixer_lint/cfg.h"
#include "dfixer_lint/lint_core.h"

namespace dfx::lint {

/// One call site inside a node's body.
struct CgCall {
  std::string name;       // unqualified callee name as spelled
  std::string qualifier;  // `A::B` in `A::B::f(...)`, empty for plain calls
  std::size_t token = 0;  // token index of the callee name
  std::size_t line = 0;   // 1-based source line of the call
  std::vector<std::size_t> callees;  // resolved node ids (possibly many)
  bool external = false;  // no definition matched (std::, libc, ...)
};

/// One function definition. `cfg_index` points into the owning file's CFG
/// list so the summary layer can re-run dataflow over the body.
struct CgNode {
  std::string name;        // unqualified
  std::string qualifier;   // enclosing `Class`/`ns` chain, "" for free fns
  std::string file;        // path of the defining file
  std::size_t line = 0;    // 1-based line of the name token
  std::size_t file_index = 0;  // into CallGraph::files()
  std::size_t cfg_index = 0;   // into cfgs_for(file_index)
  std::vector<CgCall> calls;   // call sites in body order

  std::string qualified() const {
    return qualifier.empty() ? name : qualifier + "::" + name;
  }
};

class CallGraph {
 public:
  /// Build the graph over every function definition in `files`. The
  /// FileAnalysis pointers must outlive the CallGraph — nodes keep indices
  /// into them and the summary layer re-reads their token streams.
  static CallGraph build(std::vector<const FileAnalysis*> files);

  const std::vector<CgNode>& nodes() const { return nodes_; }
  const std::vector<const FileAnalysis*>& files() const { return files_; }
  const std::vector<Cfg>& cfgs_for(std::size_t file_index) const {
    return cfgs_[file_index];
  }
  const Cfg& cfg_of(const CgNode& n) const {
    return cfgs_[n.file_index][n.cfg_index];
  }

  /// Node ids defining unqualified `name` (empty when none).
  std::vector<std::size_t> find(std::string_view name) const;

  /// Every distinct external (unresolved) callee name, sorted.
  std::vector<std::string> externals() const;

  /// Strongly connected components in bottom-up (callees-first) order —
  /// the traversal order for summary fixpoints. Each component lists node
  /// ids; recursion cycles land in one component.
  std::vector<std::vector<std::size_t>> sccs() const;

  /// Human-readable dump for --callgraph-dump: one line per node with its
  /// resolved and external callees, then the external-name inventory.
  std::string dump() const;

 private:
  std::vector<const FileAnalysis*> files_;
  std::vector<std::vector<Cfg>> cfgs_;  // parallel to files_
  std::vector<CgNode> nodes_;
  std::map<std::string, std::vector<std::size_t>, std::less<>> by_name_;
};

}  // namespace dfx::lint
