#include "dfixer_lint/summaries.h"

#include <algorithm>
#include <cctype>
#include <string>
#include <tuple>
#include <utility>

namespace dfx::lint {
namespace {

constexpr std::size_t kNone = static_cast<std::size_t>(-1);

std::size_t match_paren_like(const std::vector<Token>& toks, std::size_t open,
                             std::size_t limit) {
  const std::string_view o = toks[open].text;
  const std::string_view c = o == "(" ? ")" : o == "[" ? "]" : "}";
  int depth = 0;
  for (std::size_t j = open; j < limit; ++j) {
    if (toks[j].text == o) ++depth;
    if (toks[j].text == c && --depth == 0) return j;
  }
  return kNone;
}

/// Index of the `>` closing the template-argument list opened at `open`
/// (a `<` token), or kNone when the region does not look like one.
std::size_t angle_close(const std::vector<Token>& toks, std::size_t open,
                        std::size_t limit) {
  int depth = 0;
  const std::size_t scan_limit = std::min(limit, open + 128);
  for (std::size_t j = open; j < scan_limit; ++j) {
    const Token& t = toks[j];
    const std::string_view x = t.text;
    if (x == "<") {
      ++depth;
      continue;
    }
    if (x == ">") {
      if (--depth == 0) return j;
      continue;
    }
    if (t.kind == Tok::kIdent || t.kind == Tok::kNumber) continue;
    if (x == "::" || x == "," || x == "*" || x == "&" || x == "&&" ||
        x == "...") {
      continue;
    }
    if (x == "(" || x == "[") {
      const std::size_t close = match_paren_like(toks, j, scan_limit);
      if (close == kNone) return kNone;
      j = close;
      continue;
    }
    return kNone;
  }
  return kNone;
}

std::string_view last_component(std::string_view qual) {
  const std::size_t pos = qual.rfind("::");
  return pos == std::string_view::npos ? qual : qual.substr(pos + 2);
}

std::string trim(std::string_view s) {
  while (!s.empty() && std::isspace(static_cast<unsigned char>(s.front()))) {
    s.remove_prefix(1);
  }
  while (!s.empty() && std::isspace(static_cast<unsigned char>(s.back()))) {
    s.remove_suffix(1);
  }
  return std::string(s);
}

// ---------------------------------------------------------------------------
// The external-effect model: a curated allowlist of allocating / throwing
// names. Everything not listed and not defined in the analyzed files is
// assumed effect-free (documented in docs/STATIC_ANALYSIS.md; the
// --callgraph-dump external inventory exists to audit that assumption).
// ---------------------------------------------------------------------------

bool is_alloc_free_call(std::string_view w) {
  return w == "malloc" || w == "calloc" || w == "realloc" || w == "strdup" ||
         w == "aligned_alloc" || w == "make_unique" || w == "make_shared" ||
         w == "to_string" || w == "format";
}

/// Member calls that may grow their container. `insert` is deliberately
/// absent: the repo's cache-fill methods share the name and carry their own
/// summaries; keeping it here would double-report every cold cache insert.
bool is_growth_member(std::string_view w) {
  return w == "push_back" || w == "emplace_back" || w == "emplace" ||
         w == "append" || w == "assign" || w == "resize" || w == "reserve" ||
         w == "substr" || w == "str";
}

bool is_throwing_member(std::string_view w) {
  return w == "at" || w == "value";
}

bool is_throwing_free_call(std::string_view w) {
  return w == "stoi" || w == "stol" || w == "stoll" || w == "stoul" ||
         w == "stoull" || w == "stof" || w == "stod";
}

bool is_alloc_type_name(std::string_view w) {
  return w == "string" || w == "vector" || w == "Bytes";
}

bool is_writer_lock_id(std::string_view id) {
  return id.find("write") != std::string_view::npos;
}

bool in_taint_scope(const std::string& path) {
  static constexpr std::string_view kScope[] = {
      "dnscore/", "crypto/", "zone/", "authserver/", "server/", "dataflow/"};
  for (const std::string_view s : kScope) {
    if (path.find(s) != std::string::npos) return true;
  }
  return false;
}

/// Token ranges of CFGs nested inside `outer` in the same file — lambda
/// bodies, which the taint scan must skip (same policy as the
/// intraprocedural rule).
std::vector<std::pair<std::size_t, std::size_t>> holes_for(
    const std::vector<Cfg>& cfgs, const Cfg& outer) {
  std::vector<std::pair<std::size_t, std::size_t>> holes;
  for (const Cfg& inner : cfgs) {
    if (inner.body_open > outer.body_open &&
        inner.body_close < outer.body_close) {
      holes.emplace_back(inner.body_open, inner.body_close + 1);
    }
  }
  return holes;
}

/// Declared parameter names, in order. Name-based like everything else: the
/// last top-level identifier before each `,` (or before `= default`), with
/// brackets and template-argument lists skipped as groups.
std::vector<std::string> parse_params(const std::vector<Token>& toks,
                                      const Cfg& cfg) {
  std::vector<std::string> params;
  std::string_view last_ident;
  bool in_default = false;
  int depth = 0;
  for (std::size_t j = cfg.params_begin;
       j < cfg.params_end && j < toks.size(); ++j) {
    const Token& t = toks[j];
    const std::string_view x = t.text;
    if (x == "(" || x == "[" || x == "{" || x == "<") {
      ++depth;
      continue;
    }
    if (x == ")" || x == "]" || x == "}" || x == ">") {
      --depth;
      continue;
    }
    if (depth != 0) continue;
    if (x == ",") {
      if (!last_ident.empty() && last_ident != "void") {
        params.emplace_back(last_ident);
      }
      last_ident = {};
      in_default = false;
      continue;
    }
    if (x == "=") {
      in_default = true;
      continue;
    }
    if (!in_default && t.kind == Tok::kIdent) last_ident = x;
  }
  if (!last_ident.empty() && last_ident != "void") {
    params.emplace_back(last_ident);
  }
  return params;
}

/// Immutable per-node facts gathered in one body walk, before the SCC
/// fixpoint starts composing them.
struct NodeScratch {
  bool d_alloc = false;
  std::string d_alloc_w;
  bool d_throw = false;
  std::string d_throw_w;
  bool d_lock = false;
  bool d_lock_writer = false;
  std::string d_lock_w;
  std::vector<std::pair<std::size_t, std::size_t>> holes;
  std::vector<char> param_used;  // parallel to FnSummary::params
  bool has_sink_tokens = false;  // any index/resize/memcpy/loop shape
  bool has_return = false;
};

/// Locks held at one resolved call site — the raw material for the
/// call-induced lock-order edges, expanded once the transitive
/// locks_held_any sets are final.
struct CallCtx {
  std::vector<std::size_t> callees;
  std::vector<std::string> held;
  std::string file;
  std::size_t line = 0;
};

std::string at_loc(const std::string& file, std::size_t line) {
  return " at " + file + ":" + std::to_string(line);
}

/// One walk over a node's body: direct effects, MutexLock acquisitions with
/// a brace-depth scope stack (emitting in-body nesting edges), and the
/// held-locks context of every resolved call site.
void scan_body(const CallGraph& g, std::size_t ni, FnSummary& s,
               NodeScratch& sc, std::vector<LockEdge>* edges,
               std::vector<CallCtx>* ctxs) {
  const CgNode& n = g.nodes()[ni];
  const std::vector<Token>& toks = g.files()[n.file_index]->tokens;
  const Cfg& cfg = g.cfg_of(n);
  // The runtime lock machinery itself acquires the underlying std::mutex;
  // scanning it would wire every lock in the program to a phantom id.
  const bool scan_locks =
      n.file.find("util/thread_annotations") == std::string::npos &&
      n.file.find("util/lockgraph") == std::string::npos;
  struct Held {
    std::string id;
    int depth;
  };
  std::vector<Held> held;
  int depth = 0;
  std::size_t ci = 0;
  const std::size_t end = std::min(cfg.body_close + 1, toks.size());
  for (std::size_t j = cfg.body_open; j < end; ++j) {
    const Token& t = toks[j];
    const std::string_view x = t.text;
    if (x == "{") {
      ++depth;
      continue;
    }
    if (x == "}") {
      --depth;
      while (!held.empty() && held.back().depth > depth) held.pop_back();
      continue;
    }
    while (ci < n.calls.size() && n.calls[ci].token < j) ++ci;
    if (ci < n.calls.size() && n.calls[ci].token == j && !held.empty() &&
        !n.calls[ci].callees.empty()) {
      CallCtx c;
      c.callees = n.calls[ci].callees;
      for (const Held& h : held) c.held.push_back(h.id);
      c.file = n.file;
      c.line = t.line;
      ctxs->push_back(std::move(c));
    }
    if (x == "[" || x == "while" || x == "for" || x == "memcpy" ||
        x == "memmove" || x == "memset" || x == "resize" || x == "reserve") {
      sc.has_sink_tokens = true;
    }
    if (t.kind != Tok::kIdent) continue;
    if (x == "return") {
      sc.has_return = true;
      continue;
    }
    if (x == "new") {
      if (!sc.d_alloc) {
        sc.d_alloc = true;
        sc.d_alloc_w = "`new`" + at_loc(n.file, t.line);
      }
      continue;
    }
    if (x == "throw") {
      if (!sc.d_throw) {
        sc.d_throw = true;
        sc.d_throw_w = "`throw`" + at_loc(n.file, t.line);
      }
      continue;
    }
    if (scan_locks && x == "MutexLock" && j + 2 < end &&
        toks[j + 1].kind == Tok::kIdent &&
        (toks[j + 2].text == "(" || toks[j + 2].text == "{")) {
      const std::size_t close = match_paren_like(toks, j + 2, end);
      if (close == kNone) continue;
      std::string_view lock_ident;
      bool memberish = false;
      for (std::size_t k = j + 3; k < close; ++k) {
        const std::string_view y = toks[k].text;
        if (y == "." || y == "->" || y == "[") memberish = true;
        if (toks[k].kind == Tok::kIdent) lock_ident = y;
      }
      if (lock_ident.empty()) {
        j = close;
        continue;
      }
      if (close == j + 4 && lock_ident.ends_with("_")) memberish = true;
      // Member mutexes unify on Class::field so acquisition order is
      // compared across methods; bare locals stay file#function scoped so
      // unrelated same-named locals cannot fabricate cross-file cycles.
      std::string id;
      if (memberish && !n.qualifier.empty()) {
        id = std::string(last_component(n.qualifier)) + "::" +
             std::string(lock_ident);
      } else if (memberish) {
        id = n.file + "#" + std::string(lock_ident);
      } else {
        id = n.file + "#" + n.name + "#" + std::string(lock_ident);
      }
      sc.d_lock = true;
      const bool writer = is_writer_lock_id(id);
      if (writer) sc.d_lock_writer = true;
      if (sc.d_lock_w.empty() || (writer && !is_writer_lock_id(sc.d_lock_w))) {
        sc.d_lock_w = "acquires '" + id + "'" + at_loc(n.file, t.line);
      }
      for (const Held& h : held) {
        edges->push_back({h.id, id, n.file, t.line, false});
      }
      held.push_back({id, depth});
      s.own_locks.push_back(id);
      j = close;
      continue;
    }
    const bool member =
        j > cfg.body_open &&
        (toks[j - 1].text == "." || toks[j - 1].text == "->");
    if (is_alloc_type_name(x) && !member) {
      // `std::string(...)` / `std::vector<T> v(...)` style construction
      // with arguments. Trailing return types (`-> std::string {`) are the
      // one shape where `{` after the type is a body, not an initializer.
      std::size_t cs = j;
      while (cs >= 2 && toks[cs - 1].text == "::" &&
             toks[cs - 2].kind == Tok::kIdent) {
        cs -= 2;
      }
      if (cs > 0 && toks[cs - 1].text == "->") continue;
      std::size_t k = j + 1;
      if (k < end && toks[k].text == "<") {
        const std::size_t ac = angle_close(toks, k, end);
        if (ac == kNone) continue;
        k = ac + 1;
      }
      bool alloc = false;
      if (k < end && (toks[k].text == "(" || toks[k].text == "{")) {
        const std::size_t close = match_paren_like(toks, k, end);
        alloc = close != kNone && close > k + 1;
      } else if (k + 1 < end && toks[k].kind == Tok::kIdent) {
        if (toks[k + 1].text == "(" || toks[k + 1].text == "{") {
          const std::size_t close = match_paren_like(toks, k + 1, end);
          alloc = close != kNone && close > k + 2;
        } else if (toks[k + 1].text == "=") {
          alloc = true;
        }
      }
      if (alloc && !sc.d_alloc) {
        sc.d_alloc = true;
        sc.d_alloc_w =
            std::string(x) + " construction" + at_loc(n.file, t.line);
      }
      continue;
    }
    std::size_t paren = kNone;
    if (j + 1 < end && toks[j + 1].text == "(") {
      paren = j + 1;
    } else if (j + 1 < end && toks[j + 1].text == "<") {
      const std::size_t ac = angle_close(toks, j + 1, end);
      if (ac != kNone && ac + 1 < end && toks[ac + 1].text == "(") {
        paren = ac + 1;
      }
    }
    if (paren == kNone) continue;
    if (member) {
      if (is_growth_member(x) && !sc.d_alloc) {
        sc.d_alloc = true;
        sc.d_alloc_w = "`." + std::string(x) + "()`" + at_loc(n.file, t.line);
      } else if (is_throwing_member(x) && !sc.d_throw) {
        sc.d_throw = true;
        sc.d_throw_w = "`." + std::string(x) + "()`" + at_loc(n.file, t.line);
      }
    } else {
      if (is_alloc_free_call(x) && !sc.d_alloc) {
        sc.d_alloc = true;
        sc.d_alloc_w = "call to " + std::string(x) + at_loc(n.file, t.line);
      } else if (is_throwing_free_call(x) && !sc.d_throw) {
        sc.d_throw = true;
        sc.d_throw_w = "call to " + std::string(x) + at_loc(n.file, t.line);
      }
    }
  }
}

}  // namespace

TaintConfig enriched_taint_config(const ProgramAnalysis& pa,
                                  std::size_t node_index) {
  TaintConfig c = pa.base_taint;
  const CgNode& n = pa.graph.nodes()[node_index];
  // A call name is "neutral" (result provably clean, so eval may skip the
  // whole call expression) only when EVERY resolved definition of that name
  // is neutral — same-name collisions stay conservative.
  std::map<std::string, bool, std::less<>> neutral;
  for (const CgCall& call : n.calls) {
    if (call.external) continue;
    for (const std::size_t t : call.callees) {
      const FnSummary& cs = pa.summaries[t];
      bool callee_neutral = !cs.returns_taint;
      if (cs.returns_taint) {
        c.source_calls.insert(call.name);
      } else if (std::find(cs.param_to_return.begin(),
                           cs.param_to_return.end(),
                           true) != cs.param_to_return.end()) {
        c.passthrough_calls.insert(call.name);
        callee_neutral = false;
      }
      if (std::find(cs.param_to_sink.begin(), cs.param_to_sink.end(), true) !=
          cs.param_to_sink.end()) {
        std::vector<bool>& flags = c.sink_params[call.name];
        if (flags.size() < cs.param_to_sink.size()) {
          flags.resize(cs.param_to_sink.size(), false);
        }
        for (std::size_t k = 0; k < cs.param_to_sink.size(); ++k) {
          if (cs.param_to_sink[k]) flags[k] = true;
        }
      }
      auto [it, inserted] = neutral.emplace(call.name, callee_neutral);
      if (!inserted) it->second = it->second && callee_neutral;
    }
  }
  for (const auto& [name, ok] : neutral) {
    if (ok && !c.source_calls.contains(name) &&
        !c.passthrough_calls.contains(name)) {
      c.neutral_calls.insert(name);
    }
  }
  return c;
}

ProgramAnalysis analyze_program(std::vector<const FileAnalysis*> files,
                                const SymbolIndex* symbols) {
  ProgramAnalysis pa;
  pa.graph = CallGraph::build(std::move(files));
  const CallGraph& g = pa.graph;

  // Annotations: the analyzed files always contribute; an external index
  // (the CLI's src/-wide sweep) is merged in when supplied.
  SymbolIndex local;
  for (const FileAnalysis* fa : g.files()) {
    local.index_source(fa->path, fa->tokens);
  }
  std::set<std::string, std::less<>> hot(local.hot_path_fns());
  std::map<std::string, bool, std::less<>> cold(local.cold_fns());
  pa.base_taint.source_calls = local.taint_source_calls();
  pa.base_taint.tainted_fields = local.taint_fields();
  pa.base_taint.passthrough_calls = local.taint_passthrough_calls();
  if (symbols != nullptr) {
    hot.insert(symbols->hot_path_fns().begin(), symbols->hot_path_fns().end());
    for (const auto& [name, has_reason] : symbols->cold_fns()) {
      auto [it, inserted] = cold.emplace(name, has_reason);
      if (!inserted && has_reason) it->second = true;
    }
    pa.base_taint.source_calls.insert(symbols->taint_source_calls().begin(),
                                      symbols->taint_source_calls().end());
    pa.base_taint.tainted_fields.insert(symbols->taint_fields().begin(),
                                        symbols->taint_fields().end());
    pa.base_taint.passthrough_calls.insert(
        symbols->taint_passthrough_calls().begin(),
        symbols->taint_passthrough_calls().end());
  }

  const std::size_t count = g.nodes().size();
  pa.summaries.resize(count);
  std::vector<NodeScratch> scratch(count);
  std::vector<CallCtx> ctxs;
  for (std::size_t i = 0; i < count; ++i) {
    const CgNode& n = g.nodes()[i];
    FnSummary& s = pa.summaries[i];
    s.hot = hot.count(n.name) != 0;
    const auto cit = cold.find(n.name);
    if (cit != cold.end()) {
      s.cold = true;
      s.cold_missing_reason = !cit->second;
    }
    const std::vector<Token>& toks = g.files()[n.file_index]->tokens;
    const Cfg& cfg = g.cfg_of(n);
    s.params = parse_params(toks, cfg);
    NodeScratch& sc = scratch[i];
    sc.holes = holes_for(g.cfgs_for(n.file_index), cfg);
    scan_body(g, i, s, sc, &pa.lock_edges, &ctxs);
    sc.param_used.assign(s.params.size(), 0);
    for (std::size_t j = cfg.body_open; j < cfg.body_close &&
                                       j < toks.size(); ++j) {
      if (toks[j].kind != Tok::kIdent) continue;
      for (std::size_t p = 0; p < s.params.size(); ++p) {
        if (sc.param_used[p] == 0 && toks[j].text == s.params[p]) {
          sc.param_used[p] = 1;
        }
      }
    }
  }

  // Bottom-up summary composition in SCC order. Singleton non-recursive
  // components converge in one pass; recursion cycles get a short fixpoint
  // (the lattice is tiny: a handful of monotone bits plus growing sets).
  const auto fingerprint = [](const FnSummary& s) {
    return std::tuple(s.allocates, s.throws, s.locks, s.locks_writer,
                      s.returns_taint, s.param_to_sink, s.param_to_return,
                      s.locks_held_any.size());
  };
  const auto compute = [&](std::size_t i) {
    const CgNode& n = g.nodes()[i];
    FnSummary& s = pa.summaries[i];
    const NodeScratch& sc = scratch[i];
    s.allocates = sc.d_alloc;
    s.alloc_witness = sc.d_alloc_w;
    s.throws = sc.d_throw;
    s.throw_witness = sc.d_throw_w;
    s.locks = sc.d_lock;
    s.locks_writer = sc.d_lock_writer;
    s.lock_witness = sc.d_lock_w;
    s.locks_held_any.clear();
    s.locks_held_any.insert(s.own_locks.begin(), s.own_locks.end());
    for (const CgCall& call : n.calls) {
      if (call.callees.empty()) continue;
      // Consensus propagation: with name-based resolution an ambiguous
      // call (several same-name candidates) contributes an effect or a
      // lock only when EVERY candidate carries it. Overload sets of one
      // logical function agree and still propagate; accidental collisions
      // (`misses_.add()` resolving to the zone builder's `add`) disagree
      // and cancel instead of poisoning every caller of a common name.
      constexpr std::size_t npos = static_cast<std::size_t>(-1);
      bool all_alloc = true;
      bool all_throw = true;
      bool all_lock = true;
      bool all_writer = true;
      std::size_t alloc_wit = npos;
      std::size_t throw_wit = npos;
      std::size_t writer_wit = npos;
      std::set<std::string> lock_isect;
      bool first_cand = true;
      for (const std::size_t t : call.callees) {
        const FnSummary& cs = pa.summaries[t];
        // Lock-set propagation never stops at hot/cold: order soundness
        // needs every transitively reachable acquisition — but it still
        // takes the candidate consensus (set intersection).
        if (first_cand) {
          lock_isect = cs.locks_held_any;
        } else {
          std::set<std::string> keep;
          for (const std::string& l : cs.locks_held_any) {
            if (lock_isect.count(l) != 0) keep.insert(l);
          }
          lock_isect = std::move(keep);
        }
        first_cand = false;
        if (!cs.locks) all_lock = false;
        if (cs.locks_writer) {
          if (writer_wit == npos) writer_wit = t;
        } else {
          all_writer = false;
        }
        // Effects stop at hot callees (they report their own findings) and
        // at DFX_COLD callees (the audited escape hatch).
        const bool opaque = cs.hot || cs.cold;
        if (opaque || !cs.allocates) {
          all_alloc = false;
        } else if (alloc_wit == npos) {
          alloc_wit = t;
        }
        if (opaque || !cs.throws) {
          all_throw = false;
        } else if (throw_wit == npos) {
          throw_wit = t;
        }
      }
      s.locks_held_any.insert(lock_isect.begin(), lock_isect.end());
      if (all_lock) s.locks = true;
      if (all_alloc && !s.allocates) {
        s.allocates = true;
        s.alloc_witness = "via " + g.nodes()[alloc_wit].qualified() + ": " +
                          pa.summaries[alloc_wit].alloc_witness;
      }
      if (all_throw && !s.throws) {
        s.throws = true;
        s.throw_witness = "via " + g.nodes()[throw_wit].qualified() + ": " +
                          pa.summaries[throw_wit].throw_witness;
      }
      if (all_writer && !s.locks_writer) {
        s.locks_writer = true;
        s.locks = true;
        s.lock_witness = "via " + g.nodes()[writer_wit].qualified() + ": " +
                         pa.summaries[writer_wit].lock_witness;
      }
    }
    // Taint transfer by differential runs: a baseline pass with the
    // enriched config, then one pass per parameter seeded kTainted; any
    // finding or tainted return the baseline lacks is attributed to that
    // parameter.
    const std::vector<Token>& toks = g.files()[n.file_index]->tokens;
    const Cfg& cfg = g.cfg_of(n);
    const TaintConfig ecfg = enriched_taint_config(pa, i);
    const TaintAnalysis base = analyze_taint(cfg, toks, ecfg, sc.holes);
    s.returns_taint = base.returns_tainted ||
                      pa.base_taint.source_calls.count(n.name) != 0;
    s.param_to_sink.assign(s.params.size(), false);
    s.param_to_return.assign(s.params.size(), false);
    bool body_has_sink = sc.has_sink_tokens;
    for (const CgCall& call : n.calls) {
      if (body_has_sink) break;
      if (ecfg.sink_params.count(call.name) != 0) body_has_sink = true;
    }
    if (s.params.size() <= 8 && (body_has_sink || sc.has_return)) {
      std::set<std::size_t> base_tokens;
      for (const TaintFinding& f : base.findings) base_tokens.insert(f.token);
      for (std::size_t p = 0; p < s.params.size(); ++p) {
        if (sc.param_used[p] == 0) continue;
        TaintConfig seeded = ecfg;
        seeded.seed_params = {s.params[p]};
        const TaintAnalysis run = analyze_taint(cfg, toks, seeded, sc.holes);
        for (const TaintFinding& f : run.findings) {
          if (base_tokens.count(f.token) == 0) {
            s.param_to_sink[p] = true;
            break;
          }
        }
        if (run.returns_tainted && !base.returns_tainted) {
          s.param_to_return[p] = true;
        }
      }
    }
  };
  for (const std::vector<std::size_t>& comp : g.sccs()) {
    bool recursive = comp.size() > 1;
    if (!recursive) {
      for (const CgCall& call : g.nodes()[comp[0]].calls) {
        if (std::find(call.callees.begin(), call.callees.end(), comp[0]) !=
            call.callees.end()) {
          recursive = true;
          break;
        }
      }
    }
    const int iters = recursive ? 3 : 1;
    for (int it = 0; it < iters; ++it) {
      bool changed = false;
      for (const std::size_t i : comp) {
        const auto before = fingerprint(pa.summaries[i]);
        compute(i);
        if (fingerprint(pa.summaries[i]) != before) changed = true;
      }
      if (!changed) break;
    }
  }

  // Call-induced lock-order edges, now that locks_held_any is final:
  // holding H while calling something that may acquire L orders H before L.
  // Self-edges via calls are dropped — with name-based resolution a
  // `map.insert(...)` under a lock aliases any same-named method and would
  // fabricate re-entrancy; the runtime lockgraph owns that class of bug.
  // The callee lock set takes the same candidate consensus as summary
  // propagation: an ambiguous name only contributes locks every candidate
  // agrees on, so a `.find()` that aliases both a locked registry accessor
  // and a plain map helper fabricates no edge.
  for (const CallCtx& c : ctxs) {
    std::set<std::string> locks;
    bool first = true;
    for (const std::size_t t : c.callees) {
      const std::set<std::string>& cand = pa.summaries[t].locks_held_any;
      if (first) {
        locks = cand;
        first = false;
        continue;
      }
      std::set<std::string> keep;
      for (const std::string& l : cand) {
        if (locks.count(l) != 0) keep.insert(l);
      }
      locks = std::move(keep);
    }
    for (const std::string& l : locks) {
      for (const std::string& h : c.held) {
        if (h == l) continue;
        pa.lock_edges.push_back({h, l, c.file, c.line, true});
      }
    }
  }
  std::set<std::pair<std::string, std::string>> seen_edges;
  std::vector<LockEdge> dedup;
  for (LockEdge& e : pa.lock_edges) {
    if (seen_edges.emplace(e.from, e.to).second) {
      dedup.push_back(std::move(e));
    }
  }
  pa.lock_edges = std::move(dedup);
  std::sort(pa.lock_edges.begin(), pa.lock_edges.end());

  // Cycle detection over the lock-id graph (self-loops included: a direct
  // re-acquisition edge is a one-node cycle).
  std::map<std::string, std::vector<std::string>> adj;
  std::map<std::string, int> color;  // 0 white, 1 on path, 2 done
  for (const LockEdge& e : pa.lock_edges) {
    adj[e.from].push_back(e.to);
    color[e.from] = 0;
    color[e.to] = 0;
  }
  std::set<std::string> cycle_keys;
  for (const auto& [start, c0] : color) {
    if (color[start] != 0) continue;
    struct Frame {
      std::string node;
      std::size_t next = 0;
    };
    std::vector<Frame> st;
    std::vector<std::string> path;
    st.push_back({start, 0});
    path.push_back(start);
    color[start] = 1;
    while (!st.empty()) {
      Frame& f = st.back();
      const std::vector<std::string>& nbrs = adj[f.node];
      if (f.next < nbrs.size()) {
        const std::string w = nbrs[f.next++];
        if (color[w] == 0) {
          color[w] = 1;
          path.push_back(w);
          st.push_back({w, 0});
        } else if (color[w] == 1) {
          const auto it = std::find(path.begin(), path.end(), w);
          std::vector<std::string> cyc(it, path.end());
          const auto min_it = std::min_element(cyc.begin(), cyc.end());
          std::rotate(cyc.begin(), min_it, cyc.end());
          std::string key;
          for (const std::string& id : cyc) key += id + "\x1f";
          if (cycle_keys.insert(key).second) {
            pa.lock_cycles.push_back(std::move(cyc));
          }
        }
      } else {
        color[f.node] = 2;
        path.pop_back();
        st.pop_back();
      }
    }
  }
  return pa;
}

std::vector<Violation> lint_interprocedural(const ProgramAnalysis& pa) {
  std::vector<Violation> out;
  const CallGraph& g = pa.graph;
  std::map<std::string_view, const FileAnalysis*> by_path;
  for (const FileAnalysis* fa : g.files()) by_path[fa->path] = fa;

  const auto emit = [&](const std::string& file, std::size_t line,
                        const char* rule, std::string msg) {
    const auto it = by_path.find(file);
    const FileAnalysis* fa = it == by_path.end() ? nullptr : it->second;
    const std::size_t li = line > 0 ? line - 1 : 0;
    if (fa != nullptr && line_suppressed(*fa, li, rule)) return;
    Violation v;
    v.file = file;
    v.line = line;
    v.rule = rule;
    v.severity = severity_of(rule);
    v.message = std::move(msg);
    if (fa != nullptr && li < fa->raw_lines.size()) {
      v.excerpt = trim(fa->raw_lines[li]);
    }
    out.push_back(std::move(v));
  };

  // hot-path-cost: one finding per (function, effect kind) at the
  // definition line, so a single reasoned allow-comment waives a function.
  for (std::size_t i = 0; i < g.nodes().size(); ++i) {
    const CgNode& n = g.nodes()[i];
    const FnSummary& s = pa.summaries[i];
    if (s.cold && s.cold_missing_reason) {
      emit(n.file, n.line, "hot-path-cost",
           "DFX_COLD on '" + n.qualified() +
               "' has no reason string; write DFX_COLD(\"why\")");
    }
    if (!s.hot) continue;
    if (s.allocates) {
      emit(n.file, n.line, "hot-path-cost",
           "DFX_HOT_PATH function '" + n.qualified() +
               "' may allocate: " + s.alloc_witness);
    }
    if (s.locks_writer) {
      emit(n.file, n.line, "hot-path-cost",
           "DFX_HOT_PATH function '" + n.qualified() +
               "' may acquire a writer mutex: " + s.lock_witness);
    }
    if (s.throws) {
      emit(n.file, n.line, "hot-path-cost",
           "DFX_HOT_PATH function '" + n.qualified() +
               "' may throw: " + s.throw_witness);
    }
  }

  // interprocedural-taint-flow: findings the enriched config produces that
  // the annotation-only config does not — flows that exist only because a
  // helper's summary carried taint across a call boundary.
  for (std::size_t i = 0; i < g.nodes().size(); ++i) {
    const CgNode& n = g.nodes()[i];
    if (!in_taint_scope(n.file)) continue;
    const std::vector<Token>& toks = g.files()[n.file_index]->tokens;
    const Cfg& cfg = g.cfg_of(n);
    const auto holes = holes_for(g.cfgs_for(n.file_index), cfg);
    const TaintConfig ecfg = enriched_taint_config(pa, i);
    if (ecfg.source_calls.size() == pa.base_taint.source_calls.size() &&
        ecfg.passthrough_calls.size() ==
            pa.base_taint.passthrough_calls.size() &&
        ecfg.sink_params.empty()) {
      continue;  // nothing interprocedural reaches this function
    }
    std::set<std::pair<std::size_t, std::string>> base_keys;
    for (const TaintFinding& f :
         analyze_taint(cfg, toks, pa.base_taint, holes).findings) {
      base_keys.emplace(f.token, f.sink);
    }
    std::set<std::pair<std::size_t, std::string>> reported;  // line+sink dedup
    for (const TaintFinding& f :
         analyze_taint(cfg, toks, ecfg, holes).findings) {
      if (base_keys.count({f.token, f.sink}) != 0) continue;
      const std::size_t line = toks[f.token].line;
      if (!reported.emplace(line, f.sink).second) continue;
      std::string msg;
      if (f.sink.starts_with("call-arg:")) {
        msg = "tainted value(s) '" + f.vars + "' passed to '" +
              f.sink.substr(9) +
              "()' in a parameter that reaches an unchecked sink inside "
              "the callee";
      } else {
        msg = "tainted value(s) '" + f.vars + "' reach a " + f.sink +
              " sink via a helper call (interprocedural flow); add a "
              "DFX_CHECK before the call boundary";
      }
      emit(n.file, line, "interprocedural-taint-flow", std::move(msg));
    }
  }

  // static-lock-cycle: one finding per distinct cycle, anchored at the
  // first edge's acquisition site.
  std::map<std::pair<std::string, std::string>,
           std::pair<std::string, std::size_t>>
      witness;
  for (const LockEdge& e : pa.lock_edges) {
    witness.emplace(std::make_pair(e.from, e.to),
                    std::make_pair(e.file, e.line));
  }
  for (const std::vector<std::string>& cyc : pa.lock_cycles) {
    if (cyc.empty()) continue;
    std::string shape;
    for (const std::string& id : cyc) shape += id + " -> ";
    shape += cyc.front();
    const auto wit =
        witness.find({cyc.front(), cyc[cyc.size() > 1 ? 1 : 0]});
    std::string file = wit != witness.end() ? wit->second.first : "";
    std::size_t line = wit != witness.end() ? wit->second.second : 0;
    emit(file, line, "static-lock-cycle",
         "static lock-order cycle: " + shape +
             " (consistent acquisition order required; see "
             "docs/STATIC_ANALYSIS.md)");
  }

  std::sort(out.begin(), out.end(), [](const Violation& a, const Violation& b) {
    return a.file != b.file ? a.file < b.file : a.line < b.line;
  });
  return out;
}

}  // namespace dfx::lint
