#include "dfixer_lint/callgraph.h"

#include <algorithm>
#include <string>
#include <utility>

namespace dfx::lint {
namespace {

constexpr std::size_t kNone = static_cast<std::size_t>(-1);

/// Names that look like calls in the token stream but are not: control flow,
/// operators-with-parens, contract macros, casts and function-style casts on
/// builtins. DFX_* macros are skipped by prefix in addition to this set.
bool is_non_call_name(std::string_view w) {
  static const std::set<std::string_view> kSkip = {
      "if",          "for",        "while",    "switch",     "return",
      "sizeof",      "alignof",    "decltype", "static_assert",
      "catch",       "new",        "delete",   "throw",      "co_await",
      "co_return",   "co_yield",   "noexcept", "alignas",    "typeid",
      "assert",      "defined",    "case",     "else",       "do",
      "goto",        "asm",        "operator", "static_cast",
      "dynamic_cast","reinterpret_cast",       "const_cast",
      // function-style casts / value-init on builtins
      "int",         "char",       "bool",     "float",      "double",
      "long",        "short",      "unsigned", "signed",     "void",
      "auto",        "size_t",     "ssize_t",  "ptrdiff_t",  "uintptr_t",
      "uint8_t",     "uint16_t",   "uint32_t", "uint64_t",   "int8_t",
      "int16_t",     "int32_t",    "int64_t",
  };
  return w.starts_with("DFX_") || kSkip.count(w) != 0;
}

/// Keywords after which `ident (` IS a call even though the previous token
/// is an identifier (`return helper(x)` vs the declaration `Type name(x)`).
bool is_call_prefix_keyword(std::string_view w) {
  return w == "return" || w == "throw" || w == "else" || w == "do" ||
         w == "co_return" || w == "co_await" || w == "co_yield" ||
         w == "case" || w == "new" || w == "and" || w == "or" || w == "not";
}

std::size_t match_paren_like(const std::vector<Token>& toks, std::size_t open,
                             std::size_t limit) {
  const std::string_view o = toks[open].text;
  const std::string_view c = o == "(" ? ")" : o == "[" ? "]" : "}";
  int depth = 0;
  for (std::size_t j = open; j < limit; ++j) {
    if (toks[j].text == o) ++depth;
    if (toks[j].text == c && --depth == 0) return j;
  }
  return kNone;
}

/// When toks[open] is the `<` of a template-argument list that closes and is
/// directly followed by `(`, return the index of that `(`; kNone otherwise.
/// Mirrors the lexer's split_template_closers whitelist so `foo<Bar<T>>(x)`
/// (already split into two `>` tokens) resolves as a call to foo.
std::size_t angle_call_paren(const std::vector<Token>& toks, std::size_t open,
                             std::size_t limit) {
  int depth = 0;
  const std::size_t scan_limit = std::min(limit, open + 128);
  for (std::size_t j = open; j < scan_limit; ++j) {
    const Token& t = toks[j];
    const std::string_view x = t.text;
    if (x == "<") {
      ++depth;
      continue;
    }
    if (x == ">") {
      if (--depth == 0) {
        return j + 1 < limit && toks[j + 1].text == "(" ? j + 1 : kNone;
      }
      continue;
    }
    if (t.kind == Tok::kIdent || t.kind == Tok::kNumber) continue;
    if (x == "::" || x == "," || x == "*" || x == "&" || x == "&&" ||
        x == "...") {
      continue;
    }
    if (x == "(" || x == "[") {
      const std::size_t close = match_paren_like(toks, j, scan_limit);
      if (close == kNone) return kNone;
      j = close;
      continue;
    }
    return kNone;  // not a template-argument shape (comparison, shift, ...)
  }
  return kNone;
}

/// Collect the `A::B::` chain directly before the token at `name_tok`.
/// Returns the joined qualifier and sets `*chain_start` to the index of the
/// chain's first token (== name_tok when there is no qualifier).
std::string back_walk_qualifier(const std::vector<Token>& toks,
                                std::size_t name_tok,
                                std::size_t* chain_start) {
  std::vector<std::string_view> parts;
  std::size_t i = name_tok;
  while (i >= 2 && toks[i - 1].text == "::" &&
         toks[i - 2].kind == Tok::kIdent) {
    parts.push_back(toks[i - 2].text);
    i -= 2;
  }
  if (chain_start != nullptr) *chain_start = i;
  std::string q;
  for (auto it = parts.rbegin(); it != parts.rend(); ++it) {
    if (!q.empty()) q += "::";
    q += *it;
  }
  return q;
}

std::string_view last_component(std::string_view qual) {
  const std::size_t pos = qual.rfind("::");
  return pos == std::string_view::npos ? qual : qual.substr(pos + 2);
}

/// Does the qualifier spelled at a call site plausibly name the definition's
/// enclosing scope? Component-suffix and last-component matches both count —
/// the index has no namespace resolution, so this errs toward matching.
bool qualifier_matches(const std::string& node_qual,
                       const std::string& call_qual) {
  if (call_qual.empty()) return true;
  if (node_qual.empty()) return false;
  if (node_qual == call_qual) return true;
  if (node_qual.size() > call_qual.size() &&
      node_qual.ends_with("::" + call_qual)) {
    return true;
  }
  if (call_qual.size() > node_qual.size() &&
      call_qual.ends_with("::" + node_qual)) {
    return true;
  }
  return last_component(node_qual) == last_component(call_qual);
}

}  // namespace

CallGraph CallGraph::build(std::vector<const FileAnalysis*> files) {
  CallGraph g;
  g.files_ = std::move(files);
  g.cfgs_.reserve(g.files_.size());

  // Pass 1: one node per named function definition.
  for (std::size_t fi = 0; fi < g.files_.size(); ++fi) {
    const FileAnalysis& fa = *g.files_[fi];
    g.cfgs_.push_back(build_cfgs(fa.tokens));
    const std::vector<Cfg>& cfgs = g.cfgs_.back();
    for (std::size_t ci = 0; ci < cfgs.size(); ++ci) {
      const Cfg& cfg = cfgs[ci];
      if (cfg.name == "<lambda>" || cfg.name.empty()) continue;
      CgNode n;
      n.name = cfg.name;
      n.file = fa.path;
      n.file_index = fi;
      n.cfg_index = ci;
      // The declared name sits two tokens before the parameter range (the
      // `(` is at params_begin - 1). Specializations and exotic headers can
      // break that; fall back to an unqualified node at the body line.
      const std::size_t name_tok =
          cfg.params_begin >= 2 ? cfg.params_begin - 2 : kNone;
      if (name_tok != kNone && name_tok < fa.tokens.size() &&
          fa.tokens[name_tok].text == cfg.name) {
        n.qualifier = back_walk_qualifier(fa.tokens, name_tok, nullptr);
        n.line = fa.tokens[name_tok].line;
      } else if (cfg.body_open < fa.tokens.size()) {
        n.line = fa.tokens[cfg.body_open].line;
      }
      g.by_name_[n.name].push_back(g.nodes_.size());
      g.nodes_.push_back(std::move(n));
    }
  }

  // Pass 2: call sites. Lambda bodies are scanned as part of the enclosing
  // named function (they have no node of their own), so a helper called
  // from inside a lambda still charges the enclosing function — the
  // conservative direction for every summary.
  for (CgNode& n : g.nodes_) {
    const FileAnalysis& fa = *g.files_[n.file_index];
    const std::vector<Token>& toks = fa.tokens;
    const Cfg& cfg = g.cfgs_[n.file_index][n.cfg_index];
    const std::size_t end = std::min(cfg.body_close, toks.size());
    for (std::size_t i = cfg.body_open + 1; i < end; ++i) {
      if (toks[i].kind != Tok::kIdent) continue;
      const std::string_view w = toks[i].text;
      if (is_non_call_name(w)) continue;
      std::size_t paren = kNone;
      if (i + 1 < end && toks[i + 1].text == "(") {
        paren = i + 1;
      } else if (i + 1 < end && toks[i + 1].text == "<") {
        paren = angle_call_paren(toks, i + 1, end);
      }
      if (paren == kNone) continue;
      std::size_t chain_start = i;
      std::string qualifier = back_walk_qualifier(toks, i, &chain_start);
      // Declaration shape `Type name(...)`: the token before the whole
      // qualified name is another identifier (or a template closer) — the
      // type — unless it is a keyword that introduces an expression.
      if (chain_start > 0) {
        const Token& prev = toks[chain_start - 1];
        if (prev.text == ">") continue;
        if (prev.kind == Tok::kIdent && !is_call_prefix_keyword(prev.text)) {
          continue;
        }
      }
      CgCall call;
      call.name = std::string(w);
      call.qualifier = std::move(qualifier);
      call.token = i;
      call.line = toks[i].line;
      const auto it = g.by_name_.find(w);
      if (it != g.by_name_.end()) {
        for (std::size_t cand : it->second) {
          if (qualifier_matches(g.nodes_[cand].qualifier, call.qualifier)) {
            call.callees.push_back(cand);
          }
        }
        // A qualifier that matched nothing (aliased namespace, base class)
        // falls back to every definition of the name — over-approximate.
        if (call.callees.empty()) call.callees = it->second;
      }
      call.external = call.callees.empty();
      n.calls.push_back(std::move(call));
      i = paren;  // resume after the callee name; arguments get their own scan
    }
  }
  return g;
}

std::vector<std::size_t> CallGraph::find(std::string_view name) const {
  const auto it = by_name_.find(name);
  return it == by_name_.end() ? std::vector<std::size_t>{} : it->second;
}

std::vector<std::string> CallGraph::externals() const {
  std::set<std::string> names;
  for (const CgNode& n : nodes_) {
    for (const CgCall& c : n.calls) {
      if (c.external) {
        names.insert(c.qualifier.empty() ? c.name
                                         : c.qualifier + "::" + c.name);
      }
    }
  }
  return {names.begin(), names.end()};
}

std::vector<std::vector<std::size_t>> CallGraph::sccs() const {
  const std::size_t n = nodes_.size();
  std::vector<std::vector<std::size_t>> adj(n);
  for (std::size_t i = 0; i < n; ++i) {
    std::set<std::size_t> outs;
    for (const CgCall& c : nodes_[i].calls) {
      outs.insert(c.callees.begin(), c.callees.end());
    }
    adj[i].assign(outs.begin(), outs.end());
  }
  // Iterative Tarjan. SCCs pop callees-first: a successor's component is
  // complete before the caller's root finishes — exactly the bottom-up
  // order the summary fixpoint wants.
  std::vector<std::size_t> index(n, kNone);
  std::vector<std::size_t> low(n, 0);
  std::vector<char> on_stack(n, 0);
  std::vector<std::size_t> stack;
  std::vector<std::vector<std::size_t>> out;
  std::size_t counter = 0;
  struct Frame {
    std::size_t v;
    std::size_t child;
  };
  for (std::size_t root = 0; root < n; ++root) {
    if (index[root] != kNone) continue;
    std::vector<Frame> frames = {{root, 0}};
    while (!frames.empty()) {
      Frame& f = frames.back();
      const std::size_t v = f.v;
      if (f.child == 0 && index[v] == kNone) {
        index[v] = low[v] = counter++;
        stack.push_back(v);
        on_stack[v] = 1;
      }
      bool descended = false;
      while (f.child < adj[v].size()) {
        const std::size_t w = adj[v][f.child++];
        if (index[w] == kNone) {
          frames.push_back({w, 0});
          descended = true;
          break;
        }
        if (on_stack[w] != 0) low[v] = std::min(low[v], index[w]);
      }
      if (descended) continue;
      if (low[v] == index[v]) {
        std::vector<std::size_t> comp;
        for (;;) {
          const std::size_t w = stack.back();
          stack.pop_back();
          on_stack[w] = 0;
          comp.push_back(w);
          if (w == v) break;
        }
        out.push_back(std::move(comp));
      }
      frames.pop_back();
      if (!frames.empty()) {
        low[frames.back().v] = std::min(low[frames.back().v], low[v]);
      }
    }
  }
  return out;
}

std::string CallGraph::dump() const {
  std::string out;
  for (const CgNode& n : nodes_) {
    out += n.qualified();
    out += " (" + n.file + ":" + std::to_string(n.line) + ")\n";
    for (const CgCall& c : n.calls) {
      out += "  -> ";
      if (c.external) {
        out += "[extern] ";
        out += c.qualifier.empty() ? c.name : c.qualifier + "::" + c.name;
      } else {
        for (std::size_t k = 0; k < c.callees.size(); ++k) {
          if (k != 0) out += ", ";
          out += nodes_[c.callees[k]].qualified();
        }
      }
      out += " @" + std::to_string(c.line) + "\n";
    }
  }
  const std::vector<std::string> ext = externals();
  out += "externals (" + std::to_string(ext.size()) + "):";
  for (const std::string& e : ext) out += " " + e;
  out += "\n";
  return out;
}

}  // namespace dfx::lint
