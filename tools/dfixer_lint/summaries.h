// Bottom-up function summaries over the call graph (callgraph.h), feeding
// dfixer_lint's three interprocedural rules:
//
//  * hot-path-cost — DFX_HOT_PATH functions must not transitively allocate,
//    acquire a writer mutex, or throw. One finding per (function, effect
//    kind) at the DEFINITION line, so one reasoned
//    `// dfx-lint: allow(hot-path-cost): ...` waives a function rather than
//    chasing witness lines. DFX_COLD(reason) on a callee stops effect
//    propagation out of it; a DFX_COLD with no reason string is itself a
//    violation.
//
//  * interprocedural-taint-flow — per-function taint summaries (does a
//    parameter reach a sink? does a parameter taint the return value? does
//    the return value originate from wire data?) computed by differential
//    taint runs, then composed into each caller's TaintConfig. A finding is
//    reported only when the enriched config flags something the
//    annotation-only config does not — the intraprocedural rule keeps its
//    own findings.
//
//  * static-lock-cycle — MutexLock acquisition order observed statically:
//    in-body nesting edges plus held-locks × callee-transitive-locks edges
//    at every call site, cycle-checked. tests/test_callgraph.cpp
//    cross-checks the edge set against the runtime lockgraph.
//
// Effects of unresolved externals are modeled by a curated allowlist
// (allocating/throwing std:: members); unknown externals are assumed
// effect-free but stay visible in --callgraph-dump. The model and its
// escape hatches are documented in docs/STATIC_ANALYSIS.md
// ("Interprocedural analysis").
#pragma once

#include <cstddef>
#include <map>
#include <set>
#include <string>
#include <string_view>
#include <vector>

#include "dfixer_lint/callgraph.h"
#include "dfixer_lint/dataflow.h"
#include "dfixer_lint/lint_core.h"
#include "dfixer_lint/symbols.h"

namespace dfx::lint {

struct FnSummary {
  bool hot = false;                  // DFX_HOT_PATH on some declaration
  bool cold = false;                 // DFX_COLD(...) on some declaration
  bool cold_missing_reason = false;  // DFX_COLD without a string literal

  // Transitive effects, each with a human-readable witness chain.
  bool allocates = false;
  std::string alloc_witness;
  bool throws = false;
  std::string throw_witness;
  bool locks = false;          // acquires any dfx::Mutex, transitively
  bool locks_writer = false;   // ... one whose id names a writer mutex
  std::string lock_witness;

  // Taint transfer. `params` are the declared parameter names in order;
  // the two bit-vectors are parallel to it.
  std::vector<std::string> params;
  std::vector<bool> param_to_sink;    // param reaches a sink in the body
  std::vector<bool> param_to_return;  // param taints the return value
  bool returns_taint = false;         // return value is wire-derived

  // Lock ids this function may acquire, including through callees.
  std::set<std::string> locks_held_any;
  // Lock ids acquired directly in this body, in source order.
  std::vector<std::string> own_locks;
};

/// One edge of the static lock-order graph: `from` was held when `to` was
/// acquired (directly, or transitively through the call at file:line).
struct LockEdge {
  std::string from;
  std::string to;
  std::string file;
  std::size_t line = 0;
  bool via_call = false;

  bool operator<(const LockEdge& o) const {
    return from != o.from ? from < o.from : to < o.to;
  }
};

struct ProgramAnalysis {
  CallGraph graph;
  std::vector<FnSummary> summaries;  // parallel to graph.nodes()
  std::vector<LockEdge> lock_edges;  // deduplicated by (from, to)
  // Cycles in the lock-order graph, each rotated to start at its smallest
  // lock id: [a, b, c] means a -> b -> c -> a.
  std::vector<std::vector<std::string>> lock_cycles;
  // Annotation-only taint config (DFX_TAINTED / DFX_TAINT_PASSTHROUGH from
  // every indexed file) — the reference the interprocedural rule diffs
  // against.
  TaintConfig base_taint;
};

/// `base_taint` enriched with the summaries of everything the node calls:
/// taint-returning callees become sources, parameter-passthrough callees
/// become passthroughs, and parameter-to-sink callees populate sink_params.
TaintConfig enriched_taint_config(const ProgramAnalysis& pa,
                                  std::size_t node_index);

/// Build the call graph over `files`, compute every summary bottom-up in
/// SCC order, and derive the static lock-order graph. `symbols` (optional)
/// contributes taint/hot/cold annotations harvested from files outside this
/// set; annotations in `files` themselves are always picked up.
ProgramAnalysis analyze_program(std::vector<const FileAnalysis*> files,
                                const SymbolIndex* symbols);

/// Run the three interprocedural rules and return their violations
/// (suppressible per line like every other rule).
std::vector<Violation> lint_interprocedural(const ProgramAnalysis& pa);

}  // namespace dfx::lint
