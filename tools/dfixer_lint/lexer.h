// Token layer of dfixer_lint's analysis engine. The lexer turns one C++
// translation unit into a flat token stream with 1-based line numbers so the
// rules in lint_core.cpp can reason across statement and line boundaries —
// the per-line regex scanner this replaced could not see that
// `v.front(\n)` or `std::\nmutex` span lines. Comments are skipped entirely,
// string/character literals collapse into a single placeholder token (their
// contents never trip a rule), and preprocessor directives are dropped
// (#include graphs are handled separately, from the raw lines).
#pragma once

#include <cstdint>
#include <string_view>
#include <vector>

namespace dfx::lint {

enum class Tok : std::uint8_t {
  kIdent,   // identifiers and keywords, text preserved
  kNumber,  // pp-number (ints, floats, hex, digit separators)
  kString,  // any string literal (raw/prefixed included); text is empty
  kChar,    // character literal; text is empty
  kPunct,   // operators and punctuation, text preserved ("::" is one token)
};

struct Token {
  Tok kind = Tok::kPunct;
  std::string_view text;   // view into the lexed buffer; empty for literals
  std::uint32_t line = 0;  // 1-based line of the token's first character
};

/// Lex `src` into tokens. The returned views point into `src`; the caller
/// keeps the buffer alive for as long as the tokens are used (FileAnalysis
/// owns the buffer behind a stable pointer for exactly this reason).
std::vector<Token> lex(std::string_view src);

}  // namespace dfx::lint
