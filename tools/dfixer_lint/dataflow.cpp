#include "dfixer_lint/dataflow.h"

#include <algorithm>

namespace dfx::lint {
namespace {

constexpr std::size_t kNone = static_cast<std::size_t>(-1);

bool is_open(std::string_view s) { return s == "(" || s == "[" || s == "{"; }
bool is_close(std::string_view s) { return s == ")" || s == "]" || s == "}"; }

std::size_t match_bracket(const std::vector<Token>& t, std::size_t i,
                          std::size_t limit) {
  int depth = 0;
  for (std::size_t j = i; j < limit; ++j) {
    const std::string_view s = t[j].text;
    if (is_open(s)) {
      ++depth;
    } else if (is_close(s)) {
      if (--depth == 0) return j;
      if (depth < 0) return kNone;
    }
  }
  return kNone;
}

std::size_t find_top(const std::vector<Token>& t, std::size_t b, std::size_t e,
                     std::string_view what) {
  int depth = 0;
  for (std::size_t j = b; j < e; ++j) {
    const std::string_view s = t[j].text;
    if (is_open(s)) {
      ++depth;
    } else if (is_close(s)) {
      --depth;
    } else if (depth == 0 && s == what) {
      return j;
    }
  }
  return kNone;
}

bool is_comparison(std::string_view s) {
  return s == "<" || s == "<=" || s == ">" || s == ">=" || s == "==" ||
         s == "!=";
}

bool is_guard_name(std::string_view s) {
  return s == "DFX_CHECK" || s == "DFX_DCHECK";
}

/// Members whose value is a size/position observation, not wire content:
/// `query.size()` is the trusted buffer length even when `query` is tainted.
bool is_size_like_member(std::string_view s) {
  static const std::set<std::string_view> kSizeLike = {
      "size", "length",   "remaining", "empty", "ok",   "position",
      "data", "capacity", "count",     "begin", "end"};
  return kSizeLike.contains(s);
}

/// Invoke fn(piece_begin, piece_end) for every condition piece asserted on
/// this branch: the `&&`-conjuncts on the true edge, the `||`-disjuncts on
/// the false edge. The opposite short-circuit operator (or a ternary) at the
/// top level means neither branch pins every piece — assert nothing.
template <typename Fn>
void for_each_cond_fact(const std::vector<Token>& t, std::size_t b,
                        std::size_t e, bool branch_true, Fn&& fn) {
  e = std::min(e, t.size());
  while (b < e && t[b].text == "(" && match_bracket(t, b, e) == e - 1) {
    ++b;
    --e;
  }
  if (b >= e) return;
  const std::string_view splitter = branch_true ? "&&" : "||";
  const std::string_view blocker = branch_true ? "||" : "&&";
  std::vector<std::pair<std::size_t, std::size_t>> pieces;
  int depth = 0;
  std::size_t piece = b;
  for (std::size_t j = b; j < e; ++j) {
    const std::string_view s = t[j].text;
    if (is_open(s)) {
      ++depth;
    } else if (is_close(s)) {
      --depth;
    } else if (depth == 0) {
      if (s == blocker || s == "?") return;
      if (s == splitter) {
        pieces.emplace_back(piece, j);
        piece = j + 1;
      }
    }
  }
  pieces.emplace_back(piece, e);
  for (const auto& [pb, pe] : pieces) fn(pb, pe);
}

// ---------------------------------------------------------------------------
// Dominating-guard domain: 1-bit "an unguarded path reaches here".
// ---------------------------------------------------------------------------

struct GuardDomain {
  using State = char;  // 1 = some entry→here path has passed no guard

  const std::vector<Token>& t;
  const GuardSpec& spec;

  State bottom() const { return 0; }
  State entry_state(const Cfg&) const { return 1; }

  bool join(State& into, const State& from) const {
    if (from > into) {
      into = from;
      return true;
    }
    return false;
  }

  /// A guard call inside [b, e): an any_guard_calls name, or a guard_calls
  /// name whose argument list mentions one of the subjects.
  bool guard_in_range(std::size_t b, std::size_t e) const {
    e = std::min(e, t.size());
    for (std::size_t j = b; j < e; ++j) {
      if (t[j].kind != Tok::kIdent || j + 1 >= t.size() ||
          t[j + 1].text != "(") {
        continue;
      }
      const std::string_view name = t[j].text;
      if (spec.any_guard_calls.contains(name)) return true;
      if (!spec.guard_calls.contains(name)) continue;
      const std::size_t close = match_bracket(t, j + 1, t.size());
      if (close == kNone) continue;
      for (std::size_t k = j + 2; k < close; ++k) {
        if (t[k].kind == Tok::kIdent && spec.subjects.contains(t[k].text)) {
          return true;
        }
      }
    }
    return false;
  }

  void transfer_stmt(const CfgStmt& st, State& s) const {
    if (s != 0 && guard_in_range(st.begin, st.end)) s = 0;
  }

  void transfer_edge(const CfgEdge& e, State& s) const {
    if (s == 0 || !spec.edge_bound_tests || !e.has_cond) return;
    bool guarded = false;
    for_each_cond_fact(
        t, e.cond_begin, e.cond_end, e.cond_true,
        [&](std::size_t pb, std::size_t pe) {
          if (guarded) return;
          bool cmp = false;
          bool subj = false;
          for (std::size_t k = pb; k < pe; ++k) {
            if (is_comparison(t[k].text)) cmp = true;
            if (t[k].kind == Tok::kIdent && spec.subjects.contains(t[k].text)) {
              subj = true;
            }
          }
          if (cmp && subj) guarded = true;
        });
    if (guarded) s = 0;
  }
};

std::string join_names(std::vector<std::string_view> names) {
  std::sort(names.begin(), names.end());
  names.erase(std::unique(names.begin(), names.end()), names.end());
  std::string out;
  for (const std::string_view n : names) {
    if (!out.empty()) out += ", ";
    out += std::string(n);
  }
  return out;
}

// ---------------------------------------------------------------------------
// Taint domain.
// ---------------------------------------------------------------------------

struct TaintDomain {
  using State = TaintState;

  const std::vector<Token>& t;
  const TaintConfig& config;

  State bottom() const { return {}; }

  State entry_state(const Cfg& c) const {
    State s;
    std::size_t b = c.params_begin;
    const std::size_t e = std::min(c.params_end, t.size());
    while (b < e) {
      std::size_t comma = find_top(t, b, e, ",");
      if (comma == kNone) comma = e;
      bool tainted = false;
      std::size_t last_ident = kNone;
      int depth = 0;
      for (std::size_t j = b; j < comma; ++j) {
        const std::string_view w = t[j].text;
        if (is_open(w)) ++depth;
        if (is_close(w)) --depth;
        if (depth == 0 && w == "=") break;  // default argument value
        if (t[j].kind == Tok::kIdent) {
          if (w == "DFX_TAINTED") {
            tainted = true;
          } else {
            last_ident = j;
          }
        }
      }
      if (tainted && last_ident != kNone) {
        s[std::string(t[last_ident].text)] = Taint::kTainted;
      }
      b = comma + 1;
    }
    // Interprocedural per-parameter summary runs seed one extra name.
    for (const std::string& seed : config.seed_params) {
      s[seed] = Taint::kTainted;
    }
    return s;
  }

  bool join(State& into, const State& from) const {
    bool changed = false;
    for (const auto& [name, taint] : from) {
      const auto [it, inserted] = into.try_emplace(name, taint);
      if (inserted) {
        if (taint != Taint::kUntainted) changed = true;
      } else if (taint > it->second) {
        it->second = taint;
        changed = true;
      }
    }
    return changed;
  }

  /// Taint of the expression [b, e) under `s`. When `names` is non-null, the
  /// identifiers contributing kTainted are appended to it.
  Taint eval(std::size_t b, std::size_t e, const State& s,
             std::vector<std::string_view>* names) const {
    Taint result = Taint::kUntainted;
    bool sanitized = false;
    e = std::min(e, t.size());
    // `sel ? a : b` evaluates to one of the arms; the selector's taint
    // picks the branch, never the value's magnitude.
    const std::size_t q = find_top(t, b, e, "?");
    if (q != kNone) {
      const std::size_t colon = find_top(t, q + 1, e, ":");
      if (colon != kNone) {
        return std::max(eval(q + 1, colon, s, names),
                        eval(colon + 1, e, s, names));
      }
    }
    // `a & mask` / `a % mod`: an untainted operand bounds the result — the
    // hash-to-shard idiom `hash(key) & (kShards - 1)` yields a checked
    // value, not raw wire data. Only binary uses count (the token before
    // the operator must end a value); both-sides-tainted falls through.
    for (const std::string_view op : {std::string_view("&"),
                                      std::string_view("%")}) {
      const std::size_t at = find_top(t, b, e, op);
      if (at == kNone || at <= b || at + 1 >= e) continue;
      const Token& prev = t[at - 1];
      const bool binary = prev.kind == Tok::kIdent ||
                          prev.kind == Tok::kNumber || prev.text == ")" ||
                          prev.text == "]";
      if (!binary) continue;
      const Taint lhs = eval(b, at, s, nullptr);
      const Taint rhs = eval(at + 1, e, s, nullptr);
      if (lhs == Taint::kUntainted || rhs == Taint::kUntainted) {
        const Taint hi = std::max(lhs, rhs);
        return hi == Taint::kTainted ? Taint::kChecked : hi;
      }
      break;
    }
    for (std::size_t j = b; j < e; ++j) {
      if (t[j].kind != Tok::kIdent) continue;
      const std::string_view w = t[j].text;
      const bool member =
          j > b && (t[j - 1].text == "." || t[j - 1].text == "->");
      const bool call = j + 1 < t.size() && t[j + 1].text == "(";
      if (call) {
        if (w == "min" || w == "clamp") {
          sanitized = true;  // std::min/std::clamp bound the result
          continue;
        }
        if (is_guard_name(w) || w == "sizeof" || w == "alignof" ||
            w == "decltype" || w == "static_assert") {
          const std::size_t close = match_bracket(t, j + 1, t.size());
          if (close != kNone && close < e) j = close;  // not value uses
          continue;
        }
        if (config.source_calls.contains(w)) {
          result = std::max(result, Taint::kTainted);
          if (names != nullptr) names->push_back(w);
          continue;
        }
        if (config.passthrough_calls.contains(w)) {
          const std::size_t close = match_bracket(t, j + 1, t.size());
          const std::size_t lim = close == kNone ? e : std::min(close, e);
          result = std::max(result, eval(j + 2, lim, s, names));
          if (close != kNone && close < e) j = close;
          continue;
        }
        if (config.neutral_calls.contains(w)) {
          // Summaries prove this call's result is clean regardless of its
          // arguments (sinks INSIDE it are the callee's own findings, or
          // sink_params at the call site) — skip the whole call expression.
          const std::size_t close = match_bracket(t, j + 1, t.size());
          if (close != kNone && close < e) j = close;
          continue;
        }
        continue;  // unknown call: its name is not a value
      }
      if (member) {
        if (config.tainted_fields.contains(w)) {
          result = std::max(result, Taint::kTainted);
          if (names != nullptr) names->push_back(w);
        }
        continue;  // other member names are not tracked locals
      }
      const auto it = s.find(w);
      if (it == s.end() || it->second == Taint::kUntainted) continue;
      // `buf.size()` — a size-like observation of a tainted object is the
      // trusted length, not wire content; skip the base.
      if (j + 3 < t.size() &&
          (t[j + 1].text == "." || t[j + 1].text == "->") &&
          t[j + 2].kind == Tok::kIdent && is_size_like_member(t[j + 2].text) &&
          t[j + 3].text == "(") {
        continue;
      }
      result = std::max(result, it->second);
      if (it->second == Taint::kTainted && names != nullptr) {
        names->push_back(w);
      }
    }
    if (sanitized && result == Taint::kTainted) result = Taint::kChecked;
    return result;
  }

  void transfer_stmt(const CfgStmt& st, State& s) const {
    const std::size_t b = st.begin;
    const std::size_t e = std::min(st.end, t.size());
    // DFX_CHECK/DFX_DCHECK have abort semantics: past this statement, every
    // tracked identifier the contract mentions is bounded.
    for (std::size_t j = b; j < e; ++j) {
      if (t[j].kind != Tok::kIdent || !is_guard_name(t[j].text) ||
          j + 1 >= e || t[j + 1].text != "(") {
        continue;
      }
      const std::size_t close = match_bracket(t, j + 1, t.size());
      const std::size_t lim = close == kNone ? e : std::min(close, e);
      for (std::size_t k = j + 2; k < lim; ++k) {
        if (t[k].kind != Tok::kIdent) continue;
        const auto it = s.find(t[k].text);
        if (it != s.end() && it->second == Taint::kTainted) {
          it->second = Taint::kChecked;
        }
      }
    }
    if (st.kind == StmtKind::kRangeHead) {
      // `decl : range` — the element binds from the range expression.
      const std::size_t colon = find_top(t, b, e, ":");
      if (colon == kNone) return;
      const std::size_t target = last_ident_in(b, colon);
      if (target == kNone) return;
      const Taint rhs = eval(colon + 1, e, s, nullptr);
      if (rhs != Taint::kUntainted || s.contains(t[target].text)) {
        s[std::string(t[target].text)] = rhs;
      }
      return;
    }
    const auto [op, compound] = find_assign(b, e);
    if (op == kNone) return;
    Taint rhs = eval(op + 1, e, s, nullptr);
    // `tc = full > limit;` assigns a bool: the attacker picks which branch
    // it drives, never a magnitude — bools cannot size or index anything.
    if (rhs != Taint::kUntainted && bool_valued(op + 1, e)) {
      rhs = Taint::kUntainted;
    }
    apply_write(b, op, compound, rhs, s);
  }

  /// Does [b, e) carry a top-level comparison or logical operator, making
  /// the whole expression bool-valued? The template arguments of named
  /// casts are skipped so their angle brackets do not read as comparisons;
  /// a top-level `?:` means comparisons only select, so it does not count.
  bool bool_valued(std::size_t b, std::size_t e) const {
    static const std::set<std::string_view> kCasts = {
        "static_cast", "dynamic_cast", "reinterpret_cast", "const_cast"};
    int depth = 0;
    bool cmp = false;
    e = std::min(e, t.size());
    for (std::size_t j = b; j < e; ++j) {
      const std::string_view w = t[j].text;
      if (t[j].kind == Tok::kIdent && kCasts.contains(w) && j + 1 < e &&
          t[j + 1].text == "<") {
        int angle = 0;
        std::size_t k = j + 1;
        for (; k < e; ++k) {
          if (t[k].text == "<") ++angle;
          if (t[k].text == ">" && --angle == 0) break;
        }
        j = k;
        continue;
      }
      if (is_open(w)) {
        ++depth;
      } else if (is_close(w)) {
        --depth;
      } else if (depth == 0) {
        if (w == "?") return false;  // ternary: the arms carry the value
        if (is_comparison(w) || w == "&&" || w == "||") cmp = true;
      }
    }
    return cmp;
  }

  void transfer_edge(const CfgEdge& e, State& s) const {
    if (!e.has_cond) return;
    // A branch that compared a value pins it on this edge. The comparison's
    // direction is deliberately ignored — cheap, and wrong only toward
    // false negatives.
    for_each_cond_fact(t, e.cond_begin, e.cond_end, e.cond_true,
                       [&](std::size_t pb, std::size_t pe) {
                         bool cmp = false;
                         for (std::size_t k = pb; k < pe; ++k) {
                           if (is_comparison(t[k].text)) {
                             cmp = true;
                             break;
                           }
                         }
                         if (!cmp) return;
                         for (std::size_t k = pb; k < pe; ++k) {
                           if (t[k].kind != Tok::kIdent) continue;
                           const auto it = s.find(t[k].text);
                           if (it != s.end() &&
                               it->second == Taint::kTainted) {
                             it->second = Taint::kChecked;
                           }
                         }
                       });
  }

  std::size_t last_ident_in(std::size_t b, std::size_t e) const {
    std::size_t last = kNone;
    for (std::size_t j = b; j < e && j < t.size(); ++j) {
      if (t[j].kind == Tok::kIdent) last = j;
    }
    return last;
  }

  std::size_t first_ident_in(std::size_t b, std::size_t e) const {
    for (std::size_t j = b; j < e && j < t.size(); ++j) {
      if (t[j].kind == Tok::kIdent) return j;
    }
    return kNone;
  }

  /// First top-level assignment operator in [b, e): {index, is_compound}.
  std::pair<std::size_t, bool> find_assign(std::size_t b,
                                           std::size_t e) const {
    static const std::set<std::string_view> kCompound = {
        "+=", "-=", "*=", "/=", "%=", "&=", "|=", "^=", "<<=", ">>="};
    int depth = 0;
    for (std::size_t j = b; j < e && j < t.size(); ++j) {
      const std::string_view w = t[j].text;
      if (is_open(w)) {
        ++depth;
      } else if (is_close(w)) {
        --depth;
      } else if (depth == 0 && t[j].kind == Tok::kPunct) {
        if (w == "=") return {j, false};
        if (kCompound.contains(w)) return {j, true};
      }
    }
    return {kNone, false};
  }

  void apply_write(std::size_t lb, std::size_t le, bool compound, Taint rhs,
                   State& s) const {
    bool has_subscript = false;
    bool has_member = false;
    bool is_binding = false;
    for (std::size_t j = lb; j < le; ++j) {
      const std::string_view w = t[j].text;
      if (w == "[") {
        if (j > lb && t[j - 1].text == "auto") {
          is_binding = true;  // structured binding `auto [a, b] = ...`
        } else {
          has_subscript = true;
        }
      }
      if (w == "." || w == "->") has_member = true;
    }
    if (is_binding) {
      for (std::size_t j = lb; j < le; ++j) {
        if (t[j].text != "[") continue;
        const std::size_t close = match_bracket(t, j, le);
        const std::size_t lim = close == kNone ? le : close;
        for (std::size_t k = j + 1; k < lim; ++k) {
          if (t[k].kind == Tok::kIdent) s[std::string(t[k].text)] = rhs;
        }
        break;
      }
      return;
    }
    if (has_subscript) return;  // element write: container taint unchanged
    if (has_member) {
      // `obj.field = wire` taints the object; a clean write to one member
      // does not clean the rest of it.
      const std::size_t base = first_ident_in(lb, le);
      if (base == kNone || rhs == Taint::kUntainted) return;
      std::string key(t[base].text);
      const auto it = s.find(key);
      const Taint cur = it == s.end() ? Taint::kUntainted : it->second;
      s[std::move(key)] = std::max(cur, rhs);
      return;
    }
    const std::size_t target = last_ident_in(lb, le);
    if (target == kNone) return;
    std::string key(t[target].text);
    if (compound) {
      const auto it = s.find(key);
      const Taint cur = it == s.end() ? Taint::kUntainted : it->second;
      s[std::move(key)] = std::max(cur, rhs);
    } else if (rhs != Taint::kUntainted || s.contains(key)) {
      s[std::move(key)] = rhs;  // strong update: reassignment can clean
    }
  }
};

/// Blocks reachable from entry — dead blocks carry bottom state and must
/// not be scanned for sinks.
std::vector<char> reachable_blocks(const Cfg& c) {
  std::vector<char> reach(c.blocks.size(), 0);
  if (c.blocks.empty()) return reach;
  std::vector<std::size_t> work = {c.entry};
  reach[c.entry] = 1;
  while (!work.empty()) {
    const std::size_t b = work.back();
    work.pop_back();
    for (const CfgEdge& e : c.blocks[b].succs) {
      if (reach[e.to] == 0) {
        reach[e.to] = 1;
        work.push_back(e.to);
      }
    }
  }
  return reach;
}

}  // namespace

bool has_dominating_guard(const Cfg& cfg, const std::vector<Token>& tokens,
                          std::size_t use_token, const GuardSpec& spec) {
  std::size_t block = 0;
  std::size_t stmt = 0;
  if (!locate(cfg, use_token, &block, &stmt)) return false;
  const GuardDomain dom{tokens, spec};
  const ForwardResult<GuardDomain> r = solve_forward(cfg, dom);
  char s = r.in[block];
  const std::vector<CfgStmt>& stmts = cfg.blocks[block].stmts;
  for (std::size_t k = 0; k < stmt && s != 0; ++k) {
    dom.transfer_stmt(stmts[k], s);
  }
  // A guard earlier in the very statement containing the use also counts.
  if (s != 0 && dom.guard_in_range(stmts[stmt].begin, use_token)) s = 0;
  return s == 0;
}

std::vector<TaintFinding> find_taint_flows(
    const Cfg& cfg, const std::vector<Token>& tokens, const TaintConfig& config,
    const std::vector<std::pair<std::size_t, std::size_t>>& holes) {
  return analyze_taint(cfg, tokens, config, holes).findings;
}

TaintAnalysis analyze_taint(
    const Cfg& cfg, const std::vector<Token>& tokens, const TaintConfig& config,
    const std::vector<std::pair<std::size_t, std::size_t>>& holes) {
  TaintAnalysis result_out;
  std::vector<TaintFinding>& out = result_out.findings;
  const TaintDomain dom{tokens, config};
  const ForwardResult<TaintDomain> result = solve_forward(cfg, dom);
  const std::vector<char> reach = reachable_blocks(cfg);

  const auto in_hole = [&holes](std::size_t j) {
    for (const auto& [hb, he] : holes) {
      if (hb <= j && j < he) return true;
    }
    return false;
  };

  const auto scan_stmt = [&](const CfgStmt& st, const TaintState& s) {
    const std::size_t b = st.begin;
    const std::size_t e = std::min(st.end, tokens.size());
    // Return-taint observation for the interprocedural summaries: a
    // reachable `return expr;` whose expression is kTainted makes the
    // function a taint source / passthrough for its callers.
    if (!result_out.returns_tainted && b < e && tokens[b].text == "return" &&
        !in_hole(b) && dom.eval(b + 1, e, s, nullptr) == Taint::kTainted) {
      result_out.returns_tainted = true;
    }
    if (st.kind == StmtKind::kLoopCond && !in_hole(b)) {
      // A loop whose trip count depends on unchecked wire data must sit
      // under DFX_BOUNDED_LOOP (or check the value first).
      std::vector<std::string_view> names;
      if (dom.eval(b, e, s, &names) == Taint::kTainted) {
        GuardSpec bounded;
        bounded.guard_calls.clear();
        bounded.any_guard_calls = {"DFX_BOUNDED_LOOP"};
        bounded.edge_bound_tests = false;
        if (!has_dominating_guard(cfg, tokens, b, bounded)) {
          out.push_back({b, "loop-bound", join_names(std::move(names))});
        }
      }
    }
    for (std::size_t j = b; j < e; ++j) {
      if (in_hole(j)) continue;
      const std::string_view w = tokens[j].text;
      if (tokens[j].kind == Tok::kIdent) {
        const bool call = j + 1 < e && tokens[j + 1].text == "(";
        if (call && (is_guard_name(w) || w == "DFX_BOUNDED_LOOP" ||
                     w == "sizeof" || w == "alignof" || w == "decltype" ||
                     w == "static_assert")) {
          const std::size_t close = match_bracket(tokens, j + 1, tokens.size());
          if (close != kNone && close < e) j = close;  // args are not sinks
          continue;
        }
        const bool member =
            j > 0 && (tokens[j - 1].text == "." || tokens[j - 1].text == "->");
        if (call && member && (w == "resize" || w == "reserve")) {
          const std::size_t close = match_bracket(tokens, j + 1, tokens.size());
          const std::size_t lim = close == kNone ? e : std::min(close, e);
          std::vector<std::string_view> names;
          if (dom.eval(j + 2, lim, s, &names) == Taint::kTainted) {
            out.push_back({j, std::string(w), join_names(std::move(names))});
          }
          continue;
        }
        if (call && (w == "memcpy" || w == "memmove" || w == "memset")) {
          const std::size_t close = match_bracket(tokens, j + 1, tokens.size());
          const std::size_t lim = close == kNone ? e : std::min(close, e);
          int depth = 0;
          int commas = 0;
          std::size_t third = kNone;
          for (std::size_t k = j + 2; k < lim; ++k) {
            const std::string_view x = tokens[k].text;
            if (is_open(x)) {
              ++depth;
            } else if (is_close(x)) {
              --depth;
            } else if (depth == 0 && x == "," && ++commas == 2) {
              third = k + 1;
              break;
            }
          }
          if (third != kNone) {
            std::vector<std::string_view> names;
            if (dom.eval(third, lim, s, &names) == Taint::kTainted) {
              out.push_back(
                  {j, "memcpy-length", join_names(std::move(names))});
            }
          }
          continue;
        }
        if (call && !config.sink_params.empty()) {
          // Interprocedural sink: the callee's summary says some argument
          // position reaches a sink inside its body. Split the argument list
          // at top-level commas (a sentinel comma at the close paren flushes
          // the final argument) and evaluate the flagged positions.
          const auto sp = config.sink_params.find(w);
          if (sp != config.sink_params.end()) {
            const std::size_t close =
                match_bracket(tokens, j + 1, tokens.size());
            const std::size_t lim = close == kNone ? e : std::min(close, e);
            std::size_t arg_begin = j + 2;
            std::size_t arg_index = 0;
            int depth = 0;
            for (std::size_t k = j + 2; k <= lim && arg_begin < lim; ++k) {
              const std::string_view x = k < lim ? tokens[k].text : ",";
              if (k < lim && is_open(x)) {
                ++depth;
                continue;
              }
              if (k < lim && is_close(x)) {
                --depth;
                continue;
              }
              if (depth != 0 || x != ",") continue;
              if (arg_index < sp->second.size() && sp->second[arg_index]) {
                std::vector<std::string_view> names;
                if (dom.eval(arg_begin, k, s, &names) == Taint::kTainted) {
                  out.push_back({j, "call-arg:" + std::string(w),
                                 join_names(std::move(names))});
                }
              }
              arg_begin = k + 1;
              ++arg_index;
            }
            // Do NOT skip the interior: nested index/resize sinks inside the
            // argument expressions still deserve their own findings.
            continue;
          }
        }
        continue;
      }
      if (w != "[" || j == 0) continue;
      // Subscript sink: the token before '[' must be postfix (an identifier
      // or a closing bracket) — this excludes lambda captures, attributes,
      // and structured bindings.
      const Token& prev = tokens[j - 1];
      const bool postfix =
          (prev.kind == Tok::kIdent && prev.text != "auto" &&
           prev.text != "return" && prev.text != "delete") ||
          prev.text == ")" || prev.text == "]";
      if (!postfix) continue;
      const std::size_t close = match_bracket(tokens, j, tokens.size());
      if (close == kNone) continue;
      std::vector<std::string_view> names;
      if (dom.eval(j + 1, std::min(close, e), s, &names) == Taint::kTainted) {
        out.push_back({j, "index", join_names(std::move(names))});
      }
    }
  };

  for (std::size_t b = 0; b < cfg.blocks.size(); ++b) {
    if (reach[b] == 0) continue;
    TaintState s = result.in[b];
    for (const CfgStmt& st : cfg.blocks[b].stmts) {
      scan_stmt(st, s);
      dom.transfer_stmt(st, s);
    }
  }
  return result_out;
}

}  // namespace dfx::lint
