// dfixer_lint: scan the repo's own sources for project-specific invariants.
//
//   dfixer_lint --root <repo_root>          lint src/, tools/, bench/,
//                                           examples/ and tests/ under root
//                                           (tests/lint_fixtures excluded —
//                                           fixtures violate on purpose)
//   dfixer_lint [--root <repo_root>] FILES  lint exactly FILES
//
// Exit code 0: clean. 1: violations found. 2: usage or I/O error.
// The ErrorCode enumerator list for the switch-exhaustiveness rule is read
// from <root>/src/analyzer/errorcode.h at startup.
#include <algorithm>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "dfixer_lint/lint_core.h"

namespace fs = std::filesystem;

namespace {

bool read_file(const fs::path& path, std::string& out) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return false;
  std::ostringstream ss;
  ss << in.rdbuf();
  out = ss.str();
  return true;
}

bool lintable(const fs::path& path) {
  const std::string ext = path.extension().string();
  return ext == ".cpp" || ext == ".h" || ext == ".hpp";
}

}  // namespace

int main(int argc, char** argv) {
  std::string root = ".";
  std::vector<std::string> files;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--root") {
      if (i + 1 >= argc) {
        std::cerr << "dfixer_lint: --root needs an argument\n";
        return 2;
      }
      root = argv[++i];
    } else if (arg == "--help" || arg == "-h") {
      std::cout << "usage: dfixer_lint [--root DIR] [files...]\n";
      return 0;
    } else {
      files.push_back(arg);
    }
  }

  dfx::lint::Options options;
  {
    std::string header;
    const fs::path enum_header =
        fs::path(root) / "src" / "analyzer" / "errorcode.h";
    if (read_file(enum_header, header)) {
      options.errorcode_enumerators =
          dfx::lint::parse_enum_class(header, "ErrorCode");
    }
  }

  if (files.empty()) {
    for (const char* dir : {"src", "tools", "bench", "examples", "tests"}) {
      const fs::path base = fs::path(root) / dir;
      if (!fs::exists(base)) continue;
      for (const auto& entry : fs::recursive_directory_iterator(base)) {
        // Lint fixtures violate rules on purpose; test_lint.cpp pins them.
        if (entry.path().string().find("lint_fixtures") != std::string::npos) {
          continue;
        }
        if (entry.is_regular_file() && lintable(entry.path())) {
          files.push_back(entry.path().string());
        }
      }
    }
    if (files.empty()) {
      std::cerr << "dfixer_lint: nothing to lint under " << root << "\n";
      return 2;
    }
  }
  std::sort(files.begin(), files.end());

  std::size_t total = 0;
  for (const auto& file : files) {
    std::string content;
    if (!read_file(file, content)) {
      std::cerr << "dfixer_lint: cannot read " << file << "\n";
      return 2;
    }
    const auto violations = dfx::lint::lint_file(file, content, options);
    for (const auto& v : violations) {
      std::cout << v.file << ":" << v.line << ": [" << v.rule << "] "
                << v.message << "\n";
    }
    total += violations.size();
  }
  if (total != 0) {
    std::cout << "dfixer_lint: " << total << " violation(s) in "
              << files.size() << " file(s)\n";
    return 1;
  }
  std::cout << "dfixer_lint: clean (" << files.size() << " files)\n";
  return 0;
}
