// dfixer_lint: scan the repo's own sources for project-specific invariants.
//
//   dfixer_lint --root <repo_root>          lint src/, tools/, bench/,
//                                           examples/ and tests/ under root
//                                           (tests/lint_fixtures excluded —
//                                           fixtures violate on purpose)
//   dfixer_lint [--root <repo_root>] FILES  lint exactly FILES
//
// Flags:
//   --json                 print findings as ratchet-schema JSON on stdout
//   --baseline FILE        diff findings against FILE (the ratchet): fresh
//                          findings AND stale baseline entries both fail
//   --update-baseline      rewrite the baseline file with current findings
//   --callgraph-dump       print the resolved call graph (with the external
//                          inventory) and exit
//   --no-interprocedural   skip the callgraph/summaries pass and its three
//                          rules (hot-path-cost, interprocedural-taint-flow,
//                          static-lock-cycle)
//
// Unknown dash-prefixed arguments are an error (exit 2), not file names —
// a typo'd flag must not be silently linted as a path.
//
// Exit code 0: clean (or ratchet matches). 1: violations / ratchet diff.
// 2: usage or I/O error (including a malformed baseline).
//
// Every file is read and lexed exactly once into a FileAnalysis shared by
// all rule packs; the cross-TU symbol index is built from src/ before any
// rule runs, so discarded-error-return and enum-switch exhaustiveness see
// declarations from other translation units. The interprocedural pass runs
// over the src/ analyses (product code only — test scaffolding deliberately
// deadlocks in death tests) plus any explicitly listed files, so fixture
// runs exercise the same program analysis a full sweep does.
#include <algorithm>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "dfixer_lint/lint_core.h"
#include "dfixer_lint/ratchet.h"
#include "dfixer_lint/summaries.h"

namespace fs = std::filesystem;

namespace {

bool read_file(const fs::path& path, std::string& out) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return false;
  std::ostringstream ss;
  ss << in.rdbuf();
  out = ss.str();
  return true;
}

bool lintable(const fs::path& path) {
  const std::string ext = path.extension().string();
  return ext == ".cpp" || ext == ".h" || ext == ".hpp";
}

/// Report paths relative to the root so findings (and the committed
/// baseline) are stable across checkouts.
std::string display_path(const std::string& file, const fs::path& root) {
  std::error_code ec;
  const fs::path rel = fs::proximate(file, root, ec);
  if (ec || rel.empty()) return file;
  const std::string s = rel.generic_string();
  return s.starts_with("..") ? file : s;
}

}  // namespace

int main(int argc, char** argv) {
  std::string root = ".";
  std::string baseline_path;
  bool emit_json = false;
  bool update_baseline = false;
  bool dump_callgraph = false;
  bool interprocedural = true;
  std::vector<std::string> files;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--root") {
      if (i + 1 >= argc) {
        std::cerr << "dfixer_lint: --root needs an argument\n";
        return 2;
      }
      root = argv[++i];
    } else if (arg == "--baseline") {
      if (i + 1 >= argc) {
        std::cerr << "dfixer_lint: --baseline needs an argument\n";
        return 2;
      }
      baseline_path = argv[++i];
    } else if (arg == "--json") {
      emit_json = true;
    } else if (arg == "--update-baseline") {
      update_baseline = true;
    } else if (arg == "--callgraph-dump") {
      dump_callgraph = true;
    } else if (arg == "--no-interprocedural") {
      interprocedural = false;
    } else if (arg == "--help" || arg == "-h") {
      std::cout << "usage: dfixer_lint [--root DIR] [--json] "
                   "[--baseline FILE] [--update-baseline] "
                   "[--callgraph-dump] [--no-interprocedural] [files...]\n";
      return 0;
    } else if (arg.starts_with("-")) {
      std::cerr << "dfixer_lint: unknown flag " << arg
                << " (see --help)\n";
      return 2;
    } else {
      files.push_back(arg);
    }
  }
  if (update_baseline && baseline_path.empty()) {
    std::cerr << "dfixer_lint: --update-baseline needs --baseline FILE\n";
    return 2;
  }
  const bool explicit_files = !files.empty();

  if (files.empty()) {
    files = dfx::lint::collect_lintable_files(root);
    if (files.empty()) {
      std::cerr << "dfixer_lint: nothing to lint under " << root << "\n";
      return 2;
    }
  }
  std::sort(files.begin(), files.end());

  // Read + lex every requested file exactly once; the analyses are shared
  // by the symbol-index pass and every rule pack.
  std::vector<dfx::lint::FileAnalysis> analyses;
  analyses.reserve(files.size());
  for (const auto& file : files) {
    std::string content;
    if (!read_file(file, content)) {
      std::cerr << "dfixer_lint: cannot read " << file << "\n";
      return 2;
    }
    analyses.push_back(
        dfx::lint::analyze_file(display_path(file, root), std::move(content)));
  }

  // Cross-TU symbol index over all of src/ — even when linting an explicit
  // file list, so single-file runs resolve the same symbols a full sweep
  // does. Files already analyzed above are reused, not re-lexed; src files
  // read only for the index are kept (extra_src) because the
  // interprocedural pass needs their token streams too.
  dfx::lint::SymbolIndex index;
  std::vector<dfx::lint::FileAnalysis> extra_src;
  {
    std::vector<std::string> src_files;
    for (const auto& fa : analyses) {
      if (fa.path.find("src/") != std::string::npos) {
        index.index_source(fa.path, fa.tokens);
        src_files.push_back(fa.path);
      }
    }
    for (const auto& file : dfx::lint::collect_lintable_files(root)) {
      if (file.find("src/") == std::string::npos) continue;
      const std::string shown = display_path(file, root);
      if (std::find(src_files.begin(), src_files.end(), shown) !=
          src_files.end()) {
        continue;
      }
      std::string content;
      if (!read_file(file, content)) continue;
      dfx::lint::FileAnalysis fa = dfx::lint::analyze_file(shown, std::move(content));
      index.index_source(fa.path, fa.tokens);
      extra_src.push_back(std::move(fa));
    }
  }

  dfx::lint::Options options;
  options.symbols = &index;

  std::vector<dfx::lint::Violation> findings;

  // Interprocedural pass: call graph + summaries over the product code
  // (src/ analyses) plus any explicitly listed files, then the three
  // whole-program rules.
  if (interprocedural || dump_callgraph) {
    std::vector<const dfx::lint::FileAnalysis*> program;
    for (const auto& fa : analyses) {
      if (explicit_files || fa.path.find("src/") != std::string::npos) {
        program.push_back(&fa);
      }
    }
    for (const auto& fa : extra_src) program.push_back(&fa);
    const dfx::lint::ProgramAnalysis pa =
        dfx::lint::analyze_program(std::move(program), &index);
    if (dump_callgraph) {
      std::cout << pa.graph.dump();
      return 0;
    }
    auto violations = dfx::lint::lint_interprocedural(pa);
    findings.insert(findings.end(),
                    std::make_move_iterator(violations.begin()),
                    std::make_move_iterator(violations.end()));
  }

  for (const auto& fa : analyses) {
    auto violations = dfx::lint::lint_file(fa, options);
    findings.insert(findings.end(),
                    std::make_move_iterator(violations.begin()),
                    std::make_move_iterator(violations.end()));
  }
  std::sort(findings.begin(), findings.end(),
            [](const dfx::lint::Violation& a, const dfx::lint::Violation& b) {
              if (a.file != b.file) return a.file < b.file;
              if (a.line != b.line) return a.line < b.line;
              return a.rule < b.rule;
            });

  if (update_baseline) {
    std::ofstream out(baseline_path, std::ios::binary | std::ios::trunc);
    if (!out) {
      std::cerr << "dfixer_lint: cannot write " << baseline_path << "\n";
      return 2;
    }
    out << dfx::lint::findings_to_json(findings);
    std::cerr << "dfixer_lint: baseline updated (" << findings.size()
              << " finding(s)) — review before committing\n";
    return 0;
  }

  if (emit_json) {
    std::cout << dfx::lint::findings_to_json(findings);
  } else {
    for (const auto& v : findings) {
      std::cout << v.file << ":" << v.line << ": [" << v.rule << "] "
                << v.message << "\n";
    }
  }
  auto& diag = emit_json ? std::cerr : std::cout;

  if (!baseline_path.empty()) {
    std::string text;
    if (!read_file(baseline_path, text)) {
      std::cerr << "dfixer_lint: cannot read baseline " << baseline_path
                << "\n";
      return 2;
    }
    std::string error;
    const auto baseline = dfx::lint::findings_from_json(text, &error);
    if (!baseline) {
      std::cerr << "dfixer_lint: malformed baseline " << baseline_path << ": "
                << error << "\n";
      return 2;
    }
    const auto diff = dfx::lint::ratchet_diff(findings, *baseline);
    for (const auto& v : diff.fresh) {
      diag << "dfixer_lint: new finding: " << v.file << ":" << v.line << " ["
           << v.rule << "] " << v.message << "\n";
    }
    for (const auto& v : diff.stale) {
      diag << "dfixer_lint: stale baseline entry (fixed? remove it): "
           << v.file << ":" << v.line << " [" << v.rule << "]\n";
    }
    if (!diff.clean()) {
      diag << "dfixer_lint: ratchet mismatch — " << diff.fresh.size()
           << " new, " << diff.stale.size() << " stale (baseline "
           << baseline_path << ")\n";
      return 1;
    }
    diag << "dfixer_lint: ratchet clean (" << findings.size()
         << " baselined finding(s), " << files.size() << " files)\n";
    return 0;
  }

  if (!findings.empty()) {
    diag << "dfixer_lint: " << findings.size() << " violation(s) in "
         << files.size() << " file(s)\n";
    return 1;
  }
  diag << "dfixer_lint: clean (" << files.size() << " files)\n";
  return 0;
}
