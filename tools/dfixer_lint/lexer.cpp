#include "dfixer_lint/lexer.h"

#include <algorithm>
#include <cctype>
#include <string>

namespace dfx::lint {
namespace {

bool is_ident_start(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) != 0 || c == '_';
}

bool is_ident_char(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_';
}

bool is_digit(char c) { return std::isdigit(static_cast<unsigned char>(c)) != 0; }

// Longest-match punctuator tables. "::" must be a single token so rules can
// tell a scope separator from a case-label colon without look-ahead.
constexpr std::string_view kPunct3[] = {"<<=", ">>=", "...", "->*"};
constexpr std::string_view kPunct2[] = {
    "::", "->", "<<", ">>", "<=", ">=", "==", "!=", "&&", "||", "+=",
    "-=", "*=", "/=", "%=", "&=", "|=", "^=", "++", "--", "##"};

bool is_group_open(std::string_view s) { return s == "(" || s == "["; }

/// Index of the token closing the group opened at `open` (parens/brackets,
/// braces included once inside), or `limit` when unbalanced.
std::size_t match_group(const std::vector<Token>& toks, std::size_t open,
                        std::size_t limit) {
  int depth = 0;
  for (std::size_t j = open; j < limit; ++j) {
    const std::string_view s = toks[j].text;
    if (s == "(" || s == "[" || s == "{") ++depth;
    if (s == ")" || s == "]" || s == "}") {
      if (--depth == 0) return j;
      if (depth < 0) return limit;
    }
  }
  return limit;
}

/// Re-balance template angle brackets: `foo<Bar<T>>(x)` lexes the `>>` as
/// one right-shift token, which blinds every downstream consumer that
/// counts angle depth (call-site resolution in callgraph.cpp most of all).
/// This pass splits a `>>` into two `>` tokens when it provably closes two
/// template argument lists: the scan starts at an `ident <` pair and only
/// commits if the region balances to depth zero using nothing but tokens
/// that can appear in a template argument list (identifiers, numbers, `::`,
/// `,`, `*`, `&`, `&&`, `...`, and balanced ()/[] groups). Anything else —
/// an operator, a semicolon, a brace — aborts the scan, so genuine shift
/// expressions (`a << b`, `cin >> x`) are never touched. The only way to
/// fool it is a chained comparison with two unmatched `<` before a shift
/// (`a < b < c >> d`), which no real code writes.
void split_template_closers(std::vector<Token>& toks) {
  const std::size_t n = toks.size();
  constexpr std::size_t kMaxScan = 256;
  std::vector<char> split(n, 0);
  bool any = false;
  for (std::size_t i = 0; i + 1 < n; ++i) {
    if (toks[i].kind != Tok::kIdent || toks[i + 1].text != "<") continue;
    int depth = 0;
    std::vector<std::size_t> pending;
    bool balanced = false;
    const std::size_t limit = std::min(n, i + 1 + kMaxScan);
    for (std::size_t j = i + 1; j < limit; ++j) {
      const Token& tk = toks[j];
      const std::string_view s = tk.text;
      if (is_group_open(s)) {
        const std::size_t close = match_group(toks, j, limit);
        if (close == limit) break;
        j = close;
        continue;
      }
      if (s == "<") {
        ++depth;
        continue;
      }
      if (s == ">") {
        if (--depth == 0) {
          balanced = true;
        }
        if (depth <= 0) break;
        continue;
      }
      if (s == ">>") {
        if (depth < 2) break;  // not two template lists: a shift
        pending.push_back(j);
        depth -= 2;
        if (depth == 0) balanced = true;
        if (depth <= 0) break;
        continue;
      }
      const bool allowed =
          tk.kind == Tok::kIdent || tk.kind == Tok::kNumber || s == "::" ||
          s == "," || s == "*" || s == "&" || s == "&&" || s == "...";
      if (!allowed) break;
    }
    if (!balanced) continue;
    for (const std::size_t j : pending) {
      split[j] = 1;
      any = true;
    }
  }
  if (!any) return;
  std::vector<Token> out;
  out.reserve(n + 8);
  for (std::size_t j = 0; j < n; ++j) {
    if (split[j] == 0) {
      out.push_back(toks[j]);
      continue;
    }
    // The `>>` text is a 2-char view into the source buffer; each half is
    // a valid 1-char view of its own `>`.
    out.push_back(Token{Tok::kPunct, toks[j].text.substr(0, 1), toks[j].line});
    out.push_back(Token{Tok::kPunct, toks[j].text.substr(1, 1), toks[j].line});
  }
  toks = std::move(out);
}

}  // namespace

std::vector<Token> lex(std::string_view src) {
  std::vector<Token> out;
  out.reserve(src.size() / 6 + 8);
  std::uint32_t line = 1;
  bool at_line_start = true;  // only whitespace seen since the last newline
  std::size_t i = 0;
  const std::size_t n = src.size();

  const auto count_newlines = [&](std::size_t from, std::size_t to) {
    for (std::size_t k = from; k < to && k < n; ++k) {
      if (src[k] == '\n') ++line;
    }
  };

  // Skip a (possibly prefixed/raw) string or character literal starting at
  // the opening quote; returns the index one past the closing quote.
  const auto skip_quoted = [&](std::size_t q, bool raw) -> std::size_t {
    const char quote = src[q];
    std::size_t k = q + 1;
    if (raw) {
      std::string delim;
      while (k < n && src[k] != '(') delim.push_back(src[k++]);
      const std::string terminator = ")" + delim + "\"";
      const std::size_t end = src.find(terminator, k);
      if (end == std::string_view::npos) return n;
      count_newlines(k, end);
      return end + terminator.size();
    }
    while (k < n) {
      const char c = src[k];
      if (c == '\\' && k + 1 < n) {
        if (src[k + 1] == '\n') ++line;
        k += 2;
        continue;
      }
      if (c == quote) return k + 1;
      if (c == '\n') return k;  // unterminated: stop at end of line
      ++k;
    }
    return k;
  };

  while (i < n) {
    const char c = src[i];
    if (c == '\n') {
      ++line;
      at_line_start = true;
      ++i;
      continue;
    }
    if (std::isspace(static_cast<unsigned char>(c)) != 0) {
      ++i;
      continue;
    }
    // Preprocessor directive: drop to end of line (honoring \-continuation).
    // Directives are not part of the expression grammar the rules analyze;
    // the include-graph rule reads raw lines instead.
    if (c == '#' && at_line_start) {
      while (i < n && src[i] != '\n') {
        if (src[i] == '\\' && i + 1 < n && src[i + 1] == '\n') {
          ++line;
          i += 2;
          continue;
        }
        ++i;
      }
      continue;
    }
    at_line_start = false;
    const char next = i + 1 < n ? src[i + 1] : '\0';
    // Comments.
    if (c == '/' && next == '/') {
      while (i < n && src[i] != '\n') ++i;
      continue;
    }
    if (c == '/' && next == '*') {
      const std::size_t end = src.find("*/", i + 2);
      if (end == std::string_view::npos) {
        count_newlines(i, n);
        i = n;
      } else {
        count_newlines(i, end);
        i = end + 2;
      }
      continue;
    }
    // Identifiers — including literal prefixes (R"", u8"", L'x').
    if (is_ident_start(c)) {
      const std::size_t start = i;
      while (i < n && is_ident_char(src[i])) ++i;
      const std::string_view word = src.substr(start, i - start);
      if (i < n && (src[i] == '"' || src[i] == '\'')) {
        const bool raw = word == "R" || word == "LR" || word == "uR" ||
                         word == "UR" || word == "u8R";
        const bool prefix =
            word == "L" || word == "u" || word == "U" || word == "u8";
        if ((raw || prefix) && src[i] == '"') {
          const std::uint32_t at = line;
          i = skip_quoted(i, raw);
          out.push_back(Token{Tok::kString, {}, at});
          continue;
        }
        if (prefix && src[i] == '\'') {
          const std::uint32_t at = line;
          i = skip_quoted(i, /*raw=*/false);
          out.push_back(Token{Tok::kChar, {}, at});
          continue;
        }
      }
      out.push_back(Token{Tok::kIdent, word, line});
      continue;
    }
    // Numbers (pp-number: covers hex, floats, separators, suffixes).
    if (is_digit(c) || (c == '.' && is_digit(next))) {
      const std::size_t start = i;
      ++i;
      while (i < n) {
        const char d = src[i];
        const char prev = src[i - 1];
        if (is_ident_char(d) || d == '.') {
          ++i;
        } else if (d == '\'' && i + 1 < n && is_ident_char(src[i + 1])) {
          // C++14 digit separator: only continues the literal when another
          // digit follows — `1'000'000` is one token, but the quote in
          // `{1,'a'}` starts a character literal.
          ++i;
        } else if ((d == '+' || d == '-') &&
                   (prev == 'e' || prev == 'E' || prev == 'p' || prev == 'P')) {
          ++i;
        } else {
          break;
        }
      }
      out.push_back(Token{Tok::kNumber, src.substr(start, i - start), line});
      continue;
    }
    if (c == '"') {
      const std::uint32_t at = line;
      i = skip_quoted(i, /*raw=*/false);
      out.push_back(Token{Tok::kString, {}, at});
      continue;
    }
    if (c == '\'') {
      const std::uint32_t at = line;
      i = skip_quoted(i, /*raw=*/false);
      out.push_back(Token{Tok::kChar, {}, at});
      continue;
    }
    // Punctuators, longest match first.
    std::size_t len = 1;
    for (const auto p : kPunct3) {
      if (src.compare(i, p.size(), p) == 0) {
        len = 3;
        break;
      }
    }
    if (len == 1) {
      for (const auto p : kPunct2) {
        if (src.compare(i, p.size(), p) == 0) {
          len = 2;
          break;
        }
      }
    }
    out.push_back(Token{Tok::kPunct, src.substr(i, len), line});
    i += len;
  }
  split_template_closers(out);
  return out;
}

}  // namespace dfx::lint
