#include "dfixer_lint/lexer.h"

#include <cctype>
#include <string>

namespace dfx::lint {
namespace {

bool is_ident_start(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) != 0 || c == '_';
}

bool is_ident_char(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_';
}

bool is_digit(char c) { return std::isdigit(static_cast<unsigned char>(c)) != 0; }

// Longest-match punctuator tables. "::" must be a single token so rules can
// tell a scope separator from a case-label colon without look-ahead.
constexpr std::string_view kPunct3[] = {"<<=", ">>=", "...", "->*"};
constexpr std::string_view kPunct2[] = {
    "::", "->", "<<", ">>", "<=", ">=", "==", "!=", "&&", "||", "+=",
    "-=", "*=", "/=", "%=", "&=", "|=", "^=", "++", "--", "##"};

}  // namespace

std::vector<Token> lex(std::string_view src) {
  std::vector<Token> out;
  out.reserve(src.size() / 6 + 8);
  std::uint32_t line = 1;
  bool at_line_start = true;  // only whitespace seen since the last newline
  std::size_t i = 0;
  const std::size_t n = src.size();

  const auto count_newlines = [&](std::size_t from, std::size_t to) {
    for (std::size_t k = from; k < to && k < n; ++k) {
      if (src[k] == '\n') ++line;
    }
  };

  // Skip a (possibly prefixed/raw) string or character literal starting at
  // the opening quote; returns the index one past the closing quote.
  const auto skip_quoted = [&](std::size_t q, bool raw) -> std::size_t {
    const char quote = src[q];
    std::size_t k = q + 1;
    if (raw) {
      std::string delim;
      while (k < n && src[k] != '(') delim.push_back(src[k++]);
      const std::string terminator = ")" + delim + "\"";
      const std::size_t end = src.find(terminator, k);
      if (end == std::string_view::npos) return n;
      count_newlines(k, end);
      return end + terminator.size();
    }
    while (k < n) {
      const char c = src[k];
      if (c == '\\' && k + 1 < n) {
        if (src[k + 1] == '\n') ++line;
        k += 2;
        continue;
      }
      if (c == quote) return k + 1;
      if (c == '\n') return k;  // unterminated: stop at end of line
      ++k;
    }
    return k;
  };

  while (i < n) {
    const char c = src[i];
    if (c == '\n') {
      ++line;
      at_line_start = true;
      ++i;
      continue;
    }
    if (std::isspace(static_cast<unsigned char>(c)) != 0) {
      ++i;
      continue;
    }
    // Preprocessor directive: drop to end of line (honoring \-continuation).
    // Directives are not part of the expression grammar the rules analyze;
    // the include-graph rule reads raw lines instead.
    if (c == '#' && at_line_start) {
      while (i < n && src[i] != '\n') {
        if (src[i] == '\\' && i + 1 < n && src[i + 1] == '\n') {
          ++line;
          i += 2;
          continue;
        }
        ++i;
      }
      continue;
    }
    at_line_start = false;
    const char next = i + 1 < n ? src[i + 1] : '\0';
    // Comments.
    if (c == '/' && next == '/') {
      while (i < n && src[i] != '\n') ++i;
      continue;
    }
    if (c == '/' && next == '*') {
      const std::size_t end = src.find("*/", i + 2);
      if (end == std::string_view::npos) {
        count_newlines(i, n);
        i = n;
      } else {
        count_newlines(i, end);
        i = end + 2;
      }
      continue;
    }
    // Identifiers — including literal prefixes (R"", u8"", L'x').
    if (is_ident_start(c)) {
      const std::size_t start = i;
      while (i < n && is_ident_char(src[i])) ++i;
      const std::string_view word = src.substr(start, i - start);
      if (i < n && (src[i] == '"' || src[i] == '\'')) {
        const bool raw = word == "R" || word == "LR" || word == "uR" ||
                         word == "UR" || word == "u8R";
        const bool prefix =
            word == "L" || word == "u" || word == "U" || word == "u8";
        if ((raw || prefix) && src[i] == '"') {
          const std::uint32_t at = line;
          i = skip_quoted(i, raw);
          out.push_back(Token{Tok::kString, {}, at});
          continue;
        }
        if (prefix && src[i] == '\'') {
          const std::uint32_t at = line;
          i = skip_quoted(i, /*raw=*/false);
          out.push_back(Token{Tok::kChar, {}, at});
          continue;
        }
      }
      out.push_back(Token{Tok::kIdent, word, line});
      continue;
    }
    // Numbers (pp-number: covers hex, floats, separators, suffixes).
    if (is_digit(c) || (c == '.' && is_digit(next))) {
      const std::size_t start = i;
      ++i;
      while (i < n) {
        const char d = src[i];
        const char prev = src[i - 1];
        if (is_ident_char(d) || d == '.') {
          ++i;
        } else if (d == '\'' && i + 1 < n && is_ident_char(src[i + 1])) {
          // C++14 digit separator: only continues the literal when another
          // digit follows — `1'000'000` is one token, but the quote in
          // `{1,'a'}` starts a character literal.
          ++i;
        } else if ((d == '+' || d == '-') &&
                   (prev == 'e' || prev == 'E' || prev == 'p' || prev == 'P')) {
          ++i;
        } else {
          break;
        }
      }
      out.push_back(Token{Tok::kNumber, src.substr(start, i - start), line});
      continue;
    }
    if (c == '"') {
      const std::uint32_t at = line;
      i = skip_quoted(i, /*raw=*/false);
      out.push_back(Token{Tok::kString, {}, at});
      continue;
    }
    if (c == '\'') {
      const std::uint32_t at = line;
      i = skip_quoted(i, /*raw=*/false);
      out.push_back(Token{Tok::kChar, {}, at});
      continue;
    }
    // Punctuators, longest match first.
    std::size_t len = 1;
    for (const auto p : kPunct3) {
      if (src.compare(i, p.size(), p) == 0) {
        len = 3;
        break;
      }
    }
    if (len == 1) {
      for (const auto p : kPunct2) {
        if (src.compare(i, p.size(), p) == 0) {
          len = 2;
          break;
        }
      }
    }
    out.push_back(Token{Tok::kPunct, src.substr(i, len), line});
    i += len;
  }
  return out;
}

}  // namespace dfx::lint
