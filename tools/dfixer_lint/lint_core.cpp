#include "dfixer_lint/lint_core.h"

#include <algorithm>
#include <cctype>
#include <filesystem>
#include <fstream>
#include <set>
#include <sstream>

#include "dfixer_lint/cfg.h"
#include "dfixer_lint/dataflow.h"

namespace dfx::lint {
namespace {

// ---------------------------------------------------------------------------
// Layer table (low → high) for the `layering-violation` rule. A file under
// src/<module>/ may include its own module and any *strictly lower* layer;
// including a higher layer — or a different module on the same layer — is a
// violation. Keep this table in dependency order when adding modules:
//
//   json(0) ← util(1) ← crypto(2) ← dnscore(3) ← zone(4) ← authserver(5)
//   ← server(6) ← analyzer(7) ← {dataset, dfixer, zonelint}(8) ←
//   {zreplicator, measure}(9)
//
// In particular: dnscore/crypto can never include measure/dfixer/
// zreplicator, and util includes nothing above it (json only).
// Files outside src/ (tools, tests, bench, examples) sit above every layer
// and are exempt.
struct Layer {
  const char* module;
  int rank;
};
// NOTE: "authserver" must precede "server" — check_layering() takes the
// first path match, and "authserver/" contains the substring "server/".
constexpr Layer kLayers[] = {
    {"json", 0},        {"util", 1},    {"crypto", 2},
    {"dnscore", 3},     {"zone", 4},    {"authserver", 5},
    {"server", 6},      {"analyzer", 7},
    {"dataset", 8},     {"dfixer", 8}, {"zonelint", 8},
    {"zreplicator", 9}, {"measure", 9},
};
// ---------------------------------------------------------------------------

bool is_ident_char(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_';
}

/// Split stripped content into lines (newlines excluded).
std::vector<std::string> split_lines(std::string_view text) {
  std::vector<std::string> lines;
  std::size_t start = 0;
  while (start <= text.size()) {
    const std::size_t nl = text.find('\n', start);
    if (nl == std::string_view::npos) {
      lines.emplace_back(text.substr(start));
      break;
    }
    lines.emplace_back(text.substr(start, nl - start));
    start = nl + 1;
  }
  return lines;
}

/// Whole-word occurrence of `word` in `line`.
bool contains_word(std::string_view line, std::string_view word) {
  std::size_t pos = 0;
  while ((pos = line.find(word, pos)) != std::string_view::npos) {
    const bool left_ok = pos == 0 || !is_ident_char(line[pos - 1]);
    const std::size_t end = pos + word.size();
    const bool right_ok = end >= line.size() || !is_ident_char(line[end]);
    if (left_ok && right_ok) return true;
    pos = end;
  }
  return false;
}

bool path_contains(const std::string& path, std::string_view dir) {
  return path.find(dir) != std::string::npos;
}

bool is_header(const std::string& path) {
  return path.ends_with(".h") || path.ends_with(".hpp");
}

std::string trimmed(std::string_view s) {
  while (!s.empty() && std::isspace(static_cast<unsigned char>(s.front()))) {
    s.remove_prefix(1);
  }
  while (!s.empty() && std::isspace(static_cast<unsigned char>(s.back()))) {
    s.remove_suffix(1);
  }
  return std::string(s);
}

/// Lines carrying a `dfx-lint: allow(<rule>)` marker, collected from the
/// ORIGINAL source (the marker lives in a comment, which stripping erases).
/// A marker suppresses the line it sits on and, like NOLINTNEXTLINE, the
/// line directly below it — for flagged expressions that had to wrap.
struct Suppressions {
  const std::vector<std::string>& lines;  // original source lines

  bool allows(std::size_t line_index, std::string_view rule) const {
    const std::string needle = "dfx-lint: allow(" + std::string(rule) + ")";
    for (std::size_t k = line_index >= 1 ? line_index - 1 : 0;
         k <= line_index && k < lines.size(); ++k) {
      if (lines[k].find(needle) != std::string::npos) return true;
    }
    return false;
  }
};

constexpr std::size_t kNpos = static_cast<std::size_t>(-1);

class Linter {
 public:
  Linter(const FileAnalysis& fa, const Options& options)
      : path_(fa.path),
        options_(options),
        stripped_(fa.stripped),
        lines_(fa.lines),
        tokens_(fa.tokens),
        suppressions_{fa.raw_lines} {
    if (options_.dataflow) cfgs_ = build_cfgs(tokens_);
  }

  std::vector<Violation> run() {
    check_banned_tokens();
    check_front_back();
    check_length_contracts();
    if (is_header(path_)) check_nodiscard();
    check_enum_switches();
    check_raw_mutex();
    check_unguarded_mutable();
    check_lock_across_wait();
    check_layering();
    check_discarded_error_return();
    check_dead_status_stores();
    check_narrowing_cast();
    check_signed_loop();
    check_view_into_temporary();
    check_taint_flows();
    std::sort(violations_.begin(), violations_.end(),
              [](const Violation& a, const Violation& b) {
                return a.line < b.line;
              });
    return std::move(violations_);
  }

 private:
  void report(std::size_t line_index, std::string rule, std::string message) {
    if (suppressions_.allows(line_index, rule)) return;
    Violation v;
    v.file = path_;
    v.line = line_index + 1;
    v.severity = severity_of(rule);
    v.rule = std::move(rule);
    v.message = std::move(message);
    if (line_index < suppressions_.lines.size()) {
      v.excerpt = trimmed(suppressions_.lines[line_index]);
    }
    violations_.push_back(std::move(v));
  }

  // ------------------------------------------------------------------
  // Token-stream helpers.
  // ------------------------------------------------------------------

  std::string_view tok(std::size_t i) const {
    return i < tokens_.size() ? tokens_[i].text : std::string_view{};
  }

  bool tok_is(std::size_t i, std::string_view s) const { return tok(i) == s; }

  bool tok_ident(std::size_t i) const {
    return i < tokens_.size() && tokens_[i].kind == Tok::kIdent;
  }

  std::size_t tok_line_index(std::size_t i) const {
    return tokens_[i].line > 0 ? tokens_[i].line - 1 : 0;
  }

  /// Index of the ')' matching the '(' at `open`, or kNpos.
  std::size_t match_paren(std::size_t open) const {
    int depth = 0;
    for (std::size_t j = open; j < tokens_.size(); ++j) {
      if (tokens_[j].text == "(") ++depth;
      if (tokens_[j].text == ")" && --depth == 0) return j;
    }
    return kNpos;
  }

  /// Index of the '}' matching the '{' at `open`, or kNpos.
  std::size_t match_brace(std::size_t open) const {
    int depth = 0;
    for (std::size_t j = open; j < tokens_.size(); ++j) {
      if (tokens_[j].text == "{") ++depth;
      if (tokens_[j].text == "}" && --depth == 0) return j;
    }
    return kNpos;
  }

  /// Is token `i` a guard call: an identifier from `names` followed by '('?
  bool is_guard_call(std::size_t i,
                     const std::set<std::string_view>& names) const {
    return tok_ident(i) && names.contains(tokens_[i].text) &&
           tok_is(i + 1, "(");
  }

  bool guard_in_token_range(std::size_t lo, std::size_t hi,
                            const std::set<std::string_view>& names) const {
    for (std::size_t j = lo; j < hi && j < tokens_.size(); ++j) {
      if (is_guard_call(j, names)) return true;
    }
    return false;
  }

  /// Guard within the same statement, or in the controlling text of any
  /// *enclosing* block (`if (!v.empty()) { ... v.back() ... }`), however
  /// many lines up the opening brace sits. Walking outward skips already-
  /// closed sibling blocks, so a guard inside an earlier, closed `if` does
  /// not vouch for code after it.
  bool stmt_or_enclosing_guard(std::size_t idx,
                               const std::set<std::string_view>& names) const {
    const auto is_boundary = [&](std::size_t j) {
      const std::string_view t = tok(j);
      return t == ";" || t == "{" || t == "}";
    };
    // Same statement: back to the previous ;/{/}.
    std::size_t stmt_begin = idx;
    while (stmt_begin > 0 && !is_boundary(stmt_begin - 1)) --stmt_begin;
    if (guard_in_token_range(stmt_begin, idx, names)) return true;
    // Enclosing blocks: scan back, brace-balanced; every '{' at depth 0
    // opens a block we are inside of — test its controlling text.
    int depth = 0;
    for (std::size_t p = stmt_begin; p-- > 0;) {
      const std::string_view t = tokens_[p].text;
      if (t == "}") {
        ++depth;
      } else if (t == "{") {
        if (depth > 0) {
          --depth;
          continue;
        }
        std::size_t head_begin = p;
        while (head_begin > 0 && !is_boundary(head_begin - 1)) --head_begin;
        if (guard_in_token_range(head_begin, p, names)) return true;
      }
    }
    return false;
  }

  /// Abort-semantics guard walk for DFX_CHECK-style contracts: a check that
  /// ran earlier in this block (or any enclosing block) dominates the rest
  /// of it, because a failed check never returns. Walk backward; skip over
  /// closed sibling blocks, count guard calls at the current nesting level.
  bool dominating_guard_before(std::size_t idx,
                               const std::set<std::string_view>& names) const {
    int depth = 0;
    for (std::size_t p = idx; p-- > 0;) {
      const std::string_view t = tokens_[p].text;
      if (t == "}") {
        ++depth;
      } else if (t == "{") {
        if (depth > 0) --depth;
      } else if (depth == 0 && is_guard_call(p, names)) {
        return true;
      }
    }
    return false;
  }

  /// Does any of stripped lines [i-window, i] contain one of the tokens?
  bool guarded_nearby(std::size_t i, std::size_t window,
                      const std::vector<std::string_view>& tokens) const {
    const std::size_t lo = i >= window ? i - window : 0;
    for (std::size_t k = lo; k <= i && k < lines_.size(); ++k) {
      for (const auto token : tokens) {
        if (lines_[k].find(token) != std::string::npos) return true;
      }
    }
    return false;
  }

  // ------------------------------------------------------------------
  // Line-based rules (operate on the stripped lines).
  // ------------------------------------------------------------------

  void check_banned_tokens() {
    struct Banned {
      const char* token;
      const char* rule;
      const char* message;
    };
    static const Banned kBanned[] = {
        {"atoi", "banned-atoi",
         "atoi has no error reporting; use a checked parser"},
        {"sprintf", "banned-sprintf",
         "sprintf is unbounded; use snprintf or std::format"},
    };
    for (std::size_t i = 0; i < lines_.size(); ++i) {
      for (const auto& b : kBanned) {
        if (contains_word(lines_[i], b.token)) {
          report(i, b.rule, b.message);
        }
      }
      if (has_raw_new(lines_[i])) {
        report(i, "banned-raw-new",
               "raw new: own allocations with containers or smart pointers");
      }
    }
  }

  static bool has_raw_new(std::string_view line) {
    std::size_t pos = 0;
    while ((pos = line.find("new", pos)) != std::string_view::npos) {
      const bool left_ok = pos == 0 || !is_ident_char(line[pos - 1]);
      const std::size_t end = pos + 3;
      // `new Foo`, `new(nothrow) Foo`: allocation follows the keyword.
      const bool followed = end < line.size() &&
                            (line[end] == ' ' || line[end] == '(');
      if (left_ok && followed) {
        // Skip `new` inside identifiers handled by left/right checks; also
        // skip `operator new` declarations.
        const std::string_view before = line.substr(0, pos);
        if (before.find("operator") == std::string_view::npos) return true;
      }
      pos = end;
    }
    return false;
  }

  void check_length_contracts() {
    if (!path_contains(path_, "dnscore/") && !path_contains(path_, "crypto/")) {
      return;
    }
    static const std::vector<std::string_view> kGuards = {"DFX_CHECK",
                                                         "DFX_DCHECK"};
    for (std::size_t i = 0; i < lines_.size(); ++i) {
      const auto& line = lines_[i];
      const bool risky = contains_word(line, "memcpy") ||
                         line.find(".resize(") != std::string::npos;
      if (!risky) continue;
      if (guarded_nearby(i, 6, kGuards)) continue;
      report(i, "missing-length-check",
             "memcpy/resize on a length derived from input needs a "
             "DFX_CHECK/DFX_DCHECK contract nearby");
    }
  }

  void check_nodiscard() {
    // Walk declaration chunks (text between ; { }) and flag status-returning
    // parse/validate/verify/decode declarations without [[nodiscard]].
    std::size_t chunk_start = 0;
    std::size_t line_no = 0;          // line of chunk_start
    std::size_t current_line = 0;
    for (std::size_t i = 0; i <= stripped_.size(); ++i) {
      const char c = i < stripped_.size() ? stripped_[i] : ';';
      if (c == '\n') ++current_line;
      if (c != ';' && c != '{' && c != '}') continue;
      check_nodiscard_chunk(stripped_.substr(chunk_start, i - chunk_start),
                            line_no);
      chunk_start = i + 1;
      line_no = current_line;
    }
  }

  void check_nodiscard_chunk(std::string chunk, std::size_t start_line) {
    // Line number of the first non-blank character in the chunk.
    std::size_t line = start_line;
    std::size_t begin = 0;
    while (begin < chunk.size() &&
           std::isspace(static_cast<unsigned char>(chunk[begin])) != 0) {
      if (chunk[begin] == '\n') ++line;
      ++begin;
    }
    chunk = chunk.substr(begin);
    if (chunk.empty()) return;
    const bool has_nodiscard =
        chunk.find("[[nodiscard]]") != std::string::npos;
    // Strip leading specifiers so the return type leads the chunk.
    for (bool again = true; again;) {
      again = false;
      for (const std::string_view spec :
           {"[[nodiscard]]", "static", "inline", "constexpr", "friend",
            "virtual", "explicit"}) {
        if (chunk.starts_with(spec)) {
          chunk = chunk.substr(spec.size());
          while (!chunk.empty() && (chunk[0] == ' ' || chunk[0] == '\n')) {
            if (chunk[0] == '\n') ++line;
            chunk = chunk.substr(1);
          }
          again = true;
        }
      }
    }
    const bool status_return = chunk.starts_with("bool ") ||
                               chunk.starts_with("std::optional<") ||
                               chunk.starts_with("std::variant<");
    if (!status_return) return;
    // First identifier followed by '(' is the declared name; an '=' before
    // it means this is a statement, not a declaration.
    const std::size_t paren = chunk.find('(');
    if (paren == std::string::npos) return;
    std::size_t name_end = paren;
    while (name_end > 0 && std::isspace(static_cast<unsigned char>(
                               chunk[name_end - 1])) != 0) {
      --name_end;
    }
    std::size_t name_start = name_end;
    while (name_start > 0 && is_ident_char(chunk[name_start - 1])) {
      --name_start;
    }
    if (name_start == name_end) return;
    const std::string_view head(chunk.data(), name_start);
    if (head.find('=') != std::string_view::npos) return;
    const std::string_view name(chunk.data() + name_start,
                                name_end - name_start);
    if (!is_status_function_name(name)) return;
    if (has_nodiscard) return;
    report(line, "missing-nodiscard",
           "status-returning " + std::string(name) +
               "() must be [[nodiscard]]");
  }

  /// A class that owns a Mutex locks in const methods, so its mutable
  /// fields are (almost always) shared state — they need DFX_GUARDED_BY.
  /// `mutable Mutex`/`mutable std::atomic` are the guard/lock themselves.
  void check_unguarded_mutable() {
    bool owns_mutex = false;
    for (const auto& line : lines_) {
      if (contains_word(line, "Mutex") &&
          line.find("MutexLock") == std::string::npos &&
          line.find(';') != std::string::npos) {
        owns_mutex = true;
        break;
      }
    }
    if (!owns_mutex) return;
    for (std::size_t i = 0; i < lines_.size(); ++i) {
      const auto& line = lines_[i];
      if (!contains_word(line, "mutable")) continue;
      if (line.find("Mutex") != std::string::npos ||
          line.find("std::atomic") != std::string::npos ||
          line.find("DFX_GUARDED_BY") != std::string::npos) {
        continue;
      }
      report(i, "unguarded-mutable-field",
             "mutable field in a Mutex-owning class without "
             "DFX_GUARDED_BY(<its mutex>)");
    }
  }

  /// Waiting on a condition variable must pass the very mutex the
  /// enclosing MutexLock holds — waiting with a different lockable keeps
  /// the real lock held across the block, a latent deadlock.
  void check_lock_across_wait() {
    static constexpr std::size_t kLookback = 30;
    for (std::size_t i = 0; i < lines_.size(); ++i) {
      const auto& line = lines_[i];
      std::size_t wait_pos = std::string::npos;
      for (const std::string_view token : {".wait_for(", ".wait_until(",
                                           ".wait("}) {
        const std::size_t p = line.find(token);
        if (p != std::string::npos) {
          wait_pos = p + token.size();
          break;
        }
      }
      if (wait_pos == std::string::npos) continue;
      const std::string arg = first_argument(line, wait_pos);
      if (arg.empty()) continue;  // e.g. future.wait() — no lock involved
      // Nearest preceding MutexLock declaration wins.
      std::string lock_name;
      std::string lock_mutex;
      const std::size_t lo = i >= kLookback ? i - kLookback : 0;
      for (std::size_t k = lo; k <= i; ++k) {
        parse_mutexlock_decl(lines_[k], lock_name, lock_mutex);
      }
      if (lock_name.empty()) continue;  // no annotated lock in scope
      if (arg == lock_name || arg == lock_mutex) continue;
      report(i, "lock-across-wait",
             "wait on '" + arg + "' while MutexLock '" + lock_name +
                 "' holds '" + lock_mutex +
                 "' — pass the held mutex to the wait");
    }
  }

  /// First argument of a call, starting right after its '(': the text up
  /// to the first top-level ',' or ')'.
  static std::string first_argument(std::string_view line, std::size_t pos) {
    int depth = 0;
    std::size_t end = pos;
    for (; end < line.size(); ++end) {
      const char c = line[end];
      if (c == '(') ++depth;
      if ((c == ',' || c == ')') && depth == 0) break;
      if (c == ')') --depth;
    }
    std::string arg(line.substr(pos, end - pos));
    while (!arg.empty() && std::isspace(static_cast<unsigned char>(
                               arg.front())) != 0) {
      arg.erase(arg.begin());
    }
    while (!arg.empty() && std::isspace(static_cast<unsigned char>(
                               arg.back())) != 0) {
      arg.pop_back();
    }
    return arg;
  }

  /// If `line` declares `[const] MutexLock name(mutex_expr)`, fill in the
  /// two out-params (leaving them untouched otherwise).
  static void parse_mutexlock_decl(std::string_view line, std::string& name,
                                   std::string& mutex_expr) {
    const std::size_t kw = line.find("MutexLock");
    if (kw == std::string_view::npos) return;
    std::size_t p = kw + 9;  // past "MutexLock"
    while (p < line.size() &&
           std::isspace(static_cast<unsigned char>(line[p])) != 0) {
      ++p;
    }
    const std::size_t name_start = p;
    while (p < line.size() && is_ident_char(line[p])) ++p;
    if (p == name_start) return;  // e.g. "MutexLock&" parameter — not a decl
    const std::string candidate(line.substr(name_start, p - name_start));
    while (p < line.size() &&
           std::isspace(static_cast<unsigned char>(line[p])) != 0) {
      ++p;
    }
    if (p >= line.size() || (line[p] != '(' && line[p] != '{')) return;
    name = candidate;
    mutex_expr = first_argument(line, p + 1);
  }

  /// Include-graph layering: see the kLayers table at the top of this file.
  void check_layering() {
    const Layer* self = nullptr;
    for (const auto& layer : kLayers) {
      if (path_contains(path_, std::string(layer.module) + "/")) {
        self = &layer;
        break;
      }
    }
    if (self == nullptr) return;  // tools/tests/bench/examples: exempt
    // Includes are parsed from the ORIGINAL lines — stripping blanks the
    // quoted path (it is a string literal) and the lexer drops directives.
    const auto& raw_lines = suppressions_.lines;
    for (std::size_t i = 0; i < raw_lines.size(); ++i) {
      const auto& line = raw_lines[i];
      const std::size_t inc = line.find("#include \"");
      if (inc == std::string::npos) continue;
      const std::size_t open = inc + 10;
      const std::size_t slash = line.find('/', open);
      const std::size_t close = line.find('"', open);
      if (slash == std::string::npos || close == std::string::npos ||
          slash > close) {
        continue;
      }
      const std::string target = line.substr(open, slash - open);
      for (const auto& layer : kLayers) {
        if (target != layer.module) continue;
        const bool allowed =
            target == self->module || layer.rank < self->rank;
        if (!allowed) {
          report(i, "layering-violation",
                 std::string(self->module) + " (layer " +
                     std::to_string(self->rank) + ") must not include " +
                     target + " (layer " + std::to_string(layer.rank) +
                     ") — see the layer table in lint_core.cpp");
        }
        break;
      }
    }
  }

  // ------------------------------------------------------------------
  // Token-based rules. These see statements whole, across line breaks —
  // `return v.back(\n);` and `std::\nmutex m;` are single token runs.
  // ------------------------------------------------------------------

  void check_front_back() {
    static const std::set<std::string_view> kGuardCalls = {
        "empty", "size", "DFX_CHECK", "DFX_DCHECK", "count", "length"};
    static const std::vector<std::string_view> kGuardLines = {
        "empty(", "size(", "DFX_CHECK", "DFX_DCHECK", "count(", "length("};
    for (std::size_t i = 0; i + 3 < tokens_.size(); ++i) {
      if (!tok_is(i, ".")) continue;
      if (!tok_ident(i + 1) ||
          (tokens_[i + 1].text != "front" && tokens_[i + 1].text != "back")) {
        continue;
      }
      if (!tok_is(i + 2, "(") || !tok_is(i + 3, ")")) continue;
      const std::size_t li = tok_line_index(i + 1);
      if (guarded_nearby(li, 6, kGuardLines)) continue;
      if (stmt_or_enclosing_guard(i, kGuardCalls)) continue;
      report(li, "unchecked-front-back",
             ".front()/.back() without a nearby emptiness check "
             "(guard it, or annotate with dfx-lint: allow)");
    }
  }

  /// Concurrency rule: shared state must use the annotated wrappers from
  /// util/thread_annotations.h so clang's capability analysis and the
  /// lockgraph checker see every lock. Raw primitives are legal only under
  /// util/ (where the wrappers and the checker themselves live).
  void check_raw_mutex() {
    if (path_contains(path_, "util/")) return;
    static const std::set<std::string_view> kRaw = {
        "mutex", "recursive_mutex", "timed_mutex",
        "lock_guard", "unique_lock", "scoped_lock"};
    std::size_t last_line = kNpos;
    for (std::size_t i = 0; i + 2 < tokens_.size(); ++i) {
      if (!tok_is(i, "std") || !tok_is(i + 1, "::")) continue;
      if (!tok_ident(i + 2) || !kRaw.contains(tokens_[i + 2].text)) continue;
      const std::size_t li = tok_line_index(i);
      if (li == last_line) continue;  // one report per line, as before
      last_line = li;
      report(li, "raw-std-mutex",
             "std::" + std::string(tokens_[i + 2].text) +
                 " outside util/: use the annotated dfx::Mutex/"
                 "MutexLock (util/thread_annotations.h)");
    }
  }

  /// A call to a must-use function (ErrorCode / optional / variant /
  /// status-named bool return, per the cross-TU symbol index) used as a
  /// bare expression statement silently drops the error path.
  void check_discarded_error_return() {
    if (options_.symbols == nullptr) return;
    static const std::set<std::string_view> kStmtStarters = {
        ";", "{", "}", ":", "else", "do"};
    for (std::size_t i = 0; i < tokens_.size(); ++i) {
      if (!tok_ident(i) || !tok_is(i + 1, "(")) continue;
      const std::string_view name = tokens_[i].text;
      if (!options_.symbols->must_use(name)) continue;
      const std::size_t close = match_paren(i + 1);
      if (close == kNpos || !tok_is(close + 1, ";")) continue;
      // Walk the qualifier/member chain back: `obj.parse_x()` and
      // `ns::parse_x()` are still bare statements if the chain leads one.
      std::size_t k = i;
      while (k >= 2 &&
             (tok(k - 1) == "::" || tok(k - 1) == "." || tok(k - 1) == "->") &&
             tok_ident(k - 2)) {
        k -= 2;
      }
      bool flag = false;
      if (k == 0) {
        flag = true;  // first token of the file
      } else {
        const std::string_view prev = tok(k - 1);
        if (kStmtStarters.contains(prev)) {
          flag = true;
        } else if (prev == ")") {
          // Either a (void) cast — fine — or the close of an if/while
          // condition, making the call the entire controlled statement.
          std::size_t open = kNpos;
          int depth = 0;
          for (std::size_t p = k - 1; p != kNpos; --p) {
            if (tok(p) == ")") ++depth;
            if (tok(p) == "(" && --depth == 0) {
              open = p;
              break;
            }
            if (p == 0) break;
          }
          if (open != kNpos) {
            const bool void_cast = open + 2 == k - 1 && tok_is(open + 1, "void");
            if (!void_cast && open > 0) {
              const std::string_view head = tok(open - 1);
              if (head == "if" || head == "while" || head == "for" ||
                  head == "switch") {
                flag = true;
              }
            }
          }
        }
      }
      if (!flag) continue;
      std::string ret = "a status";
      const auto decls = options_.symbols->find_functions(name);
      if (!decls.empty()) ret = decls.front()->return_type;
      report(tok_line_index(i), "discarded-error-return",
             "result of '" + std::string(name) + "' (returns " + ret +
                 ") is silently discarded — consume it or cast to void");
    }
  }

  /// Flow-aware companion to discarded-error-return: a must-use call whose
  /// result is bound to a fresh local that no reachable statement ever
  /// reads discards the status just as surely as a bare call. A plain
  /// reassignment (`st = next();`) is a write, not a read; reads inside
  /// DFX_CHECK/DFX_DCHECK count (that is the intended consumption).
  void check_dead_status_stores() {
    if (options_.symbols == nullptr || !options_.dataflow) return;
    for (const Cfg& cfg : cfgs_) {
      for (std::size_t bi = 0; bi < cfg.blocks.size(); ++bi) {
        const std::vector<CfgStmt>& stmts = cfg.blocks[bi].stmts;
        for (std::size_t si = 0; si < stmts.size(); ++si) {
          check_dead_store_stmt(cfg, bi, si);
        }
      }
    }
  }

  void check_dead_store_stmt(const Cfg& cfg, std::size_t bi, std::size_t si) {
    const CfgStmt& st = cfg.blocks[bi].stmts[si];
    if (st.kind != StmtKind::kPlain) return;
    const std::size_t e = std::min(st.end, tokens_.size());
    // LHS must be a declaration: `Type name = call();` — at least a type
    // token plus the name, no references/bindings/members/multi-decls.
    std::size_t op = kNpos;
    int depth = 0;
    for (std::size_t j = st.begin; j < e; ++j) {
      const std::string_view t = tok(j);
      if (t == "(" || t == "[" || t == "{") ++depth;
      if (t == ")" || t == "]" || t == "}") --depth;
      if (depth == 0 && t == "=" && tokens_[j].kind == Tok::kPunct) {
        op = j;
        break;
      }
    }
    if (op == kNpos || op < st.begin + 2) return;
    std::size_t name_tok = kNpos;
    for (std::size_t j = st.begin; j < op; ++j) {
      const std::string_view t = tok(j);
      if (t == "&" || t == "&&" || t == "[" || t == "." || t == "->" ||
          t == "," || t == "(" || t == "maybe_unused") {
        return;  // reference / binding / member write / multi-decl / cast
      }
      if (tok_ident(j)) name_tok = j;
    }
    if (name_tok != op - 1 || !tok_ident(op - 2)) return;
    const std::string_view var = tok(name_tok);
    // RHS must be exactly one call: `[chain::]callee(args);`.
    std::size_t p = op + 1;
    std::size_t callee = kNpos;
    while (p < e && tok_ident(p)) {
      callee = p;
      if (tok_is(p + 1, "::") || tok_is(p + 1, ".") || tok_is(p + 1, "->")) {
        p += 2;
      } else {
        ++p;
        break;
      }
    }
    if (callee == kNpos || !tok_is(p, "(")) return;
    if (!options_.symbols->must_use(tok(callee))) return;
    const std::size_t close = match_paren(p);
    if (close == kNpos || close >= e) return;
    for (std::size_t j = close + 1; j < e; ++j) {
      if (!tok_is(j, ";")) return;  // trailing `.value_or(...)` etc: consumed
    }
    if (dead_store_is_read(cfg, bi, si, name_tok, var)) return;
    report(tok_line_index(name_tok), "discarded-error-return",
           "status of '" + std::string(tok(callee)) + "' is stored in '" +
               std::string(var) +
               "' but never read on any path — a dead store discards the "
               "error exactly like a bare call");
  }

  /// Is `var` read in any statement reachable after its declaration? The
  /// walk covers the rest of the declaring block plus everything reachable
  /// from its successors (so a loop back into the block re-scans it).
  bool dead_store_is_read(const Cfg& cfg, std::size_t bi, std::size_t si,
                          std::size_t decl_tok, std::string_view var) const {
    std::vector<char> reach(cfg.blocks.size(), 0);
    std::vector<std::size_t> work;
    for (const CfgEdge& edge : cfg.blocks[bi].succs) {
      if (reach[edge.to] == 0) {
        reach[edge.to] = 1;
        work.push_back(edge.to);
      }
    }
    while (!work.empty()) {
      const std::size_t b = work.back();
      work.pop_back();
      for (const CfgEdge& edge : cfg.blocks[b].succs) {
        if (reach[edge.to] == 0) {
          reach[edge.to] = 1;
          work.push_back(edge.to);
        }
      }
    }
    const auto stmt_reads = [&](const CfgStmt& st) {
      const std::size_t e = std::min(st.end, tokens_.size());
      for (std::size_t j = st.begin; j < e; ++j) {
        if (!tok_ident(j) || tok(j) != var || j == decl_tok) continue;
        // A statement-initial `var = ...` overwrites without reading.
        const bool plain_write = j == st.begin && tok_is(j + 1, "=");
        if (!plain_write) return true;
      }
      return false;
    };
    const std::vector<CfgStmt>& own = cfg.blocks[bi].stmts;
    for (std::size_t k = si + 1; k < own.size(); ++k) {
      if (stmt_reads(own[k])) return true;
    }
    for (std::size_t b = 0; b < cfg.blocks.size(); ++b) {
      if (reach[b] == 0) continue;
      for (const CfgStmt& st : cfg.blocks[b].stmts) {
        if (stmt_reads(st)) return true;
      }
    }
    return false;
  }

  /// The taint pack: wire-derived values (DFX_TAINTED sources, fields and
  /// parameters — see src/util/check.hpp) must pass a bound check on every
  /// CFG path before indexing, sizing, memcpy'ing or bounding a loop.
  /// Scoped to the wire-handling layers, like the other parser rules.
  void check_taint_flows() {
    if (!options_.dataflow) return;
    static const char* const kScope[] = {"dnscore/",    "crypto/", "zone/",
                                         "authserver/", "server/", "dataflow/"};
    if (std::none_of(std::begin(kScope), std::end(kScope),
                     [&](const char* s) { return path_contains(path_, s); })) {
      return;
    }
    // Marker declarations in the file itself always count, so fixtures and
    // headers are self-contained; the cross-TU index layers on top.
    SymbolIndex local;
    local.index_source(path_, tokens_);
    TaintConfig config;
    const auto merge = [&config](const SymbolIndex& idx) {
      config.source_calls.insert(idx.taint_source_calls().begin(),
                                 idx.taint_source_calls().end());
      config.tainted_fields.insert(idx.taint_fields().begin(),
                                   idx.taint_fields().end());
      config.passthrough_calls.insert(idx.taint_passthrough_calls().begin(),
                                      idx.taint_passthrough_calls().end());
    };
    merge(local);
    if (options_.symbols != nullptr) merge(*options_.symbols);
    std::set<std::size_t> reported_lines;
    for (const Cfg& cfg : cfgs_) {
      // Nested lambdas get their own Cfg; skip their bodies here.
      std::vector<std::pair<std::size_t, std::size_t>> holes;
      for (const Cfg& inner : cfgs_) {
        if (&inner != &cfg && inner.body_open > cfg.body_open &&
            inner.body_close < cfg.body_close) {
          holes.emplace_back(inner.body_open, inner.body_close + 1);
        }
      }
      for (const TaintFinding& f :
           find_taint_flows(cfg, tokens_, config, holes)) {
        const std::size_t li = tok_line_index(f.token);
        if (!reported_lines.insert(li).second) continue;
        std::string what;
        if (f.sink == "index") {
          what = "indexes a buffer";
        } else if (f.sink == "resize" || f.sink == "reserve") {
          what = "sizes an allocation (." + f.sink + ")";
        } else if (f.sink == "memcpy-length") {
          what = "is a memcpy/memmove/memset length";
        } else {
          what = "bounds a loop (wrap it in DFX_BOUNDED_LOOP)";
        }
        report(li, "unchecked-taint-flow",
               "wire-tainted value " +
                   (f.vars.empty() ? std::string() : "'" + f.vars + "' ") +
                   what + " without a dominating DFX_CHECK/bound test on "
                   "every path");
      }
    }
  }

  /// static_cast to a narrower integer on the wire-handling layers must sit
  /// under a DFX_CHECK/DFX_DCHECK bound: unchecked truncation of lengths
  /// and counts is exactly how parser blowups start. Byte-extraction idioms
  /// (`>> 8`, `& 0xFF`) and value-preserving casts of a bare variable
  /// (enum→underlying, char promotions) are exempt.
  void check_narrowing_cast() {
    if (!path_contains(path_, "dnscore/") &&
        !path_contains(path_, "crypto/") && !path_contains(path_, "zone/")) {
      return;
    }
    static const std::set<std::string> kNarrow = {
        "uint8_t",  "int8_t",       "uint16_t",  "int16_t",
        "short",    "unsigned short", "short int", "signed short"};
    static const std::set<std::string_view> kGuardCalls = {"DFX_CHECK",
                                                           "DFX_DCHECK"};
    static const std::vector<std::string_view> kGuardLines = {"DFX_CHECK",
                                                              "DFX_DCHECK"};
    for (std::size_t i = 0; i < tokens_.size(); ++i) {
      if (!tok_is(i, "static_cast") || !tok_is(i + 1, "<")) continue;
      // Collect the target type up to the matching '>'.
      std::string type;
      int depth = 1;
      std::size_t j = i + 2;
      for (; j < tokens_.size() && depth > 0; ++j) {
        const std::string_view t = tokens_[j].text;
        if (t == "<") {
          ++depth;
        } else if (t == ">") {
          if (--depth == 0) break;
        } else if (t != "std" && t != "::" && t != "const") {
          if (!type.empty()) type += ' ';
          type += std::string(t);
        }
      }
      if (j >= tokens_.size() || !kNarrow.contains(type)) continue;
      if (!tok_is(j + 1, "(")) continue;
      const std::size_t close = match_paren(j + 1);
      if (close == kNpos) continue;
      bool masked = false;
      bool simple = true;
      for (std::size_t p = j + 2; p < close; ++p) {
        const std::string_view t = tokens_[p].text;
        if (t == "&" || t == ">>") masked = true;
        const bool chain_tok =
            tokens_[p].kind == Tok::kIdent || tokens_[p].kind == Tok::kNumber ||
            t == "::" || t == "." || t == "->" || t == "~";
        if (!chain_tok) simple = false;
      }
      // `x >> 8` / `x & 0xFF` deliberately select bits; a bare variable or
      // member chain is a width-safe conversion the types already prove.
      if (masked || simple) continue;
      const std::size_t li = tok_line_index(i);
      const Cfg* cfg =
          options_.dataflow ? enclosing_cfg(cfgs_, i) : nullptr;
      if (cfg != nullptr) {
        // Flow-aware path: the guard must dominate the cast — a check in
        // one branch only, or textually after the cast on the same line,
        // no longer vouches for it (both slipped past the old 6-line
        // window; tests/lint_fixtures/dnscore/bad_multipath.cpp pins them).
        GuardSpec spec;
        for (std::size_t p = j + 2; p < close; ++p) {
          if (tokens_[p].kind == Tok::kIdent) {
            spec.subjects.insert(std::string(tokens_[p].text));
          }
        }
        if (has_dominating_guard(*cfg, tokens_, i, spec)) continue;
      } else {
        if (guarded_nearby(li, 6, kGuardLines)) continue;
        if (dominating_guard_before(i, kGuardCalls)) continue;
      }
      report(li, "unguarded-narrowing-cast",
             "static_cast<" + type +
                 "> of a computed value without a DFX_CHECK/DFX_DCHECK "
                 "bound — truncation here corrupts wire data");
    }
  }

  /// `for (int i = 0; i < v.size(); ...)` mixes a signed index with an
  /// unsigned bound: the comparison promotes, and a size above INT_MAX (or
  /// a buggy negative index) wraps instead of failing.
  void check_signed_loop() {
    static const std::set<std::string_view> kSignedMulti = {"int", "long",
                                                            "short", "signed"};
    static const std::set<std::string_view> kSignedSingle = {
        "ptrdiff_t", "int8_t", "int16_t", "int32_t", "int64_t"};
    for (std::size_t i = 0; i < tokens_.size(); ++i) {
      if (!tok_is(i, "for") || !tok_is(i + 1, "(")) continue;
      const std::size_t close = match_paren(i + 1);
      if (close == kNpos) continue;
      std::size_t p = i + 2;
      if (tok_is(p, "const")) ++p;
      if (tok_is(p, "std") && tok_is(p + 1, "::")) p += 2;
      // The declared type: one std-typedef, or a run of int/long/short/
      // signed keywords (`long long`, `signed int`, ...).
      bool signed_type = false;
      if (tok_ident(p) && kSignedSingle.contains(tokens_[p].text)) {
        signed_type = true;
        ++p;
      } else {
        while (tok_ident(p) && kSignedMulti.contains(tokens_[p].text)) {
          signed_type = true;
          ++p;
        }
      }
      if (!signed_type || !tok_ident(p)) continue;
      const std::string_view var = tokens_[p].text;
      if (!tok_is(p + 1, "=")) continue;
      // Condition: between the first and second ';' at paren depth 0.
      std::size_t semi1 = kNpos;
      int depth = 0;
      for (std::size_t q = i + 2; q < close; ++q) {
        const std::string_view t = tokens_[q].text;
        if (t == "(" || t == "[") ++depth;
        if (t == ")" || t == "]") --depth;
        if (t == ";" && depth == 0) {
          semi1 = q;
          break;
        }
      }
      if (semi1 == kNpos) continue;
      for (std::size_t q = semi1 + 1; q < close; ++q) {
        const std::string_view t = tokens_[q].text;
        if (t == "(" || t == "[") ++depth;
        if (t == ")" || t == "]") --depth;
        if ((t == ";" && depth == 0) || q + 1 == close) {
          // Condition tokens are (semi1, q). Find `var < bound`.
          if (flag_signed_bound(semi1 + 1, t == ";" ? q : close, var)) {
            report(tok_line_index(i), "signed-unsigned-loop",
                   "loop index '" + std::string(var) +
                       "' is signed but its bound is a container size — "
                       "use std::size_t (or cast the bound once, checked)");
          }
          break;
        }
      }
    }
  }

  bool flag_signed_bound(std::size_t lo, std::size_t hi,
                         std::string_view var) const {
    for (std::size_t k = lo; k + 1 < hi; ++k) {
      if (!(tok_ident(k) && tokens_[k].text == var)) continue;
      if (tok(k + 1) != "<" && tok(k + 1) != "<=") continue;
      bool size_call = false;
      bool cast = false;
      int depth = 0;
      for (std::size_t b = k + 2; b < hi; ++b) {
        const std::string_view t = tokens_[b].text;
        if (t == "(" || t == "[") ++depth;
        if (t == ")" || t == "]") --depth;
        if (depth == 0 && (t == "&&" || t == "||" || t == ";")) break;
        if ((t == "size" || t == "length") && tok_is(b + 1, "(")) {
          size_call = true;
        }
        if (t == "static_cast") cast = true;
      }
      return size_call && !cast;
    }
    return false;
  }

  /// A function returning string_view/span must not return a view of one of
  /// its own locals — the storage dies with the frame.
  void check_view_into_temporary() {
    for (std::size_t i = 0; i < tokens_.size(); ++i) {
      if (!tok_ident(i) ||
          (tokens_[i].text != "string_view" && tokens_[i].text != "span")) {
        continue;
      }
      std::size_t j = i + 1;
      if (tok_is(j, "<")) {  // span<const uint8_t>
        int depth = 1;
        ++j;
        for (; j < tokens_.size() && depth > 0; ++j) {
          if (tok(j) == "<") ++depth;
          if (tok(j) == ">") --depth;
        }
      }
      // Function name: [Qual::]name followed by '('.
      if (!tok_ident(j)) continue;
      while (tok_is(j + 1, "::") && tok_ident(j + 2)) j += 2;
      if (!tok_is(j + 1, "(")) continue;
      const std::size_t close = match_paren(j + 1);
      if (close == kNpos) continue;
      std::size_t k = close + 1;
      while (tok_is(k, "const") || tok_is(k, "noexcept") ||
             tok_is(k, "override") || tok_is(k, "final")) {
        if (tok_is(k, "noexcept") && tok_is(k + 1, "(")) {
          const std::size_t ne = match_paren(k + 1);
          if (ne == kNpos) break;
          k = ne + 1;
        } else {
          ++k;
        }
      }
      if (!tok_is(k, "{")) continue;  // declaration, not a definition
      const std::size_t body_open = k;
      const std::size_t body_close = match_brace(body_open);
      if (body_close == kNpos) continue;
      scan_view_body(body_open, body_close);
      i = body_close;
    }
  }

  void scan_view_body(std::size_t body_open, std::size_t body_close) {
    static const std::set<std::string_view> kOwners = {
        "string", "vector", "array", "basic_string", "ostringstream", "deque"};
    // Arena-style owners: unqualified types whose accessors hand out views
    // that die with the owner (a local WireArena dies with the frame just
    // like a local std::string; see dnscore/arena.h).
    static const std::set<std::string_view> kArenaOwners = {"WireArena"};
    std::set<std::string_view> locals;
    const auto collect_local = [&](std::size_t q) {
      if (tok(q) == "&" || tok(q) == "*") return;  // not an owning local
      if (tok_ident(q) &&
          (tok(q + 1) == "=" || tok(q + 1) == "(" || tok(q + 1) == ";" ||
           tok(q + 1) == "{" || tok(q + 1) == ",")) {
        locals.insert(tokens_[q].text);
      }
    };
    for (std::size_t p = body_open + 1; p + 2 < body_close; ++p) {
      if (tok_ident(p) && kArenaOwners.contains(tokens_[p].text) &&
          tok(p - 1) != "::" && tok(p - 1) != "static") {
        collect_local(p + 1);
        continue;
      }
      if (!tok_is(p, "std") || !tok_is(p + 1, "::")) continue;
      if (!tok_ident(p + 2) || !kOwners.contains(tokens_[p + 2].text)) continue;
      if (tok(p - 1) == "static" ||
          (tok(p - 1) == "const" && tok(p - 2) == "static")) {
        continue;  // statics outlive the frame
      }
      std::size_t q = p + 3;
      if (tok_is(q, "<")) {
        int depth = 1;
        ++q;
        for (; q < body_close && depth > 0; ++q) {
          if (tok(q) == "<") ++depth;
          if (tok(q) == ">") --depth;
        }
      }
      collect_local(q);
    }
    if (locals.empty()) return;
    for (std::size_t p = body_open + 1; p + 1 < body_close; ++p) {
      if (!tok_is(p, "return") || !tok_ident(p + 1) ||
          !locals.contains(tokens_[p + 1].text)) {
        continue;
      }
      const bool direct = tok_is(p + 2, ";");
      // Member calls that return views of the owner's storage.
      static const std::set<std::string_view> kViewCalls = {"substr", "copy"};
      const bool via_call = tok_is(p + 2, ".") && tok_ident(p + 3) &&
                            kViewCalls.contains(tokens_[p + 3].text) &&
                            tok_is(p + 4, "(");
      if (!direct && !via_call) continue;
      report(tok_line_index(p), "view-into-temporary",
             "returning a view of local '" + std::string(tokens_[p + 1].text) +
                 "' — the buffer dies with this frame; return an owning "
                 "string or take an out-param");
    }
  }

  /// Generalized switch-exhaustiveness over every enum the symbol index
  /// knows (replacing the old hardcoded ErrorCode rule). A switch whose
  /// case labels all belong to one indexed enum must either cover every
  /// enumerator or carry a default.
  void check_enum_switches() {
    if (options_.symbols == nullptr) return;
    for (std::size_t i = 0; i < tokens_.size(); ++i) {
      if (!tok_is(i, "switch") || !tok_is(i + 1, "(")) continue;
      const std::size_t cond_close = match_paren(i + 1);
      if (cond_close == kNpos || !tok_is(cond_close + 1, "{")) continue;
      const std::size_t body_open = cond_close + 1;
      const std::size_t body_close = match_brace(body_open);
      if (body_close == kNpos) continue;
      std::set<std::string, std::less<>> present;
      std::set<std::string, std::less<>> qualifiers;
      bool has_default = false;
      int depth = 1;
      for (std::size_t p = body_open + 1; p < body_close; ++p) {
        const std::string_view t = tokens_[p].text;
        if (t == "{") {
          ++depth;
        } else if (t == "}") {
          --depth;
        } else if (depth == 1 && t == "default" && tok_is(p + 1, ":")) {
          has_default = true;
        } else if (depth == 1 && t == "case") {
          // Label runs to the next ':' ("::" is one token, so a scope
          // separator can never be mistaken for the label end).
          std::size_t q = p + 1;
          std::size_t last_ident = kNpos;
          while (q < body_close && !tok_is(q, ":")) {
            if (tok_ident(q)) last_ident = q;
            ++q;
          }
          if (last_ident != kNpos) {
            present.insert(std::string(tokens_[last_ident].text));
            if (last_ident >= 2 && tok(last_ident - 1) == "::" &&
                tok_ident(last_ident - 2)) {
              qualifiers.insert(std::string(tokens_[last_ident - 2].text));
            }
          }
          p = q;
        }
      }
      if (has_default || present.empty()) continue;
      const EnumDecl* target = resolve_switched_enum(present, qualifiers);
      if (target == nullptr) continue;
      std::vector<std::string> missing;
      for (const auto& e : target->enumerators) {
        if (!present.contains(e)) missing.push_back(e);
      }
      if (missing.empty()) continue;
      std::string msg = "switch over " + target->name + " misses " +
                        std::to_string(missing.size()) +
                        " enumerator(s) and has no default:";
      for (std::size_t m = 0; m < missing.size() && m < 3; ++m) {
        msg += " " + missing[m];
      }
      if (missing.size() > 3) msg += " ...";
      report(tok_line_index(i), "nonexhaustive-enum-switch", msg);
    }
  }

  const EnumDecl* resolve_switched_enum(
      const std::set<std::string, std::less<>>& present,
      const std::set<std::string, std::less<>>& qualifiers) const {
    const auto covers = [&](const EnumDecl* e) {
      const std::set<std::string_view> all(e->enumerators.begin(),
                                           e->enumerators.end());
      return std::all_of(present.begin(), present.end(),
                         [&](const std::string& label) {
                           return all.contains(std::string_view(label));
                         });
    };
    for (const auto& q : qualifiers) {
      for (const EnumDecl* e : options_.symbols->find_enums(q)) {
        if (covers(e)) return e;
      }
    }
    if (!qualifiers.empty()) return nullptr;
    // Unscoped labels (`case kSweet:`): usable only if exactly one indexed
    // enum contains every label — ambiguity keeps the rule quiet.
    const EnumDecl* unique = nullptr;
    for (const EnumDecl& e : options_.symbols->enums()) {
      if (!covers(&e)) continue;
      if (unique != nullptr) return nullptr;
      unique = &e;
    }
    return unique;
  }

  const std::string& path_;
  const Options& options_;
  const std::string& stripped_;
  const std::vector<std::string>& lines_;
  const std::vector<Token>& tokens_;
  Suppressions suppressions_;
  std::vector<Cfg> cfgs_;  // built once when options_.dataflow
  std::vector<Violation> violations_;
};

}  // namespace

bool line_suppressed(const FileAnalysis& fa, std::size_t line_index,
                     std::string_view rule) {
  return Suppressions{fa.raw_lines}.allows(line_index, rule);
}

namespace {

/// Is the quote at `src[i]` a C++14 digit separator rather than the start
/// of a character literal? True when it continues a pp-number: the run of
/// ident chars ending right before it starts with a digit (so `1'000` and
/// `0x1F'u` qualify, while the prefixes in `L'a'` / `u8'a'` do not).
bool quote_is_digit_separator(std::string_view src, std::size_t i) {
  if (i == 0 || !is_ident_char(src[i - 1])) return false;
  std::size_t run_start = i;
  while (run_start > 0 && (is_ident_char(src[run_start - 1]) ||
                           src[run_start - 1] == '.' ||
                           src[run_start - 1] == '\'')) {
    --run_start;
  }
  return std::isdigit(static_cast<unsigned char>(src[run_start])) != 0;
}

}  // namespace

std::string strip_comments_and_strings(std::string_view src) {
  std::string out;
  out.reserve(src.size());
  enum class State { kCode, kLineComment, kBlockComment, kString, kChar };
  State state = State::kCode;
  bool raw_string = false;       // inside R"delim( ... )delim"
  std::string raw_delim;
  for (std::size_t i = 0; i < src.size(); ++i) {
    const char c = src[i];
    const char next = i + 1 < src.size() ? src[i + 1] : '\0';
    switch (state) {
      case State::kCode:
        if (c == '/' && next == '/') {
          state = State::kLineComment;
          out += "  ";
          ++i;
        } else if (c == '/' && next == '*') {
          state = State::kBlockComment;
          out += "  ";
          ++i;
        } else if (c == '"') {
          // Raw string literal? Look back for R / u8R / LR etc.
          raw_string = i > 0 && src[i - 1] == 'R';
          if (raw_string) {
            raw_delim.clear();
            std::size_t j = i + 1;
            while (j < src.size() && src[j] != '(') {
              raw_delim.push_back(src[j]);
              ++j;
            }
          }
          state = State::kString;
          out += '"';
        } else if (c == '\'') {
          if (quote_is_digit_separator(src, i)) {
            out += '\'';  // `1'000'000` stays a literal, not a char state
          } else {
            state = State::kChar;
            out += '\'';
          }
        } else {
          out += c;
        }
        break;
      case State::kLineComment:
        if (c == '\n') {
          state = State::kCode;
          out += '\n';
        } else {
          out += ' ';
        }
        break;
      case State::kBlockComment:
        if (c == '*' && next == '/') {
          state = State::kCode;
          out += "  ";
          ++i;
        } else {
          out += c == '\n' ? '\n' : ' ';
        }
        break;
      case State::kString:
        if (raw_string) {
          const std::string terminator = ")" + raw_delim + "\"";
          if (src.compare(i, terminator.size(), terminator) == 0) {
            state = State::kCode;
            raw_string = false;
            out += '"';
            i += terminator.size() - 1;
          } else {
            out += c == '\n' ? '\n' : ' ';
          }
        } else if (c == '\\') {
          out += ' ';
          if (next != '\0') {
            out += next == '\n' ? '\n' : ' ';
            ++i;
          }
        } else if (c == '"') {
          state = State::kCode;
          out += '"';
        } else {
          out += c == '\n' ? '\n' : ' ';
        }
        break;
      case State::kChar:
        if (c == '\\') {
          out += ' ';
          if (next != '\0') {
            out += ' ';
            ++i;
          }
        } else if (c == '\'') {
          state = State::kCode;
          out += '\'';
        } else {
          out += ' ';
        }
        break;
    }
  }
  return out;
}

const char* severity_of(std::string_view rule) {
  static const std::set<std::string_view> kWarnings = {
      "missing-nodiscard",     "nonexhaustive-enum-switch",
      "raw-std-mutex",         "unguarded-mutable-field",
      "signed-unsigned-loop",
  };
  return kWarnings.contains(rule) ? "warning" : "error";
}

FileAnalysis analyze_file(std::string path, std::string content) {
  FileAnalysis fa;
  fa.path = std::move(path);
  fa.content = std::make_unique<const std::string>(std::move(content));
  fa.stripped = strip_comments_and_strings(*fa.content);
  fa.lines = split_lines(fa.stripped);
  fa.raw_lines = split_lines(*fa.content);
  fa.tokens = lex(*fa.content);
  return fa;
}

std::vector<std::string> collect_lintable_files(const std::string& root) {
  namespace fs = std::filesystem;
  std::vector<std::string> files;
  for (const char* sub : {"src", "tools", "bench", "examples", "tests"}) {
    const fs::path dir = fs::path(root) / sub;
    std::error_code ec;
    if (!fs::is_directory(dir, ec)) continue;
    for (fs::recursive_directory_iterator it(dir, ec), end; it != end;
         it.increment(ec)) {
      if (ec) break;
      if (!it->is_regular_file()) continue;
      const fs::path& p = it->path();
      const std::string ext = p.extension().string();
      if (ext != ".h" && ext != ".hpp" && ext != ".cpp") continue;
      const std::string s = p.generic_string();
      // Fixtures violate the rules on purpose.
      if (s.find("lint_fixtures") != std::string::npos) continue;
      files.push_back(s);
    }
  }
  std::sort(files.begin(), files.end());
  return files;
}

std::vector<Violation> lint_file(const FileAnalysis& fa,
                                 const Options& options) {
  return Linter(fa, options).run();
}

std::vector<Violation> lint_file(const std::string& path,
                                 std::string_view content,
                                 const Options& options) {
  const FileAnalysis fa = analyze_file(path, std::string(content));
  return lint_file(fa, options);
}

}  // namespace dfx::lint
