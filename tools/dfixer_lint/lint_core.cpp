#include "dfixer_lint/lint_core.h"

#include <algorithm>
#include <cctype>
#include <set>

namespace dfx::lint {
namespace {

// ---------------------------------------------------------------------------
// Layer table (low → high) for the `layering-violation` rule. A file under
// src/<module>/ may include its own module and any *strictly lower* layer;
// including a higher layer — or a different module on the same layer — is a
// violation. Keep this table in dependency order when adding modules:
//
//   json(0) ← util(1) ← crypto(2) ← dnscore(3) ← zone(4) ← authserver(5)
//   ← analyzer(6) ← {dataset, dfixer}(7) ← {zreplicator, measure}(8)
//
// In particular: dnscore/crypto can never include measure/dfixer/
// zreplicator, and util includes nothing above it (json only).
// Files outside src/ (tools, tests, bench, examples) sit above every layer
// and are exempt.
struct Layer {
  const char* module;
  int rank;
};
constexpr Layer kLayers[] = {
    {"json", 0},       {"util", 1},    {"crypto", 2},
    {"dnscore", 3},    {"zone", 4},    {"authserver", 5},
    {"analyzer", 6},   {"dataset", 7}, {"dfixer", 7},
    {"zreplicator", 8}, {"measure", 8},
};
// ---------------------------------------------------------------------------

bool is_ident_char(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_';
}

/// Split stripped content into lines (newlines excluded).
std::vector<std::string> split_lines(std::string_view text) {
  std::vector<std::string> lines;
  std::size_t start = 0;
  while (start <= text.size()) {
    const std::size_t nl = text.find('\n', start);
    if (nl == std::string_view::npos) {
      lines.emplace_back(text.substr(start));
      break;
    }
    lines.emplace_back(text.substr(start, nl - start));
    start = nl + 1;
  }
  return lines;
}

/// Whole-word occurrence of `word` in `line`.
bool contains_word(std::string_view line, std::string_view word) {
  std::size_t pos = 0;
  while ((pos = line.find(word, pos)) != std::string_view::npos) {
    const bool left_ok = pos == 0 || !is_ident_char(line[pos - 1]);
    const std::size_t end = pos + word.size();
    const bool right_ok = end >= line.size() || !is_ident_char(line[end]);
    if (left_ok && right_ok) return true;
    pos = end;
  }
  return false;
}

bool path_contains(const std::string& path, std::string_view dir) {
  return path.find(dir) != std::string::npos;
}

bool is_header(const std::string& path) {
  return path.ends_with(".h") || path.ends_with(".hpp");
}

/// Lines carrying a `dfx-lint: allow(<rule>)` marker, collected from the
/// ORIGINAL source (the marker lives in a comment, which stripping erases).
/// A marker suppresses the line it sits on and, like NOLINTNEXTLINE, the
/// line directly below it — for flagged expressions that had to wrap.
struct Suppressions {
  std::vector<std::string> lines;  // original source lines

  bool allows(std::size_t line_index, std::string_view rule) const {
    const std::string needle = "dfx-lint: allow(" + std::string(rule) + ")";
    for (std::size_t k = line_index >= 1 ? line_index - 1 : 0;
         k <= line_index && k < lines.size(); ++k) {
      if (lines[k].find(needle) != std::string::npos) return true;
    }
    return false;
  }
};

class Linter {
 public:
  Linter(const std::string& path, std::string_view content,
         const Options& options)
      : path_(path),
        options_(options),
        stripped_(strip_comments_and_strings(content)),
        lines_(split_lines(stripped_)),
        suppressions_{split_lines(content)} {}

  std::vector<Violation> run() {
    check_banned_tokens();
    check_front_back();
    check_length_contracts();
    if (is_header(path_)) check_nodiscard();
    check_errorcode_switches();
    check_raw_mutex();
    check_unguarded_mutable();
    check_lock_across_wait();
    check_layering();
    std::sort(violations_.begin(), violations_.end(),
              [](const Violation& a, const Violation& b) {
                return a.line < b.line;
              });
    return std::move(violations_);
  }

 private:
  void report(std::size_t line_index, std::string rule, std::string message) {
    if (suppressions_.allows(line_index, rule)) return;
    violations_.push_back(Violation{path_, line_index + 1, std::move(rule),
                                    std::move(message)});
  }

  /// Does any of lines [i-window, i] contain one of the guard tokens?
  bool guarded_nearby(std::size_t i, std::size_t window,
                      const std::vector<std::string_view>& tokens) const {
    const std::size_t lo = i >= window ? i - window : 0;
    for (std::size_t k = lo; k <= i && k < lines_.size(); ++k) {
      for (const auto token : tokens) {
        if (lines_[k].find(token) != std::string::npos) return true;
      }
    }
    return false;
  }

  void check_banned_tokens() {
    struct Banned {
      const char* token;
      const char* rule;
      const char* message;
    };
    static const Banned kBanned[] = {
        {"atoi", "banned-atoi",
         "atoi has no error reporting; use a checked parser"},
        {"sprintf", "banned-sprintf",
         "sprintf is unbounded; use snprintf or std::format"},
    };
    for (std::size_t i = 0; i < lines_.size(); ++i) {
      for (const auto& b : kBanned) {
        if (contains_word(lines_[i], b.token)) {
          report(i, b.rule, b.message);
        }
      }
      if (has_raw_new(lines_[i])) {
        report(i, "banned-raw-new",
               "raw new: own allocations with containers or smart pointers");
      }
    }
  }

  static bool has_raw_new(std::string_view line) {
    std::size_t pos = 0;
    while ((pos = line.find("new", pos)) != std::string_view::npos) {
      const bool left_ok = pos == 0 || !is_ident_char(line[pos - 1]);
      const std::size_t end = pos + 3;
      // `new Foo`, `new(nothrow) Foo`: allocation follows the keyword.
      const bool followed = end < line.size() &&
                            (line[end] == ' ' || line[end] == '(');
      if (left_ok && followed) {
        // Skip `new` inside identifiers handled by left/right checks; also
        // skip `operator new` declarations.
        const std::string_view before = line.substr(0, pos);
        if (before.find("operator") == std::string_view::npos) return true;
      }
      pos = end;
    }
    return false;
  }

  /// Offset of the first character of line `i` within stripped_.
  std::size_t line_start(std::size_t i) const {
    std::size_t off = 0;
    for (std::size_t k = 0; k < i && k < lines_.size(); ++k) {
      off += lines_[k].size() + 1;  // +1 for the stripped '\n'
    }
    return off;
  }

  static bool span_has_guard(std::string_view span,
                             const std::vector<std::string_view>& tokens) {
    for (const auto token : tokens) {
      if (span.find(token) != std::string_view::npos) return true;
    }
    return false;
  }

  /// Emptiness check within the same statement, or in the controlling text
  /// of any *enclosing* block (`if (!v.empty()) { ... v.back() ... }`),
  /// however many lines up the opening brace sits. Walking outward skips
  /// already-closed sibling blocks, so a guard inside an earlier, closed
  /// `if` does not vouch for code after it.
  bool guarded_by_statement_or_enclosing_if(
      std::size_t abs, const std::vector<std::string_view>& tokens) const {
    const std::string_view text(stripped_);
    const auto boundary_before = [&](std::size_t p) {
      const std::size_t b = text.find_last_of(";{}", p == 0 ? 0 : p - 1);
      return b == std::string_view::npos ? 0 : b + 1;
    };
    // Same statement: from the last ;/{/} up to the use site.
    const std::size_t stmt_begin = boundary_before(abs);
    if (span_has_guard(text.substr(stmt_begin, abs - stmt_begin), tokens)) {
      return true;
    }
    // Enclosing blocks: scan back, brace-balanced; every '{' at depth 0
    // opens a block we are inside of — test its controlling text.
    int depth = 0;
    for (std::size_t p = stmt_begin; p-- > 0;) {
      const char c = text[p];
      if (c == '}') {
        ++depth;
      } else if (c == '{') {
        if (depth > 0) {
          --depth;
          continue;
        }
        const std::size_t head_begin = boundary_before(p);
        if (span_has_guard(text.substr(head_begin, p - head_begin), tokens)) {
          return true;
        }
      }
    }
    return false;
  }

  void check_front_back() {
    static const std::vector<std::string_view> kGuards = {
        "empty(", "size(", "DFX_CHECK", "DFX_DCHECK", "count(", "length("};
    for (std::size_t i = 0; i < lines_.size(); ++i) {
      const auto& line = lines_[i];
      const std::size_t col = std::min(line.find(".front()"),
                                       line.find(".back()"));
      if (col == std::string::npos) continue;
      if (guarded_nearby(i, 6, kGuards)) continue;
      if (guarded_by_statement_or_enclosing_if(line_start(i) + col, kGuards)) {
        continue;
      }
      report(i, "unchecked-front-back",
             ".front()/.back() without a nearby emptiness check "
             "(guard it, or annotate with dfx-lint: allow)");
    }
  }

  /// Concurrency rule: shared state must use the annotated wrappers from
  /// util/thread_annotations.h so clang's capability analysis and the
  /// lockgraph checker see every lock. Raw primitives are legal only under
  /// util/ (where the wrappers and the checker themselves live).
  void check_raw_mutex() {
    if (path_contains(path_, "util/")) return;
    static const std::vector<std::string_view> kRaw = {
        "std::mutex", "std::recursive_mutex", "std::timed_mutex",
        "std::lock_guard", "std::unique_lock", "std::scoped_lock"};
    for (std::size_t i = 0; i < lines_.size(); ++i) {
      for (const auto token : kRaw) {
        if (lines_[i].find(token) != std::string::npos) {
          report(i, "raw-std-mutex",
                 std::string(token) +
                     " outside util/: use the annotated dfx::Mutex/"
                     "MutexLock (util/thread_annotations.h)");
          break;
        }
      }
    }
  }

  /// A class that owns a Mutex locks in const methods, so its mutable
  /// fields are (almost always) shared state — they need DFX_GUARDED_BY.
  /// `mutable Mutex`/`mutable std::atomic` are the guard/lock themselves.
  void check_unguarded_mutable() {
    bool owns_mutex = false;
    for (const auto& line : lines_) {
      if (contains_word(line, "Mutex") &&
          line.find("MutexLock") == std::string::npos &&
          line.find(';') != std::string::npos) {
        owns_mutex = true;
        break;
      }
    }
    if (!owns_mutex) return;
    for (std::size_t i = 0; i < lines_.size(); ++i) {
      const auto& line = lines_[i];
      if (!contains_word(line, "mutable")) continue;
      if (line.find("Mutex") != std::string::npos ||
          line.find("std::atomic") != std::string::npos ||
          line.find("DFX_GUARDED_BY") != std::string::npos) {
        continue;
      }
      report(i, "unguarded-mutable-field",
             "mutable field in a Mutex-owning class without "
             "DFX_GUARDED_BY(<its mutex>)");
    }
  }

  /// Waiting on a condition variable must pass the very mutex the
  /// enclosing MutexLock holds — waiting with a different lockable keeps
  /// the real lock held across the block, a latent deadlock.
  void check_lock_across_wait() {
    static constexpr std::size_t kLookback = 30;
    for (std::size_t i = 0; i < lines_.size(); ++i) {
      const auto& line = lines_[i];
      std::size_t wait_pos = std::string::npos;
      for (const std::string_view token : {".wait_for(", ".wait_until(",
                                           ".wait("}) {
        const std::size_t p = line.find(token);
        if (p != std::string::npos) {
          wait_pos = p + token.size();
          break;
        }
      }
      if (wait_pos == std::string::npos) continue;
      const std::string arg = first_argument(line, wait_pos);
      if (arg.empty()) continue;  // e.g. future.wait() — no lock involved
      // Nearest preceding MutexLock declaration wins.
      std::string lock_name;
      std::string lock_mutex;
      const std::size_t lo = i >= kLookback ? i - kLookback : 0;
      for (std::size_t k = lo; k <= i; ++k) {
        parse_mutexlock_decl(lines_[k], lock_name, lock_mutex);
      }
      if (lock_name.empty()) continue;  // no annotated lock in scope
      if (arg == lock_name || arg == lock_mutex) continue;
      report(i, "lock-across-wait",
             "wait on '" + arg + "' while MutexLock '" + lock_name +
                 "' holds '" + lock_mutex +
                 "' — pass the held mutex to the wait");
    }
  }

  /// First argument of a call, starting right after its '(': the text up
  /// to the first top-level ',' or ')'.
  static std::string first_argument(std::string_view line, std::size_t pos) {
    int depth = 0;
    std::size_t end = pos;
    for (; end < line.size(); ++end) {
      const char c = line[end];
      if (c == '(') ++depth;
      if ((c == ',' || c == ')') && depth == 0) break;
      if (c == ')') --depth;
    }
    std::string arg(line.substr(pos, end - pos));
    while (!arg.empty() && std::isspace(static_cast<unsigned char>(
                               arg.front())) != 0) {
      arg.erase(arg.begin());
    }
    while (!arg.empty() && std::isspace(static_cast<unsigned char>(
                               arg.back())) != 0) {
      arg.pop_back();
    }
    return arg;
  }

  /// If `line` declares `[const] MutexLock name(mutex_expr)`, fill in the
  /// two out-params (leaving them untouched otherwise).
  static void parse_mutexlock_decl(std::string_view line, std::string& name,
                                   std::string& mutex_expr) {
    const std::size_t kw = line.find("MutexLock");
    if (kw == std::string_view::npos) return;
    std::size_t p = kw + 9;  // past "MutexLock"
    while (p < line.size() &&
           std::isspace(static_cast<unsigned char>(line[p])) != 0) {
      ++p;
    }
    const std::size_t name_start = p;
    while (p < line.size() && is_ident_char(line[p])) ++p;
    if (p == name_start) return;  // e.g. "MutexLock&" parameter — not a decl
    const std::string candidate(line.substr(name_start, p - name_start));
    while (p < line.size() &&
           std::isspace(static_cast<unsigned char>(line[p])) != 0) {
      ++p;
    }
    if (p >= line.size() || (line[p] != '(' && line[p] != '{')) return;
    name = candidate;
    mutex_expr = first_argument(line, p + 1);
  }

  /// Include-graph layering: see the kLayers table at the top of this file.
  void check_layering() {
    const Layer* self = nullptr;
    for (const auto& layer : kLayers) {
      if (path_contains(path_, std::string(layer.module) + "/")) {
        self = &layer;
        break;
      }
    }
    if (self == nullptr) return;  // tools/tests/bench/examples: exempt
    // Includes are parsed from the ORIGINAL lines — stripping blanks the
    // quoted path (it is a string literal).
    const auto& raw_lines = suppressions_.lines;
    for (std::size_t i = 0; i < raw_lines.size(); ++i) {
      const auto& line = raw_lines[i];
      const std::size_t inc = line.find("#include \"");
      if (inc == std::string::npos) continue;
      const std::size_t open = inc + 10;
      const std::size_t slash = line.find('/', open);
      const std::size_t close = line.find('"', open);
      if (slash == std::string::npos || close == std::string::npos ||
          slash > close) {
        continue;
      }
      const std::string target = line.substr(open, slash - open);
      for (const auto& layer : kLayers) {
        if (target != layer.module) continue;
        const bool allowed =
            target == self->module || layer.rank < self->rank;
        if (!allowed) {
          report(i, "layering-violation",
                 std::string(self->module) + " (layer " +
                     std::to_string(self->rank) + ") must not include " +
                     target + " (layer " + std::to_string(layer.rank) +
                     ") — see the layer table in lint_core.cpp");
        }
        break;
      }
    }
  }

  void check_length_contracts() {
    if (!path_contains(path_, "dnscore/") && !path_contains(path_, "crypto/")) {
      return;
    }
    static const std::vector<std::string_view> kGuards = {"DFX_CHECK",
                                                         "DFX_DCHECK"};
    for (std::size_t i = 0; i < lines_.size(); ++i) {
      const auto& line = lines_[i];
      const bool risky = contains_word(line, "memcpy") ||
                         line.find(".resize(") != std::string::npos;
      if (!risky) continue;
      if (guarded_nearby(i, 6, kGuards)) continue;
      report(i, "missing-length-check",
             "memcpy/resize on a length derived from input needs a "
             "DFX_CHECK/DFX_DCHECK contract nearby");
    }
  }

  /// Names that must not silently drop their status result.
  static bool is_status_function_name(std::string_view name) {
    for (const char* prefix : {"parse", "validate", "verify", "decode"}) {
      if (name.starts_with(prefix)) return true;
    }
    for (const char* infix :
         {"_parse", "_validate", "_verify", "_decode", "from_wire"}) {
      if (name.find(infix) != std::string_view::npos) return true;
    }
    return false;
  }

  void check_nodiscard() {
    // Walk declaration chunks (text between ; { }) and flag status-returning
    // parse/validate/verify/decode declarations without [[nodiscard]].
    std::size_t chunk_start = 0;
    std::size_t line_no = 0;          // line of chunk_start
    std::size_t current_line = 0;
    for (std::size_t i = 0; i <= stripped_.size(); ++i) {
      const char c = i < stripped_.size() ? stripped_[i] : ';';
      if (c == '\n') ++current_line;
      if (c != ';' && c != '{' && c != '}') continue;
      check_nodiscard_chunk(stripped_.substr(chunk_start, i - chunk_start),
                            line_no);
      chunk_start = i + 1;
      line_no = current_line;
    }
  }

  void check_nodiscard_chunk(std::string chunk, std::size_t start_line) {
    // Line number of the first non-blank character in the chunk.
    std::size_t line = start_line;
    std::size_t begin = 0;
    while (begin < chunk.size() &&
           std::isspace(static_cast<unsigned char>(chunk[begin])) != 0) {
      if (chunk[begin] == '\n') ++line;
      ++begin;
    }
    chunk = chunk.substr(begin);
    if (chunk.empty()) return;
    const bool has_nodiscard =
        chunk.find("[[nodiscard]]") != std::string::npos;
    // Strip leading specifiers so the return type leads the chunk.
    for (bool again = true; again;) {
      again = false;
      for (const std::string_view spec :
           {"[[nodiscard]]", "static", "inline", "constexpr", "friend",
            "virtual", "explicit"}) {
        if (chunk.starts_with(spec)) {
          chunk = chunk.substr(spec.size());
          while (!chunk.empty() && (chunk[0] == ' ' || chunk[0] == '\n')) {
            if (chunk[0] == '\n') ++line;
            chunk = chunk.substr(1);
          }
          again = true;
        }
      }
    }
    const bool status_return = chunk.starts_with("bool ") ||
                               chunk.starts_with("std::optional<") ||
                               chunk.starts_with("std::variant<");
    if (!status_return) return;
    // First identifier followed by '(' is the declared name; an '=' before
    // it means this is a statement, not a declaration.
    const std::size_t paren = chunk.find('(');
    if (paren == std::string::npos) return;
    // Template arguments may contain parentheses only in exotic cases we
    // don't produce; take the identifier immediately left of the paren.
    std::size_t name_end = paren;
    while (name_end > 0 && std::isspace(static_cast<unsigned char>(
                               chunk[name_end - 1])) != 0) {
      --name_end;
    }
    std::size_t name_start = name_end;
    while (name_start > 0 && is_ident_char(chunk[name_start - 1])) {
      --name_start;
    }
    if (name_start == name_end) return;
    const std::string_view head(chunk.data(), name_start);
    if (head.find('=') != std::string_view::npos) return;
    const std::string_view name(chunk.data() + name_start,
                                name_end - name_start);
    if (!is_status_function_name(name)) return;
    if (has_nodiscard) return;
    report(line, "missing-nodiscard",
           "status-returning " + std::string(name) +
               "() must be [[nodiscard]]");
  }

  void check_errorcode_switches() {
    if (options_.errorcode_enumerators.empty()) return;
    const std::set<std::string> all(options_.errorcode_enumerators.begin(),
                                    options_.errorcode_enumerators.end());
    std::size_t pos = 0;
    while ((pos = stripped_.find("switch", pos)) != std::string::npos) {
      const std::size_t kw = pos;
      pos += 6;
      const bool left_ok = kw == 0 || !is_ident_char(stripped_[kw - 1]);
      if (!left_ok || (pos < stripped_.size() && is_ident_char(stripped_[pos]))) {
        continue;
      }
      const std::size_t body_open = stripped_.find('{', pos);
      if (body_open == std::string::npos) return;
      // Brace-match the switch body.
      int depth = 0;
      std::size_t body_end = body_open;
      for (std::size_t i = body_open; i < stripped_.size(); ++i) {
        if (stripped_[i] == '{') ++depth;
        if (stripped_[i] == '}' && --depth == 0) {
          body_end = i;
          break;
        }
      }
      const std::string_view body(stripped_.data() + body_open,
                                  body_end - body_open);
      analyze_switch_body(body, line_of(kw), all);
      pos = body_end;
    }
  }

  std::size_t line_of(std::size_t offset) const {
    return static_cast<std::size_t>(
        std::count(stripped_.begin(),
                   stripped_.begin() + static_cast<std::ptrdiff_t>(offset),
                   '\n'));
  }

  void analyze_switch_body(std::string_view body, std::size_t line_index,
                           const std::set<std::string>& all) {
    // Collect the final `::`-component of every case label.
    std::set<std::string> present;
    std::size_t pos = 0;
    while ((pos = body.find("case", pos)) != std::string_view::npos) {
      const bool left_ok = pos == 0 || !is_ident_char(body[pos - 1]);
      pos += 4;
      if (!left_ok || (pos < body.size() && is_ident_char(body[pos]))) {
        continue;
      }
      // The label ends at the first ':' that is not part of a '::' scope
      // separator (`case ErrorCode::kFoo:`).
      std::size_t colon = pos;
      while ((colon = body.find(':', colon)) != std::string_view::npos &&
             colon + 1 < body.size() && body[colon + 1] == ':') {
        colon += 2;
      }
      if (colon == std::string_view::npos) break;
      std::size_t end = colon;
      // `Foo::kBar:` — step back over the identifier before the colon.
      while (end > pos && std::isspace(static_cast<unsigned char>(
                              body[end - 1])) != 0) {
        --end;
      }
      std::size_t start = end;
      while (start > pos && is_ident_char(body[start - 1])) --start;
      if (start != end) present.insert(std::string(body.substr(start, end - start)));
      pos = colon + 1;
    }
    bool mentions_errorcode = false;
    for (const auto& label : present) {
      if (all.contains(label)) {
        mentions_errorcode = true;
        break;
      }
    }
    if (!mentions_errorcode) return;
    if (body.find("default") != std::string_view::npos) return;
    std::vector<std::string> missing;
    for (const auto& e : all) {
      if (!present.contains(e)) missing.push_back(e);
    }
    if (missing.empty()) return;
    std::string msg = "switch over ErrorCode misses " +
                      std::to_string(missing.size()) +
                      " enumerator(s) and has no default:";
    for (std::size_t i = 0; i < missing.size() && i < 3; ++i) {
      msg += " " + missing[i];
    }
    if (missing.size() > 3) msg += " ...";
    report(line_index, "nonexhaustive-errorcode-switch", msg);
  }

  const std::string& path_;
  const Options& options_;
  std::string stripped_;
  std::vector<std::string> lines_;
  Suppressions suppressions_;
  std::vector<Violation> violations_;
};

}  // namespace

std::string strip_comments_and_strings(std::string_view src) {
  std::string out;
  out.reserve(src.size());
  enum class State { kCode, kLineComment, kBlockComment, kString, kChar };
  State state = State::kCode;
  bool raw_string = false;       // inside R"delim( ... )delim"
  std::string raw_delim;
  for (std::size_t i = 0; i < src.size(); ++i) {
    const char c = src[i];
    const char next = i + 1 < src.size() ? src[i + 1] : '\0';
    switch (state) {
      case State::kCode:
        if (c == '/' && next == '/') {
          state = State::kLineComment;
          out += "  ";
          ++i;
        } else if (c == '/' && next == '*') {
          state = State::kBlockComment;
          out += "  ";
          ++i;
        } else if (c == '"') {
          // Raw string literal? Look back for R / u8R / LR etc.
          raw_string = i > 0 && src[i - 1] == 'R';
          if (raw_string) {
            raw_delim.clear();
            std::size_t j = i + 1;
            while (j < src.size() && src[j] != '(') {
              raw_delim.push_back(src[j]);
              ++j;
            }
          }
          state = State::kString;
          out += '"';
        } else if (c == '\'') {
          state = State::kChar;
          out += '\'';
        } else {
          out += c;
        }
        break;
      case State::kLineComment:
        if (c == '\n') {
          state = State::kCode;
          out += '\n';
        } else {
          out += ' ';
        }
        break;
      case State::kBlockComment:
        if (c == '*' && next == '/') {
          state = State::kCode;
          out += "  ";
          ++i;
        } else {
          out += c == '\n' ? '\n' : ' ';
        }
        break;
      case State::kString:
        if (raw_string) {
          const std::string terminator = ")" + raw_delim + "\"";
          if (src.compare(i, terminator.size(), terminator) == 0) {
            state = State::kCode;
            raw_string = false;
            out += '"';
            i += terminator.size() - 1;
          } else {
            out += c == '\n' ? '\n' : ' ';
          }
        } else if (c == '\\') {
          out += ' ';
          if (next != '\0') {
            out += next == '\n' ? '\n' : ' ';
            ++i;
          }
        } else if (c == '"') {
          state = State::kCode;
          out += '"';
        } else {
          out += c == '\n' ? '\n' : ' ';
        }
        break;
      case State::kChar:
        if (c == '\\') {
          out += ' ';
          if (next != '\0') {
            out += ' ';
            ++i;
          }
        } else if (c == '\'') {
          state = State::kCode;
          out += '\'';
        } else {
          out += ' ';
        }
        break;
    }
  }
  return out;
}

std::vector<std::string> parse_enum_class(std::string_view header,
                                          std::string_view enum_name) {
  std::vector<std::string> out;
  const std::string stripped = strip_comments_and_strings(header);
  const std::string needle = "enum class " + std::string(enum_name);
  std::size_t pos = stripped.find(needle);
  if (pos == std::string::npos) return out;
  const std::size_t open = stripped.find('{', pos);
  const std::size_t close = stripped.find('}', open);
  if (open == std::string::npos || close == std::string::npos) return out;
  std::string_view body(stripped.data() + open + 1, close - open - 1);
  std::size_t start = 0;
  while (start < body.size()) {
    std::size_t comma = body.find(',', start);
    if (comma == std::string_view::npos) comma = body.size();
    std::string_view entry = body.substr(start, comma - start);
    // Trim whitespace and drop any `= value` initialiser.
    const std::size_t eq = entry.find('=');
    if (eq != std::string_view::npos) entry = entry.substr(0, eq);
    while (!entry.empty() &&
           std::isspace(static_cast<unsigned char>(entry.front())) != 0) {
      entry.remove_prefix(1);
    }
    while (!entry.empty() &&
           std::isspace(static_cast<unsigned char>(entry.back())) != 0) {
      entry.remove_suffix(1);
    }
    if (!entry.empty() && is_ident_char(entry.front())) {
      out.emplace_back(entry);
    }
    start = comma + 1;
  }
  return out;
}

std::vector<Violation> lint_file(const std::string& path,
                                 std::string_view content,
                                 const Options& options) {
  return Linter(path, content, options).run();
}

}  // namespace dfx::lint
