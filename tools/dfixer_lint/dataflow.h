// Forward dataflow over the CFGs in cfg.h. Two consumers share one generic
// worklist solver:
//
//  * has_dominating_guard() — the reusable query behind the flow-aware
//    rules: is EVERY path from function entry to a given use gated by a
//    DFX_CHECK/DFX_DCHECK (or an explicit bound test on a branch edge)
//    mentioning the value? Solved as a 1-bit "an unguarded path reaches
//    here" lattice.
//
//  * find_taint_flows() — the taint pack. Sources (calls annotated
//    DFX_TAINTED, tainted struct fields, tainted parameters) introduce
//    kTainted; assignments and arithmetic propagate it; DFX_CHECK/DFX_DCHECK
//    statements and branch bound tests downgrade it to kChecked; std::min/
//    std::clamp sanitize. A finding fires when a kTainted value reaches an
//    indexing/resize/reserve/memcpy-length/loop-bound sink.
//
// Everything is name-based over the token stream — no types, no overload
// resolution. docs/STATIC_ANALYSIS.md ("Dataflow engine") documents the
// precision envelope.
#pragma once

#include <cstddef>
#include <cstdint>
#include <map>
#include <set>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "dfixer_lint/cfg.h"

namespace dfx::lint {

// ---------------------------------------------------------------------------
// Generic forward worklist solver. A Domain supplies:
//   using State = ...;
//   State bottom() const;                  // state of unreached blocks
//   State entry_state(const Cfg&) const;
//   bool join(State& into, const State& from) const;  // true iff changed
//   void transfer_stmt(const CfgStmt&, State&) const;
//   void transfer_edge(const CfgEdge&, State&) const;
// ---------------------------------------------------------------------------

template <typename D>
struct ForwardResult {
  std::vector<typename D::State> in;   // state at block entry
  std::vector<typename D::State> out;  // state at block exit
};

template <typename D>
ForwardResult<D> solve_forward(const Cfg& cfg, const D& dom) {
  ForwardResult<D> r;
  const std::size_t n = cfg.blocks.size();
  r.in.assign(n, dom.bottom());
  r.out.assign(n, dom.bottom());
  if (n == 0) return r;
  r.in[cfg.entry] = dom.entry_state(cfg);
  std::vector<char> queued(n, 0);
  std::vector<char> visited(n, 0);
  std::vector<std::size_t> work = {cfg.entry};
  queued[cfg.entry] = 1;
  // Finite lattice + monotone join ⇒ convergence; the budget is a belt
  // against a domain bug turning the linter into a spin loop.
  std::size_t budget = (n + 1) * 256;
  while (!work.empty() && budget-- > 0) {
    const std::size_t b = work.back();
    work.pop_back();
    queued[b] = 0;
    visited[b] = 1;
    typename D::State s = r.in[b];
    for (const CfgStmt& st : cfg.blocks[b].stmts) dom.transfer_stmt(st, s);
    r.out[b] = s;
    for (const CfgEdge& e : cfg.blocks[b].succs) {
      typename D::State es = s;
      dom.transfer_edge(e, es);
      const bool changed = dom.join(r.in[e.to], es);
      // A join that adds nothing must still force the FIRST visit: when the
      // entry state is bottom (e.g. no taint yet), every downstream join is
      // a no-op and a change-driven worklist would never leave the entry
      // block. Dead blocks have no in-edges from here, so they stay
      // unvisited and keep bottom state.
      if ((changed || visited[e.to] == 0) && queued[e.to] == 0) {
        queued[e.to] = 1;
        work.push_back(e.to);
      }
    }
  }
  return r;
}

// ---------------------------------------------------------------------------
// Dominating-guard query.
// ---------------------------------------------------------------------------

struct GuardSpec {
  /// Identifiers naming the guarded value; a guard call must mention one.
  std::set<std::string, std::less<>> subjects;
  /// Abort-semantics contract macros that guard when they mention a subject.
  std::set<std::string, std::less<>> guard_calls = {"DFX_CHECK", "DFX_DCHECK"};
  /// Calls that guard regardless of subjects (e.g. DFX_BOUNDED_LOOP).
  std::set<std::string, std::less<>> any_guard_calls;
  /// Do comparison facts on branch edges (`if (n < max)`) count as guards?
  bool edge_bound_tests = true;
};

/// True when every CFG path from entry to the statement containing
/// `use_token` passes a guard per `spec` — including a guard earlier in the
/// same statement, before the use. Tokens the CFG cannot locate (structural
/// punctuation, code outside any statement) report unguarded.
bool has_dominating_guard(const Cfg& cfg, const std::vector<Token>& tokens,
                          std::size_t use_token, const GuardSpec& spec);

// ---------------------------------------------------------------------------
// Taint pack.
// ---------------------------------------------------------------------------

enum class Taint : std::uint8_t {
  kUntainted = 0,
  kChecked = 1,  // attacker-derived, but bounded by a check on every path
  kTainted = 2,  // attacker-derived, unchecked on some path
};

/// Per-variable lattice state; join is pointwise max (kTainted wins).
using TaintState = std::map<std::string, Taint, std::less<>>;

struct TaintConfig {
  /// Call names whose return value is raw wire data (DFX_TAINTED functions).
  std::set<std::string, std::less<>> source_calls;
  /// Struct field names holding raw wire data (DFX_TAINTED fields).
  std::set<std::string, std::less<>> tainted_fields;
  /// Calls that forward taint from their arguments to their result
  /// (DFX_TAINT_PASSTHROUGH functions).
  std::set<std::string, std::less<>> passthrough_calls;
  /// Extra variable names seeded kTainted at function entry — the
  /// interprocedural layer's per-parameter summary runs (summaries.cpp)
  /// seed one parameter at a time and diff the findings.
  std::set<std::string, std::less<>> seed_params;
  /// Callee name -> per-argument "this argument reaches a sink inside the
  /// callee" flags, from interprocedural summaries. Passing a kTainted
  /// value in such a position is itself a sink ("call-arg:<callee>").
  std::map<std::string, std::vector<bool>, std::less<>> sink_params;
  /// Calls whose summaries prove the result is clean regardless of the
  /// arguments (no param-to-return flow, untainted return). Expression
  /// evaluation skips the whole call — unknown calls, by contrast, are
  /// conservatively treated as passing taint through their arguments.
  std::set<std::string, std::less<>> neutral_calls;
};

struct TaintFinding {
  std::size_t token = 0;  // token index of the sink
  std::string sink;       // "index" | "resize" | "reserve" |
                          // "memcpy-length" | "loop-bound" |
                          // "call-arg:<callee>"
  std::string vars;       // comma-joined tainted identifiers at the sink
};

/// Run the taint analysis over one CFG. `holes` are token ranges to skip
/// while scanning for sinks — the bodies of nested lambdas/functions, which
/// get their own Cfg and would otherwise be scanned with the wrong state.
std::vector<TaintFinding> find_taint_flows(
    const Cfg& cfg, const std::vector<Token>& tokens, const TaintConfig& config,
    const std::vector<std::pair<std::size_t, std::size_t>>& holes = {});

/// find_taint_flows plus the observation the interprocedural summaries
/// need: does some reachable `return expr;` evaluate kTainted?
struct TaintAnalysis {
  std::vector<TaintFinding> findings;
  bool returns_tainted = false;
};

TaintAnalysis analyze_taint(
    const Cfg& cfg, const std::vector<Token>& tokens, const TaintConfig& config,
    const std::vector<std::pair<std::size_t, std::size_t>>& holes = {});

}  // namespace dfx::lint
