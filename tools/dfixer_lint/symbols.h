// Cross-translation-unit symbol index for dfixer_lint. One sweep over all
// of src/ records (a) function declarations with a coarse classification of
// their return type and (b) enum definitions with their enumerator lists.
// The flow-aware rules consume it: discarded-error-return asks whether a
// called name returns a status the caller must consume, and the generalized
// enum-switch-exhaustiveness rule looks switched-on enums up here instead of
// hardcoding analyzer::ErrorCode.
//
// The index is name-based (unqualified), deliberately: it has no overload
// resolution and no type checker. A name is only treated as must-use when
// *every* indexed declaration of that name is must-use, so a collision with
// an unrelated void function makes the rule go quiet rather than wrong.
#pragma once

#include <cstddef>
#include <cstdint>
#include <map>
#include <set>
#include <string>
#include <string_view>
#include <vector>

#include "dfixer_lint/lexer.h"

namespace dfx::lint {

enum class ReturnClass : std::uint8_t {
  kOther,
  kVoid,
  kBool,        // plain bool (not status-named)
  kBoolStatus,  // bool + parse/validate/verify/decode-style name
  kErrorCode,   // any return type mentioning ErrorCode
  kOptional,    // std::optional<...>
  kVariant,     // std::variant<...>
};

struct FunctionDecl {
  std::string name;         // unqualified (last component)
  std::string return_type;  // normalized, space-joined token text
  ReturnClass cls = ReturnClass::kOther;
  bool nodiscard = false;
  std::string file;
  std::size_t line = 0;  // 1-based, of the declared name
};

struct EnumDecl {
  std::string name;  // unqualified; anonymous enums are not indexed
  bool scoped = false;  // enum class / enum struct
  std::vector<std::string> enumerators;
  std::string file;
  std::size_t line = 0;  // 1-based, of the enum name
};

/// Names that must not silently drop their status result (parse_*,
/// validate_*, *_decode, from_wire, ...).
bool is_status_function_name(std::string_view name);

/// Must the result of a declaration with this shape be consumed?
bool is_must_use_decl(const FunctionDecl& decl);

class SymbolIndex {
 public:
  /// Record every function declaration and enum definition found in one
  /// already-lexed file. Safe to call once per file; later calls append.
  void index_source(const std::string& path, const std::vector<Token>& tokens);

  const std::vector<FunctionDecl>& functions() const { return functions_; }
  const std::vector<EnumDecl>& enums() const { return enums_; }
  std::size_t indexed_file_count() const { return file_count_; }

  std::vector<const FunctionDecl*> find_functions(std::string_view name) const;
  std::vector<const EnumDecl*> find_enums(std::string_view name) const;

  /// True when `name` is indexed and every declaration of it is must-use
  /// (ErrorCode / optional / variant / status-named bool / [[nodiscard]]).
  bool must_use(std::string_view name) const;

  /// Taint annotations (src/util/check.hpp) collected across every indexed
  /// file, feeding the taint pack's TaintConfig. A DFX_TAINTED marker on a
  /// function declaration makes its name a source call; on a struct field it
  /// makes the field name tainted wherever it is read; DFX_TAINT_PASSTHROUGH
  /// marks calls that forward taint from arguments to result. Markers on
  /// parameters are NOT indexed — the CFG builder seeds those locally.
  const std::set<std::string, std::less<>>& taint_source_calls() const {
    return taint_sources_;
  }
  const std::set<std::string, std::less<>>& taint_fields() const {
    return taint_fields_;
  }
  const std::set<std::string, std::less<>>& taint_passthrough_calls() const {
    return taint_passthrough_;
  }

  /// Hot-path annotations (src/util/check.hpp), unqualified function names.
  /// DFX_HOT_PATH marks a function as fast-path; DFX_COLD(reason) exempts
  /// one from hot-path cost accounting. `cold_fns()` maps the name to
  /// whether the annotation carried the mandatory reason string.
  const std::set<std::string, std::less<>>& hot_path_fns() const {
    return hot_fns_;
  }
  const std::map<std::string, bool, std::less<>>& cold_fns() const {
    return cold_fns_;
  }

 private:
  void index_enums(const std::string& path, const std::vector<Token>& tokens);
  void index_functions(const std::string& path,
                       const std::vector<Token>& tokens);
  void index_taints(const std::vector<Token>& tokens);
  void index_hot_cold(const std::vector<Token>& tokens);
  void analyze_chunk(const std::string& path, const std::vector<Token>& tokens,
                     std::size_t begin, std::size_t end);

  std::vector<FunctionDecl> functions_;
  std::vector<EnumDecl> enums_;
  std::map<std::string, std::vector<std::size_t>, std::less<>> fn_by_name_;
  std::map<std::string, std::vector<std::size_t>, std::less<>> enum_by_name_;
  std::set<std::string, std::less<>> taint_sources_;
  std::set<std::string, std::less<>> taint_fields_;
  std::set<std::string, std::less<>> taint_passthrough_;
  std::set<std::string, std::less<>> hot_fns_;
  std::map<std::string, bool, std::less<>> cold_fns_;  // name -> has reason
  std::size_t file_count_ = 0;
};

}  // namespace dfx::lint
