// Rule engine for dfixer_lint, the repo's project-specific invariant
// checker. Rules operate on comment/string-stripped source so prose never
// triggers token rules; a line can opt out of one rule with a trailing
//   // dfx-lint: allow(<rule-id>): reason
// comment. The rule catalogue is documented in docs/STATIC_ANALYSIS.md.
#pragma once

#include <cstddef>
#include <string>
#include <string_view>
#include <vector>

namespace dfx::lint {

struct Violation {
  std::string file;
  std::size_t line = 0;  // 1-based
  std::string rule;      // kebab-case rule id
  std::string message;

  bool operator==(const Violation& o) const {
    return file == o.file && line == o.line && rule == o.rule;
  }
};

struct Options {
  /// Enumerators of analyzer::ErrorCode (from src/analyzer/errorcode.h).
  /// Empty disables the switch-exhaustiveness rule.
  std::vector<std::string> errorcode_enumerators;
};

/// Replace comment bodies and string/character literal contents with spaces,
/// preserving the line structure so rule hits keep their line numbers.
std::string strip_comments_and_strings(std::string_view src);

/// Extract the enumerator names of `enum class <enum_name>` from a header.
std::vector<std::string> parse_enum_class(std::string_view header,
                                          std::string_view enum_name);

/// Run every rule over one file. `path` is used for reporting and for the
/// path-scoped rules (e.g. length checks apply under dnscore/ and crypto/).
std::vector<Violation> lint_file(const std::string& path,
                                 std::string_view content,
                                 const Options& options);

}  // namespace dfx::lint
