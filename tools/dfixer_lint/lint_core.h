// Rule engine for dfixer_lint, the repo's project-specific invariant
// checker. Since the token-engine rework, each file is read and lexed ONCE
// into a FileAnalysis shared by every rule pack; token-based rules walk the
// token stream (so statements spanning lines are seen whole), and the
// legacy line rules run over the comment/string-stripped lines. A line can
// opt out of one rule with a trailing
//   // dfx-lint: allow(<rule-id>): reason
// comment. The rule catalogue is documented in docs/STATIC_ANALYSIS.md.
#pragma once

#include <cstddef>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "dfixer_lint/lexer.h"
#include "dfixer_lint/symbols.h"

namespace dfx::lint {

struct Violation {
  std::string file;
  std::size_t line = 0;  // 1-based
  std::string rule;      // kebab-case rule id
  std::string message;
  std::string severity;  // "error" | "warning" (see severity_of)
  std::string excerpt;   // trimmed source line the finding points at

  // Identity is (file, line, rule) — the ratchet key; message/excerpt are
  // presentation and may be reworded without invalidating baselines.
  bool operator==(const Violation& o) const {
    return file == o.file && line == o.line && rule == o.rule;
  }
};

struct Options {
  /// Cross-TU symbol index over src/ (see symbols.h). Null disables the
  /// rules that need it: discarded-error-return and
  /// nonexhaustive-enum-switch.
  const SymbolIndex* symbols = nullptr;
  /// Run the CFG + dataflow passes (cfg.h / dataflow.h): the taint pack,
  /// the flow-aware narrowing-cast rule and dead status stores. Off, the
  /// engine falls back to the token-walk heuristics of the pre-dataflow
  /// linter (bench_lint times both to bound the cost of the upgrade).
  bool dataflow = true;
};

/// Everything the rule packs need from one file, computed exactly once.
/// `content` sits behind a stable pointer because `tokens` holds
/// string_views into it — moving a FileAnalysis must not invalidate them.
struct FileAnalysis {
  std::string path;
  std::unique_ptr<const std::string> content;  // original source, stable
  std::string stripped;                  // comments/strings blanked
  std::vector<std::string> lines;        // stripped, split at '\n'
  std::vector<std::string> raw_lines;    // original, split at '\n'
  std::vector<Token> tokens;             // views into *content
};

/// Read `content` once into the shared per-file representation.
FileAnalysis analyze_file(std::string path, std::string content);

/// Replace comment bodies and string/character literal contents with spaces,
/// preserving the line structure so rule hits keep their line numbers.
std::string strip_comments_and_strings(std::string_view src);

/// Severity class of a rule id ("error" for contract/memory-safety rules,
/// "warning" for style-adjacent ones). Unknown rules report "error".
const char* severity_of(std::string_view rule);

/// Files dfixer_lint sweeps under `root`: *.h/*.hpp/*.cpp beneath
/// src/, tools/, bench/, examples/ and tests/ — minus lint_fixtures (they
/// violate the rules on purpose). Sorted for deterministic reports.
std::vector<std::string> collect_lintable_files(const std::string& root);

/// Does `fa` carry a `// dfx-lint: allow(<rule>)` marker on `line_index`
/// (0-based) or the line directly above? Exposed for the interprocedural
/// pass (summaries.h), which reports findings outside the per-file Linter
/// but must honor the same suppression syntax.
bool line_suppressed(const FileAnalysis& fa, std::size_t line_index,
                     std::string_view rule);

/// Run every rule over one pre-analyzed file.
std::vector<Violation> lint_file(const FileAnalysis& fa,
                                 const Options& options);

/// Convenience overload: analyze + lint in one call (tests, single files).
std::vector<Violation> lint_file(const std::string& path,
                                 std::string_view content,
                                 const Options& options);

}  // namespace dfx::lint
