// Per-function control-flow graphs built from the flat token stream. Each
// function body (and each lambda body, extracted as its own graph) becomes a
// list of basic blocks holding statement token ranges, connected by edges
// that optionally carry the branch condition's token range and polarity —
// enough for the forward dataflow solver in dataflow.h to reason about
// guards on every path without a real AST.
//
// The builder is a recursive-descent walk over balanced token ranges. It
// understands if/else, while, for (including range-for), do/while, switch
// (with fallthrough), break/continue/return/throw, and try/catch. Anything
// it cannot parse degrades to a plain statement in the current block, so an
// exotic construct can cost precision but never a crash or a wrong edge.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "dfixer_lint/lexer.h"

namespace dfx::lint {

/// Classifies statements the solver treats specially. Loop conditions are
/// sinks for the tainted-loop-bound check; range-for heads assign the
/// element (left of `:`) from the range expression (right of `:`).
enum class StmtKind : std::uint8_t {
  kPlain,
  kLoopCond,   // while/for/do condition expression
  kRangeHead,  // `decl : range` of a range-based for
};

/// Half-open token range [begin, end) of one statement, in source order
/// within its block.
struct CfgStmt {
  std::size_t begin = 0;
  std::size_t end = 0;
  StmtKind kind = StmtKind::kPlain;
};

struct CfgEdge {
  std::size_t to = 0;
  bool has_cond = false;   // edge carries a branch condition
  bool cond_true = false;  // taken when the condition is true?
  std::size_t cond_begin = 0;  // token range of the condition expression
  std::size_t cond_end = 0;
};

struct CfgBlock {
  std::vector<CfgStmt> stmts;
  std::vector<CfgEdge> succs;
  std::vector<std::size_t> preds;
};

struct Cfg {
  std::string name;  // declared function name; "<lambda>" for lambdas
  std::size_t entry = 0;
  std::size_t exit = 0;  // every `return`/fallthrough-at-end edge lands here
  std::vector<CfgBlock> blocks;
  std::size_t params_begin = 0;  // token range inside the parameter parens
  std::size_t params_end = 0;
  std::size_t body_open = 0;   // token index of the body '{'
  std::size_t body_close = 0;  // token index of the matching '}'
};

/// Build a CFG for every function definition and lambda body in `tokens`.
/// Nested lambdas appear both inside the enclosing function's statement
/// ranges and as their own Cfg; enclosing_cfg() resolves to the innermost.
std::vector<Cfg> build_cfgs(const std::vector<Token>& tokens);

/// The innermost Cfg whose body contains token index `i`, or nullptr.
const Cfg* enclosing_cfg(const std::vector<Cfg>& cfgs, std::size_t i);

/// Locate the (block, statement) whose token range contains `token`.
/// Returns false when the token sits in structural punctuation that no
/// recorded statement covers.
bool locate(const Cfg& cfg, std::size_t token, std::size_t* block_out,
            std::size_t* stmt_out);

}  // namespace dfx::lint
