#include "dfixer_lint/symbols.h"

#include <algorithm>
#include <set>

namespace dfx::lint {
namespace {

bool tok_is(const std::vector<Token>& t, std::size_t i, std::string_view s) {
  return i < t.size() && t[i].text == s;
}

bool is_ident(const std::vector<Token>& t, std::size_t i) {
  return i < t.size() && t[i].kind == Tok::kIdent;
}

// Chunk-leading keywords that can never start a function declaration we
// want to index (control flow, type/namespace intros, jump statements).
bool is_decl_stopper(std::string_view word) {
  static const std::set<std::string_view> kStoppers = {
      "if",      "for",     "while",   "switch",  "return", "case",
      "do",      "else",    "goto",    "delete",  "throw",  "using",
      "typedef", "namespace", "struct", "class",  "enum",   "union",
      "public",  "private", "protected", "new",   "break",  "continue",
      "default", "operator", "sizeof", "static_assert", "template",
      "co_return", "co_await", "co_yield", "try", "catch", "concept",
      "requires"};
  return kStoppers.contains(word);
}

bool is_specifier(std::string_view word) {
  static const std::set<std::string_view> kSpecifiers = {
      "static", "inline", "constexpr", "consteval", "constinit",
      "friend", "virtual", "explicit", "extern",    "mutable",
      "typename"};
  return kSpecifiers.contains(word);
}

// Tokens allowed between a declaration's closing ')' and its ;/{ boundary.
bool is_decl_trailer(std::string_view word) {
  static const std::set<std::string_view> kTrailers = {
      "const", "noexcept", "override", "final", "&",
      "&&",    "=",        "0",        "default", "delete"};
  return kTrailers.contains(word);
}

}  // namespace

bool is_status_function_name(std::string_view name) {
  for (const char* prefix : {"parse", "validate", "verify", "decode"}) {
    if (name.starts_with(prefix)) return true;
  }
  for (const char* infix :
       {"_parse", "_validate", "_verify", "_decode", "from_wire"}) {
    if (name.find(infix) != std::string_view::npos) return true;
  }
  return false;
}

bool is_must_use_decl(const FunctionDecl& decl) {
  if (decl.nodiscard) return true;
  switch (decl.cls) {
    case ReturnClass::kErrorCode:
    case ReturnClass::kOptional:
    case ReturnClass::kVariant:
    case ReturnClass::kBoolStatus:
      return true;
    case ReturnClass::kOther:
    case ReturnClass::kVoid:
    case ReturnClass::kBool:
      return false;
  }
  return false;
}

void SymbolIndex::index_source(const std::string& path,
                               const std::vector<Token>& tokens) {
  ++file_count_;
  index_enums(path, tokens);
  index_functions(path, tokens);
  index_taints(tokens);
  index_hot_cold(tokens);
}

/// Classify DFX_HOT_PATH / DFX_COLD(reason) markers the same way
/// index_taints() does: scan forward to the nearest declaration boundary
/// and record the `name(` the annotation sits on. DFX_COLD's argument list
/// is consumed first; the reason must be a string literal.
void SymbolIndex::index_hot_cold(const std::vector<Token>& tokens) {
  constexpr std::size_t npos = static_cast<std::size_t>(-1);
  const std::size_t n = tokens.size();
  for (std::size_t i = 0; i < n; ++i) {
    if (tokens[i].kind != Tok::kIdent) continue;
    const std::string_view w = tokens[i].text;
    const bool cold = w == "DFX_COLD";
    if (w != "DFX_HOT_PATH" && !cold) continue;
    std::size_t scan_from = i + 1;
    bool has_reason = false;
    if (cold) {
      if (i + 1 >= n || tokens[i + 1].text != "(") continue;
      int depth = 0;
      std::size_t j = i + 1;
      for (; j < n; ++j) {
        if (tokens[j].text == "(") ++depth;
        if (tokens[j].kind == Tok::kString) has_reason = true;
        if (tokens[j].text == ")" && --depth == 0) break;
      }
      scan_from = j + 1;
    }
    std::size_t last_ident = npos;
    std::size_t fn_ident = npos;
    for (std::size_t j = scan_from; j < n; ++j) {
      const std::string_view s = tokens[j].text;
      if (tokens[j].kind == Tok::kIdent) {
        last_ident = j;
        continue;
      }
      if (s == "<") {  // template arguments in the return type
        int angle = 1;
        while (++j < n && angle > 0) {
          if (tokens[j].text == "<") ++angle;
          if (tokens[j].text == ">") --angle;
          if (tokens[j].text == ";" || tokens[j].text == "{") break;
        }
        --j;
        continue;
      }
      if (s == "(") {
        if (last_ident == j - 1) fn_ident = last_ident;
        break;
      }
      if (s == ";" || s == "=" || s == "{" || s == ")" || s == ",") break;
      // "::", "&", "*", ":" — part of the declared type, keep going.
    }
    if (fn_ident == npos) continue;
    std::string name(tokens[fn_ident].text);
    if (cold) {
      const auto [it, inserted] = cold_fns_.try_emplace(name, has_reason);
      // Several declarations of one function: the reason requirement is
      // satisfied as soon as any of them carries it.
      if (!inserted && has_reason) it->second = true;
    } else {
      hot_fns_.insert(std::move(name));
    }
  }
}

/// Classify every DFX_TAINTED / DFX_TAINT_PASSTHROUGH marker by scanning to
/// the nearest declaration boundary: `name(` before a boundary is a function
/// annotation, `;`/`=`/`{` closes a field, and `)`/`,` means the marker sat
/// on a parameter (seeded locally by the CFG builder, not indexed here).
void SymbolIndex::index_taints(const std::vector<Token>& tokens) {
  constexpr std::size_t npos = static_cast<std::size_t>(-1);
  const std::size_t n = tokens.size();
  for (std::size_t i = 0; i < n; ++i) {
    if (tokens[i].kind != Tok::kIdent) continue;
    const std::string_view w = tokens[i].text;
    const bool passthrough = w == "DFX_TAINT_PASSTHROUGH";
    if (w != "DFX_TAINTED" && !passthrough) continue;
    std::size_t last_ident = npos;
    std::size_t fn_ident = npos;
    bool field = false;
    for (std::size_t j = i + 1; j < n; ++j) {
      const std::string_view s = tokens[j].text;
      if (tokens[j].kind == Tok::kIdent) {
        last_ident = j;
        continue;
      }
      if (s == "<") {  // template arguments: skip to the matching '>'
        int angle = 1;
        while (++j < n && angle > 0) {
          if (tokens[j].text == "<") ++angle;
          if (tokens[j].text == ">") --angle;
          if (tokens[j].text == ";" || tokens[j].text == "{") break;
        }
        --j;  // the outer loop's ++j lands past the '>'
        continue;
      }
      if (s == "(") {
        if (last_ident == j - 1) fn_ident = last_ident;
        break;
      }
      if (s == ";" || s == "=" || s == "{") {
        field = true;
        break;
      }
      if (s == ")" || s == ",") break;  // parameter annotation
      // "::", "&", "*", ":", ">" — part of the declared type, keep going.
    }
    if (fn_ident != npos) {
      (passthrough ? taint_passthrough_ : taint_sources_)
          .insert(std::string(tokens[fn_ident].text));
    } else if (field && last_ident != npos && !passthrough) {
      taint_fields_.insert(std::string(tokens[last_ident].text));
    }
  }
}

void SymbolIndex::index_enums(const std::string& path,
                              const std::vector<Token>& tokens) {
  const std::size_t n = tokens.size();
  for (std::size_t i = 0; i < n; ++i) {
    if (tokens[i].kind != Tok::kIdent || tokens[i].text != "enum") continue;
    std::size_t j = i + 1;
    const bool scoped = tok_is(tokens, j, "class") || tok_is(tokens, j, "struct");
    if (scoped) ++j;
    if (!is_ident(tokens, j)) continue;  // anonymous enum: not indexable
    EnumDecl decl;
    decl.name = std::string(tokens[j].text);
    decl.scoped = scoped;
    decl.file = path;
    decl.line = tokens[j].line;
    ++j;
    if (tok_is(tokens, j, ":")) {  // underlying type
      ++j;
      while (j < n && !tok_is(tokens, j, "{") && !tok_is(tokens, j, ";")) ++j;
    }
    if (!tok_is(tokens, j, "{")) continue;  // forward declaration only
    // Enumerators sit at depth 1; initializer expressions may nest brackets.
    int depth = 1;
    bool expecting = true;
    for (std::size_t k = j + 1; k < n && depth > 0; ++k) {
      const std::string_view t = tokens[k].text;
      if (t == "{" || t == "(" || t == "[") {
        ++depth;
      } else if (t == "}" || t == ")" || t == "]") {
        --depth;
      } else if (depth == 1) {
        if (expecting && tokens[k].kind == Tok::kIdent) {
          decl.enumerators.emplace_back(tokens[k].text);
          expecting = false;
        } else if (t == ",") {
          expecting = true;
        }
      }
    }
    enum_by_name_[decl.name].push_back(enums_.size());
    enums_.push_back(std::move(decl));
    i = j;
  }
}

void SymbolIndex::index_functions(const std::string& path,
                                  const std::vector<Token>& tokens) {
  std::size_t chunk_begin = 0;
  for (std::size_t i = 0; i <= tokens.size(); ++i) {
    const bool boundary =
        i == tokens.size() || tokens[i].text == ";" ||
        tokens[i].text == "{" || tokens[i].text == "}";
    if (!boundary) continue;
    analyze_chunk(path, tokens, chunk_begin, i);
    chunk_begin = i + 1;
  }
}

/// One declaration-shaped chunk: the tokens between two of ; { }. Records a
/// FunctionDecl when the chunk parses as `ret-type [Qual::]name(params)`
/// optionally followed by trailing qualifiers. Statements inside bodies fall
/// through the same path; a local variable with a parenthesized initializer
/// indexes as a kOther "function", which the must-use aggregation renders
/// harmless (see the header comment).
void SymbolIndex::analyze_chunk(const std::string& path,
                                const std::vector<Token>& tokens,
                                std::size_t begin, std::size_t end) {
  std::size_t b = begin;
  bool nodiscard = false;
  // Leading attributes and specifiers.
  while (b < end) {
    if (tok_is(tokens, b, "[") && tok_is(tokens, b + 1, "[")) {
      std::size_t j = b + 2;
      while (j + 1 < end &&
             !(tokens[j].text == "]" && tokens[j + 1].text == "]")) {
        if (tokens[j].text == "nodiscard") nodiscard = true;
        ++j;
      }
      if (j + 1 >= end) return;
      b = j + 2;
      continue;
    }
    if (is_ident(tokens, b) && is_specifier(tokens[b].text)) {
      ++b;
      continue;
    }
    break;
  }
  if (b >= end) return;
  if (tokens[b].kind == Tok::kIdent && is_decl_stopper(tokens[b].text)) return;
  // First identifier directly followed by '(' is the candidate name; any
  // top-level '=' before it means this chunk is a statement, not a decl.
  std::size_t candidate = end;
  int depth = 0;
  for (std::size_t j = b; j < end; ++j) {
    const std::string_view t = tokens[j].text;
    if (t == "(" || t == "[") {
      ++depth;
    } else if (t == ")" || t == "]") {
      --depth;
    } else if (depth == 0) {
      if (t == "=") return;
      if (tokens[j].kind == Tok::kIdent && tok_is(tokens, j + 1, "(")) {
        if (j > b && (tokens[j - 1].text == "." || tokens[j - 1].text == "->")) {
          return;  // member call, not a declaration
        }
        if (is_decl_stopper(t) || t == "operator") return;
        candidate = j;
        break;
      }
    }
  }
  if (candidate >= end) return;
  // Walk the qualifier chain back (`Grok::classify` → name_start at Grok).
  std::size_t name_start = candidate;
  while (name_start >= b + 2 && tokens[name_start - 1].text == "::" &&
         tokens[name_start - 2].kind == Tok::kIdent) {
    name_start -= 2;
  }
  if (name_start == b) return;  // no return type: constructor or plain call
  // Match the parameter list and require only trailer tokens after it.
  std::size_t r = candidate + 1;
  int pdepth = 0;
  for (; r < end; ++r) {
    if (tokens[r].text == "(") ++pdepth;
    if (tokens[r].text == ")" && --pdepth == 0) break;
  }
  if (r >= end) return;
  for (std::size_t j = r + 1; j < end; ++j) {
    if (tok_is(tokens, j, "noexcept") && tok_is(tokens, j + 1, "(")) {
      int nd = 0;
      ++j;
      for (; j < end; ++j) {
        if (tokens[j].text == "(") ++nd;
        if (tokens[j].text == ")" && --nd == 0) break;
      }
      continue;
    }
    if (tokens[j].text == "->") return;  // trailing return type: skip
    if (!is_decl_trailer(tokens[j].text)) return;
  }
  // Classify the return type tokens [b, name_start).
  FunctionDecl decl;
  decl.nodiscard = nodiscard;
  decl.name = std::string(tokens[candidate].text);
  decl.file = path;
  decl.line = tokens[candidate].line;
  bool saw_optional = false, saw_variant = false, saw_errorcode = false;
  bool saw_pointer = false;
  for (std::size_t j = b; j < name_start; ++j) {
    if (!decl.return_type.empty()) decl.return_type += ' ';
    decl.return_type += std::string(tokens[j].text.empty()
                                        ? std::string_view("<literal>")
                                        : tokens[j].text);
    if (tokens[j].text == "optional") saw_optional = true;
    if (tokens[j].text == "variant") saw_variant = true;
    if (tokens[j].text == "ErrorCode") saw_errorcode = true;
    if (tokens[j].text == "*") saw_pointer = true;
  }
  const std::string_view first = tokens[b].text;
  if (tokens[b].kind != Tok::kIdent && first != "::") return;
  if (saw_optional) {
    decl.cls = ReturnClass::kOptional;
  } else if (saw_variant) {
    decl.cls = ReturnClass::kVariant;
  } else if (saw_errorcode && !saw_pointer) {
    decl.cls = ReturnClass::kErrorCode;
  } else if (decl.return_type == "bool") {
    decl.cls = is_status_function_name(decl.name) ? ReturnClass::kBoolStatus
                                                  : ReturnClass::kBool;
  } else if (decl.return_type == "void") {
    decl.cls = ReturnClass::kVoid;
  } else {
    decl.cls = ReturnClass::kOther;
  }
  fn_by_name_[decl.name].push_back(functions_.size());
  functions_.push_back(std::move(decl));
}

std::vector<const FunctionDecl*> SymbolIndex::find_functions(
    std::string_view name) const {
  std::vector<const FunctionDecl*> out;
  const auto it = fn_by_name_.find(name);
  if (it == fn_by_name_.end()) return out;
  out.reserve(it->second.size());
  for (const std::size_t idx : it->second) out.push_back(&functions_[idx]);
  return out;
}

std::vector<const EnumDecl*> SymbolIndex::find_enums(
    std::string_view name) const {
  std::vector<const EnumDecl*> out;
  const auto it = enum_by_name_.find(name);
  if (it == enum_by_name_.end()) return out;
  out.reserve(it->second.size());
  for (const std::size_t idx : it->second) {
    // Definitions only; a forward declaration never reaches enums_.
    out.push_back(&enums_[idx]);
  }
  return out;
}

bool SymbolIndex::must_use(std::string_view name) const {
  const auto it = fn_by_name_.find(name);
  if (it == fn_by_name_.end() || it->second.empty()) return false;
  return std::all_of(it->second.begin(), it->second.end(),
                     [&](std::size_t idx) {
                       return is_must_use_decl(functions_[idx]);
                     });
}

}  // namespace dfx::lint
