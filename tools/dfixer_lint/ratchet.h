// The finding ratchet: dfixer_lint serializes its findings to JSON and CI
// compares them against the committed baseline (tools/dfixer_lint/
// baseline.json). The diff runs in both directions — a finding absent from
// the baseline ("fresh") fails the build, and a baseline entry with no
// matching finding ("stale") also fails, so the baseline can only shrink.
// docs/STATIC_ANALYSIS.md § "The finding ratchet" has the workflow.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "dfixer_lint/lint_core.h"

namespace dfx::lint {

/// Serialize findings to the ratchet JSON schema:
///   { "schema_version": 1, "tool": "<tool>",
///     "findings": [{"rule","file","line","severity","excerpt"}, ...] }
/// `tool` names the producer; zonelint shares the schema (and this code)
/// with dfixer_lint, so its baseline diffs the same way in CI.
std::string findings_to_json(const std::vector<Violation>& findings,
                             std::string_view tool = "dfixer_lint");

/// Parse a ratchet JSON document. Returns nullopt (and sets *error when
/// non-null) on malformed JSON or a schema mismatch.
std::optional<std::vector<Violation>> findings_from_json(
    std::string_view text, std::string* error = nullptr);

struct RatchetDiff {
  std::vector<Violation> fresh;  // in current, not in baseline → regression
  std::vector<Violation> stale;  // in baseline, not in current → fixed; prune
  bool clean() const { return fresh.empty() && stale.empty(); }
};

/// Two-direction diff keyed on (file, rule, line).
RatchetDiff ratchet_diff(const std::vector<Violation>& current,
                         const std::vector<Violation>& baseline);

}  // namespace dfx::lint
