#!/usr/bin/env bash
# Local entry point for the dfixer_lint finding ratchet. Builds the lint
# binary if it is missing, then checks the tree against the committed
# baseline — exactly what the CI lint-ratchet job runs.
#
#   tools/run_lint.sh                 # ratchet check
#   tools/run_lint.sh --json          # same, findings as JSON on stdout
#   tools/run_lint.sh --update-baseline
#                                     # accept the current findings
#   tools/run_lint.sh --callgraph-dump file.cpp
#                                     # inspect call resolution + externals
#   tools/run_lint.sh --no-interprocedural
#                                     # skip callgraph/summaries and the
#                                     # three interprocedural rules
#
# Extra arguments are passed through to dfixer_lint verbatim (the binary
# rejects unknown flags rather than treating them as file paths).
set -euo pipefail

repo_root="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
build_dir="$repo_root/build/release"
lint_bin="$build_dir/tools/dfixer_lint"

if [[ ! -x "$lint_bin" ]]; then
  echo "run_lint.sh: building dfixer_lint ..." >&2
  cmake --preset release -S "$repo_root" >/dev/null
  cmake --build "$build_dir" --target dfixer_lint -j >/dev/null
fi

exec "$lint_bin" --root "$repo_root" \
  --baseline "$repo_root/tools/dfixer_lint/baseline.json" "$@"
