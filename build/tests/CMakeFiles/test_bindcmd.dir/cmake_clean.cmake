file(REMOVE_RECURSE
  "CMakeFiles/test_bindcmd.dir/test_bindcmd.cpp.o"
  "CMakeFiles/test_bindcmd.dir/test_bindcmd.cpp.o.d"
  "test_bindcmd"
  "test_bindcmd.pdb"
  "test_bindcmd[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_bindcmd.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
