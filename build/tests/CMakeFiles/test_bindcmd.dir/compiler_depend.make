# Empty compiler generated dependencies file for test_bindcmd.
# This may be replaced when dependencies are built.
