# Empty dependencies file for test_snapshot_json.
# This may be replaced when dependencies are built.
