file(REMOVE_RECURSE
  "CMakeFiles/test_snapshot_json.dir/test_snapshot_json.cpp.o"
  "CMakeFiles/test_snapshot_json.dir/test_snapshot_json.cpp.o.d"
  "test_snapshot_json"
  "test_snapshot_json.pdb"
  "test_snapshot_json[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_snapshot_json.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
