file(REMOVE_RECURSE
  "CMakeFiles/test_rollover.dir/test_rollover.cpp.o"
  "CMakeFiles/test_rollover.dir/test_rollover.cpp.o.d"
  "test_rollover"
  "test_rollover.pdb"
  "test_rollover[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_rollover.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
