# Empty dependencies file for test_rollover.
# This may be replaced when dependencies are built.
