# Empty compiler generated dependencies file for test_sha.
# This may be replaced when dependencies are built.
