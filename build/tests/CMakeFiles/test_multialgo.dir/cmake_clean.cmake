file(REMOVE_RECURSE
  "CMakeFiles/test_multialgo.dir/test_multialgo.cpp.o"
  "CMakeFiles/test_multialgo.dir/test_multialgo.cpp.o.d"
  "test_multialgo"
  "test_multialgo.pdb"
  "test_multialgo[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_multialgo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
