# Empty dependencies file for test_multialgo.
# This may be replaced when dependencies are built.
