file(REMOVE_RECURSE
  "CMakeFiles/test_simclock.dir/test_simclock.cpp.o"
  "CMakeFiles/test_simclock.dir/test_simclock.cpp.o.d"
  "test_simclock"
  "test_simclock.pdb"
  "test_simclock[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_simclock.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
