# Empty compiler generated dependencies file for test_simclock.
# This may be replaced when dependencies are built.
