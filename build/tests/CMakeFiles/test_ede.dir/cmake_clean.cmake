file(REMOVE_RECURSE
  "CMakeFiles/test_ede.dir/test_ede.cpp.o"
  "CMakeFiles/test_ede.dir/test_ede.cpp.o.d"
  "test_ede"
  "test_ede.pdb"
  "test_ede[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_ede.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
