# Empty compiler generated dependencies file for test_ede.
# This may be replaced when dependencies are built.
