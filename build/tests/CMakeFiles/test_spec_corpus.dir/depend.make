# Empty dependencies file for test_spec_corpus.
# This may be replaced when dependencies are built.
