file(REMOVE_RECURSE
  "CMakeFiles/test_spec_corpus.dir/test_spec_corpus.cpp.o"
  "CMakeFiles/test_spec_corpus.dir/test_spec_corpus.cpp.o.d"
  "test_spec_corpus"
  "test_spec_corpus.pdb"
  "test_spec_corpus[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_spec_corpus.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
