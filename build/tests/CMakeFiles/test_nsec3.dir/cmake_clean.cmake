file(REMOVE_RECURSE
  "CMakeFiles/test_nsec3.dir/test_nsec3.cpp.o"
  "CMakeFiles/test_nsec3.dir/test_nsec3.cpp.o.d"
  "test_nsec3"
  "test_nsec3.pdb"
  "test_nsec3[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_nsec3.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
