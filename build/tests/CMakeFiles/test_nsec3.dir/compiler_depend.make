# Empty compiler generated dependencies file for test_nsec3.
# This may be replaced when dependencies are built.
