file(REMOVE_RECURSE
  "CMakeFiles/test_dresolver.dir/test_dresolver.cpp.o"
  "CMakeFiles/test_dresolver.dir/test_dresolver.cpp.o.d"
  "test_dresolver"
  "test_dresolver.pdb"
  "test_dresolver[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_dresolver.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
