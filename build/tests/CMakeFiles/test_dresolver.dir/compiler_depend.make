# Empty compiler generated dependencies file for test_dresolver.
# This may be replaced when dependencies are built.
