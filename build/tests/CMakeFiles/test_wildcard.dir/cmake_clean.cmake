file(REMOVE_RECURSE
  "CMakeFiles/test_wildcard.dir/test_wildcard.cpp.o"
  "CMakeFiles/test_wildcard.dir/test_wildcard.cpp.o.d"
  "test_wildcard"
  "test_wildcard.pdb"
  "test_wildcard[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_wildcard.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
