file(REMOVE_RECURSE
  "CMakeFiles/test_cds.dir/test_cds.cpp.o"
  "CMakeFiles/test_cds.dir/test_cds.cpp.o.d"
  "test_cds"
  "test_cds.pdb"
  "test_cds[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_cds.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
