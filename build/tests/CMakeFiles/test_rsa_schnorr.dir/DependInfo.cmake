
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_rsa_schnorr.cpp" "tests/CMakeFiles/test_rsa_schnorr.dir/test_rsa_schnorr.cpp.o" "gcc" "tests/CMakeFiles/test_rsa_schnorr.dir/test_rsa_schnorr.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/measure/CMakeFiles/dfx_measure.dir/DependInfo.cmake"
  "/root/repo/build/src/dataset/CMakeFiles/dfx_dataset.dir/DependInfo.cmake"
  "/root/repo/build/src/zreplicator/CMakeFiles/dfx_zreplicator.dir/DependInfo.cmake"
  "/root/repo/build/src/dfixer/CMakeFiles/dfx_dfixer.dir/DependInfo.cmake"
  "/root/repo/build/src/analyzer/CMakeFiles/dfx_analyzer.dir/DependInfo.cmake"
  "/root/repo/build/src/authserver/CMakeFiles/dfx_authserver.dir/DependInfo.cmake"
  "/root/repo/build/src/zone/CMakeFiles/dfx_zone.dir/DependInfo.cmake"
  "/root/repo/build/src/dnscore/CMakeFiles/dfx_dnscore.dir/DependInfo.cmake"
  "/root/repo/build/src/crypto/CMakeFiles/dfx_crypto.dir/DependInfo.cmake"
  "/root/repo/build/src/json/CMakeFiles/dfx_json.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/dfx_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
