file(REMOVE_RECURSE
  "CMakeFiles/test_rsa_schnorr.dir/test_rsa_schnorr.cpp.o"
  "CMakeFiles/test_rsa_schnorr.dir/test_rsa_schnorr.cpp.o.d"
  "test_rsa_schnorr"
  "test_rsa_schnorr.pdb"
  "test_rsa_schnorr[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_rsa_schnorr.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
