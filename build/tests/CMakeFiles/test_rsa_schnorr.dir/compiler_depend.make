# Empty compiler generated dependencies file for test_rsa_schnorr.
# This may be replaced when dependencies are built.
