# Empty dependencies file for test_signer.
# This may be replaced when dependencies are built.
