file(REMOVE_RECURSE
  "CMakeFiles/test_masterfile.dir/test_masterfile.cpp.o"
  "CMakeFiles/test_masterfile.dir/test_masterfile.cpp.o.d"
  "test_masterfile"
  "test_masterfile.pdb"
  "test_masterfile[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_masterfile.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
