# Empty compiler generated dependencies file for test_masterfile.
# This may be replaced when dependencies are built.
