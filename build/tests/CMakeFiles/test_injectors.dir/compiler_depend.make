# Empty compiler generated dependencies file for test_injectors.
# This may be replaced when dependencies are built.
