file(REMOVE_RECURSE
  "CMakeFiles/test_injectors.dir/test_injectors.cpp.o"
  "CMakeFiles/test_injectors.dir/test_injectors.cpp.o.d"
  "test_injectors"
  "test_injectors.pdb"
  "test_injectors[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_injectors.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
