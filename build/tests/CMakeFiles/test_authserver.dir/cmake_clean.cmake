file(REMOVE_RECURSE
  "CMakeFiles/test_authserver.dir/test_authserver.cpp.o"
  "CMakeFiles/test_authserver.dir/test_authserver.cpp.o.d"
  "test_authserver"
  "test_authserver.pdb"
  "test_authserver[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_authserver.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
