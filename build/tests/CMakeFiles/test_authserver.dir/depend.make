# Empty dependencies file for test_authserver.
# This may be replaced when dependencies are built.
