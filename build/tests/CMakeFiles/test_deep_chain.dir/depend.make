# Empty dependencies file for test_deep_chain.
# This may be replaced when dependencies are built.
