file(REMOVE_RECURSE
  "CMakeFiles/test_deep_chain.dir/test_deep_chain.cpp.o"
  "CMakeFiles/test_deep_chain.dir/test_deep_chain.cpp.o.d"
  "test_deep_chain"
  "test_deep_chain.pdb"
  "test_deep_chain[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_deep_chain.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
