file(REMOVE_RECURSE
  "CMakeFiles/bench_fig4_fixtimes.dir/bench_fig4_fixtimes.cpp.o"
  "CMakeFiles/bench_fig4_fixtimes.dir/bench_fig4_fixtimes.cpp.o.d"
  "bench_fig4_fixtimes"
  "bench_fig4_fixtimes.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig4_fixtimes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
