file(REMOVE_RECURSE
  "CMakeFiles/bench_fig5_gaps.dir/bench_fig5_gaps.cpp.o"
  "CMakeFiles/bench_fig5_gaps.dir/bench_fig5_gaps.cpp.o.d"
  "bench_fig5_gaps"
  "bench_fig5_gaps.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig5_gaps.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
