# Empty dependencies file for bench_fig5_gaps.
# This may be replaced when dependencies are built.
