# Empty compiler generated dependencies file for bench_fig2_firstlast.
# This may be replaced when dependencies are built.
