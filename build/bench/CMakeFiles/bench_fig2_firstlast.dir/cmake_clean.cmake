file(REMOVE_RECURSE
  "CMakeFiles/bench_fig2_firstlast.dir/bench_fig2_firstlast.cpp.o"
  "CMakeFiles/bench_fig2_firstlast.dir/bench_fig2_firstlast.cpp.o.d"
  "bench_fig2_firstlast"
  "bench_fig2_firstlast.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig2_firstlast.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
