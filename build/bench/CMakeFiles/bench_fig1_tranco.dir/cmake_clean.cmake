file(REMOVE_RECURSE
  "CMakeFiles/bench_fig1_tranco.dir/bench_fig1_tranco.cpp.o"
  "CMakeFiles/bench_fig1_tranco.dir/bench_fig1_tranco.cpp.o.d"
  "bench_fig1_tranco"
  "bench_fig1_tranco.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig1_tranco.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
