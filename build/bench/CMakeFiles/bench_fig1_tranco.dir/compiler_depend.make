# Empty compiler generated dependencies file for bench_fig1_tranco.
# This may be replaced when dependencies are built.
