file(REMOVE_RECURSE
  "CMakeFiles/bench_fig3_categories.dir/bench_fig3_categories.cpp.o"
  "CMakeFiles/bench_fig3_categories.dir/bench_fig3_categories.cpp.o.d"
  "bench_fig3_categories"
  "bench_fig3_categories.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig3_categories.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
