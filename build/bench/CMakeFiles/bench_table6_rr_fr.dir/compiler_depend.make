# Empty compiler generated dependencies file for bench_table6_rr_fr.
# This may be replaced when dependencies are built.
