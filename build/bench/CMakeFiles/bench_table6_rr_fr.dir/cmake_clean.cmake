file(REMOVE_RECURSE
  "CMakeFiles/bench_table6_rr_fr.dir/bench_table6_rr_fr.cpp.o"
  "CMakeFiles/bench_table6_rr_fr.dir/bench_table6_rr_fr.cpp.o.d"
  "bench_table6_rr_fr"
  "bench_table6_rr_fr.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table6_rr_fr.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
