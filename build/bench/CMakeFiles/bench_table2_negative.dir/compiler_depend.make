# Empty compiler generated dependencies file for bench_table2_negative.
# This may be replaced when dependencies are built.
