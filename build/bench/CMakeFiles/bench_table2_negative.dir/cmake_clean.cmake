file(REMOVE_RECURSE
  "CMakeFiles/bench_table2_negative.dir/bench_table2_negative.cpp.o"
  "CMakeFiles/bench_table2_negative.dir/bench_table2_negative.cpp.o.d"
  "bench_table2_negative"
  "bench_table2_negative.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table2_negative.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
