file(REMOVE_RECURSE
  "CMakeFiles/bench_table7_instructions.dir/bench_table7_instructions.cpp.o"
  "CMakeFiles/bench_table7_instructions.dir/bench_table7_instructions.cpp.o.d"
  "bench_table7_instructions"
  "bench_table7_instructions.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table7_instructions.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
