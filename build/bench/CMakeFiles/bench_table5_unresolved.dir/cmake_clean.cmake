file(REMOVE_RECURSE
  "CMakeFiles/bench_table5_unresolved.dir/bench_table5_unresolved.cpp.o"
  "CMakeFiles/bench_table5_unresolved.dir/bench_table5_unresolved.cpp.o.d"
  "bench_table5_unresolved"
  "bench_table5_unresolved.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table5_unresolved.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
