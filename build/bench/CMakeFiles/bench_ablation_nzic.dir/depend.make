# Empty dependencies file for bench_ablation_nzic.
# This may be replaced when dependencies are built.
