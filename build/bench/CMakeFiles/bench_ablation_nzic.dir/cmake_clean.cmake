file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_nzic.dir/bench_ablation_nzic.cpp.o"
  "CMakeFiles/bench_ablation_nzic.dir/bench_ablation_nzic.cpp.o.d"
  "bench_ablation_nzic"
  "bench_ablation_nzic.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_nzic.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
