file(REMOVE_RECURSE
  "CMakeFiles/bench_baseline_llm.dir/bench_baseline_llm.cpp.o"
  "CMakeFiles/bench_baseline_llm.dir/bench_baseline_llm.cpp.o.d"
  "bench_baseline_llm"
  "bench_baseline_llm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_baseline_llm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
