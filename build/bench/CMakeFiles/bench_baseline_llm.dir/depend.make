# Empty dependencies file for bench_baseline_llm.
# This may be replaced when dependencies are built.
