file(REMOVE_RECURSE
  "libdfx_measure.a"
)
