file(REMOVE_RECURSE
  "CMakeFiles/dfx_measure.dir/measure.cpp.o"
  "CMakeFiles/dfx_measure.dir/measure.cpp.o.d"
  "CMakeFiles/dfx_measure.dir/report.cpp.o"
  "CMakeFiles/dfx_measure.dir/report.cpp.o.d"
  "libdfx_measure.a"
  "libdfx_measure.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dfx_measure.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
