# Empty dependencies file for dfx_measure.
# This may be replaced when dependencies are built.
