# Empty compiler generated dependencies file for dfx_measure.
# This may be replaced when dependencies are built.
