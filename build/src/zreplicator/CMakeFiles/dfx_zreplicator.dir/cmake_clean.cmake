file(REMOVE_RECURSE
  "CMakeFiles/dfx_zreplicator.dir/injector.cpp.o"
  "CMakeFiles/dfx_zreplicator.dir/injector.cpp.o.d"
  "CMakeFiles/dfx_zreplicator.dir/replicate.cpp.o"
  "CMakeFiles/dfx_zreplicator.dir/replicate.cpp.o.d"
  "CMakeFiles/dfx_zreplicator.dir/sandbox.cpp.o"
  "CMakeFiles/dfx_zreplicator.dir/sandbox.cpp.o.d"
  "CMakeFiles/dfx_zreplicator.dir/spec.cpp.o"
  "CMakeFiles/dfx_zreplicator.dir/spec.cpp.o.d"
  "CMakeFiles/dfx_zreplicator.dir/spec_corpus.cpp.o"
  "CMakeFiles/dfx_zreplicator.dir/spec_corpus.cpp.o.d"
  "libdfx_zreplicator.a"
  "libdfx_zreplicator.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dfx_zreplicator.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
