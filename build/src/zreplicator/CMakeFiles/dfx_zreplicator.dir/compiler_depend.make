# Empty compiler generated dependencies file for dfx_zreplicator.
# This may be replaced when dependencies are built.
