file(REMOVE_RECURSE
  "libdfx_zreplicator.a"
)
