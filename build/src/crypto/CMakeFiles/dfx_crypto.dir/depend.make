# Empty dependencies file for dfx_crypto.
# This may be replaced when dependencies are built.
