file(REMOVE_RECURSE
  "CMakeFiles/dfx_crypto.dir/algorithm.cpp.o"
  "CMakeFiles/dfx_crypto.dir/algorithm.cpp.o.d"
  "CMakeFiles/dfx_crypto.dir/bignum.cpp.o"
  "CMakeFiles/dfx_crypto.dir/bignum.cpp.o.d"
  "CMakeFiles/dfx_crypto.dir/rsa.cpp.o"
  "CMakeFiles/dfx_crypto.dir/rsa.cpp.o.d"
  "CMakeFiles/dfx_crypto.dir/schnorr.cpp.o"
  "CMakeFiles/dfx_crypto.dir/schnorr.cpp.o.d"
  "CMakeFiles/dfx_crypto.dir/sha1.cpp.o"
  "CMakeFiles/dfx_crypto.dir/sha1.cpp.o.d"
  "CMakeFiles/dfx_crypto.dir/sha2.cpp.o"
  "CMakeFiles/dfx_crypto.dir/sha2.cpp.o.d"
  "libdfx_crypto.a"
  "libdfx_crypto.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dfx_crypto.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
