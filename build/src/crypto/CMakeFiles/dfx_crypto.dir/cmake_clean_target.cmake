file(REMOVE_RECURSE
  "libdfx_crypto.a"
)
