
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/crypto/algorithm.cpp" "src/crypto/CMakeFiles/dfx_crypto.dir/algorithm.cpp.o" "gcc" "src/crypto/CMakeFiles/dfx_crypto.dir/algorithm.cpp.o.d"
  "/root/repo/src/crypto/bignum.cpp" "src/crypto/CMakeFiles/dfx_crypto.dir/bignum.cpp.o" "gcc" "src/crypto/CMakeFiles/dfx_crypto.dir/bignum.cpp.o.d"
  "/root/repo/src/crypto/rsa.cpp" "src/crypto/CMakeFiles/dfx_crypto.dir/rsa.cpp.o" "gcc" "src/crypto/CMakeFiles/dfx_crypto.dir/rsa.cpp.o.d"
  "/root/repo/src/crypto/schnorr.cpp" "src/crypto/CMakeFiles/dfx_crypto.dir/schnorr.cpp.o" "gcc" "src/crypto/CMakeFiles/dfx_crypto.dir/schnorr.cpp.o.d"
  "/root/repo/src/crypto/sha1.cpp" "src/crypto/CMakeFiles/dfx_crypto.dir/sha1.cpp.o" "gcc" "src/crypto/CMakeFiles/dfx_crypto.dir/sha1.cpp.o.d"
  "/root/repo/src/crypto/sha2.cpp" "src/crypto/CMakeFiles/dfx_crypto.dir/sha2.cpp.o" "gcc" "src/crypto/CMakeFiles/dfx_crypto.dir/sha2.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/dfx_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
