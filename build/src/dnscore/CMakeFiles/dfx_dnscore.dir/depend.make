# Empty dependencies file for dfx_dnscore.
# This may be replaced when dependencies are built.
