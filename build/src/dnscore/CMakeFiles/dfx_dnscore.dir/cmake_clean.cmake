file(REMOVE_RECURSE
  "CMakeFiles/dfx_dnscore.dir/masterfile.cpp.o"
  "CMakeFiles/dfx_dnscore.dir/masterfile.cpp.o.d"
  "CMakeFiles/dfx_dnscore.dir/message.cpp.o"
  "CMakeFiles/dfx_dnscore.dir/message.cpp.o.d"
  "CMakeFiles/dfx_dnscore.dir/name.cpp.o"
  "CMakeFiles/dfx_dnscore.dir/name.cpp.o.d"
  "CMakeFiles/dfx_dnscore.dir/rdata.cpp.o"
  "CMakeFiles/dfx_dnscore.dir/rdata.cpp.o.d"
  "CMakeFiles/dfx_dnscore.dir/rr.cpp.o"
  "CMakeFiles/dfx_dnscore.dir/rr.cpp.o.d"
  "CMakeFiles/dfx_dnscore.dir/rrset.cpp.o"
  "CMakeFiles/dfx_dnscore.dir/rrset.cpp.o.d"
  "CMakeFiles/dfx_dnscore.dir/wire.cpp.o"
  "CMakeFiles/dfx_dnscore.dir/wire.cpp.o.d"
  "libdfx_dnscore.a"
  "libdfx_dnscore.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dfx_dnscore.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
