file(REMOVE_RECURSE
  "libdfx_dnscore.a"
)
