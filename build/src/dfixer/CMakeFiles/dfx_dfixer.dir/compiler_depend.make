# Empty compiler generated dependencies file for dfx_dfixer.
# This may be replaced when dependencies are built.
