file(REMOVE_RECURSE
  "CMakeFiles/dfx_dfixer.dir/autofix.cpp.o"
  "CMakeFiles/dfx_dfixer.dir/autofix.cpp.o.d"
  "CMakeFiles/dfx_dfixer.dir/baseline.cpp.o"
  "CMakeFiles/dfx_dfixer.dir/baseline.cpp.o.d"
  "CMakeFiles/dfx_dfixer.dir/dresolver.cpp.o"
  "CMakeFiles/dfx_dfixer.dir/dresolver.cpp.o.d"
  "CMakeFiles/dfx_dfixer.dir/translate.cpp.o"
  "CMakeFiles/dfx_dfixer.dir/translate.cpp.o.d"
  "libdfx_dfixer.a"
  "libdfx_dfixer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dfx_dfixer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
