file(REMOVE_RECURSE
  "libdfx_dfixer.a"
)
