file(REMOVE_RECURSE
  "libdfx_util.a"
)
