# Empty dependencies file for dfx_util.
# This may be replaced when dependencies are built.
