file(REMOVE_RECURSE
  "CMakeFiles/dfx_util.dir/codec.cpp.o"
  "CMakeFiles/dfx_util.dir/codec.cpp.o.d"
  "CMakeFiles/dfx_util.dir/rng.cpp.o"
  "CMakeFiles/dfx_util.dir/rng.cpp.o.d"
  "CMakeFiles/dfx_util.dir/simclock.cpp.o"
  "CMakeFiles/dfx_util.dir/simclock.cpp.o.d"
  "CMakeFiles/dfx_util.dir/strings.cpp.o"
  "CMakeFiles/dfx_util.dir/strings.cpp.o.d"
  "libdfx_util.a"
  "libdfx_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dfx_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
