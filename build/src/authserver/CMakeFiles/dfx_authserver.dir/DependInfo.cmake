
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/authserver/authserver.cpp" "src/authserver/CMakeFiles/dfx_authserver.dir/authserver.cpp.o" "gcc" "src/authserver/CMakeFiles/dfx_authserver.dir/authserver.cpp.o.d"
  "/root/repo/src/authserver/farm.cpp" "src/authserver/CMakeFiles/dfx_authserver.dir/farm.cpp.o" "gcc" "src/authserver/CMakeFiles/dfx_authserver.dir/farm.cpp.o.d"
  "/root/repo/src/authserver/resolver.cpp" "src/authserver/CMakeFiles/dfx_authserver.dir/resolver.cpp.o" "gcc" "src/authserver/CMakeFiles/dfx_authserver.dir/resolver.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/zone/CMakeFiles/dfx_zone.dir/DependInfo.cmake"
  "/root/repo/build/src/dnscore/CMakeFiles/dfx_dnscore.dir/DependInfo.cmake"
  "/root/repo/build/src/crypto/CMakeFiles/dfx_crypto.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/dfx_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
