# Empty dependencies file for dfx_authserver.
# This may be replaced when dependencies are built.
