file(REMOVE_RECURSE
  "libdfx_authserver.a"
)
