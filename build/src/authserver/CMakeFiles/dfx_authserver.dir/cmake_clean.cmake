file(REMOVE_RECURSE
  "CMakeFiles/dfx_authserver.dir/authserver.cpp.o"
  "CMakeFiles/dfx_authserver.dir/authserver.cpp.o.d"
  "CMakeFiles/dfx_authserver.dir/farm.cpp.o"
  "CMakeFiles/dfx_authserver.dir/farm.cpp.o.d"
  "CMakeFiles/dfx_authserver.dir/resolver.cpp.o"
  "CMakeFiles/dfx_authserver.dir/resolver.cpp.o.d"
  "libdfx_authserver.a"
  "libdfx_authserver.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dfx_authserver.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
