# Empty dependencies file for dfx_zone.
# This may be replaced when dependencies are built.
