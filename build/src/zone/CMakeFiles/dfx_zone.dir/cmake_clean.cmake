file(REMOVE_RECURSE
  "CMakeFiles/dfx_zone.dir/bindcmd.cpp.o"
  "CMakeFiles/dfx_zone.dir/bindcmd.cpp.o.d"
  "CMakeFiles/dfx_zone.dir/key.cpp.o"
  "CMakeFiles/dfx_zone.dir/key.cpp.o.d"
  "CMakeFiles/dfx_zone.dir/nsec3.cpp.o"
  "CMakeFiles/dfx_zone.dir/nsec3.cpp.o.d"
  "CMakeFiles/dfx_zone.dir/signer.cpp.o"
  "CMakeFiles/dfx_zone.dir/signer.cpp.o.d"
  "CMakeFiles/dfx_zone.dir/zone.cpp.o"
  "CMakeFiles/dfx_zone.dir/zone.cpp.o.d"
  "libdfx_zone.a"
  "libdfx_zone.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dfx_zone.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
