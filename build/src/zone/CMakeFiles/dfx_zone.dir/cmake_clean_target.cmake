file(REMOVE_RECURSE
  "libdfx_zone.a"
)
