# Empty dependencies file for dfx_analyzer.
# This may be replaced when dependencies are built.
