file(REMOVE_RECURSE
  "CMakeFiles/dfx_analyzer.dir/ede.cpp.o"
  "CMakeFiles/dfx_analyzer.dir/ede.cpp.o.d"
  "CMakeFiles/dfx_analyzer.dir/errorcode.cpp.o"
  "CMakeFiles/dfx_analyzer.dir/errorcode.cpp.o.d"
  "CMakeFiles/dfx_analyzer.dir/grok.cpp.o"
  "CMakeFiles/dfx_analyzer.dir/grok.cpp.o.d"
  "CMakeFiles/dfx_analyzer.dir/probe.cpp.o"
  "CMakeFiles/dfx_analyzer.dir/probe.cpp.o.d"
  "CMakeFiles/dfx_analyzer.dir/snapshot.cpp.o"
  "CMakeFiles/dfx_analyzer.dir/snapshot.cpp.o.d"
  "libdfx_analyzer.a"
  "libdfx_analyzer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dfx_analyzer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
