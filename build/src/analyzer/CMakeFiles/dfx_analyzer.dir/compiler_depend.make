# Empty compiler generated dependencies file for dfx_analyzer.
# This may be replaced when dependencies are built.
