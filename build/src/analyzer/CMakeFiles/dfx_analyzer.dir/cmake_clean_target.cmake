file(REMOVE_RECURSE
  "libdfx_analyzer.a"
)
