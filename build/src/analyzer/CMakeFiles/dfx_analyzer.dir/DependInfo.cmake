
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/analyzer/ede.cpp" "src/analyzer/CMakeFiles/dfx_analyzer.dir/ede.cpp.o" "gcc" "src/analyzer/CMakeFiles/dfx_analyzer.dir/ede.cpp.o.d"
  "/root/repo/src/analyzer/errorcode.cpp" "src/analyzer/CMakeFiles/dfx_analyzer.dir/errorcode.cpp.o" "gcc" "src/analyzer/CMakeFiles/dfx_analyzer.dir/errorcode.cpp.o.d"
  "/root/repo/src/analyzer/grok.cpp" "src/analyzer/CMakeFiles/dfx_analyzer.dir/grok.cpp.o" "gcc" "src/analyzer/CMakeFiles/dfx_analyzer.dir/grok.cpp.o.d"
  "/root/repo/src/analyzer/probe.cpp" "src/analyzer/CMakeFiles/dfx_analyzer.dir/probe.cpp.o" "gcc" "src/analyzer/CMakeFiles/dfx_analyzer.dir/probe.cpp.o.d"
  "/root/repo/src/analyzer/snapshot.cpp" "src/analyzer/CMakeFiles/dfx_analyzer.dir/snapshot.cpp.o" "gcc" "src/analyzer/CMakeFiles/dfx_analyzer.dir/snapshot.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/authserver/CMakeFiles/dfx_authserver.dir/DependInfo.cmake"
  "/root/repo/build/src/zone/CMakeFiles/dfx_zone.dir/DependInfo.cmake"
  "/root/repo/build/src/json/CMakeFiles/dfx_json.dir/DependInfo.cmake"
  "/root/repo/build/src/dnscore/CMakeFiles/dfx_dnscore.dir/DependInfo.cmake"
  "/root/repo/build/src/crypto/CMakeFiles/dfx_crypto.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/dfx_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
