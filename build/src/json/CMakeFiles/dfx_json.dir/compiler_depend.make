# Empty compiler generated dependencies file for dfx_json.
# This may be replaced when dependencies are built.
