file(REMOVE_RECURSE
  "libdfx_json.a"
)
