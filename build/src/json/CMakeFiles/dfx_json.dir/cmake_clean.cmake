file(REMOVE_RECURSE
  "CMakeFiles/dfx_json.dir/json.cpp.o"
  "CMakeFiles/dfx_json.dir/json.cpp.o.d"
  "libdfx_json.a"
  "libdfx_json.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dfx_json.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
