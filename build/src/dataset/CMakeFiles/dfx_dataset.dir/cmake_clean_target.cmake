file(REMOVE_RECURSE
  "libdfx_dataset.a"
)
