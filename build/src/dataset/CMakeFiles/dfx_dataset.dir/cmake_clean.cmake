file(REMOVE_RECURSE
  "CMakeFiles/dfx_dataset.dir/calibration.cpp.o"
  "CMakeFiles/dfx_dataset.dir/calibration.cpp.o.d"
  "CMakeFiles/dfx_dataset.dir/corpus.cpp.o"
  "CMakeFiles/dfx_dataset.dir/corpus.cpp.o.d"
  "CMakeFiles/dfx_dataset.dir/generator.cpp.o"
  "CMakeFiles/dfx_dataset.dir/generator.cpp.o.d"
  "libdfx_dataset.a"
  "libdfx_dataset.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dfx_dataset.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
