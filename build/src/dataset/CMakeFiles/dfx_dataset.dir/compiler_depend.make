# Empty compiler generated dependencies file for dfx_dataset.
# This may be replaced when dependencies are built.
