# CMake generated Testfile for 
# Source directory: /root/repo/examples
# Build directory: /root/repo/build/examples
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(example_quickstart "/root/repo/build/examples/quickstart")
set_tests_properties(example_quickstart PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;18;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_fixer_walkthrough "/root/repo/build/examples/fixer_walkthrough")
set_tests_properties(example_fixer_walkthrough PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;19;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_replicate_and_fix "/root/repo/build/examples/replicate_and_fix" "6")
set_tests_properties(example_replicate_and_fix PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;20;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_measurement_report "/root/repo/build/examples/measurement_report" "--scale" "0.01")
set_tests_properties(example_measurement_report PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;21;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_dfixer_cli "/root/repo/build/examples/dfixer_cli" "--demo" "--server" "knot")
set_tests_properties(example_dfixer_cli PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;23;add_test;/root/repo/examples/CMakeLists.txt;0;")
