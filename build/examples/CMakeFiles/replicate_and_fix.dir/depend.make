# Empty dependencies file for replicate_and_fix.
# This may be replaced when dependencies are built.
