file(REMOVE_RECURSE
  "CMakeFiles/replicate_and_fix.dir/replicate_and_fix.cpp.o"
  "CMakeFiles/replicate_and_fix.dir/replicate_and_fix.cpp.o.d"
  "replicate_and_fix"
  "replicate_and_fix.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/replicate_and_fix.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
