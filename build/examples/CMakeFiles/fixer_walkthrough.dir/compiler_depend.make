# Empty compiler generated dependencies file for fixer_walkthrough.
# This may be replaced when dependencies are built.
