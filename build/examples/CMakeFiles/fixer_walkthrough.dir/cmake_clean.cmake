file(REMOVE_RECURSE
  "CMakeFiles/fixer_walkthrough.dir/fixer_walkthrough.cpp.o"
  "CMakeFiles/fixer_walkthrough.dir/fixer_walkthrough.cpp.o.d"
  "fixer_walkthrough"
  "fixer_walkthrough.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fixer_walkthrough.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
