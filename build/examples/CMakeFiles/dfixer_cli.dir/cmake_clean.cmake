file(REMOVE_RECURSE
  "CMakeFiles/dfixer_cli.dir/dfixer_cli.cpp.o"
  "CMakeFiles/dfixer_cli.dir/dfixer_cli.cpp.o.d"
  "dfixer_cli"
  "dfixer_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dfixer_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
