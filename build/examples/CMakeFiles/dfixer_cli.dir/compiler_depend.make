# Empty compiler generated dependencies file for dfixer_cli.
# This may be replaced when dependencies are built.
