# Empty dependencies file for measurement_report.
# This may be replaced when dependencies are built.
