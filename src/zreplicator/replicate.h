// The replication driver (Figure 7 steps 3–5): SnapshotSpec → sandbox with
// the intended errors injected → generated error set (GE).
#pragma once

#include <memory>
#include <set>
#include <string>

#include "zreplicator/spec.h"
#include "zreplicator/sandbox.h"

namespace dfx::zreplicator {

struct ReplicationResult {
  /// The sandbox (present when the zone could be built at all).
  std::unique_ptr<Sandbox> sandbox;
  /// GE: errors grok reports on the replica (empty when nothing was built).
  std::set<analyzer::ErrorCode> generated;
  /// Why replication failed or was partial, for the report.
  std::string failure_reason;
  /// Every intended error was generated (IE ⊆ GE, the paper's RR event).
  bool complete = false;
};

/// Replicate one snapshot spec. Unsupported key algorithms are substituted
/// with unused BIND-supported ones (§5.5.1); specs that exhaust the
/// algorithm space, or that stem from buggy-nameserver artifacts, fail.
ReplicationResult replicate(const SnapshotSpec& spec, std::uint64_t seed,
                            UnixTime now = kDatasetStart);

}  // namespace dfx::zreplicator
