#include "zreplicator/injector.h"

#include <algorithm>

#include "util/codec.h"
#include "zone/nsec3.h"
#include "zone/signer.h"

namespace dfx::zreplicator {
namespace {

using analyzer::ErrorCode;

// The fixed probe labels the analyzer uses (injectors may target them).
const char* kNxProbeLabel = "dnsviz-nxdomain-probe";

/// Remove the RRSIGs covering `type` at `owner` from a signed zone copy.
void strip_sigs(zone::Zone& z, const dns::Name& owner, dns::RRType type) {
  auto* sigs = z.find(owner, dns::RRType::kRRSIG);
  if (sigs == nullptr) return;
  std::vector<dns::Rdata> doomed;
  for (const auto& rdata : sigs->rdatas()) {
    const auto* sig = std::get_if<dns::RrsigRdata>(&rdata);
    if (sig != nullptr && sig->type_covered == type) doomed.push_back(rdata);
  }
  for (const auto& rdata : doomed) {
    z.remove_rdata(owner, dns::RRType::kRRSIG, rdata);
  }
}

/// Re-sign one RRset in a signed zone copy using the zone's active keys
/// (KSKs for DNSKEY, ZSKs otherwise), with a fresh valid window.
void resign_rrset(Sandbox& sb, zone::Zone& z, const dns::Name& owner,
                  dns::RRType type) {
  auto& mz = sb.managed(z.apex());
  const auto* rrset = z.find(owner, type);
  if (rrset == nullptr) return;
  strip_sigs(z, owner, type);
  const UnixTime now = sb.clock().now();
  const auto signers =
      type == dns::RRType::kDNSKEY
          ? mz.keys.active_with_role(now, zone::KeyRole::kKsk)
          : mz.keys.active_with_role(now, zone::KeyRole::kZsk);
  for (const auto* key : signers) {
    const auto sig = zone::make_rrsig(*rrset, *key, z.apex(), now - kHour,
                                      now + 30 * kDay);
    z.add(owner, dns::RRType::kRRSIG, rrset->ttl(), sig);
  }
}

/// The child's NSEC3 parameters as signed (for hash computations).
std::optional<dns::Nsec3ParamRdata> nsec3_params(const zone::Zone& z) {
  const auto* set = z.find(z.apex(), dns::RRType::kNSEC3PARAM);
  if (set == nullptr || set->empty()) return std::nullopt;
  const auto* p = std::get_if<dns::Nsec3ParamRdata>(&set->rdatas().front());
  if (p == nullptr) return std::nullopt;
  return *p;
}

/// Several injectors only make sense for one of NSEC/NSEC3. The denial
/// mode is decided *before* the zone is built (replicate() derives it from
/// the intended error set); re-signing here would erase earlier record-
/// level injections, so a mismatch is a genuine replication failure.
bool ensure_denial(Sandbox& sb, zone::DenialMode mode) {
  return sb.managed(sb.child_apex()).config.denial == mode;
}

/// Find the NSEC3 RRset (owner + rdata) covering the hash of `name`.
struct Nsec3Ref {
  dns::Name owner;
  dns::Nsec3Rdata rdata;
};
std::optional<Nsec3Ref> find_covering_nsec3(const zone::Zone& z,
                                            const dns::Name& name) {
  const auto params = nsec3_params(z);
  if (!params) return std::nullopt;
  const Bytes h = zone::nsec3_hash(name, params->salt, params->iterations);
  std::optional<Nsec3Ref> best;
  Bytes best_hash;
  std::optional<Nsec3Ref> last;
  Bytes last_hash;
  for (const auto* rrset : z.all_rrsets()) {
    if (rrset->type() != dns::RRType::kNSEC3 || rrset->empty()) continue;
    const auto* n3 = std::get_if<dns::Nsec3Rdata>(&rrset->rdatas().front());
    if (n3 == nullptr) continue;
    auto decoded = base32hex_decode(rrset->owner().leftmost_label());
    if (!decoded) continue;
    if (!last || *decoded > last_hash) {
      last = Nsec3Ref{rrset->owner(), *n3};
      last_hash = *decoded;
    }
    if (*decoded <= h && (!best || *decoded > best_hash)) {
      best = Nsec3Ref{rrset->owner(), *n3};
      best_hash = *decoded;
    }
  }
  return best ? best : last;
}

std::optional<Nsec3Ref> find_matching_nsec3(const zone::Zone& z,
                                            const dns::Name& name) {
  const auto params = nsec3_params(z);
  if (!params) return std::nullopt;
  const Bytes h = zone::nsec3_hash(name, params->salt, params->iterations);
  for (const auto* rrset : z.all_rrsets()) {
    if (rrset->type() != dns::RRType::kNSEC3 || rrset->empty()) continue;
    auto decoded = base32hex_decode(rrset->owner().leftmost_label());
    if (decoded && *decoded == h) {
      const auto* n3 =
          std::get_if<dns::Nsec3Rdata>(&rrset->rdatas().front());
      if (n3 != nullptr) return Nsec3Ref{rrset->owner(), *n3};
    }
  }
  return std::nullopt;
}

/// Replace an NSEC3 RRset in place (same owner) and re-sign it.
void replace_nsec3(Sandbox& sb, zone::Zone& z, const dns::Name& owner,
                   const dns::Nsec3Rdata& updated) {
  const auto* old = z.find(owner, dns::RRType::kNSEC3);
  const std::uint32_t ttl = old != nullptr ? old->ttl() : 3600;
  z.remove(owner, dns::RRType::kNSEC3);
  strip_sigs(z, owner, dns::RRType::kNSEC3);
  z.add(owner, dns::RRType::kNSEC3, ttl, updated);
  resign_rrset(sb, z, owner, dns::RRType::kNSEC3);
}

/// The child zone's first KSK / first active key helpers.
const zone::ZoneKey* first_ksk(const zone::KeyStore& keys) {
  for (const auto& key : keys.keys()) {
    if (key.role() == zone::KeyRole::kKsk) return &key;
  }
  return nullptr;
}

// ---- per-code injectors ---------------------------------------------------

bool inject_missing_ksk_for_algorithm(Sandbox& sb) {
  const dns::Name child = sb.child_apex();
  const auto& mz = sb.managed(child);
  std::set<std::uint8_t> used;
  for (const auto& key : mz.keys.keys()) {
    used.insert(static_cast<std::uint8_t>(key.algorithm()));
  }
  std::uint8_t alg = 0;
  for (std::uint8_t candidate : {13, 14, 15, 8, 10, 5}) {
    if (!used.contains(candidate)) {
      alg = candidate;
      break;
    }
  }
  if (alg == 0) return false;  // every algorithm in use: cannot fabricate
  dns::DsRdata ds;
  ds.key_tag = 4242;
  ds.algorithm = alg;
  ds.digest_type = 2;
  ds.digest.assign(32, 0xAB);
  sb.add_parent_ds(child, ds);
  return true;
}

bool inject_invalid_digest(Sandbox& sb) {
  const dns::Name child = sb.child_apex();
  const auto& mz = sb.managed(child);
  const auto* ksk = first_ksk(mz.keys);
  if (ksk == nullptr) return false;
  dns::DsRdata ds = zone::make_ds(*ksk, crypto::DigestType::kSha256);
  ds.digest[0] ^= 0xFF;  // corrupt the hash
  sb.add_parent_ds(child, ds);
  return true;
}

bool inject_inconsistent_dnskey(Sandbox& sb) {
  const dns::Name child = sb.child_apex();
  auto& mz = sb.managed(child);
  // Roll the ZSK but publish the new zone on one server only — the classic
  // partially-propagated rollover.
  Rng rng = sb.rng().fork("inconsistent");
  const auto algorithm = mz.keys.keys().empty()
                             ? crypto::DnssecAlgorithm::kRsaSha256
                             : mz.keys.keys().front().algorithm();
  mz.keys.generate(rng, zone::KeyRole::kZsk, algorithm, sb.clock().now());
  zone::Zone fresh = zone::sign_zone(mz.unsigned_zone, mz.keys, mz.config,
                                     sb.clock().now());
  mz.signed_zone = fresh;
  sb.push_signed_to(Sandbox::kNs1, child, fresh);  // ns2 keeps the old copy
  return true;
}

bool inject_revoked_key(Sandbox& sb) {
  const dns::Name child = sb.child_apex();
  auto& mz = sb.managed(child);
  auto* ksk = const_cast<zone::ZoneKey*>(first_ksk(mz.keys));
  if (ksk == nullptr) return false;
  // The DS at the parent was generated pre-revocation and stays in place.
  ksk->set_revoked(true);
  sb.resign_and_sync(child);
  return true;
}

bool inject_bad_key_length(Sandbox& sb) {
  const dns::Name child = sb.child_apex();
  auto& mz = sb.managed(child);
  zone::Zone z = mz.signed_zone;
  const auto* dnskeys = z.find(child, dns::RRType::kDNSKEY);
  if (dnskeys == nullptr) return false;
  dns::DnskeyRdata bogus;
  bogus.flags = dns::kDnskeyFlagZone;
  bogus.protocol = 3;
  bogus.algorithm = mz.keys.keys().empty()
                        ? 8
                        : static_cast<std::uint8_t>(
                              mz.keys.keys().front().algorithm());
  bogus.public_key = {0x01, 0x02, 0x03};  // impossible key material
  z.add(child, dns::RRType::kDNSKEY, dnskeys->ttl(), bogus);
  resign_rrset(sb, z, child, dns::RRType::kDNSKEY);
  sb.push_signed(child, std::move(z));
  return true;
}

bool inject_incomplete_algorithm_setup(Sandbox& sb) {
  const dns::Name child = sb.child_apex();
  auto& mz = sb.managed(child);
  // Publish a DNSKEY of a second algorithm without signing anything with it.
  std::set<std::uint8_t> used;
  for (const auto& key : mz.keys.keys()) {
    used.insert(static_cast<std::uint8_t>(key.algorithm()));
  }
  crypto::DnssecAlgorithm extra = crypto::DnssecAlgorithm::kEcdsaP256Sha256;
  bool found = false;
  for (const auto& info : crypto::all_algorithms()) {
    if (info.supported_by_bind &&
        !used.contains(static_cast<std::uint8_t>(info.number))) {
      extra = info.number;
      found = true;
      break;
    }
  }
  if (!found) return false;  // algorithm space exhausted
  Rng rng = sb.rng().fork("incomplete-alg");
  const auto material = crypto::generate_key(rng, extra);
  dns::DnskeyRdata rdata;
  rdata.flags = dns::kDnskeyFlagZone;
  rdata.protocol = 3;
  rdata.algorithm = static_cast<std::uint8_t>(extra);
  rdata.public_key = material.public_key;

  zone::Zone z = mz.signed_zone;
  const auto* dnskeys = z.find(child, dns::RRType::kDNSKEY);
  if (dnskeys == nullptr) return false;
  z.add(child, dns::RRType::kDNSKEY, dnskeys->ttl(), rdata);
  resign_rrset(sb, z, child, dns::RRType::kDNSKEY);
  sb.push_signed(child, std::move(z));
  return true;
}

bool inject_missing_signature(Sandbox& sb) {
  const dns::Name child = sb.child_apex();
  auto& mz = sb.managed(child);
  zone::Zone z = mz.signed_zone;
  // Target the apex A RRset: the signature-tampering injectors own the SOA
  // RRset, so combined scenarios stay distinguishable.
  strip_sigs(z, child, dns::RRType::kA);
  sb.push_signed(child, std::move(z));
  return true;
}

bool inject_window_error(Sandbox& sb, bool expired) {
  const dns::Name child = sb.child_apex();
  auto& mz = sb.managed(child);
  if (expired) {
    // Sign as if 40 days ago with 30-day validity: everything expired.
    mz.config.inception_offset = 40 * kDay;
    mz.config.validity = -10 * kDay;
  } else {
    // Inception two days in the future.
    mz.config.inception_offset = -2 * kDay;
    mz.config.validity = 30 * kDay;
  }
  sb.resign_and_sync(child);
  // Restore the config defaults so a later plain re-sign heals the zone.
  mz.config.inception_offset = kHour;
  mz.config.validity = 30 * kDay;
  return true;
}

/// Tamper with the RRSIGs covering the apex SOA.
bool inject_sig_tamper(Sandbox& sb, ErrorCode code) {
  const dns::Name child = sb.child_apex();
  auto& mz = sb.managed(child);
  zone::Zone z = mz.signed_zone;
  const auto* soa = z.find(child, dns::RRType::kSOA);
  if (soa == nullptr) return false;
  const auto zsks =
      mz.keys.active_with_role(sb.clock().now(), zone::KeyRole::kZsk);
  if (zsks.empty()) return false;
  const auto* key = zsks.front();
  strip_sigs(z, child, dns::RRType::kSOA);
  const UnixTime now = sb.clock().now();
  dns::RrsigRdata sig;
  switch (code) {
    case ErrorCode::kInvalidSignature:
      sig = zone::make_rrsig(*soa, *key, child, now - kHour, now + 30 * kDay);
      sig.signature[sig.signature.size() / 2] ^= 0x55;
      break;
    case ErrorCode::kIncorrectSigner:
      sig = zone::make_rrsig(*soa, *key, sb.parent_apex(), now - kHour,
                             now + 30 * kDay);
      break;
    case ErrorCode::kIncorrectSignatureLabels:
      sig = zone::make_rrsig(
          *soa, *key, child, now - kHour, now + 30 * kDay,
          static_cast<std::uint8_t>(child.label_count() + 1));
      break;
    case ErrorCode::kBadSignatureLength:
      sig = zone::make_rrsig(*soa, *key, child, now - kHour, now + 30 * kDay);
      sig.signature.resize(5);
      break;
    default:
      return false;
  }
  z.add(child, dns::RRType::kRRSIG, soa->ttl(), sig);
  sb.push_signed(child, std::move(z));
  return true;
}

bool inject_original_ttl(Sandbox& sb) {
  const dns::Name child = sb.child_apex();
  auto& mz = sb.managed(child);
  zone::Zone z = mz.signed_zone;
  auto* soa = z.find(child, dns::RRType::kSOA);
  if (soa == nullptr) return false;
  soa->set_ttl(soa->ttl() + 7200);  // served TTL now exceeds original TTL
  sb.push_signed(child, std::move(z));
  return true;
}

bool inject_ttl_beyond_expiration(Sandbox& sb) {
  const dns::Name child = sb.child_apex();
  auto& mz = sb.managed(child);
  // Long TTLs, short validity: records outlive their signatures in caches.
  zone::Zone updated(child);
  for (const auto* rrset : mz.unsigned_zone.all_rrsets()) {
    dns::RRset copy = *rrset;
    copy.set_ttl(7 * 24 * 3600);
    updated.put(std::move(copy));
  }
  mz.unsigned_zone = std::move(updated);
  mz.config.validity = 2 * kDay;
  sb.resign_and_sync(child);
  mz.config.validity = 30 * kDay;
  return true;
}

bool inject_missing_nonexistence(Sandbox& sb) {
  const dns::Name child = sb.child_apex();
  auto& mz = sb.managed(child);
  zone::Zone z = mz.signed_zone;
  std::vector<std::pair<dns::Name, dns::RRType>> doomed;
  for (const auto* rrset : z.all_rrsets()) {
    if (rrset->type() == dns::RRType::kNSEC ||
        rrset->type() == dns::RRType::kNSEC3) {
      doomed.emplace_back(rrset->owner(), rrset->type());
    }
  }
  if (doomed.empty()) return false;
  for (const auto& [owner, type] : doomed) {
    strip_sigs(z, owner, type);
    z.remove(owner, type);
  }
  sb.push_signed(child, std::move(z));
  return true;
}

bool inject_incorrect_type_bitmap(Sandbox& sb) {
  const dns::Name child = sb.child_apex();
  auto& mz = sb.managed(child);
  zone::Zone z = mz.signed_zone;
  if (mz.config.denial == zone::DenialMode::kNsec) {
    auto* nsec_set = z.find(child, dns::RRType::kNSEC);
    if (nsec_set == nullptr || nsec_set->empty()) return false;
    auto nsec = std::get<dns::NsecRdata>(nsec_set->rdatas().front());
    nsec.types.insert(dns::RRType::kMX);  // lies: MX does not exist
    dns::RRset updated(child, dns::RRType::kNSEC, nsec_set->ttl());
    updated.add(nsec);
    z.put(std::move(updated));
    resign_rrset(sb, z, child, dns::RRType::kNSEC);
  } else {
    const auto match = find_matching_nsec3(z, child);
    if (!match) return false;
    dns::Nsec3Rdata updated = match->rdata;
    updated.types.insert(dns::RRType::kMX);
    replace_nsec3(sb, z, match->owner, updated);
  }
  sb.push_signed(child, std::move(z));
  return true;
}

bool inject_bad_nonexistence(Sandbox& sb) {
  const dns::Name child = sb.child_apex();
  auto& mz = sb.managed(child);
  zone::Zone z = mz.signed_zone;
  if (mz.config.denial == zone::DenialMode::kNsec) {
    // Shrink the covering interval so the probe name is no longer denied.
    const dns::Name probe = child.child(kNxProbeLabel);
    // The covering NSEC for the probe is the apex record (apex < probe).
    auto* nsec_set = z.find(child, dns::RRType::kNSEC);
    if (nsec_set == nullptr || nsec_set->empty()) return false;
    auto nsec = std::get<dns::NsecRdata>(nsec_set->rdatas().front());
    nsec.next = child.child("aaa");  // interval now ends before the probe
    (void)probe;
    dns::RRset updated(child, dns::RRType::kNSEC, nsec_set->ttl());
    updated.add(nsec);
    z.put(std::move(updated));
    resign_rrset(sb, z, child, dns::RRType::kNSEC);
  } else {
    // Change the salt in every NSEC3 record without re-hashing: the records
    // stay signed and self-consistent but prove nothing about real names.
    std::vector<Nsec3Ref> all;
    for (const auto* rrset : z.all_rrsets()) {
      if (rrset->type() != dns::RRType::kNSEC3 || rrset->empty()) continue;
      const auto* n3 =
          std::get_if<dns::Nsec3Rdata>(&rrset->rdatas().front());
      if (n3 != nullptr) all.push_back({rrset->owner(), *n3});
    }
    if (all.empty()) return false;
    for (auto& ref : all) {
      ref.rdata.salt = {0xDE, 0xAD, 0xBE, 0xEF};
      replace_nsec3(sb, z, ref.owner, ref.rdata);
    }
  }
  sb.push_signed(child, std::move(z));
  return true;
}

bool inject_incorrect_last_nsec(Sandbox& sb) {
  const dns::Name child = sb.child_apex();
  if (!ensure_denial(sb, zone::DenialMode::kNsec)) return false;
  auto& mz = sb.managed(child);
  zone::Zone z = mz.signed_zone;
  // Find the wrap record: the NSEC whose next is the apex.
  for (const auto* rrset : z.all_rrsets()) {
    if (rrset->type() != dns::RRType::kNSEC || rrset->empty()) continue;
    const auto nsec = std::get<dns::NsecRdata>(rrset->rdatas().front());
    if (nsec.next != child || rrset->owner() == child) continue;
    dns::NsecRdata updated = nsec;
    // Should point back to the apex; "aaa" sorts before every real owner,
    // so the record still "covers" the tail of the namespace while its next
    // pointer is provably not the apex.
    updated.next = child.child("aaa");
    const dns::Name owner = rrset->owner();
    dns::RRset replacement(owner, dns::RRType::kNSEC, rrset->ttl());
    replacement.add(updated);
    z.put(std::move(replacement));
    resign_rrset(sb, z, owner, dns::RRType::kNSEC);
    sb.push_signed(child, std::move(z));
    return true;
  }
  return false;
}

bool inject_nzic(Sandbox& sb, std::uint16_t iterations) {
  auto& mz = sb.managed(sb.child_apex());
  mz.config.denial = zone::DenialMode::kNsec3;
  mz.config.nsec3_iterations = iterations == 0 ? 10 : iterations;
  sb.resign_and_sync(sb.child_apex());
  return true;
}

bool inject_inconsistent_ancestor(Sandbox& sb) {
  const dns::Name child = sb.child_apex();
  if (!ensure_denial(sb, zone::DenialMode::kNsec3)) return false;
  auto& mz = sb.managed(child);
  zone::Zone z = mz.signed_zone;
  const auto params = nsec3_params(z);
  if (!params) return false;
  // Replace the whole chain with one synthetic record whose owner hash
  // matches no ancestor of the probe name but whose (wrapping) interval
  // covers it: the response then denies the name while telling an
  // inconsistent story about its closest encloser.
  std::vector<std::pair<dns::Name, std::uint32_t>> doomed;
  std::uint32_t ttl = 3600;
  for (const auto* rrset : z.all_rrsets()) {
    if (rrset->type() == dns::RRType::kNSEC3) {
      doomed.emplace_back(rrset->owner(), rrset->ttl());
      ttl = rrset->ttl();
    }
  }
  if (doomed.empty()) return false;
  for (const auto& [owner, _] : doomed) {
    strip_sigs(z, owner, dns::RRType::kNSEC3);
    z.remove(owner, dns::RRType::kNSEC3);
  }
  Bytes h0 = zone::nsec3_hash(child.child(kNxProbeLabel), params->salt,
                              params->iterations);
  h0.back() ^= 0x01;  // dfx-lint: allow(unchecked-front-back): digest is never empty  // near the probe's hash, equal to no real name's
  dns::Nsec3Rdata synthetic;
  synthetic.iterations = params->iterations;
  synthetic.salt = params->salt;
  synthetic.next_hashed = h0;  // self-wrap: covers everything but itself
  synthetic.types = {dns::RRType::kA};
  const dns::Name owner = child.child(base32hex_encode(h0));
  z.add(owner, dns::RRType::kNSEC3, ttl, synthetic);
  resign_rrset(sb, z, owner, dns::RRType::kNSEC3);
  sb.push_signed(child, std::move(z));
  return true;
}

bool inject_incorrect_closest_encloser(Sandbox& sb) {
  const dns::Name child = sb.child_apex();
  if (!ensure_denial(sb, zone::DenialMode::kNsec3)) return false;
  auto& mz = sb.managed(child);
  zone::Zone z = mz.signed_zone;
  // Collapse the interval of the record covering the probe's next-closer
  // name so it covers nothing.
  const dns::Name probe = child.child(kNxProbeLabel);
  const auto cover = find_covering_nsec3(z, probe);
  if (!cover) return false;
  auto decoded = base32hex_decode(cover->owner.leftmost_label());
  if (!decoded) return false;
  dns::Nsec3Rdata updated = cover->rdata;
  updated.next_hashed = *decoded;
  // Increment so the interval is empty-but-wellformed.
  for (std::size_t i = updated.next_hashed.size(); i-- > 0;) {
    if (++updated.next_hashed[i] != 0) break;
  }
  replace_nsec3(sb, z, cover->owner, updated);
  sb.push_signed(child, std::move(z));
  return true;
}

bool inject_invalid_nsec3_hash(Sandbox& sb) {
  const dns::Name child = sb.child_apex();
  if (!ensure_denial(sb, zone::DenialMode::kNsec3)) return false;
  auto& mz = sb.managed(child);
  zone::Zone z = mz.signed_zone;
  const auto cover = find_covering_nsec3(z, child.child(kNxProbeLabel));
  if (!cover) return false;
  dns::Nsec3Rdata updated = cover->rdata;
  updated.next_hashed.resize(10);  // SHA-1 output must be 20 bytes
  replace_nsec3(sb, z, cover->owner, updated);
  sb.push_signed(child, std::move(z));
  return true;
}

bool inject_invalid_nsec3_owner(Sandbox& sb) {
  const dns::Name child = sb.child_apex();
  if (!ensure_denial(sb, zone::DenialMode::kNsec3)) return false;
  auto& mz = sb.managed(child);
  zone::Zone z = mz.signed_zone;
  const auto cover = find_covering_nsec3(z, child.child(kNxProbeLabel));
  if (!cover) return false;
  // Add an extra chain record whose owner label is not valid base32hex —
  // the artifact of a broken signer. The intact chain stays in place.
  const dns::Name bad_owner = child.child("not-a-base32hex-label!");
  const auto* old = z.find(cover->owner, dns::RRType::kNSEC3);
  const std::uint32_t ttl = old != nullptr ? old->ttl() : 3600;
  z.add(bad_owner, dns::RRType::kNSEC3, ttl, cover->rdata);
  resign_rrset(sb, z, bad_owner, dns::RRType::kNSEC3);
  sb.push_signed(child, std::move(z));
  return true;
}

bool inject_incorrect_opt_out(Sandbox& sb) {
  const dns::Name child = sb.child_apex();
  if (!ensure_denial(sb, zone::DenialMode::kNsec3)) return false;
  auto& mz = sb.managed(child);
  zone::Zone z = mz.signed_zone;
  // Set opt-out on exactly one record — the one matching the apex, which
  // every negative response includes — so the chain's flags are visibly
  // inconsistent.
  const auto match = find_matching_nsec3(z, child);
  if (!match) return false;
  dns::Nsec3Rdata updated = match->rdata;
  updated.flags |= dns::kNsec3FlagOptOut;
  replace_nsec3(sb, z, match->owner, updated);
  sb.push_signed(child, std::move(z));
  return true;
}

bool inject_unsupported_nsec3_algorithm(Sandbox& sb) {
  const dns::Name child = sb.child_apex();
  if (!ensure_denial(sb, zone::DenialMode::kNsec3)) return false;
  auto& mz = sb.managed(child);
  zone::Zone z = mz.signed_zone;
  std::vector<Nsec3Ref> all;
  for (const auto* rrset : z.all_rrsets()) {
    if (rrset->type() != dns::RRType::kNSEC3 || rrset->empty()) continue;
    const auto* n3 = std::get_if<dns::Nsec3Rdata>(&rrset->rdatas().front());
    if (n3 != nullptr) all.push_back({rrset->owner(), *n3});
  }
  if (all.empty()) return false;
  for (auto& ref : all) {
    ref.rdata.hash_algorithm = 5;  // undefined NSEC3 hash algorithm
    replace_nsec3(sb, z, ref.owner, ref.rdata);
  }
  sb.push_signed(child, std::move(z));
  return true;
}

// ---- KeyTrap-class injectors (CVE-2023-50387/50868) -----------------------

/// Adopt `count` publish-only ZSKs that all share one key tag distinct from
/// every real key's tag. The RFC 4034 App. B tag is a plain 16-bit-word
/// checksum, so the final two bytes of otherwise-valid key material can be
/// brute-forced (<= 65536 tag computations) onto any target value — exactly
/// the forgeability KeyTrap exploits. The crafted keys are published but
/// never activate, so they appear in the DNSKEY RRset without signing.
/// Returns the shared tag, or nullopt on (unlikely) failure.
std::optional<std::uint16_t> adopt_colliding_keys(Sandbox& sb,
                                                  std::size_t count) {
  const dns::Name child = sb.child_apex();
  auto& mz = sb.managed(child);
  const UnixTime now = sb.clock().now();
  Rng rng = sb.rng().fork("keytrap-collide");
  const auto algorithm = mz.keys.keys().empty()
                             ? crypto::DnssecAlgorithm::kEcdsaP256Sha256
                             : mz.keys.keys().front().algorithm();
  std::set<std::uint16_t> taken;
  for (const auto& key : mz.keys.keys()) taken.insert(key.tag());

  std::uint16_t target = 0;
  bool have_target = false;
  std::vector<crypto::KeyPair> crafted;
  for (int attempts = 0; crafted.size() < count && attempts < 64;
       ++attempts) {
    auto material = crypto::generate_key(rng, algorithm);
    if (material.public_key.size() < 2) return std::nullopt;
    dns::DnskeyRdata rdata;
    rdata.flags = dns::kDnskeyFlagZone;
    rdata.protocol = 3;
    rdata.algorithm = static_cast<std::uint8_t>(algorithm);
    rdata.public_key = material.public_key;
    if (!have_target) {
      target = rdata.key_tag();
      if (taken.contains(target)) continue;  // want a fresh, shared tag
      have_target = true;
      crafted.push_back(std::move(material));
      continue;
    }
    bool hit = false;
    const std::size_t n = rdata.public_key.size();
    for (std::uint32_t w = 0; w < 0x10000; ++w) {
      rdata.public_key[n - 2] = static_cast<std::uint8_t>(w >> 8);
      rdata.public_key[n - 1] = static_cast<std::uint8_t>(w & 0xFF);
      if (rdata.key_tag() == target) {
        hit = true;
        break;
      }
    }
    if (!hit) continue;  // carry pattern missed the tag; fresh material
    material.public_key = rdata.public_key;
    crafted.push_back(std::move(material));
  }
  if (crafted.size() < count) return std::nullopt;
  for (auto& material : crafted) {
    auto& key = mz.keys.adopt(
        zone::ZoneKey(child, zone::KeyRole::kZsk, std::move(material), now));
    key.set_activate_time(now + 3650 * kDay);  // published, never signs
  }
  sb.resign_and_sync(child);
  return target;
}

bool inject_colliding_key_tags(Sandbox& sb) {
  return adopt_colliding_keys(sb, 3).has_value();
}

/// The many-keys x many-RRSIGs pairing blowup: every garbage RRSIG names
/// the shared tag, so a pre-KeyTrap validator tries keys x sigs candidate
/// pairings before giving up on the RRset.
bool inject_excessive_sig_validations(Sandbox& sb) {
  const dns::Name child = sb.child_apex();
  const auto tag = adopt_colliding_keys(sb, 14);
  if (!tag) return false;
  auto& mz = sb.managed(child);
  zone::Zone z = mz.signed_zone;
  const auto* soa = z.find(child, dns::RRType::kSOA);
  if (soa == nullptr) return false;
  const UnixTime now = sb.clock().now();
  const auto algorithm = mz.keys.keys().empty()
                             ? crypto::DnssecAlgorithm::kEcdsaP256Sha256
                             : mz.keys.keys().front().algorithm();
  const auto info = crypto::algorithm_info(algorithm);
  const std::size_t sig_len = info && info->rsa_family ? 64 : 16;
  Rng rng = sb.rng().fork("keytrap-sigs");
  for (int i = 0; i < 16; ++i) {
    dns::RrsigRdata sig;
    sig.type_covered = dns::RRType::kSOA;
    sig.algorithm = static_cast<std::uint8_t>(algorithm);
    sig.labels = static_cast<std::uint8_t>(child.label_count());
    sig.original_ttl = soa->ttl();
    sig.expiration = now + 30 * kDay;
    sig.inception = now - kHour;
    sig.key_tag = *tag;
    sig.signer = child;
    sig.signature.resize(sig_len);
    rng.fill(sig.signature);
    z.add(child, dns::RRType::kRRSIG, soa->ttl(), sig);
  }
  sb.push_signed(child, std::move(z));
  return true;
}

/// CVE-2023-50868 shape: NSEC3 iteration counts far beyond the caps of
/// patched validators (and of RFC 9276, which wants zero).
bool inject_excessive_nsec3_iterations(Sandbox& sb) {
  auto& mz = sb.managed(sb.child_apex());
  mz.config.denial = zone::DenialMode::kNsec3;
  if (mz.config.nsec3_iterations <= 150) mz.config.nsec3_iterations = 2500;
  sb.resign_and_sync(sb.child_apex());
  return true;
}

}  // namespace

std::vector<analyzer::ErrorCode> injection_order(
    const std::set<ErrorCode>& codes) {
  // Whole-zone re-signing injections first (they rebuild signed state);
  // record-level tampering afterwards.
  const auto phase = [](ErrorCode code) {
    switch (code) {
      // Whole-zone re-signs first.
      case ErrorCode::kNonzeroIterationCount:
      case ErrorCode::kExpiredSignature:
      case ErrorCode::kNotYetValidSignature:
      case ErrorCode::kTtlBeyondExpiration:
      case ErrorCode::kExcessiveNsec3Iterations:
        return 0;
      // Key-set mutations (these re-sign internally, so they must precede
      // record-level tampering; the pairing injector also tampers records,
      // but only after its own internal re-sign).
      case ErrorCode::kRevokedKey:
      case ErrorCode::kCollidingKeyTags:
      case ErrorCode::kExcessiveSignatureValidations:
        return 1;
      // The one-server push must come last: anything after it would sync
      // both servers and erase the inconsistency.
      case ErrorCode::kInconsistentDnskeyBetweenServers:
        return 3;
      default:
        return 2;
    }
  };
  std::vector<ErrorCode> out(codes.begin(), codes.end());
  std::stable_sort(out.begin(), out.end(), [&](ErrorCode a, ErrorCode b) {
    return phase(a) < phase(b);
  });
  return out;
}

bool inject_error(Sandbox& sb, ErrorCode code) {
  switch (code) {
    case ErrorCode::kMissingKskForAlgorithm:
      return inject_missing_ksk_for_algorithm(sb);
    case ErrorCode::kInvalidDigest:
      return inject_invalid_digest(sb);
    case ErrorCode::kInconsistentDnskeyBetweenServers:
      return inject_inconsistent_dnskey(sb);
    case ErrorCode::kRevokedKey:
      return inject_revoked_key(sb);
    case ErrorCode::kBadKeyLength:
      return inject_bad_key_length(sb);
    case ErrorCode::kIncompleteAlgorithmSetup:
      return inject_incomplete_algorithm_setup(sb);
    case ErrorCode::kMissingSignature:
      return inject_missing_signature(sb);
    case ErrorCode::kExpiredSignature:
      return inject_window_error(sb, /*expired=*/true);
    case ErrorCode::kNotYetValidSignature:
      return inject_window_error(sb, /*expired=*/false);
    case ErrorCode::kInvalidSignature:
    case ErrorCode::kIncorrectSigner:
    case ErrorCode::kIncorrectSignatureLabels:
    case ErrorCode::kBadSignatureLength:
      return inject_sig_tamper(sb, code);
    case ErrorCode::kOriginalTtlExceedsRrsetTtl:
      return inject_original_ttl(sb);
    case ErrorCode::kTtlBeyondExpiration:
      return inject_ttl_beyond_expiration(sb);
    case ErrorCode::kMissingNonexistenceProof:
      return inject_missing_nonexistence(sb);
    case ErrorCode::kIncorrectTypeBitmap:
      return inject_incorrect_type_bitmap(sb);
    case ErrorCode::kBadNonexistenceProof:
      return inject_bad_nonexistence(sb);
    case ErrorCode::kIncorrectLastNsec:
      return inject_incorrect_last_nsec(sb);
    case ErrorCode::kNonzeroIterationCount:
      return inject_nzic(sb, sb.managed(sb.child_apex())
                                 .config.nsec3_iterations);
    case ErrorCode::kInconsistentAncestorForNxdomain:
      return inject_inconsistent_ancestor(sb);
    case ErrorCode::kIncorrectClosestEncloserProof:
      return inject_incorrect_closest_encloser(sb);
    case ErrorCode::kInvalidNsec3Hash:
      return inject_invalid_nsec3_hash(sb);
    case ErrorCode::kInvalidNsec3OwnerName:
      return inject_invalid_nsec3_owner(sb);
    case ErrorCode::kIncorrectOptOutFlag:
      return inject_incorrect_opt_out(sb);
    case ErrorCode::kUnsupportedNsec3Algorithm:
      return inject_unsupported_nsec3_algorithm(sb);
    case ErrorCode::kCollidingKeyTags:
      return inject_colliding_key_tags(sb);
    case ErrorCode::kExcessiveSignatureValidations:
      return inject_excessive_sig_validations(sb);
    case ErrorCode::kExcessiveNsec3Iterations:
      return inject_excessive_nsec3_iterations(sb);
    default:
      // Companion codes are not injected directly; in particular
      // kValidatorWorkBudgetExceeded rides along the pairing blowup.
      return false;
  }
}

}  // namespace dfx::zreplicator
