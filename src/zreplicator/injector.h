// Error injectors: one per Table-3 error code (Figure 7, step 3).
//
// Each injector perturbs the sandbox's child zone (or its delegation in the
// parent) so that probe + grok report exactly the intended code — plus, for
// some scenarios, benign companions, which is fine: the replication metric
// is IE ⊆ GE. Injectors that modify signed records re-sign the affected
// RRset with the zone's own keys so that *only* the intended anomaly shows.
#pragma once

#include "analyzer/errorcode.h"
#include "zreplicator/sandbox.h"

namespace dfx::zreplicator {

/// Inject one error into the sandbox's child zone. Returns false when the
/// scenario cannot be realised (these are exactly the replication-failure
/// mechanics of §5.5.1).
bool inject_error(Sandbox& sandbox, analyzer::ErrorCode code);

/// The canonical order in which multiple errors are injected (some
/// injections rebuild state that later ones then perturb).
std::vector<analyzer::ErrorCode> injection_order(
    const std::set<analyzer::ErrorCode>& codes);

}  // namespace dfx::zreplicator
