// The ZReplicator sandbox: a local hierarchy a.com → par.a.com → <child>,
// served by two authoritative servers, with the keys and signing state of
// every zone under our control (Figure 7). Implements DFixer's CommandHost,
// so auto-apply mode executes against it directly.
#pragma once

#include <map>
#include <memory>
#include <optional>
#include <string>

#include "analyzer/grok.h"
#include "analyzer/probe.h"
#include "authserver/farm.h"
#include "dfixer/host.h"
#include "util/rng.h"
#include "util/simclock.h"
#include "zone/key.h"
#include "zone/signer.h"
#include "zone/zone.h"

namespace dfx::zreplicator {

/// Everything the sandbox tracks for one zone: the unsigned content, the
/// key directory, the signing configuration, and the latest signed copy.
struct ManagedZone {
  zone::Zone unsigned_zone{dns::Name::root()};
  zone::KeyStore keys{dns::Name::root()};
  zone::SigningConfig config;
  zone::Zone signed_zone{dns::Name::root()};
  bool sign_on_build = true;
};

class Sandbox : public dfixer::CommandHost {
 public:
  static constexpr const char* kNs1 = "ns1.sandbox";
  static constexpr const char* kNs2 = "ns2.sandbox";

  Sandbox(std::uint64_t seed, UnixTime start_time);

  SimClock& clock() { return clock_; }
  Rng& rng() { return rng_; }
  authserver::ServerFarm& farm() { return farm_; }

  const dns::Name& base_apex() const { return base_apex_; }
  const dns::Name& parent_apex() const { return parent_apex_; }
  const dns::Name& child_apex() const { return child_apex_; }

  /// Build the base (trust anchor) and parent zones, both cleanly signed.
  /// `parent_bogus` reproduces the paper's unfixable scenario: the parent
  /// keeps its DS at the base but loses its DNSKEY RRset.
  void build_base(bool parent_bogus = false);

  /// Create the child zone with the given key set and denial configuration;
  /// uploads a DS per KSK to the parent and signs everything. Key algorithm
  /// substitution happens in replicate(), not here: `algorithms` must be
  /// BIND-supported.
  struct ChildKeySpec {
    zone::KeyRole role = zone::KeyRole::kZsk;
    crypto::DnssecAlgorithm algorithm = crypto::DnssecAlgorithm::kRsaSha256;
    std::size_t bits = 0;
  };
  void build_child(const dns::Name& apex,
                   const std::vector<ChildKeySpec>& keys,
                   const zone::SigningConfig& config,
                   crypto::DigestType ds_digest, std::uint32_t ttl);

  ManagedZone& managed(const dns::Name& apex);
  const ManagedZone* find_managed(const dns::Name& apex) const;

  /// Re-sign a zone from its unsigned content + key store and push the
  /// result to every server.
  void resign_and_sync(const dns::Name& apex);

  /// Push the given *already signed* zone to every server (used by
  /// injectors that post-edit signed data).
  void push_signed(const dns::Name& apex, zone::Zone signed_zone);

  /// Push a signed copy to only one server (multi-server inconsistencies).
  void push_signed_to(const std::string& server, const dns::Name& apex,
                      const zone::Zone& signed_zone);

  /// Add/remove a DS RRset entry for `child` in the parent zone and
  /// re-sign the parent.
  void add_parent_ds(const dns::Name& child, const dns::DsRdata& ds);
  bool remove_parent_ds(const dns::Name& child, std::uint16_t key_tag,
                        const std::string& digest_hex = "");

  /// The chain of zone apexes root-first (for probing).
  std::vector<dns::Name> chain() const;

  /// Parental-agent CDS polling (RFC 7344): if the child publishes a CDS
  /// RRset that validates through the *existing* chain of trust (valid
  /// parent DS → DNSKEY RRset → CDS RRSIG), replace the parent's DS set
  /// for the child with the CDS contents and re-sign the parent. Returns
  /// false when no acceptable CDS is found — notably when the current
  /// delegation is broken, which is exactly why the paper could not rely
  /// on CDS for *repair* (§5.5.2).
  bool poll_cds(const dns::Name& child);

  /// Export the sandbox as the on-disk artifacts the real ZReplicator
  /// produces for BIND: per-zone `db.<apex>unsigned` / `db.<apex>signed`
  /// master files plus `K<zone>+AAA+TTTTT.key` public-key files. Returns
  /// the written paths. Throws std::runtime_error on I/O failure.
  std::vector<std::string> export_to_directory(
      const std::string& directory) const;

  // --- dfixer::CommandHost -------------------------------------------------
  bool apply(const zone::BindCommand& command) override;
  analyzer::Snapshot analyze() override;

 private:
  void host_everywhere(const zone::Zone& signed_zone);

  Rng rng_;
  SimClock clock_;
  authserver::ServerFarm farm_;
  dns::Name base_apex_;
  dns::Name parent_apex_;
  dns::Name child_apex_;
  std::map<dns::Name, ManagedZone, dns::Name::Less> zones_;
  /// Last keys created via apply(kDnssecKeygen), for "NEW" DS resolution.
  std::optional<std::uint16_t> last_generated_ksk_;
};

}  // namespace dfx::zreplicator
