#include "zreplicator/spec_corpus.h"

#include <algorithm>

#include "dataset/calibration.h"

namespace dfx::zreplicator {
namespace {

using analyzer::ErrorCode;

/// Sample one non-NZIC error combination from the Table-3 mix.
std::set<ErrorCode> sample_combination(Rng& rng) {
  std::vector<ErrorCode> codes;
  std::vector<double> weights;
  for (const auto& row : dataset::table3_calibration()) {
    if (row.code == ErrorCode::kNonzeroIterationCount) continue;
    codes.push_back(row.code);
    weights.push_back(row.snapshot_share);
  }
  std::set<ErrorCode> out;
  const int n = 1 + static_cast<int>(rng.uniform(3));
  for (int i = 0; i < n; ++i) {
    out.insert(codes[rng.weighted_pick(weights)]);
  }
  // S2 includes snapshots where NZIC rides along other errors.
  if (rng.chance(0.30)) out.insert(ErrorCode::kNonzeroIterationCount);
  return out;
}

/// Meta-parameters: key sets mirroring the wild (mostly 1 KSK + 1 ZSK,
/// sometimes multi-key or retired algorithms needing substitution).
analyzer::ZoneMeta sample_meta(Rng& rng, bool nsec3) {
  analyzer::ZoneMeta meta;
  const std::uint8_t algo_pool[] = {8, 13, 8, 13, 8, 13, 5, 7, 10, 14, 15};
  const std::uint8_t retired_pool[] = {3, 6, 12};
  const std::uint8_t algorithm =
      algo_pool[rng.uniform(std::size(algo_pool))];
  analyzer::KeyMeta ksk;
  ksk.flags = 0x0101;
  ksk.algorithm = algorithm;
  analyzer::KeyMeta zsk;
  zsk.flags = 0x0100;
  zsk.algorithm = algorithm;
  meta.keys = {ksk, zsk};
  // A minority of zones carry extra keys (rollovers in flight) or retired
  // algorithms that force substitution.
  if (rng.chance(0.18)) {
    analyzer::KeyMeta extra = zsk;
    extra.algorithm = algo_pool[rng.uniform(std::size(algo_pool))];
    meta.keys.push_back(extra);
  }
  if (rng.chance(0.04)) {
    analyzer::KeyMeta retired = zsk;
    retired.algorithm = retired_pool[rng.uniform(std::size(retired_pool))];
    meta.keys.push_back(retired);
  }
  meta.uses_nsec3 = nsec3;
  if (nsec3) {
    meta.nsec3_iterations = static_cast<std::uint16_t>(rng.uniform(21));
    if (rng.chance(0.4)) meta.nsec3_salt_hex = "8d4557157f54153f";
  }
  meta.max_ttl = rng.chance(0.8) ? 3600 : 86400;
  meta.server_count = 2;
  return meta;
}

}  // namespace

std::vector<EvalSpec> generate_eval_specs(const SpecCorpusOptions& options) {
  Rng rng(options.seed);
  std::vector<EvalSpec> out;
  out.reserve(options.count);
  for (std::size_t i = 0; i < options.count; ++i) {
    EvalSpec eval;
    eval.s1 = rng.chance(options.s1_share);
    if (eval.s1) {
      eval.spec.intended_errors = {ErrorCode::kNonzeroIterationCount};
      eval.spec.meta = sample_meta(rng, /*nsec3=*/true);
      if (eval.spec.meta.nsec3_iterations == 0) {
        eval.spec.meta.nsec3_iterations = 1;
      }
      eval.spec.buggy_artifact = rng.chance(options.s1_artifact_rate);
    } else if (options.keytrap_rate > 0 && rng.chance(options.keytrap_rate)) {
      // Adversarial KeyTrap-class shapes (opt-in; the guard keeps the rng
      // stream — and so the calibrated corpus — untouched at rate zero).
      const auto shape = rng.uniform(3);
      if (shape == 0) {
        eval.spec.intended_errors = {ErrorCode::kCollidingKeyTags};
      } else if (shape == 1) {
        eval.spec.intended_errors = {
            ErrorCode::kExcessiveSignatureValidations,
            ErrorCode::kValidatorWorkBudgetExceeded};
      } else {
        eval.spec.intended_errors = {ErrorCode::kExcessiveNsec3Iterations};
      }
      eval.spec.meta = sample_meta(rng, /*nsec3=*/shape == 2);
    } else {
      eval.spec.intended_errors = sample_combination(rng);
      const bool nsec3 =
          eval.spec.intended_errors.contains(
              ErrorCode::kNonzeroIterationCount) ||
          std::any_of(eval.spec.intended_errors.begin(),
                      eval.spec.intended_errors.end(), [](ErrorCode c) {
                        return analyzer::category_of(c) ==
                               analyzer::ErrorCategory::kNsec3Only;
                      }) ||
          rng.chance(0.5);
      eval.spec.meta = sample_meta(rng, nsec3);
      if (eval.spec.intended_errors.contains(
              ErrorCode::kNonzeroIterationCount) &&
          eval.spec.meta.nsec3_iterations == 0) {
        eval.spec.meta.nsec3_iterations = 1;
      }
      eval.spec.buggy_artifact = rng.chance(options.s2_artifact_rate);
      if (!eval.spec.buggy_artifact &&
          rng.chance(options.s2_variant_rate)) {
        // One of the intended errors was a buggy-nameserver variant.
        const auto& errors = eval.spec.intended_errors;
        const auto idx = rng.uniform(errors.size());
        auto it = errors.begin();
        std::advance(it, static_cast<std::ptrdiff_t>(idx));
        eval.spec.unreplicable_variants.insert(*it);
      }
      eval.spec.parent_bogus = rng.chance(options.parent_bogus_rate);
      // Operational twists behind Table 7's key-management instructions.
      const auto& ie = eval.spec.intended_errors;
      // A minority of real zones carry catch-all wildcards. Negative-proof
      // injections rely on the NXDOMAIN probe, which a wildcard absorbs, so
      // those combinations stay wildcard-free.
      const bool negative_proof_sensitive = std::any_of(
          ie.begin(), ie.end(), [](ErrorCode c) {
            const auto category = analyzer::category_of(c);
            return category == analyzer::ErrorCategory::kNsecCommon ||
                   category == analyzer::ErrorCategory::kNsecOnly ||
                   category == analyzer::ErrorCategory::kNsec3Only;
          });
      if (!negative_proof_sensitive) {
        eval.spec.meta.has_wildcard = rng.chance(0.06);
      }
      const bool key_sensitive =
          ie.contains(ErrorCode::kRevokedKey) ||
          ie.contains(ErrorCode::kInvalidDigest) ||
          ie.contains(ErrorCode::kBadKeyLength);
      if (!key_sensitive) {
        if (rng.chance(0.10)) {
          eval.spec.ksk_missing = true;
        } else if (rng.chance(0.22)) {
          eval.spec.stale_ds_only = true;
        }
      }
    }
    out.push_back(std::move(eval));
  }
  return out;
}

}  // namespace dfx::zreplicator
