// Evaluation-spec generator: samples SnapshotSpecs with the error-
// combination structure of the paper's 296,813 erroneous snapshots,
// including the S1 (NZIC-only) / S2 split and the replication-failure
// drivers of §5.5.1 at their reported rates.
#pragma once

#include <vector>

#include "util/rng.h"
#include "zreplicator/spec.h"

namespace dfx::zreplicator {

struct EvalSpec {
  SnapshotSpec spec;
  bool s1 = false;  // NZIC is the only intended error
};

struct SpecCorpusOptions {
  std::size_t count = 2000;
  std::uint64_t seed = 42;
  /// Paper shares driving the sampler.
  double s1_share = 0.568;  // 168,482 / 296,813
  /// S1 replication-failure probability (paper: 1 - 98.81%).
  double s1_artifact_rate = 0.0119;
  /// S2 failure split: total 21.29%, of which 32.82% generate nothing
  /// (artifacts) and 67.18% generate a subset. Partial failures also arise
  /// *organically* from contradictory error combinations (≈10% of S2), so
  /// the modelled variant rate only covers the remainder.
  double s2_artifact_rate = 0.047;
  double s2_variant_rate = 0.115;
  /// Parent-zone-bogus rate (paper: 5 unfixable of ~101K fixed S2 zones).
  double parent_bogus_rate = 0.00005;
  /// Share of S2 snapshots replaced by KeyTrap-class adversarial shapes
  /// (colliding key tags, pairing blowups, oversized NSEC3 iterations).
  /// Defaults to zero: the paper's dataset predates the attack class, so
  /// the calibrated corpus stays byte-identical unless a caller opts in.
  double keytrap_rate = 0.0;
};

std::vector<EvalSpec> generate_eval_specs(const SpecCorpusOptions& options);

}  // namespace dfx::zreplicator
