// SnapshotSpec: what ZReplicator extracts from one DNSViz JSON snapshot
// (Figure 7, step 2) — the intended error set plus the zone meta-parameters
// needed to rebuild an equivalent zone locally.
#pragma once

#include <set>
#include <string>

#include "analyzer/errorcode.h"
#include "analyzer/snapshot.h"

namespace dfx::zreplicator {

struct SnapshotSpec {
  /// IE: the DNSSEC errors the original snapshot exhibited (Table 3 codes).
  std::set<analyzer::ErrorCode> intended_errors;

  /// Zone meta-parameters mirrored into the replica.
  analyzer::ZoneMeta meta;

  /// The replicated parent zone itself is bogus (DS at the grandparent but
  /// no DNSKEY): the scenario behind the paper's five unfixable zones.
  bool parent_bogus = false;

  /// The original error stems from a buggy-nameserver artifact that a
  /// correct implementation cannot serve (§5.5.1) — replication will fail
  /// entirely (GE = ∅).
  bool buggy_artifact = false;

  /// Codes whose *original manifestation* relied on a buggy-nameserver
  /// variant (e.g. a negative-proof anomaly or an impossible DNSKEY bit
  /// length only a broken server would load). The injector refuses these,
  /// producing the paper's partial-replication outcomes (GE ⊂ IE).
  std::set<analyzer::ErrorCode> unreplicable_variants;

  /// The parent's only usable DS was removed (stale DS remains): DFixer
  /// must regenerate and upload a DS for the existing KSK.
  bool stale_ds_only = false;

  /// The KSK's key files were lost after a rollover, leaving DS records
  /// that match nothing: DFixer must generate a fresh KSK.
  bool ksk_missing = false;

  /// Build a spec directly from a grokked snapshot (parse step of Fig. 7).
  static SnapshotSpec from_snapshot(const analyzer::Snapshot& snapshot);
};

/// Canonical key for an error combination (sorted code list) — the paper
/// reports 2,058 unique combinations.
std::string combination_key(const std::set<analyzer::ErrorCode>& errors);

}  // namespace dfx::zreplicator
