#include "zreplicator/sandbox.h"

#include <filesystem>
#include <fstream>
#include <stdexcept>

#include "dnscore/masterfile.h"
#include "util/codec.h"

namespace dfx::zreplicator {
namespace {

dns::SoaRdata make_soa(const dns::Name& apex) {
  dns::SoaRdata soa;
  soa.mname = apex.child("ns1");
  soa.rname = apex.child("hostmaster");
  soa.serial = 1;
  soa.minimum = 3600;
  return soa;
}

dns::ARdata ip(std::uint8_t a, std::uint8_t b, std::uint8_t c,
               std::uint8_t d) {
  dns::ARdata r;
  r.address = {a, b, c, d};
  return r;
}

}  // namespace

Sandbox::Sandbox(std::uint64_t seed, UnixTime start_time)
    : rng_(seed),
      clock_(start_time),
      base_apex_(dns::Name::of("a.com.")),
      parent_apex_(dns::Name::of("par.a.com.")),
      child_apex_(dns::Name::of("chd.par.a.com.")) {}

ManagedZone& Sandbox::managed(const dns::Name& apex) {
  const auto it = zones_.find(apex);
  if (it == zones_.end()) {
    throw std::invalid_argument("Sandbox: unmanaged zone " + apex.to_string());
  }
  return it->second;
}

const ManagedZone* Sandbox::find_managed(const dns::Name& apex) const {
  const auto it = zones_.find(apex);
  return it == zones_.end() ? nullptr : &it->second;
}

void Sandbox::host_everywhere(const zone::Zone& signed_zone) {
  farm_.host_zone(kNs1, signed_zone);
  farm_.host_zone(kNs2, signed_zone);
}

void Sandbox::build_base(bool parent_bogus) {
  const UnixTime now = clock_.now();

  // --- base zone a.com (the local trust anchor) --------------------------
  ManagedZone base;
  base.unsigned_zone = zone::Zone(base_apex_);
  base.unsigned_zone.add(base_apex_, dns::RRType::kSOA, 3600,
                         make_soa(base_apex_));
  base.unsigned_zone.add(base_apex_, dns::RRType::kNS, 3600,
                         dns::NsRdata{base_apex_.child("ns1")});
  base.unsigned_zone.add(base_apex_, dns::RRType::kNS, 3600,
                         dns::NsRdata{base_apex_.child("ns2")});
  base.unsigned_zone.add(base_apex_.child("ns1"), dns::RRType::kA, 3600,
                         ip(10, 0, 0, 1));
  base.unsigned_zone.add(base_apex_.child("ns2"), dns::RRType::kA, 3600,
                         ip(10, 0, 0, 2));
  base.unsigned_zone.add(base_apex_, dns::RRType::kA, 3600, ip(10, 0, 0, 10));
  // Delegation to the parent zone.
  base.unsigned_zone.add(parent_apex_, dns::RRType::kNS, 3600,
                         dns::NsRdata{base_apex_.child("ns1")});
  base.unsigned_zone.add(parent_apex_, dns::RRType::kNS, 3600,
                         dns::NsRdata{base_apex_.child("ns2")});
  base.keys = zone::KeyStore(base_apex_);
  Rng base_rng = rng_.fork("base-keys");
  base.keys.generate(base_rng, zone::KeyRole::kKsk,
                     crypto::DnssecAlgorithm::kEcdsaP256Sha256, now);
  base.keys.generate(base_rng, zone::KeyRole::kZsk,
                     crypto::DnssecAlgorithm::kEcdsaP256Sha256, now);
  zones_.insert_or_assign(base_apex_, std::move(base));

  // --- parent zone par.a.com ---------------------------------------------
  ManagedZone parent;
  parent.unsigned_zone = zone::Zone(parent_apex_);
  parent.unsigned_zone.add(parent_apex_, dns::RRType::kSOA, 3600,
                           make_soa(parent_apex_));
  parent.unsigned_zone.add(parent_apex_, dns::RRType::kNS, 3600,
                           dns::NsRdata{base_apex_.child("ns1")});
  parent.unsigned_zone.add(parent_apex_, dns::RRType::kNS, 3600,
                           dns::NsRdata{base_apex_.child("ns2")});
  parent.unsigned_zone.add(parent_apex_, dns::RRType::kA, 3600,
                           ip(10, 0, 1, 10));
  parent.keys = zone::KeyStore(parent_apex_);
  Rng parent_rng = rng_.fork("parent-keys");
  parent.keys.generate(parent_rng, zone::KeyRole::kKsk,
                       crypto::DnssecAlgorithm::kEcdsaP256Sha256, now);
  parent.keys.generate(parent_rng, zone::KeyRole::kZsk,
                       crypto::DnssecAlgorithm::kEcdsaP256Sha256, now);
  zones_.insert_or_assign(parent_apex_, std::move(parent));

  // Link parent into base via DS.
  auto& parent_ref = managed(parent_apex_);
  for (const auto& key : parent_ref.keys.keys()) {
    if (key.role() != zone::KeyRole::kKsk) continue;
    managed(base_apex_)
        .unsigned_zone.add(parent_apex_, dns::RRType::kDS, 3600,
                           zone::make_ds(key, crypto::DigestType::kSha256));
  }

  // Sign and host.
  auto& base_ref = managed(base_apex_);
  base_ref.signed_zone =
      zone::sign_zone(base_ref.unsigned_zone, base_ref.keys, base_ref.config,
                      now);
  host_everywhere(base_ref.signed_zone);

  if (parent_bogus) {
    // DS exists at the base, but the parent serves no DNSKEY (and hence no
    // signatures): the unfixable-from-the-child scenario.
    parent_ref.keys = zone::KeyStore(parent_apex_);
    parent_ref.signed_zone = parent_ref.unsigned_zone;
  } else {
    parent_ref.signed_zone = zone::sign_zone(
        parent_ref.unsigned_zone, parent_ref.keys, parent_ref.config, now);
  }
  host_everywhere(parent_ref.signed_zone);
}

void Sandbox::build_child(const dns::Name& apex,
                          const std::vector<ChildKeySpec>& key_specs,
                          const zone::SigningConfig& config,
                          crypto::DigestType ds_digest, std::uint32_t ttl) {
  const UnixTime now = clock_.now();
  child_apex_ = apex;

  ManagedZone child;
  child.config = config;
  child.unsigned_zone = zone::Zone(apex);
  child.unsigned_zone.add(apex, dns::RRType::kSOA, ttl, make_soa(apex));
  child.unsigned_zone.add(apex, dns::RRType::kNS, ttl,
                          dns::NsRdata{base_apex_.child("ns1")});
  child.unsigned_zone.add(apex, dns::RRType::kNS, ttl,
                          dns::NsRdata{base_apex_.child("ns2")});
  child.unsigned_zone.add(apex, dns::RRType::kA, ttl, ip(10, 0, 2, 10));
  dns::TxtRdata txt;
  txt.strings = {"replicated by ZReplicator"};
  child.unsigned_zone.add(apex, dns::RRType::kTXT, ttl, txt);
  child.unsigned_zone.add(apex.child("www"), dns::RRType::kA, ttl,
                          ip(10, 0, 2, 11));
  child.unsigned_zone.add(apex.child("mail"), dns::RRType::kA, ttl,
                          ip(10, 0, 2, 12));

  child.keys = zone::KeyStore(apex);
  Rng child_rng = rng_.fork("child-keys");
  for (const auto& spec : key_specs) {
    child.keys.generate(child_rng, spec.role, spec.algorithm, now, spec.bits);
  }
  zones_.insert_or_assign(apex, child);

  // Delegation NS + DS in the parent.
  auto& parent = managed(parent_apex_);
  parent.unsigned_zone.add(apex, dns::RRType::kNS, 3600,
                           dns::NsRdata{base_apex_.child("ns1")});
  parent.unsigned_zone.add(apex, dns::RRType::kNS, 3600,
                           dns::NsRdata{base_apex_.child("ns2")});
  auto& child_ref = managed(apex);
  for (const auto& key : child_ref.keys.keys()) {
    if (key.role() != zone::KeyRole::kKsk) continue;
    parent.unsigned_zone.add(apex, dns::RRType::kDS, 3600,
                             zone::make_ds(key, ds_digest));
  }
  if (!parent.keys.empty()) {
    parent.signed_zone =
        zone::sign_zone(parent.unsigned_zone, parent.keys, parent.config, now);
  } else {
    parent.signed_zone = parent.unsigned_zone;  // bogus-parent scenario
  }
  host_everywhere(parent.signed_zone);

  child_ref.signed_zone = zone::sign_zone(child_ref.unsigned_zone,
                                          child_ref.keys, child_ref.config,
                                          now);
  host_everywhere(child_ref.signed_zone);
}

void Sandbox::resign_and_sync(const dns::Name& apex) {
  auto& mz = managed(apex);
  mz.signed_zone =
      zone::sign_zone(mz.unsigned_zone, mz.keys, mz.config, clock_.now());
  farm_.sync_zone(mz.signed_zone);
}

void Sandbox::push_signed(const dns::Name& apex, zone::Zone signed_zone) {
  auto& mz = managed(apex);
  mz.signed_zone = std::move(signed_zone);
  farm_.sync_zone(mz.signed_zone);
}

void Sandbox::push_signed_to(const std::string& server, const dns::Name& apex,
                             const zone::Zone& signed_zone) {
  (void)apex;
  farm_.push_to_one(server, signed_zone);
}

void Sandbox::add_parent_ds(const dns::Name& child, const dns::DsRdata& ds) {
  auto& parent = managed(parent_apex_);
  parent.unsigned_zone.add(child, dns::RRType::kDS, 3600, ds);
  if (!parent.keys.empty()) {
    parent.signed_zone = zone::sign_zone(parent.unsigned_zone, parent.keys,
                                         parent.config, clock_.now());
  } else {
    parent.signed_zone = parent.unsigned_zone;
  }
  farm_.sync_zone(parent.signed_zone);
}

bool Sandbox::remove_parent_ds(const dns::Name& child, std::uint16_t key_tag,
                               const std::string& digest_hex) {
  auto& parent = managed(parent_apex_);
  auto* ds_set = parent.unsigned_zone.find(child, dns::RRType::kDS);
  if (ds_set == nullptr) return false;
  std::vector<dns::Rdata> to_remove;
  for (const auto& rdata : ds_set->rdatas()) {
    const auto* ds = std::get_if<dns::DsRdata>(&rdata);
    if (ds == nullptr || ds->key_tag != key_tag) continue;
    if (!digest_hex.empty() && hex_encode(ds->digest) != digest_hex) continue;
    to_remove.push_back(rdata);
  }
  if (to_remove.empty()) return false;
  for (const auto& rdata : to_remove) {
    parent.unsigned_zone.remove_rdata(child, dns::RRType::kDS, rdata);
  }
  if (!parent.keys.empty()) {
    parent.signed_zone = zone::sign_zone(parent.unsigned_zone, parent.keys,
                                         parent.config, clock_.now());
  } else {
    parent.signed_zone = parent.unsigned_zone;
  }
  farm_.sync_zone(parent.signed_zone);
  return true;
}

std::vector<std::string> Sandbox::export_to_directory(
    const std::string& directory) const {
  namespace fs = std::filesystem;
  fs::create_directories(directory);
  std::vector<std::string> written;
  const auto write_file = [&](const std::string& name,
                              const std::string& content) {
    const std::string path = directory + "/" + name;
    std::ofstream out(path);
    if (!out) throw std::runtime_error("cannot write " + path);
    out << content;
    written.push_back(path);
  };
  for (const auto& [apex, mz] : zones_) {
    const std::string base = "db." + apex.to_string();
    write_file(base + "unsigned",
               "; unsigned zone " + apex.to_string() + "\n$TTL 3600\n" +
                   dns::print_master_file(mz.unsigned_zone.to_records()));
    write_file(base + "signed",
               "; signed zone " + apex.to_string() + "\n$TTL 3600\n" +
                   dns::print_master_file(mz.signed_zone.to_records()));
    for (const auto& key : mz.keys.keys()) {
      const dns::ResourceRecord record{apex, dns::RRType::kDNSKEY,
                                       dns::RRClass::kIN, 3600,
                                       dns::Rdata(key.to_dnskey())};
      write_file(key.file_base() + ".key",
                 "; This is a " +
                     std::string(key.role() == zone::KeyRole::kKsk
                                     ? "key-signing key"
                                     : "zone-signing key") +
                     ", keyid " + std::to_string(key.tag()) + ", for " +
                     apex.to_string() + "\n" + record.to_text() + "\n");
    }
  }
  return written;
}

bool Sandbox::poll_cds(const dns::Name& child) {
  const auto* child_zone = find_managed(child);
  const auto* parent = find_managed(parent_apex_);
  if (child_zone == nullptr || parent == nullptr) return false;
  const auto& signed_child = child_zone->signed_zone;

  // 1. The child's published CDS set.
  const auto* cds_set = signed_child.find(child, dns::RRType::kCDS);
  if (cds_set == nullptr || cds_set->empty()) return false;

  // 2. Establish trust in the child's DNSKEY RRset via the *current*
  //    parent DS set (RFC 7344 §4.1: no bootstrap from a broken chain).
  const auto* parent_ds =
      parent->signed_zone.find(child, dns::RRType::kDS);
  const auto* dnskeys = signed_child.find(child, dns::RRType::kDNSKEY);
  if (parent_ds == nullptr || dnskeys == nullptr) return false;
  std::vector<const dns::DnskeyRdata*> sep_keys;
  for (const auto& ds_rdata : parent_ds->rdatas()) {
    const auto* ds = std::get_if<dns::DsRdata>(&ds_rdata);
    if (ds == nullptr) continue;
    for (const auto& key_rdata : dnskeys->rdatas()) {
      const auto* key = std::get_if<dns::DnskeyRdata>(&key_rdata);
      if (key == nullptr || key->is_revoked()) continue;
      if (key->key_tag() != ds->key_tag || key->algorithm != ds->algorithm) {
        continue;
      }
      const auto digest = crypto::ds_digest(
          static_cast<crypto::DigestType>(ds->digest_type),
          child.to_canonical_wire(),
          dns::rdata_to_wire(dns::Rdata(*key)));
      if (!digest.empty() && digest == ds->digest) sep_keys.push_back(key);
    }
  }
  if (sep_keys.empty()) return false;

  const auto rrset_validates =
      [&](const dns::RRset& rrset,
          const std::vector<const dns::DnskeyRdata*>& keys) {
        const auto* sigs = signed_child.find(child, dns::RRType::kRRSIG);
        if (sigs == nullptr) return false;
        for (const auto& sig_rdata : sigs->rdatas()) {
          const auto* sig = std::get_if<dns::RrsigRdata>(&sig_rdata);
          if (sig == nullptr || sig->type_covered != rrset.type()) continue;
          if (sig->expiration < clock_.now() ||
              sig->inception > clock_.now()) {
            continue;
          }
          for (const auto* key : keys) {
            if (key->key_tag() == sig->key_tag &&
                zone::verify_rrsig(rrset, *sig, *key)) {
              return true;
            }
          }
        }
        return false;
      };
  // DNSKEY RRset must be signed by a DS-anchored key...
  if (!rrset_validates(*dnskeys, sep_keys)) return false;
  // ...and the CDS RRset by any key in the (now trusted) DNSKEY set.
  std::vector<const dns::DnskeyRdata*> all_keys;
  for (const auto& key_rdata : dnskeys->rdatas()) {
    const auto* key = std::get_if<dns::DnskeyRdata>(&key_rdata);
    if (key != nullptr) all_keys.push_back(key);
  }
  if (!rrset_validates(*cds_set, all_keys)) return false;

  // 3. Accepted: the CDS contents become the parent's DS set.
  auto& parent_mut = managed(parent_apex_);
  parent_mut.unsigned_zone.remove(child, dns::RRType::kDS);
  for (const auto& rdata : cds_set->rdatas()) {
    const auto* cds = std::get_if<dns::CdsRdata>(&rdata);
    if (cds != nullptr) {
      parent_mut.unsigned_zone.add(child, dns::RRType::kDS, 3600, cds->ds);
    }
  }
  if (!parent_mut.keys.empty()) {
    parent_mut.signed_zone =
        zone::sign_zone(parent_mut.unsigned_zone, parent_mut.keys,
                        parent_mut.config, clock_.now());
  } else {
    parent_mut.signed_zone = parent_mut.unsigned_zone;
  }
  farm_.sync_zone(parent_mut.signed_zone);
  return true;
}

std::vector<dns::Name> Sandbox::chain() const {
  std::vector<dns::Name> out = {base_apex_, parent_apex_};
  if (zones_.find(child_apex_) != zones_.end()) out.push_back(child_apex_);
  return out;
}

analyzer::Snapshot Sandbox::analyze() {
  const auto data = analyzer::probe(farm_, chain(), child_apex_, clock_.now());
  return analyzer::grok(data);
}

bool Sandbox::apply(const zone::BindCommand& command) {
  using zone::CommandKind;
  const auto arg = [&](const std::string& key,
                       const std::string& dflt) -> std::string {
    const auto it = command.args.find(key);
    return it == command.args.end() ? dflt : it->second;
  };
  auto zone_name = dns::Name::parse(arg("zone", child_apex_.to_string()));
  if (!zone_name) return false;
  // Only zones we manage can be touched (real operators cannot fix foreign
  // zones).
  if (zones_.find(*zone_name) == zones_.end() &&
      command.kind != CommandKind::kWaitTtl) {
    return false;
  }

  switch (command.kind) {
    case CommandKind::kDnssecKeygen: {
      auto& mz = managed(*zone_name);
      const int algo_number = std::stoi(arg("algorithm_number", "8"));
      const auto info = crypto::algorithm_info(
          static_cast<std::uint8_t>(algo_number));
      if (!info || !info->supported_by_bind) return false;
      const bool ksk = arg("ksk", "0") == "1";
      const std::size_t bits =
          static_cast<std::size_t>(std::stoul(arg("bits", "0")));
      Rng keygen_rng = rng_.fork("keygen");
      auto& key = mz.keys.generate(
          keygen_rng, ksk ? zone::KeyRole::kKsk : zone::KeyRole::kZsk,
          info->number, clock_.now(), bits);
      if (ksk) last_generated_ksk_ = key.tag();
      return true;
    }
    case CommandKind::kDnssecSignzone: {
      auto& mz = managed(*zone_name);
      mz.config.denial = arg("nsec3", "0") == "1" ? zone::DenialMode::kNsec3
                                                  : zone::DenialMode::kNsec;
      mz.config.nsec3_iterations =
          static_cast<std::uint16_t>(std::stoul(arg("iterations", "0")));
      const std::string salt_hex = arg("salt", "-");
      auto salt = hex_decode(salt_hex);
      mz.config.nsec3_salt = salt ? *salt : Bytes{};
      mz.config.nsec3_opt_out = arg("optout", "0") == "1";
      // Restore default validity in case an injector shrank it.
      mz.config.inception_offset = kHour;
      mz.config.validity = 30 * kDay;
      resign_and_sync(*zone_name);
      return true;
    }
    case CommandKind::kDnssecSettime: {
      auto& mz = managed(*zone_name);
      const auto tag =
          static_cast<std::uint16_t>(std::stoul(arg("key_tag", "0")));
      auto* key = mz.keys.find_by_tag(tag);
      // A DNSKEY seen in the zone but absent from the key directory (e.g.
      // injected garbage) has no key file; it disappears at the next
      // re-sign, so the command is a no-op rather than a failure.
      if (key == nullptr) return true;
      if (arg("flag", "D") == "D") {
        key->set_delete_time(clock_.now());
      } else {
        key->set_revoked(true);
      }
      return true;
    }
    case CommandKind::kDnssecDsFromKey:
      return true;  // informational: prints the DS record
    case CommandKind::kUploadDsToParent: {
      auto& mz = managed(*zone_name);
      auto tag = static_cast<std::uint16_t>(std::stoul(arg("key_tag", "0")));
      if (tag == 0 && last_generated_ksk_) tag = *last_generated_ksk_;
      const auto* key = mz.keys.find_by_tag(tag);
      if (key == nullptr) {
        // Fall back to any active KSK.
        const auto ksks =
            mz.keys.active_with_role(clock_.now(), zone::KeyRole::kKsk);
        if (ksks.empty()) return false;
        key = ksks.front();
      }
      const auto digest =
          static_cast<crypto::DigestType>(std::stoi(arg("digest", "2")));
      add_parent_ds(*zone_name, zone::make_ds(*key, digest));
      return true;
    }
    case CommandKind::kRemoveDsFromParent: {
      const auto tag =
          static_cast<std::uint16_t>(std::stoul(arg("key_tag", "0")));
      return remove_parent_ds(*zone_name, tag, arg("digest_hex", ""));
    }
    case CommandKind::kSyncServers: {
      // Push the primary's current copy to every server.
      resign_and_sync(*zone_name);
      return true;
    }
    case CommandKind::kReduceTtl: {
      auto& mz = managed(*zone_name);
      const auto ttl =
          static_cast<std::uint32_t>(std::stoul(arg("ttl", "3600")));
      zone::Zone updated(mz.unsigned_zone.apex());
      for (const auto* rrset : mz.unsigned_zone.all_rrsets()) {
        dns::RRset copy = *rrset;
        if (copy.ttl() > ttl) copy.set_ttl(ttl);
        updated.put(std::move(copy));
      }
      mz.unsigned_zone = std::move(updated);
      return true;
    }
    case CommandKind::kWaitTtl: {
      clock_.advance(std::stol(arg("seconds", "0")));
      return true;
    }
    case CommandKind::kRemoveKeyFile: {
      auto& mz = managed(*zone_name);
      return mz.keys.remove_by_tag(
          static_cast<std::uint16_t>(std::stoul(arg("key_tag", "0"))));
    }
    case CommandKind::kPublishCds: {
      auto& mz = managed(*zone_name);
      mz.config.publish_cds = true;
      resign_and_sync(*zone_name);
      // The registrar's parental agent polls on its own schedule; the
      // sandbox polls immediately.
      return poll_cds(*zone_name);
    }
  }
  return false;
}

}  // namespace dfx::zreplicator
