#include "zreplicator/replicate.h"

#include <algorithm>

#include "util/codec.h"
#include "util/metrics.h"
#include "zreplicator/injector.h"

namespace dfx::zreplicator {
namespace {

using analyzer::ErrorCode;

/// Map a key's observed algorithm to one the modelled BIND can generate,
/// substituting retired algorithms with unused supported ones (§5.5.1).
std::optional<crypto::DnssecAlgorithm> substitute_algorithm(
    std::uint8_t observed, std::set<std::uint8_t>& in_use) {
  const auto info = crypto::algorithm_info(observed);
  if (info && info->supported_by_bind) {
    in_use.insert(observed);
    return info->number;
  }
  for (const auto alg : crypto::bind_supported_algorithms()) {
    const auto number = static_cast<std::uint8_t>(alg);
    if (!in_use.contains(number)) {
      in_use.insert(number);
      return alg;
    }
  }
  return std::nullopt;  // supported algorithms exhausted
}

}  // namespace

ReplicationResult replicate(const SnapshotSpec& spec, std::uint64_t seed,
                            UnixTime now) {
  static auto& replicate_hist =
      metrics::Registry::global().histogram("stage.zreplicator.replicate");
  static auto& replicate_count =
      metrics::Registry::global().counter("zreplicator.replications");
  metrics::ScopedTimer timer(replicate_hist);
  replicate_count.add(1);
  ReplicationResult result;
  if (spec.buggy_artifact) {
    result.failure_reason =
        "snapshot stems from a buggy-nameserver artifact the zone loader "
        "refuses to serve";
    return result;
  }

  // Translate the observed key set, substituting algorithms as needed.
  std::vector<Sandbox::ChildKeySpec> key_specs;
  std::set<std::uint8_t> in_use;
  for (const auto& key : spec.meta.keys) {
    auto alg = substitute_algorithm(key.algorithm, in_use);
    if (!alg) {
      result.failure_reason =
          "algorithm substitution exhausted the supported algorithm set";
      return result;
    }
    Sandbox::ChildKeySpec ks;
    ks.role = key.is_ksk() ? zone::KeyRole::kKsk : zone::KeyRole::kZsk;
    ks.algorithm = *alg;
    ks.bits = key.key_bits;
    key_specs.push_back(ks);
  }
  if (key_specs.empty()) {
    // A signed snapshot implies at least one key pair existed.
    key_specs.push_back({zone::KeyRole::kKsk,
                         crypto::DnssecAlgorithm::kRsaSha256, 0});
    key_specs.push_back({zone::KeyRole::kZsk,
                         crypto::DnssecAlgorithm::kRsaSha256, 0});
  } else {
    const bool any_zsk = std::any_of(
        key_specs.begin(), key_specs.end(), [](const auto& ks) {
          return ks.role == zone::KeyRole::kZsk;
        });
    const bool any_ksk = std::any_of(
        key_specs.begin(), key_specs.end(), [](const auto& ks) {
          return ks.role == zone::KeyRole::kKsk;
        });
    if (!any_ksk) {
      key_specs.push_back(  // dfx-lint: allow(unchecked-front-back): non-empty branch
          {zone::KeyRole::kKsk, key_specs.front().algorithm, 0});
    }
    if (!any_zsk) {
      key_specs.push_back(  // dfx-lint: allow(unchecked-front-back): non-empty branch
          {zone::KeyRole::kZsk, key_specs.front().algorithm, 0});
    }
  }

  // The denial mode must match the intended errors and cannot change once
  // record-level injections start, so it is decided up front. Combinations
  // demanding both NSEC-only and NSEC3-only anomalies are intrinsically
  // irreplicable in one zone.
  const bool need_nsec3 = std::any_of(
      spec.intended_errors.begin(), spec.intended_errors.end(),
      [](ErrorCode c) {
        return analyzer::category_of(c) ==
                   analyzer::ErrorCategory::kNsec3Only ||
               c == ErrorCode::kExcessiveNsec3Iterations;
      });
  const bool need_nsec =
      spec.intended_errors.contains(ErrorCode::kIncorrectLastNsec);
  if (need_nsec && need_nsec3) {
    result.failure_reason =
        "snapshot mixes NSEC-only and NSEC3-only anomalies; a single zone "
        "cannot serve both chains";
    return result;
  }
  zone::SigningConfig config;
  config.denial = need_nsec3 || (spec.meta.uses_nsec3 && !need_nsec)
                      ? zone::DenialMode::kNsec3
                      : zone::DenialMode::kNsec;
  // The *intended* NZIC value is injected separately; a clean build starts
  // compliant unless NZIC is part of the spec.
  config.nsec3_iterations =
      spec.intended_errors.contains(ErrorCode::kNonzeroIterationCount)
          ? std::max<std::uint16_t>(spec.meta.nsec3_iterations, 1)
          : 0;
  if (!spec.meta.nsec3_salt_hex.empty()) {
    if (auto salt = hex_decode(spec.meta.nsec3_salt_hex)) {
      config.nsec3_salt = *salt;
    }
  }
  config.nsec3_opt_out = spec.meta.nsec3_opt_out;

  crypto::DigestType digest = crypto::DigestType::kSha256;
  for (const auto& ds : spec.meta.ds_records) {
    const auto type = static_cast<crypto::DigestType>(ds.digest_type);
    if (crypto::digest_length(type) != 0) {
      digest = type;
      break;
    }
  }

  auto sandbox = std::make_unique<Sandbox>(seed, now);
  sandbox->build_base(spec.parent_bogus);
  sandbox->build_child(dns::Name::of("chd.par.a.com."), key_specs, config,
                       digest, spec.meta.max_ttl);

  if (spec.meta.has_wildcard) {
    auto& mz = sandbox->managed(sandbox->child_apex());
    dns::ARdata a;
    a.address = {10, 0, 2, 42};
    mz.unsigned_zone.add(sandbox->child_apex().child("*"), dns::RRType::kA,
                         spec.meta.max_ttl, a);
    sandbox->resign_and_sync(sandbox->child_apex());
  }

  // Operational twists observed in the wild (they shape Table 7's
  // instruction mix without adding Table 3 codes).
  if (spec.ksk_missing) {
    // The KSK's files were lost post-rollover: its DNSKEY is gone while
    // the parent DS still references it.
    auto& mz = sandbox->managed(sandbox->child_apex());
    std::vector<std::uint16_t> doomed;
    for (const auto& key : mz.keys.keys()) {
      if (key.role() == zone::KeyRole::kKsk) doomed.push_back(key.tag());
    }
    for (const auto tag : doomed) mz.keys.remove_by_tag(tag);
    sandbox->resign_and_sync(sandbox->child_apex());
  } else if (spec.stale_ds_only) {
    // The registrar kept an old DS and lost the current one: remove every
    // DS that actually validates, leaving only injected/stale ones. DFixer
    // must re-upload from the existing KSK.
    auto& mz = sandbox->managed(sandbox->child_apex());
    for (const auto& key : mz.keys.keys()) {
      if (key.role() == zone::KeyRole::kKsk) {
        sandbox->remove_parent_ds(sandbox->child_apex(), key.tag());
      }
    }
    // A stale DS referencing the pre-rollover key takes its place.
    dns::DsRdata stale;
    stale.key_tag = 1111;
    stale.algorithm =
        static_cast<std::uint8_t>(  // dfx-lint: allow(unchecked-front-back): filled above
            key_specs.front().algorithm);
    stale.digest_type = static_cast<std::uint8_t>(digest);
    stale.digest.assign(crypto::digest_length(digest), 0x5A);
    sandbox->add_parent_ds(sandbox->child_apex(), stale);
  }

  // Inject the intended errors.
  bool all_injected = true;
  for (const auto code : injection_order(spec.intended_errors)) {
    if (code == ErrorCode::kNonzeroIterationCount) continue;  // via config
    // The budget companion materialises from the pairing blowup itself.
    if (code == ErrorCode::kValidatorWorkBudgetExceeded &&
        spec.intended_errors.contains(
            ErrorCode::kExcessiveSignatureValidations)) {
      continue;
    }
    if (spec.unreplicable_variants.contains(code)) {
      all_injected = false;
      if (result.failure_reason.empty()) {
        result.failure_reason =
            "original '" + analyzer::error_code_name(code) +
            "' was a buggy-nameserver variant the local environment refuses "
            "to serve";
      }
      continue;
    }
    if (!inject_error(*sandbox, code)) {
      all_injected = false;
      if (result.failure_reason.empty()) {
        result.failure_reason = "injector could not realise error '" +
                                analyzer::error_code_name(code) + "'";
      }
    }
  }

  // GE: what grok sees on the replica.
  const auto snapshot = sandbox->analyze();
  for (const auto& e : snapshot.errors) result.generated.insert(e.code);
  result.sandbox = std::move(sandbox);
  result.complete =
      all_injected &&
      std::includes(result.generated.begin(), result.generated.end(),
                    spec.intended_errors.begin(), spec.intended_errors.end());
  if (!result.complete && result.failure_reason.empty()) {
    result.failure_reason = "grok did not observe every intended error";
  }
  return result;
}

}  // namespace dfx::zreplicator
