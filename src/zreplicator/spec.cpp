#include "zreplicator/spec.h"

#include "util/strings.h"

namespace dfx::zreplicator {

SnapshotSpec SnapshotSpec::from_snapshot(const analyzer::Snapshot& snapshot) {
  SnapshotSpec spec;
  for (const auto& e : snapshot.errors) {
    if (e.zone == snapshot.query_zone) spec.intended_errors.insert(e.code);
  }
  spec.meta = snapshot.target_meta;
  return spec;
}

std::string combination_key(const std::set<analyzer::ErrorCode>& errors) {
  std::vector<std::string> parts;
  parts.reserve(errors.size());
  for (const auto code : errors) {
    parts.push_back(std::to_string(static_cast<int>(code)));
  }
  return join(parts, ",");
}

}  // namespace dfx::zreplicator
