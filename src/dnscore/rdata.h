// Typed RDATA for every record type the system handles, plus a closed
// variant `Rdata` used by RRsets, the wire codec and the master-file codec.
#pragma once

#include <array>
#include <cstdint>
#include <set>
#include <string>
#include <variant>
#include <vector>

#include "crypto/algorithm.h"
#include "dnscore/name.h"
#include "dnscore/rr.h"
#include "util/bytes.h"
#include "util/simclock.h"

namespace dfx::dns {

struct ARdata {
  std::array<std::uint8_t, 4> address{};

  std::string to_text() const;
  bool operator==(const ARdata&) const = default;
};

struct AaaaRdata {
  std::array<std::uint8_t, 16> address{};

  std::string to_text() const;
  bool operator==(const AaaaRdata&) const = default;
};

struct NsRdata {
  Name nsdname;
  bool operator==(const NsRdata&) const = default;
};

struct CnameRdata {
  Name target;
  bool operator==(const CnameRdata&) const = default;
};

struct SoaRdata {
  Name mname;
  Name rname;
  std::uint32_t serial = 0;
  std::uint32_t refresh = 7200;
  std::uint32_t retry = 3600;
  std::uint32_t expire = 1209600;
  std::uint32_t minimum = 3600;  // negative-caching TTL (RFC 2308)
  bool operator==(const SoaRdata&) const = default;
};

struct MxRdata {
  std::uint16_t preference = 10;
  Name exchange;
  bool operator==(const MxRdata&) const = default;
};

struct TxtRdata {
  std::vector<std::string> strings;
  bool operator==(const TxtRdata&) const = default;
};

struct DnskeyRdata {
  std::uint16_t flags = kDnskeyFlagZone;
  std::uint8_t protocol = 3;  // MUST be 3 (RFC 4034 §2.1.2)
  std::uint8_t algorithm = 0;
  Bytes public_key;

  bool is_zone_key() const { return (flags & kDnskeyFlagZone) != 0; }
  bool is_sep() const { return (flags & kDnskeyFlagSep) != 0; }
  bool is_revoked() const { return (flags & kDnskeyFlagRevoke) != 0; }

  /// RFC 4034 Appendix B key tag over this RDATA's wire form.
  std::uint16_t key_tag() const;

  bool operator==(const DnskeyRdata&) const = default;
};

struct DsRdata {
  std::uint16_t key_tag = 0;
  std::uint8_t algorithm = 0;
  std::uint8_t digest_type = 2;
  Bytes digest;
  bool operator==(const DsRdata&) const = default;
};

struct RrsigRdata {
  RRType type_covered = RRType::kA;
  std::uint8_t algorithm = 0;
  std::uint8_t labels = 0;
  std::uint32_t original_ttl = 0;
  UnixTime expiration = 0;
  UnixTime inception = 0;
  std::uint16_t key_tag = 0;
  Name signer;
  Bytes signature;

  /// RDATA wire form with the signature field left empty — the form that is
  /// actually signed (RFC 4034 §3.1.8.1).
  Bytes to_wire_unsigned() const;

  bool operator==(const RrsigRdata&) const = default;
};

struct NsecRdata {
  Name next;
  std::set<RRType> types;
  bool operator==(const NsecRdata&) const = default;
};

struct Nsec3Rdata {
  std::uint8_t hash_algorithm = 1;  // 1 = SHA-1, the only defined value
  std::uint8_t flags = 0;
  std::uint16_t iterations = 0;
  Bytes salt;
  Bytes next_hashed;  // binary hash of the next owner name in chain order
  std::set<RRType> types;

  bool opt_out() const { return (flags & kNsec3FlagOptOut) != 0; }
  bool operator==(const Nsec3Rdata&) const = default;
};

struct Nsec3ParamRdata {
  std::uint8_t hash_algorithm = 1;
  std::uint8_t flags = 0;
  std::uint16_t iterations = 0;
  Bytes salt;
  bool operator==(const Nsec3ParamRdata&) const = default;
};

/// CDS (RFC 7344): same RDATA layout as DS, published by the *child* to
/// signal the DS set it wants at the parent.
struct CdsRdata {
  DsRdata ds;
  bool operator==(const CdsRdata&) const = default;
};

/// CDNSKEY (RFC 7344): same RDATA layout as DNSKEY.
struct CdnskeyRdata {
  DnskeyRdata dnskey;
  bool operator==(const CdnskeyRdata&) const = default;
};

using Rdata = std::variant<ARdata, AaaaRdata, NsRdata, CnameRdata, SoaRdata,
                           MxRdata, TxtRdata, DnskeyRdata, DsRdata, RrsigRdata,
                           NsecRdata, Nsec3Rdata, Nsec3ParamRdata, CdsRdata,
                           CdnskeyRdata>;

/// The RRType a given Rdata alternative represents.
RRType rdata_type(const Rdata& rdata);

/// Canonical RDATA wire form (embedded names lower-cased, RFC 4034 §6.2).
Bytes rdata_to_wire(const Rdata& rdata);

/// Presentation (zone-file) form of the RDATA fields.
std::string rdata_to_text(const Rdata& rdata);

/// Render an NSEC/NSEC3 type bitmap set as "A NS SOA ..." text.
std::string type_set_to_text(const std::set<RRType>& types);

/// Encode a type set as the NSEC wire bitmap (RFC 4034 §4.1.2).
Bytes encode_type_bitmap(const std::set<RRType>& types);

/// Decode an NSEC wire bitmap.
std::set<RRType> decode_type_bitmap(ByteView data);

}  // namespace dfx::dns
