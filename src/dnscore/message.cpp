#include "dnscore/message.h"

#include "dnscore/wire.h"
#include "util/check.hpp"
#include "util/strings.h"

namespace dfx::dns {
namespace {

/// Writes names with RFC 1035 §4.1.4 compression. Pointers may only target
/// prior occurrences; the table maps the textual suffix to its offset.
class NameCompressor {
 public:
  void write_name(Bytes& out, const Name& name) {
    // Try to find the longest known suffix.
    const auto& labels = name.labels();
    for (std::size_t skip = 0; skip < labels.size(); ++skip) {
      const std::string suffix = suffix_key(name, skip);
      const auto it = table_.find(suffix);
      if (it != table_.end() && it->second < 0x3FFF) {
        // Emit leading labels then a pointer.
        emit_labels(out, name, skip);
        append_u16(out,
                   static_cast<std::uint16_t>(0xC000 | (it->second & 0x3FFF)));
        return;
      }
    }
    // No suffix known: emit everything and remember offsets.
    emit_labels(out, name, labels.size());
    out.push_back(0);
  }

 private:
  static std::string suffix_key(const Name& name, std::size_t skip) {
    const auto& labels = name.labels();
    std::vector<std::string> parts;
    for (std::size_t i = skip; i < labels.size(); ++i) {
      parts.push_back(to_lower(labels[i]));
    }
    return join(parts, ".");
  }

  void emit_labels(Bytes& out, const Name& name, std::size_t count) {
    const auto& labels = name.labels();
    for (std::size_t i = 0; i < count; ++i) {
      const std::size_t offset = out.size();
      if (offset < 0x3FFF) {
        table_.emplace(suffix_key(name, i), offset);
      }
      DFX_DCHECK(labels[i].size() <= 63);
      out.push_back(static_cast<std::uint8_t>(labels[i].size()));
      append(out, as_bytes(labels[i]));
    }
  }

  std::map<std::string, std::size_t> table_;
};

void write_record(Bytes& out, NameCompressor& comp,
                  const ResourceRecord& rr) {
  comp.write_name(out, rr.owner);
  append_u16(out, static_cast<std::uint16_t>(rr.type));
  append_u16(out, static_cast<std::uint16_t>(rr.rrclass));
  append_u32(out, rr.ttl);
  // RDATA embedded names are written uncompressed (required for DNSSEC
  // types, simplest-correct for the rest).
  const Bytes rdata = rdata_to_wire(rr.rdata);
  DFX_DCHECK(rdata.size() <= 0xFFFF);
  append_u16(out, static_cast<std::uint16_t>(rdata.size()));
  append(out, rdata);
}

/// Read the record body (class/ttl/rdata) once owner and type are known.
std::optional<ResourceRecord> read_record_body(WireReader& r, Name owner,
                                               RRType type) {
  ResourceRecord rr;
  rr.owner = std::move(owner);
  rr.type = type;
  rr.rrclass = static_cast<RRClass>(r.read_u16());
  rr.ttl = r.read_u32();
  const std::uint16_t rdlength = r.read_u16();
  const Bytes rdata_wire = r.read_bytes(rdlength);
  if (!r.ok()) return std::nullopt;
  auto rdata = rdata_from_wire(rr.type, rdata_wire);
  if (!rdata) return std::nullopt;
  rr.rdata = *std::move(rdata);
  return rr;
}

/// Decode an OPT record body into EdnsInfo (owner and type already read).
std::optional<EdnsInfo> read_opt_body(WireReader& r, const Name& owner) {
  if (!owner.is_root()) return std::nullopt;  // RFC 6891 §6.1.2
  EdnsInfo edns;
  edns.udp_size = r.read_u16();  // the CLASS field
  const std::uint32_t ttl = r.read_u32();
  edns.ext_rcode = static_cast<std::uint8_t>((ttl >> 24) & 0xFF);
  edns.version = static_cast<std::uint8_t>((ttl >> 16) & 0xFF);
  edns.do_bit = (ttl & 0x8000) != 0;
  const std::uint16_t rdlength = r.read_u16();
  edns.options = r.read_bytes(rdlength);
  if (!r.ok()) return std::nullopt;
  // Options are TLVs: walk them so a truncated TLV is rejected here
  // rather than surviving to confuse a consumer.
  WireReader opts(edns.options);
  DFX_BOUNDED_LOOP(guard, edns.options.size() + 1);
  while (opts.ok() && opts.remaining() > 0) {
    guard.tick();  // each round consumes >= 4 octets
    opts.read_u16();  // OPTION-CODE
    const std::uint16_t olen = opts.read_u16();
    opts.read_bytes(olen);
  }
  if (!opts.ok()) return std::nullopt;
  return edns;
}

void write_opt(Bytes& out, const EdnsInfo& edns) {
  out.push_back(0);  // root owner
  append_u16(out, kOptType);
  append_u16(out, edns.udp_size);
  const std::uint32_t ttl = (static_cast<std::uint32_t>(edns.ext_rcode) << 24) |
                            (static_cast<std::uint32_t>(edns.version) << 16) |
                            (edns.do_bit ? 0x8000u : 0u);
  append_u32(out, ttl);
  DFX_DCHECK(edns.options.size() <= 0xFFFF);
  append_u16(out, static_cast<std::uint16_t>(edns.options.size()));
  append(out, edns.options);
}

}  // namespace

Bytes encode_message(const Message& msg) {
  Bytes out;
  append_u16(out, msg.header.id);
  std::uint16_t flags = 0;
  if (msg.header.qr) flags |= 0x8000;
  flags |= static_cast<std::uint16_t>((msg.header.opcode & 0xF) << 11);
  if (msg.header.aa) flags |= 0x0400;
  if (msg.header.tc) flags |= 0x0200;
  if (msg.header.rd) flags |= 0x0100;
  if (msg.header.ra) flags |= 0x0080;
  if (msg.header.ad) flags |= 0x0020;
  if (msg.header.cd) flags |= 0x0010;
  flags |= static_cast<std::uint16_t>(msg.header.rcode) & 0xF;
  append_u16(out, flags);
  const std::size_t arcount =
      msg.additionals.size() + (msg.edns.has_value() ? 1 : 0);
  DFX_DCHECK(msg.questions.size() <= 0xFFFF && msg.answers.size() <= 0xFFFF &&
             msg.authorities.size() <= 0xFFFF && arcount <= 0xFFFF);
  append_u16(out, static_cast<std::uint16_t>(msg.questions.size()));
  append_u16(out, static_cast<std::uint16_t>(msg.answers.size()));
  append_u16(out, static_cast<std::uint16_t>(msg.authorities.size()));
  append_u16(out, static_cast<std::uint16_t>(arcount));

  NameCompressor comp;
  for (const auto& q : msg.questions) {
    comp.write_name(out, q.qname);
    append_u16(out, static_cast<std::uint16_t>(q.qtype));
    append_u16(out, static_cast<std::uint16_t>(q.qclass));
  }
  for (const auto& rr : msg.answers) write_record(out, comp, rr);
  for (const auto& rr : msg.authorities) write_record(out, comp, rr);
  for (const auto& rr : msg.additionals) write_record(out, comp, rr);
  if (msg.edns) write_opt(out, *msg.edns);
  return out;
}

std::optional<Message> decode_message(ByteView wire) {
  WireReader r(wire);
  Message msg;
  msg.header.id = r.read_u16();
  const std::uint16_t flags = r.read_u16();
  if (!r.ok()) return std::nullopt;
  msg.header.qr = (flags & 0x8000) != 0;
  msg.header.opcode = static_cast<std::uint8_t>((flags >> 11) & 0xF);
  msg.header.aa = (flags & 0x0400) != 0;
  msg.header.tc = (flags & 0x0200) != 0;
  msg.header.rd = (flags & 0x0100) != 0;
  msg.header.ra = (flags & 0x0080) != 0;
  msg.header.ad = (flags & 0x0020) != 0;
  msg.header.cd = (flags & 0x0010) != 0;
  msg.header.rcode = static_cast<RCode>(flags & 0xF);
  const std::uint16_t qd = r.read_u16();
  const std::uint16_t an = r.read_u16();
  const std::uint16_t ns = r.read_u16();
  const std::uint16_t ar = r.read_u16();
  if (!r.ok()) return std::nullopt;
  // The counts are attacker data. A question costs at least 5 wire bytes
  // (root name + type + class) and a record at least 11 (+ TTL + RDLENGTH),
  // so counts that cannot possibly fit in the remaining bytes are malformed
  // — rejecting them here bounds every section loop below before a single
  // name is parsed (KeyTrap-style count inflation).
  if (5u * qd + 11u * (static_cast<std::size_t>(an) + ns + ar) >
      r.remaining()) {
    return std::nullopt;
  }
  for (int i = 0; i < qd; ++i) {
    Question q;
    auto qname = r.read_name();
    if (!qname) return std::nullopt;
    q.qname = *std::move(qname);
    q.qtype = static_cast<RRType>(r.read_u16());
    q.qclass = static_cast<RRClass>(r.read_u16());
    if (!r.ok()) return std::nullopt;
    msg.questions.push_back(std::move(q));
  }
  const auto read_section = [&](int count,
                                std::vector<ResourceRecord>& section,
                                bool allow_opt) {
    for (int i = 0; i < count; ++i) {
      auto owner = r.read_name();
      if (!owner) return false;
      const std::uint16_t type = r.read_u16();
      if (!r.ok()) return false;
      if (allow_opt && type == kOptType) {
        if (msg.edns.has_value()) return false;  // RFC 6891 §6.1.1
        auto edns = read_opt_body(r, *owner);
        if (!edns) return false;
        msg.edns = *std::move(edns);
        continue;
      }
      auto rr = read_record_body(r, *std::move(owner),
                                 static_cast<RRType>(type));
      if (!rr) return false;
      section.push_back(*std::move(rr));
    }
    return true;
  };
  if (!read_section(an, msg.answers, false)) return std::nullopt;
  if (!read_section(ns, msg.authorities, false)) return std::nullopt;
  if (!read_section(ar, msg.additionals, true)) return std::nullopt;
  // A message followed by trailing bytes is malformed: nothing in DNS is
  // allowed after the last counted record, and accepting junk here would
  // let decode(encode(decode(x))) disagree with decode(x).
  if (r.remaining() != 0) return std::nullopt;
  return msg;
}

}  // namespace dfx::dns
