#include "dnscore/message.h"

#include <cctype>
#include <memory>

#include "dnscore/wire.h"
#include "util/check.hpp"

namespace dfx::dns {
namespace {

inline std::uint8_t fold(char c) {
  return static_cast<std::uint8_t>(
      std::tolower(static_cast<unsigned char>(c)) & 0xFF);
}

constexpr std::uint64_t kFnvBasis = 0xCBF29CE484222325ULL;
constexpr std::uint64_t kFnvPrime = 0x100000001B3ULL;

std::uint64_t label_hash(std::string_view label) {
  std::uint64_t h = kFnvBasis;
  for (const char c : label) {
    h ^= fold(c);
    h *= kFnvPrime;
  }
  return h;
}

/// Writes names with RFC 1035 §4.1.4 compression. Pointers may only target
/// prior occurrences of a (case-folded) suffix.
///
/// The table is an open-addressed map of (suffix hash, message offset).
/// Suffix hashes are computed right-to-left in one pass over the name, so a
/// full write_name is O(name bytes) plus O(1) probes per label — the
/// previous implementation joined every suffix into a fresh std::string key
/// per lookup, which was quadratic per name and dominated encode profiles.
/// Hash hits are verified by walking the already-emitted output bytes
/// (following pointers), so collisions cannot corrupt the output; the
/// emitted bytes are identical to the old map-based compressor's
/// (pinned by a regression test).
class NameCompressor {
 public:
  /// `base` is the index in the output buffer where the DNS message starts;
  /// compression offsets are relative to it (encode_message writes into an
  /// empty buffer, so base 0; reencode_message appends to a caller buffer).
  explicit NameCompressor(std::size_t base = 0) : base_(base) {}

  void write_name(Bytes& out, const Name& name) {
    const auto& labels = name.labels();
    DFX_CHECK(labels.size() <= kMaxNamePieces, "name of %zu labels",
              labels.size());
    std::string_view pieces[kMaxNamePieces];
    for (std::size_t i = 0; i < labels.size(); ++i) pieces[i] = labels[i];
    write_name(out, pieces, labels.size());
  }

  /// Piece-level entry point, shared with the zero-copy re-encoder.
  void write_name(Bytes& out, const std::string_view* labels, std::size_t n) {
    DFX_CHECK(n <= kMaxNamePieces, "name of %zu labels", n);
    std::uint64_t suffix_hash[kMaxNamePieces + 1];
    suffix_hash[n] = kFnvBasis;
    for (std::size_t i = n; i-- > 0;) {
      suffix_hash[i] = (suffix_hash[i + 1] ^ label_hash(labels[i])) * kFnvPrime;
    }
    // Longest known suffix wins: scan skip counts upward, stop at the
    // first (longest) registered suffix.
    std::size_t skip = 0;
    std::uint32_t pointer = 0;
    bool found = false;
    for (; skip < n; ++skip) {
      if (const auto off =
              lookup(out, suffix_hash[skip], labels + skip, n - skip)) {
        pointer = *off;
        found = true;
        break;
      }
    }
    // Emit the labels before the pointer (or all of them), registering
    // each emitted label's suffix for later names. First occurrence wins,
    // and only offsets representable in a 14-bit pointer are remembered.
    for (std::size_t i = 0; i < skip; ++i) {
      const std::size_t offset = out.size() - base_;
      if (offset < 0x3FFF) {
        insert_if_absent(out, suffix_hash[i], labels + i, n - i,
                         static_cast<std::uint32_t>(offset));
      }
      DFX_DCHECK(labels[i].size() <= 63);
      out.push_back(static_cast<std::uint8_t>(labels[i].size()));
      append(out, as_bytes(labels[i]));
    }
    if (found) {
      append_u16(out, static_cast<std::uint16_t>(0xC000 | (pointer & 0x3FFF)));
    } else {
      out.push_back(0);
    }
  }

 private:
  static constexpr std::uint32_t kEmptySlot = 0xFFFFFFFFu;

  struct Slot {
    std::uint64_t hash = 0;
    std::uint32_t offset = kEmptySlot;
  };

  /// True if the name chain emitted at message offset `offset` spells the
  /// given label sequence (case-folded). Follows compression pointers; the
  /// walked bytes were all written by this compressor, so the chain is
  /// well-formed by construction.
  bool suffix_at(const Bytes& out, std::uint32_t offset,
                 const std::string_view* labels, std::size_t n) const {
    std::size_t pos = base_ + offset;
    std::size_t idx = 0;
    DFX_BOUNDED_LOOP(guard, out.size() + 2);
    while (true) {
      guard.tick();
      DFX_DCHECK(pos < out.size());
      const std::uint8_t len = out[pos];
      if (len == 0) return idx == n;
      if ((len & 0xC0) == 0xC0) {
        DFX_DCHECK(pos + 1 < out.size());
        pos = base_ +
              (((static_cast<std::size_t>(len) & 0x3F) << 8) | out[pos + 1]);
        continue;
      }
      if (idx >= n || labels[idx].size() != len) return false;
      DFX_DCHECK(pos + 1 + len <= out.size());
      for (std::size_t i = 0; i < len; ++i) {
        if (fold(static_cast<char>(out[pos + 1 + i])) != fold(labels[idx][i])) {
          return false;
        }
      }
      ++idx;
      pos += 1 + static_cast<std::size_t>(len);
    }
  }

  std::optional<std::uint32_t> lookup(const Bytes& out, std::uint64_t hash,
                                      const std::string_view* labels,
                                      std::size_t n) const {
    if (count_ == 0) return std::nullopt;
    std::size_t i = hash & mask_;
    DFX_BOUNDED_LOOP(guard, slots_.size() + 1);
    while (slots_[i].offset != kEmptySlot) {
      guard.tick();
      if (slots_[i].hash == hash && suffix_at(out, slots_[i].offset, labels, n)) {
        return slots_[i].offset;
      }
      i = (i + 1) & mask_;
    }
    return std::nullopt;
  }

  void insert_if_absent(const Bytes& out, std::uint64_t hash,
                        const std::string_view* labels, std::size_t n,
                        std::uint32_t offset) {
    if ((count_ + 1) * 4 >= slots_.size() * 3) grow();
    std::size_t i = hash & mask_;
    DFX_BOUNDED_LOOP(guard, slots_.size() + 1);
    while (slots_[i].offset != kEmptySlot) {
      guard.tick();
      if (slots_[i].hash == hash && suffix_at(out, slots_[i].offset, labels, n)) {
        return;  // first occurrence wins, like the old map's emplace
      }
      i = (i + 1) & mask_;
    }
    slots_[i] = Slot{hash, offset};
    ++count_;
  }

  void grow() {
    std::vector<Slot> old = std::move(slots_);
    slots_.assign(old.size() * 2, Slot{});
    mask_ = slots_.size() - 1;
    for (const Slot& s : old) {
      if (s.offset == kEmptySlot) continue;
      std::size_t i = s.hash & mask_;
      DFX_BOUNDED_LOOP(guard, slots_.size() + 1);
      while (slots_[i].offset != kEmptySlot) {
        guard.tick();
        i = (i + 1) & mask_;
      }
      slots_[i] = s;
    }
  }

  std::size_t base_;
  std::vector<Slot> slots_ = std::vector<Slot>(64);
  std::size_t mask_ = 63;
  std::size_t count_ = 0;
};

void write_record(Bytes& out, NameCompressor& comp,
                  const ResourceRecord& rr) {
  comp.write_name(out, rr.owner);
  append_u16(out, static_cast<std::uint16_t>(rr.type));
  append_u16(out, static_cast<std::uint16_t>(rr.rrclass));
  append_u32(out, rr.ttl);
  // RDATA embedded names are written uncompressed (required for DNSSEC
  // types, simplest-correct for the rest).
  const Bytes rdata = rdata_to_wire(rr.rdata);
  DFX_DCHECK(rdata.size() <= 0xFFFF);
  append_u16(out, static_cast<std::uint16_t>(rdata.size()));
  append(out, rdata);
}

/// Read the record body (class/ttl/rdata) once owner and type are known.
std::optional<ResourceRecord> read_record_body(WireReader& r, Name owner,
                                               RRType type) {
  ResourceRecord rr;
  rr.owner = std::move(owner);
  rr.type = type;
  rr.rrclass = static_cast<RRClass>(r.read_u16());
  rr.ttl = r.read_u32();
  const std::uint16_t rdlength = r.read_u16();
  const ByteView rdata_wire = r.read_view(rdlength);
  if (!r.ok()) return std::nullopt;
  auto rdata = rdata_from_wire(rr.type, rdata_wire);
  if (!rdata) return std::nullopt;
  rr.rdata = *std::move(rdata);
  return rr;
}

/// Decode an OPT record body (owner and type already read; root owner
/// already checked per RFC 6891 §6.1.2). Shared by the owned and the view
/// parse path — `options` aliases the packet buffer.
std::optional<EdnsView> read_opt_body(WireReader& r) {
  EdnsView edns;
  edns.udp_size = r.read_u16();  // the CLASS field
  const std::uint32_t ttl = r.read_u32();
  edns.ext_rcode = static_cast<std::uint8_t>((ttl >> 24) & 0xFF);
  edns.version = static_cast<std::uint8_t>((ttl >> 16) & 0xFF);
  edns.do_bit = (ttl & 0x8000) != 0;
  const std::uint16_t rdlength = r.read_u16();
  edns.options = r.read_view(rdlength);
  if (!r.ok()) return std::nullopt;
  // Options are TLVs: walk them so a truncated TLV is rejected here
  // rather than surviving to confuse a consumer.
  WireReader opts(edns.options);
  DFX_BOUNDED_LOOP(guard, edns.options.size() + 1);
  while (opts.ok() && opts.remaining() > 0) {
    guard.tick();     // each round consumes >= 4 octets
    opts.read_u16();  // OPTION-CODE
    const std::uint16_t olen = opts.read_u16();
    opts.read_view(olen);
  }
  if (!opts.ok()) return std::nullopt;
  return edns;
}

template <typename Edns>  // EdnsInfo or EdnsView (same field names)
void write_opt(Bytes& out, const Edns& edns) {
  out.push_back(0);  // root owner
  append_u16(out, kOptType);
  append_u16(out, edns.udp_size);
  const std::uint32_t ttl = (static_cast<std::uint32_t>(edns.ext_rcode) << 24) |
                            (static_cast<std::uint32_t>(edns.version) << 16) |
                            (edns.do_bit ? 0x8000u : 0u);
  append_u32(out, ttl);
  DFX_DCHECK(edns.options.size() <= 0xFFFF);
  append_u16(out, static_cast<std::uint16_t>(edns.options.size()));
  append(out, edns.options);
}

}  // namespace

Bytes encode_message(const Message& msg) {
  Bytes out;
  append_u16(out, msg.header.id);
  std::uint16_t flags = 0;
  if (msg.header.qr) flags |= 0x8000;
  flags |= static_cast<std::uint16_t>((msg.header.opcode & 0xF) << 11);
  if (msg.header.aa) flags |= 0x0400;
  if (msg.header.tc) flags |= 0x0200;
  if (msg.header.rd) flags |= 0x0100;
  if (msg.header.ra) flags |= 0x0080;
  if (msg.header.ad) flags |= 0x0020;
  if (msg.header.cd) flags |= 0x0010;
  flags |= static_cast<std::uint16_t>(msg.header.rcode) & 0xF;
  append_u16(out, flags);
  const std::size_t arcount =
      msg.additionals.size() + (msg.edns.has_value() ? 1 : 0);
  DFX_DCHECK(msg.questions.size() <= 0xFFFF && msg.answers.size() <= 0xFFFF &&
             msg.authorities.size() <= 0xFFFF && arcount <= 0xFFFF);
  append_u16(out, static_cast<std::uint16_t>(msg.questions.size()));
  append_u16(out, static_cast<std::uint16_t>(msg.answers.size()));
  append_u16(out, static_cast<std::uint16_t>(msg.authorities.size()));
  append_u16(out, static_cast<std::uint16_t>(arcount));

  NameCompressor comp;
  for (const auto& q : msg.questions) {
    comp.write_name(out, q.qname);
    append_u16(out, static_cast<std::uint16_t>(q.qtype));
    append_u16(out, static_cast<std::uint16_t>(q.qclass));
  }
  for (const auto& rr : msg.answers) write_record(out, comp, rr);
  for (const auto& rr : msg.authorities) write_record(out, comp, rr);
  for (const auto& rr : msg.additionals) write_record(out, comp, rr);
  if (msg.edns) write_opt(out, *msg.edns);
  return out;
}

std::optional<Message> decode_message(ByteView wire) {
  WireReader r(wire);
  Message msg;
  msg.header.id = r.read_u16();
  const std::uint16_t flags = r.read_u16();
  if (!r.ok()) return std::nullopt;
  msg.header.qr = (flags & 0x8000) != 0;
  msg.header.opcode = static_cast<std::uint8_t>((flags >> 11) & 0xF);
  msg.header.aa = (flags & 0x0400) != 0;
  msg.header.tc = (flags & 0x0200) != 0;
  msg.header.rd = (flags & 0x0100) != 0;
  msg.header.ra = (flags & 0x0080) != 0;
  msg.header.ad = (flags & 0x0020) != 0;
  msg.header.cd = (flags & 0x0010) != 0;
  msg.header.rcode = static_cast<RCode>(flags & 0xF);
  const std::uint16_t qd = r.read_u16();
  const std::uint16_t an = r.read_u16();
  const std::uint16_t ns = r.read_u16();
  const std::uint16_t ar = r.read_u16();
  if (!r.ok()) return std::nullopt;
  // The counts are attacker data. A question costs at least 5 wire bytes
  // (root name + type + class) and a record at least 11 (+ TTL + RDLENGTH),
  // so counts that cannot possibly fit in the remaining bytes are malformed
  // — rejecting them here bounds every section loop below before a single
  // name is parsed (KeyTrap-style count inflation).
  if (5u * qd + 11u * (static_cast<std::size_t>(an) + ns + ar) >
      r.remaining()) {
    return std::nullopt;
  }
  for (int i = 0; i < qd; ++i) {
    Question q;
    auto qname = r.read_name();
    if (!qname) return std::nullopt;
    q.qname = *std::move(qname);
    q.qtype = static_cast<RRType>(r.read_u16());
    q.qclass = static_cast<RRClass>(r.read_u16());
    if (!r.ok()) return std::nullopt;
    msg.questions.push_back(std::move(q));
  }
  const auto read_section = [&](int count,
                                std::vector<ResourceRecord>& section,
                                bool allow_opt) {
    for (int i = 0; i < count; ++i) {
      auto owner = r.read_name();
      if (!owner) return false;
      const std::uint16_t type = r.read_u16();
      if (!r.ok()) return false;
      if (allow_opt && type == kOptType) {
        if (msg.edns.has_value()) return false;   // RFC 6891 §6.1.1
        if (!owner->is_root()) return false;      // RFC 6891 §6.1.2
        auto edns = read_opt_body(r);
        if (!edns) return false;
        EdnsInfo info;
        info.udp_size = edns->udp_size;
        info.ext_rcode = edns->ext_rcode;
        info.version = edns->version;
        info.do_bit = edns->do_bit;
        info.options = Bytes(edns->options.begin(), edns->options.end());
        msg.edns = std::move(info);
        continue;
      }
      auto rr = read_record_body(r, *std::move(owner),
                                 static_cast<RRType>(type));
      if (!rr) return false;
      section.push_back(*std::move(rr));
    }
    return true;
  };
  if (!read_section(an, msg.answers, false)) return std::nullopt;
  if (!read_section(ns, msg.authorities, false)) return std::nullopt;
  if (!read_section(ar, msg.additionals, true)) return std::nullopt;
  // A message followed by trailing bytes is malformed: nothing in DNS is
  // allowed after the last counted record, and accepting junk here would
  // let decode(encode(decode(x))) disagree with decode(x).
  if (r.remaining() != 0) return std::nullopt;
  return msg;
}

std::optional<MessageView> parse_message_view(ByteView wire,
                                              WireArena& arena) {
  WireReader r(wire);
  MessageView mv;
  mv.id = r.read_u16();
  mv.flags = r.read_u16();
  const std::uint16_t qd = r.read_u16();
  const std::uint16_t an = r.read_u16();
  const std::uint16_t ns = r.read_u16();
  const std::uint16_t ar = r.read_u16();
  if (!r.ok()) return std::nullopt;
  // Same KeyTrap count precheck as decode_message.
  if (5u * qd + 11u * (static_cast<std::size_t>(an) + ns + ar) >
      r.remaining()) {
    return std::nullopt;
  }
  const auto questions = arena.alloc_array<QuestionView>(qd);
  for (std::size_t i = 0; i < qd; ++i) {
    const auto qname = r.read_name_views(arena);
    if (!qname) return std::nullopt;
    const std::uint16_t qtype = r.read_u16();
    const std::uint16_t qclass = r.read_u16();
    if (!r.ok()) return std::nullopt;
    std::construct_at(&questions[i], QuestionView{*qname, qtype, qclass});
  }
  mv.questions = {questions.data(), questions.size()};
  const auto read_section =
      [&](std::uint16_t count, bool allow_opt,
          std::span<const RecordView>& section) -> bool {
    const auto records = arena.alloc_array<RecordView>(count);
    std::size_t n = 0;
    for (std::size_t i = 0; i < count; ++i) {
      const auto owner = r.read_name_views(arena);
      if (!owner) return false;
      const std::uint16_t type = r.read_u16();
      if (!r.ok()) return false;
      if (allow_opt && type == kOptType) {
        if (mv.edns.has_value()) return false;  // RFC 6891 §6.1.1
        if (!owner->empty()) return false;      // RFC 6891 §6.1.2
        auto edns = read_opt_body(r);
        if (!edns) return false;
        mv.edns = *edns;
        continue;
      }
      RecordView rr;
      rr.owner = *owner;
      rr.type = type;
      rr.rrclass = r.read_u16();
      rr.ttl = r.read_u32();
      const std::uint16_t rdlength = r.read_u16();
      rr.rdata = r.read_view(rdlength);
      if (!r.ok()) return false;
      std::construct_at(&records[n++], rr);
    }
    section = {records.data(), n};
    return true;
  };
  if (!read_section(an, false, mv.answers)) return std::nullopt;
  if (!read_section(ns, false, mv.authorities)) return std::nullopt;
  if (!read_section(ar, true, mv.additionals)) return std::nullopt;
  if (r.remaining() != 0) return std::nullopt;  // trailing bytes
  return mv;
}

// The appended bytes ARE the product; `out` is caller-reused across
// packets, so growth amortizes to zero in the bench loop.
// dfx-lint: allow(hot-path-cost): unavoidable output-buffer growth.
bool reencode_message(ByteView wire, WireArena& arena, Bytes& out) {
  const std::size_t mark = out.size();
  const auto mv = parse_message_view(wire, arena);
  if (!mv) return false;
  append_u16(out, mv->id);
  // The Z bit (0x0040) is the only flag decode_message drops; everything
  // else round-trips bit-for-bit through the Header booleans.
  append_u16(out, mv->flags & 0xFFBF);
  const std::size_t arcount =
      mv->additionals.size() + (mv->edns.has_value() ? 1 : 0);
  // Section sizes are bounded by the header counts (u16) the parser read.
  DFX_DCHECK(mv->questions.size() <= 0xFFFF && mv->answers.size() <= 0xFFFF &&
             mv->authorities.size() <= 0xFFFF && arcount <= 0xFFFF);
  append_u16(out, static_cast<std::uint16_t>(mv->questions.size()));
  append_u16(out, static_cast<std::uint16_t>(mv->answers.size()));
  append_u16(out, static_cast<std::uint16_t>(mv->authorities.size()));
  append_u16(out, static_cast<std::uint16_t>(arcount));
  NameCompressor comp(mark);
  for (const auto& q : mv->questions) {
    comp.write_name(out, q.qname.data(), q.qname.size());
    append_u16(out, q.qtype);
    append_u16(out, q.qclass);
  }
  const auto write_rr = [&](const RecordView& rr) -> bool {
    comp.write_name(out, rr.owner.data(), rr.owner.size());
    append_u16(out, rr.type);
    append_u16(out, rr.rrclass);
    append_u32(out, rr.ttl);
    const std::size_t len_pos = out.size();
    append_u16(out, 0);  // RDLENGTH, patched below
    if (!reencode_rdata(rr.type, rr.rdata, out)) return false;
    const std::size_t rdlen = out.size() - len_pos - 2;
    DFX_DCHECK(rdlen <= 0xFFFF);
    out[len_pos] = static_cast<std::uint8_t>(rdlen >> 8);
    out[len_pos + 1] = static_cast<std::uint8_t>(rdlen & 0xFF);
    return true;
  };
  for (const auto section : {mv->answers, mv->authorities, mv->additionals}) {
    for (const auto& rr : section) {
      if (!write_rr(rr)) {
        DFX_DCHECK(mark <= out.size());
        out.resize(mark);  // leave `out` untouched on failure
        return false;
      }
    }
  }
  if (mv->edns) write_opt(out, *mv->edns);
  return true;
}

}  // namespace dfx::dns
