// DNS domain names: labels, wire form, presentation form and the canonical
// ordering DNSSEC depends on (RFC 4034 §6.1).
#pragma once

#include <compare>
#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "util/bytes.h"

namespace dfx::dns {

/// An absolute DNS name. Stored as a sequence of labels, root == no labels.
/// Label case is preserved for display, but all comparisons, hashing and
/// wire canonicalisation are case-insensitive per RFC 1035 / 4034.
class Name {
 public:
  /// The root name ".".
  Name() = default;

  /// Parse presentation form; a trailing dot is optional (names are always
  /// treated as absolute). Returns nullopt for malformed names (empty
  /// labels, labels > 63 octets, total wire length > 255).
  [[nodiscard]] static std::optional<Name> parse(std::string_view text);

  /// Parse, throwing std::invalid_argument (for literals in tests/tools).
  static Name of(std::string_view text);

  /// Build a Name from label pieces the caller has already validated
  /// against the `parse()` rules (non-empty, <= 63 octets, no whitespace or
  /// control characters, total wire length <= 255). This is the wire
  /// layer's allocation-lean path: `WireReader::read_name` validates label
  /// pieces during its zero-copy scan and hands them here, skipping the
  /// text round-trip `parse()` would cost. Validity is DFX_DCHECK-asserted,
  /// not re-checked in release builds — never feed it unvalidated input.
  static Name from_validated_pieces(std::span<const std::string_view> pieces);

  static Name root() { return {}; }

  bool is_root() const { return labels_.empty(); }
  std::size_t label_count() const { return labels_.size(); }
  const std::vector<std::string>& labels() const { return labels_; }

  /// Leftmost (most specific) label; empty string for root.
  std::string leftmost_label() const;

  /// The name with the leftmost label removed. Parent of root is root.
  Name parent() const;

  /// New name with `label` prepended (child of this name).
  Name child(std::string_view label) const;

  /// True if *this equals `ancestor` or lies underneath it.
  bool is_subdomain_of(const Name& ancestor) const;

  /// Labels in common with `other`, counted from the root.
  Name common_ancestor(const Name& other) const;

  /// Uncompressed wire form, original case.
  Bytes to_wire() const;

  /// Canonical wire form: lower-case, uncompressed (RFC 4034 §6.2).
  Bytes to_canonical_wire() const;

  /// Presentation form with trailing dot; root renders as ".".
  std::string to_string() const;

  /// Wire length (sum of labels + length octets + terminal zero).
  std::size_t wire_length() const;

  /// Case-insensitive equality.
  bool operator==(const Name& other) const;
  bool operator!=(const Name& other) const { return !(*this == other); }

  /// Canonical DNSSEC ordering (RFC 4034 §6.1): names sorted by reversed
  /// label sequence, labels compared as case-folded octet strings.
  std::strong_ordering operator<=>(const Name& other) const;

  /// Strict weak order usable as a std::map comparator.
  struct Less {
    bool operator()(const Name& a, const Name& b) const { return a < b; }
  };

 private:
  std::vector<std::string> labels_;  // most-specific first
};

/// Case-folded FNV hash, consistent with Name equality.
struct NameHash {
  std::size_t operator()(const Name& n) const;
};

}  // namespace dfx::dns
