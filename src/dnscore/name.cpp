#include "dnscore/name.h"

#include <algorithm>
#include <cctype>
#include <cstdint>
#include <stdexcept>

#include "util/check.hpp"

namespace dfx::dns {
namespace {

std::uint8_t fold(char c) {
  // tolower returns the folded byte as an int; the mask keeps the
  // narrowing cast visibly value-preserving.
  return static_cast<std::uint8_t>(
      std::tolower(static_cast<unsigned char>(c)) & 0xFF);
}

int compare_labels_folded(const std::string& a, const std::string& b) {
  const std::size_t n = std::min(a.size(), b.size());
  for (std::size_t i = 0; i < n; ++i) {
    const std::uint8_t ca = fold(a[i]);
    const std::uint8_t cb = fold(b[i]);
    if (ca != cb) return ca < cb ? -1 : 1;
  }
  if (a.size() != b.size()) return a.size() < b.size() ? -1 : 1;
  return 0;
}

}  // namespace

std::optional<Name> Name::parse(std::string_view text) {
  Name out;
  if (text.empty()) return std::nullopt;
  if (text == ".") return out;
  if (text.back() == '.') text.remove_suffix(1);
  if (text.empty()) return std::nullopt;

  std::size_t start = 0;
  std::size_t total = 1;  // terminal zero octet
  while (start <= text.size()) {
    const std::size_t dot = text.find('.', start);
    const std::string_view label = dot == std::string_view::npos
                                       ? text.substr(start)
                                       : text.substr(start, dot - start);
    if (label.empty() || label.size() > 63) return std::nullopt;
    for (char c : label) {
      // Reject whitespace and control characters; everything else is legal
      // in DNS (hostnames are a stricter, separate notion).
      if (std::isspace(static_cast<unsigned char>(c)) != 0 ||
          static_cast<unsigned char>(c) < 0x21) {
        return std::nullopt;
      }
    }
    total += label.size() + 1;
    out.labels_.emplace_back(label);
    if (dot == std::string_view::npos) break;
    start = dot + 1;
  }
  if (total > 255) return std::nullopt;
  return out;
}

Name Name::from_validated_pieces(std::span<const std::string_view> pieces) {
  Name out;
  out.labels_.reserve(pieces.size());
  std::size_t total = 1;
  for (const std::string_view piece : pieces) {
    DFX_DCHECK(!piece.empty() && piece.size() <= 63);
    total += piece.size() + 1;
    out.labels_.emplace_back(piece);
  }
  DFX_DCHECK(total <= 255);
  (void)total;
  return out;
}

Name Name::of(std::string_view text) {
  auto parsed = parse(text);
  if (!parsed) {
    throw std::invalid_argument("Name::of: malformed name '" +
                                std::string(text) + "'");
  }
  return *std::move(parsed);
}

std::string Name::leftmost_label() const {
  return labels_.empty() ? std::string() : labels_.front();
}

Name Name::parent() const {
  Name out;
  if (labels_.size() <= 1) return out;
  out.labels_.assign(labels_.begin() + 1, labels_.end());
  return out;
}

Name Name::child(std::string_view label) const {
  // parse() enforces RFC 1035 label bounds; child() builds names directly,
  // so an oversized label here would be silently truncated at wire time.
  DFX_CHECK(!label.empty() && label.size() <= 63,
            "child label of %zu octets", label.size());
  Name out;
  out.labels_.reserve(labels_.size() + 1);
  out.labels_.emplace_back(label);
  out.labels_.insert(out.labels_.end(), labels_.begin(), labels_.end());
  return out;
}

bool Name::is_subdomain_of(const Name& ancestor) const {
  if (ancestor.labels_.size() > labels_.size()) return false;
  const std::size_t offset = labels_.size() - ancestor.labels_.size();
  for (std::size_t i = 0; i < ancestor.labels_.size(); ++i) {
    if (compare_labels_folded(labels_[offset + i], ancestor.labels_[i]) != 0) {
      return false;
    }
  }
  return true;
}

Name Name::common_ancestor(const Name& other) const {
  // `other` may be an NSEC next name straight off the wire (negative-cache
  // synthesis); parse() caps any name at 127 labels, re-asserted here since
  // the label counts below drive the suffix walk.
  DFX_DCHECK(other.label_count() <= 127);
  Name out;
  std::size_t i = labels_.size();
  std::size_t j = other.labels_.size();
  std::vector<std::string> shared;
  // Both operands may carry wire-derived label counts (NSEC next names in
  // the negative cache); RFC 1035 caps a name at 127 labels, so the walk is
  // bounded independent of either input.
  DFX_BOUNDED_LOOP(guard, 128);
  while (i > 0 && j > 0 &&
         compare_labels_folded(labels_[i - 1], other.labels_[j - 1]) == 0) {
    guard.tick();
    shared.push_back(labels_[i - 1]);
    --i;
    --j;
  }
  std::reverse(shared.begin(), shared.end());
  out.labels_ = std::move(shared);
  return out;
}

Bytes Name::to_wire() const {
  Bytes out;
  out.reserve(wire_length());
  for (const auto& label : labels_) {
    DFX_DCHECK(label.size() <= 63);
    out.push_back(static_cast<std::uint8_t>(label.size()));
    append(out, as_bytes(label));
  }
  out.push_back(0);
  return out;
}

Bytes Name::to_canonical_wire() const {
  Bytes out;
  out.reserve(wire_length());
  for (const auto& label : labels_) {
    DFX_DCHECK(label.size() <= 63);
    out.push_back(static_cast<std::uint8_t>(label.size()));
    for (char c : label) out.push_back(fold(c));
  }
  out.push_back(0);
  return out;
}

std::string Name::to_string() const {
  if (labels_.empty()) return ".";
  std::string out;
  for (const auto& label : labels_) {
    out += label;
    out.push_back('.');
  }
  return out;
}

std::size_t Name::wire_length() const {
  std::size_t total = 1;
  for (const auto& label : labels_) total += label.size() + 1;
  return total;
}

bool Name::operator==(const Name& other) const {
  if (labels_.size() != other.labels_.size()) return false;
  for (std::size_t i = 0; i < labels_.size(); ++i) {
    if (compare_labels_folded(labels_[i], other.labels_[i]) != 0) return false;
  }
  return true;
}

std::strong_ordering Name::operator<=>(const Name& other) const {
  // RFC 4034 §6.1: compare right-most labels first.
  std::size_t i = labels_.size();
  std::size_t j = other.labels_.size();
  while (i > 0 && j > 0) {
    const int c = compare_labels_folded(labels_[i - 1], other.labels_[j - 1]);
    if (c != 0) {
      return c < 0 ? std::strong_ordering::less : std::strong_ordering::greater;
    }
    --i;
    --j;
  }
  if (i == j) return std::strong_ordering::equal;
  return i < j ? std::strong_ordering::less : std::strong_ordering::greater;
}

std::size_t NameHash::operator()(const Name& n) const {
  std::size_t h = 0xCBF29CE484222325ULL;
  for (const auto& label : n.labels()) {
    for (char c : label) {
      h ^= static_cast<std::size_t>(
          std::tolower(static_cast<unsigned char>(c)));
      h *= 0x100000001B3ULL;
    }
    h ^= 0xFF;  // label boundary
    h *= 0x100000001B3ULL;
  }
  return h;
}

}  // namespace dfx::dns
