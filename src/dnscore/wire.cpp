#include "dnscore/wire.h"

#include "util/check.hpp"

namespace dfx::dns {
namespace {

// A wire name chain visits at most 127 labels and 64 compression jumps;
// anything past that is a malformed or adversarial message.
constexpr std::size_t kMaxNameJumps = 64;
constexpr std::uint64_t kMaxNameLoopIterations = 128 + kMaxNameJumps;

// Longest wire name is 255 octets: 253 text octets once separators are
// counted as dots.
constexpr std::size_t kMaxNameTextLength = 253;

}  // namespace

std::uint8_t WireReader::read_u8() {
  DFX_DCHECK(pos_ <= data_.size());
  if (pos_ + 1 > data_.size()) {
    ok_ = false;
    return 0;
  }
  return data_[pos_++];
}

std::uint16_t WireReader::read_u16() {
  DFX_DCHECK(pos_ <= data_.size());
  if (pos_ + 2 > data_.size()) {
    ok_ = false;
    pos_ = data_.size();
    return 0;
  }
  const std::uint16_t v = dfx::read_u16(data_, pos_);
  pos_ += 2;
  return v;
}

std::uint32_t WireReader::read_u32() {
  DFX_DCHECK(pos_ <= data_.size());
  if (pos_ + 4 > data_.size()) {
    ok_ = false;
    pos_ = data_.size();
    return 0;
  }
  const std::uint32_t v = dfx::read_u32(data_, pos_);
  pos_ += 4;
  return v;
}

Bytes WireReader::read_bytes(std::size_t n) {
  DFX_DCHECK(pos_ <= data_.size());
  // `n > size - pos` instead of `pos + n > size`: the latter wraps around
  // for attacker-sized n and would pass the bounds check.
  if (n > data_.size() - pos_) {
    ok_ = false;
    pos_ = data_.size();
    return {};
  }
  Bytes out(data_.begin() + static_cast<std::ptrdiff_t>(pos_),
            data_.begin() + static_cast<std::ptrdiff_t>(pos_ + n));
  pos_ += n;
  return out;
}

void WireReader::seek(std::size_t pos) {
  if (pos > data_.size()) {
    ok_ = false;
    return;
  }
  pos_ = pos;
}

std::optional<Name> WireReader::read_name() {
  std::string text;
  std::size_t jumps = 0;
  std::size_t pos = pos_;
  bool jumped = false;
  DFX_BOUNDED_LOOP(guard, kMaxNameLoopIterations);
  while (true) {
    guard.tick();
    if (pos >= data_.size()) {
      ok_ = false;
      return std::nullopt;
    }
    const std::uint8_t len = data_[pos];
    if (len == 0) {
      if (!jumped) pos_ = pos + 1;
      if (text.empty()) return Name::root();
      auto name = Name::parse(text);
      if (!name) ok_ = false;
      return name;
    }
    if ((len & 0xC0) == 0xC0) {
      if (pos + 1 >= data_.size() || ++jumps > kMaxNameJumps) {
        ok_ = false;
        return std::nullopt;
      }
      const std::size_t target =
          (static_cast<std::size_t>(len & 0x3F) << 8) | data_[pos + 1];
      if (target >= pos) {  // forward/self pointers are malformed
        ok_ = false;
        return std::nullopt;
      }
      if (!jumped) pos_ = pos + 2;
      jumped = true;
      pos = target;
      continue;
    }
    if ((len & 0xC0) != 0 || pos + 1 + len > data_.size()) {
      ok_ = false;
      return std::nullopt;
    }
    if (!text.empty()) text.push_back('.');
    text.append(reinterpret_cast<const char*>(data_.data() + pos + 1), len);
    if (text.size() > kMaxNameTextLength) {  // name exceeds 255 wire octets
      ok_ = false;
      return std::nullopt;
    }
    pos += 1 + len;
  }
}

std::optional<Rdata> rdata_from_wire(RRType type, ByteView wire) {
  WireReader r(wire);
  const auto finish = [&](Rdata value) -> std::optional<Rdata> {
    if (!r.ok() || r.remaining() != 0) return std::nullopt;
    return value;
  };
  switch (type) {
    case RRType::kA: {
      ARdata a;
      const Bytes b = r.read_bytes(4);
      if (!r.ok()) return std::nullopt;
      DFX_CHECK(b.size() == a.address.size());
      std::copy(b.begin(), b.end(), a.address.begin());
      return finish(a);
    }
    case RRType::kAAAA: {
      AaaaRdata a;
      const Bytes b = r.read_bytes(16);
      if (!r.ok()) return std::nullopt;
      DFX_CHECK(b.size() == a.address.size());
      std::copy(b.begin(), b.end(), a.address.begin());
      return finish(a);
    }
    case RRType::kNS: {
      NsRdata ns;
      auto name = r.read_name();
      if (!name) return std::nullopt;
      ns.nsdname = *std::move(name);
      return finish(ns);
    }
    case RRType::kCNAME: {
      CnameRdata c;
      auto name = r.read_name();
      if (!name) return std::nullopt;
      c.target = *std::move(name);
      return finish(c);
    }
    case RRType::kSOA: {
      SoaRdata soa;
      auto mname = r.read_name();
      auto rname = r.read_name();
      if (!mname || !rname) return std::nullopt;
      soa.mname = *std::move(mname);
      soa.rname = *std::move(rname);
      soa.serial = r.read_u32();
      soa.refresh = r.read_u32();
      soa.retry = r.read_u32();
      soa.expire = r.read_u32();
      soa.minimum = r.read_u32();
      return finish(soa);
    }
    case RRType::kMX: {
      MxRdata mx;
      mx.preference = r.read_u16();
      auto name = r.read_name();
      if (!name) return std::nullopt;
      mx.exchange = *std::move(name);
      return finish(mx);
    }
    case RRType::kTXT: {
      TxtRdata txt;
      DFX_BOUNDED_LOOP(guard, wire.size() + 1);
      while (r.ok() && r.remaining() > 0) {
        guard.tick();  // each round consumes >= 1 octet
        const std::uint8_t len = r.read_u8();
        const Bytes b = r.read_bytes(len);
        if (!r.ok()) return std::nullopt;
        txt.strings.push_back(to_string(b));
      }
      if (txt.strings.empty()) return std::nullopt;
      return finish(txt);
    }
    case RRType::kDNSKEY: {
      DnskeyRdata k;
      k.flags = r.read_u16();
      k.protocol = r.read_u8();
      k.algorithm = r.read_u8();
      k.public_key = r.read_bytes(r.remaining());
      return finish(k);
    }
    case RRType::kDS: {
      DsRdata ds;
      ds.key_tag = r.read_u16();
      ds.algorithm = r.read_u8();
      ds.digest_type = r.read_u8();
      ds.digest = r.read_bytes(r.remaining());
      if (ds.digest.empty()) return std::nullopt;
      return finish(ds);
    }
    case RRType::kRRSIG: {
      RrsigRdata sig;
      sig.type_covered = static_cast<RRType>(r.read_u16());
      sig.algorithm = r.read_u8();
      sig.labels = r.read_u8();
      sig.original_ttl = r.read_u32();
      sig.expiration = r.read_u32();
      sig.inception = r.read_u32();
      sig.key_tag = r.read_u16();
      auto signer = r.read_name();
      if (!signer) return std::nullopt;
      sig.signer = *std::move(signer);
      sig.signature = r.read_bytes(r.remaining());
      return finish(sig);
    }
    case RRType::kNSEC: {
      NsecRdata n;
      auto next = r.read_name();
      if (!next) return std::nullopt;
      n.next = *std::move(next);
      n.types = decode_type_bitmap(r.read_bytes(r.remaining()));
      return finish(n);
    }
    case RRType::kNSEC3: {
      Nsec3Rdata n;
      n.hash_algorithm = r.read_u8();
      n.flags = r.read_u8();
      n.iterations = r.read_u16();
      n.salt = r.read_bytes(r.read_u8());
      n.next_hashed = r.read_bytes(r.read_u8());
      if (n.next_hashed.empty()) return std::nullopt;
      n.types = decode_type_bitmap(r.read_bytes(r.remaining()));
      return finish(n);
    }
    case RRType::kNSEC3PARAM: {
      Nsec3ParamRdata p;
      p.hash_algorithm = r.read_u8();
      p.flags = r.read_u8();
      p.iterations = r.read_u16();
      p.salt = r.read_bytes(r.read_u8());
      return finish(p);
    }
    case RRType::kCDS: {
      auto inner = rdata_from_wire(RRType::kDS, wire);
      if (!inner) return std::nullopt;
      return Rdata(CdsRdata{std::get<DsRdata>(*inner)});
    }
    case RRType::kCDNSKEY: {
      auto inner = rdata_from_wire(RRType::kDNSKEY, wire);
      if (!inner) return std::nullopt;
      return Rdata(CdnskeyRdata{std::get<DnskeyRdata>(*inner)});
    }
  }
  return std::nullopt;
}

}  // namespace dfx::dns
