#include "dnscore/wire.h"

#include <algorithm>
#include <cctype>
#include <cstring>
#include <memory>

#include "util/check.hpp"

namespace dfx::dns {
namespace {

// A wire name chain visits at most 127 labels and 64 compression jumps;
// anything past that is a malformed or adversarial message.
constexpr std::size_t kMaxNameJumps = 64;
constexpr std::uint64_t kMaxNameLoopIterations = 128 + kMaxNameJumps;

// Longest wire name is 255 octets: 253 text octets once separators are
// counted as dots.
constexpr std::size_t kMaxNameTextLength = 253;

/// The label character rule of Name::parse: no whitespace, no control
/// characters; everything else is legal in DNS.
inline bool label_char_ok(std::uint8_t c) {
  return std::isspace(c) == 0 && c >= 0x21;
}

inline std::uint8_t fold(std::uint8_t c) {
  return static_cast<std::uint8_t>(
      std::tolower(static_cast<unsigned char>(c)) & 0xFF);
}

/// Append the canonical (lower-case, uncompressed) wire form of a name
/// given as label pieces — the piece-level equivalent of
/// Name::to_canonical_wire.
void emit_canonical_name(Bytes& out, const std::string_view* pieces,
                         std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) {
    DFX_DCHECK(pieces[i].size() <= 63);
    out.push_back(static_cast<std::uint8_t>(pieces[i].size()));
    for (const char c : pieces[i]) {
      out.push_back(fold(static_cast<std::uint8_t>(c)));
    }
  }
  out.push_back(0);
}

/// Canonical re-encode of an NSEC/NSEC3 type bitmap: mirrors
/// decode_type_bitmap's tolerances (malformed window blocks and trailing
/// bytes are silently dropped), merges duplicate windows, and emits
/// windows in ascending order with minimal octet counts — exactly what
/// encode_type_bitmap(decode_type_bitmap(data)) produces.
void reencode_type_bitmap(ByteView data, Bytes& out) {
  std::uint8_t bits[256][32];
  bool present[256] = {};
  std::size_t pos = 0;
  DFX_BOUNDED_LOOP(guard, data.size() / 3 + 1);
  while (pos + 2 <= data.size()) {
    guard.tick();
    const std::uint8_t window = data[pos];
    const std::size_t len = data[pos + 1];
    pos += 2;
    if (len == 0 || len > 32 || pos + len > data.size()) break;
    if (!present[window]) {
      std::memset(bits[window], 0, sizeof bits[window]);
      present[window] = true;
    }
    for (std::size_t i = 0; i < len; ++i) bits[window][i] |= data[pos + i];
    pos += len;
  }
  for (int w = 0; w < 256; ++w) {
    if (!present[w]) continue;
    int max_octet = -1;
    for (int i = 31; i >= 0; --i) {
      if (bits[w][i] != 0) {
        max_octet = i;
        break;
      }
    }
    if (max_octet < 0) continue;  // all-zero block decodes to no types
    out.push_back(static_cast<std::uint8_t>(w));
    out.push_back(static_cast<std::uint8_t>(max_octet + 1));
    for (int i = 0; i <= max_octet; ++i) out.push_back(bits[w][i]);
  }
}

}  // namespace

bool scan_name_pieces(ByteView data, std::size_t& pos_io,
                      std::string_view* pieces, std::size_t* n_pieces) {
  *n_pieces = 0;
  std::size_t pos = pos_io;
  bool jumped = false;
  std::size_t jumps = 0;
  std::size_t text_len = 0;
  // Raw wire labels, zero-copy. text_len <= 253 bounds the count at 127.
  const char* raw_ptr[kMaxNamePieces + 1];
  std::uint8_t raw_len[kMaxNamePieces + 1];
  std::size_t n_raw = 0;
  DFX_BOUNDED_LOOP(guard, kMaxNameLoopIterations);
  while (true) {
    guard.tick();
    if (pos >= data.size()) return false;
    const std::uint8_t len = data[pos];
    if (len == 0) {
      if (!jumped) pos_io = pos + 1;
      break;
    }
    if ((len & 0xC0) == 0xC0) {
      if (pos + 1 >= data.size() || ++jumps > kMaxNameJumps) return false;
      const std::size_t target =
          (static_cast<std::size_t>(len & 0x3F) << 8) | data[pos + 1];
      if (target >= pos) return false;  // forward/self pointers are malformed
      if (!jumped) pos_io = pos + 2;
      jumped = true;
      pos = target;
      continue;
    }
    if ((len & 0xC0) != 0 || pos + 1 + len > data.size()) return false;
    if (n_raw != 0) ++text_len;  // the separating dot
    text_len += len;
    if (text_len > kMaxNameTextLength) return false;
    DFX_DCHECK(n_raw <= kMaxNamePieces);
    raw_ptr[n_raw] = reinterpret_cast<const char*>(data.data() + pos + 1);
    raw_len[n_raw] = len;
    ++n_raw;
    pos += 1 + len;
  }
  if (n_raw == 0) return true;  // root
  // What follows replicates Name::parse over the virtual dotted text the
  // old path materialized: "." is root, one trailing dot is stripped,
  // pieces split on '.', each piece validated. Pieces never span a wire
  // label (the virtual separator ends one), so every piece is a contiguous
  // zero-copy view.
  if (n_raw == 1 && raw_len[0] == 1 && raw_ptr[0][0] == '.') return true;
  if (raw_ptr[n_raw - 1][raw_len[n_raw - 1] - 1] == '.') --raw_len[n_raw - 1];
  std::size_t total = 1;
  const char* cur = nullptr;
  std::size_t cur_len = 0;
  const auto flush = [&]() -> bool {
    if (cur_len == 0 || cur_len > 63) return false;
    if (*n_pieces >= kMaxNamePieces) return false;
    total += cur_len + 1;
    pieces[(*n_pieces)++] = std::string_view(cur, cur_len);
    cur_len = 0;
    return true;
  };
  for (std::size_t k = 0; k < n_raw; ++k) {
    if (k > 0 && !flush()) return false;
    for (std::size_t i = 0; i < raw_len[k]; ++i) {
      const char c = raw_ptr[k][i];
      if (c == '.') {
        if (!flush()) return false;
        continue;
      }
      if (!label_char_ok(static_cast<std::uint8_t>(c))) return false;
      if (cur_len == 0) cur = raw_ptr[k] + i;
      ++cur_len;
    }
  }
  if (!flush()) return false;
  return total <= 255;
}

std::uint8_t WireReader::read_u8() {
  DFX_DCHECK(pos_ <= data_.size());
  if (pos_ + 1 > data_.size()) {
    ok_ = false;
    return 0;
  }
  return data_[pos_++];
}

std::uint16_t WireReader::read_u16() {
  DFX_DCHECK(pos_ <= data_.size());
  if (pos_ + 2 > data_.size()) {
    ok_ = false;
    pos_ = data_.size();
    return 0;
  }
  const std::uint16_t v = dfx::read_u16(data_, pos_);
  pos_ += 2;
  return v;
}

std::uint32_t WireReader::read_u32() {
  DFX_DCHECK(pos_ <= data_.size());
  if (pos_ + 4 > data_.size()) {
    ok_ = false;
    pos_ = data_.size();
    return 0;
  }
  const std::uint32_t v = dfx::read_u32(data_, pos_);
  pos_ += 4;
  return v;
}

Bytes WireReader::read_bytes(std::size_t n) {
  DFX_DCHECK(pos_ <= data_.size());
  // `n > size - pos` instead of `pos + n > size`: the latter wraps around
  // for attacker-sized n and would pass the bounds check.
  if (n > data_.size() - pos_) {
    ok_ = false;
    pos_ = data_.size();
    return {};
  }
  Bytes out(data_.begin() + static_cast<std::ptrdiff_t>(pos_),
            data_.begin() + static_cast<std::ptrdiff_t>(pos_ + n));
  pos_ += n;
  return out;
}

ByteView WireReader::read_view(std::size_t n) {
  DFX_DCHECK(pos_ <= data_.size());
  if (n > data_.size() - pos_) {  // same wrap-proof form as read_bytes
    ok_ = false;
    pos_ = data_.size();
    return {};
  }
  const ByteView out = data_.subspan(pos_, n);
  pos_ += n;
  return out;
}

void WireReader::seek(std::size_t pos) {
  if (pos > data_.size()) {
    ok_ = false;
    return;
  }
  pos_ = pos;
}

std::optional<Name> WireReader::read_name() {
  std::string_view pieces[kMaxNamePieces];
  std::size_t n = 0;
  if (!scan_name_pieces(data_, pos_, pieces, &n)) {
    ok_ = false;
    return std::nullopt;
  }
  if (n == 0) return Name::root();
  return Name::from_validated_pieces({pieces, n});
}

std::optional<std::span<const std::string_view>> WireReader::read_name_views(
    WireArena& arena) {
  std::string_view pieces[kMaxNamePieces];
  std::size_t n = 0;
  if (!scan_name_pieces(data_, pos_, pieces, &n)) {
    ok_ = false;
    return std::nullopt;
  }
  const auto stored = arena.alloc_array<std::string_view>(n);
  for (std::size_t i = 0; i < n; ++i) {
    std::construct_at(&stored[i], pieces[i]);  // arena memory is raw
  }
  return std::span<const std::string_view>(stored.data(), stored.size());
}

std::optional<Rdata> rdata_from_wire(RRType type, ByteView wire) {
  WireReader r(wire);
  const auto finish = [&](Rdata value) -> std::optional<Rdata> {
    if (!r.ok() || r.remaining() != 0) return std::nullopt;
    return value;
  };
  switch (type) {
    case RRType::kA: {
      ARdata a;
      const ByteView b = r.read_view(4);
      if (!r.ok()) return std::nullopt;
      DFX_CHECK(b.size() == a.address.size());
      std::copy(b.begin(), b.end(), a.address.begin());
      return finish(a);
    }
    case RRType::kAAAA: {
      AaaaRdata a;
      const ByteView b = r.read_view(16);
      if (!r.ok()) return std::nullopt;
      DFX_CHECK(b.size() == a.address.size());
      std::copy(b.begin(), b.end(), a.address.begin());
      return finish(a);
    }
    case RRType::kNS: {
      NsRdata ns;
      auto name = r.read_name();
      if (!name) return std::nullopt;
      ns.nsdname = *std::move(name);
      return finish(ns);
    }
    case RRType::kCNAME: {
      CnameRdata c;
      auto name = r.read_name();
      if (!name) return std::nullopt;
      c.target = *std::move(name);
      return finish(c);
    }
    case RRType::kSOA: {
      SoaRdata soa;
      auto mname = r.read_name();
      auto rname = r.read_name();
      if (!mname || !rname) return std::nullopt;
      soa.mname = *std::move(mname);
      soa.rname = *std::move(rname);
      soa.serial = r.read_u32();
      soa.refresh = r.read_u32();
      soa.retry = r.read_u32();
      soa.expire = r.read_u32();
      soa.minimum = r.read_u32();
      return finish(soa);
    }
    case RRType::kMX: {
      MxRdata mx;
      mx.preference = r.read_u16();
      auto name = r.read_name();
      if (!name) return std::nullopt;
      mx.exchange = *std::move(name);
      return finish(mx);
    }
    case RRType::kTXT: {
      TxtRdata txt;
      DFX_BOUNDED_LOOP(guard, wire.size() + 1);
      while (r.ok() && r.remaining() > 0) {
        guard.tick();  // each round consumes >= 1 octet
        const std::uint8_t len = r.read_u8();
        const ByteView b = r.read_view(len);
        if (!r.ok()) return std::nullopt;
        txt.strings.push_back(to_string(b));
      }
      if (txt.strings.empty()) return std::nullopt;
      return finish(txt);
    }
    case RRType::kDNSKEY: {
      DnskeyRdata k;
      k.flags = r.read_u16();
      k.protocol = r.read_u8();
      k.algorithm = r.read_u8();
      k.public_key = r.read_bytes(r.remaining());
      return finish(k);
    }
    case RRType::kDS: {
      DsRdata ds;
      ds.key_tag = r.read_u16();
      ds.algorithm = r.read_u8();
      ds.digest_type = r.read_u8();
      ds.digest = r.read_bytes(r.remaining());
      if (ds.digest.empty()) return std::nullopt;
      return finish(ds);
    }
    case RRType::kRRSIG: {
      RrsigRdata sig;
      sig.type_covered = static_cast<RRType>(r.read_u16());
      sig.algorithm = r.read_u8();
      sig.labels = r.read_u8();
      sig.original_ttl = r.read_u32();
      sig.expiration = r.read_u32();
      sig.inception = r.read_u32();
      sig.key_tag = r.read_u16();
      auto signer = r.read_name();
      if (!signer) return std::nullopt;
      sig.signer = *std::move(signer);
      sig.signature = r.read_bytes(r.remaining());
      return finish(sig);
    }
    case RRType::kNSEC: {
      NsecRdata n;
      auto next = r.read_name();
      if (!next) return std::nullopt;
      n.next = *std::move(next);
      n.types = decode_type_bitmap(r.read_view(r.remaining()));
      return finish(n);
    }
    case RRType::kNSEC3: {
      Nsec3Rdata n;
      n.hash_algorithm = r.read_u8();
      n.flags = r.read_u8();
      n.iterations = r.read_u16();
      n.salt = r.read_bytes(r.read_u8());
      n.next_hashed = r.read_bytes(r.read_u8());
      if (n.next_hashed.empty()) return std::nullopt;
      n.types = decode_type_bitmap(r.read_view(r.remaining()));
      return finish(n);
    }
    case RRType::kNSEC3PARAM: {
      Nsec3ParamRdata p;
      p.hash_algorithm = r.read_u8();
      p.flags = r.read_u8();
      p.iterations = r.read_u16();
      p.salt = r.read_bytes(r.read_u8());
      return finish(p);
    }
    case RRType::kCDS: {
      auto inner = rdata_from_wire(RRType::kDS, wire);
      if (!inner) return std::nullopt;
      return Rdata(CdsRdata{std::get<DsRdata>(*inner)});
    }
    case RRType::kCDNSKEY: {
      auto inner = rdata_from_wire(RRType::kDNSKEY, wire);
      if (!inner) return std::nullopt;
      return Rdata(CdnskeyRdata{std::get<DnskeyRdata>(*inner)});
    }
  }
  return std::nullopt;
}

bool reencode_rdata(std::uint16_t type, ByteView wire, Bytes& out) {
  const std::size_t mark = out.size();
  // Scratch for embedded names; reused across the fields of one RDATA.
  std::string_view pieces[kMaxNamePieces];
  std::size_t n = 0;
  std::size_t pos = 0;
  const auto verbatim = [&](std::size_t from, std::size_t upto) {
    append(out, wire.subspan(from, upto - from));
  };
  const auto fail = [&]() {
    DFX_DCHECK(mark <= out.size());  // we only ever append past mark
    out.resize(mark);
    return false;
  };
  switch (static_cast<RRType>(type)) {
    case RRType::kA:
      if (wire.size() != 4) return fail();
      verbatim(0, 4);
      return true;
    case RRType::kAAAA:
      if (wire.size() != 16) return fail();
      verbatim(0, 16);
      return true;
    case RRType::kNS:
    case RRType::kCNAME: {
      if (!scan_name_pieces(wire, pos, pieces, &n) || pos != wire.size()) {
        return fail();
      }
      emit_canonical_name(out, pieces, n);
      return true;
    }
    case RRType::kSOA: {
      if (!scan_name_pieces(wire, pos, pieces, &n)) return fail();
      emit_canonical_name(out, pieces, n);
      if (!scan_name_pieces(wire, pos, pieces, &n)) return fail();
      emit_canonical_name(out, pieces, n);
      if (wire.size() - pos != 20) return fail();  // the five u32 fields
      verbatim(pos, wire.size());
      return true;
    }
    case RRType::kMX: {
      if (wire.size() < 2) return fail();
      pos = 2;
      if (!scan_name_pieces(wire, pos, pieces, &n) || pos != wire.size()) {
        return fail();
      }
      verbatim(0, 2);
      emit_canonical_name(out, pieces, n);
      return true;
    }
    case RRType::kTXT: {
      if (wire.empty()) return fail();  // at least one character-string
      DFX_BOUNDED_LOOP(guard, wire.size() + 1);
      while (pos < wire.size()) {
        guard.tick();  // each round consumes >= 1 octet
        const std::uint8_t len = wire[pos];
        if (pos + 1 + len > wire.size()) return fail();
        pos += 1 + len;
      }
      verbatim(0, wire.size());  // length-prefixed strings are canonical
      return true;
    }
    case RRType::kDNSKEY:
    case RRType::kCDNSKEY:
      if (wire.size() < 4) return fail();  // flags + protocol + algorithm
      verbatim(0, wire.size());            // key blob is opaque
      return true;
    case RRType::kDS:
    case RRType::kCDS:
      if (wire.size() < 5) return fail();  // fixed fields + nonempty digest
      verbatim(0, wire.size());            // digest blob is opaque
      return true;
    case RRType::kRRSIG: {
      if (wire.size() < 18) return fail();  // fixed fields through key tag
      pos = 18;
      if (!scan_name_pieces(wire, pos, pieces, &n)) return fail();
      verbatim(0, 18);
      emit_canonical_name(out, pieces, n);
      verbatim(pos, wire.size());  // signature blob is opaque
      return true;
    }
    case RRType::kNSEC: {
      if (!scan_name_pieces(wire, pos, pieces, &n)) return fail();
      emit_canonical_name(out, pieces, n);
      reencode_type_bitmap(wire.subspan(pos), out);
      return true;
    }
    case RRType::kNSEC3: {
      if (wire.size() < 5) return fail();  // fixed fields + salt length
      pos = 4;
      const std::uint8_t salt_len = wire[pos++];
      if (pos + salt_len >= wire.size()) return fail();  // need hash length
      pos += salt_len;
      const std::uint8_t hash_len = wire[pos++];
      if (hash_len == 0 || pos + hash_len > wire.size()) return fail();
      pos += hash_len;
      verbatim(0, pos);  // fixed fields, salt and hash are canonical as-is
      reencode_type_bitmap(wire.subspan(pos), out);
      return true;
    }
    case RRType::kNSEC3PARAM: {
      if (wire.size() < 5) return fail();  // fixed fields + salt length
      const std::uint8_t salt_len = wire[4];
      if (5u + salt_len != wire.size()) return fail();  // no trailing bytes
      verbatim(0, wire.size());
      return true;
    }
  }
  return fail();  // unknown TYPE
}

}  // namespace dfx::dns
