// Wire-format reader/writer and RDATA wire decoding.
//
// rdata_to_wire (canonical encode) lives with the Rdata types; this header
// adds the inverse direction plus a bounds-checked cursor both the message
// codec and tests use.
#pragma once

#include <optional>

#include "dnscore/name.h"
#include "dnscore/rdata.h"
#include "dnscore/rr.h"
#include "util/bytes.h"
#include "util/check.hpp"

namespace dfx::dns {

/// Bounds-checked read cursor over a wire buffer.
class WireReader {
 public:
  explicit WireReader(ByteView data) : data_(data) {}

  std::size_t position() const { return pos_; }
  std::size_t remaining() const { return data_.size() - pos_; }
  bool ok() const { return ok_; }

  // Every value read off the wire is attacker-controlled: bound it with a
  // DFX_CHECK (or an explicit comparison) before it sizes or indexes
  // anything. The taint pack in dfixer_lint enforces this.
  DFX_TAINTED std::uint8_t read_u8();
  DFX_TAINTED std::uint16_t read_u16();
  DFX_TAINTED std::uint32_t read_u32();
  DFX_TAINTED Bytes read_bytes(std::size_t n);

  /// Read a (possibly compressed) domain name; compression pointers may
  /// reference earlier message offsets only.
  std::optional<Name> read_name();

  void seek(std::size_t pos);

 private:
  ByteView data_;
  std::size_t pos_ = 0;
  bool ok_ = true;
};

/// Decode the RDATA of `type` from its wire form. Returns nullopt for
/// malformed data or unknown types.
[[nodiscard]] std::optional<Rdata> rdata_from_wire(RRType type,
                                                   ByteView wire);

}  // namespace dfx::dns
