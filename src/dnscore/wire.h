// Wire-format reader/writer and RDATA wire decoding.
//
// rdata_to_wire (canonical encode) lives with the Rdata types; this header
// adds the inverse direction plus a bounds-checked cursor both the message
// codec and tests use.
//
// Two parse paths share one name scanner (`scan_name_pieces`):
//
//  - the owned path (`read_name`, `rdata_from_wire`, `decode_message`)
//    materializes `Name`/`Rdata` values — use it when the records outlive
//    the packet buffer;
//  - the zero-copy path (`read_name_views`, `reencode_rdata`,
//    `parse_message_view`/`reencode_message` in message.h) hands out views
//    into the packet buffer and allocates bookkeeping in a WireArena — use
//    it on the hot serving/measurement paths where per-record heap
//    allocations dominate (see docs/PERFORMANCE.md).
#pragma once

#include <optional>

#include "dnscore/arena.h"
#include "dnscore/name.h"
#include "dnscore/rdata.h"
#include "dnscore/rr.h"
#include "util/bytes.h"
#include "util/check.hpp"

namespace dfx::dns {

/// A DNS name is at most 255 wire octets, so at most 127 one-octet labels.
constexpr std::size_t kMaxNamePieces = 127;

/// Zero-copy scan of one (possibly compressed) wire name at `pos` in
/// `data`. On success: label pieces (string_views aliasing `data` — they
/// live exactly as long as the buffer behind `data`, no copy is made) are
/// written to `pieces[0..*n_pieces)`, `pos` advances past the name's first
/// segment (the terminal zero octet or the first compression pointer), and
/// true is returned; `pieces` must hold at least kMaxNamePieces entries.
/// Returns false on malformed names with the exact acceptance rules of
/// `WireReader::read_name` (bounds, <= 64 pointer jumps, backward-only
/// pointers, <= 255 total octets, label character rules).
[[nodiscard]] bool scan_name_pieces(ByteView data, std::size_t& pos,
                                    std::string_view* pieces,
                                    std::size_t* n_pieces);

/// Bounds-checked read cursor over a wire buffer.
class WireReader {
 public:
  explicit WireReader(ByteView data) : data_(data) {}

  std::size_t position() const { return pos_; }
  std::size_t remaining() const { return data_.size() - pos_; }
  bool ok() const { return ok_; }

  // Every value read off the wire is attacker-controlled: bound it with a
  // DFX_CHECK (or an explicit comparison) before it sizes or indexes
  // anything. The taint pack in dfixer_lint enforces this.
  DFX_TAINTED std::uint8_t read_u8();
  DFX_TAINTED std::uint16_t read_u16();
  DFX_TAINTED std::uint32_t read_u32();
  DFX_TAINTED Bytes read_bytes(std::size_t n);

  /// Zero-copy variant of read_bytes: the returned view ALIASES the buffer
  /// this reader was constructed over — it is valid only while that buffer
  /// is, and must not be retained past it. Prefer this on hot paths where
  /// the bytes are consumed immediately (hash, compare, re-encode).
  DFX_TAINTED ByteView read_view(std::size_t n);

  /// Read a (possibly compressed) domain name; compression pointers may
  /// reference earlier message offsets only.
  DFX_COLD("owned Name construction is the cache-miss path; hits key on raw wire bytes")
  std::optional<Name> read_name();

  /// Zero-copy variant of read_name: label pieces alias the reader's
  /// buffer, and the span itself lives in `arena` (valid until the arena
  /// is reset). No per-label heap allocation is performed. Returns
  /// nullopt (and poisons ok()) exactly when read_name would.
  [[nodiscard]] std::optional<std::span<const std::string_view>>
  read_name_views(WireArena& arena);

  void seek(std::size_t pos);

 private:
  ByteView data_;
  std::size_t pos_ = 0;
  bool ok_ = true;
};

/// Decode the RDATA of `type` from its wire form. Returns nullopt for
/// malformed data or unknown types.
[[nodiscard]] std::optional<Rdata> rdata_from_wire(RRType type,
                                                   ByteView wire);

/// One-pass canonical re-encode of an RDATA wire image: appends to `out`
/// exactly the bytes `rdata_to_wire(*rdata_from_wire(type, wire))` would
/// produce (embedded names decompressed and lower-cased, NSEC bitmaps
/// re-canonicalized), without materializing an Rdata — fixed fields and
/// opaque blobs are block-copied from `wire`. Returns false, leaving `out`
/// untouched, exactly when rdata_from_wire returns nullopt. `type` is the
/// raw wire TYPE: unknown values fail. This is the zero-allocation hot
/// path the throughput bench drives; its equivalence with the owned path
/// is pinned by differential tests over the fuzz corpus.
[[nodiscard]] bool reencode_rdata(std::uint16_t type, ByteView wire,
                                  Bytes& out);

}  // namespace dfx::dns
