// WireArena: a chunked bump allocator backing the zero-copy wire and
// master-file parse paths.
//
// Per-record parsing must not pay one heap allocation per field (label
// arrays, unescaped tokens, scratch rdata). The arena turns all of those
// into pointer bumps: allocation is `cur += n`, deallocation is `reset()`.
//
// Ownership and lifetime rules (see docs/PERFORMANCE.md, "Arena lifetime
// rules"):
//
//  - Everything returned by alloc()/copy()/alloc_array() is owned by the
//    arena. Callers receive non-owning views (spans / string_views); they
//    must NOT free them and must NOT use them after reset() or after the
//    arena is destroyed.
//  - reset() invalidates every outstanding view at once. The intended
//    pattern is one reset() per parsed message (or per logical line), so a
//    view's lifetime is "until the current record batch is done".
//  - Growth never moves existing chunks: views handed out earlier stay
//    valid across later alloc() calls (only reset()/destruction kill them).
//  - A WireArena is single-threaded by design: confine each instance to
//    one thread (one arena per worker), exactly like WireReader.
//
// The dfixer_lint `view-into-temporary` rule guards the obvious misuse —
// returning a view of a function-local owner (a local arena dies with the
// frame just like a local std::string; see
// tests/lint_fixtures/dnscore/bad_arena_view.cpp).
#pragma once

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <memory>
#include <span>
#include <string_view>
#include <type_traits>
#include <vector>

#include "util/bytes.h"
#include "util/check.hpp"

namespace dfx::dns {

class WireArena {
 public:
  /// `chunk_size` is the granularity of backing allocations; requests
  /// larger than it get a dedicated chunk.
  explicit WireArena(std::size_t chunk_size = 16 * 1024)
      : chunk_size_(chunk_size == 0 ? 1 : chunk_size) {}

  WireArena(const WireArena&) = delete;
  WireArena& operator=(const WireArena&) = delete;

  /// Uninitialized storage for `n` bytes (aligned for any scalar use via
  /// alloc_array). Returns a view owned by the arena — valid until
  /// reset()/destruction, never freed by the caller.
  std::span<std::uint8_t> alloc(std::size_t n) {
    return {static_cast<std::uint8_t*>(raw_alloc(n, 1)), n};
  }

  /// Uninitialized array of `n` objects of trivially-destructible type T.
  /// The arena never runs destructors: T must be trivially destructible.
  template <typename T>
  std::span<T> alloc_array(std::size_t n) {
    static_assert(std::is_trivially_destructible_v<T>,
                  "arena memory is reclaimed without running destructors");
    return {static_cast<T*>(raw_alloc(n * sizeof(T), alignof(T))), n};
  }

  /// Copy `src` into the arena; the returned view aliases arena storage,
  /// not `src` (safe to use after the source buffer is gone).
  ByteView copy(ByteView src) {
    auto dst = alloc(src.size());
    DFX_DCHECK(dst.size() == src.size());
    if (!src.empty()) std::memcpy(dst.data(), src.data(), src.size());
    return {dst.data(), dst.size()};
  }

  /// Copy a string into the arena (e.g. an unescaped token).
  std::string_view copy(std::string_view src) {
    auto dst = alloc(src.size());
    DFX_DCHECK(dst.size() == src.size());
    if (!src.empty()) std::memcpy(dst.data(), src.data(), src.size());
    return {reinterpret_cast<const char*>(dst.data()), dst.size()};
  }

  /// Invalidate every outstanding view and make the full capacity
  /// available again. Keeps the chunks (no free/malloc churn in steady
  /// state): a parse loop reaches a fixed memory footprint after the
  /// largest message it has seen.
  void reset() {
    live_ = 0;
    cur_chunk_ = 0;
    cur_pos_ = 0;
  }

  /// Bytes handed out since the last reset() (diagnostics / bench).
  std::size_t bytes_used() const { return live_; }

  /// Total backing capacity currently held.
  std::size_t capacity() const {
    std::size_t total = 0;
    for (const auto& c : chunks_) total += c.size;
    return total;
  }

 private:
  struct Chunk {
    std::unique_ptr<std::uint8_t[]> data;
    std::size_t size = 0;
  };

  // Chunk refill is amortized away: reset() retains the chunks, so a
  // steady-state packet loop reuses warmed capacity and never reaches the
  // make_unique branch below.
  DFX_COLD("chunk refill is amortized; reset() retains chunks, steady-state never allocates")
  void* raw_alloc(std::size_t n, std::size_t align) {
    DFX_DCHECK(align != 0 && (align & (align - 1)) == 0);
    live_ += n;
    while (cur_chunk_ < chunks_.size()) {
      Chunk& c = chunks_[cur_chunk_];
      const std::size_t aligned = (cur_pos_ + (align - 1)) & ~(align - 1);
      if (aligned + n <= c.size) {
        cur_pos_ = aligned + n;
        return c.data.get() + aligned;
      }
      ++cur_chunk_;
      cur_pos_ = 0;
    }
    // No existing chunk fits: append one (oversize requests get their own).
    Chunk c;
    c.size = n > chunk_size_ ? n : chunk_size_;
    c.data = std::make_unique<std::uint8_t[]>(c.size);
    chunks_.push_back(std::move(c));
    cur_chunk_ = chunks_.size() - 1;
    cur_pos_ = n;
    return chunks_.back().data.get();
  }

  std::size_t chunk_size_;
  std::vector<Chunk> chunks_;
  std::size_t cur_chunk_ = 0;  // chunk currently being bumped
  std::size_t cur_pos_ = 0;    // bump offset within cur_chunk_
  std::size_t live_ = 0;       // bytes since last reset()
};

}  // namespace dfx::dns
