#include "dnscore/rrset.h"

#include <algorithm>

#include "util/check.hpp"

namespace dfx::dns {

std::string ResourceRecord::to_text() const {
  return owner.to_string() + " " + std::to_string(ttl) + " IN " +
         rrtype_to_string(type) + " " + rdata_to_text(rdata);
}

void RRset::add(Rdata rdata) {
  const Bytes wire = rdata_to_wire(rdata);
  for (const auto& existing : rdatas_) {
    if (rdata_to_wire(existing) == wire) return;
  }
  rdatas_.push_back(std::move(rdata));
}

bool RRset::remove(const Rdata& rdata) {
  const Bytes wire = rdata_to_wire(rdata);
  for (auto it = rdatas_.begin(); it != rdatas_.end(); ++it) {
    if (rdata_to_wire(*it) == wire) {
      rdatas_.erase(it);
      return true;
    }
  }
  return false;
}

std::vector<Bytes> RRset::canonical_rdata_wires() const {
  std::vector<Bytes> wires;
  wires.reserve(rdatas_.size());
  for (const auto& r : rdatas_) wires.push_back(rdata_to_wire(r));
  std::sort(wires.begin(), wires.end());
  return wires;
}

Bytes RRset::signing_buffer(const RrsigRdata& sig_fields) const {
  Bytes out = sig_fields.to_wire_unsigned();
  const Bytes owner_wire = owner_.to_canonical_wire();
  for (const auto& wire : canonical_rdata_wires()) {
    append(out, owner_wire);
    append_u16(out, static_cast<std::uint16_t>(type_));
    append_u16(out, static_cast<std::uint16_t>(RRClass::kIN));
    append_u32(out, sig_fields.original_ttl);
    DFX_DCHECK(wire.size() <= 0xFFFF);
    append_u16(out, static_cast<std::uint16_t>(wire.size()));
    append(out, wire);
  }
  return out;
}

std::vector<ResourceRecord> RRset::to_records() const {
  std::vector<ResourceRecord> out;
  out.reserve(rdatas_.size());
  for (const auto& r : rdatas_) {
    out.push_back(ResourceRecord{owner_, type_, RRClass::kIN, ttl_, r});
  }
  return out;
}

bool RRset::operator==(const RRset& other) const {
  return owner_ == other.owner_ && type_ == other.type_ &&
         ttl_ == other.ttl_ &&
         canonical_rdata_wires() == other.canonical_rdata_wires();
}

}  // namespace dfx::dns
