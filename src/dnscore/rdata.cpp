#include "dnscore/rdata.h"

#include <cstdio>

#include "util/check.hpp"
#include "util/codec.h"
#include "util/strings.h"

namespace dfx::dns {

std::string ARdata::to_text() const {
  char buf[20];
  std::snprintf(buf, sizeof buf, "%u.%u.%u.%u", address[0], address[1],
                address[2], address[3]);
  return buf;
}

std::string AaaaRdata::to_text() const {
  // Uncompressed form (no :: shortening); fine for diagnostics.
  std::string out;
  char buf[8];
  for (int i = 0; i < 8; ++i) {
    const unsigned v = (static_cast<unsigned>(address[i * 2]) << 8) |
                       address[i * 2 + 1];
    std::snprintf(buf, sizeof buf, "%x", v);
    if (i > 0) out.push_back(':');
    out += buf;
  }
  return out;
}

std::uint16_t DnskeyRdata::key_tag() const {
  return crypto::key_tag(rdata_to_wire(Rdata(*this)));
}

Bytes RrsigRdata::to_wire_unsigned() const {
  RrsigRdata copy = *this;
  copy.signature.clear();
  return rdata_to_wire(Rdata(copy));
}

RRType rdata_type(const Rdata& rdata) {
  struct Visitor {
    RRType operator()(const ARdata&) const { return RRType::kA; }
    RRType operator()(const AaaaRdata&) const { return RRType::kAAAA; }
    RRType operator()(const NsRdata&) const { return RRType::kNS; }
    RRType operator()(const CnameRdata&) const { return RRType::kCNAME; }
    RRType operator()(const SoaRdata&) const { return RRType::kSOA; }
    RRType operator()(const MxRdata&) const { return RRType::kMX; }
    RRType operator()(const TxtRdata&) const { return RRType::kTXT; }
    RRType operator()(const DnskeyRdata&) const { return RRType::kDNSKEY; }
    RRType operator()(const DsRdata&) const { return RRType::kDS; }
    RRType operator()(const RrsigRdata&) const { return RRType::kRRSIG; }
    RRType operator()(const NsecRdata&) const { return RRType::kNSEC; }
    RRType operator()(const Nsec3Rdata&) const { return RRType::kNSEC3; }
    RRType operator()(const Nsec3ParamRdata&) const {
      return RRType::kNSEC3PARAM;
    }
    RRType operator()(const CdsRdata&) const { return RRType::kCDS; }
    RRType operator()(const CdnskeyRdata&) const { return RRType::kCDNSKEY; }
  };
  return std::visit(Visitor{}, rdata);
}

Bytes encode_type_bitmap(const std::set<RRType>& types) {
  Bytes out;
  // Window blocks of 256 types each (RFC 4034 §4.1.2).
  int current_window = -1;
  std::array<std::uint8_t, 32> bits{};
  int max_octet = -1;
  const auto flush = [&] {
    if (current_window < 0 || max_octet < 0) return;
    DFX_DCHECK(max_octet < 32);
    out.push_back(static_cast<std::uint8_t>(current_window));
    out.push_back(static_cast<std::uint8_t>(max_octet + 1));
    for (int i = 0; i <= max_octet; ++i) {
      out.push_back(bits[static_cast<std::size_t>(i)]);
    }
  };
  for (RRType t : types) {
    const std::uint16_t v = static_cast<std::uint16_t>(t);
    const int window = v >> 8;
    if (window != current_window) {
      flush();
      current_window = window;
      bits.fill(0);
      max_octet = -1;
    }
    const int octet = (v & 0xFF) >> 3;
    bits[static_cast<std::size_t>(octet)] |=
        static_cast<std::uint8_t>(0x80 >> (v & 7));
    if (octet > max_octet) max_octet = octet;
  }
  flush();
  return out;
}

std::set<RRType> decode_type_bitmap(ByteView data) {
  std::set<RRType> out;
  std::size_t pos = 0;
  // Every window block consumes at least 3 octets, so iterations are
  // bounded by the input size even for adversarial bitmaps.
  DFX_BOUNDED_LOOP(guard, data.size() / 3 + 1);
  while (pos + 2 <= data.size()) {
    guard.tick();
    const int window = data[pos];
    const std::size_t len = data[pos + 1];
    pos += 2;
    if (len == 0 || len > 32 || pos + len > data.size()) break;
    for (std::size_t i = 0; i < len; ++i) {
      const std::uint8_t octet = data[pos + i];
      for (int bit = 0; bit < 8; ++bit) {
        if ((octet & (0x80 >> bit)) != 0) {
          out.insert(static_cast<RRType>((window << 8) | (i * 8 + bit)));
        }
      }
    }
    pos += len;
  }
  return out;
}

Bytes rdata_to_wire(const Rdata& rdata) {
  Bytes out;
  struct Visitor {
    Bytes& out;

    void operator()(const ARdata& r) const {
      append(out, ByteView(r.address));
    }
    void operator()(const AaaaRdata& r) const {
      append(out, ByteView(r.address));
    }
    void operator()(const NsRdata& r) const {
      append(out, r.nsdname.to_canonical_wire());
    }
    void operator()(const CnameRdata& r) const {
      append(out, r.target.to_canonical_wire());
    }
    void operator()(const SoaRdata& r) const {
      append(out, r.mname.to_canonical_wire());
      append(out, r.rname.to_canonical_wire());
      append_u32(out, r.serial);
      append_u32(out, r.refresh);
      append_u32(out, r.retry);
      append_u32(out, r.expire);
      append_u32(out, r.minimum);
    }
    void operator()(const MxRdata& r) const {
      append_u16(out, r.preference);
      append(out, r.exchange.to_canonical_wire());
    }
    void operator()(const TxtRdata& r) const {
      for (const auto& s : r.strings) {
        DFX_CHECK(s.size() <= 255, "TXT character-string of %zu octets",
                  s.size());
        append_u8(out, static_cast<std::uint8_t>(s.size()));
        append(out, as_bytes(s));
      }
    }
    void operator()(const DnskeyRdata& r) const {
      append_u16(out, r.flags);
      append_u8(out, r.protocol);
      append_u8(out, r.algorithm);
      append(out, r.public_key);
    }
    void operator()(const DsRdata& r) const {
      append_u16(out, r.key_tag);
      append_u8(out, r.algorithm);
      append_u8(out, r.digest_type);
      append(out, r.digest);
    }
    void operator()(const RrsigRdata& r) const {
      append_u16(out, static_cast<std::uint16_t>(r.type_covered));
      append_u8(out, r.algorithm);
      append_u8(out, r.labels);
      append_u32(out, r.original_ttl);
      append_u32(out, static_cast<std::uint32_t>(r.expiration));
      append_u32(out, static_cast<std::uint32_t>(r.inception));
      append_u16(out, r.key_tag);
      append(out, r.signer.to_canonical_wire());
      append(out, r.signature);
    }
    void operator()(const NsecRdata& r) const {
      append(out, r.next.to_canonical_wire());
      append(out, encode_type_bitmap(r.types));
    }
    void operator()(const Nsec3Rdata& r) const {
      DFX_CHECK(r.salt.size() <= 255, "NSEC3 salt of %zu octets",
                r.salt.size());
      DFX_CHECK(r.next_hashed.size() <= 255, "NSEC3 hash of %zu octets",
                r.next_hashed.size());
      append_u8(out, r.hash_algorithm);
      append_u8(out, r.flags);
      append_u16(out, r.iterations);
      append_u8(out, static_cast<std::uint8_t>(r.salt.size()));
      append(out, r.salt);
      append_u8(out, static_cast<std::uint8_t>(r.next_hashed.size()));
      append(out, r.next_hashed);
      append(out, encode_type_bitmap(r.types));
    }
    void operator()(const Nsec3ParamRdata& r) const {
      DFX_CHECK(r.salt.size() <= 255, "NSEC3PARAM salt of %zu octets",
                r.salt.size());
      append_u8(out, r.hash_algorithm);
      append_u8(out, r.flags);
      append_u16(out, r.iterations);
      append_u8(out, static_cast<std::uint8_t>(r.salt.size()));
      append(out, r.salt);
    }
    void operator()(const CdsRdata& r) const { (*this)(r.ds); }
    void operator()(const CdnskeyRdata& r) const { (*this)(r.dnskey); }
  };
  std::visit(Visitor{out}, rdata);
  return out;
}

std::string type_set_to_text(const std::set<RRType>& types) {
  std::vector<std::string> names;
  names.reserve(types.size());
  for (RRType t : types) names.push_back(rrtype_to_string(t));
  return join(names, " ");
}

std::string rdata_to_text(const Rdata& rdata) {
  struct Visitor {
    std::string operator()(const ARdata& r) const { return r.to_text(); }
    std::string operator()(const AaaaRdata& r) const { return r.to_text(); }
    std::string operator()(const NsRdata& r) const {
      return r.nsdname.to_string();
    }
    std::string operator()(const CnameRdata& r) const {
      return r.target.to_string();
    }
    std::string operator()(const SoaRdata& r) const {
      return r.mname.to_string() + " " + r.rname.to_string() + " " +
             std::to_string(r.serial) + " " + std::to_string(r.refresh) +
             " " + std::to_string(r.retry) + " " + std::to_string(r.expire) +
             " " + std::to_string(r.minimum);
    }
    std::string operator()(const MxRdata& r) const {
      return std::to_string(r.preference) + " " + r.exchange.to_string();
    }
    std::string operator()(const TxtRdata& r) const {
      std::vector<std::string> quoted;
      quoted.reserve(r.strings.size());
      for (const auto& s : r.strings) quoted.push_back("\"" + s + "\"");
      return join(quoted, " ");
    }
    std::string operator()(const DnskeyRdata& r) const {
      return std::to_string(r.flags) + " " + std::to_string(r.protocol) +
             " " + std::to_string(r.algorithm) + " " +
             base64_encode(r.public_key);
    }
    std::string operator()(const DsRdata& r) const {
      return std::to_string(r.key_tag) + " " + std::to_string(r.algorithm) +
             " " + std::to_string(r.digest_type) + " " + hex_encode(r.digest);
    }
    std::string operator()(const RrsigRdata& r) const {
      return rrtype_to_string(r.type_covered) + " " +
             std::to_string(r.algorithm) + " " + std::to_string(r.labels) +
             " " + std::to_string(r.original_ttl) + " " +
             format_dnssec_time(r.expiration) + " " +
             format_dnssec_time(r.inception) + " " +
             std::to_string(r.key_tag) + " " + r.signer.to_string() + " " +
             base64_encode(r.signature);
    }
    std::string operator()(const NsecRdata& r) const {
      std::string out = r.next.to_string();
      if (!r.types.empty()) out += " " + type_set_to_text(r.types);
      return out;
    }
    std::string operator()(const Nsec3Rdata& r) const {
      std::string out = std::to_string(r.hash_algorithm) + " " +
                        std::to_string(r.flags) + " " +
                        std::to_string(r.iterations) + " " +
                        (r.salt.empty() ? "-" : hex_encode(r.salt)) + " " +
                        base32hex_encode(r.next_hashed);
      if (!r.types.empty()) out += " " + type_set_to_text(r.types);
      return out;
    }
    std::string operator()(const Nsec3ParamRdata& r) const {
      return std::to_string(r.hash_algorithm) + " " +
             std::to_string(r.flags) + " " + std::to_string(r.iterations) +
             " " + (r.salt.empty() ? "-" : hex_encode(r.salt));
    }
    std::string operator()(const CdsRdata& r) const { return (*this)(r.ds); }
    std::string operator()(const CdnskeyRdata& r) const {
      return (*this)(r.dnskey);
    }
  };
  return std::visit(Visitor{}, rdata);
}

}  // namespace dfx::dns
