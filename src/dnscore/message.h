// DNS message format (RFC 1035 §4) with name compression.
//
// The in-process authoritative servers exchange typed structures for speed,
// but the full wire codec is implemented (and tested) so the substrate is a
// complete DNS library; the probe engine round-trips responses through it
// in wire-check mode.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <vector>

#include "dnscore/name.h"
#include "dnscore/rr.h"
#include "dnscore/rrset.h"
#include "util/bytes.h"
#include "util/check.hpp"

namespace dfx::dns {

struct Header {
  std::uint16_t id = 0;
  bool qr = false;  // response flag
  std::uint8_t opcode = 0;
  bool aa = false;  // authoritative answer
  bool tc = false;
  bool rd = false;
  bool ra = false;
  bool ad = false;  // authenticated data
  bool cd = false;  // checking disabled
  RCode rcode = RCode::kNoError;
};

struct Question {
  Name qname;
  RRType qtype = RRType::kA;
  RRClass qclass = RRClass::kIN;
};

/// The OPT pseudo-record's TYPE value (RFC 6891). OPT never enters an
/// RRset or a zone, so it is deliberately *not* an RRType enumerator: the
/// codec lifts it into `EdnsInfo` on decode and synthesizes it on encode.
constexpr std::uint16_t kOptType = 41;

/// Classic (pre-EDNS) UDP payload ceiling (RFC 1035 §4.2.1).
constexpr std::uint16_t kClassicUdpSize = 512;

/// EDNS(0) state carried by the OPT pseudo-record (RFC 6891). The wire
/// fields ride in the record's CLASS (udp_size) and TTL (ext_rcode /
/// version / DO); `options` is the raw RDATA (option TLVs, unparsed).
struct EdnsInfo {
  // Decoded straight off the OPT record: every field is attacker data
  // until a bound check proves otherwise (dfixer_lint taint pack).
  DFX_TAINTED std::uint16_t udp_size = kClassicUdpSize;
  DFX_TAINTED std::uint8_t ext_rcode = 0;  // upper 8 bits of 12-bit RCODE
  DFX_TAINTED std::uint8_t version = 0;
  bool do_bit = false;
  DFX_TAINTED Bytes options;

  bool operator==(const EdnsInfo&) const = default;
};

struct Message {
  Header header;
  std::vector<Question> questions;
  std::vector<ResourceRecord> answers;
  std::vector<ResourceRecord> authorities;
  std::vector<ResourceRecord> additionals;
  /// Present iff the message carries an OPT record. Encoded as the last
  /// additional; counted in ARCOUNT but never stored in `additionals`.
  std::optional<EdnsInfo> edns;
};

/// Encode with owner-name compression across all sections. A present
/// `edns` field emits the OPT pseudo-record at the end of the additional
/// section.
Bytes encode_message(const Message& msg);

/// Decode; nullopt on malformed input (including trailing bytes after the
/// last record, or more than one OPT record — RFC 6891 §6.1.1). An OPT
/// record in the additional section decodes into `edns`, not `additionals`.
[[nodiscard]] std::optional<Message> decode_message(ByteView wire);

}  // namespace dfx::dns
