// DNS message format (RFC 1035 §4) with name compression.
//
// The in-process authoritative servers exchange typed structures for speed,
// but the full wire codec is implemented (and tested) so the substrate is a
// complete DNS library; the probe engine round-trips responses through it
// in wire-check mode.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <string_view>
#include <vector>

#include "dnscore/arena.h"
#include "dnscore/name.h"
#include "dnscore/rr.h"
#include "dnscore/rrset.h"
#include "util/bytes.h"
#include "util/check.hpp"

namespace dfx::dns {

struct Header {
  std::uint16_t id = 0;
  bool qr = false;  // response flag
  std::uint8_t opcode = 0;
  bool aa = false;  // authoritative answer
  bool tc = false;
  bool rd = false;
  bool ra = false;
  bool ad = false;  // authenticated data
  bool cd = false;  // checking disabled
  RCode rcode = RCode::kNoError;
};

struct Question {
  Name qname;
  RRType qtype = RRType::kA;
  RRClass qclass = RRClass::kIN;
};

/// The OPT pseudo-record's TYPE value (RFC 6891). OPT never enters an
/// RRset or a zone, so it is deliberately *not* an RRType enumerator: the
/// codec lifts it into `EdnsInfo` on decode and synthesizes it on encode.
constexpr std::uint16_t kOptType = 41;

/// Classic (pre-EDNS) UDP payload ceiling (RFC 1035 §4.2.1).
constexpr std::uint16_t kClassicUdpSize = 512;

/// EDNS(0) state carried by the OPT pseudo-record (RFC 6891). The wire
/// fields ride in the record's CLASS (udp_size) and TTL (ext_rcode /
/// version / DO); `options` is the raw RDATA (option TLVs, unparsed).
struct EdnsInfo {
  // Decoded straight off the OPT record: every field is attacker data
  // until a bound check proves otherwise (dfixer_lint taint pack).
  DFX_TAINTED std::uint16_t udp_size = kClassicUdpSize;
  DFX_TAINTED std::uint8_t ext_rcode = 0;  // upper 8 bits of 12-bit RCODE
  DFX_TAINTED std::uint8_t version = 0;
  bool do_bit = false;
  DFX_TAINTED Bytes options;

  bool operator==(const EdnsInfo&) const = default;
};

struct Message {
  Header header;
  std::vector<Question> questions;
  std::vector<ResourceRecord> answers;
  std::vector<ResourceRecord> authorities;
  std::vector<ResourceRecord> additionals;
  /// Present iff the message carries an OPT record. Encoded as the last
  /// additional; counted in ARCOUNT but never stored in `additionals`.
  std::optional<EdnsInfo> edns;
};

/// Encode with owner-name compression across all sections. A present
/// `edns` field emits the OPT pseudo-record at the end of the additional
/// section.
Bytes encode_message(const Message& msg);

/// Decode; nullopt on malformed input (including trailing bytes after the
/// last record, or more than one OPT record — RFC 6891 §6.1.1). An OPT
/// record in the additional section decodes into `edns`, not `additionals`.
[[nodiscard]] std::optional<Message> decode_message(ByteView wire);

// ---------------------------------------------------------------------------
// Zero-copy view layer.
//
// `parse_message_view` walks a packet without materializing Name/Rdata
// values: owner names become spans of label pieces aliasing the packet,
// RDATA stays a raw slice of it, and all bookkeeping (the piece and record
// arrays) lives in a caller-provided WireArena. Every view below is valid
// only while BOTH the packet buffer and the arena are alive and the arena
// has not been reset — see docs/PERFORMANCE.md for the ownership rules.

/// A question with its QNAME as zero-copy label pieces.
struct QuestionView {
  std::span<const std::string_view> qname;  // pieces alias the packet
  std::uint16_t qtype = 0;
  std::uint16_t qclass = 0;
};

/// A resource record header plus its raw RDATA slice. `rdata` is the wire
/// bytes exactly as received (names still compressed, case preserved); it
/// has NOT been validated per-type — feed it to `reencode_rdata` or
/// `rdata_from_wire` for that.
struct RecordView {
  std::span<const std::string_view> owner;  // pieces alias the packet
  DFX_TAINTED std::uint16_t type = 0;
  DFX_TAINTED std::uint16_t rrclass = 0;
  DFX_TAINTED std::uint32_t ttl = 0;
  DFX_TAINTED ByteView rdata;  // aliases the packet
};

/// OPT pseudo-record state, zero-copy counterpart of EdnsInfo.
struct EdnsView {
  DFX_TAINTED std::uint16_t udp_size = kClassicUdpSize;
  DFX_TAINTED std::uint8_t ext_rcode = 0;
  DFX_TAINTED std::uint8_t version = 0;
  bool do_bit = false;
  DFX_TAINTED ByteView options;  // aliases the packet (TLVs, walked-valid)
};

/// A parsed message whose every span points into the packet buffer or the
/// arena it was parsed with.
struct MessageView {
  std::uint16_t id = 0;
  /// Raw header flags word, Z bit included (decode_message drops it; the
  /// re-encode path masks it with 0xFFBF to match encode_message).
  std::uint16_t flags = 0;
  std::span<const QuestionView> questions;
  std::span<const RecordView> answers;
  std::span<const RecordView> authorities;
  std::span<const RecordView> additionals;
  std::optional<EdnsView> edns;
};

/// Structurally parse a message without copying: section geometry, name
/// wire rules, the KeyTrap count precheck, OPT placement/uniqueness/TLV
/// rules and the trailing-bytes check are all enforced exactly as in
/// `decode_message`, but RDATA content is NOT validated per-type (that is
/// the one acceptance difference — a message with, say, a 3-octet A record
/// parses here and only fails at re-encode). No per-record heap
/// allocation: all arrays come from `arena`.
DFX_HOT_PATH
[[nodiscard]] std::optional<MessageView> parse_message_view(ByteView wire,
                                                            WireArena& arena);

/// One-pass re-encode: appends to `out` exactly the bytes
/// `encode_message(*decode_message(wire))` would produce, without
/// materializing a Message — names are recompressed through the same
/// compression table the owned encoder uses, RDATA is re-canonicalized via
/// `reencode_rdata`, and a present OPT record is re-emitted last. Returns
/// false, leaving `out` untouched, exactly when `decode_message` returns
/// nullopt. `arena` backs the intermediate views and is not reset here;
/// callers reusing one arena across packets should reset it between them.
/// Equivalence with the owned path is pinned by differential tests over
/// the fuzz corpus; this is the path `bench_wire_throughput` measures.
DFX_HOT_PATH
[[nodiscard]] bool reencode_message(ByteView wire, WireArena& arena,
                                    Bytes& out);

}  // namespace dfx::dns
