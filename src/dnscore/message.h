// DNS message format (RFC 1035 §4) with name compression.
//
// The in-process authoritative servers exchange typed structures for speed,
// but the full wire codec is implemented (and tested) so the substrate is a
// complete DNS library; the probe engine round-trips responses through it
// in wire-check mode.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <vector>

#include "dnscore/name.h"
#include "dnscore/rr.h"
#include "dnscore/rrset.h"
#include "util/bytes.h"

namespace dfx::dns {

struct Header {
  std::uint16_t id = 0;
  bool qr = false;  // response flag
  std::uint8_t opcode = 0;
  bool aa = false;  // authoritative answer
  bool tc = false;
  bool rd = false;
  bool ra = false;
  bool ad = false;  // authenticated data
  bool cd = false;  // checking disabled
  RCode rcode = RCode::kNoError;
};

struct Question {
  Name qname;
  RRType qtype = RRType::kA;
  RRClass qclass = RRClass::kIN;
};

struct Message {
  Header header;
  std::vector<Question> questions;
  std::vector<ResourceRecord> answers;
  std::vector<ResourceRecord> authorities;
  std::vector<ResourceRecord> additionals;
};

/// Encode with owner-name compression across all sections.
Bytes encode_message(const Message& msg);

/// Decode; nullopt on malformed input.
[[nodiscard]] std::optional<Message> decode_message(ByteView wire);

}  // namespace dfx::dns
