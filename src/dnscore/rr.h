// Resource-record types, classes, and DNSKEY flag constants.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

namespace dfx::dns {

/// RR TYPE values (RFC 1035 / 4034 / 5155).
enum class RRType : std::uint16_t {
  kA = 1,
  kNS = 2,
  kCNAME = 5,
  kSOA = 6,
  kMX = 15,
  kTXT = 16,
  kAAAA = 28,
  kDS = 43,
  kRRSIG = 46,
  kNSEC = 47,
  kDNSKEY = 48,
  kNSEC3 = 50,
  kNSEC3PARAM = 51,
  kCDS = 59,      // RFC 7344: child's desired DS set
  kCDNSKEY = 60,  // RFC 7344: child's desired DNSKEY-at-parent set
};

enum class RRClass : std::uint16_t {
  kIN = 1,
};

/// Mnemonic ("A", "RRSIG", ...). Unknown types render as "TYPEnnn".
std::string rrtype_to_string(RRType type);

/// Parse a mnemonic or "TYPEnnn" form.
std::optional<RRType> rrtype_from_string(std::string_view text);

/// DNSKEY flag bits (RFC 4034 §2.1.1, RFC 5011).
constexpr std::uint16_t kDnskeyFlagZone = 0x0100;    // bit 7: Zone Key
constexpr std::uint16_t kDnskeyFlagRevoke = 0x0080;  // bit 8: REVOKE
constexpr std::uint16_t kDnskeyFlagSep = 0x0001;     // bit 15: SEP (KSK)

/// NSEC3 flag bits (RFC 5155 §3.1.2).
constexpr std::uint8_t kNsec3FlagOptOut = 0x01;

/// Response codes the authoritative server model can return. FORMERR and
/// NOTIMP are produced only by the wire frontend (src/server) for
/// malformed or unsupported packets; the typed query path never sees them.
enum class RCode : std::uint8_t {
  kNoError = 0,
  kFormErr = 1,
  kServFail = 2,
  kNXDomain = 3,
  kNotImp = 4,
  kRefused = 5,
};

std::string rcode_to_string(RCode rcode);

}  // namespace dfx::dns
