#include "dnscore/tokenizer.h"

#include <array>
#include <memory>

#include "util/check.hpp"

namespace dfx::dns {
namespace {

// Byte classes. kOrdinary must be 0 so the table's default fill covers it.
enum Cls : std::uint8_t {
  kOrdinary = 0,
  kBlank,
  kNewline,
  kComment,
  kQuote,
  kOpen,
  kClose,
};

constexpr std::array<std::uint8_t, 256> make_class_table() {
  std::array<std::uint8_t, 256> t{};
  // The blank set is exactly std::isspace's, minus '\n' which is
  // structural (it ends a physical line).
  t[static_cast<unsigned char>(' ')] = kBlank;
  t[static_cast<unsigned char>('\t')] = kBlank;
  t[static_cast<unsigned char>('\v')] = kBlank;
  t[static_cast<unsigned char>('\f')] = kBlank;
  t[static_cast<unsigned char>('\r')] = kBlank;
  t[static_cast<unsigned char>('\n')] = kNewline;
  t[static_cast<unsigned char>(';')] = kComment;
  t[static_cast<unsigned char>('"')] = kQuote;
  t[static_cast<unsigned char>('(')] = kOpen;
  t[static_cast<unsigned char>(')')] = kClose;
  return t;
}

constexpr std::array<std::uint8_t, 256> kClassTable = make_class_table();

inline Cls cls(char c) {
  return static_cast<Cls>(kClassTable[static_cast<unsigned char>(c)]);
}

}  // namespace

std::string_view MasterFileTokenizer::scan_bare_token() {
  const std::size_t start = pos_;
  while (pos_ < text_.size() && cls(text_[pos_]) == kOrdinary) ++pos_;
  return text_.substr(start, pos_ - start);
}

std::string_view MasterFileTokenizer::scan_quoted_token() {
  DFX_DCHECK(pos_ < text_.size() && text_[pos_] == '"');
  const std::size_t start = pos_;
  ++pos_;
  bool has_escape = false;
  bool closed = false;
  while (pos_ < text_.size()) {
    const char c = text_[pos_];
    if (c == '\n') break;  // unterminated: the token ends at the newline
    if (c == '\\' && pos_ + 1 < text_.size() && text_[pos_ + 1] != '\n') {
      has_escape = true;
      pos_ += 2;
      continue;
    }
    ++pos_;
    if (c == '"' && pos_ > start + 1) {
      closed = true;
      break;
    }
  }
  const std::string_view raw = text_.substr(start, pos_ - start);
  if (!has_escape) return raw;  // zero-copy fast path
  // Escape path: resolve \X and \DDD, keep the surrounding quotes so the
  // token looks exactly like an unescaped quoted token downstream.
  const auto is_digit = [](char c) { return c >= '0' && c <= '9'; };
  std::string built;
  built.reserve(raw.size());
  built.push_back('"');
  const std::size_t end = raw.size() - (closed ? 1 : 0);  // content bytes
  std::size_t i = 1;
  while (i < end) {
    const char c = raw[i];
    if (c != '\\') {
      built.push_back(c);
      ++i;
      continue;
    }
    if (i + 1 >= end) {  // lone trailing backslash: keep it literal
      built.push_back('\\');
      ++i;
      continue;
    }
    // \DDD: exactly three decimal digits name one octet (RFC 1035 §5.1).
    if (i + 3 < end && is_digit(raw[i + 1]) && is_digit(raw[i + 2]) &&
        is_digit(raw[i + 3])) {
      const int v = (raw[i + 1] - '0') * 100 + (raw[i + 2] - '0') * 10 +
                    (raw[i + 3] - '0');
      if (v <= 255) {
        built.push_back(static_cast<char>(v));
        i += 4;
        continue;
      }
    }
    built.push_back(raw[i + 1]);  // \X: literal X
    i += 2;
  }
  if (closed) built.push_back('"');
  return arena_.copy(std::string_view(built));
}

// fields_ is per-tokenizer scratch whose capacity is retained across
// lines; only escaped tokens reach the (arena) copy path.
// dfx-lint: allow(hot-path-cost): amortized scratch-vector growth.
bool MasterFileTokenizer::next(MasterLine& out) {
  if (error_.has_value()) return false;
  while (pos_ < text_.size()) {
    const std::size_t entry_line = line_;
    const bool leading = cls(text_[pos_]) == kBlank;
    fields_.clear();
    int depth = 0;
    bool at_eof = false;
    // One logical line: until a newline at paren depth 0 (or EOF).
    DFX_BOUNDED_LOOP(guard, text_.size() + 1);
    while (true) {
      if (pos_ >= text_.size()) {
        at_eof = true;
        break;
      }
      guard.tick();  // every branch below advances pos_
      const char c = text_[pos_];
      switch (cls(c)) {
        case kNewline:
          ++pos_;
          ++line_;
          break;
        case kBlank:
          ++pos_;
          break;
        case kComment:
          while (pos_ < text_.size() && text_[pos_] != '\n') ++pos_;
          break;
        case kOpen:
          ++depth;
          ++pos_;
          break;
        case kClose:
          if (depth == 0) {
            error_ = TokenizeError{line_, "unbalanced parentheses"};
            return false;
          }
          --depth;
          ++pos_;
          break;
        case kQuote:
          fields_.push_back(scan_quoted_token());
          break;
        case kOrdinary:
          fields_.push_back(scan_bare_token());
          break;
      }
      if (cls(c) == kNewline && depth == 0) break;
    }
    if (at_eof && depth != 0) {
      error_ = TokenizeError{entry_line, "unbalanced parentheses"};
      return false;
    }
    if (fields_.empty()) continue;  // blank or comment-only line
    const auto stored = arena_.alloc_array<std::string_view>(fields_.size());
    for (std::size_t i = 0; i < fields_.size(); ++i) {
      std::construct_at(&stored[i], fields_[i]);  // arena memory is raw
    }
    out.line = entry_line;
    out.leading_ws = leading;
    out.fields = {stored.data(), stored.size()};
    return true;
  }
  return false;
}

}  // namespace dfx::dns
