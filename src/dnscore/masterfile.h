// Master-file (RFC 1035 §5) zone data codec: parse and print the textual
// zone format that dnssec-signzone consumes and produces.
//
// Supported: $ORIGIN, $TTL, relative names, '@', per-record TTLs, comments,
// and the presentation syntax of every RRType in rdata.h. Multi-line
// parentheses are supported for SOA.
#pragma once

#include <span>
#include <string>
#include <string_view>
#include <variant>
#include <vector>

#include "dnscore/name.h"
#include "dnscore/rrset.h"

namespace dfx::dns {

struct MasterFileError {
  std::size_t line = 0;
  std::string message;
};

/// Parse zone-file text. `default_origin` seeds $ORIGIN; records are
/// returned in file order.
[[nodiscard]] std::variant<std::vector<ResourceRecord>, MasterFileError>
parse_master_file(
    std::string_view text, const Name& default_origin,
    std::uint32_t default_ttl = 3600);

/// Render records as zone-file text (absolute names, one per line).
std::string print_master_file(const std::vector<ResourceRecord>& records);

/// Parse the presentation form of a single RDATA given its type and origin
/// for relative names. Returns error message on failure. This is the
/// zero-copy core: `fields` are tokenizer views (see dnscore/tokenizer.h)
/// and are only read, never retained.
[[nodiscard]] std::variant<Rdata, std::string> parse_rdata_text(
    RRType type, std::span<const std::string_view> fields, const Name& origin);

/// Convenience overload over owned fields (tests, tools); delegates to the
/// span core.
[[nodiscard]] std::variant<Rdata, std::string> parse_rdata_text(
    RRType type, const std::vector<std::string>& fields, const Name& origin);

}  // namespace dfx::dns
