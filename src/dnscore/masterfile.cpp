#include "dnscore/masterfile.h"

#include <cctype>
#include <charconv>

#include "dnscore/tokenizer.h"
#include "util/check.hpp"
#include "util/codec.h"
#include "util/simclock.h"
#include "util/strings.h"

namespace dfx::dns {
namespace {

bool parse_u32(std::string_view text, std::uint32_t& out) {
  std::uint64_t v = 0;
  if (text.empty()) return false;
  for (char c : text) {
    if (c < '0' || c > '9') return false;
    v = v * 10 + static_cast<std::uint64_t>(c - '0');
    if (v > 0xFFFFFFFFULL) return false;
  }
  out = static_cast<std::uint32_t>(v);
  return true;
}

/// TTL with optional BIND-style unit suffixes: 30, 30s, 5m, 2h, 1d, 1w,
/// and concatenations like "1h30m".
bool parse_ttl_value(std::string_view text, std::uint32_t& out) {
  if (text.empty()) return false;
  std::uint64_t total = 0;
  std::uint64_t current = 0;
  bool have_digits = false;
  bool have_unit = false;
  for (char c : text) {
    if (c >= '0' && c <= '9') {
      current = current * 10 + static_cast<std::uint64_t>(c - '0');
      if (current > 0xFFFFFFFFULL) return false;
      have_digits = true;
      continue;
    }
    if (!have_digits) return false;
    std::uint64_t unit = 0;
    switch (std::tolower(static_cast<unsigned char>(c))) {
      case 's': unit = 1; break;
      case 'm': unit = 60; break;
      case 'h': unit = 3600; break;
      case 'd': unit = 86400; break;
      case 'w': unit = 604800; break;
      default: return false;
    }
    total += current * unit;
    if (total > 0xFFFFFFFFULL) return false;
    current = 0;
    have_digits = false;
    have_unit = true;
  }
  if (have_digits) {
    if (have_unit) return false;  // "1h30" — trailing number without unit
    total = current;
  }
  if (total > 0xFFFFFFFFULL) return false;
  out = static_cast<std::uint32_t>(total);
  return true;
}

bool parse_u16(std::string_view text, std::uint16_t& out) {
  std::uint32_t v = 0;
  if (!parse_u32(text, v) || v > 0xFFFF) return false;
  out = static_cast<std::uint16_t>(v);
  return true;
}

bool parse_u8(std::string_view text, std::uint8_t& out) {
  std::uint32_t v = 0;
  if (!parse_u32(text, v) || v > 0xFF) return false;
  out = static_cast<std::uint8_t>(v);
  return true;
}

std::optional<Name> parse_name_rel(std::string_view text, const Name& origin) {
  if (text == "@") return origin;
  if (!text.empty() && text.back() == '.') return Name::parse(text);
  // Relative name: append origin.
  auto rel = Name::parse(std::string(text) + "." + origin.to_string());
  return rel;
}

bool parse_ipv4(std::string_view text, std::array<std::uint8_t, 4>& out) {
  const auto parts = split(text, '.');
  if (parts.size() != 4) return false;
  for (int i = 0; i < 4; ++i) {
    std::uint32_t v = 0;
    if (!parse_u32(parts[static_cast<std::size_t>(i)], v) || v > 255) {
      return false;
    }
    out[static_cast<std::size_t>(i)] = static_cast<std::uint8_t>(v);
  }
  return true;
}

bool parse_ipv6(std::string_view text, std::array<std::uint8_t, 16>& out) {
  // Supports full and '::'-compressed forms, no embedded IPv4.
  std::vector<std::uint16_t> head;
  std::vector<std::uint16_t> tail;
  bool seen_gap = false;
  std::size_t start = 0;
  const std::string s(text);
  std::size_t gap = s.find("::");
  std::string head_part = gap == std::string::npos ? s : s.substr(0, gap);
  std::string tail_part = gap == std::string::npos ? "" : s.substr(gap + 2);
  seen_gap = gap != std::string::npos;
  const auto parse_groups = [](const std::string& part,
                               std::vector<std::uint16_t>& groups) {
    if (part.empty()) return true;
    for (const auto& g : split(part, ':')) {
      if (g.empty() || g.size() > 4) return false;
      std::uint16_t v = 0;
      for (char c : g) {
        int d;
        if (c >= '0' && c <= '9') {
          d = c - '0';
        } else if (c >= 'a' && c <= 'f') {
          d = c - 'a' + 10;
        } else if (c >= 'A' && c <= 'F') {
          d = c - 'A' + 10;
        } else {
          return false;
        }
        v = static_cast<std::uint16_t>(((v << 4) | d) & 0xFFFF);
      }
      groups.push_back(v);
    }
    return true;
  };
  (void)start;
  if (!parse_groups(head_part, head) || !parse_groups(tail_part, tail)) {
    return false;
  }
  const std::size_t total = head.size() + tail.size();
  if ((seen_gap && total >= 8) || (!seen_gap && total != 8)) return false;
  std::vector<std::uint16_t> groups = head;
  groups.insert(groups.end(), 8 - total, 0);
  groups.insert(groups.end(), tail.begin(), tail.end());
  for (int i = 0; i < 8; ++i) {
    out[static_cast<std::size_t>(i * 2)] =
        static_cast<std::uint8_t>(groups[static_cast<std::size_t>(i)] >> 8);
    out[static_cast<std::size_t>(i * 2 + 1)] =
        static_cast<std::uint8_t>(groups[static_cast<std::size_t>(i)] & 0xFF);
  }
  return true;
}

}  // namespace

std::variant<Rdata, std::string> parse_rdata_text(
    RRType type, std::span<const std::string_view> fields,
    const Name& origin) {
  const auto err = [](std::string msg) -> std::variant<Rdata, std::string> {
    return msg;
  };
  const auto need = [&](std::size_t n) { return fields.size() >= n; };
  switch (type) {
    case RRType::kA: {
      ARdata a;
      if (!need(1) || !parse_ipv4(fields[0], a.address)) {
        return err("bad A rdata");
      }
      return Rdata(a);
    }
    case RRType::kAAAA: {
      AaaaRdata a;
      if (!need(1) || !parse_ipv6(fields[0], a.address)) {
        return err("bad AAAA rdata");
      }
      return Rdata(a);
    }
    case RRType::kNS: {
      if (!need(1)) return err("bad NS rdata");
      auto name = parse_name_rel(fields[0], origin);
      if (!name) return err("bad NS target");
      return Rdata(NsRdata{*name});
    }
    case RRType::kCNAME: {
      if (!need(1)) return err("bad CNAME rdata");
      auto name = parse_name_rel(fields[0], origin);
      if (!name) return err("bad CNAME target");
      return Rdata(CnameRdata{*name});
    }
    case RRType::kSOA: {
      if (!need(7)) return err("bad SOA rdata");
      SoaRdata soa;
      auto mname = parse_name_rel(fields[0], origin);
      auto rname = parse_name_rel(fields[1], origin);
      if (!mname || !rname) return err("bad SOA names");
      soa.mname = *mname;
      soa.rname = *rname;
      if (!parse_u32(fields[2], soa.serial) ||
          !parse_u32(fields[3], soa.refresh) ||
          !parse_u32(fields[4], soa.retry) ||
          !parse_u32(fields[5], soa.expire) ||
          !parse_u32(fields[6], soa.minimum)) {
        return err("bad SOA numbers");
      }
      return Rdata(soa);
    }
    case RRType::kMX: {
      if (!need(2)) return err("bad MX rdata");
      MxRdata mx;
      if (!parse_u16(fields[0], mx.preference)) return err("bad MX pref");
      auto name = parse_name_rel(fields[1], origin);
      if (!name) return err("bad MX exchange");
      mx.exchange = *name;
      return Rdata(mx);
    }
    case RRType::kTXT: {
      if (fields.empty()) return err("bad TXT rdata");
      TxtRdata txt;
      for (const auto f : fields) {
        std::string s(f);
        if (s.size() >= 2 && s.front() == '"' && s.back() == '"') {
          s = s.substr(1, s.size() - 2);
        }
        if (s.size() > 255) return err("TXT string too long");
        txt.strings.push_back(std::move(s));
      }
      return Rdata(txt);
    }
    case RRType::kDNSKEY: {
      if (!need(4)) return err("bad DNSKEY rdata");
      DnskeyRdata k;
      if (!parse_u16(fields[0], k.flags) || !parse_u8(fields[1], k.protocol) ||
          !parse_u8(fields[2], k.algorithm)) {
        return err("bad DNSKEY numbers");
      }
      std::string b64;
      for (std::size_t i = 3; i < fields.size(); ++i) b64 += fields[i];
      auto key = base64_decode(b64);
      if (!key) return err("bad DNSKEY base64");
      k.public_key = *std::move(key);
      return Rdata(k);
    }
    case RRType::kDS: {
      if (!need(4)) return err("bad DS rdata");
      DsRdata ds;
      if (!parse_u16(fields[0], ds.key_tag) ||
          !parse_u8(fields[1], ds.algorithm) ||
          !parse_u8(fields[2], ds.digest_type)) {
        return err("bad DS numbers");
      }
      std::string hexstr;
      for (std::size_t i = 3; i < fields.size(); ++i) hexstr += fields[i];
      auto digest = hex_decode(hexstr);
      if (!digest) return err("bad DS digest hex");
      ds.digest = *std::move(digest);
      return Rdata(ds);
    }
    case RRType::kRRSIG: {
      if (!need(9)) return err("bad RRSIG rdata");
      RrsigRdata sig;
      auto covered = rrtype_from_string(fields[0]);
      if (!covered) return err("bad RRSIG type covered");
      sig.type_covered = *covered;
      std::uint32_t ottl = 0;
      if (!parse_u8(fields[1], sig.algorithm) ||
          !parse_u8(fields[2], sig.labels) || !parse_u32(fields[3], ottl)) {
        return err("bad RRSIG numbers");
      }
      sig.original_ttl = ottl;
      sig.expiration = parse_dnssec_time(std::string(fields[4]));
      sig.inception = parse_dnssec_time(std::string(fields[5]));
      if (sig.expiration < 0 || sig.inception < 0) {
        return err("bad RRSIG times");
      }
      if (!parse_u16(fields[6], sig.key_tag)) return err("bad RRSIG key tag");
      auto signer = parse_name_rel(fields[7], origin);
      if (!signer) return err("bad RRSIG signer");
      sig.signer = *signer;
      std::string b64;
      for (std::size_t i = 8; i < fields.size(); ++i) b64 += fields[i];
      auto sigbytes = base64_decode(b64);
      if (!sigbytes) return err("bad RRSIG base64");
      sig.signature = *std::move(sigbytes);
      return Rdata(sig);
    }
    case RRType::kNSEC: {
      if (!need(1)) return err("bad NSEC rdata");
      NsecRdata n;
      auto next = parse_name_rel(fields[0], origin);
      if (!next) return err("bad NSEC next name");
      n.next = *next;
      for (std::size_t i = 1; i < fields.size(); ++i) {
        auto t = rrtype_from_string(fields[i]);
        if (!t) return err("bad NSEC type " + std::string(fields[i]));
        n.types.insert(*t);
      }
      return Rdata(n);
    }
    case RRType::kNSEC3: {
      if (!need(5)) return err("bad NSEC3 rdata");
      Nsec3Rdata n;
      if (!parse_u8(fields[0], n.hash_algorithm) ||
          !parse_u8(fields[1], n.flags) ||
          !parse_u16(fields[2], n.iterations)) {
        return err("bad NSEC3 numbers");
      }
      auto salt = hex_decode(fields[3]);
      if (!salt || salt->size() > 255) return err("bad NSEC3 salt");
      n.salt = *std::move(salt);
      auto next = base32hex_decode(fields[4]);
      if (!next || next->empty() || next->size() > 255) {
        return err("bad NSEC3 next hash");
      }
      n.next_hashed = *std::move(next);
      for (std::size_t i = 5; i < fields.size(); ++i) {
        auto t = rrtype_from_string(fields[i]);
        if (!t) return err("bad NSEC3 type " + std::string(fields[i]));
        n.types.insert(*t);
      }
      return Rdata(n);
    }
    case RRType::kCDS: {
      auto inner = parse_rdata_text(RRType::kDS, fields, origin);
      if (auto* msg = std::get_if<std::string>(&inner)) return err(*msg);
      return Rdata(CdsRdata{std::get<DsRdata>(std::get<Rdata>(inner))});
    }
    case RRType::kCDNSKEY: {
      auto inner = parse_rdata_text(RRType::kDNSKEY, fields, origin);
      if (auto* msg = std::get_if<std::string>(&inner)) return err(*msg);
      return Rdata(
          CdnskeyRdata{std::get<DnskeyRdata>(std::get<Rdata>(inner))});
    }
    case RRType::kNSEC3PARAM: {
      if (!need(4)) return err("bad NSEC3PARAM rdata");
      Nsec3ParamRdata p;
      if (!parse_u8(fields[0], p.hash_algorithm) ||
          !parse_u8(fields[1], p.flags) ||
          !parse_u16(fields[2], p.iterations)) {
        return err("bad NSEC3PARAM numbers");
      }
      auto salt = hex_decode(fields[3]);
      if (!salt || salt->size() > 255) return err("bad NSEC3PARAM salt");
      p.salt = *std::move(salt);
      return Rdata(p);
    }
  }
  return err("unsupported type " + rrtype_to_string(type));
}

std::variant<Rdata, std::string> parse_rdata_text(
    RRType type, const std::vector<std::string>& fields, const Name& origin) {
  std::vector<std::string_view> views(fields.begin(), fields.end());
  return parse_rdata_text(
      type, std::span<const std::string_view>(views.data(), views.size()),
      origin);
}

std::variant<std::vector<ResourceRecord>, MasterFileError> parse_master_file(
    std::string_view text, const Name& default_origin,
    std::uint32_t default_ttl) {
  std::vector<ResourceRecord> records;
  Name origin = default_origin;
  Name last_owner = default_origin;
  std::uint32_t ttl = default_ttl;

  // The tokenizer hands out views into `text` and this arena; both outlive
  // every use below (fields are consumed within the loop body).
  WireArena arena;
  MasterFileTokenizer tokenizer(text, arena);
  MasterLine entry;
  while (tokenizer.next(entry)) {
    const std::size_t lineno = entry.line;
    const auto fields = entry.fields;
    DFX_DCHECK(!fields.empty());  // tokenizer skips blank lines

    if (fields[0] == "$ORIGIN") {
      if (fields.size() < 2) return MasterFileError{lineno, "$ORIGIN arg"};
      auto o = Name::parse(fields[1]);
      if (!o) return MasterFileError{lineno, "bad $ORIGIN"};
      origin = *o;
      continue;
    }
    if (fields[0] == "$TTL") {
      if (fields.size() < 2 || !parse_ttl_value(fields[1], ttl)) {
        return MasterFileError{lineno, "bad $TTL"};
      }
      continue;
    }

    std::size_t idx = 0;
    Name owner = last_owner;
    if (!entry.leading_ws) {
      auto o = parse_name_rel(fields[idx], origin);
      if (!o) return MasterFileError{lineno, "bad owner name"};
      owner = *o;
      ++idx;
    }
    std::uint32_t rr_ttl = ttl;
    // Optional TTL and/or class, in either order.
    while (idx < fields.size()) {
      std::uint32_t maybe_ttl = 0;
      if (iequals(fields[idx], "IN")) {
        ++idx;
        continue;
      }
      if (parse_ttl_value(fields[idx], maybe_ttl)) {
        rr_ttl = maybe_ttl;
        ++idx;
        continue;
      }
      break;
    }
    if (idx >= fields.size()) return MasterFileError{lineno, "missing type"};
    auto type = rrtype_from_string(fields[idx]);
    if (!type) {
      return MasterFileError{lineno,
                             "unknown type " + std::string(fields[idx])};
    }
    ++idx;
    DFX_DCHECK(idx <= fields.size());
    auto rdata = parse_rdata_text(*type, fields.subspan(idx), origin);
    if (auto* msg = std::get_if<std::string>(&rdata)) {
      return MasterFileError{lineno, *msg};
    }
    ResourceRecord rr;
    rr.owner = owner;
    rr.type = *type;
    rr.ttl = rr_ttl;
    rr.rdata = std::get<Rdata>(std::move(rdata));
    records.push_back(std::move(rr));
    last_owner = owner;
  }
  if (tokenizer.error().has_value()) {
    return MasterFileError{tokenizer.error()->line,
                           tokenizer.error()->message};
  }
  return records;
}

std::string print_master_file(const std::vector<ResourceRecord>& records) {
  std::string out;
  for (const auto& rr : records) {
    out += rr.to_text();
    out.push_back('\n');
  }
  return out;
}

}  // namespace dfx::dns
