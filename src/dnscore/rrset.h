// RRsets: the unit DNSSEC signs. An RRset is all records sharing
// (owner, class, type); its RRSIGs cover the whole set.
#pragma once

#include <cstdint>
#include <vector>

#include "dnscore/name.h"
#include "dnscore/rdata.h"
#include "dnscore/rr.h"

namespace dfx::dns {

/// One resource record (used at message boundaries and in zone files).
struct ResourceRecord {
  Name owner;
  RRType type = RRType::kA;
  RRClass rrclass = RRClass::kIN;
  std::uint32_t ttl = 3600;
  Rdata rdata;

  std::string to_text() const;
};

/// All records of one (owner, type) with a shared TTL.
class RRset {
 public:
  RRset() = default;
  RRset(Name owner, RRType type, std::uint32_t ttl)
      : owner_(std::move(owner)), type_(type), ttl_(ttl) {}

  const Name& owner() const { return owner_; }
  RRType type() const { return type_; }
  std::uint32_t ttl() const { return ttl_; }
  void set_ttl(std::uint32_t ttl) { ttl_ = ttl; }

  const std::vector<Rdata>& rdatas() const { return rdatas_; }
  bool empty() const { return rdatas_.empty(); }
  std::size_t size() const { return rdatas_.size(); }

  /// Add a record; duplicates (identical wire form) are dropped, matching
  /// nameserver behaviour.
  void add(Rdata rdata);

  /// Remove the record whose canonical wire form matches; returns true if
  /// something was removed.
  bool remove(const Rdata& rdata);

  /// The canonical signing buffer for this RRset given RRSIG fields:
  /// RRSIG_RDATA(unsigned) || for each RR in canonical order:
  ///   name | type | class | original_ttl | rdlength | rdata
  /// (RFC 4034 §3.1.8.1).
  Bytes signing_buffer(const RrsigRdata& sig_fields) const;

  /// Rdatas sorted by canonical wire form (RFC 4034 §6.3).
  std::vector<Bytes> canonical_rdata_wires() const;

  std::vector<ResourceRecord> to_records() const;

  bool operator==(const RRset& other) const;

 private:
  Name owner_;
  RRType type_ = RRType::kA;
  std::uint32_t ttl_ = 3600;
  std::vector<Rdata> rdatas_;
};

}  // namespace dfx::dns
