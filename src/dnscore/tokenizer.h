// Table-driven master-file tokenizer (RFC 1035 §5 lexical layer).
//
// One pass over the input classifies every byte through a 256-entry table
// (blank / newline / comment / quote / parenthesis / ordinary) and produces
// logical lines: physical lines joined across parentheses, comments
// stripped, tokens split on blank runs. Bare tokens and escape-free quoted
// strings are zero-copy string_views into the input text; only tokens
// containing backslash escapes are materialized (into the arena). This
// replaces the old two-pass "join lines into a std::string, then split_ws"
// front-end, which copied every line and every token.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "dnscore/arena.h"
#include "util/check.hpp"

namespace dfx::dns {

/// One logical master-file entry: a physical line, extended across
/// newlines while inside unbalanced '(' ... ')'.
///
/// Ownership: every entry of `fields` is a view into either the tokenizer's
/// input text or its arena; the span itself lives in the arena. All of them
/// are valid until the arena is reset/destroyed (and no longer than the
/// input text buffer) — do not retain them past either.
struct MasterLine {
  std::size_t line = 0;     // 1-based physical line the entry starts on
  bool leading_ws = false;  // entry began with blank space (owner inherited)
  std::span<const std::string_view> fields;
};

struct TokenizeError {
  std::size_t line = 0;
  std::string message;
};

/// Streaming tokenizer over zone-file text.
///
/// Lexical rules (matching the previous parser where they overlap):
///  - ';' starts a comment through end of physical line, except inside a
///    quoted string.
///  - '(' and ')' (outside quotes) group physical lines into one logical
///    line and act as token separators; a ')' with no open '(' is an
///    error, and EOF inside '(' reports the line the group started on.
///  - A quoted string is one token, surrounding quotes INCLUDED (the rdata
///    text layer strips them — this keeps "\"a b\"" and a bare token
///    flowing through the same code path). A quote unterminated at end of
///    line simply ends the token, like the old line-local scanner.
///  - Inside quotes, "\X" escapes a literal X and "\DDD" a decimal octet
///    (RFC 1035 §5.1); escaped tokens are the only ones that allocate.
///  - Blank and comment-only lines are skipped, not surfaced.
class MasterFileTokenizer {
 public:
  /// Views handed out via next() alias `text` and `arena`; both must
  /// outlive every MasterLine the caller still holds.
  MasterFileTokenizer(std::string_view text, WireArena& arena)
      : text_(text), arena_(arena) {}

  /// Advance to the next non-empty logical line. Returns false at end of
  /// input or on error — distinguish via error().
  DFX_HOT_PATH
  bool next(MasterLine& out);

  const std::optional<TokenizeError>& error() const { return error_; }

 private:
  std::string_view scan_bare_token();
  std::string_view scan_quoted_token();

  std::string_view text_;
  WireArena& arena_;
  std::size_t pos_ = 0;
  std::size_t line_ = 1;
  std::vector<std::string_view> fields_;  // scratch, arena-copied per line
  std::optional<TokenizeError> error_;
};

}  // namespace dfx::dns
