#include "dnscore/rr.h"

#include "util/strings.h"

namespace dfx::dns {
namespace {

struct TypeName {
  RRType type;
  const char* name;
};

constexpr TypeName kTypeNames[] = {
    {RRType::kA, "A"},           {RRType::kNS, "NS"},
    {RRType::kCNAME, "CNAME"},   {RRType::kSOA, "SOA"},
    {RRType::kMX, "MX"},         {RRType::kTXT, "TXT"},
    {RRType::kAAAA, "AAAA"},     {RRType::kDS, "DS"},
    {RRType::kRRSIG, "RRSIG"},   {RRType::kNSEC, "NSEC"},
    {RRType::kDNSKEY, "DNSKEY"}, {RRType::kNSEC3, "NSEC3"},
    {RRType::kNSEC3PARAM, "NSEC3PARAM"}, {RRType::kCDS, "CDS"},
    {RRType::kCDNSKEY, "CDNSKEY"},
};

}  // namespace

std::string rrtype_to_string(RRType type) {
  for (const auto& tn : kTypeNames) {
    if (tn.type == type) return tn.name;
  }
  return "TYPE" + std::to_string(static_cast<std::uint16_t>(type));
}

std::optional<RRType> rrtype_from_string(std::string_view text) {
  for (const auto& tn : kTypeNames) {
    if (iequals(text, tn.name)) return tn.type;
  }
  if (text.size() > 4 && iequals(text.substr(0, 4), "TYPE")) {
    int v = 0;
    for (char c : text.substr(4)) {
      if (c < '0' || c > '9') return std::nullopt;
      v = v * 10 + (c - '0');
      if (v > 0xFFFF) return std::nullopt;
    }
    return static_cast<RRType>(v);
  }
  return std::nullopt;
}

std::string rcode_to_string(RCode rcode) {
  switch (rcode) {
    case RCode::kNoError:
      return "NOERROR";
    case RCode::kFormErr:
      return "FORMERR";
    case RCode::kServFail:
      return "SERVFAIL";
    case RCode::kNXDomain:
      return "NXDOMAIN";
    case RCode::kNotImp:
      return "NOTIMP";
    case RCode::kRefused:
      return "REFUSED";
  }
  return "RCODE" + std::to_string(static_cast<int>(rcode));
}

}  // namespace dfx::dns
