// SHA-1 (FIPS 180-4), implemented from scratch.
//
// SHA-1 is cryptographically broken for collision resistance but is still
// the digest for DS digest type 1 and part of DNSSEC algorithms 5/7, and it
// is the hash NSEC3 mandates (RFC 5155 only defines hash algorithm 1 =
// SHA-1), so a faithful DNSSEC substrate needs it.
#pragma once

#include <array>
#include <cstdint>

#include "util/bytes.h"

namespace dfx::crypto {

class Sha1 {
 public:
  static constexpr std::size_t kDigestSize = 20;

  Sha1();

  void update(ByteView data);
  std::array<std::uint8_t, kDigestSize> finish();

  static Bytes digest(ByteView data);

 private:
  void process_block(const std::uint8_t* block);

  std::uint32_t h_[5];
  std::uint8_t buffer_[64];
  std::size_t buffered_ = 0;
  std::uint64_t total_bits_ = 0;
};

}  // namespace dfx::crypto
