// Arbitrary-precision unsigned integers, from scratch.
//
// Just enough number theory for a genuine (if deliberately small-modulus)
// RSA: add/sub/mul, division with remainder, modular exponentiation via
// square-and-multiply, gcd / modular inverse, and Miller-Rabin primality.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "util/bytes.h"
#include "util/rng.h"

namespace dfx::crypto {

/// Unsigned big integer stored as little-endian 32-bit limbs.
class BigNum {
 public:
  BigNum() = default;
  explicit BigNum(std::uint64_t v);

  /// Big-endian byte import/export (the DNS wire convention).
  static BigNum from_bytes(ByteView data);
  Bytes to_bytes() const;
  /// Export padded/truncated to exactly `size` bytes (fixed-width fields).
  Bytes to_bytes_padded(std::size_t size) const;

  static BigNum from_hex(std::string_view hex);
  std::string to_hex() const;

  bool is_zero() const { return limbs_.empty(); }
  bool is_odd() const { return !limbs_.empty() && (limbs_[0] & 1) != 0; }
  std::size_t bit_length() const;

  bool operator==(const BigNum& o) const { return limbs_ == o.limbs_; }
  bool operator!=(const BigNum& o) const { return limbs_ != o.limbs_; }
  bool operator<(const BigNum& o) const { return cmp(o) < 0; }
  bool operator<=(const BigNum& o) const { return cmp(o) <= 0; }
  bool operator>(const BigNum& o) const { return cmp(o) > 0; }
  bool operator>=(const BigNum& o) const { return cmp(o) >= 0; }

  BigNum operator+(const BigNum& o) const;
  /// Subtraction requires *this >= o (unsigned arithmetic).
  BigNum operator-(const BigNum& o) const;
  BigNum operator*(const BigNum& o) const;
  BigNum operator%(const BigNum& o) const;
  BigNum operator/(const BigNum& o) const;

  BigNum operator<<(std::size_t bits) const;
  BigNum operator>>(std::size_t bits) const;

  /// Quotient and remainder in one pass.
  static void divmod(const BigNum& num, const BigNum& den, BigNum& quot,
                     BigNum& rem);

  /// (base ^ exp) mod m, m > 0.
  static BigNum modexp(const BigNum& base, const BigNum& exp, const BigNum& m);

  /// Modular inverse of a mod m; returns zero BigNum when gcd(a, m) != 1.
  static BigNum modinv(const BigNum& a, const BigNum& m);

  static BigNum gcd(BigNum a, BigNum b);

  /// Uniform in [0, bound).
  static BigNum random_below(Rng& rng, const BigNum& bound);

  /// Random integer with exactly `bits` bits (top bit set).
  static BigNum random_bits(Rng& rng, std::size_t bits);

  /// Miller-Rabin with `rounds` random bases.
  static bool is_probable_prime(const BigNum& n, Rng& rng, int rounds = 20);

  /// Generate a random prime with exactly `bits` bits.
  static BigNum generate_prime(Rng& rng, std::size_t bits);

  int cmp(const BigNum& o) const;

 private:
  void trim();

  std::vector<std::uint32_t> limbs_;  // little-endian, no trailing zeros
};

}  // namespace dfx::crypto
