#include "crypto/schnorr.h"

#include "crypto/sha2.h"

namespace dfx::crypto {
namespace {

// p = 2q + 1 with q prime; g generates the order-q subgroup.
// p is the largest safe prime below 2^63 with small generator 4 = 2^2
// (squares generate the index-2 subgroup of Z_p*, which has order q).
constexpr std::uint64_t kP = 0x7FFFFFFFFFFFEE27ULL;  // safe prime
constexpr std::uint64_t kQ = (kP - 1) / 2;
constexpr std::uint64_t kG = 4;

std::uint64_t mulmod(std::uint64_t a, std::uint64_t b, std::uint64_t m) {
  return static_cast<std::uint64_t>(
      (static_cast<unsigned __int128>(a) * b) % m);
}

std::uint64_t powmod(std::uint64_t base, std::uint64_t exp, std::uint64_t m) {
  std::uint64_t result = 1;
  base %= m;
  while (exp != 0) {
    if ((exp & 1) != 0) result = mulmod(result, base, m);
    base = mulmod(base, base, m);
    exp >>= 1;
  }
  return result;
}

std::uint64_t hash_to_u64(ByteView a, ByteView b, ByteView c,
                          std::uint8_t tag) {
  Sha256Core h(false);
  const std::uint8_t t[1] = {tag};
  h.update({t, 1});
  h.update(a);
  h.update(b);
  h.update(c);
  const Bytes d = h.finish();
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) v = (v << 8) | d[static_cast<std::size_t>(i)];
  return v;
}

Bytes u64_bytes(std::uint64_t v) {
  Bytes out(8);
  for (int i = 0; i < 8; ++i) {
    out[static_cast<std::size_t>(i)] =
        static_cast<std::uint8_t>(v >> (56 - i * 8));
  }
  return out;
}

std::uint64_t bytes_u64(ByteView b) {
  std::uint64_t v = 0;
  for (std::size_t i = 0; i < 8; ++i) v = (v << 8) | b[i];
  return v;
}

}  // namespace

SchnorrKeyPair schnorr_generate(Rng& rng) {
  SchnorrKeyPair kp;
  kp.priv = 1 + rng.uniform(kQ - 1);
  kp.pub = powmod(kG, kp.priv, kP);
  return kp;
}

Bytes schnorr_sign(const SchnorrKeyPair& key, ByteView message,
                   std::uint8_t domain_tag) {
  const Bytes priv_bytes = u64_bytes(key.priv);
  const Bytes pub_bytes = u64_bytes(key.pub);
  std::uint64_t k = hash_to_u64(priv_bytes, message, {}, domain_tag) % kQ;
  if (k == 0) k = 1;
  const std::uint64_t r = powmod(kG, k, kP);
  const Bytes r_bytes = u64_bytes(r);
  const std::uint64_t e =
      hash_to_u64(r_bytes, pub_bytes, message, domain_tag) % kQ;
  const std::uint64_t s = (k + mulmod(e, key.priv, kQ)) % kQ;
  Bytes sig = u64_bytes(e);
  append(sig, u64_bytes(s));
  return sig;  // 16 bytes: (e, s)
}

bool schnorr_verify(std::uint64_t pub, ByteView message, ByteView signature,
                    std::uint8_t domain_tag) {
  if (signature.size() != 16) return false;
  if (pub == 0 || pub >= kP) return false;
  const std::uint64_t e = bytes_u64(signature.subspan(0, 8)) % kQ;
  const std::uint64_t s = bytes_u64(signature.subspan(8, 8));
  if (s >= kQ) return false;
  // r' = g^s * pub^(q - e) — pub has order q, so pub^(q-e) = pub^{-e}.
  const std::uint64_t gs = powmod(kG, s, kP);
  const std::uint64_t pe = powmod(pub, kQ - e, kP);
  const std::uint64_t r = mulmod(gs, pe, kP);
  const Bytes r_bytes = u64_bytes(r);
  const Bytes pub_bytes = u64_bytes(pub);
  const std::uint64_t expected =
      hash_to_u64(r_bytes, pub_bytes, message, domain_tag) % kQ;
  return expected == e;
}

Bytes schnorr_encode_pub(std::uint64_t pub) { return u64_bytes(pub); }

bool schnorr_decode_pub(ByteView data, std::uint64_t& out) {
  if (data.size() != 8) return false;
  out = bytes_u64(data);
  return true;
}

}  // namespace dfx::crypto
