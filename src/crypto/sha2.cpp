#include "crypto/sha2.h"

#include <bit>

namespace dfx::crypto {
namespace {

constexpr std::uint32_t kK256[64] = {
    0x428a2f98, 0x71374491, 0xb5c0fbcf, 0xe9b5dba5, 0x3956c25b, 0x59f111f1,
    0x923f82a4, 0xab1c5ed5, 0xd807aa98, 0x12835b01, 0x243185be, 0x550c7dc3,
    0x72be5d74, 0x80deb1fe, 0x9bdc06a7, 0xc19bf174, 0xe49b69c1, 0xefbe4786,
    0x0fc19dc6, 0x240ca1cc, 0x2de92c6f, 0x4a7484aa, 0x5cb0a9dc, 0x76f988da,
    0x983e5152, 0xa831c66d, 0xb00327c8, 0xbf597fc7, 0xc6e00bf3, 0xd5a79147,
    0x06ca6351, 0x14292967, 0x27b70a85, 0x2e1b2138, 0x4d2c6dfc, 0x53380d13,
    0x650a7354, 0x766a0abb, 0x81c2c92e, 0x92722c85, 0xa2bfe8a1, 0xa81a664b,
    0xc24b8b70, 0xc76c51a3, 0xd192e819, 0xd6990624, 0xf40e3585, 0x106aa070,
    0x19a4c116, 0x1e376c08, 0x2748774c, 0x34b0bcb5, 0x391c0cb3, 0x4ed8aa4a,
    0x5b9cca4f, 0x682e6ff3, 0x748f82ee, 0x78a5636f, 0x84c87814, 0x8cc70208,
    0x90befffa, 0xa4506ceb, 0xbef9a3f7, 0xc67178f2};

constexpr std::uint64_t kK512[80] = {
    0x428a2f98d728ae22ULL, 0x7137449123ef65cdULL, 0xb5c0fbcfec4d3b2fULL,
    0xe9b5dba58189dbbcULL, 0x3956c25bf348b538ULL, 0x59f111f1b605d019ULL,
    0x923f82a4af194f9bULL, 0xab1c5ed5da6d8118ULL, 0xd807aa98a3030242ULL,
    0x12835b0145706fbeULL, 0x243185be4ee4b28cULL, 0x550c7dc3d5ffb4e2ULL,
    0x72be5d74f27b896fULL, 0x80deb1fe3b1696b1ULL, 0x9bdc06a725c71235ULL,
    0xc19bf174cf692694ULL, 0xe49b69c19ef14ad2ULL, 0xefbe4786384f25e3ULL,
    0x0fc19dc68b8cd5b5ULL, 0x240ca1cc77ac9c65ULL, 0x2de92c6f592b0275ULL,
    0x4a7484aa6ea6e483ULL, 0x5cb0a9dcbd41fbd4ULL, 0x76f988da831153b5ULL,
    0x983e5152ee66dfabULL, 0xa831c66d2db43210ULL, 0xb00327c898fb213fULL,
    0xbf597fc7beef0ee4ULL, 0xc6e00bf33da88fc2ULL, 0xd5a79147930aa725ULL,
    0x06ca6351e003826fULL, 0x142929670a0e6e70ULL, 0x27b70a8546d22ffcULL,
    0x2e1b21385c26c926ULL, 0x4d2c6dfc5ac42aedULL, 0x53380d139d95b3dfULL,
    0x650a73548baf63deULL, 0x766a0abb3c77b2a8ULL, 0x81c2c92e47edaee6ULL,
    0x92722c851482353bULL, 0xa2bfe8a14cf10364ULL, 0xa81a664bbc423001ULL,
    0xc24b8b70d0f89791ULL, 0xc76c51a30654be30ULL, 0xd192e819d6ef5218ULL,
    0xd69906245565a910ULL, 0xf40e35855771202aULL, 0x106aa07032bbd1b8ULL,
    0x19a4c116b8d2d0c8ULL, 0x1e376c085141ab53ULL, 0x2748774cdf8eeb99ULL,
    0x34b0bcb5e19b48a8ULL, 0x391c0cb3c5c95a63ULL, 0x4ed8aa4ae3418acbULL,
    0x5b9cca4f7763e373ULL, 0x682e6ff3d6b2b8a3ULL, 0x748f82ee5defb2fcULL,
    0x78a5636f43172f60ULL, 0x84c87814a1f0ab72ULL, 0x8cc702081a6439ecULL,
    0x90befffa23631e28ULL, 0xa4506cebde82bde9ULL, 0xbef9a3f7b2c67915ULL,
    0xc67178f2e372532bULL, 0xca273eceea26619cULL, 0xd186b8c721c0c207ULL,
    0xeada7dd6cde0eb1eULL, 0xf57d4f7fee6ed178ULL, 0x06f067aa72176fbaULL,
    0x0a637dc5a2c898a6ULL, 0x113f9804bef90daeULL, 0x1b710b35131c471bULL,
    0x28db77f523047d84ULL, 0x32caab7b40c72493ULL, 0x3c9ebe0a15c9bebcULL,
    0x431d67c49c100d4cULL, 0x4cc5d4becb3e42b6ULL, 0x597f299cfc657e2aULL,
    0x5fcb6fab3ad6faecULL, 0x6c44198c4a475817ULL};

}  // namespace

Sha256Core::Sha256Core(bool variant224) : variant224_(variant224) {
  if (variant224) {
    h_[0] = 0xc1059ed8; h_[1] = 0x367cd507; h_[2] = 0x3070dd17;
    h_[3] = 0xf70e5939; h_[4] = 0xffc00b31; h_[5] = 0x68581511;
    h_[6] = 0x64f98fa7; h_[7] = 0xbefa4fa4;
  } else {
    h_[0] = 0x6a09e667; h_[1] = 0xbb67ae85; h_[2] = 0x3c6ef372;
    h_[3] = 0xa54ff53a; h_[4] = 0x510e527f; h_[5] = 0x9b05688c;
    h_[6] = 0x1f83d9ab; h_[7] = 0x5be0cd19;
  }
}

void Sha256Core::process_block(const std::uint8_t* block) {
  std::uint32_t w[64];
  for (int i = 0; i < 16; ++i) {
    w[i] = (static_cast<std::uint32_t>(block[i * 4]) << 24) |
           (static_cast<std::uint32_t>(block[i * 4 + 1]) << 16) |
           (static_cast<std::uint32_t>(block[i * 4 + 2]) << 8) |
           static_cast<std::uint32_t>(block[i * 4 + 3]);
  }
  for (int i = 16; i < 64; ++i) {
    const std::uint32_t s0 =
        std::rotr(w[i - 15], 7) ^ std::rotr(w[i - 15], 18) ^ (w[i - 15] >> 3);
    const std::uint32_t s1 =
        std::rotr(w[i - 2], 17) ^ std::rotr(w[i - 2], 19) ^ (w[i - 2] >> 10);
    w[i] = w[i - 16] + s0 + w[i - 7] + s1;
  }
  std::uint32_t a = h_[0], b = h_[1], c = h_[2], d = h_[3];
  std::uint32_t e = h_[4], f = h_[5], g = h_[6], hh = h_[7];
  for (int i = 0; i < 64; ++i) {
    const std::uint32_t s1 =
        std::rotr(e, 6) ^ std::rotr(e, 11) ^ std::rotr(e, 25);
    const std::uint32_t ch = (e & f) ^ (~e & g);
    const std::uint32_t t1 = hh + s1 + ch + kK256[i] + w[i];
    const std::uint32_t s0 =
        std::rotr(a, 2) ^ std::rotr(a, 13) ^ std::rotr(a, 22);
    const std::uint32_t maj = (a & b) ^ (a & c) ^ (b & c);
    const std::uint32_t t2 = s0 + maj;
    hh = g; g = f; f = e; e = d + t1;
    d = c; c = b; b = a; a = t1 + t2;
  }
  h_[0] += a; h_[1] += b; h_[2] += c; h_[3] += d;
  h_[4] += e; h_[5] += f; h_[6] += g; h_[7] += hh;
}

void Sha256Core::update(ByteView data) {
  total_bits_ += static_cast<std::uint64_t>(data.size()) * 8;
  std::size_t i = 0;
  if (buffered_ > 0) {
    while (buffered_ < 64 && i < data.size()) buffer_[buffered_++] = data[i++];
    if (buffered_ == 64) {
      process_block(buffer_);
      buffered_ = 0;
    }
  }
  while (i + 64 <= data.size()) {
    process_block(data.data() + i);
    i += 64;
  }
  while (i < data.size()) buffer_[buffered_++] = data[i++];
}

Bytes Sha256Core::finish() {
  const std::uint64_t bits = total_bits_;
  const std::uint8_t pad = 0x80;
  update({&pad, 1});
  const std::uint8_t zero = 0x00;
  while (buffered_ != 56) update({&zero, 1});
  std::uint8_t len[8];
  for (int i = 0; i < 8; ++i) {
    len[i] = static_cast<std::uint8_t>(bits >> (56 - i * 8));
  }
  update({len, 8});
  const std::size_t words = variant224_ ? 7 : 8;
  Bytes out;
  out.reserve(words * 4);
  for (std::size_t i = 0; i < words; ++i) {
    out.push_back(static_cast<std::uint8_t>(h_[i] >> 24));
    out.push_back(static_cast<std::uint8_t>(h_[i] >> 16));
    out.push_back(static_cast<std::uint8_t>(h_[i] >> 8));
    out.push_back(static_cast<std::uint8_t>(h_[i] & 0xFFu));
  }
  return out;
}

Sha512Core::Sha512Core(bool variant384) : variant384_(variant384) {
  if (variant384) {
    h_[0] = 0xcbbb9d5dc1059ed8ULL; h_[1] = 0x629a292a367cd507ULL;
    h_[2] = 0x9159015a3070dd17ULL; h_[3] = 0x152fecd8f70e5939ULL;
    h_[4] = 0x67332667ffc00b31ULL; h_[5] = 0x8eb44a8768581511ULL;
    h_[6] = 0xdb0c2e0d64f98fa7ULL; h_[7] = 0x47b5481dbefa4fa4ULL;
  } else {
    h_[0] = 0x6a09e667f3bcc908ULL; h_[1] = 0xbb67ae8584caa73bULL;
    h_[2] = 0x3c6ef372fe94f82bULL; h_[3] = 0xa54ff53a5f1d36f1ULL;
    h_[4] = 0x510e527fade682d1ULL; h_[5] = 0x9b05688c2b3e6c1fULL;
    h_[6] = 0x1f83d9abfb41bd6bULL; h_[7] = 0x5be0cd19137e2179ULL;
  }
}

void Sha512Core::process_block(const std::uint8_t* block) {
  std::uint64_t w[80];
  for (int i = 0; i < 16; ++i) {
    std::uint64_t v = 0;
    for (int b = 0; b < 8; ++b) {
      v = (v << 8) | block[i * 8 + b];
    }
    w[i] = v;
  }
  for (int i = 16; i < 80; ++i) {
    const std::uint64_t s0 = std::rotr(w[i - 15], 1) ^
                             std::rotr(w[i - 15], 8) ^ (w[i - 15] >> 7);
    const std::uint64_t s1 = std::rotr(w[i - 2], 19) ^
                             std::rotr(w[i - 2], 61) ^ (w[i - 2] >> 6);
    w[i] = w[i - 16] + s0 + w[i - 7] + s1;
  }
  std::uint64_t a = h_[0], b = h_[1], c = h_[2], d = h_[3];
  std::uint64_t e = h_[4], f = h_[5], g = h_[6], hh = h_[7];
  for (int i = 0; i < 80; ++i) {
    const std::uint64_t s1 =
        std::rotr(e, 14) ^ std::rotr(e, 18) ^ std::rotr(e, 41);
    const std::uint64_t ch = (e & f) ^ (~e & g);
    const std::uint64_t t1 = hh + s1 + ch + kK512[i] + w[i];
    const std::uint64_t s0 =
        std::rotr(a, 28) ^ std::rotr(a, 34) ^ std::rotr(a, 39);
    const std::uint64_t maj = (a & b) ^ (a & c) ^ (b & c);
    const std::uint64_t t2 = s0 + maj;
    hh = g; g = f; f = e; e = d + t1;
    d = c; c = b; b = a; a = t1 + t2;
  }
  h_[0] += a; h_[1] += b; h_[2] += c; h_[3] += d;
  h_[4] += e; h_[5] += f; h_[6] += g; h_[7] += hh;
}

void Sha512Core::update(ByteView data) {
  total_bits_ += static_cast<std::uint64_t>(data.size()) * 8;
  std::size_t i = 0;
  if (buffered_ > 0) {
    while (buffered_ < 128 && i < data.size()) {
      buffer_[buffered_++] = data[i++];
    }
    if (buffered_ == 128) {
      process_block(buffer_);
      buffered_ = 0;
    }
  }
  while (i + 128 <= data.size()) {
    process_block(data.data() + i);
    i += 128;
  }
  while (i < data.size()) buffer_[buffered_++] = data[i++];
}

Bytes Sha512Core::finish() {
  const std::uint64_t bits = total_bits_;
  const std::uint8_t pad = 0x80;
  update({&pad, 1});
  const std::uint8_t zero = 0x00;
  while (buffered_ != 112) update({&zero, 1});
  // The length field is 128 bits; the high 64 bits are zero for our inputs.
  std::uint8_t len[16] = {};
  for (int i = 0; i < 8; ++i) {
    len[8 + i] = static_cast<std::uint8_t>(bits >> (56 - i * 8));
  }
  update({len, 16});
  const std::size_t words = variant384_ ? 6 : 8;
  Bytes out;
  out.reserve(words * 8);
  for (std::size_t i = 0; i < words; ++i) {
    for (int b = 7; b >= 0; --b) {
      out.push_back(static_cast<std::uint8_t>(h_[i] >> (b * 8)));
    }
  }
  return out;
}

Bytes sha224(ByteView data) {
  Sha256Core h(true);
  h.update(data);
  return h.finish();
}

Bytes sha256(ByteView data) {
  Sha256Core h(false);
  h.update(data);
  return h.finish();
}

Bytes sha384(ByteView data) {
  Sha512Core h(true);
  h.update(data);
  return h.finish();
}

Bytes sha512(ByteView data) {
  Sha512Core h(false);
  h.update(data);
  return h.finish();
}

}  // namespace dfx::crypto
