#include "crypto/rsa.h"

#include <stdexcept>

namespace dfx::crypto {
namespace {

// Deterministic PKCS#1-v1.5-style padding (no OID blob; the digest already
// identifies the hash in our algorithm registry): 0x00 0x01 FF..FF 0x00 H.
BigNum pad_digest(ByteView digest, std::size_t modulus_bytes) {
  if (digest.size() + 11 > modulus_bytes) {
    throw std::invalid_argument("rsa: digest too large for modulus");
  }
  Bytes em(modulus_bytes, 0xFF);
  em[0] = 0x00;
  em[1] = 0x01;
  em[modulus_bytes - digest.size() - 1] = 0x00;
  std::copy(digest.begin(), digest.end(),
            em.end() - static_cast<std::ptrdiff_t>(digest.size()));
  return BigNum::from_bytes(em);
}

}  // namespace

Bytes RsaPublicKey::encode() const {
  // RFC 3110 wire form: 1-byte exponent length (we keep e small), exponent,
  // modulus.
  Bytes exp = e.to_bytes();
  if (exp.size() > 255) throw std::invalid_argument("rsa: exponent too large");
  Bytes out;
  const std::size_t exp_octets = exp.size();  // <= 255, checked above
  out.push_back(static_cast<std::uint8_t>(exp_octets));
  append(out, exp);
  Bytes mod = n.to_bytes();
  append(out, mod);
  return out;
}

bool RsaPublicKey::decode(ByteView data, RsaPublicKey& out) {
  if (data.size() < 3) return false;
  const std::size_t explen = data[0];
  if (explen == 0 || data.size() < 1 + explen + 1) return false;
  out.e = BigNum::from_bytes(data.subspan(1, explen));
  out.n = BigNum::from_bytes(data.subspan(1 + explen));
  return !out.n.is_zero();
}

RsaPrivateKey rsa_generate(Rng& rng, std::size_t modulus_bits) {
  if (modulus_bits < 128) {
    throw std::invalid_argument("rsa_generate: modulus too small");
  }
  const BigNum e(65537);
  while (true) {
    const BigNum p = BigNum::generate_prime(rng, modulus_bits / 2);
    const BigNum q =
        BigNum::generate_prime(rng, modulus_bits - modulus_bits / 2);
    if (p == q) continue;
    const BigNum n = p * q;
    const BigNum phi = (p - BigNum(1)) * (q - BigNum(1));
    if (BigNum::gcd(e, phi) != BigNum(1)) continue;
    const BigNum d = BigNum::modinv(e, phi);
    if (d.is_zero()) continue;
    RsaPrivateKey key;
    key.pub.n = n;
    key.pub.e = e;
    key.d = d;
    return key;
  }
}

Bytes rsa_sign(const RsaPrivateKey& key, ByteView digest) {
  const std::size_t k = (key.pub.n.bit_length() + 7) / 8;
  const BigNum m = pad_digest(digest, k);
  const BigNum s = BigNum::modexp(m, key.d, key.pub.n);
  return s.to_bytes_padded(k);
}

bool rsa_verify(const RsaPublicKey& key, ByteView digest, ByteView signature) {
  const std::size_t k = (key.n.bit_length() + 7) / 8;
  if (signature.size() != k) return false;
  const BigNum s = BigNum::from_bytes(signature);
  if (s >= key.n) return false;
  const BigNum m = BigNum::modexp(s, key.e, key.n);
  BigNum expected;
  try {
    expected = pad_digest(digest, k);
  } catch (const std::invalid_argument&) {
    return false;
  }
  return m == expected;
}

}  // namespace dfx::crypto
