#include "crypto/algorithm.h"

#include <stdexcept>

#include "crypto/sha1.h"
#include "crypto/sha2.h"

namespace dfx::crypto {
namespace {

const std::vector<AlgorithmInfo> kAlgorithms = {
    {DnssecAlgorithm::kDsa, "DSA", false, false, 1024},
    {DnssecAlgorithm::kRsaSha1, "RSASHA1", true, true, 1024},
    {DnssecAlgorithm::kDsaNsec3Sha1, "DSA-NSEC3-SHA1", false, false, 1024},
    {DnssecAlgorithm::kRsaSha1Nsec3Sha1, "NSEC3RSASHA1", true, true, 1024},
    {DnssecAlgorithm::kRsaSha256, "RSASHA256", true, true, 2048},
    {DnssecAlgorithm::kRsaSha512, "RSASHA512", true, true, 2048},
    {DnssecAlgorithm::kGost, "ECC-GOST", false, false, 512},
    {DnssecAlgorithm::kEcdsaP256Sha256, "ECDSAP256SHA256", true, false, 256},
    {DnssecAlgorithm::kEcdsaP384Sha384, "ECDSAP384SHA384", true, false, 384},
    {DnssecAlgorithm::kEd25519, "ED25519", true, false, 256},
    {DnssecAlgorithm::kEd448, "ED448", true, false, 456},
};

// Real modulus size used for RSA-family keys regardless of the nominal bits
// the operator requests; keeps keygen fast in the 100K-zone pipeline while
// remaining genuine RSA. Must exceed digest size + 11 padding bytes; the
// internal digest is SHA-1-sized (see hash_for_algorithm).
constexpr std::size_t kRsaActualBits = 256;

// Digest used inside RSA signatures. The algorithm number is mixed into the
// hash input for domain separation; SHA-256 stands in for the larger SHA-2
// variants because their digests would not fit the deliberately small RSA
// modulus (see kRsaActualBits). Failure semantics are unaffected: any
// mismatch of key, algorithm number or message still breaks verification.
Bytes hash_for_algorithm(DnssecAlgorithm alg, ByteView message) {
  Bytes input;
  input.reserve(message.size() + 1);
  input.push_back(static_cast<std::uint8_t>(alg));
  append(input, message);
  // SHA-1-sized digests fit the small modulus; the algorithm byte above
  // keeps the signature domains of RSA algorithm numbers disjoint.
  return Sha1::digest(input);
}

std::uint8_t domain_tag(DnssecAlgorithm alg) {
  return static_cast<std::uint8_t>(alg);
}

}  // namespace

const std::vector<AlgorithmInfo>& all_algorithms() { return kAlgorithms; }

std::optional<AlgorithmInfo> algorithm_info(DnssecAlgorithm alg) {
  for (const auto& info : kAlgorithms) {
    if (info.number == alg) return info;
  }
  return std::nullopt;
}

std::optional<AlgorithmInfo> algorithm_info(std::uint8_t number) {
  return algorithm_info(static_cast<DnssecAlgorithm>(number));
}

std::vector<DnssecAlgorithm> bind_supported_algorithms() {
  std::vector<DnssecAlgorithm> out;
  for (const auto& info : kAlgorithms) {
    if (info.supported_by_bind) out.push_back(info.number);
  }
  return out;
}

std::string algorithm_mnemonic(DnssecAlgorithm alg) {
  const auto info = algorithm_info(alg);
  return info ? info->mnemonic
              : "ALG" + std::to_string(static_cast<int>(alg));
}

KeyPair generate_key(Rng& rng, DnssecAlgorithm alg, std::size_t nominal_bits) {
  const auto info = algorithm_info(alg);
  if (!info) {
    throw std::invalid_argument("generate_key: unknown algorithm " +
                                std::to_string(static_cast<int>(alg)));
  }
  if (!info->supported_by_bind) {
    throw std::invalid_argument("generate_key: algorithm " + info->mnemonic +
                                " not supported by the modelled BIND");
  }
  KeyPair key;
  key.algorithm = alg;
  key.nominal_bits = nominal_bits == 0 ? info->default_key_bits : nominal_bits;
  if (info->rsa_family) {
    key.rsa = rsa_generate(rng, kRsaActualBits);
    key.public_key = key.rsa->pub.encode();
  } else {
    key.schnorr = schnorr_generate(rng);
    key.public_key = schnorr_encode_pub(key.schnorr->pub);
  }
  return key;
}

Bytes sign_message(const KeyPair& key, ByteView message) {
  if (key.rsa) {
    return rsa_sign(*key.rsa, hash_for_algorithm(key.algorithm, message));
  }
  if (key.schnorr) {
    return schnorr_sign(*key.schnorr, message, domain_tag(key.algorithm));
  }
  throw std::logic_error("sign_message: key has no private material");
}

bool verify_message(DnssecAlgorithm alg, ByteView public_key, ByteView message,
                    ByteView signature) {
  const auto info = algorithm_info(alg);
  if (!info) return false;
  if (info->rsa_family) {
    RsaPublicKey pub;
    if (!RsaPublicKey::decode(public_key, pub)) return false;
    return rsa_verify(pub, hash_for_algorithm(alg, message), signature);
  }
  std::uint64_t pub = 0;
  if (!schnorr_decode_pub(public_key, pub)) return false;
  return schnorr_verify(pub, message, signature, domain_tag(alg));
}

std::uint16_t key_tag(ByteView dnskey_rdata) {
  // RFC 4034 Appendix B.
  std::uint32_t ac = 0;
  for (std::size_t i = 0; i < dnskey_rdata.size(); ++i) {
    ac += (i & 1) != 0 ? dnskey_rdata[i]
                       : static_cast<std::uint32_t>(dnskey_rdata[i]) << 8;
  }
  ac += (ac >> 16) & 0xFFFF;
  return static_cast<std::uint16_t>(ac & 0xFFFF);
}

Bytes ds_digest(DigestType type, ByteView owner_wire, ByteView dnskey_rdata) {
  Bytes input;
  input.reserve(owner_wire.size() + dnskey_rdata.size());
  append(input, owner_wire);
  append(input, dnskey_rdata);
  switch (type) {
    case DigestType::kSha1:
      return Sha1::digest(input);
    case DigestType::kSha256:
      return sha256(input);
    case DigestType::kSha384:
      return sha384(input);
    case DigestType::kGost:
      return {};
  }
  return {};
}

std::size_t digest_length(DigestType type) {
  switch (type) {
    case DigestType::kSha1:
      return 20;
    case DigestType::kSha256:
      return 32;
    case DigestType::kSha384:
      return 48;
    case DigestType::kGost:
      return 0;
  }
  return 0;
}

}  // namespace dfx::crypto
