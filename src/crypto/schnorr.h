// Schnorr signatures over a 64-bit prime-order subgroup.
//
// Stands in for the elliptic-curve DNSSEC algorithms (13 ECDSAP256SHA256,
// 14 ECDSAP384SHA384, 15 Ed25519, 16 Ed448). The scheme is genuinely
// asymmetric — verification uses only the public key, and signatures break
// under any tampering with the key, the message, or the signature — which is
// exactly the behaviour the DNSSEC validation path depends on. It is of
// course not secure at 64 bits; DESIGN.md records the substitution.
//
// Group: multiplicative subgroup of Z_p*, p = 2q+1 a safe prime, generator g
// of the order-q subgroup. Signature (per algorithm-specific domain tag):
//   k  = H(priv || msg) mod q          (deterministic nonce, RFC 6979 style)
//   r  = g^k mod p
//   e  = H(tag || r || pub || msg) mod q
//   s  = k + e * priv mod q
// Verify: r' = g^s * pub^{-e}, accept iff e == H(tag || r' || pub || msg).
#pragma once

#include <cstdint>

#include "util/bytes.h"
#include "util/rng.h"

namespace dfx::crypto {

struct SchnorrKeyPair {
  std::uint64_t priv = 0;  // secret scalar in [1, q)
  std::uint64_t pub = 0;   // g^priv mod p
};

/// Domain-separation tag lets distinct DNSSEC algorithm numbers produce
/// incompatible signatures even for identical keys.
SchnorrKeyPair schnorr_generate(Rng& rng);

Bytes schnorr_sign(const SchnorrKeyPair& key, ByteView message,
                   std::uint8_t domain_tag);

[[nodiscard]] bool schnorr_verify(std::uint64_t pub, ByteView message,
                                  ByteView signature,
                                  std::uint8_t domain_tag);

/// Public key wire encoding (8 bytes big-endian).
Bytes schnorr_encode_pub(std::uint64_t pub);
[[nodiscard]] bool schnorr_decode_pub(ByteView data, std::uint64_t& out);

}  // namespace dfx::crypto
