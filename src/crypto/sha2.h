// SHA-2 family (FIPS 180-4): SHA-224/256 (32-bit core) and SHA-384/512
// (64-bit core), implemented from scratch.
//
// SHA-256 backs DS digest type 2 and RSASHA256/ECDSAP256SHA256; SHA-384
// backs DS digest type 4 and ECDSAP384SHA384; SHA-512 backs RSASHA512.
#pragma once

#include <array>
#include <cstdint>

#include "util/bytes.h"

namespace dfx::crypto {

/// 32-bit-word core shared by SHA-224 and SHA-256.
class Sha256Core {
 public:
  /// `variant224` selects SHA-224 initial values and a 28-byte digest.
  explicit Sha256Core(bool variant224);

  void update(ByteView data);
  Bytes finish();  // 32 bytes (or 28 for SHA-224)

 private:
  void process_block(const std::uint8_t* block);

  std::uint32_t h_[8];
  std::uint8_t buffer_[64];
  std::size_t buffered_ = 0;
  std::uint64_t total_bits_ = 0;
  bool variant224_;
};

/// 64-bit-word core shared by SHA-384 and SHA-512.
class Sha512Core {
 public:
  /// `variant384` selects SHA-384 initial values and a 48-byte digest.
  explicit Sha512Core(bool variant384);

  void update(ByteView data);
  Bytes finish();  // 64 bytes (or 48 for SHA-384)

 private:
  void process_block(const std::uint8_t* block);

  std::uint64_t h_[8];
  std::uint8_t buffer_[128];
  std::size_t buffered_ = 0;
  std::uint64_t total_bits_ = 0;  // messages < 2^64 bits, ample for DNS
  bool variant384_;
};

Bytes sha224(ByteView data);
Bytes sha256(ByteView data);
Bytes sha384(ByteView data);
Bytes sha512(ByteView data);

}  // namespace dfx::crypto
