#include "crypto/bignum.h"

#include <algorithm>
#include <stdexcept>

#include "util/check.hpp"

namespace dfx::crypto {
namespace {

constexpr std::uint64_t kBase = 1ULL << 32;

// Small primes for fast trial division before Miller-Rabin.
constexpr std::uint32_t kSmallPrimes[] = {
    3,  5,  7,  11, 13, 17, 19, 23, 29, 31, 37, 41, 43,  47,  53,  59,
    61, 67, 71, 73, 79, 83, 89, 97, 101, 103, 107, 109, 113, 127, 131, 137};

}  // namespace

BigNum::BigNum(std::uint64_t v) {
  if (v != 0) limbs_.push_back(static_cast<std::uint32_t>(v));
  if (v >> 32 != 0) limbs_.push_back(static_cast<std::uint32_t>(v >> 32));
}

void BigNum::trim() {
  while (!limbs_.empty() && limbs_.back() == 0) limbs_.pop_back();
}

BigNum BigNum::from_bytes(ByteView data) {
  BigNum out;
  // Bytes are big-endian; limbs little-endian.
  std::size_t i = data.size();
  while (i > 0) {
    std::uint32_t limb = 0;
    int shift = 0;
    while (shift < 32 && i > 0) {
      limb |= static_cast<std::uint32_t>(data[--i]) << shift;
      shift += 8;
    }
    out.limbs_.push_back(limb);
  }
  out.trim();
  return out;
}

Bytes BigNum::to_bytes() const {
  if (limbs_.empty()) return {0};
  Bytes out;
  for (std::size_t i = limbs_.size(); i-- > 0;) {
    for (int b = 3; b >= 0; --b) {
      out.push_back(static_cast<std::uint8_t>(limbs_[i] >> (b * 8)));
    }
  }
  // Strip leading zero bytes.
  std::size_t start = 0;
  while (start + 1 < out.size() && out[start] == 0) ++start;
  return Bytes(out.begin() + static_cast<std::ptrdiff_t>(start), out.end());
}

Bytes BigNum::to_bytes_padded(std::size_t size) const {
  Bytes raw = to_bytes();
  if (raw.size() == 1 && raw[0] == 0) raw.clear();
  // Silently dropping high-order bytes would corrupt signatures; a value
  // wider than the requested field is a caller bug, not an encoding choice.
  DFX_CHECK(raw.size() <= size, "%zu-byte value into a %zu-byte field",
            raw.size(), size);
  Bytes out(size - raw.size(), 0);
  append(out, raw);
  return out;
}

BigNum BigNum::from_hex(std::string_view hex) {
  BigNum out;
  for (char c : hex) {
    int v;
    if (c >= '0' && c <= '9') {
      v = c - '0';
    } else if (c >= 'a' && c <= 'f') {
      v = c - 'a' + 10;
    } else if (c >= 'A' && c <= 'F') {
      v = c - 'A' + 10;
    } else {
      throw std::invalid_argument("BigNum::from_hex: bad digit");
    }
    out = (out << 4) + BigNum(static_cast<std::uint64_t>(v));
  }
  return out;
}

std::string BigNum::to_hex() const {
  if (limbs_.empty()) return "0";
  static const char* digits = "0123456789abcdef";
  std::string out;
  for (std::size_t i = limbs_.size(); i-- > 0;) {
    for (int nib = 7; nib >= 0; --nib) {
      out.push_back(digits[(limbs_[i] >> (nib * 4)) & 0xF]);
    }
  }
  const std::size_t nz = out.find_first_not_of('0');
  return nz == std::string::npos ? "0" : out.substr(nz);
}

std::size_t BigNum::bit_length() const {
  if (limbs_.empty()) return 0;
  std::size_t bits = (limbs_.size() - 1) * 32;
  std::uint32_t top = limbs_.back();
  while (top != 0) {
    ++bits;
    top >>= 1;
  }
  return bits;
}

int BigNum::cmp(const BigNum& o) const {
  if (limbs_.size() != o.limbs_.size()) {
    return limbs_.size() < o.limbs_.size() ? -1 : 1;
  }
  for (std::size_t i = limbs_.size(); i-- > 0;) {
    if (limbs_[i] != o.limbs_[i]) return limbs_[i] < o.limbs_[i] ? -1 : 1;
  }
  return 0;
}

BigNum BigNum::operator+(const BigNum& o) const {
  BigNum out;
  const std::size_t n = std::max(limbs_.size(), o.limbs_.size());
  out.limbs_.reserve(n + 1);
  std::uint64_t carry = 0;
  for (std::size_t i = 0; i < n; ++i) {
    std::uint64_t sum = carry;
    if (i < limbs_.size()) sum += limbs_[i];
    if (i < o.limbs_.size()) sum += o.limbs_[i];
    out.limbs_.push_back(static_cast<std::uint32_t>(sum));
    carry = sum >> 32;
  }
  if (carry != 0) out.limbs_.push_back(static_cast<std::uint32_t>(carry));
  return out;
}

BigNum BigNum::operator-(const BigNum& o) const {
  if (*this < o) throw std::underflow_error("BigNum subtraction underflow");
  BigNum out;
  out.limbs_.reserve(limbs_.size());
  std::int64_t borrow = 0;
  for (std::size_t i = 0; i < limbs_.size(); ++i) {
    std::int64_t diff = static_cast<std::int64_t>(limbs_[i]) - borrow;
    if (i < o.limbs_.size()) diff -= o.limbs_[i];
    if (diff < 0) {
      diff += static_cast<std::int64_t>(kBase);
      borrow = 1;
    } else {
      borrow = 0;
    }
    out.limbs_.push_back(static_cast<std::uint32_t>(diff));
  }
  out.trim();
  return out;
}

BigNum BigNum::operator*(const BigNum& o) const {
  if (limbs_.empty() || o.limbs_.empty()) return {};
  BigNum out;
  out.limbs_.assign(limbs_.size() + o.limbs_.size(), 0);
  for (std::size_t i = 0; i < limbs_.size(); ++i) {
    std::uint64_t carry = 0;
    for (std::size_t j = 0; j < o.limbs_.size(); ++j) {
      std::uint64_t cur = out.limbs_[i + j] + carry +
                          static_cast<std::uint64_t>(limbs_[i]) * o.limbs_[j];
      out.limbs_[i + j] = static_cast<std::uint32_t>(cur);
      carry = cur >> 32;
    }
    std::size_t k = i + o.limbs_.size();
    while (carry != 0) {
      std::uint64_t cur = out.limbs_[k] + carry;
      out.limbs_[k] = static_cast<std::uint32_t>(cur);
      carry = cur >> 32;
      ++k;
    }
  }
  out.trim();
  return out;
}

BigNum BigNum::operator<<(std::size_t bits) const {
  if (limbs_.empty() || bits == 0) {
    BigNum out = *this;
    if (bits == 0) return out;
  }
  if (limbs_.empty()) return {};
  const std::size_t limb_shift = bits / 32;
  const std::size_t bit_shift = bits % 32;
  BigNum out;
  out.limbs_.assign(limbs_.size() + limb_shift + 1, 0);
  for (std::size_t i = 0; i < limbs_.size(); ++i) {
    const std::uint64_t v = static_cast<std::uint64_t>(limbs_[i]) << bit_shift;
    out.limbs_[i + limb_shift] |= static_cast<std::uint32_t>(v);
    out.limbs_[i + limb_shift + 1] |= static_cast<std::uint32_t>(v >> 32);
  }
  out.trim();
  return out;
}

BigNum BigNum::operator>>(std::size_t bits) const {
  const std::size_t limb_shift = bits / 32;
  const std::size_t bit_shift = bits % 32;
  if (limb_shift >= limbs_.size()) return {};
  BigNum out;
  out.limbs_.assign(limbs_.size() - limb_shift, 0);
  for (std::size_t i = 0; i < out.limbs_.size(); ++i) {
    std::uint64_t v = limbs_[i + limb_shift] >> bit_shift;
    if (bit_shift != 0 && i + limb_shift + 1 < limbs_.size()) {
      v |= static_cast<std::uint64_t>(limbs_[i + limb_shift + 1])
           << (32 - bit_shift);
    }
    out.limbs_[i] = static_cast<std::uint32_t>(v);
  }
  out.trim();
  return out;
}

void BigNum::divmod(const BigNum& num, const BigNum& den, BigNum& quot,
                    BigNum& rem) {
  if (den.is_zero()) throw std::domain_error("BigNum division by zero");
  quot = BigNum();
  rem = BigNum();
  if (num < den) {
    rem = num;
    return;
  }
  // Single-limb divisor: straightforward short division.
  if (den.limbs_.size() == 1) {
    const std::uint64_t d = den.limbs_[0];
    quot.limbs_.assign(num.limbs_.size(), 0);
    std::uint64_t carry = 0;
    for (std::size_t i = num.limbs_.size(); i-- > 0;) {
      const std::uint64_t cur = (carry << 32) | num.limbs_[i];
      quot.limbs_[i] = static_cast<std::uint32_t>(cur / d);
      carry = cur % d;
    }
    quot.trim();
    rem = BigNum(carry);
    return;
  }
  // Knuth TAOCP vol. 2, Algorithm D, with 32-bit limbs.
  const std::size_t n = den.limbs_.size();
  DFX_DCHECK(n >= 2 && num.limbs_.size() >= n);
  const std::size_t m = num.limbs_.size() - n;
  // D1: normalise so the divisor's top limb has its high bit set.
  int shift = 0;
  {
    std::uint32_t top = den.limbs_.back();
    while ((top & 0x80000000u) == 0) {
      top <<= 1;
      ++shift;
    }
  }
  const BigNum u_norm = num << static_cast<std::size_t>(shift);
  const BigNum v_norm = den << static_cast<std::size_t>(shift);
  std::vector<std::uint32_t> u = u_norm.limbs_;
  // Normalisation adds at most one limb, so n+m+1 always covers u.
  DFX_DCHECK(u.size() <= n + m + 1);
  if (u.size() < n + m + 1) u.resize(n + m + 1, 0);
  const std::vector<std::uint32_t>& v = v_norm.limbs_;

  quot.limbs_.assign(m + 1, 0);
  for (std::size_t j = m + 1; j-- > 0;) {
    // D3: estimate q_hat from the top two limbs.
    const std::uint64_t numerator =
        (static_cast<std::uint64_t>(u[j + n]) << 32) | u[j + n - 1];
    std::uint64_t q_hat = numerator / v[n - 1];
    std::uint64_t r_hat = numerator % v[n - 1];
    while (q_hat >= kBase ||
           q_hat * v[n - 2] > ((r_hat << 32) | u[j + n - 2])) {
      --q_hat;
      r_hat += v[n - 1];
      if (r_hat >= kBase) break;
    }
    // D4: multiply-and-subtract.
    std::int64_t borrow = 0;
    std::uint64_t carry = 0;
    for (std::size_t i = 0; i < n; ++i) {
      const std::uint64_t p = q_hat * v[i] + carry;
      carry = p >> 32;
      const std::int64_t t = static_cast<std::int64_t>(u[i + j]) -
                             static_cast<std::int64_t>(p & 0xFFFFFFFFULL) -
                             borrow;
      u[i + j] = static_cast<std::uint32_t>(t);
      borrow = t < 0 ? 1 : 0;
    }
    const std::int64_t t = static_cast<std::int64_t>(u[j + n]) -
                           static_cast<std::int64_t>(carry) - borrow;
    u[j + n] = static_cast<std::uint32_t>(t);
    // D5/D6: if we subtracted too much, add the divisor back once.
    if (t < 0) {
      --q_hat;
      std::uint64_t add_carry = 0;
      for (std::size_t i = 0; i < n; ++i) {
        const std::uint64_t s =
            static_cast<std::uint64_t>(u[i + j]) + v[i] + add_carry;
        u[i + j] = static_cast<std::uint32_t>(s);
        add_carry = s >> 32;
      }
      u[j + n] = static_cast<std::uint32_t>(u[j + n] + add_carry);
    }
    quot.limbs_[j] = static_cast<std::uint32_t>(q_hat);
  }
  quot.trim();
  // D8: denormalise the remainder.
  rem.limbs_.assign(u.begin(), u.begin() + static_cast<std::ptrdiff_t>(n));
  rem.trim();
  rem = rem >> static_cast<std::size_t>(shift);
}

BigNum BigNum::operator%(const BigNum& o) const {
  BigNum q, r;
  divmod(*this, o, q, r);
  return r;
}

BigNum BigNum::operator/(const BigNum& o) const {
  BigNum q, r;
  divmod(*this, o, q, r);
  return q;
}

BigNum BigNum::modexp(const BigNum& base, const BigNum& exp, const BigNum& m) {
  if (m.is_zero()) throw std::domain_error("modexp: zero modulus");
  BigNum result(1);
  BigNum b = base % m;
  const std::size_t bits = exp.bit_length();
  for (std::size_t i = 0; i < bits; ++i) {
    const bool bit = ((exp.limbs_[i / 32] >> (i % 32)) & 1U) != 0;
    if (bit) result = (result * b) % m;
    b = (b * b) % m;
  }
  return result;
}

BigNum BigNum::gcd(BigNum a, BigNum b) {
  while (!b.is_zero()) {
    BigNum r = a % b;
    a = std::move(b);
    b = std::move(r);
  }
  return a;
}

BigNum BigNum::modinv(const BigNum& a, const BigNum& m) {
  // Extended Euclid on non-negative values, tracking coefficients with an
  // explicit sign since BigNum is unsigned.
  BigNum old_r = a % m;
  BigNum r = m;
  BigNum old_s(1);
  BigNum s;
  bool old_s_neg = false;
  bool s_neg = false;
  while (!r.is_zero()) {
    BigNum q, rem;
    divmod(old_r, r, q, rem);
    // new_s = old_s - q * s (signed)
    BigNum qs = q * s;
    BigNum new_s;
    bool new_s_neg;
    if (old_s_neg == s_neg) {
      if (old_s >= qs) {
        new_s = old_s - qs;
        new_s_neg = old_s_neg;
      } else {
        new_s = qs - old_s;
        new_s_neg = !old_s_neg;
      }
    } else {
      new_s = old_s + qs;
      new_s_neg = old_s_neg;
    }
    old_r = std::move(r);
    r = std::move(rem);
    old_s = std::move(s);
    old_s_neg = s_neg;
    s = std::move(new_s);
    s_neg = new_s_neg;
  }
  if (old_r != BigNum(1)) return {};  // not invertible
  BigNum inv = old_s % m;
  if (old_s_neg && !inv.is_zero()) inv = m - inv;
  return inv;
}

BigNum BigNum::random_below(Rng& rng, const BigNum& bound) {
  if (bound.is_zero()) throw std::invalid_argument("random_below: zero bound");
  const std::size_t bytes = (bound.bit_length() + 7) / 8;
  Bytes buf(bytes);
  // Each draw lands below the bound with probability > 1/256; a bound this
  // generous only trips on a broken RNG.
  DFX_BOUNDED_LOOP(guard, 100000);
  while (true) {
    guard.tick();
    rng.fill(buf);
    BigNum candidate = from_bytes(buf);
    if (candidate < bound) return candidate;
  }
}

BigNum BigNum::random_bits(Rng& rng, std::size_t bits) {
  if (bits == 0) return {};
  const std::size_t bytes = (bits + 7) / 8;
  Bytes buf(bytes);
  rng.fill(buf);
  // Clear excess top bits, then force the top bit on.
  const std::size_t excess = bytes * 8 - bits;
  buf[0] = static_cast<std::uint8_t>(buf[0] & (0xFF >> excess));
  buf[0] = static_cast<std::uint8_t>(buf[0] | (0x80 >> excess));
  return from_bytes(buf);
}

bool BigNum::is_probable_prime(const BigNum& n, Rng& rng, int rounds) {
  if (n < BigNum(2)) return false;
  if (n == BigNum(2)) return true;
  if (!n.is_odd()) return false;
  for (std::uint32_t p : kSmallPrimes) {
    const BigNum bp(p);
    if (n == bp) return true;
    if ((n % bp).is_zero()) return false;
  }
  // Write n-1 = d * 2^r.
  const BigNum n_minus_1 = n - BigNum(1);
  BigNum d = n_minus_1;
  std::size_t r = 0;
  while (!d.is_odd()) {
    d = d >> 1;
    ++r;
  }
  for (int round = 0; round < rounds; ++round) {
    const BigNum a = BigNum(2) + random_below(rng, n - BigNum(4));
    BigNum x = modexp(a, d, n);
    if (x == BigNum(1) || x == n_minus_1) continue;
    bool witness = true;
    for (std::size_t i = 1; i < r; ++i) {
      x = (x * x) % n;
      if (x == n_minus_1) {
        witness = false;
        break;
      }
    }
    if (witness) return false;
  }
  return true;
}

BigNum BigNum::generate_prime(Rng& rng, std::size_t bits) {
  if (bits < 8) throw std::invalid_argument("generate_prime: too small");
  // Prime density near 2^bits is ~1/(bits·ln 2); 1M draws is astronomically
  // more than any honest run needs and converts an RNG bug into a fail-fast.
  DFX_BOUNDED_LOOP(guard, 1 << 20);
  while (true) {
    guard.tick();
    BigNum candidate = random_bits(rng, bits);
    if (!candidate.is_odd()) candidate = candidate + BigNum(1);
    if (is_probable_prime(candidate, rng, 16)) return candidate;
  }
}

}  // namespace dfx::crypto
