// DNSSEC algorithm and digest registries.
//
// Maps IANA DNSSEC algorithm numbers to concrete sign/verify implementations
// (our RSA or Schnorr schemes), records which algorithms the modelled BIND
// toolchain still supports (ZReplicator's substitution logic depends on
// this), and implements the RFC 4034 key tag and DS digest computations.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "crypto/rsa.h"
#include "crypto/schnorr.h"
#include "util/bytes.h"
#include "util/rng.h"

namespace dfx::crypto {

/// IANA DNSSEC algorithm numbers (the subset the paper's dataset exercises).
enum class DnssecAlgorithm : std::uint8_t {
  kReserved = 0,
  kDsa = 3,               // retired, BIND-unsupported
  kRsaSha1 = 5,
  kDsaNsec3Sha1 = 6,      // retired, BIND-unsupported
  kRsaSha1Nsec3Sha1 = 7,
  kRsaSha256 = 8,
  kRsaSha512 = 10,
  kGost = 12,             // retired, BIND-unsupported
  kEcdsaP256Sha256 = 13,
  kEcdsaP384Sha384 = 14,
  kEd25519 = 15,
  kEd448 = 16,
};

/// DS digest types (RFC 4509 / 6605).
enum class DigestType : std::uint8_t {
  kSha1 = 1,
  kSha256 = 2,
  kGost = 3,   // unsupported
  kSha384 = 4,
};

/// Static facts about an algorithm number.
struct AlgorithmInfo {
  DnssecAlgorithm number;
  std::string mnemonic;
  bool supported_by_bind;  // drives ZReplicator substitution
  bool rsa_family;         // RSA vs Schnorr backing scheme
  std::size_t default_key_bits;  // nominal size dnssec-keygen would pick
};

/// All algorithm numbers the registry knows about, ascending.
const std::vector<AlgorithmInfo>& all_algorithms();

/// Lookup; nullopt for unknown numbers.
std::optional<AlgorithmInfo> algorithm_info(DnssecAlgorithm alg);
std::optional<AlgorithmInfo> algorithm_info(std::uint8_t number);

/// Algorithms a modelled BIND can sign with, ascending by number.
std::vector<DnssecAlgorithm> bind_supported_algorithms();

std::string algorithm_mnemonic(DnssecAlgorithm alg);

/// A generated key pair: public wire bytes plus the private material needed
/// to sign. `nominal_bits` is what the operator asked for; for RSA we may
/// generate a smaller real modulus for speed, recorded in `actual_bits`.
struct KeyPair {
  DnssecAlgorithm algorithm = DnssecAlgorithm::kRsaSha256;
  Bytes public_key;   // DNSKEY "public key" field bytes
  std::size_t nominal_bits = 0;

  // Private material (exactly one is populated, by family).
  std::optional<RsaPrivateKey> rsa;
  std::optional<SchnorrKeyPair> schnorr;
};

/// Generate a key pair for `alg`. `nominal_bits == 0` uses the algorithm's
/// default. Throws std::invalid_argument for BIND-unsupported algorithms
/// (mirrors dnssec-keygen refusing retired algorithms).
KeyPair generate_key(Rng& rng, DnssecAlgorithm alg,
                     std::size_t nominal_bits = 0);

/// Sign `message` with the key pair.
Bytes sign_message(const KeyPair& key, ByteView message);

/// Verify using only the *public* wire bytes.
[[nodiscard]] bool verify_message(DnssecAlgorithm alg, ByteView public_key,
                                  ByteView message, ByteView signature);

/// RFC 4034 Appendix B key tag over the canonical DNSKEY RDATA.
std::uint16_t key_tag(ByteView dnskey_rdata);

/// DS digest over owner-name wire form + DNSKEY RDATA.
/// Returns empty for unsupported digest types (e.g. GOST).
Bytes ds_digest(DigestType type, ByteView owner_wire, ByteView dnskey_rdata);

/// Expected digest length for a type; 0 when unsupported.
std::size_t digest_length(DigestType type);

}  // namespace dfx::crypto
