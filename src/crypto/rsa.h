// Genuine textbook-RSA over our own bignum, used for the RSA-family DNSSEC
// algorithm numbers (5, 7, 8, 10).
//
// Signing is s = pad(hash(m))^d mod n, verification recomputes and compares.
// Moduli default to 512 bits for speed (the evaluation pipeline generates
// thousands of keys); the *nominal* key size a zone claims is tracked
// separately in the DNSKEY metadata so "Bad Key Length" scenarios can be
// modelled without paying for 4096-bit arithmetic.
#pragma once

#include <cstdint>

#include "crypto/bignum.h"
#include "util/bytes.h"
#include "util/rng.h"

namespace dfx::crypto {

struct RsaPublicKey {
  BigNum n;  // modulus
  BigNum e;  // public exponent

  /// DNSKEY public-key field per RFC 3110: [explen?] exp | modulus.
  Bytes encode() const;
  [[nodiscard]] static bool decode(ByteView data, RsaPublicKey& out);
};

struct RsaPrivateKey {
  RsaPublicKey pub;
  BigNum d;  // private exponent
};

/// Generate an RSA key pair with the given *actual* modulus size in bits.
RsaPrivateKey rsa_generate(Rng& rng, std::size_t modulus_bits);

/// Sign a message digest (any hash output); returns the signature bytes,
/// fixed-width at the modulus size.
Bytes rsa_sign(const RsaPrivateKey& key, ByteView digest);

/// Verify a signature over a digest.
[[nodiscard]] bool rsa_verify(const RsaPublicKey& key, ByteView digest,
                              ByteView signature);

}  // namespace dfx::crypto
