#include "crypto/sha1.h"

#include <bit>
#include <cstring>

namespace dfx::crypto {

Sha1::Sha1() {
  h_[0] = 0x67452301;
  h_[1] = 0xEFCDAB89;
  h_[2] = 0x98BADCFE;
  h_[3] = 0x10325476;
  h_[4] = 0xC3D2E1F0;
}

void Sha1::process_block(const std::uint8_t* block) {
  std::uint32_t w[80];
  for (int i = 0; i < 16; ++i) {
    w[i] = (static_cast<std::uint32_t>(block[i * 4]) << 24) |
           (static_cast<std::uint32_t>(block[i * 4 + 1]) << 16) |
           (static_cast<std::uint32_t>(block[i * 4 + 2]) << 8) |
           static_cast<std::uint32_t>(block[i * 4 + 3]);
  }
  for (int i = 16; i < 80; ++i) {
    w[i] = std::rotl(w[i - 3] ^ w[i - 8] ^ w[i - 14] ^ w[i - 16], 1);
  }
  std::uint32_t a = h_[0], b = h_[1], c = h_[2], d = h_[3], e = h_[4];
  for (int i = 0; i < 80; ++i) {
    std::uint32_t f;
    std::uint32_t k;
    if (i < 20) {
      f = (b & c) | (~b & d);
      k = 0x5A827999;
    } else if (i < 40) {
      f = b ^ c ^ d;
      k = 0x6ED9EBA1;
    } else if (i < 60) {
      f = (b & c) | (b & d) | (c & d);
      k = 0x8F1BBCDC;
    } else {
      f = b ^ c ^ d;
      k = 0xCA62C1D6;
    }
    const std::uint32_t tmp = std::rotl(a, 5) + f + e + k + w[i];
    e = d;
    d = c;
    c = std::rotl(b, 30);
    b = a;
    a = tmp;
  }
  h_[0] += a;
  h_[1] += b;
  h_[2] += c;
  h_[3] += d;
  h_[4] += e;
}

void Sha1::update(ByteView data) {
  total_bits_ += static_cast<std::uint64_t>(data.size()) * 8;
  std::size_t i = 0;
  if (buffered_ > 0) {
    while (buffered_ < 64 && i < data.size()) buffer_[buffered_++] = data[i++];
    if (buffered_ == 64) {
      process_block(buffer_);
      buffered_ = 0;
    }
  }
  while (i + 64 <= data.size()) {
    process_block(data.data() + i);
    i += 64;
  }
  while (i < data.size()) buffer_[buffered_++] = data[i++];
}

std::array<std::uint8_t, Sha1::kDigestSize> Sha1::finish() {
  const std::uint64_t bits = total_bits_;
  const std::uint8_t pad = 0x80;
  update({&pad, 1});
  total_bits_ -= 8;  // padding does not count toward the length field
  const std::uint8_t zero = 0x00;
  while (buffered_ != 56) {
    update({&zero, 1});
    total_bits_ -= 8;
  }
  std::uint8_t len[8];
  for (int i = 0; i < 8; ++i) {
    len[i] = static_cast<std::uint8_t>(bits >> (56 - i * 8));
  }
  update({len, 8});

  std::array<std::uint8_t, kDigestSize> out{};
  for (int i = 0; i < 5; ++i) {
    out[i * 4] = static_cast<std::uint8_t>(h_[i] >> 24);
    out[i * 4 + 1] = static_cast<std::uint8_t>(h_[i] >> 16);
    out[i * 4 + 2] = static_cast<std::uint8_t>(h_[i] >> 8);
    out[i * 4 + 3] = static_cast<std::uint8_t>(h_[i] & 0xFFu);
  }
  return out;
}

Bytes Sha1::digest(ByteView data) {
  Sha1 h;
  h.update(data);
  const auto d = h.finish();
  return Bytes(d.begin(), d.end());
}

}  // namespace dfx::crypto
