// Measurement analyses: compute every table and figure of the paper's §3
// from a corpus. Each function returns a typed result; report.h renders
// them side-by-side with the paper's numbers.
//
// Thread-safety: every compute_* partitions the corpus per-domain across
// the global ThreadPool and merges partial accumulators in deterministic
// chunk order, so results are bit-identical at any thread count. The corpus
// is only read (const), so concurrent compute_* calls on the same corpus
// are safe.
#pragma once

#include <array>
#include <map>
#include <optional>
#include <vector>

#include "dataset/calibration.h"
#include "dataset/corpus.h"

namespace dfx::measure {

using analyzer::ErrorCode;
using analyzer::SnapshotStatus;
using dataset::Corpus;
using dataset::DomainLevel;

// ---- Table 1: dataset overview --------------------------------------------

struct LevelStats {
  std::int64_t snapshots = 0;
  std::int64_t domains = 0;
  std::int64_t multi_snapshot = 0;
  std::int64_t changing = 0;  // CD
  std::int64_t stable = 0;    // SD
};

struct Table1 {
  LevelStats root;
  LevelStats tld;
  LevelStats sld;
};

Table1 compute_table1(const Corpus& corpus);

// ---- Figure 1: Tranco-bin coverage ----------------------------------------

struct Fig1Bin {
  int bin = 0;                    // 0..99 (bins of universe/100 ranks)
  double present_share = 0.0;     // dataset domains / universe bin size
  double signed_share = 0.0;      // dataset signed / universe signed
  double misconfigured_share = 0.0;  // misconfigured / present signed
};

std::vector<Fig1Bin> compute_fig1(const Corpus& corpus);

// ---- Figure 2: CD first→last flows ----------------------------------------

struct Fig2Flows {
  /// counts[first][last] over SLD+ CD domains.
  std::map<SnapshotStatus, std::map<SnapshotStatus, std::int64_t>> counts;
  std::int64_t sb_first = 0;
  std::int64_t sb_recovered = 0;     // ended sv or svm
  std::int64_t is_first = 0;
  std::int64_t is_signed_later = 0;  // ended signed
  std::int64_t valid_first = 0;
  std::int64_t valid_to_is = 0;
  std::int64_t valid_to_sb = 0;
};

Fig2Flows compute_fig2(const Corpus& corpus);

// ---- Table 2: causes of negative transitions -------------------------------

struct Table2 {
  std::int64_t sv_sb_total = 0;
  std::int64_t sv_sb_ns = 0;
  std::int64_t sv_sb_key = 0;
  std::int64_t sv_sb_algo = 0;
  std::int64_t sv_is_total = 0;
  std::int64_t sv_is_ns = 0;
  std::int64_t sv_is_key = 0;
  std::int64_t sv_is_algo = 0;
};

Table2 compute_table2(const Corpus& corpus);

// ---- Table 3 / Figure 3: error prevalence ----------------------------------

struct Table3Row {
  ErrorCode code;
  std::int64_t snapshots = 0;
  std::int64_t domains = 0;
};

struct Table3 {
  std::vector<Table3Row> rows;  // in Table-3 order
  std::int64_t total_snapshots = 0;  // SLD+ snapshots
  std::int64_t total_domains = 0;
  std::int64_t any_error_snapshots = 0;
  std::int64_t any_error_domains = 0;
};

Table3 compute_table3(const Corpus& corpus);

struct Fig3Category {
  analyzer::ErrorCategory category;
  double snapshot_share = 0.0;
};

std::vector<Fig3Category> compute_fig3(const Table3& table3);

// ---- Table 4: transition adjacency matrix ----------------------------------

struct Table4Cell {
  std::int64_t count = 0;
  double median_hours = 0.0;
};

/// Indexed by the four DNSSEC states (sv, svm, sb, is).
using Table4 = std::map<SnapshotStatus, std::map<SnapshotStatus, Table4Cell>>;

Table4 compute_table4(const Corpus& corpus);

/// §3.6's paired statistic: domains that went sv→sb→sv, with medians of
/// both leg durations.
struct RoundTripStats {
  std::int64_t domains = 0;
  double down_median_hours = 0.0;
  double up_median_hours = 0.0;
};

RoundTripStats compute_roundtrip(const Corpus& corpus);

// ---- Figure 4: fix times per marked error -----------------------------------

struct Fig4Row {
  ErrorCode code;
  int marker = 0;  // ①..⑨
  bool critical = false;
  std::int64_t fixes = 0;
  double median_hours = 0.0;
  double p80_hours = 0.0;
};

std::vector<Fig4Row> compute_fig4(const Corpus& corpus);

/// The black box in Figure 4: time from first insecure snapshot to first
/// signed snapshot (DNSSEC deployment).
struct DeployTime {
  std::int64_t domains = 0;
  double median_hours = 0.0;
};
DeployTime compute_deploy_time(const Corpus& corpus);

// ---- Figure 5: inter-snapshot gaps ------------------------------------------

struct Fig5 {
  /// CDF of the per-domain median gap, evaluated at day boundaries.
  std::vector<double> cdf_days;        // x values (days)
  std::vector<double> cdf_share;      // P(median gap <= x)
  double under_one_day = 0.0;
};

Fig5 compute_fig5(const Corpus& corpus);

// ---- Table 5: never-resolved fractions --------------------------------------

struct Table5Row {
  SnapshotStatus status;
  std::int64_t domains_with_state = 0;
  std::int64_t not_resolved = 0;
};

std::vector<Table5Row> compute_table5(const Corpus& corpus);

// ---- helpers ----------------------------------------------------------------

double median(std::vector<double> values);
double percentile(std::vector<double> values, double p);

}  // namespace dfx::measure
