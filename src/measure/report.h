// Renderers: print each computed table/figure next to the paper's numbers
// (the bench binaries' output).
//
// Thread-safety: pure functions from result structs to strings; safe to
// call concurrently.
#pragma once

#include <string>

#include "measure/measure.h"

namespace dfx::measure {

std::string render_table1(const Table1& t, double scale);
std::string render_fig1(const std::vector<Fig1Bin>& bins);
std::string render_fig2(const Fig2Flows& flows);
std::string render_table2(const Table2& t);
std::string render_table3(const Table3& t);
std::string render_fig3(const std::vector<Fig3Category>& categories);
std::string render_table4(const Table4& t, const RoundTripStats& roundtrip);
std::string render_fig4(const std::vector<Fig4Row>& rows,
                        const DeployTime& deploy);
std::string render_fig5(const Fig5& f);
std::string render_table5(const std::vector<Table5Row>& rows);

}  // namespace dfx::measure
