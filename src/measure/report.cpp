#include "measure/report.h"

#include <cstdio>

#include "util/strings.h"

namespace dfx::measure {
namespace {

std::string line(char c, int n) { return std::string(static_cast<std::size_t>(n), c) + "\n"; }

std::string pct(double v) { return fmt_fixed(v * 100.0, 2) + "%"; }

std::string fmt_row(const char* label, std::int64_t measured,
                    std::int64_t paper, double scale) {
  char buf[160];
  std::snprintf(buf, sizeof buf, "  %-28s %12s   paper %12s (x%.2f scale)\n",
                label, fmt_thousands(measured).c_str(),
                fmt_thousands(paper).c_str(), scale);
  return buf;
}

std::string status_label(SnapshotStatus s) {
  return analyzer::status_name(s);
}

}  // namespace

std::string render_table1(const Table1& t, double scale) {
  const auto& cal = dataset::default_calibration().table1;
  std::string out = "Table 1 — Overview of the (synthetic) DNSViz dataset\n";
  out += line('-', 72);
  out += fmt_row("Root snapshots", t.root.snapshots,
                 static_cast<std::int64_t>(cal.root_snapshots * scale), scale);
  out += fmt_row("TLD snapshots", t.tld.snapshots,
                 static_cast<std::int64_t>(cal.tld_snapshots * scale), scale);
  out += fmt_row("SLD+ snapshots", t.sld.snapshots,
                 static_cast<std::int64_t>(cal.sld_snapshots * scale), scale);
  out += fmt_row("TLD domains", t.tld.domains,
                 static_cast<std::int64_t>(cal.tld_domains * scale), scale);
  out += fmt_row("SLD+ domains", t.sld.domains,
                 static_cast<std::int64_t>(cal.sld_domains * scale), scale);
  out += fmt_row("SLD+ w/ >= 2 snapshots", t.sld.multi_snapshot,
                 static_cast<std::int64_t>(cal.sld_multi_snapshot * scale),
                 scale);
  const double cd_share =
      t.sld.multi_snapshot == 0
          ? 0.0
          : static_cast<double>(t.sld.changing) /
                static_cast<double>(t.sld.multi_snapshot);
  out += "  SLD+ CD share                " + pct(cd_share) + "   paper " +
         pct(cal.sld_cd_share) + "\n";
  const double tld_cd_share =
      t.tld.multi_snapshot == 0
          ? 0.0
          : static_cast<double>(t.tld.changing) /
                static_cast<double>(t.tld.multi_snapshot);
  out += "  TLD CD share                 " + pct(tld_cd_share) + "   paper " +
         pct(cal.tld_cd_share) + "\n";
  return out;
}

std::string render_fig1(const std::vector<Fig1Bin>& bins) {
  std::string out =
      "Figure 1 — Tranco-bin coverage (per 10k-rank bin; measured vs model "
      "target)\n";
  out += line('-', 78);
  out += "  bin   present   (target)   signed    (target)   misconfig "
         "(target)\n";
  for (const auto& b : bins) {
    if (b.bin % 10 != 0 && b.bin != 99) continue;  // print every 10th bin
    char buf[160];
    std::snprintf(buf, sizeof buf,
                  "  %3d   %6.2f%%   (%5.2f%%)   %6.2f%%   (%5.2f%%)   "
                  "%6.2f%%   (%5.2f%%)\n",
                  b.bin, b.present_share * 100,
                  dataset::fig1_present_share(b.bin) * 100,
                  b.signed_share * 100,
                  dataset::fig1_signed_share(b.bin) * 100,
                  b.misconfigured_share * 100,
                  dataset::fig1_misconfigured_share(b.bin) * 100);
    out += buf;
  }
  return out;
}

std::string render_fig2(const Fig2Flows& flows) {
  const auto& cal = dataset::default_calibration().fig2;
  std::string out =
      "Figure 2 — CD domains: first vs last snapshot state flows\n";
  out += line('-', 72);
  out += "  first\\last        sv        svm       sb        is\n";
  for (const auto from :
       {SnapshotStatus::kSignedValid, SnapshotStatus::kSignedValidMisconfig,
        SnapshotStatus::kSignedBogus, SnapshotStatus::kInsecure}) {
    char buf[160];
    const auto row = flows.counts.find(from);
    std::int64_t cells[4] = {0, 0, 0, 0};
    if (row != flows.counts.end()) {
      int i = 0;
      for (const auto to :
           {SnapshotStatus::kSignedValid,
            SnapshotStatus::kSignedValidMisconfig,
            SnapshotStatus::kSignedBogus, SnapshotStatus::kInsecure}) {
        const auto cell = row->second.find(to);
        cells[i++] = cell == row->second.end() ? 0 : cell->second;
      }
    }
    std::snprintf(buf, sizeof buf, "  %-10s %9s %9s %9s %9s\n",
                  status_label(from).c_str(),
                  fmt_thousands(cells[0]).c_str(),
                  fmt_thousands(cells[1]).c_str(),
                  fmt_thousands(cells[2]).c_str(),
                  fmt_thousands(cells[3]).c_str());
    out += buf;
  }
  const double recovered =
      flows.sb_first == 0 ? 0.0
                          : static_cast<double>(flows.sb_recovered) /
                                static_cast<double>(flows.sb_first);
  const double newly_signed =
      flows.is_first == 0 ? 0.0
                          : static_cast<double>(flows.is_signed_later) /
                                static_cast<double>(flows.is_first);
  const double to_is =
      flows.valid_first == 0 ? 0.0
                             : static_cast<double>(flows.valid_to_is) /
                                   static_cast<double>(flows.valid_first);
  const double to_sb =
      flows.valid_first == 0 ? 0.0
                             : static_cast<double>(flows.valid_to_sb) /
                                   static_cast<double>(flows.valid_first);
  out += "  sb -> valid        " + pct(recovered) + "   paper " +
         pct(cal.sb_to_valid) + "\n";
  out += "  is -> signed       " + pct(newly_signed) + "   paper " +
         pct(cal.is_to_signed) + "\n";
  out += "  valid -> is        " + pct(to_is) + "   paper " +
         pct(cal.valid_to_is) + "\n";
  out += "  valid -> sb        " + pct(to_sb) + "   paper " +
         pct(cal.valid_to_sb) + "\n";
  return out;
}

std::string render_table2(const Table2& t) {
  const auto& cal = dataset::default_calibration().table2;
  std::string out = "Table 2 — Causes of negative transitions\n";
  out += line('-', 72);
  const auto row = [&](const char* label, std::int64_t n, std::int64_t total,
                       double paper) {
    const double share =
        total == 0 ? 0.0
                   : static_cast<double>(n) / static_cast<double>(total);
    return std::string("  ") + label + "  " + fmt_thousands(n) + " (" +
           pct(share) + ")   paper " + pct(paper) + "\n";
  };
  out += "  sv->sb total: " + fmt_thousands(t.sv_sb_total) + "\n";
  out += row("  NS update     ", t.sv_sb_ns, t.sv_sb_total,
             cal.sv_sb_ns_update);
  out += row("  Key rollover  ", t.sv_sb_key, t.sv_sb_total,
             cal.sv_sb_key_rollover);
  out += row("  Algo rollover ", t.sv_sb_algo, t.sv_sb_total,
             cal.sv_sb_algo_rollover);
  out += "  sv->is total: " + fmt_thousands(t.sv_is_total) + "\n";
  out += row("  NS update     ", t.sv_is_ns, t.sv_is_total,
             cal.sv_is_ns_update);
  out += row("  Key rollover  ", t.sv_is_key, t.sv_is_total,
             cal.sv_is_key_rollover);
  out += row("  Algo rollover ", t.sv_is_algo, t.sv_is_total,
             cal.sv_is_algo_rollover);
  return out;
}

std::string render_table3(const Table3& t) {
  std::string out = "Table 3 — Error prevalence (SLD+)\n";
  out += line('-', 96);
  out += "  subcategory                            snapshots (share | paper) "
         "    domains (share | paper)\n";
  std::map<ErrorCode, dataset::ErrorPrevalenceRow> cal;
  for (const auto& row : dataset::table3_calibration()) {
    cal[row.code] = row;
  }
  for (const auto& row : t.rows) {
    const double snap_share =
        t.total_snapshots == 0
            ? 0.0
            : static_cast<double>(row.snapshots) /
                  static_cast<double>(t.total_snapshots);
    const double dom_share =
        t.total_domains == 0
            ? 0.0
            : static_cast<double>(row.domains) /
                  static_cast<double>(t.total_domains);
    char buf[200];
    std::snprintf(buf, sizeof buf,
                  "  %-38s %9s (%6.2f%% | %6.2f%%)   %9s (%6.2f%% | "
                  "%6.2f%%)\n",
                  analyzer::error_code_name(row.code).c_str(),
                  fmt_thousands(row.snapshots).c_str(), snap_share * 100,
                  cal[row.code].snapshot_share * 100,
                  fmt_thousands(row.domains).c_str(), dom_share * 100,
                  cal[row.code].domain_share * 100);
    out += buf;
  }
  const double any_snap =
      t.total_snapshots == 0
          ? 0.0
          : static_cast<double>(t.any_error_snapshots) /
                static_cast<double>(t.total_snapshots);
  const double any_dom = t.total_domains == 0
                             ? 0.0
                             : static_cast<double>(t.any_error_domains) /
                                   static_cast<double>(t.total_domains);
  out += "  w/ at least one error: snapshots " + pct(any_snap) + " (paper " +
         pct(dataset::kTable3AnyErrorSnapshotShare) + "), domains " +
         pct(any_dom) + " (paper " +
         pct(dataset::kTable3AnyErrorDomainShare) + ")\n";
  return out;
}

std::string render_fig3(const std::vector<Fig3Category>& categories) {
  std::string out = "Figure 3 — Error-category share of SLD+ snapshots\n";
  out += line('-', 60);
  for (const auto& c : categories) {
    char buf[120];
    std::snprintf(buf, sizeof buf, "  %-14s %7.2f%%\n",
                  analyzer::error_category_name(c.category).c_str(),
                  c.snapshot_share * 100);
    out += buf;
  }
  return out;
}

std::string render_table4(const Table4& t, const RoundTripStats& roundtrip) {
  std::string out =
      "Table 4 — State-transition adjacency matrix (count / median hours)\n";
  out += line('-', 84);
  out += "  from\\to          sv              svm             sb              "
         "is\n";
  std::map<std::pair<SnapshotStatus, SnapshotStatus>,
           dataset::TransitionCell>
      cal;
  for (const auto& cell : dataset::table4_calibration()) {
    cal[{cell.from, cell.to}] = cell;
  }
  for (const auto from :
       {SnapshotStatus::kSignedValid, SnapshotStatus::kSignedValidMisconfig,
        SnapshotStatus::kSignedBogus, SnapshotStatus::kInsecure}) {
    std::string row = "  " + status_label(from) + std::string(6, ' ');
    row.resize(12, ' ');
    for (const auto to :
         {SnapshotStatus::kSignedValid,
          SnapshotStatus::kSignedValidMisconfig,
          SnapshotStatus::kSignedBogus, SnapshotStatus::kInsecure}) {
      char buf[64];
      if (from == to) {
        std::snprintf(buf, sizeof buf, "%-16s", "   -");
      } else {
        Table4Cell cell;
        const auto fit = t.find(from);
        if (fit != t.end()) {
          const auto tit = fit->second.find(to);
          if (tit != fit->second.end()) cell = tit->second;
        }
        std::snprintf(buf, sizeof buf, "%6s/%-8s ",
                      fmt_thousands(cell.count).c_str(),
                      (fmt_fixed(cell.median_hours, 1) + "h").c_str());
      }
      row += buf;
    }
    out += row + "\n";
  }
  out += "  (paper medians: sb->sv 0.7h, sv->sb 133.7h; see calibration)\n";
  out += "  round-trip sv->sb->sv domains: " +
         fmt_thousands(roundtrip.domains) + ", down median " +
         fmt_fixed(roundtrip.down_median_hours, 1) + "h, up median " +
         fmt_fixed(roundtrip.up_median_hours, 1) +
         "h (paper: 1,856 / 238.6h / 0.6h)\n";
  return out;
}

std::string render_fig4(const std::vector<Fig4Row>& rows,
                        const DeployTime& deploy) {
  std::string out =
      "Figure 4 — Resolution time per marked error (median / p80 hours)\n";
  out += line('-', 88);
  std::map<ErrorCode, dataset::FixTimeCalibration> cal;
  for (const auto& c : dataset::fig4_calibration()) cal[c.code] = c;
  for (const auto& row : rows) {
    char buf[200];
    std::snprintf(buf, sizeof buf,
                  "  %d %-34s %-12s fixes=%-7s median %8.1fh (paper %8.1fh) "
                  " p80 %8.1fh (paper %8.1fh)\n",
                  row.marker, analyzer::error_code_name(row.code).c_str(),
                  row.critical ? "[critical]" : "[advisory]",
                  fmt_thousands(row.fixes).c_str(), row.median_hours,
                  cal[row.code].median_hours, row.p80_hours,
                  cal[row.code].p80_hours);
    out += buf;
  }
  out += "  DNSSEC deployment (is -> signed): " +
         fmt_thousands(deploy.domains) + " domains, median " +
         fmt_fixed(deploy.median_hours, 1) + "h (paper: > 24h)\n";
  return out;
}

std::string render_fig5(const Fig5& f) {
  std::string out =
      "Figure 5 — CDF of per-domain median inter-snapshot gap\n";
  out += line('-', 56);
  for (std::size_t i = 0; i < f.cdf_days.size(); ++i) {
    char buf[96];
    std::snprintf(buf, sizeof buf, "  <= %6.2f days : %6.2f%%\n",
                  f.cdf_days[i], f.cdf_share[i] * 100);
    out += buf;
  }
  out += "  share under one day: " + pct(f.under_one_day) + " (paper " +
         pct(dataset::kFig5MedianGapUnderOneDay) + ")\n";
  return out;
}

std::string render_table5(const std::vector<Table5Row>& rows) {
  const auto& cal = dataset::default_calibration().table5;
  std::string out = "Table 5 — Domains that never resolved their state\n";
  out += line('-', 72);
  for (const auto& row : rows) {
    double paper_share = 0.0;
    if (row.status == SnapshotStatus::kSignedBogus) {
      paper_share = cal.sb_unresolved;
    } else if (row.status == SnapshotStatus::kSignedValidMisconfig) {
      paper_share = cal.svm_unresolved;
    } else {
      paper_share = cal.is_unresolved;
    }
    const double share =
        row.domains_with_state == 0
            ? 0.0
            : static_cast<double>(row.not_resolved) /
                  static_cast<double>(row.domains_with_state);
    char buf[160];
    std::snprintf(buf, sizeof buf,
                  "  %-4s with state %9s   not resolved %9s (%6.2f%% | paper "
                  "%6.2f%%)\n",
                  status_label(row.status).c_str(),
                  fmt_thousands(row.domains_with_state).c_str(),
                  fmt_thousands(row.not_resolved).c_str(), share * 100,
                  paper_share * 100);
    out += buf;
  }
  return out;
}

}  // namespace dfx::measure
