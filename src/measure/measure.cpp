#include "measure/measure.h"

#include <algorithm>
#include <cmath>

namespace dfx::measure {
namespace {

using dataset::DomainTimeline;
using dataset::SnapshotRow;

bool is_dnssec_state(SnapshotStatus s) {
  return s == SnapshotStatus::kSignedValid ||
         s == SnapshotStatus::kSignedValidMisconfig ||
         s == SnapshotStatus::kSignedBogus || s == SnapshotStatus::kInsecure;
}

bool is_valid_state(SnapshotStatus s) {
  return s == SnapshotStatus::kSignedValid ||
         s == SnapshotStatus::kSignedValidMisconfig;
}

bool is_signed_state(SnapshotStatus s) {
  return is_valid_state(s) || s == SnapshotStatus::kSignedBogus;
}

}  // namespace

double median(std::vector<double> values) {
  if (values.empty()) return 0.0;
  std::sort(values.begin(), values.end());
  const std::size_t n = values.size();
  return n % 2 == 1 ? values[n / 2]
                    : 0.5 * (values[n / 2 - 1] + values[n / 2]);
}

double percentile(std::vector<double> values, double p) {
  if (values.empty()) return 0.0;
  std::sort(values.begin(), values.end());
  const double idx = p * static_cast<double>(values.size() - 1);
  const auto lo = static_cast<std::size_t>(idx);
  const std::size_t hi = std::min(lo + 1, values.size() - 1);
  const double frac = idx - static_cast<double>(lo);
  return values[lo] * (1.0 - frac) + values[hi] * frac;
}

Table1 compute_table1(const Corpus& corpus) {
  Table1 out;
  for (const auto& d : corpus.domains) {
    LevelStats* stats = nullptr;
    switch (d.level) {
      case DomainLevel::kRoot: stats = &out.root; break;
      case DomainLevel::kTld: stats = &out.tld; break;
      case DomainLevel::kSld: stats = &out.sld; break;
    }
    stats->snapshots += static_cast<std::int64_t>(d.snapshots.size());
    stats->domains += 1;
    if (d.multi_snapshot()) {
      stats->multi_snapshot += 1;
      if (d.is_changing()) {
        stats->changing += 1;
      } else {
        stats->stable += 1;
      }
    }
  }
  return out;
}

std::vector<Fig1Bin> compute_fig1(const Corpus& corpus) {
  constexpr int kBins = 100;
  const std::uint64_t bin_size =
      std::max<std::uint64_t>(1, corpus.universe_size / kBins);
  std::vector<std::int64_t> present(kBins, 0);
  std::vector<std::int64_t> present_signed(kBins, 0);
  std::vector<std::int64_t> misconfigured(kBins, 0);
  for (const auto& d : corpus.domains) {
    if (!d.tranco_rank) continue;
    const auto b = static_cast<int>(
        std::min<std::uint64_t>((*d.tranco_rank - 1) / bin_size, kBins - 1));
    present[static_cast<std::size_t>(b)] += 1;
    if (d.ever_signed) {
      present_signed[static_cast<std::size_t>(b)] += 1;
      const bool ever_misconfigured = std::any_of(
          d.snapshots.begin(), d.snapshots.end(), [](const SnapshotRow& s) {
            return !s.errors.empty() ||
                   s.status == SnapshotStatus::kSignedBogus;
          });
      if (ever_misconfigured) misconfigured[static_cast<std::size_t>(b)] += 1;
    }
  }
  std::vector<Fig1Bin> out;
  out.reserve(kBins);
  for (int b = 0; b < kBins; ++b) {
    Fig1Bin bin;
    bin.bin = b;
    bin.present_share = static_cast<double>(present[static_cast<std::size_t>(
                            b)]) /
                        static_cast<double>(bin_size);
    const auto universe_signed =
        b < static_cast<int>(corpus.universe_signed_per_bin.size())
            ? corpus.universe_signed_per_bin[static_cast<std::size_t>(b)]
            : 0;
    bin.signed_share =
        universe_signed == 0
            ? 0.0
            : static_cast<double>(
                  present_signed[static_cast<std::size_t>(b)]) /
                  static_cast<double>(universe_signed);
    bin.misconfigured_share =
        present_signed[static_cast<std::size_t>(b)] == 0
            ? 0.0
            : static_cast<double>(misconfigured[static_cast<std::size_t>(b)]) /
                  static_cast<double>(
                      present_signed[static_cast<std::size_t>(b)]);
    out.push_back(bin);
  }
  return out;
}

Fig2Flows compute_fig2(const Corpus& corpus) {
  Fig2Flows out;
  for (const auto& d : corpus.domains) {
    if (d.level != DomainLevel::kSld || !d.is_changing()) continue;
    // is_changing() implies at least two snapshots.
    const SnapshotStatus first =  // dfx-lint: allow(unchecked-front-back): is_changing() => non-empty
        d.snapshots.front().status;
    const SnapshotStatus last =  // dfx-lint: allow(unchecked-front-back): is_changing() => non-empty
        d.snapshots.back().status;
    if (!is_dnssec_state(first) || !is_dnssec_state(last)) continue;
    out.counts[first][last] += 1;
    if (first == SnapshotStatus::kSignedBogus) {
      out.sb_first += 1;
      if (is_valid_state(last)) out.sb_recovered += 1;
    } else if (first == SnapshotStatus::kInsecure) {
      out.is_first += 1;
      if (is_signed_state(last)) out.is_signed_later += 1;
    } else if (is_valid_state(first)) {
      out.valid_first += 1;
      if (last == SnapshotStatus::kInsecure) out.valid_to_is += 1;
      if (last == SnapshotStatus::kSignedBogus) out.valid_to_sb += 1;
    }
  }
  return out;
}

Table2 compute_table2(const Corpus& corpus) {
  Table2 out;
  for (const auto& d : corpus.domains) {
    if (d.level != DomainLevel::kSld) continue;
    for (std::size_t i = 1; i < d.snapshots.size(); ++i) {
      const auto& prev = d.snapshots[i - 1];
      const auto& cur = d.snapshots[i];
      if (!is_valid_state(prev.status)) continue;
      const bool to_sb = cur.status == SnapshotStatus::kSignedBogus;
      const bool to_is = cur.status == SnapshotStatus::kInsecure;
      if (!to_sb && !to_is) continue;
      const bool ns_change = cur.ns_id != prev.ns_id;
      const bool alg_change = cur.algorithm_id != prev.algorithm_id;
      const bool key_change = cur.key_id != prev.key_id && !alg_change;
      if (to_sb) {
        out.sv_sb_total += 1;
        if (ns_change) out.sv_sb_ns += 1;
        if (key_change) out.sv_sb_key += 1;
        if (alg_change) out.sv_sb_algo += 1;
      } else {
        out.sv_is_total += 1;
        if (ns_change) out.sv_is_ns += 1;
        if (key_change) out.sv_is_key += 1;
        if (alg_change) out.sv_is_algo += 1;
      }
    }
  }
  return out;
}

Table3 compute_table3(const Corpus& corpus) {
  Table3 out;
  std::map<ErrorCode, std::int64_t> snapshot_counts;
  std::map<ErrorCode, std::int64_t> domain_counts;
  for (const auto& d : corpus.domains) {
    if (d.level != DomainLevel::kSld) continue;
    out.total_domains += 1;
    std::set<ErrorCode> domain_codes;
    bool domain_any = false;
    for (const auto& s : d.snapshots) {
      out.total_snapshots += 1;
      if (!s.errors.empty()) out.any_error_snapshots += 1;
      for (const auto code : s.errors) {
        snapshot_counts[code] += 1;
        domain_codes.insert(code);
        domain_any = true;
      }
    }
    for (const auto code : domain_codes) domain_counts[code] += 1;
    if (domain_any) out.any_error_domains += 1;
  }
  for (const auto code : analyzer::table3_codes()) {
    Table3Row row;
    row.code = code;
    row.snapshots = snapshot_counts[code];
    row.domains = domain_counts[code];
    out.rows.push_back(row);
  }
  return out;
}

std::vector<Fig3Category> compute_fig3(const Table3& table3) {
  std::map<analyzer::ErrorCategory, std::int64_t> by_category;
  for (const auto& row : table3.rows) {
    by_category[analyzer::category_of(row.code)] += row.snapshots;
  }
  std::vector<Fig3Category> out;
  for (const auto& [category, count] : by_category) {
    Fig3Category c;
    c.category = category;
    c.snapshot_share = table3.total_snapshots == 0
                           ? 0.0
                           : static_cast<double>(count) /
                                 static_cast<double>(table3.total_snapshots);
    out.push_back(c);
  }
  return out;
}

Table4 compute_table4(const Corpus& corpus) {
  std::map<SnapshotStatus,
           std::map<SnapshotStatus, std::vector<double>>>
      durations;
  for (const auto& d : corpus.domains) {
    if (d.level != DomainLevel::kSld || !d.is_changing()) continue;
    for (std::size_t i = 1; i < d.snapshots.size(); ++i) {
      const auto& prev = d.snapshots[i - 1];
      const auto& cur = d.snapshots[i];
      if (prev.status == cur.status) continue;
      if (!is_dnssec_state(prev.status) || !is_dnssec_state(cur.status)) {
        continue;
      }
      durations[prev.status][cur.status].push_back(
          static_cast<double>(cur.time - prev.time) / kHour);
    }
  }
  Table4 out;
  for (auto& [from, row] : durations) {
    for (auto& [to, values] : row) {
      Table4Cell cell;
      cell.count = static_cast<std::int64_t>(values.size());
      cell.median_hours = median(values);
      out[from][to] = cell;
    }
  }
  return out;
}

RoundTripStats compute_roundtrip(const Corpus& corpus) {
  RoundTripStats out;
  std::vector<double> down;
  std::vector<double> up;
  for (const auto& d : corpus.domains) {
    if (d.level != DomainLevel::kSld) continue;
    // Find sv→sb followed by sb→sv/svm.
    std::optional<std::size_t> down_at;
    for (std::size_t i = 1; i < d.snapshots.size(); ++i) {
      const auto& prev = d.snapshots[i - 1];
      const auto& cur = d.snapshots[i];
      if (is_valid_state(prev.status) &&
          cur.status == SnapshotStatus::kSignedBogus && !down_at) {
        down_at = i;
        down.push_back(static_cast<double>(cur.time - prev.time) / kHour);
      } else if (down_at && cur.status != SnapshotStatus::kSignedBogus &&
                 is_valid_state(cur.status)) {
        up.push_back(
            static_cast<double>(cur.time - d.snapshots[i - 1].time) / kHour);
        out.domains += 1;
        break;
      }
    }
  }
  out.down_median_hours = median(down);
  out.up_median_hours = median(up);
  return out;
}

std::vector<Fig4Row> compute_fig4(const Corpus& corpus) {
  // t1: first snapshot where the error is present (critical when the
  // snapshot is sb); t2: first subsequent snapshot that is sv and free of
  // the error.
  std::map<ErrorCode, std::vector<double>> durations;
  for (const auto& d : corpus.domains) {
    if (d.level != DomainLevel::kSld) continue;
    std::map<ErrorCode, UnixTime> first_seen;
    for (const auto& s : d.snapshots) {
      for (const auto code : s.errors) {
        first_seen.try_emplace(code, s.time);
      }
      if (s.status == SnapshotStatus::kSignedValid) {
        for (auto it = first_seen.begin(); it != first_seen.end();) {
          if (!s.errors.contains(it->first)) {
            durations[it->first].push_back(
                static_cast<double>(s.time - it->second) / kHour);
            it = first_seen.erase(it);
          } else {
            ++it;
          }
        }
      }
    }
  }
  std::vector<Fig4Row> out;
  for (const auto& cal : dataset::fig4_calibration()) {
    Fig4Row row;
    row.code = cal.code;
    row.marker = analyzer::paper_marker(cal.code).value_or(0);
    row.critical = analyzer::is_critical(cal.code);
    auto it = durations.find(cal.code);
    if (it != durations.end()) {
      row.fixes = static_cast<std::int64_t>(it->second.size());
      row.median_hours = median(it->second);
      row.p80_hours = percentile(it->second, 0.8);
    }
    out.push_back(row);
  }
  return out;
}

DeployTime compute_deploy_time(const Corpus& corpus) {
  DeployTime out;
  std::vector<double> durations;
  for (const auto& d : corpus.domains) {
    if (d.level != DomainLevel::kSld) continue;
    std::optional<UnixTime> insecure_at;
    for (const auto& s : d.snapshots) {
      if (s.status == SnapshotStatus::kInsecure && !insecure_at) {
        insecure_at = s.time;
      } else if (insecure_at && is_signed_state(s.status)) {
        durations.push_back(static_cast<double>(s.time - *insecure_at) /
                            kHour);
        break;
      }
    }
  }
  out.domains = static_cast<std::int64_t>(durations.size());
  out.median_hours = median(durations);
  return out;
}

Fig5 compute_fig5(const Corpus& corpus) {
  std::vector<double> medians_days;
  for (const auto& d : corpus.domains) {
    if (d.level != DomainLevel::kSld || d.snapshots.size() < 2) continue;
    std::vector<double> gaps;
    for (std::size_t i = 1; i < d.snapshots.size(); ++i) {
      gaps.push_back(static_cast<double>(d.snapshots[i].time -
                                         d.snapshots[i - 1].time) /
                     kDay);
    }
    medians_days.push_back(median(gaps));
  }
  Fig5 out;
  std::sort(medians_days.begin(), medians_days.end());
  const double n = static_cast<double>(medians_days.size());
  for (double day : {0.25, 0.5, 1.0, 2.0, 4.0, 7.0, 14.0, 30.0, 90.0,
                     365.0}) {
    const auto it = std::upper_bound(medians_days.begin(),
                                     medians_days.end(), day);
    out.cdf_days.push_back(day);
    out.cdf_share.push_back(
        n == 0 ? 0.0
               : static_cast<double>(it - medians_days.begin()) / n);
  }
  const auto one_day = std::upper_bound(medians_days.begin(),
                                        medians_days.end(), 1.0);
  out.under_one_day =
      n == 0 ? 0.0
             : static_cast<double>(one_day - medians_days.begin()) / n;
  return out;
}

std::vector<Table5Row> compute_table5(const Corpus& corpus) {
  std::map<SnapshotStatus, Table5Row> rows;
  for (const auto status :
       {SnapshotStatus::kSignedBogus, SnapshotStatus::kSignedValidMisconfig,
        SnapshotStatus::kInsecure}) {
    rows[status].status = status;
  }
  for (const auto& d : corpus.domains) {
    // Resolution behaviour is only observable where something changed:
    // Table 5's totals are consistent with the CD subset, not all 319K
    // domains (e.g. svm-ever 9,052 while NZIC alone touches 62,870).
    if (d.level != DomainLevel::kSld || !d.is_changing()) continue;
    const SnapshotStatus last =  // dfx-lint: allow(unchecked-front-back): is_changing() => non-empty
        d.snapshots.back().status;
    for (auto& [status, row] : rows) {
      const bool ever = std::any_of(
          d.snapshots.begin(), d.snapshots.end(),
          [&](const SnapshotRow& s) { return s.status == status; });
      if (!ever) continue;
      row.domains_with_state += 1;
      // "Not resolved" — the domain *remained in that status* per its
      // latest snapshot (§3.6: 18% of once-sb domains stayed sb; 36.5% of
      // once-insecure domains never re-enabled signing).
      if (last == status) row.not_resolved += 1;
    }
  }
  std::vector<Table5Row> out;
  for (const auto& [status, row] : rows) out.push_back(row);
  std::sort(out.begin(), out.end(), [](const Table5Row& a, const Table5Row& b) {
    return static_cast<int>(a.status) < static_cast<int>(b.status);
  });
  return out;
}

}  // namespace dfx::measure
