#include "measure/measure.h"

#include <algorithm>
#include <cmath>

#include "util/metrics.h"
#include "util/parallel.h"

namespace dfx::measure {
namespace {

using dataset::DomainTimeline;
using dataset::SnapshotRow;

bool is_dnssec_state(SnapshotStatus s) {
  return s == SnapshotStatus::kSignedValid ||
         s == SnapshotStatus::kSignedValidMisconfig ||
         s == SnapshotStatus::kSignedBogus || s == SnapshotStatus::kInsecure;
}

bool is_valid_state(SnapshotStatus s) {
  return s == SnapshotStatus::kSignedValid ||
         s == SnapshotStatus::kSignedValidMisconfig;
}

bool is_signed_state(SnapshotStatus s) {
  return is_valid_state(s) || s == SnapshotStatus::kSignedBogus;
}

// Every analysis below is a per-domain fold executed as a chunked
// parallel_reduce: chunk accumulators are built in ascending domain order
// and merged in ascending chunk order, so each result is bit-identical to
// a serial pass at any thread count (see util/parallel.h).

/// Fold `body(acc, domain)` over every domain of the corpus.
template <typename Acc, typename Body, typename Merge>
Acc reduce_domains(const Corpus& corpus, Body&& body, Merge&& merge) {
  return parallel_reduce<Acc>(
      ThreadPool::global(), corpus.domains.size(), kDefaultGrain,
      [&](Acc& acc, std::size_t i) { body(acc, corpus.domains[i]); },
      merge);
}

void merge_level(LevelStats& into, const LevelStats& from) {
  into.snapshots += from.snapshots;
  into.domains += from.domains;
  into.multi_snapshot += from.multi_snapshot;
  into.changing += from.changing;
  into.stable += from.stable;
}

/// Append-merge: `from`'s values follow `into`'s, preserving domain order.
void append(std::vector<double>& into, std::vector<double>&& from) {
  into.insert(into.end(), from.begin(), from.end());
}

}  // namespace

double median(std::vector<double> values) {
  if (values.empty()) return 0.0;
  std::sort(values.begin(), values.end());
  const std::size_t n = values.size();
  return n % 2 == 1 ? values[n / 2]
                    : 0.5 * (values[n / 2 - 1] + values[n / 2]);
}

double percentile(std::vector<double> values, double p) {
  if (values.empty()) return 0.0;
  std::sort(values.begin(), values.end());
  const double idx = p * static_cast<double>(values.size() - 1);
  const auto lo = static_cast<std::size_t>(idx);
  const std::size_t hi = std::min(lo + 1, values.size() - 1);
  const double frac = idx - static_cast<double>(lo);
  return values[lo] * (1.0 - frac) + values[hi] * frac;
}

Table1 compute_table1(const Corpus& corpus) {
  metrics::ScopedTimer timer("stage.measure.table1");
  return reduce_domains<Table1>(
      corpus,
      [](Table1& acc, const DomainTimeline& d) {
        LevelStats* stats = nullptr;
        switch (d.level) {
          case DomainLevel::kRoot: stats = &acc.root; break;
          case DomainLevel::kTld: stats = &acc.tld; break;
          case DomainLevel::kSld: stats = &acc.sld; break;
        }
        stats->snapshots += static_cast<std::int64_t>(d.snapshots.size());
        stats->domains += 1;
        if (d.multi_snapshot()) {
          stats->multi_snapshot += 1;
          if (d.is_changing()) {
            stats->changing += 1;
          } else {
            stats->stable += 1;
          }
        }
      },
      [](Table1& a, Table1&& b) {
        merge_level(a.root, b.root);
        merge_level(a.tld, b.tld);
        merge_level(a.sld, b.sld);
      });
}

std::vector<Fig1Bin> compute_fig1(const Corpus& corpus) {
  metrics::ScopedTimer timer("stage.measure.fig1");
  constexpr int kBins = 100;
  const std::uint64_t bin_size =
      std::max<std::uint64_t>(1, corpus.universe_size / kBins);
  struct Acc {
    std::vector<std::int64_t> present = std::vector<std::int64_t>(kBins, 0);
    std::vector<std::int64_t> present_signed =
        std::vector<std::int64_t>(kBins, 0);
    std::vector<std::int64_t> misconfigured =
        std::vector<std::int64_t>(kBins, 0);
  };
  const Acc acc = reduce_domains<Acc>(
      corpus,
      [bin_size](Acc& a, const DomainTimeline& d) {
        if (!d.tranco_rank) return;
        const auto b = static_cast<int>(std::min<std::uint64_t>(
            (*d.tranco_rank - 1) / bin_size, kBins - 1));
        a.present[static_cast<std::size_t>(b)] += 1;
        if (d.ever_signed) {
          a.present_signed[static_cast<std::size_t>(b)] += 1;
          const bool ever_misconfigured = std::any_of(
              d.snapshots.begin(), d.snapshots.end(),
              [](const SnapshotRow& s) {
                return !s.errors.empty() ||
                       s.status == SnapshotStatus::kSignedBogus;
              });
          if (ever_misconfigured) {
            a.misconfigured[static_cast<std::size_t>(b)] += 1;
          }
        }
      },
      [](Acc& a, Acc&& b) {
        for (int i = 0; i < kBins; ++i) {
          const auto k = static_cast<std::size_t>(i);
          a.present[k] += b.present[k];
          a.present_signed[k] += b.present_signed[k];
          a.misconfigured[k] += b.misconfigured[k];
        }
      });
  std::vector<Fig1Bin> out;
  out.reserve(kBins);
  for (int b = 0; b < kBins; ++b) {
    Fig1Bin bin;
    bin.bin = b;
    bin.present_share =
        static_cast<double>(acc.present[static_cast<std::size_t>(b)]) /
        static_cast<double>(bin_size);
    const auto universe_signed =
        b < static_cast<int>(corpus.universe_signed_per_bin.size())
            ? corpus.universe_signed_per_bin[static_cast<std::size_t>(b)]
            : 0;
    bin.signed_share =
        universe_signed == 0
            ? 0.0
            : static_cast<double>(
                  acc.present_signed[static_cast<std::size_t>(b)]) /
                  static_cast<double>(universe_signed);
    bin.misconfigured_share =
        acc.present_signed[static_cast<std::size_t>(b)] == 0
            ? 0.0
            : static_cast<double>(
                  acc.misconfigured[static_cast<std::size_t>(b)]) /
                  static_cast<double>(
                      acc.present_signed[static_cast<std::size_t>(b)]);
    out.push_back(bin);
  }
  return out;
}

Fig2Flows compute_fig2(const Corpus& corpus) {
  metrics::ScopedTimer timer("stage.measure.fig2");
  return reduce_domains<Fig2Flows>(
      corpus,
      [](Fig2Flows& acc, const DomainTimeline& d) {
        if (d.level != DomainLevel::kSld || !d.is_changing()) return;
        // is_changing() implies at least two snapshots.
        const SnapshotStatus first =  // dfx-lint: allow(unchecked-front-back): is_changing() => non-empty
            d.snapshots.front().status;
        const SnapshotStatus last =  // dfx-lint: allow(unchecked-front-back): is_changing() => non-empty
            d.snapshots.back().status;
        if (!is_dnssec_state(first) || !is_dnssec_state(last)) return;
        acc.counts[first][last] += 1;
        if (first == SnapshotStatus::kSignedBogus) {
          acc.sb_first += 1;
          if (is_valid_state(last)) acc.sb_recovered += 1;
        } else if (first == SnapshotStatus::kInsecure) {
          acc.is_first += 1;
          if (is_signed_state(last)) acc.is_signed_later += 1;
        } else if (is_valid_state(first)) {
          acc.valid_first += 1;
          if (last == SnapshotStatus::kInsecure) acc.valid_to_is += 1;
          if (last == SnapshotStatus::kSignedBogus) acc.valid_to_sb += 1;
        }
      },
      [](Fig2Flows& a, Fig2Flows&& b) {
        for (const auto& [first, row] : b.counts) {
          for (const auto& [last, n] : row) a.counts[first][last] += n;
        }
        a.sb_first += b.sb_first;
        a.sb_recovered += b.sb_recovered;
        a.is_first += b.is_first;
        a.is_signed_later += b.is_signed_later;
        a.valid_first += b.valid_first;
        a.valid_to_is += b.valid_to_is;
        a.valid_to_sb += b.valid_to_sb;
      });
}

Table2 compute_table2(const Corpus& corpus) {
  metrics::ScopedTimer timer("stage.measure.table2");
  return reduce_domains<Table2>(
      corpus,
      [](Table2& acc, const DomainTimeline& d) {
        if (d.level != DomainLevel::kSld) return;
        for (std::size_t i = 1; i < d.snapshots.size(); ++i) {
          const auto& prev = d.snapshots[i - 1];
          const auto& cur = d.snapshots[i];
          if (!is_valid_state(prev.status)) continue;
          const bool to_sb = cur.status == SnapshotStatus::kSignedBogus;
          const bool to_is = cur.status == SnapshotStatus::kInsecure;
          if (!to_sb && !to_is) continue;
          const bool ns_change = cur.ns_id != prev.ns_id;
          const bool alg_change = cur.algorithm_id != prev.algorithm_id;
          const bool key_change = cur.key_id != prev.key_id && !alg_change;
          if (to_sb) {
            acc.sv_sb_total += 1;
            if (ns_change) acc.sv_sb_ns += 1;
            if (key_change) acc.sv_sb_key += 1;
            if (alg_change) acc.sv_sb_algo += 1;
          } else {
            acc.sv_is_total += 1;
            if (ns_change) acc.sv_is_ns += 1;
            if (key_change) acc.sv_is_key += 1;
            if (alg_change) acc.sv_is_algo += 1;
          }
        }
      },
      [](Table2& a, Table2&& b) {
        a.sv_sb_total += b.sv_sb_total;
        a.sv_sb_ns += b.sv_sb_ns;
        a.sv_sb_key += b.sv_sb_key;
        a.sv_sb_algo += b.sv_sb_algo;
        a.sv_is_total += b.sv_is_total;
        a.sv_is_ns += b.sv_is_ns;
        a.sv_is_key += b.sv_is_key;
        a.sv_is_algo += b.sv_is_algo;
      });
}

Table3 compute_table3(const Corpus& corpus) {
  metrics::ScopedTimer timer("stage.measure.table3");
  struct Acc {
    std::map<ErrorCode, std::int64_t> snapshot_counts;
    std::map<ErrorCode, std::int64_t> domain_counts;
    std::int64_t total_snapshots = 0;
    std::int64_t total_domains = 0;
    std::int64_t any_error_snapshots = 0;
    std::int64_t any_error_domains = 0;
  };
  const Acc acc = reduce_domains<Acc>(
      corpus,
      [](Acc& a, const DomainTimeline& d) {
        if (d.level != DomainLevel::kSld) return;
        a.total_domains += 1;
        std::set<ErrorCode> domain_codes;
        bool domain_any = false;
        for (const auto& s : d.snapshots) {
          a.total_snapshots += 1;
          if (!s.errors.empty()) a.any_error_snapshots += 1;
          for (const auto code : s.errors) {
            a.snapshot_counts[code] += 1;
            domain_codes.insert(code);
            domain_any = true;
          }
        }
        for (const auto code : domain_codes) a.domain_counts[code] += 1;
        if (domain_any) a.any_error_domains += 1;
      },
      [](Acc& a, Acc&& b) {
        for (const auto& [code, n] : b.snapshot_counts) {
          a.snapshot_counts[code] += n;
        }
        for (const auto& [code, n] : b.domain_counts) {
          a.domain_counts[code] += n;
        }
        a.total_snapshots += b.total_snapshots;
        a.total_domains += b.total_domains;
        a.any_error_snapshots += b.any_error_snapshots;
        a.any_error_domains += b.any_error_domains;
      });
  Table3 out;
  out.total_snapshots = acc.total_snapshots;
  out.total_domains = acc.total_domains;
  out.any_error_snapshots = acc.any_error_snapshots;
  out.any_error_domains = acc.any_error_domains;
  for (const auto code : analyzer::table3_codes()) {
    Table3Row row;
    row.code = code;
    if (const auto it = acc.snapshot_counts.find(code);
        it != acc.snapshot_counts.end()) {
      row.snapshots = it->second;
    }
    if (const auto it = acc.domain_counts.find(code);
        it != acc.domain_counts.end()) {
      row.domains = it->second;
    }
    out.rows.push_back(row);
  }
  return out;
}

std::vector<Fig3Category> compute_fig3(const Table3& table3) {
  // Folds the (tiny) Table 3 row set — no per-domain pass, stays serial.
  std::map<analyzer::ErrorCategory, std::int64_t> by_category;
  for (const auto& row : table3.rows) {
    by_category[analyzer::category_of(row.code)] += row.snapshots;
  }
  std::vector<Fig3Category> out;
  for (const auto& [category, count] : by_category) {
    Fig3Category c;
    c.category = category;
    c.snapshot_share = table3.total_snapshots == 0
                           ? 0.0
                           : static_cast<double>(count) /
                                 static_cast<double>(table3.total_snapshots);
    out.push_back(c);
  }
  return out;
}

Table4 compute_table4(const Corpus& corpus) {
  metrics::ScopedTimer timer("stage.measure.table4");
  using Durations =
      std::map<SnapshotStatus, std::map<SnapshotStatus, std::vector<double>>>;
  Durations durations = reduce_domains<Durations>(
      corpus,
      [](Durations& acc, const DomainTimeline& d) {
        if (d.level != DomainLevel::kSld || !d.is_changing()) return;
        for (std::size_t i = 1; i < d.snapshots.size(); ++i) {
          const auto& prev = d.snapshots[i - 1];
          const auto& cur = d.snapshots[i];
          if (prev.status == cur.status) continue;
          if (!is_dnssec_state(prev.status) || !is_dnssec_state(cur.status)) {
            continue;
          }
          acc[prev.status][cur.status].push_back(
              static_cast<double>(cur.time - prev.time) / kHour);
        }
      },
      [](Durations& a, Durations&& b) {
        for (auto& [from, row] : b) {
          for (auto& [to, values] : row) {
            append(a[from][to], std::move(values));
          }
        }
      });
  Table4 out;
  for (auto& [from, row] : durations) {
    for (auto& [to, values] : row) {
      Table4Cell cell;
      cell.count = static_cast<std::int64_t>(values.size());
      cell.median_hours = median(values);
      out[from][to] = cell;
    }
  }
  return out;
}

RoundTripStats compute_roundtrip(const Corpus& corpus) {
  metrics::ScopedTimer timer("stage.measure.roundtrip");
  struct Acc {
    std::vector<double> down;
    std::vector<double> up;
    std::int64_t domains = 0;
  };
  Acc acc = reduce_domains<Acc>(
      corpus,
      [](Acc& a, const DomainTimeline& d) {
        if (d.level != DomainLevel::kSld) return;
        // Find sv→sb followed by sb→sv/svm.
        std::optional<std::size_t> down_at;
        for (std::size_t i = 1; i < d.snapshots.size(); ++i) {
          const auto& prev = d.snapshots[i - 1];
          const auto& cur = d.snapshots[i];
          if (is_valid_state(prev.status) &&
              cur.status == SnapshotStatus::kSignedBogus && !down_at) {
            down_at = i;
            a.down.push_back(static_cast<double>(cur.time - prev.time) /
                             kHour);
          } else if (down_at && cur.status != SnapshotStatus::kSignedBogus &&
                     is_valid_state(cur.status)) {
            a.up.push_back(
                static_cast<double>(cur.time - d.snapshots[i - 1].time) /
                kHour);
            a.domains += 1;
            break;
          }
        }
      },
      [](Acc& a, Acc&& b) {
        append(a.down, std::move(b.down));
        append(a.up, std::move(b.up));
        a.domains += b.domains;
      });
  RoundTripStats out;
  out.domains = acc.domains;
  out.down_median_hours = median(std::move(acc.down));
  out.up_median_hours = median(std::move(acc.up));
  return out;
}

std::vector<Fig4Row> compute_fig4(const Corpus& corpus) {
  metrics::ScopedTimer timer("stage.measure.fig4");
  // t1: first snapshot where the error is present (critical when the
  // snapshot is sb); t2: first subsequent snapshot that is sv and free of
  // the error.
  using Durations = std::map<ErrorCode, std::vector<double>>;
  Durations durations = reduce_domains<Durations>(
      corpus,
      [](Durations& acc, const DomainTimeline& d) {
        if (d.level != DomainLevel::kSld) return;
        std::map<ErrorCode, UnixTime> first_seen;
        for (const auto& s : d.snapshots) {
          for (const auto code : s.errors) {
            first_seen.try_emplace(code, s.time);
          }
          if (s.status == SnapshotStatus::kSignedValid) {
            for (auto it = first_seen.begin(); it != first_seen.end();) {
              if (!s.errors.contains(it->first)) {
                acc[it->first].push_back(
                    static_cast<double>(s.time - it->second) / kHour);
                it = first_seen.erase(it);
              } else {
                ++it;
              }
            }
          }
        }
      },
      [](Durations& a, Durations&& b) {
        for (auto& [code, values] : b) append(a[code], std::move(values));
      });
  std::vector<Fig4Row> out;
  for (const auto& cal : dataset::fig4_calibration()) {
    Fig4Row row;
    row.code = cal.code;
    row.marker = analyzer::paper_marker(cal.code).value_or(0);
    row.critical = analyzer::is_critical(cal.code);
    auto it = durations.find(cal.code);
    if (it != durations.end()) {
      row.fixes = static_cast<std::int64_t>(it->second.size());
      row.median_hours = median(it->second);
      row.p80_hours = percentile(it->second, 0.8);
    }
    out.push_back(row);
  }
  return out;
}

DeployTime compute_deploy_time(const Corpus& corpus) {
  metrics::ScopedTimer timer("stage.measure.deploy");
  std::vector<double> durations = reduce_domains<std::vector<double>>(
      corpus,
      [](std::vector<double>& acc, const DomainTimeline& d) {
        if (d.level != DomainLevel::kSld) return;
        std::optional<UnixTime> insecure_at;
        for (const auto& s : d.snapshots) {
          if (s.status == SnapshotStatus::kInsecure && !insecure_at) {
            insecure_at = s.time;
          } else if (insecure_at && is_signed_state(s.status)) {
            acc.push_back(static_cast<double>(s.time - *insecure_at) /
                          kHour);
            break;
          }
        }
      },
      [](std::vector<double>& a, std::vector<double>&& b) {
        append(a, std::move(b));
      });
  DeployTime out;
  out.domains = static_cast<std::int64_t>(durations.size());
  out.median_hours = median(std::move(durations));
  return out;
}

Fig5 compute_fig5(const Corpus& corpus) {
  metrics::ScopedTimer timer("stage.measure.fig5");
  std::vector<double> medians_days = reduce_domains<std::vector<double>>(
      corpus,
      [](std::vector<double>& acc, const DomainTimeline& d) {
        if (d.level != DomainLevel::kSld || d.snapshots.size() < 2) return;
        std::vector<double> gaps;
        for (std::size_t i = 1; i < d.snapshots.size(); ++i) {
          gaps.push_back(static_cast<double>(d.snapshots[i].time -
                                             d.snapshots[i - 1].time) /
                         kDay);
        }
        acc.push_back(median(std::move(gaps)));
      },
      [](std::vector<double>& a, std::vector<double>&& b) {
        append(a, std::move(b));
      });
  Fig5 out;
  std::sort(medians_days.begin(), medians_days.end());
  const double n = static_cast<double>(medians_days.size());
  for (double day : {0.25, 0.5, 1.0, 2.0, 4.0, 7.0, 14.0, 30.0, 90.0,
                     365.0}) {
    const auto it = std::upper_bound(medians_days.begin(),
                                     medians_days.end(), day);
    out.cdf_days.push_back(day);
    out.cdf_share.push_back(
        n == 0 ? 0.0
               : static_cast<double>(it - medians_days.begin()) / n);
  }
  const auto one_day = std::upper_bound(medians_days.begin(),
                                        medians_days.end(), 1.0);
  out.under_one_day =
      n == 0 ? 0.0
             : static_cast<double>(one_day - medians_days.begin()) / n;
  return out;
}

std::vector<Table5Row> compute_table5(const Corpus& corpus) {
  metrics::ScopedTimer timer("stage.measure.table5");
  using Rows = std::map<SnapshotStatus, Table5Row>;
  Rows rows = reduce_domains<Rows>(
      corpus,
      [](Rows& acc, const DomainTimeline& d) {
        // Resolution behaviour is only observable where something changed:
        // Table 5's totals are consistent with the CD subset, not all 319K
        // domains (e.g. svm-ever 9,052 while NZIC alone touches 62,870).
        if (d.level != DomainLevel::kSld || !d.is_changing()) return;
        const SnapshotStatus last =  // dfx-lint: allow(unchecked-front-back): is_changing() => non-empty
            d.snapshots.back().status;
        for (const auto status : {SnapshotStatus::kSignedBogus,
                                  SnapshotStatus::kSignedValidMisconfig,
                                  SnapshotStatus::kInsecure}) {
          const bool ever = std::any_of(
              d.snapshots.begin(), d.snapshots.end(),
              [&](const SnapshotRow& s) { return s.status == status; });
          if (!ever) continue;
          auto& row = acc[status];
          row.status = status;
          row.domains_with_state += 1;
          // "Not resolved" — the domain *remained in that status* per its
          // latest snapshot (§3.6: 18% of once-sb domains stayed sb; 36.5%
          // of once-insecure domains never re-enabled signing).
          if (last == status) row.not_resolved += 1;
        }
      },
      [](Rows& a, Rows&& b) {
        for (const auto& [status, row] : b) {
          auto& into = a[status];
          into.status = status;
          into.domains_with_state += row.domains_with_state;
          into.not_resolved += row.not_resolved;
        }
      });
  // Statuses never observed still get a zero row, as before.
  for (const auto status :
       {SnapshotStatus::kSignedBogus, SnapshotStatus::kSignedValidMisconfig,
        SnapshotStatus::kInsecure}) {
    rows[status].status = status;
  }
  std::vector<Table5Row> out;
  for (const auto& [status, row] : rows) out.push_back(row);
  std::sort(out.begin(), out.end(), [](const Table5Row& a, const Table5Row& b) {
    return static_cast<int>(a.status) < static_cast<int>(b.status);
  });
  return out;
}

}  // namespace dfx::measure
