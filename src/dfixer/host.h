// CommandHost: where DFixer's commands take effect.
//
// In "suggest only" mode nothing implements this — the rendered commands go
// to the operator. In "auto-apply" mode the ZReplicator sandbox implements
// it, applying each command to the replicated zones and re-running
// probe/grok, exactly the loop in Figure 6 of the paper.
#pragma once

#include "analyzer/snapshot.h"
#include "zone/bindcmd.h"

namespace dfx::dfixer {

class CommandHost {
 public:
  virtual ~CommandHost() = default;

  /// Apply one command to the environment. Returns false when the command
  /// cannot be applied (e.g. it targets a zone outside the operator's
  /// control); the fixer records this and stops iterating on that path.
  virtual bool apply(const zone::BindCommand& command) = 0;

  /// Re-run probe + grok against the current environment state.
  virtual analyzer::Snapshot analyze() = 0;
};

}  // namespace dfx::dfixer
