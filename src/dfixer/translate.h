// §5.6 extensibility: translate DFixer's BIND command sequences to other
// authoritative-server toolchains.
//
// The paper validates that the error-to-command logic ports to NSD (via the
// ldns utilities), PowerDNS (pdnsutil, with the pre-signed-zone caveat) and
// Knot DNS (keymgr + policy configuration) — "any authoritative software
// that exposes zone signing, key generation and key (de)activation with
// basic parameter customization can host DFixer's repair plan with a thin
// translation layer". This module is that layer.
#pragma once

#include <string>
#include <vector>

#include "dfixer/dresolver.h"
#include "zone/bindcmd.h"

namespace dfx::dfixer {

enum class ServerFlavor : std::uint8_t {
  kBind,      // the native vocabulary (dnssec-keygen / dnssec-signzone / ...)
  kNsd,       // ldns-keygen / ldns-signzone / ldns-key2ds
  kPowerDns,  // pdnsutil (pre-signed zones cannot be fixed in place: the
              // translation emits the BIND-side repair + re-import, the
              // workaround §5.6 describes)
  kKnot,      // keymgr + knotc, NSEC3/lifetime via the policy section
};

std::string server_flavor_name(ServerFlavor flavor);

/// Translate one command. Returns one or more CLI lines (a single BIND
/// command occasionally maps to a short sequence, e.g. pdnsutil re-import).
std::vector<std::string> translate_command(const zone::BindCommand& command,
                                           ServerFlavor flavor);

/// Render a whole remediation plan in the target vocabulary.
std::string translate_plan(const RemediationPlan& plan, ServerFlavor flavor);

}  // namespace dfx::dfixer
