// The iterative fix loop of Figure 6: probe/grok → DResolver → apply →
// re-verify, until no DNSSEC error remains or progress stops.
#pragma once

#include <string>
#include <vector>

#include "dfixer/dresolver.h"
#include "dfixer/host.h"

namespace dfx::dfixer {

struct IterationLog {
  int iteration = 0;  // 1-based
  RemediationPlan plan;
  /// Errors that were present when the plan was generated.
  std::vector<analyzer::ErrorInstance> errors_before;
  bool all_commands_applied = true;
};

struct FixReport {
  std::vector<IterationLog> iterations;
  analyzer::Snapshot final_snapshot;
  /// True when the final snapshot carries no DNSSEC errors at all.
  bool success = false;
  /// Set when DFixer stopped because the remaining errors are outside the
  /// child operator's control (e.g. a bogus parent zone).
  bool blocked_on_ancestor = false;
};

/// Run the auto-apply loop. The paper observes convergence within four
/// iterations for every replicated zone; the default cap leaves headroom.
FixReport auto_fix(CommandHost& host, int max_iterations = 8);

/// Pluggable-resolver variant (used to evaluate the naive-LLM baseline
/// against DResolver under identical conditions).
using ResolverFn = RemediationPlan (*)(const analyzer::Snapshot&);
FixReport auto_fix_with(CommandHost& host, ResolverFn resolver,
                        int max_iterations = 8);

/// Suggest-only mode: analyze once and render the first iteration's plan.
std::string suggest(CommandHost& host);

}  // namespace dfx::dfixer
