// The naive-LLM baseline from Appendix A.2, made deterministic.
//
// The paper probes GPT-4o with DNSViz output and observes characteristic
// failures: generic advice, ignored error interdependencies, parent/child
// confusion, and a bias toward "re-sign the zone" / "replace the DS" even
// when the minimal fix is removal. This module reproduces those failure
// modes as a rule set so the comparison in the evaluation is repeatable:
// the baseline maps every snapshot to the *same* shallow playbook instead
// of DResolver's dependency-aware plan.
#pragma once

#include "dfixer/dresolver.h"

namespace dfx::dfixer {

/// Produce the baseline's plan for a snapshot. Mirrors the observed GPT-4o
/// behaviour:
///  - always recommends re-signing, whatever the root cause;
///  - "replaces" (uploads) DS records rather than removing extraneous ones;
///  - acts on ancestor-zone errors it was told to ignore;
///  - never sequences key retirement (no settime/wait steps).
RemediationPlan baseline_resolve(const analyzer::Snapshot& snapshot);

}  // namespace dfx::dfixer
