#include "dfixer/dresolver.h"

#include <algorithm>

#include "util/strings.h"

namespace dfx::dfixer {
namespace {

using analyzer::ErrorCode;
using analyzer::ErrorInstance;
using analyzer::Snapshot;
using zone::BindCommand;
using zone::Instruction;
using zone::InstructionKind;

// --- Zone-context helpers (parameters come from the zone itself) ----------

crypto::DnssecAlgorithm pick_algorithm(const analyzer::ZoneMeta& meta) {
  // Prefer the algorithm the zone already uses (most common among plausible
  // keys), falling back to the DS algorithm, then to RSASHA256.
  std::map<std::uint8_t, int> counts;
  for (const auto& key : meta.keys) {
    if (!key.length_plausible) continue;
    const auto info = crypto::algorithm_info(key.algorithm);
    if (info && info->supported_by_bind) counts[key.algorithm]++;
  }
  if (!counts.empty()) {
    const auto best = std::max_element(
        counts.begin(), counts.end(),
        [](const auto& a, const auto& b) { return a.second < b.second; });
    return static_cast<crypto::DnssecAlgorithm>(best->first);
  }
  for (const auto& ds : meta.ds_records) {
    const auto info = crypto::algorithm_info(ds.algorithm);
    if (info && info->supported_by_bind) {
      return static_cast<crypto::DnssecAlgorithm>(ds.algorithm);
    }
  }
  return crypto::DnssecAlgorithm::kRsaSha256;
}

std::size_t pick_key_bits(const analyzer::ZoneMeta& meta,
                          crypto::DnssecAlgorithm alg) {
  const auto info = crypto::algorithm_info(alg);
  for (const auto& key : meta.keys) {
    if (key.algorithm != static_cast<std::uint8_t>(alg) ||
        !key.length_plausible) {
      continue;
    }
    // Observed RSA moduli below any real-world deployment size come from
    // the simulation substrate, not from operator intent: recommend the
    // algorithm's standard size instead.
    if (info && info->rsa_family && key.key_bits < 1024) break;
    if (key.key_bits >= 128) return key.key_bits;
  }
  return info ? info->default_key_bits : 2048;
}

crypto::DigestType pick_digest(const analyzer::ZoneMeta& meta) {
  for (const auto& ds : meta.ds_records) {
    const auto type = static_cast<crypto::DigestType>(ds.digest_type);
    if (crypto::digest_length(type) != 0) return type;
  }
  return crypto::DigestType::kSha256;
}

zone::SignZoneParams sign_params(const analyzer::ZoneMeta& meta,
                                 bool force_zero_iterations) {
  zone::SignZoneParams params;
  params.zone = meta.apex;
  params.nsec3 = meta.uses_nsec3;
  params.nsec3_iterations =
      force_zero_iterations ? 0 : meta.nsec3_iterations;
  params.nsec3_salt_hex = force_zero_iterations || meta.nsec3_salt_hex.empty()
                              ? "-"
                              : meta.nsec3_salt_hex;
  params.opt_out = meta.nsec3_opt_out;
  return params;
}

Instruction instr(InstructionKind kind, std::string description,
                  std::vector<BindCommand> commands) {
  Instruction out;
  out.kind = kind;
  out.description = std::move(description);
  out.commands = std::move(commands);
  return out;
}

Instruction sign_instruction(const analyzer::ZoneMeta& meta,
                             bool zero_iterations) {
  const auto params = sign_params(meta, zero_iterations);
  std::string desc = "Re-sign the zone";
  if (zero_iterations && meta.uses_nsec3) {
    desc += " with NSEC3 iterations set to 0 and an empty salt (RFC 9276)";
  } else if (meta.uses_nsec3) {
    desc += " (NSEC3, preserving the current chain parameters)";
  } else {
    desc += " (NSEC)";
  }
  return instr(InstructionKind::kSignZone, std::move(desc),
               {zone::cmd_signzone(params)});
}

// --- Root-cause handlers ---------------------------------------------------

/// Emit "remove DS" instructions for every non-validating DS record.
void remove_bad_ds(const Snapshot& snapshot, RemediationPlan& plan) {
  for (const auto& ds : snapshot.target_meta.ds_records) {
    if (ds.valid) continue;
    plan.instructions.push_back(
        instr(InstructionKind::kRemoveIncorrectDs,
              "Remove the DS record (key_tag=" + std::to_string(ds.key_tag) +
                  ", algorithm=" + std::to_string(ds.algorithm) +
                  ") from the parent zone: it does not validate any DNSKEY",
              {zone::cmd_remove_ds(snapshot.target_meta.apex, ds.key_tag,
                                   ds.digest_hex)}));
  }
}

bool has_valid_sep(const Snapshot& snapshot) {
  return std::any_of(snapshot.target_meta.ds_records.begin(),
                     snapshot.target_meta.ds_records.end(),
                     [](const analyzer::DsMeta& ds) { return ds.valid; });
}

/// A usable (plausible, non-revoked, BIND-supported) KSK in the zone.
const analyzer::KeyMeta* existing_good_ksk(const Snapshot& snapshot) {
  for (const auto& key : snapshot.target_meta.keys) {
    if (!key.is_ksk() || key.is_revoked() || !key.length_plausible) continue;
    const auto info = crypto::algorithm_info(key.algorithm);
    if (info && info->supported_by_bind) return &key;
  }
  return nullptr;
}

void plan_generate_ksk_and_publish(const Snapshot& snapshot,
                                   RemediationPlan& plan) {
  const auto& meta = snapshot.target_meta;
  const auto alg = pick_algorithm(meta);
  const auto bits = pick_key_bits(meta, alg);
  const auto digest = pick_digest(meta);
  plan.instructions.push_back(instr(
      InstructionKind::kGenerateKsk,
      "Generate a new KSK key pair (" + crypto::algorithm_mnemonic(alg) +
          ", " + std::to_string(bits) + " bits)",
      {zone::cmd_keygen(meta.apex, alg, bits, /*ksk=*/true),
       zone::cmd_dsfromkey(meta.apex, /*key_tag=*/0, digest)}));
  plan.instructions.push_back(
      instr(InstructionKind::kUploadDs,
            "Upload the DS record of the new KSK to the parent zone via "
            "your registrar",
            {zone::cmd_upload_ds(meta.apex, /*key_tag=*/0, digest)}));
}

void handle_missing_dnskey(const Snapshot& snapshot, RemediationPlan& plan) {
  plan.root_cause =
      "DS records exist at the parent, but the zone publishes no DNSKEY "
      "that any of them can validate";
  const auto& meta = snapshot.target_meta;
  const bool any_keys = !meta.keys.empty();
  if (const auto* ksk = existing_good_ksk(snapshot); ksk != nullptr) {
    // The zone still has a healthy KSK — the DS at the parent is simply
    // stale. Re-link rather than re-key.
    const auto digest = pick_digest(meta);
    plan.instructions.push_back(instr(
        InstructionKind::kUploadDs,
        "Generate the DS record from the existing KSK (key_tag=" +
            std::to_string(ksk->key_tag) + ") and upload it to the parent",
        {zone::cmd_dsfromkey(meta.apex, ksk->key_tag, digest),
         zone::cmd_upload_ds(meta.apex, ksk->key_tag, digest)}));
    remove_bad_ds(snapshot, plan);
    return;
  }
  plan_generate_ksk_and_publish(snapshot, plan);
  if (!any_keys) {
    const auto alg = pick_algorithm(meta);
    plan.instructions.push_back(
        instr(InstructionKind::kGenerateZsk,
              "Generate a ZSK key pair (" + crypto::algorithm_mnemonic(alg) +
                  ")",
              {zone::cmd_keygen(meta.apex, alg, pick_key_bits(meta, alg),
                                /*ksk=*/false)}));
  }
  plan.instructions.push_back(sign_instruction(meta, false));
  remove_bad_ds(snapshot, plan);
}

void handle_revoked_key(const Snapshot& snapshot, RemediationPlan& plan) {
  const auto& meta = snapshot.target_meta;
  plan.root_cause = "a DNSKEY with the REVOKE flag is referenced by the "
                    "delegation (or is the zone's only KSK)";
  // Locate the revoked key(s).
  std::vector<const analyzer::KeyMeta*> revoked;
  for (const auto& key : meta.keys) {
    if (key.is_revoked()) revoked.push_back(&key);
  }
  const bool have_alternative =
      has_valid_sep(snapshot) && existing_good_ksk(snapshot) != nullptr;
  if (!have_alternative) {
    // Figure 8 flow: introduce a fresh KSK before retiring the revoked one.
    plan_generate_ksk_and_publish(snapshot, plan);
    plan.instructions.push_back(sign_instruction(meta, false));
  }
  remove_bad_ds(snapshot, plan);
  plan.instructions.push_back(
      instr(InstructionKind::kWaitTtl,
            "Wait at least one full TTL (" + std::to_string(meta.max_ttl) +
                "s) so the removed DS expires from validator caches",
            {zone::cmd_wait_ttl(meta.max_ttl)}));
  for (const auto* key : revoked) {
    plan.instructions.push_back(instr(
        InstructionKind::kRemoveRevokedKey,
        "Delete the revoked DNSKEY (key_tag=" + std::to_string(key->key_tag) +
            ") from the zone",
        {zone::cmd_settime_delete(meta.apex, key->key_tag, snapshot.time)}));
  }
  plan.instructions.push_back(sign_instruction(meta, false));
}

void handle_bad_key_length(const Snapshot& snapshot, RemediationPlan& plan) {
  const auto& meta = snapshot.target_meta;
  plan.root_cause = "a DNSKEY has key material with an impossible length";
  for (const auto& key : meta.keys) {
    if (key.length_plausible) continue;
    const bool is_ksk = key.is_ksk();
    const auto alg = pick_algorithm(meta);
    plan.instructions.push_back(instr(
        is_ksk ? InstructionKind::kGenerateKsk : InstructionKind::kGenerateZsk,
        std::string("Generate a replacement ") + (is_ksk ? "KSK" : "ZSK") +
            " (" + crypto::algorithm_mnemonic(alg) + ")",
        {zone::cmd_keygen(meta.apex, alg, pick_key_bits(meta, alg), is_ksk)}));
    if (is_ksk) {
      plan.instructions.push_back(
          instr(InstructionKind::kUploadDs,
                "Upload the DS record of the replacement KSK",
                {zone::cmd_upload_ds(meta.apex, 0, pick_digest(meta))}));
    }
    plan.instructions.push_back(instr(
        InstructionKind::kRemoveRevokedKey,
        "Remove the invalid DNSKEY (key_tag=" + std::to_string(key.key_tag) +
            ")",
        {zone::cmd_settime_delete(meta.apex, key.key_tag, snapshot.time)}));
  }
  plan.instructions.push_back(sign_instruction(meta, false));
  remove_bad_ds(snapshot, plan);
}

void handle_ds_mismatch(const Snapshot& snapshot, RemediationPlan& plan) {
  plan.root_cause =
      "one or more DS records at the parent do not validate any DNSKEY";
  if (has_valid_sep(snapshot)) {
    // A valid chain already exists; the extraneous DS is the whole problem.
    remove_bad_ds(snapshot, plan);
    return;
  }
  const auto* ksk = existing_good_ksk(snapshot);
  if (ksk != nullptr) {
    // The key is fine; the parent just points at the wrong thing.
    const auto digest = pick_digest(snapshot.target_meta);
    plan.instructions.push_back(instr(
        InstructionKind::kUploadDs,
        "Generate the DS record from the existing KSK (key_tag=" +
            std::to_string(ksk->key_tag) + ") and upload it to the parent",
        {zone::cmd_dsfromkey(snapshot.target_meta.apex, ksk->key_tag, digest),
         zone::cmd_upload_ds(snapshot.target_meta.apex, ksk->key_tag,
                             digest)}));
    remove_bad_ds(snapshot, plan);
    return;
  }
  plan_generate_ksk_and_publish(snapshot, plan);
  plan.instructions.push_back(sign_instruction(snapshot.target_meta, false));
  remove_bad_ds(snapshot, plan);
}

void handle_inconsistent_dnskey(const Snapshot& snapshot,
                                RemediationPlan& plan) {
  plan.root_cause =
      "authoritative servers serve different DNSKEY RRsets (stale copy)";
  plan.instructions.push_back(
      instr(InstructionKind::kSyncAuthServers,
            "Synchronize the signed zone to every authoritative server and "
            "reload",
            {zone::cmd_sync_servers(snapshot.target_meta.apex)}));
}

/// Prune colliding-tag key groups down to a single key each (the cheapest
/// KeyTrap repair: one key per (tag, algorithm) pair bounds the candidate
/// pairings a validator can be forced through). Driven by the zonelint
/// kRemoveCollidingKeys fix spec as well as the grok-derived codes.
void handle_colliding_keys(const Snapshot& snapshot, RemediationPlan& plan) {
  const auto& meta = snapshot.target_meta;
  plan.root_cause =
      "multiple DNSKEYs share a (key tag, algorithm) pair, multiplying the "
      "signature validations a resolver must attempt (KeyTrap)";
  std::map<std::pair<std::uint16_t, std::uint8_t>, std::size_t> groups;
  for (const auto& key : meta.keys) {
    ++groups[{key.key_tag, key.algorithm}];
  }
  for (const auto& [tag_alg, count] : groups) {
    if (count < 2) continue;
    // Each command removes one key file with that tag; keep one survivor.
    std::vector<BindCommand> removals(
        count - 1, zone::cmd_remove_key_file(meta.apex, tag_alg.first));
    plan.instructions.push_back(instr(
        InstructionKind::kRemoveRevokedKey,
        "Remove " + std::to_string(count - 1) + " of the " +
            std::to_string(count) + " DNSKEYs sharing key_tag=" +
            std::to_string(tag_alg.first) + " (algorithm " +
            std::to_string(tag_alg.second) + ")",
        std::move(removals)));
  }
  plan.instructions.push_back(sign_instruction(meta, false));
}

/// Clamp an oversized NSEC3 iteration count (the hash-variant KeyTrap
/// repair): re-sign with zero iterations per RFC 9276.
void handle_excessive_iterations(const Snapshot& snapshot,
                                 RemediationPlan& plan) {
  plan.root_cause =
      "the NSEC3 iteration count exceeds validator caps, turning every "
      "negative lookup into a CPU-exhaustion vector (KeyTrap)";
  plan.instructions.push_back(sign_instruction(snapshot.target_meta, true));
}

void handle_ttl(const Snapshot& snapshot, RemediationPlan& plan) {
  plan.root_cause = "record TTLs are inconsistent with the RRSIG validity "
                    "window";
  const std::uint32_t new_ttl =
      snapshot.target_meta.max_ttl > 3600 ? 3600 : 300;
  plan.instructions.push_back(
      instr(InstructionKind::kReduceTtl,
            "Reduce the TTL of the offending records to " +
                std::to_string(new_ttl) + "s",
            {zone::cmd_reduce_ttl(snapshot.target_meta.apex, "ALL",
                                  new_ttl)}));
  plan.instructions.push_back(sign_instruction(snapshot.target_meta, false));
}

}  // namespace

std::vector<BindCommand> RemediationPlan::commands() const {
  std::vector<BindCommand> out;
  for (const auto& instruction : instructions) {
    out.insert(out.end(), instruction.commands.begin(),
               instruction.commands.end());
  }
  return out;
}

std::string RemediationPlan::render() const {
  std::string out = "Root cause: " + root_cause + "\n";
  int n = 0;
  for (const auto& instruction : instructions) {
    out += "  (" + std::to_string(++n) + ") " + instruction.description + "\n";
    for (const auto& cmd : instruction.commands) {
      out += "      $ " + cmd.render() + "\n";
    }
  }
  return out;
}

int dependency_rank(ErrorCode code) {
  using EC = ErrorCode;
  switch (code) {
    // Key-material faults cascade into everything else: fix first.
    case EC::kMissingDnskeyForDs:
      return 0;
    case EC::kRevokedKey:
      return 1;
    case EC::kBadKeyLength:
      return 2;
    // Delegation (DS) faults.
    case EC::kMissingKskForAlgorithm:
    case EC::kInvalidDigest:
    case EC::kNoSecureEntryPoint:
      return 3;
    // Server synchronisation.
    case EC::kInconsistentDnskeyBetweenServers:
      return 4;
    // Signature-level faults (one re-sign clears the group).
    case EC::kMissingSignature:
    case EC::kExpiredSignature:
    case EC::kInvalidSignature:
    case EC::kIncorrectSigner:
    case EC::kNotYetValidSignature:
    case EC::kIncorrectSignatureLabels:
    case EC::kBadSignatureLength:
    case EC::kIncompleteAlgorithmSetup:
    case EC::kMissingSignatureForAlgorithm:
      return 5;
    // Negative-proof structural faults.
    case EC::kMissingNonexistenceProof:
    case EC::kIncorrectTypeBitmap:
    case EC::kBadNonexistenceProof:
    case EC::kIncorrectLastNsec:
    case EC::kInconsistentAncestorForNxdomain:
    case EC::kIncorrectClosestEncloserProof:
    case EC::kInvalidNsec3Hash:
    case EC::kInvalidNsec3OwnerName:
    case EC::kIncorrectOptOutFlag:
    case EC::kUnsupportedNsec3Algorithm:
      return 6;
    // Advisory-grade NSEC3 parameter violation.
    case EC::kNonzeroIterationCount:
      return 7;
    // TTL hygiene.
    case EC::kTtlBeyondExpiration:
    case EC::kOriginalTtlExceedsRrsetTtl:
      return 8;
    case EC::kLameDelegation:
    case EC::kMissingNsInParent:
      return 9;
    // KeyTrap resource-limit findings: prune colliding keys after every
    // structural fault is gone (re-signs along the way already shrink the
    // blowup), clamp iterations last (usually fixed by the NZIC re-sign).
    case EC::kCollidingKeyTags:
    case EC::kExcessiveSignatureValidations:
    case EC::kValidatorWorkBudgetExceeded:
      return 10;
    case EC::kExcessiveNsec3Iterations:
      return 11;
  }
  return 12;
}

RemediationPlan resolve(const Snapshot& snapshot) {
  RemediationPlan plan;
  // Only the query zone's errors are in the child operator's remit.
  std::vector<ErrorInstance> actionable = snapshot.target_zone_errors();
  for (const auto& c : snapshot.companions) {
    if (c.zone == snapshot.query_zone) actionable.push_back(c);
  }
  if (actionable.empty()) return plan;

  const auto top = std::min_element(
      actionable.begin(), actionable.end(),
      [](const ErrorInstance& a, const ErrorInstance& b) {
        return dependency_rank(a.code) < dependency_rank(b.code);
      });

  switch (dependency_rank(top->code)) {
    case 0:
      handle_missing_dnskey(snapshot, plan);
      break;
    case 1:
      handle_revoked_key(snapshot, plan);
      break;
    case 2:
      handle_bad_key_length(snapshot, plan);
      break;
    case 3:
      handle_ds_mismatch(snapshot, plan);
      break;
    case 4:
      handle_inconsistent_dnskey(snapshot, plan);
      break;
    case 5:
      plan.root_cause = "signatures are missing, expired or invalid; "
                        "re-signing regenerates them";
      plan.instructions.push_back(sign_instruction(snapshot.target_meta,
                                                   false));
      break;
    case 6:
      plan.root_cause =
          "the NSEC/NSEC3 chain is incomplete or inconsistent; re-signing "
          "rebuilds the whole chain";
      plan.instructions.push_back(sign_instruction(snapshot.target_meta,
                                                   false));
      break;
    case 7:
      plan.root_cause = "NSEC3 iteration count is nonzero (RFC 9276)";
      plan.instructions.push_back(sign_instruction(snapshot.target_meta,
                                                   true));
      break;
    case 8:
      handle_ttl(snapshot, plan);
      break;
    case 10:
      handle_colliding_keys(snapshot, plan);
      break;
    case 11:
      handle_excessive_iterations(snapshot, plan);
      break;
    default:
      break;  // lame/incomplete delegations are out of DNSSEC scope
  }
  return plan;
}

RemediationPlan resolve_with_cds(const analyzer::Snapshot& snapshot) {
  RemediationPlan plan = resolve(snapshot);
  if (!has_valid_sep(snapshot)) return plan;  // cannot bootstrap (RFC 8078)
  const bool has_ds_step = std::any_of(
      plan.instructions.begin(), plan.instructions.end(),
      [](const Instruction& instruction) {
        return instruction.kind == InstructionKind::kUploadDs ||
               instruction.kind == InstructionKind::kRemoveIncorrectDs;
      });
  if (!has_ds_step) return plan;
  RemediationPlan automated;
  automated.root_cause = plan.root_cause;
  bool cds_emitted = false;
  for (auto& instruction : plan.instructions) {
    if (instruction.kind != InstructionKind::kUploadDs &&
        instruction.kind != InstructionKind::kRemoveIncorrectDs) {
      automated.instructions.push_back(std::move(instruction));
      continue;
    }
    if (cds_emitted) continue;  // one CDS publication covers the DS set
    cds_emitted = true;
    automated.instructions.push_back(
        instr(InstructionKind::kUploadDs,
              "Publish CDS/CDNSKEY records; the parent's parental agent "
              "synchronizes the DS set automatically (RFC 7344)",
              {zone::cmd_publish_cds(snapshot.target_meta.apex)}));
  }
  return automated;
}

}  // namespace dfx::dfixer
