// DResolver: root-cause analysis over a snapshot's error codes.
//
// Grok reports every symptom; many are cascades of one underlying fault
// (the paper's example: a single extraneous DS can raise a dozen codes).
// DResolver topologically orders the observed codes along a curated
// dependency graph, picks the top root cause, consults companion errors and
// zone state, and emits a remediation plan: ordered high-level instructions
// each expanded into exact BIND commands with parameters taken from the
// zone's own meta-parameters.
//
// One call resolves one root-cause group; independent faults are handled
// across iterations (Figure 6), which is what populates the per-iteration
// instruction distribution of Table 7.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "analyzer/snapshot.h"
#include "zone/bindcmd.h"

namespace dfx::dfixer {

/// A full remediation plan for one iteration.
struct RemediationPlan {
  /// Which root cause this plan addresses (for reporting).
  std::string root_cause;
  std::vector<zone::Instruction> instructions;

  bool empty() const { return instructions.empty(); }

  /// All commands in execution order.
  std::vector<zone::BindCommand> commands() const;

  /// Human-readable rendering (the "suggest only" output).
  std::string render() const;
};

/// The topological rank of an error code in the dependency graph: lower
/// rank = closer to the root cause, fixed first. Exposed for tests and for
/// the ablation bench.
int dependency_rank(analyzer::ErrorCode code);

/// Produce the plan for the highest-ranked root cause present in the
/// snapshot's *target zone* errors. Returns an empty plan when no DNSSEC
/// error is present (or none is actionable by the child-zone operator).
RemediationPlan resolve(const analyzer::Snapshot& snapshot);

/// CDS-automation variant (RFC 7344/8078 — the mechanism §5.5.2 of the
/// paper notes it could not rely on in the wild): when the existing chain
/// of trust still validates, every manual registrar DS step in the plan is
/// replaced by one "publish CDS/CDNSKEY" instruction; the parental agent
/// then synchronizes the DS set. Falls back to the manual plan when the
/// delegation is already broken (CDS cannot bootstrap trust).
RemediationPlan resolve_with_cds(const analyzer::Snapshot& snapshot);

}  // namespace dfx::dfixer
