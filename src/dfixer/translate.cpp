#include "dfixer/translate.h"

namespace dfx::dfixer {
namespace {

using zone::BindCommand;
using zone::CommandKind;

std::string arg_or(const BindCommand& cmd, const std::string& key,
                   const std::string& dflt) {
  const auto it = cmd.args.find(key);
  return it == cmd.args.end() ? dflt : it->second;
}

std::vector<std::string> translate_nsd(const BindCommand& cmd) {
  // NSD has no signer of its own; the ldns examples utilities fill the gap
  // (ldns-keygen, ldns-signzone, ldns-key2ds), exactly as §5.6 validates.
  switch (cmd.kind) {
    case CommandKind::kDnssecKeygen:
      return {"cd <key_dir> && ldns-keygen" +
              std::string(arg_or(cmd, "ksk", "0") == "1" ? " -k" : "") +
              " -a " + arg_or(cmd, "algorithm", "RSASHA256") + " -b " +
              arg_or(cmd, "bits", "2048") + " " + arg_or(cmd, "zone", ".")};
    case CommandKind::kDnssecSignzone: {
      std::string line = "cd <zone_dir> && ldns-signzone";
      if (arg_or(cmd, "nsec3", "0") == "1") {
        line += " -n -t " + arg_or(cmd, "iterations", "0");
        const std::string salt = arg_or(cmd, "salt", "-");
        line += " -s " + (salt == "-" ? std::string("\"\"") : salt);
        if (arg_or(cmd, "optout", "0") == "1") line += " -p";
      }
      line += " " + arg_or(cmd, "zone_file", "db.unsigned") +
              " <key_dir>/K" + arg_or(cmd, "zone", ".") + "*";
      return {line, "nsd-control reload " + arg_or(cmd, "zone", ".")};
    }
    case CommandKind::kDnssecSettime:
      // ldns has no settime; retiring a key means excluding its files from
      // the next ldns-signzone invocation.
      return {"mv <key_dir>/K" + arg_or(cmd, "zone", ".") + "+NNN+" +
              arg_or(cmd, "key_tag", "00000") +
              ".* <key_dir>/retired/  # exclude from future signings"};
    case CommandKind::kDnssecDsFromKey:
      return {"ldns-key2ds -n -" + arg_or(cmd, "digest", "2") +
              " <key_dir>/K" + arg_or(cmd, "zone", ".") + "+NNN+" +
              arg_or(cmd, "key_tag", "00000") + ".key"};
    case CommandKind::kSyncServers:
      return {"rsync <zone_dir>/" + arg_or(cmd, "zone_file", "db.signed") +
              " <secondary>:<zone_dir>/ && ssh <secondary> nsd-control "
              "reload " +
              arg_or(cmd, "zone", ".")};
    case CommandKind::kRemoveKeyFile:
      return {"rm <key_dir>/K" + arg_or(cmd, "zone", ".") + "+NNN+" +
              arg_or(cmd, "key_tag", "00000") + ".{key,private}"};
    case CommandKind::kPublishCds:
      // ldns-signzone has no CDS option; the records are added to the zone
      // file before signing.
      return {"# add CDS/CDNSKEY records for the active KSKs to the zone "
              "file, then re-sign (ldns-signzone) — the parent's parental "
              "agent does the rest (RFC 7344)"};
    default:
      return {cmd.render()};  // manual steps are server-agnostic
  }
}

std::vector<std::string> translate_powerdns(const BindCommand& cmd) {
  const std::string zone = arg_or(cmd, "zone", ".");
  switch (cmd.kind) {
    case CommandKind::kDnssecKeygen:
      return {"pdnsutil add-zone-key " + zone + " " +
              (arg_or(cmd, "ksk", "0") == "1" ? "ksk" : "zsk") + " " +
              arg_or(cmd, "bits", "2048") + " active " +
              arg_or(cmd, "algorithm", "rsasha256")};
    case CommandKind::kDnssecSignzone: {
      // §5.6: pdnsutil cannot fix a pre-signed zone in place; the validated
      // workaround repairs the zone with the BIND tools and re-imports it.
      std::vector<std::string> lines;
      lines.push_back("# pre-signed zones cannot be re-signed in place "
                      "(PowerDNS issue #8892); repair externally and "
                      "re-import:");
      lines.push_back(cmd.render());
      lines.push_back("pdnsutil load-zone " + zone +
                      " <zone_dir>/db." + zone + "signed");
      if (arg_or(cmd, "nsec3", "0") == "1") {
        const std::string salt = arg_or(cmd, "salt", "-");
        lines.push_back("pdnsutil set-nsec3 " + zone + " '1 " +
                        (arg_or(cmd, "optout", "0") == "1" ? "1" : "0") +
                        " " + arg_or(cmd, "iterations", "0") + " " +
                        (salt == "-" ? "-" : salt) + "'");
      } else {
        lines.push_back("pdnsutil unset-nsec3 " + zone);
      }
      lines.push_back("pdnsutil rectify-zone " + zone);
      return lines;
    }
    case CommandKind::kDnssecSettime:
      return {"pdnsutil deactivate-zone-key " + zone + " <key_id_of_tag_" +
              arg_or(cmd, "key_tag", "00000") + ">"};
    case CommandKind::kDnssecDsFromKey:
      return {"pdnsutil export-zone-ds " + zone};
    case CommandKind::kSyncServers:
      return {"pdnsutil increase-serial " + zone +
              "  # secondaries transfer via AXFR"};
    case CommandKind::kRemoveKeyFile:
      return {"pdnsutil remove-zone-key " + zone + " <key_id_of_tag_" +
              arg_or(cmd, "key_tag", "00000") + ">"};
    case CommandKind::kPublishCds:
      return {"pdnsutil set-publish-cds " + zone,
              "pdnsutil set-publish-cdnskey " + zone};
    default:
      return {cmd.render()};
  }
}

std::vector<std::string> translate_knot(const BindCommand& cmd) {
  const std::string zone = arg_or(cmd, "zone", ".");
  switch (cmd.kind) {
    case CommandKind::kDnssecKeygen:
      return {"keymgr " + zone + " generate algorithm=" +
              arg_or(cmd, "algorithm", "RSASHA256") +
              " size=" + arg_or(cmd, "bits", "2048") +
              " ksk=" + (arg_or(cmd, "ksk", "0") == "1" ? "yes" : "no")};
    case CommandKind::kDnssecSignzone: {
      std::vector<std::string> lines;
      if (arg_or(cmd, "nsec3", "0") == "1") {
        lines.push_back("# policy section: nsec3: on, nsec3-iterations: " +
                        arg_or(cmd, "iterations", "0") + ", nsec3-salt-" +
                        "length per salt " + arg_or(cmd, "salt", "-"));
      } else {
        lines.push_back("# policy section: nsec3: off");
      }
      lines.push_back("knotc zone-sign " + zone);
      return lines;
    }
    case CommandKind::kDnssecSettime:
      return {"keymgr " + zone + " set <key_id_of_tag_" +
              arg_or(cmd, "key_tag", "00000") + "> retire=+0 remove=+0"};
    case CommandKind::kDnssecDsFromKey:
      return {"keymgr " + zone + " ds"};
    case CommandKind::kSyncServers:
      return {"knotc zone-notify " + zone};
    case CommandKind::kRemoveKeyFile:
      return {"keymgr " + zone + " delete <key_id_of_tag_" +
              arg_or(cmd, "key_tag", "00000") + ">"};
    case CommandKind::kPublishCds:
      return {"# policy section: cds-cdnskey-publish: always",
              "knotc zone-sign " + zone};
    default:
      return {cmd.render()};
  }
}

}  // namespace

std::string server_flavor_name(ServerFlavor flavor) {
  switch (flavor) {
    case ServerFlavor::kBind:
      return "BIND";
    case ServerFlavor::kNsd:
      return "NSD";
    case ServerFlavor::kPowerDns:
      return "PowerDNS";
    case ServerFlavor::kKnot:
      return "Knot DNS";
  }
  return "?";
}

std::vector<std::string> translate_command(const zone::BindCommand& command,
                                           ServerFlavor flavor) {
  switch (flavor) {
    case ServerFlavor::kBind:
      return {command.render()};
    case ServerFlavor::kNsd:
      return translate_nsd(command);
    case ServerFlavor::kPowerDns:
      return translate_powerdns(command);
    case ServerFlavor::kKnot:
      return translate_knot(command);
  }
  return {command.render()};
}

std::string translate_plan(const RemediationPlan& plan, ServerFlavor flavor) {
  std::string out = "Root cause: " + plan.root_cause + "\n(" +
                    server_flavor_name(flavor) + " vocabulary)\n";
  int n = 0;
  for (const auto& instruction : plan.instructions) {
    out += "  (" + std::to_string(++n) + ") " + instruction.description + "\n";
    for (const auto& cmd : instruction.commands) {
      for (const auto& line : translate_command(cmd, flavor)) {
        out += "      $ " + line + "\n";
      }
    }
  }
  return out;
}

}  // namespace dfx::dfixer
