#include "dfixer/baseline.h"

namespace dfx::dfixer {

RemediationPlan baseline_resolve(const analyzer::Snapshot& snapshot) {
  using zone::Instruction;
  using zone::InstructionKind;
  RemediationPlan plan;
  if (snapshot.errors.empty()) return plan;
  plan.root_cause = "generic diagnosis (baseline)";

  // 1. Unconditional re-sign suggestion — even for pure delegation faults,
  //    where it is irrelevant (Appendix A.2, finding 2).
  zone::SignZoneParams params;
  params.zone = snapshot.target_meta.apex;
  params.nsec3 = snapshot.target_meta.uses_nsec3;
  // Finding 3: essential parameters are dropped — the baseline resets the
  // NSEC3 parameters instead of carrying the zone's own values.
  params.nsec3_iterations = 0;
  params.nsec3_salt_hex = "-";
  Instruction sign;
  sign.kind = InstructionKind::kSignZone;
  sign.description = "Re-sign your zone (verify your keys are correct)";
  sign.commands = {zone::cmd_signzone(params)};
  plan.instructions.push_back(std::move(sign));

  // 2. DS handling: "replace" by uploading a fresh DS for whatever KSK is
  //    visible — never removing the extraneous records, which is the actual
  //    minimal fix (Appendix A.2, finding 1).
  for (const auto& key : snapshot.target_meta.keys) {
    if (!key.is_ksk()) continue;
    Instruction upload;
    upload.kind = InstructionKind::kUploadDs;
    upload.description =
        "Submit a DS for key_tag=" + std::to_string(key.key_tag) +
        " to your registrar and delete the old one";
    upload.commands = {zone::cmd_upload_ds(snapshot.target_meta.apex,
                                           key.key_tag,
                                           crypto::DigestType::kSha256)};
    plan.instructions.push_back(std::move(upload));
    break;
  }
  return plan;
}

}  // namespace dfx::dfixer
