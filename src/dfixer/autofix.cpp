#include "dfixer/autofix.h"

#include "util/metrics.h"

namespace dfx::dfixer {

FixReport auto_fix(CommandHost& host, int max_iterations) {
  return auto_fix_with(host, &resolve, max_iterations);
}

FixReport auto_fix_with(CommandHost& host, ResolverFn resolver,
                        int max_iterations) {
  static auto& iter_hist =
      metrics::Registry::global().histogram("stage.dfixer.iterate");
  static auto& iter_count =
      metrics::Registry::global().counter("dfixer.iterations");
  static auto& run_count = metrics::Registry::global().counter("dfixer.runs");
  run_count.add(1);
  FixReport report;
  analyzer::Snapshot snapshot = host.analyze();
  for (int iter = 1; iter <= max_iterations; ++iter) {
    if (snapshot.errors.empty()) break;
    metrics::ScopedTimer iter_timer(iter_hist);
    iter_count.add(1);
    RemediationPlan plan = resolver(snapshot);
    if (plan.empty()) {
      // Errors remain but none are in the target zone's remit.
      report.blocked_on_ancestor = true;
      break;
    }
    IterationLog log;
    log.iteration = iter;
    log.errors_before = snapshot.errors;
    log.plan = plan;
    for (const auto& command : plan.commands()) {
      if (!host.apply(command)) {
        log.all_commands_applied = false;
        break;
      }
    }
    const bool applied = log.all_commands_applied;
    report.iterations.push_back(std::move(log));
    if (!applied) break;
    snapshot = host.analyze();
  }
  report.final_snapshot = snapshot;
  report.success = snapshot.errors.empty();
  return report;
}

std::string suggest(CommandHost& host) {
  const analyzer::Snapshot snapshot = host.analyze();
  if (snapshot.errors.empty()) {
    return "No DNSSEC errors detected; nothing to fix.\n";
  }
  const RemediationPlan plan = resolve(snapshot);
  if (plan.empty()) {
    return "Errors detected, but none are fixable from the target zone "
           "(check the ancestor zones).\n";
  }
  return plan.render();
}

}  // namespace dfx::dfixer
