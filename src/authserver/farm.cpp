#include "authserver/farm.h"

#include <algorithm>
#include <stdexcept>

namespace dfx::authserver {

AuthServer& ServerFarm::server_locked(const std::string& name) {
  auto it = servers_.find(name);
  if (it == servers_.end()) {
    it = servers_.emplace(name, std::make_unique<AuthServer>(name)).first;
  }
  return *it->second;
}

AuthServer& ServerFarm::server(const std::string& name) {
  const MutexLock lock(*mu_);
  return server_locked(name);
}

const AuthServer* ServerFarm::find_server(const std::string& name) const {
  const MutexLock lock(*mu_);
  const auto it = servers_.find(name);
  return it == servers_.end() ? nullptr : it->second.get();
}

void ServerFarm::host_zone(const std::string& server_name, zone::Zone zone) {
  const dns::Name apex = zone.apex();
  const MutexLock lock(*mu_);
  server_locked(server_name).load_zone(std::move(zone));
  auto& hosts = hosting_[apex];
  if (std::find(hosts.begin(), hosts.end(), server_name) == hosts.end()) {
    hosts.push_back(server_name);
  }
}

void ServerFarm::sync_zone(const zone::Zone& zone) {
  const MutexLock lock(*mu_);
  const auto it = hosting_.find(zone.apex());
  if (it == hosting_.end()) {
    throw std::invalid_argument("sync_zone: zone not hosted anywhere: " +
                                zone.apex().to_string());
  }
  for (const auto& name : it->second) {
    server_locked(name).load_zone(zone);
  }
}

void ServerFarm::push_to_one(const std::string& server_name,
                             const zone::Zone& zone) {
  const MutexLock lock(*mu_);
  const auto it = hosting_.find(zone.apex());
  if (it == hosting_.end() ||
      std::find(it->second.begin(), it->second.end(), server_name) ==
          it->second.end()) {
    throw std::invalid_argument("push_to_one: " + server_name +
                                " does not host " + zone.apex().to_string());
  }
  server_locked(server_name).load_zone(zone);
}

std::vector<AuthServer*> ServerFarm::servers_for(const dns::Name& apex) {
  std::vector<AuthServer*> out;
  const MutexLock lock(*mu_);
  const auto it = hosting_.find(apex);
  if (it == hosting_.end()) return out;
  for (const auto& name : it->second) out.push_back(&server_locked(name));
  return out;
}

std::vector<const AuthServer*> ServerFarm::servers_for(
    const dns::Name& apex) const {
  std::vector<const AuthServer*> out;
  const MutexLock lock(*mu_);
  const auto it = hosting_.find(apex);
  if (it == hosting_.end()) return out;
  for (const auto& name : it->second) {
    const auto srv = servers_.find(name);
    if (srv != servers_.end()) out.push_back(srv->second.get());
  }
  return out;
}

std::vector<std::string> ServerFarm::server_names() const {
  std::vector<std::string> out;
  const MutexLock lock(*mu_);
  out.reserve(servers_.size());
  for (const auto& [name, _] : servers_) out.push_back(name);
  return out;
}

}  // namespace dfx::authserver
