#include "authserver/farm.h"

#include <algorithm>
#include <stdexcept>

namespace dfx::authserver {

AuthServer& ServerFarm::server(const std::string& name) {
  auto it = servers_.find(name);
  if (it == servers_.end()) {
    it = servers_.emplace(name, std::make_unique<AuthServer>(name)).first;
  }
  return *it->second;
}

const AuthServer* ServerFarm::find_server(const std::string& name) const {
  const auto it = servers_.find(name);
  return it == servers_.end() ? nullptr : it->second.get();
}

void ServerFarm::host_zone(const std::string& server_name, zone::Zone zone) {
  const dns::Name apex = zone.apex();
  server(server_name).load_zone(std::move(zone));
  auto& hosts = hosting_[apex];
  if (std::find(hosts.begin(), hosts.end(), server_name) == hosts.end()) {
    hosts.push_back(server_name);
  }
}

void ServerFarm::sync_zone(const zone::Zone& zone) {
  const auto it = hosting_.find(zone.apex());
  if (it == hosting_.end()) {
    throw std::invalid_argument("sync_zone: zone not hosted anywhere: " +
                                zone.apex().to_string());
  }
  for (const auto& name : it->second) {
    server(name).load_zone(zone);
  }
}

void ServerFarm::push_to_one(const std::string& server_name,
                             const zone::Zone& zone) {
  const auto it = hosting_.find(zone.apex());
  if (it == hosting_.end() ||
      std::find(it->second.begin(), it->second.end(), server_name) ==
          it->second.end()) {
    throw std::invalid_argument("push_to_one: " + server_name +
                                " does not host " + zone.apex().to_string());
  }
  server(server_name).load_zone(zone);
}

std::vector<AuthServer*> ServerFarm::servers_for(const dns::Name& apex) {
  std::vector<AuthServer*> out;
  const auto it = hosting_.find(apex);
  if (it == hosting_.end()) return out;
  for (const auto& name : it->second) out.push_back(&server(name));
  return out;
}

std::vector<const AuthServer*> ServerFarm::servers_for(
    const dns::Name& apex) const {
  std::vector<const AuthServer*> out;
  const auto it = hosting_.find(apex);
  if (it == hosting_.end()) return out;
  for (const auto& name : it->second) {
    const auto* srv = find_server(name);
    if (srv != nullptr) out.push_back(srv);
  }
  return out;
}

std::vector<std::string> ServerFarm::server_names() const {
  std::vector<std::string> out;
  out.reserve(servers_.size());
  for (const auto& [name, _] : servers_) out.push_back(name);
  return out;
}

}  // namespace dfx::authserver
