#include "authserver/authserver.h"

#include <algorithm>

#include "zone/nsec3.h"
#include "util/check.hpp"
#include "util/codec.h"

namespace dfx::authserver {

bool nsec_covers(const dns::Name& owner, const dns::Name& next,
                 const dns::Name& name) {
  if (owner < next) return owner < name && name < next;
  // Wrap-around record (last NSEC points back to the apex).
  return name > owner || name < next;
}

bool nsec3_hash_covers(const Bytes& owner_hash, const Bytes& next_hash,
                       const Bytes& target) {
  if (owner_hash < next_hash) {
    return owner_hash < target && target < next_hash;
  }
  return target > owner_hash || target < next_hash;
}

std::vector<dns::ResourceRecord> QueryResult::negative_proofs() const {
  std::vector<dns::ResourceRecord> out;
  for (const auto& rr : authorities) {
    if (rr.type == dns::RRType::kNSEC || rr.type == dns::RRType::kNSEC3 ||
        rr.type == dns::RRType::kRRSIG) {
      out.push_back(rr);
    }
  }
  return out;
}

dns::Message QueryResult::to_message(const dns::Question& question,
                                     std::uint16_t id) const {
  DFX_CHECK(reachable);
  dns::Message msg;
  msg.header.id = id;
  msg.header.qr = true;
  msg.header.aa = authoritative;
  msg.header.rcode = rcode;
  msg.questions.push_back(question);
  msg.answers = answers;
  msg.authorities = authorities;
  msg.additionals = additionals;
  return msg;
}

void AuthServer::load_zone(zone::Zone zone) {
  zones_.insert_or_assign(zone.apex(), std::move(zone));
}

void AuthServer::unload_zone(const dns::Name& apex) { zones_.erase(apex); }

bool AuthServer::serves(const dns::Name& apex) const {
  return zones_.find(apex) != zones_.end();
}

const zone::Zone* AuthServer::zone_data(const dns::Name& apex) const {
  const auto it = zones_.find(apex);
  return it == zones_.end() ? nullptr : &it->second;
}

zone::Zone* AuthServer::mutable_zone_data(const dns::Name& apex) {
  auto it = zones_.find(apex);
  return it == zones_.end() ? nullptr : &it->second;
}

const zone::Zone* AuthServer::best_zone_for(const dns::Name& qname,
                                            dns::RRType qtype) const {
  // Deepest apex that is an ancestor of (or equal to) qname. For DS the
  // *parent* side of the cut is authoritative, so a query for the apex DS
  // must fall through to the enclosing zone.
  const zone::Zone* best = nullptr;
  for (const auto& [apex, zone] : zones_) {
    if (!qname.is_subdomain_of(apex)) continue;
    if (qtype == dns::RRType::kDS && qname == apex) {
      // Serve from the parent zone when we also host it.
      bool parent_hosted = false;
      for (const auto& [other_apex, _] : zones_) {
        if (other_apex != apex && qname.is_subdomain_of(other_apex)) {
          parent_hosted = true;
          break;
        }
      }
      if (parent_hosted) continue;
    }
    if (best == nullptr ||
        apex.label_count() > best->apex().label_count()) {
      best = &zone;
    }
  }
  return best;
}

// Hot by name collision with ZoneStore::query; this is the reference
// zone walk the answer cache fronts — it only runs on cache misses.
// dfx-lint: allow(hot-path-cost): cache-miss reference path, results cached.
QueryResult AuthServer::query(const dns::Name& qname,
                              dns::RRType qtype) const {
  QueryResult result;
  if (lame_) {
    result.reachable = false;
    return result;
  }
  const zone::Zone* zone = best_zone_for(qname, qtype);
  if (zone == nullptr) {
    result.rcode = dns::RCode::kRefused;
    return result;
  }
  return answer_from(*zone, qname, qtype);
}

QueryResult AuthServer::query_in_zone(const dns::Name& zone_apex,
                                      const dns::Name& qname,
                                      dns::RRType qtype) const {
  QueryResult result;
  if (lame_) {
    result.reachable = false;
    return result;
  }
  const zone::Zone* zone = zone_data(zone_apex);
  if (zone == nullptr || !qname.is_subdomain_of(zone_apex)) {
    result.rcode = dns::RCode::kRefused;
    return result;
  }
  return answer_from(*zone, qname, qtype);
}

QueryResult AuthServer::answer_from(const zone::Zone& zone_ref,
                                    const dns::Name& qname,
                                    dns::RRType qtype) const {
  const zone::Zone* zone = &zone_ref;
  QueryResult result;
  result.authoritative = true;

  // Below a zone cut (or at one, for non-DS questions): referral.
  const auto cut = zone->covering_delegation(qname);
  if (cut && !(qname == *cut && qtype == dns::RRType::kDS)) {
    answer_referral(*zone, *cut, result);
    return result;
  }

  if (zone->find(qname, qtype) != nullptr) {
    answer_positive(*zone, qname, qtype, result);
    return result;
  }
  // CNAME at the owner answers any type.
  if (qtype != dns::RRType::kCNAME &&
      zone->find(qname, dns::RRType::kCNAME) != nullptr) {
    answer_positive(*zone, qname, dns::RRType::kCNAME, result);
    return result;
  }
  if (zone->name_exists(qname) ||
      zone->name_or_descendant_exists(qname)) {
    // Name exists (possibly as an empty non-terminal): NODATA.
    answer_nodata(*zone, qname, result);
    return result;
  }
  // Wildcard synthesis (RFC 1034 §4.3.3): a "*" child of the closest
  // encloser answers for every non-existent name beneath it.
  dns::Name closest = qname.parent();
  while (closest.label_count() > zone->apex().label_count() &&
         !zone->name_or_descendant_exists(closest)) {
    closest = closest.parent();
  }
  const dns::Name wildcard = closest.child("*");
  if (zone->find(wildcard, qtype) != nullptr) {
    answer_wildcard(*zone, qname, wildcard, qtype, result);
    return result;
  }
  answer_nxdomain(*zone, qname, result);
  return result;
}

void AuthServer::answer_wildcard(const zone::Zone& zone,
                                 const dns::Name& qname,
                                 const dns::Name& wildcard, dns::RRType qtype,
                                 QueryResult& result) const {
  result.rcode = dns::RCode::kNoError;
  const auto* rrset = zone.find(wildcard, qtype);
  if (rrset == nullptr) return;
  // The answer is served at the query name; the RRSIG travels verbatim
  // from the wildcard owner (its labels field signals the expansion).
  for (const auto& rdata : rrset->rdatas()) {
    result.answers.push_back(dns::ResourceRecord{
        qname, qtype, dns::RRClass::kIN, rrset->ttl(), rdata});
  }
  if (const auto* sigs = zone.find(wildcard, dns::RRType::kRRSIG)) {
    for (const auto& rdata : sigs->rdatas()) {
      const auto* sig = std::get_if<dns::RrsigRdata>(&rdata);
      if (sig != nullptr && sig->type_covered == qtype) {
        result.answers.push_back(dns::ResourceRecord{
            qname, dns::RRType::kRRSIG, dns::RRClass::kIN, sigs->ttl(),
            rdata});
      }
    }
  }
  // RFC 4035 §3.1.3.3: the response must prove the query name itself does
  // not exist (the next-closer cover).
  if (zone.find(zone.apex(), dns::RRType::kNSEC3PARAM) != nullptr) {
    add_nsec3_proofs(zone, qname, /*nxdomain=*/true, result);
  } else {
    add_nsec_proofs(zone, qname, /*nxdomain=*/true, result);
  }
}

void AuthServer::add_rrset_with_sigs(
    const zone::Zone& zone, const dns::Name& owner, dns::RRType type,
    std::vector<dns::ResourceRecord>& section) const {
  const auto* rrset = zone.find(owner, type);
  if (rrset == nullptr) return;
  for (const auto& rr : rrset->to_records()) section.push_back(rr);
  const auto* sigs = zone.find(owner, dns::RRType::kRRSIG);
  if (sigs == nullptr) return;
  for (const auto& rdata : sigs->rdatas()) {
    const auto* sig = std::get_if<dns::RrsigRdata>(&rdata);
    if (sig != nullptr && sig->type_covered == type) {
      section.push_back(dns::ResourceRecord{owner, dns::RRType::kRRSIG,
                                            dns::RRClass::kIN, sigs->ttl(),
                                            rdata});
    }
  }
}

void AuthServer::answer_positive(const zone::Zone& zone,
                                 const dns::Name& qname, dns::RRType qtype,
                                 QueryResult& result) const {
  result.rcode = dns::RCode::kNoError;
  add_rrset_with_sigs(zone, qname, qtype, result.answers);
}

void AuthServer::answer_nodata(const zone::Zone& zone, const dns::Name& qname,
                               QueryResult& result) const {
  result.rcode = dns::RCode::kNoError;
  add_rrset_with_sigs(zone, zone.apex(), dns::RRType::kSOA,
                      result.authorities);
  if (zone.find(zone.apex(), dns::RRType::kNSEC3PARAM) != nullptr) {
    add_nsec3_proofs(zone, qname, /*nxdomain=*/false, result);
  } else {
    add_nsec_proofs(zone, qname, /*nxdomain=*/false, result);
  }
}

void AuthServer::answer_nxdomain(const zone::Zone& zone,
                                 const dns::Name& qname,
                                 QueryResult& result) const {
  result.rcode = dns::RCode::kNXDomain;
  add_rrset_with_sigs(zone, zone.apex(), dns::RRType::kSOA,
                      result.authorities);
  if (zone.find(zone.apex(), dns::RRType::kNSEC3PARAM) != nullptr) {
    add_nsec3_proofs(zone, qname, /*nxdomain=*/true, result);
  } else {
    add_nsec_proofs(zone, qname, /*nxdomain=*/true, result);
  }
}

void AuthServer::answer_referral(const zone::Zone& zone, const dns::Name& cut,
                                 QueryResult& result) const {
  result.rcode = dns::RCode::kNoError;
  result.authoritative = false;
  const auto* ns = zone.find(cut, dns::RRType::kNS);
  if (ns != nullptr) {
    for (const auto& rr : ns->to_records()) result.authorities.push_back(rr);
  }
  // DS (plus signature) travels with the referral; its absence is proven
  // with NSEC(3) like any other missing type.
  if (zone.find(cut, dns::RRType::kDS) != nullptr) {
    add_rrset_with_sigs(zone, cut, dns::RRType::kDS, result.authorities);
  } else if (zone.find(zone.apex(), dns::RRType::kNSEC3PARAM) != nullptr) {
    add_nsec3_proofs(zone, cut, /*nxdomain=*/false, result);
  } else {
    add_nsec_proofs(zone, cut, /*nxdomain=*/false, result);
  }
  // Glue.
  if (ns != nullptr) {
    for (const auto& rdata : ns->rdatas()) {
      const auto* nsr = std::get_if<dns::NsRdata>(&rdata);
      if (nsr == nullptr) continue;
      for (dns::RRType glue_type : {dns::RRType::kA, dns::RRType::kAAAA}) {
        const auto* glue = zone.find(nsr->nsdname, glue_type);
        if (glue != nullptr) {
          for (const auto& rr : glue->to_records()) {
            result.additionals.push_back(rr);
          }
        }
      }
    }
  }
}

void AuthServer::add_nsec_proofs(const zone::Zone& zone,
                                 const dns::Name& qname, bool nxdomain,
                                 QueryResult& result) const {
  // Collect all NSEC records once.
  struct NsecEntry {
    dns::Name owner;
    const dns::NsecRdata* rdata;
  };
  std::vector<NsecEntry> chain;
  for (const auto* rrset : zone.all_rrsets()) {
    if (rrset->type() != dns::RRType::kNSEC || rrset->empty()) continue;
    const auto* nsec = std::get_if<dns::NsecRdata>(&rrset->rdatas().front());
    if (nsec != nullptr) chain.push_back({rrset->owner(), nsec});
  }
  // Real nameservers locate the proof by *owner-name predecessor* in
  // canonical order (wrapping to the last record), not by checking that the
  // record's interval actually covers the name — so a zone whose NSEC
  // intervals were corrupted still serves the broken record, and the
  // validator is the one that notices.
  std::sort(chain.begin(), chain.end(),
            [](const NsecEntry& a, const NsecEntry& b) {
              return a.owner < b.owner;
            });
  const auto emit = [&](const dns::Name& owner) {
    add_rrset_with_sigs(zone, owner, dns::RRType::kNSEC, result.authorities);
  };
  const auto predecessor = [&](const dns::Name& name) -> const NsecEntry* {
    const NsecEntry* best = nullptr;
    for (const auto& entry : chain) {
      if (entry.owner <= name) best = &entry;
    }
    if (best == nullptr && !chain.empty()) best = &chain.back();  // wrap
    return best;
  };
  if (chain.empty()) return;
  if (!nxdomain) {
    // NODATA: the NSEC matching qname proves the type's absence.
    for (const auto& entry : chain) {
      if (entry.owner == qname) {
        emit(entry.owner);
        return;
      }
    }
    // Fall through: the predecessor NSEC stands in (ENT case).
  }
  if (const auto* cover = predecessor(qname)) emit(cover->owner);
  if (nxdomain) {
    // ...plus the proof for the source-of-synthesis wildcard.
    const dns::Name wildcard = zone.apex().child("*");
    if (const auto* cover = predecessor(wildcard)) emit(cover->owner);
  }
}

void AuthServer::add_nsec3_proofs(const zone::Zone& zone,
                                  const dns::Name& qname, bool nxdomain,
                                  QueryResult& result) const {
  const auto* param_set = zone.find(zone.apex(), dns::RRType::kNSEC3PARAM);
  if (param_set == nullptr || param_set->empty()) return;
  const auto* param =
      std::get_if<dns::Nsec3ParamRdata>(&param_set->rdatas().front());
  if (param == nullptr) return;

  struct Nsec3Entry {
    dns::Name owner;
    Bytes owner_hash;  // decoded from the first label
    const dns::Nsec3Rdata* rdata;
  };
  std::vector<Nsec3Entry> chain;
  std::vector<dns::Name> undecodable;  // broken-signer artifacts
  for (const auto* rrset : zone.all_rrsets()) {
    if (rrset->type() != dns::RRType::kNSEC3 || rrset->empty()) continue;
    const auto* nsec3 = std::get_if<dns::Nsec3Rdata>(&rrset->rdatas().front());
    if (nsec3 == nullptr) continue;
    auto decoded = base32hex_decode(rrset->owner().leftmost_label());
    if (!decoded) {
      // The server cannot place this record in the hash order, but it still
      // serves it alongside every negative answer — validation is the
      // resolver's job, not the server's.
      undecodable.push_back(rrset->owner());
      continue;
    }
    chain.push_back({rrset->owner(), *std::move(decoded), nsec3});
  }
  // Undecodable owner labels (only produced by a broken signer) sort after
  // the rest; the server still serves them — validation is not its job.
  std::sort(chain.begin(), chain.end(),
            [](const Nsec3Entry& a, const Nsec3Entry& b) {
              return a.owner_hash < b.owner_hash;
            });
  const auto emit = [&](const dns::Name& owner) {
    add_rrset_with_sigs(zone, owner, dns::RRType::kNSEC3, result.authorities);
  };
  const auto hash_of = [&](const dns::Name& name) {
    return zone::nsec3_hash(name, param->salt, param->iterations);
  };
  const auto emit_match = [&](const dns::Name& name) {
    const Bytes h = hash_of(name);
    for (const auto& e : chain) {
      if (e.owner_hash == h) {
        emit(e.owner);
        return true;
      }
    }
    return false;
  };
  // Predecessor-by-hash selection, wrapping to the last record: the server
  // serves whatever record its chain says is adjacent, even if the record's
  // interval is corrupt — the validator decides whether it proves anything.
  const auto emit_cover = [&](const dns::Name& name) {
    if (chain.empty()) return false;
    const Bytes h = hash_of(name);
    const Nsec3Entry* best = nullptr;
    for (const auto& e : chain) {
      if (e.owner_hash <= h) best = &e;
    }
    if (best == nullptr) best = &chain.back();  // wrap-around
    emit(best->owner);
    return true;
  };

  for (const auto& owner : undecodable) emit(owner);

  if (!nxdomain) {
    // NODATA: NSEC3 matching qname.
    emit_match(qname);
    return;
  }
  // NXDOMAIN: closest-encloser proof (RFC 5155 §7.2.1):
  //   1. matching NSEC3 for the closest encloser,
  //   2. covering NSEC3 for the next-closer name,
  //   3. covering NSEC3 for the wildcard at the closest encloser.
  dns::Name closest = qname;
  while (closest.label_count() > zone.apex().label_count()) {
    closest = closest.parent();
    if (zone.name_exists(closest) ||
        zone.name_or_descendant_exists(closest) ||
        closest == zone.apex()) {
      break;
    }
  }
  emit_match(closest);
  // Next-closer: one label below the closest encloser toward qname.
  const std::size_t next_labels = closest.label_count() + 1;
  dns::Name next_closer = qname;
  while (next_closer.label_count() > next_labels) {
    next_closer = next_closer.parent();
  }
  emit_cover(next_closer);
  emit_cover(closest.child("*"));
}

}  // namespace dfx::authserver
