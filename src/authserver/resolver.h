// A minimal iterative stub resolver over a ServerFarm.
//
// Walks delegations from a configured root zone down to the query name,
// following NS records and glue, the way a real recursive resolver would.
// Used by examples and integration tests; the DNSViz-style prober in the
// analyzer performs its own (exhaustive, per-server) walk.
#pragma once

#include <optional>
#include <vector>

#include "authserver/farm.h"
#include "dnscore/name.h"
#include "dnscore/rr.h"
#include "dnscore/rrset.h"

namespace dfx::authserver {

struct ResolveResult {
  dns::RCode rcode = dns::RCode::kServFail;
  std::vector<dns::ResourceRecord> answers;
  /// Zones traversed apex-by-apex, root first.
  std::vector<dns::Name> chain;
};

class StubResolver {
 public:
  StubResolver(const ServerFarm& farm, dns::Name root_apex)
      : farm_(farm), root_apex_(std::move(root_apex)) {}

  /// Iteratively resolve qname/qtype starting at the root zone.
  ResolveResult resolve(const dns::Name& qname, dns::RRType qtype,
                        int max_steps = 32) const;

 private:
  const ServerFarm& farm_;
  dns::Name root_apex_;
};

}  // namespace dfx::authserver
