// ServerFarm: the set of authoritative servers in a sandbox, plus the
// zone → servers hosting map the prober consults.
//
// Thread-safety: the farm's maps are guarded by an annotated Mutex, so
// concurrent probes may look servers up while another thread registers or
// syncs zones. AuthServer objects are heap-allocated and never removed, so
// references handed out stay valid for the farm's lifetime; zone pushes
// (host_zone/sync_zone/push_to_one) serialize through the farm lock.
// Mutating one AuthServer from two threads at once is still the caller's
// bug — shard domains, don't share servers.
#pragma once

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "authserver/authserver.h"
#include "dnscore/name.h"
#include "util/thread_annotations.h"
#include "zone/zone.h"

namespace dfx::authserver {

class ServerFarm {
 public:
  /// Create (or fetch) a server by name.
  AuthServer& server(const std::string& name) DFX_EXCLUDES(*mu_);
  const AuthServer* find_server(const std::string& name) const
      DFX_EXCLUDES(*mu_);

  /// Register that `server_name` hosts `apex` (and load the data onto it).
  void host_zone(const std::string& server_name, zone::Zone zone)
      DFX_EXCLUDES(*mu_);

  /// Push a fresh zone copy to *all* servers hosting it (zone transfer).
  void sync_zone(const zone::Zone& zone) DFX_EXCLUDES(*mu_);

  /// Push to a single server only — the other copies go stale, which is how
  /// inter-server inconsistencies are injected.
  void push_to_one(const std::string& server_name, const zone::Zone& zone)
      DFX_EXCLUDES(*mu_);

  /// Servers hosting a given zone apex.
  std::vector<AuthServer*> servers_for(const dns::Name& apex)
      DFX_EXCLUDES(*mu_);
  std::vector<const AuthServer*> servers_for(const dns::Name& apex) const
      DFX_EXCLUDES(*mu_);

  std::vector<std::string> server_names() const DFX_EXCLUDES(*mu_);

 private:
  /// Lookup-or-create for callers already holding mu_.
  AuthServer& server_locked(const std::string& name) DFX_REQUIRES(*mu_);

  // Heap-held so the farm (and the Sandbox embedding it by value) stays
  // movable; a moved-from farm is destroy-only. Never null otherwise.
  mutable std::unique_ptr<Mutex> mu_ = std::make_unique<Mutex>();
  std::map<std::string, std::unique_ptr<AuthServer>> servers_
      DFX_GUARDED_BY(*mu_);
  std::map<dns::Name, std::vector<std::string>, dns::Name::Less> hosting_
      DFX_GUARDED_BY(*mu_);
};

}  // namespace dfx::authserver
