// ServerFarm: the set of authoritative servers in a sandbox, plus the
// zone → servers hosting map the prober consults.
#pragma once

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "authserver/authserver.h"
#include "dnscore/name.h"
#include "zone/zone.h"

namespace dfx::authserver {

class ServerFarm {
 public:
  /// Create (or fetch) a server by name.
  AuthServer& server(const std::string& name);
  const AuthServer* find_server(const std::string& name) const;

  /// Register that `server_name` hosts `apex` (and load the data onto it).
  void host_zone(const std::string& server_name, zone::Zone zone);

  /// Push a fresh zone copy to *all* servers hosting it (zone transfer).
  void sync_zone(const zone::Zone& zone);

  /// Push to a single server only — the other copies go stale, which is how
  /// inter-server inconsistencies are injected.
  void push_to_one(const std::string& server_name, const zone::Zone& zone);

  /// Servers hosting a given zone apex.
  std::vector<AuthServer*> servers_for(const dns::Name& apex);
  std::vector<const AuthServer*> servers_for(const dns::Name& apex) const;

  std::vector<std::string> server_names() const;

 private:
  std::map<std::string, std::unique_ptr<AuthServer>> servers_;
  std::map<dns::Name, std::vector<std::string>, dns::Name::Less> hosting_;
};

}  // namespace dfx::authserver
