// In-memory authoritative nameserver.
//
// Serves one or more zones with full positive/negative/referral answer
// logic, including NSEC and NSEC3 proof selection. Each server holds its
// own *copy* of zone data, so multi-server inconsistencies (a key error
// class in the paper) arise naturally when only one copy is updated.
#pragma once

#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "dnscore/message.h"
#include "dnscore/name.h"
#include "dnscore/rr.h"
#include "dnscore/rrset.h"
#include "zone/zone.h"

namespace dfx::authserver {

/// Does `name` fall in the NSEC interval (owner, next) in canonical order,
/// with wrap-around at the end of the chain? Shared with the serving
/// layer's aggressive negative cache (src/server), which must select the
/// same records this server's answer logic would.
bool nsec_covers(const dns::Name& owner, const dns::Name& next,
                 const dns::Name& name);

/// Same for NSEC3 hash intervals (owner_hash, next_hash).
bool nsec3_hash_covers(const Bytes& owner_hash, const Bytes& next_hash,
                       const Bytes& target);

/// The server's reply to one question.
struct QueryResult {
  bool reachable = true;  // false models a lame/unresponsive server
  dns::RCode rcode = dns::RCode::kNoError;
  bool authoritative = false;
  std::vector<dns::ResourceRecord> answers;
  std::vector<dns::ResourceRecord> authorities;
  std::vector<dns::ResourceRecord> additionals;

  /// All NSEC/NSEC3 records (with RRSIGs) in the authority section.
  std::vector<dns::ResourceRecord> negative_proofs() const;

  /// Render as a wire-ready response to `question`: QR set, AA from
  /// `authoritative`, RCODE from `rcode`, sections copied. The caller owns
  /// everything transport-level — message ID, RD/CD echo, EDNS attachment
  /// and truncation (src/server/frontend does all four). Must not be
  /// called on an unreachable result: a lame server sends nothing.
  dns::Message to_message(const dns::Question& question,
                          std::uint16_t id = 0) const;
};

class AuthServer {
 public:
  explicit AuthServer(std::string name) : name_(std::move(name)) {}

  const std::string& name() const { return name_; }

  /// Unresponsive mode: every query times out (lame delegation modelling).
  void set_lame(bool lame) { lame_ = lame; }
  bool lame() const { return lame_; }

  /// Install (or replace) a zone copy on this server.
  void load_zone(zone::Zone zone);

  /// Drop a zone.
  void unload_zone(const dns::Name& apex);

  bool serves(const dns::Name& apex) const;
  const zone::Zone* zone_data(const dns::Name& apex) const;
  zone::Zone* mutable_zone_data(const dns::Name& apex);

  /// Answer a question with standard authoritative-server semantics.
  QueryResult query(const dns::Name& qname, dns::RRType qtype) const;

  /// Answer from one specific hosted zone (the parent-side view a prober
  /// gets from servers that are authoritative only for the parent).
  DFX_COLD("the full zone walk only runs on answer-cache misses; its results are cached")
  QueryResult query_in_zone(const dns::Name& zone_apex, const dns::Name& qname,
                            dns::RRType qtype) const;

 private:
  const zone::Zone* best_zone_for(const dns::Name& qname,
                                  dns::RRType qtype) const;
  QueryResult answer_from(const zone::Zone& zone, const dns::Name& qname,
                          dns::RRType qtype) const;

  void answer_positive(const zone::Zone& zone, const dns::Name& qname,
                       dns::RRType qtype, QueryResult& result) const;
  void answer_nodata(const zone::Zone& zone, const dns::Name& qname,
                     QueryResult& result) const;
  void answer_nxdomain(const zone::Zone& zone, const dns::Name& qname,
                       QueryResult& result) const;
  void answer_wildcard(const zone::Zone& zone, const dns::Name& qname,
                       const dns::Name& wildcard, dns::RRType qtype,
                       QueryResult& result) const;
  void answer_referral(const zone::Zone& zone, const dns::Name& cut,
                       QueryResult& result) const;

  void add_rrset_with_sigs(const zone::Zone& zone, const dns::Name& owner,
                           dns::RRType type,
                           std::vector<dns::ResourceRecord>& section) const;
  void add_nsec_proofs(const zone::Zone& zone, const dns::Name& qname,
                       bool nxdomain, QueryResult& result) const;
  void add_nsec3_proofs(const zone::Zone& zone, const dns::Name& qname,
                        bool nxdomain, QueryResult& result) const;

  std::string name_;
  bool lame_ = false;
  std::map<dns::Name, zone::Zone, dns::Name::Less> zones_;
};

}  // namespace dfx::authserver
