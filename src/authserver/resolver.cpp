#include "authserver/resolver.h"

namespace dfx::authserver {

ResolveResult StubResolver::resolve(const dns::Name& qname, dns::RRType qtype,
                                    int max_steps) const {
  ResolveResult result;
  dns::Name current_zone = root_apex_;
  for (int step = 0; step < max_steps; ++step) {
    result.chain.push_back(current_zone);
    const auto servers = farm_.servers_for(current_zone);
    const AuthServer* responsive = nullptr;
    QueryResult reply;
    for (const auto* srv : servers) {
      reply = srv->query(qname, qtype);
      if (reply.reachable && reply.rcode != dns::RCode::kRefused) {
        responsive = srv;
        break;
      }
    }
    if (responsive == nullptr) {
      result.rcode = dns::RCode::kServFail;  // lame delegation
      return result;
    }
    if (!reply.answers.empty() || reply.rcode == dns::RCode::kNXDomain ||
        reply.authoritative) {
      result.rcode = reply.rcode;
      result.answers = reply.answers;
      // Chase in-zone CNAMEs.
      if (!reply.answers.empty() && qtype != dns::RRType::kCNAME) {
        const auto& last = reply.answers.back();
        if (last.type == dns::RRType::kCNAME) {
          const auto* cname = std::get_if<dns::CnameRdata>(&last.rdata);
          if (cname != nullptr) {
            auto chased = resolve(cname->target, qtype, max_steps - step - 1);
            result.rcode = chased.rcode;
            for (auto& rr : chased.answers) {
              result.answers.push_back(std::move(rr));
            }
          }
        }
      }
      return result;
    }
    // Referral: find the delegated child zone that encloses qname.
    std::optional<dns::Name> next_zone;
    for (const auto& rr : reply.authorities) {
      if (rr.type == dns::RRType::kNS && qname.is_subdomain_of(rr.owner) &&
          rr.owner.label_count() > current_zone.label_count()) {
        next_zone = rr.owner;
        break;
      }
    }
    if (!next_zone) {
      result.rcode = dns::RCode::kServFail;
      return result;
    }
    current_zone = *next_zone;
  }
  result.rcode = dns::RCode::kServFail;
  return result;
}

}  // namespace dfx::authserver
