// Corpus generator: synthesizes a DNSViz-like longitudinal dataset whose
// joint structure reproduces every marginal the paper reports (see
// calibration.h). Fully deterministic given the seed.
//
// Thread-safety: generate_corpus shards per-domain work across the global
// ThreadPool, seeding each shard with Rng::for_shard so the output is
// bit-identical at any thread count. The call itself is safe from multiple
// threads concurrently (each call builds independent state), though runs
// then share the pool's lanes.
#pragma once

#include "dataset/calibration.h"
#include "dataset/corpus.h"
#include "util/rng.h"

namespace dfx::dataset {

struct GeneratorOptions {
  /// Linear scale on domain/snapshot counts (1.0 = the paper's 1.1M
  /// snapshots; bench default 0.1 runs in seconds).
  double scale = 0.1;
  std::uint64_t seed = 20240925;
  UnixTime start = kDatasetStart;
  UnixTime end = kDatasetEnd;
};

Corpus generate_corpus(const GeneratorOptions& options);

}  // namespace dfx::dataset
