// Calibration constants: every marginal the paper reports about the DNSViz
// historical dataset, used (a) by the corpus generator as generation
// targets and (b) by the benches to print the paper-vs-measured columns.
//
// Substitution note (DESIGN.md): the real dataset is DNS-OARC-private; the
// generator reproduces its *joint structure* from these published numbers.
//
// Thread-safety: constants only — immutable, safe from any thread.
#pragma once

#include <array>
#include <cstdint>
#include <map>
#include <set>
#include <vector>

#include "analyzer/errorcode.h"
#include "analyzer/snapshot.h"
#include "util/simclock.h"

namespace dfx::dataset {

using analyzer::ErrorCode;
using analyzer::SnapshotStatus;

/// Table 1 — dataset overview.
struct Table1Calibration {
  std::int64_t root_snapshots = 6234;
  std::int64_t tld_snapshots = 356136;
  std::int64_t sld_snapshots = 747455;
  std::int64_t tld_domains = 4196;
  std::int64_t sld_domains = 319277;
  std::int64_t tld_multi_snapshot = 2349;
  std::int64_t sld_multi_snapshot = 84962;
  double tld_cd_share = 0.273;  // CD among multi-snapshot TLDs
  double sld_cd_share = 0.255;
};

/// Table 3 — error prevalence: share of SLD+ snapshots / domains.
struct ErrorPrevalenceRow {
  ErrorCode code;
  double snapshot_share;  // of 747,455
  double domain_share;    // of 319,277
};
const std::vector<ErrorPrevalenceRow>& table3_calibration();

/// Paper totals for Table 3's last row.
constexpr double kTable3AnyErrorSnapshotShare = 0.397;
constexpr double kTable3AnyErrorDomainShare = 0.256;

/// Table 4 — state-transition adjacency (CD consecutive snapshot pairs).
struct TransitionCell {
  SnapshotStatus from;
  SnapshotStatus to;
  std::int64_t count;
  double median_hours;
};
const std::vector<TransitionCell>& table4_calibration();

/// Table 2 — causes of sv→sb / sv→is transitions.
struct NegativeTransitionCalibration {
  std::int64_t sv_sb_total = 4064;
  double sv_sb_ns_update = 0.067;
  double sv_sb_key_rollover = 0.452;
  double sv_sb_algo_rollover = 0.303;
  std::int64_t sv_is_total = 804;
  double sv_is_ns_update = 0.07;
  double sv_is_key_rollover = 0.30;
  double sv_is_algo_rollover = 0.18;
};

/// Table 5 — never-resolved fractions.
struct UnresolvedCalibration {
  std::int64_t sb_domains = 15209;
  double sb_unresolved = 0.18;
  std::int64_t svm_domains = 9052;
  double svm_unresolved = 0.619;
  std::int64_t is_domains = 7149;
  double is_unresolved = 0.365;
};

/// Figure 4 — fix-time medians (hours) for the marked error codes ①–⑨,
/// split by criticality, plus the DNSSEC-deployment time (black box).
struct FixTimeCalibration {
  ErrorCode code;
  double median_hours;   // typical time from t1 to t2
  double p80_hours;      // 80th percentile
};
const std::vector<FixTimeCalibration>& fig4_calibration();
constexpr double kDnssecDeployMedianHours = 30.0;  // "more than a day"

/// Figure 5 — share of domains whose median inter-snapshot gap < 1 day.
constexpr double kFig5MedianGapUnderOneDay = 0.65;

/// Figure 2 — first→last state flows for CD domains.
struct FirstLastCalibration {
  std::int64_t sb_first = 10668;
  double sb_to_valid = 0.67;  // ended sv or svm
  std::int64_t is_first = 3907;
  double is_to_signed = 0.62;
  std::int64_t valid_first = 6925;  // sv or svm first
  double valid_to_is = 0.094;
  double valid_to_sb = 0.084;
};

/// Figure 1 — Tranco-bin coverage model (100 bins of 10k ranks each).
/// present(b):     share of the bin's domains appearing in DNSViz logs;
/// signed(b):      share of *ever-signed* domains appearing in the logs;
/// misconfig(b):   share of present+signed domains ever misconfigured.
double fig1_present_share(int bin);     // ~0.20 at bin 0, decaying
double fig1_signed_share(int bin);      // >0.30 across all bins
double fig1_misconfigured_share(int bin);

/// The whole calibration bundle.
struct Calibration {
  Table1Calibration table1;
  NegativeTransitionCalibration table2;
  UnresolvedCalibration table5;
  FirstLastCalibration fig2;
};

const Calibration& default_calibration();

}  // namespace dfx::dataset
