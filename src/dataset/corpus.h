// The corpus model: per-domain snapshot timelines in the schema the
// measurement analyses consume. This is the in-memory equivalent of the
// paper's 1.1M DNSViz JSON files.
//
// Thread-safety: plain value types with no internal synchronisation. A
// built corpus is read concurrently by the per-domain measurement shards
// (measure/measure.cpp), which is safe because they only take const access;
// mutation requires external exclusion. corpus_digest is a pure function.
#pragma once

#include <cstdint>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "analyzer/errorcode.h"
#include "analyzer/snapshot.h"
#include "json/json.h"
#include "util/simclock.h"

namespace dfx::dataset {

enum class DomainLevel : std::uint8_t { kRoot, kTld, kSld };

/// One diagnostic snapshot (the corpus keeps the analysis-relevant fields;
/// full Snapshot JSON is produced on demand by the analyzer pipeline).
struct SnapshotRow {
  UnixTime time = 0;
  analyzer::SnapshotStatus status = analyzer::SnapshotStatus::kInsecure;
  std::set<analyzer::ErrorCode> errors;
  /// Configuration identities at snapshot time; a change between
  /// consecutive snapshots marks an NS update / key rollover / algorithm
  /// rollover (the paper's Table 2 causal analysis).
  std::uint32_t ns_id = 0;
  std::uint32_t key_id = 0;
  std::uint32_t algorithm_id = 0;
};

struct DomainTimeline {
  std::string name;
  DomainLevel level = DomainLevel::kSld;
  /// Rank in the (scaled) Tranco universe; nullopt = unranked.
  std::optional<std::uint32_t> tranco_rank;
  bool ever_signed = false;
  std::vector<SnapshotRow> snapshots;  // time-ascending

  bool multi_snapshot() const { return snapshots.size() >= 2; }
  /// Changing Domain: at least two snapshots differing in status or errors.
  bool is_changing() const;
};

struct Corpus {
  std::vector<DomainTimeline> domains;
  /// Size of the scaled Tranco universe backing Figure 1's bins.
  std::uint64_t universe_size = 1000000;
  /// Ever-signed domains per universe bin (for Figure 1's blue line).
  std::vector<std::uint64_t> universe_signed_per_bin;
  double scale = 1.0;

  std::int64_t total_snapshots() const;
};

/// JSON round-trip (one document per corpus; domains as an array).
json::Value corpus_to_json(const Corpus& corpus);
std::optional<Corpus> corpus_from_json(const json::Value& value);

/// FNV-1a 64-bit digest over every field of every domain, in domain order.
/// Two corpora digest equal iff they are field-for-field identical — the
/// determinism regression tests and bench_parallel_scaling use this to
/// assert that parallel generation is bit-identical to serial.
[[nodiscard]] std::uint64_t corpus_digest(const Corpus& corpus);

}  // namespace dfx::dataset
