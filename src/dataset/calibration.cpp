#include "dataset/calibration.h"

#include <cmath>

namespace dfx::dataset {

const std::vector<ErrorPrevalenceRow>& table3_calibration() {
  using EC = ErrorCode;
  // Shares from Table 3 of the paper (snapshots of 747,455; domains of
  // 319,277).
  static const std::vector<ErrorPrevalenceRow> rows = {
      {EC::kMissingKskForAlgorithm, 0.0840, 0.0790},
      {EC::kInvalidDigest, 0.0015, 0.0015},
      {EC::kInconsistentDnskeyBetweenServers, 0.0260, 0.0200},
      {EC::kRevokedKey, 0.0004, 0.00014},
      {EC::kBadKeyLength, 0.0001, 0.00007},
      {EC::kIncompleteAlgorithmSetup, 0.0090, 0.0050},
      {EC::kMissingSignature, 0.0520, 0.0570},
      {EC::kExpiredSignature, 0.0160, 0.0140},
      {EC::kInvalidSignature, 0.0140, 0.0100},
      {EC::kIncorrectSigner, 0.0030, 0.0020},
      {EC::kNotYetValidSignature, 0.0009, 0.0004},
      {EC::kIncorrectSignatureLabels, 0.0001, 0.00008},
      {EC::kBadSignatureLength, 0.00006, 0.00004},
      {EC::kOriginalTtlExceedsRrsetTtl, 0.0070, 0.0060},
      {EC::kTtlBeyondExpiration, 0.0030, 0.0030},
      {EC::kMissingNonexistenceProof, 0.0870, 0.0560},
      {EC::kIncorrectTypeBitmap, 0.0240, 0.0130},
      {EC::kBadNonexistenceProof, 0.0130, 0.0100},
      {EC::kIncorrectLastNsec, 0.0005, 0.0007},
      {EC::kNonzeroIterationCount, 0.2880, 0.1970},
      {EC::kInconsistentAncestorForNxdomain, 0.0030, 0.0044},
      {EC::kIncorrectClosestEncloserProof, 0.0017, 0.0013},
      {EC::kInvalidNsec3Hash, 0.0006, 0.0006},
      {EC::kInvalidNsec3OwnerName, 0.0004, 0.0005},
      {EC::kIncorrectOptOutFlag, 0.0002, 0.0002},
      {EC::kUnsupportedNsec3Algorithm, 0.00004, 0.00003},
  };
  return rows;
}

const std::vector<TransitionCell>& table4_calibration() {
  using SS = SnapshotStatus;
  static const std::vector<TransitionCell> cells = {
      {SS::kSignedValid, SS::kSignedValidMisconfig, 1310, 34.2},
      {SS::kSignedValid, SS::kSignedBogus, 4064, 133.7},
      {SS::kSignedValid, SS::kInsecure, 804, 58.6},
      {SS::kSignedValidMisconfig, SS::kSignedValid, 3132, 73.4},
      {SS::kSignedValidMisconfig, SS::kSignedBogus, 5573, 104.2},
      {SS::kSignedValidMisconfig, SS::kInsecure, 1486, 71.8},
      {SS::kSignedBogus, SS::kSignedValid, 8052, 0.7},
      {SS::kSignedBogus, SS::kSignedValidMisconfig, 8065, 0.87},
      {SS::kSignedBogus, SS::kInsecure, 3922, 1.6},
      {SS::kInsecure, SS::kSignedValid, 2150, 2.7},
      {SS::kInsecure, SS::kSignedValidMisconfig, 2097, 3.3},
      {SS::kInsecure, SS::kSignedBogus, 2001, 1.8},
  };
  return cells;
}

const std::vector<FixTimeCalibration>& fig4_calibration() {
  using EC = ErrorCode;
  // Medians/p80s read off Figure 4's boxes plus §3.6's prose: delegation
  // errors 2-3 days (p80), inconsistent DNSKEY ~4 days, expired/invalid
  // signatures ~10 days, TTL mismatch ~60 days, NZIC ~250 days (p80).
  static const std::vector<FixTimeCalibration> rows = {
      {EC::kInvalidDigest, 18.0, 60.0},               // ①
      {EC::kIncompleteAlgorithmSetup, 26.0, 96.0},    // ②
      {EC::kInconsistentDnskeyBetweenServers, 30.0, 96.0},  // ③
      {EC::kExpiredSignature, 48.0, 240.0},           // ④
      {EC::kMissingKskForAlgorithm, 20.0, 72.0},      // ⑤
      {EC::kInvalidSignature, 52.0, 240.0},           // ⑥
      {EC::kMissingNonexistenceProof, 40.0, 160.0},   // ⑦
      {EC::kOriginalTtlExceedsRrsetTtl, 340.0, 1440.0},  // ⑧ (~60 days p80)
      {EC::kNonzeroIterationCount, 1400.0, 6000.0},   // ⑨ (~250 days p80)
  };
  return rows;
}

double fig1_present_share(int bin) {
  // 20% at the top bin, decaying toward a ~2.5% floor in the tail.
  return 0.025 + 0.175 * std::exp(-static_cast<double>(bin) / 12.0);
}

double fig1_signed_share(int bin) {
  // Ever-signed domains appear in the logs across the whole spectrum,
  // staying above 30%.
  return 0.31 + 0.12 * std::exp(-static_cast<double>(bin) / 25.0);
}

double fig1_misconfigured_share(int bin) {
  // Misconfiguration is comparatively less common among popular domains.
  return 0.16 + 0.14 * (1.0 - std::exp(-static_cast<double>(bin) / 30.0));
}

const Calibration& default_calibration() {
  static const Calibration calibration{};
  return calibration;
}

}  // namespace dfx::dataset
