#include "dataset/corpus.h"

#include <bit>

namespace dfx::dataset {

bool DomainTimeline::is_changing() const {
  if (snapshots.size() < 2) return false;
  for (std::size_t i = 1; i < snapshots.size(); ++i) {
    if (snapshots[i].status != snapshots[0].status ||
        snapshots[i].errors != snapshots[0].errors) {
      return true;
    }
  }
  return false;
}

std::int64_t Corpus::total_snapshots() const {
  std::int64_t total = 0;
  for (const auto& d : domains) {
    total += static_cast<std::int64_t>(d.snapshots.size());
  }
  return total;
}

namespace {

struct Fnv1a64 {
  std::uint64_t h = 0xCBF29CE484222325ULL;
  void byte(std::uint8_t b) {
    h ^= b;
    h *= 0x100000001B3ULL;
  }
  void u64(std::uint64_t v) {
    for (int i = 0; i < 8; ++i) byte(static_cast<std::uint8_t>(v >> (8 * i)));
  }
  void str(const std::string& s) {
    u64(s.size());
    for (const char c : s) byte(static_cast<std::uint8_t>(c));
  }
};

}  // namespace

std::uint64_t corpus_digest(const Corpus& corpus) {
  Fnv1a64 fnv;
  fnv.u64(corpus.universe_size);
  fnv.u64(corpus.universe_signed_per_bin.size());
  for (const auto b : corpus.universe_signed_per_bin) fnv.u64(b);
  // `scale` is a double; hash its bit pattern so any difference counts.
  fnv.u64(std::bit_cast<std::uint64_t>(corpus.scale));
  fnv.u64(corpus.domains.size());
  for (const auto& d : corpus.domains) {
    fnv.str(d.name);
    fnv.byte(static_cast<std::uint8_t>(d.level));
    fnv.byte(d.tranco_rank ? 1 : 0);
    if (d.tranco_rank) fnv.u64(*d.tranco_rank);
    fnv.byte(d.ever_signed ? 1 : 0);
    fnv.u64(d.snapshots.size());
    for (const auto& s : d.snapshots) {
      fnv.u64(static_cast<std::uint64_t>(s.time));
      fnv.byte(static_cast<std::uint8_t>(s.status));
      fnv.u64(s.errors.size());
      for (const auto code : s.errors) {
        fnv.u64(static_cast<std::uint64_t>(code));
      }
      fnv.u64(s.ns_id);
      fnv.u64(s.key_id);
      fnv.u64(s.algorithm_id);
    }
  }
  return fnv.h;
}

json::Value corpus_to_json(const Corpus& corpus) {
  json::Object root;
  root["universe_size"] =
      json::Value(static_cast<std::int64_t>(corpus.universe_size));
  root["scale"] = json::Value(corpus.scale);
  json::Array bins;
  for (const auto b : corpus.universe_signed_per_bin) {
    bins.push_back(json::Value(static_cast<std::int64_t>(b)));
  }
  root["universe_signed_per_bin"] = json::Value(std::move(bins));
  json::Array domains;
  for (const auto& d : corpus.domains) {
    json::Object obj;
    obj["name"] = json::Value(d.name);
    obj["level"] = json::Value(static_cast<std::int64_t>(d.level));
    if (d.tranco_rank) {
      obj["rank"] = json::Value(static_cast<std::int64_t>(*d.tranco_rank));
    }
    obj["ever_signed"] = json::Value(d.ever_signed);
    json::Array snapshots;
    for (const auto& s : d.snapshots) {
      json::Object row;
      row["t"] = json::Value(s.time);
      row["status"] = json::Value(analyzer::status_name(s.status));
      json::Array errors;
      for (const auto code : s.errors) {
        errors.push_back(json::Value(static_cast<std::int64_t>(code)));
      }
      row["errors"] = json::Value(std::move(errors));
      row["ns"] = json::Value(static_cast<std::int64_t>(s.ns_id));
      row["key"] = json::Value(static_cast<std::int64_t>(s.key_id));
      row["alg"] = json::Value(static_cast<std::int64_t>(s.algorithm_id));
      snapshots.push_back(json::Value(std::move(row)));
    }
    obj["snapshots"] = json::Value(std::move(snapshots));
    domains.push_back(json::Value(std::move(obj)));
  }
  root["domains"] = json::Value(std::move(domains));
  return json::Value(std::move(root));
}

std::optional<Corpus> corpus_from_json(const json::Value& value) {
  if (!value.is_object()) return std::nullopt;
  Corpus corpus;
  corpus.universe_size =
      static_cast<std::uint64_t>(value.get_int("universe_size", 1000000));
  corpus.scale = value.get_double("scale", 1.0);
  if (const auto* bins = value.find("universe_signed_per_bin");
      bins != nullptr && bins->is_array()) {
    for (const auto& b : bins->as_array()) {
      corpus.universe_signed_per_bin.push_back(
          static_cast<std::uint64_t>(b.as_int()));
    }
  }
  const auto* domains = value.find("domains");
  if (domains == nullptr || !domains->is_array()) return std::nullopt;
  for (const auto& item : domains->as_array()) {
    DomainTimeline d;
    d.name = item.get_string("name", "");
    d.level = static_cast<DomainLevel>(item.get_int("level", 2));
    if (const auto* rank = item.find("rank"); rank != nullptr) {
      d.tranco_rank = static_cast<std::uint32_t>(rank->as_int());
    }
    d.ever_signed = item.get_bool("ever_signed", false);
    if (const auto* snapshots = item.find("snapshots");
        snapshots != nullptr && snapshots->is_array()) {
      for (const auto& row : snapshots->as_array()) {
        SnapshotRow s;
        s.time = row.get_int("t", 0);
        const auto status = analyzer::status_from_name(
            row.get_string("status", "is"));
        if (!status) return std::nullopt;
        s.status = *status;
        if (const auto* errors = row.find("errors");
            errors != nullptr && errors->is_array()) {
          for (const auto& e : errors->as_array()) {
            s.errors.insert(static_cast<analyzer::ErrorCode>(e.as_int()));
          }
        }
        s.ns_id = static_cast<std::uint32_t>(row.get_int("ns", 0));
        s.key_id = static_cast<std::uint32_t>(row.get_int("key", 0));
        s.algorithm_id = static_cast<std::uint32_t>(row.get_int("alg", 0));
        d.snapshots.push_back(std::move(s));
      }
    }
    corpus.domains.push_back(std::move(d));
  }
  return corpus;
}

}  // namespace dfx::dataset
