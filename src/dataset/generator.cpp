#include "dataset/generator.h"

#include <algorithm>
#include <cmath>
#include <optional>
#include <span>

#include "util/metrics.h"
#include "util/parallel.h"

namespace dfx::dataset {
namespace {

using analyzer::ErrorCode;
using analyzer::SnapshotStatus;

constexpr int kBins = 100;

/// Critical vs non-critical split of the Table 3 mix, as sampling weights.
struct ErrorMix {
  std::vector<ErrorCode> critical_codes;
  std::vector<double> critical_weights;
  std::vector<ErrorCode> noncritical_codes;
  std::vector<double> noncritical_weights;
};

ErrorMix build_error_mix() {
  ErrorMix mix;
  for (const auto& row : table3_calibration()) {
    if (analyzer::is_critical(row.code)) {
      mix.critical_codes.push_back(row.code);
      mix.critical_weights.push_back(row.snapshot_share);
    } else {
      mix.noncritical_codes.push_back(row.code);
      mix.noncritical_weights.push_back(row.snapshot_share);
    }
  }
  return mix;
}

/// Per-status error-set sampler. Error sets are sampled per *episode*
/// (state run), so a domain carries the same errors across consecutive
/// snapshots — which is what separates the paper's domain counts from its
/// snapshot counts in Table 3.
std::set<ErrorCode> sample_errors(Rng& rng, SnapshotStatus status,
                                  const ErrorMix& mix) {
  std::set<ErrorCode> out;
  switch (status) {
    case SnapshotStatus::kSignedBogus: {
      const int n = 2 + static_cast<int>(rng.uniform(3));  // 2..4 causes
      for (int i = 0; i < n; ++i) {
        out.insert(mix.critical_codes[rng.weighted_pick(
            mix.critical_weights)]);
      }
      // Cascades: a bogus zone frequently also violates advisory rules.
      if (rng.chance(0.35)) {
        out.insert(mix.noncritical_codes[rng.weighted_pick(
            mix.noncritical_weights)]);
      }
      break;
    }
    case SnapshotStatus::kSignedValidMisconfig: {
      out.insert(
          mix.noncritical_codes[rng.weighted_pick(mix.noncritical_weights)]);
      if (rng.chance(0.12)) {
        out.insert(mix.noncritical_codes[rng.weighted_pick(
            mix.noncritical_weights)]);
      }
      break;
    }
    default:
      break;
  }
  return out;
}

/// Median holding time (hours) before a from→to transition, per Table 4.
double transition_median_hours(SnapshotStatus from, SnapshotStatus to) {
  for (const auto& cell : table4_calibration()) {
    if (cell.from == from && cell.to == to) return cell.median_hours;
  }
  return 24.0;
}

/// Sample the next state of a CD domain from Table 4's row for `from`.
SnapshotStatus sample_next_state(Rng& rng, SnapshotStatus from) {
  std::vector<SnapshotStatus> states;
  std::vector<double> weights;
  for (const auto& cell : table4_calibration()) {
    if (cell.from == from) {
      states.push_back(cell.to);
      weights.push_back(static_cast<double>(cell.count));
    }
  }
  if (states.empty()) return from;
  return states[rng.weighted_pick(weights)];
}

/// Fix-time medians from Figure 4: how long an error-carrying episode
/// lingers before the operator resolves it.
double fix_median_hours(const std::set<ErrorCode>& errors) {
  double best = 12.0;
  for (const auto& row : fig4_calibration()) {
    if (errors.contains(row.code)) best = std::max(best, row.median_hours);
  }
  return best;
}

struct DomainPlan {
  bool changing = false;
  int snapshot_count = 1;
  double gap_median_hours = 12.0;
  SnapshotStatus stable_status = SnapshotStatus::kInsecure;
  SnapshotStatus first_status = SnapshotStatus::kSignedBogus;
  /// CD trajectories are steered to end here (Figure 2's flows).
  std::optional<SnapshotStatus> final_status;
  bool force_clean = false;  // Fig. 1: popular domains run clean setups
};

/// Stable (SD) status mix. Two regimes: single-snapshot domains carry the
/// bulk of the sticky svm population (NZIC), while multi-snapshot SD
/// domains are mostly healthy or plainly unsigned — that split is what
/// separates Table 3's domain shares from Table 5's CD-centric counts.
SnapshotStatus sample_stable_status(Rng& rng, bool single) {
  const double weights_single[] = {
      0.245,  // sv
      0.170,  // svm
      0.090,  // sb
      0.450,  // is
      0.025,  // lm
      0.020,  // ic
  };
  // Sticky misconfigurations (NZIC above all) concentrate on domains that
  // are scanned again and again — that is what pushes Table 3's NZIC
  // snapshot share (28.8%) far above its domain share (19.7%).
  const double weights_multi[] = {
      0.330,  // sv
      0.400,  // svm
      0.050,  // sb
      0.180,  // is
      0.025,  // lm
      0.015,  // ic
  };
  const auto& weights = single ? weights_single : weights_multi;
  const std::size_t pick =
      rng.weighted_pick(std::span<const double>(weights, 6));
  switch (pick) {
    case 0: return SnapshotStatus::kSignedValid;
    case 1: return SnapshotStatus::kSignedValidMisconfig;
    case 2: return SnapshotStatus::kSignedBogus;
    case 3: return SnapshotStatus::kInsecure;
    case 4: return SnapshotStatus::kLame;
    default: return SnapshotStatus::kIncomplete;
  }
}

/// Where a CD trajectory should end, given where it started (Figure 2).
SnapshotStatus sample_cd_final_status(Rng& rng, SnapshotStatus first,
                                      const FirstLastCalibration& fig2) {
  switch (first) {
    case SnapshotStatus::kSignedBogus: {
      // 67% recover to sv/svm; the rest stay bogus or drop DNSSEC.
      const double weights[] = {fig2.sb_to_valid * 0.55,
                                fig2.sb_to_valid * 0.45, 0.165, 0.165};
      switch (rng.weighted_pick(weights)) {
        case 0: return SnapshotStatus::kSignedValid;
        case 1: return SnapshotStatus::kSignedValidMisconfig;
        case 2: return SnapshotStatus::kSignedBogus;
        default: return SnapshotStatus::kInsecure;
      }
    }
    case SnapshotStatus::kInsecure: {
      // 62% enable DNSSEC by their final snapshot.
      const double weights[] = {fig2.is_to_signed * 0.50,
                                fig2.is_to_signed * 0.22,
                                fig2.is_to_signed * 0.28,
                                1.0 - fig2.is_to_signed};
      switch (rng.weighted_pick(weights)) {
        case 0: return SnapshotStatus::kSignedValid;
        case 1: return SnapshotStatus::kSignedValidMisconfig;
        case 2: return SnapshotStatus::kSignedBogus;
        default: return SnapshotStatus::kInsecure;
      }
    }
    default: {
      // Valid first: 9.4% end insecure, 8.4% end bogus. Tolerated
      // misconfigurations are sticky (Table 5: 61.9% of svm never cleared),
      // so svm-first domains mostly end svm.
      const double rest = 1.0 - fig2.valid_to_is - fig2.valid_to_sb;
      const double sv_share =
          first == SnapshotStatus::kSignedValidMisconfig ? 0.28 : 0.60;
      const double weights[] = {rest * sv_share, rest * (1.0 - sv_share),
                                fig2.valid_to_sb, fig2.valid_to_is};
      switch (rng.weighted_pick(weights)) {
        case 0: return SnapshotStatus::kSignedValid;
        case 1: return SnapshotStatus::kSignedValidMisconfig;
        case 2: return SnapshotStatus::kSignedBogus;
        default: return SnapshotStatus::kInsecure;
      }
    }
  }
}

/// How often the *next* user-triggered rescan observes a transitioned
/// state, and how the rescan cadence stretches, per state: broken zones are
/// rescanned furiously, tolerated misconfigurations sit for months.
double transition_probability(SnapshotStatus state) {
  switch (state) {
    case SnapshotStatus::kSignedBogus: return 0.55;
    case SnapshotStatus::kSignedValidMisconfig: return 0.30;
    case SnapshotStatus::kInsecure: return 0.35;
    default: return 0.50;
  }
}

double gap_multiplier(SnapshotStatus state) {
  switch (state) {
    case SnapshotStatus::kSignedBogus: return 2.0;
    case SnapshotStatus::kSignedValidMisconfig: return 40.0;
    case SnapshotStatus::kInsecure: return 4.0;
    default: return 2.0;
  }
}

/// First observed state of a CD domain (Figure 2's left column).
SnapshotStatus sample_cd_first_status(Rng& rng,
                                      const FirstLastCalibration& fig2) {
  const double total = static_cast<double>(fig2.sb_first + fig2.is_first +
                                           fig2.valid_first);
  const double weights[] = {
      static_cast<double>(fig2.sb_first) / total,
      static_cast<double>(fig2.is_first) / total,
      static_cast<double>(fig2.valid_first) / total * 0.55,  // sv
      static_cast<double>(fig2.valid_first) / total * 0.45,  // svm
  };
  switch (rng.weighted_pick(weights)) {
    case 0: return SnapshotStatus::kSignedBogus;
    case 1: return SnapshotStatus::kInsecure;
    case 2: return SnapshotStatus::kSignedValid;
    default: return SnapshotStatus::kSignedValidMisconfig;
  }
}

bool is_signed_status(SnapshotStatus s) {
  return s == SnapshotStatus::kSignedValid ||
         s == SnapshotStatus::kSignedValidMisconfig ||
         s == SnapshotStatus::kSignedBogus;
}

/// Roll the Table-2 cause marker for a negative (valid→sb/is) transition.
void roll_negative_cause(Rng& rng, const Calibration& cal, bool to_bogus,
                         std::uint32_t& ns_id, std::uint32_t& key_id,
                         std::uint32_t& alg_id) {
  const auto& t2 = cal.table2;
  const double p_ns = to_bogus ? t2.sv_sb_ns_update : t2.sv_is_ns_update;
  const double p_key = to_bogus ? t2.sv_sb_key_rollover : t2.sv_is_key_rollover;
  const double p_alg =
      to_bogus ? t2.sv_sb_algo_rollover : t2.sv_is_algo_rollover;
  const double weights[] = {p_ns, p_key, p_alg,
                            std::max(0.0, 1.0 - p_ns - p_key - p_alg)};
  switch (rng.weighted_pick(weights)) {
    case 0: ++ns_id; break;
    case 1: ++key_id; break;
    case 2: ++alg_id; ++key_id; break;  // algo rollovers replace keys
    default: break;
  }
}

/// Generate the timeline of one changing (CD) domain. The trajectory is a
/// semi-Markov walk over Table 4's transition structure, steered to end in
/// `plan.final_status` (Figure 2's first→last flows).
void generate_cd_timeline(Rng& rng, const GeneratorOptions& options,
                          const ErrorMix& mix, const Calibration& cal,
                          DomainTimeline& domain, const DomainPlan& plan) {
  std::uint32_t ns_id = 1;
  std::uint32_t key_id = 1;
  std::uint32_t alg_id = 1;
  SnapshotStatus state = plan.first_status;
  std::set<ErrorCode> errors = sample_errors(rng, state, mix);
  UnixTime t = options.start +
               static_cast<UnixTime>(rng.uniform01() *
                                     static_cast<double>(options.end -
                                                         options.start) *
                                     0.5);
  int remaining = plan.snapshot_count;
  while (remaining > 0) {
    domain.snapshots.push_back({t, state, errors, ns_id, key_id, alg_id});
    --remaining;
    if (remaining == 0) break;

    const bool last_pair = remaining == 1 && plan.final_status.has_value();
    SnapshotStatus next = state;
    if (last_pair) {
      next = *plan.final_status;  // steer the ending (Figure 2)
    } else if (rng.chance(transition_probability(state))) {
      next = sample_next_state(rng, state);
    }
    if (next == state) {
      // Same episode, user re-scanned: cadence depends on how broken the
      // zone is (frantic for sb, leisurely for tolerated svm), stretched by
      // how long this episode's errors typically linger (Figure 4).
      double episode_median = plan.gap_median_hours * gap_multiplier(state);
      if (!errors.empty()) {
        episode_median =
            std::max(episode_median, fix_median_hours(errors) * 0.6);
      }
      t += static_cast<UnixTime>(rng.lognormal(episode_median, 0.6) * kHour);
      continue;
    }
    // Holding time before the transition lands (Table 4 medians).
    const double median = transition_median_hours(state, next);
    t += static_cast<UnixTime>(rng.lognormal(median, 0.8) * kHour);
    const bool negative = (state == SnapshotStatus::kSignedValid ||
                           state == SnapshotStatus::kSignedValidMisconfig) &&
                          (next == SnapshotStatus::kSignedBogus ||
                           next == SnapshotStatus::kInsecure);
    if (negative) {
      roll_negative_cause(rng, cal, next == SnapshotStatus::kSignedBogus,
                          ns_id, key_id, alg_id);
    } else if (rng.chance(0.05)) {
      ++key_id;  // background benign rollover noise
    }
    state = next;
    errors = sample_errors(rng, state, mix);
  }
  // A CD plan must actually change; if the walk degenerated into a stable
  // run (possible when first == final and no transition fired), force the
  // final snapshot into a different state.
  if (domain.snapshots.size() >= 2) {
    const bool changed = std::any_of(
        domain.snapshots.begin() + 1, domain.snapshots.end(),
        [&](const SnapshotRow& s) {
          return s.status != domain.snapshots.front().status ||
                 s.errors != domain.snapshots.front().errors;
        });
    if (!changed) {
      // Flip a *middle* snapshot so the steered ending (Figure 2) and the
      // first-state distribution both survive.
      const SnapshotStatus first =  // dfx-lint: allow(unchecked-front-back): size() >= 2 branch
          domain.snapshots.front().status;
      if (domain.snapshots.size() >= 3) {
        auto& mid = domain.snapshots[domain.snapshots.size() / 2];
        SnapshotStatus forced = sample_next_state(rng, first);
        int guard = 0;
        while (forced == first && ++guard < 8) {
          forced = sample_next_state(rng, forced);
        }
        mid.status = forced;
        mid.errors = sample_errors(rng, forced, mix);
      } else {
        // Two snapshots: end in the benign neighbour state.
        auto& last = domain.snapshots.back();  // dfx-lint: allow(unchecked-front-back): size() >= 2 branch
        last.status = first == SnapshotStatus::kSignedValid
                          ? SnapshotStatus::kSignedValidMisconfig
                          : SnapshotStatus::kSignedValid;
        last.errors = sample_errors(rng, last.status, mix);
      }
    }
  }
}

void generate_sd_timeline(Rng& rng, const GeneratorOptions& options,
                          const ErrorMix& mix, DomainTimeline& domain,
                          const DomainPlan& plan) {
  const std::set<ErrorCode> errors =
      sample_errors(rng, plan.stable_status, mix);
  UnixTime t = options.start +
               static_cast<UnixTime>(rng.uniform01() *
                                     static_cast<double>(options.end -
                                                         options.start) *
                                     0.7);
  for (int i = 0; i < plan.snapshot_count && t < options.end; ++i) {
    domain.snapshots.push_back({t, plan.stable_status, errors, 1, 1, 1});
    t += static_cast<UnixTime>(rng.lognormal(plan.gap_median_hours, 1.0) *
                               kHour);
  }
}

/// Number of snapshots for a multi-snapshot domain: heavy-tailed with the
/// paper's mean of ~6 snapshots per multi-snapshot SLD+ domain.
int sample_multi_count(Rng& rng) {
  const double v = rng.lognormal(3.4, 1.0);
  return std::clamp(static_cast<int>(2.0 + v), 2, 400);
}

}  // namespace

Corpus generate_corpus(const GeneratorOptions& options) {
  metrics::ScopedTimer stage_timer(
      metrics::Registry::global().histogram("stage.generate"));
  const auto& cal = default_calibration();
  const ErrorMix mix = build_error_mix();
  Corpus corpus;
  corpus.scale = options.scale;
  corpus.universe_size =
      static_cast<std::uint64_t>(1000000.0 * options.scale);
  const std::uint64_t bin_size = std::max<std::uint64_t>(
      1, corpus.universe_size / kBins);

  // ---- SLD+ domains -------------------------------------------------------
  // Sharded per-domain: domain i draws every sample from its own
  // Rng::for_shard(seed, "dataset.sld", i) stream, so the corpus is a pure
  // function of the seed — bit-identical at any thread count.
  const auto sld_total = static_cast<std::int64_t>(
      static_cast<double>(cal.table1.sld_domains) * options.scale);
  const auto sld_multi = static_cast<std::int64_t>(
      static_cast<double>(cal.table1.sld_multi_snapshot) * options.scale);

  // Per-bin dataset presence targets (Figure 1): how many of this corpus's
  // domains carry a rank in each bin.
  std::vector<std::int64_t> ranked_quota(kBins);
  std::int64_t ranked_total = 0;
  for (int b = 0; b < kBins; ++b) {
    ranked_quota[static_cast<std::size_t>(b)] = static_cast<std::int64_t>(
        fig1_present_share(b) * static_cast<double>(bin_size));
    ranked_total += ranked_quota[static_cast<std::size_t>(b)];
  }

  // Rank plan (serial pre-pass, RNG-free): fill bins in order until the
  // quotas are exhausted. Ranked domains are spread across the population
  // (a prefix would correlate rank with the multi-snapshot quota below).
  struct RankPlan {
    std::uint32_t rank = 0;
    int bin = 0;
  };
  std::vector<std::optional<RankPlan>> rank_plan(
      static_cast<std::size_t>(sld_total));
  {
    int next_bin = 0;
    std::int64_t issued_in_bin = 0;
    const std::int64_t rank_stride =
        ranked_total > 0 ? std::max<std::int64_t>(1, sld_total / ranked_total)
                         : sld_total + 1;
    for (std::int64_t i = 0; i < sld_total; ++i) {
      if (i % rank_stride != 0 || next_bin >= kBins) continue;
      while (next_bin < kBins &&
             issued_in_bin >= ranked_quota[static_cast<std::size_t>(
                                  next_bin)]) {
        ++next_bin;
        issued_in_bin = 0;
      }
      if (next_bin >= kBins) continue;
      rank_plan[static_cast<std::size_t>(i)] = RankPlan{
          static_cast<std::uint32_t>(
              static_cast<std::uint64_t>(next_bin) * bin_size +
              static_cast<std::uint64_t>(issued_in_bin) + 1),
          next_bin};
      ++issued_in_bin;
    }
  }

  const auto tld_total = static_cast<std::int64_t>(
      static_cast<double>(cal.table1.tld_domains) * options.scale);
  const auto tld_multi = static_cast<std::int64_t>(
      static_cast<double>(cal.table1.tld_multi_snapshot) * options.scale);
  const double tld_avg_snapshots =
      static_cast<double>(cal.table1.tld_snapshots) /
      static_cast<double>(cal.table1.tld_domains);

  corpus.domains.resize(
      static_cast<std::size_t>(sld_total + tld_total) + 1);

  ThreadPool& pool = ThreadPool::global();
  const double multi_share =
      static_cast<double>(sld_multi) /
      static_cast<double>(std::max<std::int64_t>(1, sld_total));
  parallel_for(
      pool, static_cast<std::size_t>(sld_total), kDefaultGrain,
      [&](std::size_t begin, std::size_t end) {
        for (std::size_t i = begin; i < end; ++i) {
          Rng rng = Rng::for_shard(options.seed, "dataset.sld", i);
          DomainTimeline& domain = corpus.domains[i];
          domain.name = "sld-" + std::to_string(i) + ".example.";
          domain.level = DomainLevel::kSld;

          DomainPlan plan;
          if (rank_plan[i]) {
            domain.tranco_rank = rank_plan[i]->rank;
            // Popular signed domains are mostly run cleanly (Fig. 1, top):
            // force a valid stable setup unless the bin's misconfigured
            // share says otherwise.
            plan.force_clean = !rng.chance(
                dataset::fig1_misconfigured_share(rank_plan[i]->bin));
          }

          const bool multi = rng.chance(multi_share);
          plan.snapshot_count = multi ? sample_multi_count(rng) : 1;
          plan.gap_median_hours =
              rng.lognormal(12.0, 1.1);  // Fig. 5: 65% < 1 day
          // Slight oversampling compensates for walks that degenerate plus
          // the forced-clean popular domains excluded above.
          plan.changing = multi && !plan.force_clean &&
                          rng.chance(cal.table1.sld_cd_share * 1.13);
          if (plan.changing) {
            plan.first_status = sample_cd_first_status(rng, cal.fig2);
            plan.final_status =
                sample_cd_final_status(rng, plan.first_status, cal.fig2);
            generate_cd_timeline(rng, options, mix, cal, domain, plan);
          } else {
            plan.stable_status = plan.force_clean && domain.tranco_rank
                                     ? (rng.chance(0.55)
                                            ? SnapshotStatus::kSignedValid
                                            : SnapshotStatus::kInsecure)
                                     : sample_stable_status(rng, !multi);
            generate_sd_timeline(rng, options, mix, domain, plan);
          }
          domain.ever_signed = std::any_of(
              domain.snapshots.begin(), domain.snapshots.end(),
              [](const SnapshotRow& s) { return is_signed_status(s.status); });
        }
      });

  // Figure 1's universe: back out the per-bin ever-signed universe so the
  // measured signed-presence curve matches the calibration target.
  corpus.universe_signed_per_bin.assign(kBins, 0);
  std::vector<std::int64_t> signed_in_dataset(kBins, 0);
  for (const auto& d : corpus.domains) {
    if (d.tranco_rank && d.ever_signed) {
      const auto b = std::min<std::uint64_t>(
          (*d.tranco_rank - 1) / bin_size, kBins - 1);
      ++signed_in_dataset[static_cast<std::size_t>(b)];
    }
  }
  for (int b = 0; b < kBins; ++b) {
    const double share = fig1_signed_share(b);
    corpus.universe_signed_per_bin[static_cast<std::size_t>(b)] =
        static_cast<std::uint64_t>(
            static_cast<double>(signed_in_dataset[static_cast<std::size_t>(
                b)]) /
            std::max(share, 0.01));
  }

  // ---- TLD and root domains (Table 1's upper rows) ------------------------
  parallel_for(
      pool, static_cast<std::size_t>(tld_total), kDefaultGrain,
      [&](std::size_t begin, std::size_t end) {
        for (std::size_t i = begin; i < end; ++i) {
          Rng rng = Rng::for_shard(options.seed, "dataset.tld", i);
          DomainTimeline& domain =
              corpus.domains[static_cast<std::size_t>(sld_total) + i];
          domain.name = "tld-" + std::to_string(i) + ".";
          domain.level = DomainLevel::kTld;
          DomainPlan plan;
          const bool multi =
              static_cast<std::int64_t>(i) < tld_multi;
          plan.snapshot_count =
              multi ? std::max(2, static_cast<int>(rng.lognormal(
                                      tld_avg_snapshots, 1.2)))
                    : 1;
          plan.gap_median_hours = rng.lognormal(30.0, 1.0);
          plan.changing = multi && rng.chance(cal.table1.tld_cd_share);
          if (plan.changing) {
            plan.first_status = sample_cd_first_status(rng, cal.fig2);
            plan.final_status =
                sample_cd_final_status(rng, plan.first_status, cal.fig2);
            generate_cd_timeline(rng, options, mix, cal, domain, plan);
          } else {
            // TLDs are overwhelmingly signed and valid.
            plan.stable_status = rng.chance(0.9)
                                     ? SnapshotStatus::kSignedValid
                                     : SnapshotStatus::kSignedValidMisconfig;
            generate_sd_timeline(rng, options, mix, domain, plan);
          }
          domain.ever_signed = true;
        }
      });

  // The root: one domain, many snapshots, always valid.
  {
    DomainTimeline& root =
        corpus.domains[static_cast<std::size_t>(sld_total + tld_total)];
    root.name = ".";
    root.level = DomainLevel::kRoot;
    root.ever_signed = true;
    const auto count = static_cast<std::int64_t>(
        static_cast<double>(cal.table1.root_snapshots) * options.scale);
    UnixTime t = options.start;
    const UnixTime step =
        count > 1 ? (options.end - options.start) / count : kDay;
    for (std::int64_t i = 0; i < count; ++i) {
      root.snapshots.push_back(
          {t, SnapshotStatus::kSignedValid, {}, 1, 1, 1});
      t += step;
    }
  }

  auto& registry = metrics::Registry::global();
  registry.counter("generate.domains")
      .add(static_cast<std::int64_t>(corpus.domains.size()));
  registry.counter("generate.snapshots").add(corpus.total_snapshots());
  return corpus;
}

}  // namespace dfx::dataset
