#include "json/json.h"

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <stdexcept>

namespace dfx::json {

std::int64_t Value::as_int() const {
  if (is_int()) return std::get<std::int64_t>(data_);
  if (is_double()) return static_cast<std::int64_t>(std::get<double>(data_));
  throw std::runtime_error("json: not a number");
}

double Value::as_double() const {
  if (is_double()) return std::get<double>(data_);
  if (is_int()) return static_cast<double>(std::get<std::int64_t>(data_));
  throw std::runtime_error("json: not a number");
}

// Hot by name collision with ZoneStore::find; JSON never runs on the
// serve path (config load and result emission only).
// dfx-lint: allow(hot-path-cost): offline JSON layer, not the serve path.
const Value* Value::find(std::string_view key) const {
  if (!is_object()) return nullptr;
  const auto& obj = as_object();
  const auto it = obj.find(std::string(key));
  return it == obj.end() ? nullptr : &it->second;
}

std::int64_t Value::get_int(std::string_view key, std::int64_t dflt) const {
  const Value* v = find(key);
  return (v != nullptr && v->is_number()) ? v->as_int() : dflt;
}

double Value::get_double(std::string_view key, double dflt) const {
  const Value* v = find(key);
  return (v != nullptr && v->is_number()) ? v->as_double() : dflt;
}

std::string Value::get_string(std::string_view key, std::string dflt) const {
  const Value* v = find(key);
  return (v != nullptr && v->is_string()) ? v->as_string() : std::move(dflt);
}

bool Value::get_bool(std::string_view key, bool dflt) const {
  const Value* v = find(key);
  return (v != nullptr && v->is_bool()) ? v->as_bool() : dflt;
}

namespace {

class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  std::variant<Value, ParseError> run() {
    skip_ws();
    Value v;
    if (!parse_value(v)) return error_;
    skip_ws();
    if (pos_ != text_.size()) return fail("trailing characters");
    return v;
  }

 private:
  ParseError fail(std::string msg) {
    error_ = ParseError{pos_, std::move(msg)};
    ok_ = false;
    return error_;
  }

  void skip_ws() {
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c == ' ' || c == '\t' || c == '\n' || c == '\r') {
        ++pos_;
      } else {
        break;
      }
    }
  }

  bool at_end() const { return pos_ >= text_.size(); }
  char peek() const { return text_[pos_]; }

  bool consume(char c) {
    if (at_end() || text_[pos_] != c) return false;
    ++pos_;
    return true;
  }

  bool expect_literal(std::string_view lit) {
    if (text_.substr(pos_, lit.size()) != lit) {
      fail("invalid literal");
      return false;
    }
    pos_ += lit.size();
    return true;
  }

  bool parse_value(Value& out) {
    if (at_end()) {
      fail("unexpected end of input");
      return false;
    }
    switch (peek()) {
      case '{':
        return parse_object(out);
      case '[':
        return parse_array(out);
      case '"': {
        std::string s;
        if (!parse_string(s)) return false;
        out = Value(std::move(s));
        return true;
      }
      case 't':
        if (!expect_literal("true")) return false;
        out = Value(true);
        return true;
      case 'f':
        if (!expect_literal("false")) return false;
        out = Value(false);
        return true;
      case 'n':
        if (!expect_literal("null")) return false;
        out = Value(nullptr);
        return true;
      default:
        return parse_number(out);
    }
  }

  bool parse_object(Value& out) {
    ++pos_;  // '{'
    Object obj;
    skip_ws();
    if (consume('}')) {
      out = Value(std::move(obj));
      return true;
    }
    while (true) {
      skip_ws();
      std::string key;
      if (!parse_string(key)) return false;
      skip_ws();
      if (!consume(':')) {
        fail("expected ':'");
        return false;
      }
      skip_ws();
      Value v;
      if (!parse_value(v)) return false;
      obj.emplace(std::move(key), std::move(v));
      skip_ws();
      if (consume(',')) continue;
      if (consume('}')) break;
      fail("expected ',' or '}'");
      return false;
    }
    out = Value(std::move(obj));
    return true;
  }

  bool parse_array(Value& out) {
    ++pos_;  // '['
    Array arr;
    skip_ws();
    if (consume(']')) {
      out = Value(std::move(arr));
      return true;
    }
    while (true) {
      skip_ws();
      Value v;
      if (!parse_value(v)) return false;
      arr.push_back(std::move(v));
      skip_ws();
      if (consume(',')) continue;
      if (consume(']')) break;
      fail("expected ',' or ']'");
      return false;
    }
    out = Value(std::move(arr));
    return true;
  }

  bool parse_string(std::string& out) {
    if (at_end() || peek() != '"') {
      fail("expected string");
      return false;
    }
    ++pos_;
    out.clear();
    while (true) {
      if (at_end()) {
        fail("unterminated string");
        return false;
      }
      const char c = text_[pos_++];
      if (c == '"') return true;
      if (c != '\\') {
        out.push_back(c);
        continue;
      }
      if (at_end()) {
        fail("unterminated escape");
        return false;
      }
      const char e = text_[pos_++];
      switch (e) {
        case '"': out.push_back('"'); break;
        case '\\': out.push_back('\\'); break;
        case '/': out.push_back('/'); break;
        case 'b': out.push_back('\b'); break;
        case 'f': out.push_back('\f'); break;
        case 'n': out.push_back('\n'); break;
        case 'r': out.push_back('\r'); break;
        case 't': out.push_back('\t'); break;
        case 'u': {
          if (pos_ + 4 > text_.size()) {
            fail("bad \\u escape");
            return false;
          }
          unsigned cp = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = text_[pos_++];
            cp <<= 4;
            if (h >= '0' && h <= '9') {
              cp |= static_cast<unsigned>(h - '0');
            } else if (h >= 'a' && h <= 'f') {
              cp |= static_cast<unsigned>(h - 'a' + 10);
            } else if (h >= 'A' && h <= 'F') {
              cp |= static_cast<unsigned>(h - 'A' + 10);
            } else {
              fail("bad \\u escape");
              return false;
            }
          }
          // Encode BMP code point as UTF-8 (surrogate pairs unsupported;
          // snapshot text is ASCII in practice).
          if (cp < 0x80) {
            out.push_back(static_cast<char>(cp));
          } else if (cp < 0x800) {
            out.push_back(static_cast<char>(0xC0 | (cp >> 6)));
            out.push_back(static_cast<char>(0x80 | (cp & 0x3F)));
          } else {
            out.push_back(static_cast<char>(0xE0 | (cp >> 12)));
            out.push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3F)));
            out.push_back(static_cast<char>(0x80 | (cp & 0x3F)));
          }
          break;
        }
        default:
          fail("unknown escape");
          return false;
      }
    }
  }

  bool parse_number(Value& out) {
    const std::size_t start = pos_;
    if (!at_end() && peek() == '-') ++pos_;
    bool is_float = false;
    while (!at_end()) {
      const char c = peek();
      if (c >= '0' && c <= '9') {
        ++pos_;
      } else if (c == '.' || c == 'e' || c == 'E' || c == '+' || c == '-') {
        is_float = is_float || c == '.' || c == 'e' || c == 'E';
        ++pos_;
      } else {
        break;
      }
    }
    if (pos_ == start) {
      fail("expected value");
      return false;
    }
    const std::string token(text_.substr(start, pos_ - start));
    errno = 0;
    if (is_float) {
      char* end = nullptr;
      const double d = std::strtod(token.c_str(), &end);
      if (end != token.c_str() + token.size() || errno == ERANGE) {
        fail("bad number");
        return false;
      }
      out = Value(d);
    } else {
      char* end = nullptr;
      const long long i = std::strtoll(token.c_str(), &end, 10);
      if (end != token.c_str() + token.size() || errno == ERANGE) {
        fail("bad number");
        return false;
      }
      out = Value(static_cast<std::int64_t>(i));
    }
    return true;
  }

  std::string_view text_;
  std::size_t pos_ = 0;
  bool ok_ = true;
  ParseError error_;
};

void escape_to(const std::string& s, std::string& out) {
  out.push_back('"');
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out.push_back(c);
        }
    }
  }
  out.push_back('"');
}

void serialize_to(const Value& v, std::string& out, int indent, int depth) {
  const auto newline = [&](int d) {
    if (indent < 0) return;
    out.push_back('\n');
    out.append(static_cast<std::size_t>(indent * d), ' ');
  };
  if (v.is_null()) {
    out += "null";
  } else if (v.is_bool()) {
    out += v.as_bool() ? "true" : "false";
  } else if (v.is_int()) {
    out += std::to_string(v.as_int());
  } else if (v.is_double()) {
    const double d = v.as_double();
    if (std::isfinite(d)) {
      char buf[32];
      std::snprintf(buf, sizeof buf, "%.17g", d);
      out += buf;
    } else {
      out += "null";  // JSON has no Inf/NaN
    }
  } else if (v.is_string()) {
    escape_to(v.as_string(), out);
  } else if (v.is_array()) {
    const auto& arr = v.as_array();
    if (arr.empty()) {
      out += "[]";
      return;
    }
    out.push_back('[');
    for (std::size_t i = 0; i < arr.size(); ++i) {
      if (i > 0) out.push_back(',');
      newline(depth + 1);
      serialize_to(arr[i], out, indent, depth + 1);
    }
    newline(depth);
    out.push_back(']');
  } else {
    const auto& obj = v.as_object();
    if (obj.empty()) {
      out += "{}";
      return;
    }
    out.push_back('{');
    bool first = true;
    for (const auto& [k, val] : obj) {
      if (!first) out.push_back(',');
      first = false;
      newline(depth + 1);
      escape_to(k, out);
      out.push_back(':');
      if (indent >= 0) out.push_back(' ');
      serialize_to(val, out, indent, depth + 1);
    }
    newline(depth);
    out.push_back('}');
  }
}

}  // namespace

std::variant<Value, ParseError> parse(std::string_view text) {
  return Parser(text).run();
}

Value parse_or_throw(std::string_view text) {
  auto result = parse(text);
  if (auto* err = std::get_if<ParseError>(&result)) {
    throw std::runtime_error("json parse error at offset " +
                             std::to_string(err->offset) + ": " +
                             err->message);
  }
  return std::get<Value>(std::move(result));
}

std::string serialize(const Value& v) {
  std::string out;
  serialize_to(v, out, -1, 0);
  return out;
}

std::string serialize_pretty(const Value& v) {
  std::string out;
  serialize_to(v, out, 2, 0);
  return out;
}

}  // namespace dfx::json
