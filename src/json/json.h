// Minimal JSON value model, parser and serializer.
//
// DNSViz snapshots are JSON documents; the dataset, analyzer and examples
// exchange snapshots in a compatible schema. This is a strict parser for the
// JSON subset those documents use (no comments, UTF-8 pass-through).
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <variant>
#include <vector>

namespace dfx::json {

class Value;

using Array = std::vector<Value>;
// std::map keeps key order deterministic, which keeps serialized snapshots
// byte-stable across runs.
using Object = std::map<std::string, Value>;

class Value {
 public:
  Value() : data_(nullptr) {}
  Value(std::nullptr_t) : data_(nullptr) {}
  Value(bool b) : data_(b) {}
  Value(double d) : data_(d) {}
  Value(std::int64_t i) : data_(i) {}
  Value(int i) : data_(static_cast<std::int64_t>(i)) {}
  Value(std::uint64_t i) : data_(static_cast<std::int64_t>(i)) {}
  Value(std::string s) : data_(std::move(s)) {}
  Value(const char* s) : data_(std::string(s)) {}
  Value(Array a) : data_(std::move(a)) {}
  Value(Object o) : data_(std::move(o)) {}

  bool is_null() const { return std::holds_alternative<std::nullptr_t>(data_); }
  bool is_bool() const { return std::holds_alternative<bool>(data_); }
  bool is_int() const { return std::holds_alternative<std::int64_t>(data_); }
  bool is_double() const { return std::holds_alternative<double>(data_); }
  bool is_number() const { return is_int() || is_double(); }
  bool is_string() const { return std::holds_alternative<std::string>(data_); }
  bool is_array() const { return std::holds_alternative<Array>(data_); }
  bool is_object() const { return std::holds_alternative<Object>(data_); }

  bool as_bool() const { return std::get<bool>(data_); }
  std::int64_t as_int() const;
  double as_double() const;
  const std::string& as_string() const { return std::get<std::string>(data_); }
  const Array& as_array() const { return std::get<Array>(data_); }
  Array& as_array() { return std::get<Array>(data_); }
  const Object& as_object() const { return std::get<Object>(data_); }
  Object& as_object() { return std::get<Object>(data_); }

  /// Object field lookup; returns nullptr when absent or not an object.
  const Value* find(std::string_view key) const;

  /// Convenience accessors with defaults for optional snapshot fields.
  std::int64_t get_int(std::string_view key, std::int64_t dflt) const;
  double get_double(std::string_view key, double dflt) const;
  std::string get_string(std::string_view key, std::string dflt) const;
  bool get_bool(std::string_view key, bool dflt) const;

 private:
  std::variant<std::nullptr_t, bool, std::int64_t, double, std::string, Array,
               Object>
      data_;
};

struct ParseError {
  std::size_t offset = 0;
  std::string message;
};

/// Parse a complete JSON document; trailing garbage is an error.
[[nodiscard]] std::variant<Value, ParseError> parse(std::string_view text);

/// Parse, throwing std::runtime_error on failure (for tests/tools).
Value parse_or_throw(std::string_view text);

/// Serialize compactly (no whitespace).
std::string serialize(const Value& v);

/// Serialize with 2-space indentation.
std::string serialize_pretty(const Value& v);

}  // namespace dfx::json
