// Zone signing keys and the key store (the on-disk key directory model).
//
// Mirrors the BIND key life-cycle: dnssec-keygen creates a key pair with
// timing metadata; dnssec-settime adjusts publish/activate/revoke/delete
// times; dnssec-signzone picks up keys from the key directory.
#pragma once

#include <cstdint>
#include <deque>
#include <optional>
#include <string>
#include <vector>

#include "crypto/algorithm.h"
#include "dnscore/name.h"
#include "dnscore/rdata.h"
#include "util/rng.h"
#include "util/simclock.h"

namespace dfx::zone {

enum class KeyRole : std::uint8_t {
  kZsk,  // flags 256
  kKsk,  // flags 257 (SEP bit set)
};

/// Timing metadata à la dnssec-settime; kUnset means "not scheduled".
constexpr UnixTime kUnsetTime = INT64_MIN;

/// A signing key: crypto material + DNSKEY metadata + life-cycle times.
class ZoneKey {
 public:
  ZoneKey(dns::Name zone, KeyRole role, crypto::KeyPair material,
          UnixTime created);

  const dns::Name& zone() const { return zone_; }
  KeyRole role() const { return role_; }
  crypto::DnssecAlgorithm algorithm() const { return material_.algorithm; }
  std::size_t nominal_bits() const { return material_.nominal_bits; }
  const crypto::KeyPair& material() const { return material_; }

  bool revoked() const { return revoked_; }
  /// Set/clear the REVOKE flag bit; changes the key tag (RFC 5011).
  void set_revoked(bool revoked) { revoked_ = revoked; }

  UnixTime publish_time() const { return publish_; }
  UnixTime activate_time() const { return activate_; }
  UnixTime delete_time() const { return delete_; }
  void set_publish_time(UnixTime t) { publish_ = t; }
  void set_activate_time(UnixTime t) { activate_ = t; }
  void set_delete_time(UnixTime t) { delete_ = t; }

  /// Published: in the DNSKEY RRset at time `now`.
  bool is_published(UnixTime now) const;
  /// Active: used for signing at time `now`.
  bool is_active(UnixTime now) const;

  /// DNSKEY RDATA including the current flag bits.
  dns::DnskeyRdata to_dnskey() const;

  /// Key tag of the current DNSKEY RDATA (changes when revoked).
  std::uint16_t tag() const;

  /// Key tag the key had before the REVOKE bit was set.
  std::uint16_t pre_revoke_tag() const;

  /// BIND-style key file base name "K<zone>.+NNN+TTTTT".
  std::string file_base() const;

  /// Sign a message with this key's private material.
  Bytes sign(ByteView message) const;

 private:
  dns::Name zone_;
  KeyRole role_;
  crypto::KeyPair material_;
  bool revoked_ = false;
  UnixTime publish_;
  UnixTime activate_;
  UnixTime delete_ = kUnsetTime;
};

/// All keys for one zone (the key directory).
class KeyStore {
 public:
  explicit KeyStore(dns::Name zone) : zone_(std::move(zone)) {}

  const dns::Name& zone() const { return zone_; }
  const std::deque<ZoneKey>& keys() const { return keys_; }
  std::deque<ZoneKey>& keys() { return keys_; }
  bool empty() const { return keys_.empty(); }

  /// dnssec-keygen: create and store a key, publish+activate immediately.
  ZoneKey& generate(Rng& rng, KeyRole role, crypto::DnssecAlgorithm alg,
                    UnixTime now, std::size_t nominal_bits = 0);

  /// Adopt an externally created key (ZReplicator error injection).
  ZoneKey& adopt(ZoneKey key);

  ZoneKey* find_by_tag(std::uint16_t tag);
  const ZoneKey* find_by_tag(std::uint16_t tag) const;

  /// Remove a key entirely (file deletion); true if found.
  bool remove_by_tag(std::uint16_t tag);

  /// Keys published at `now` (i.e. in the DNSKEY RRset).
  std::vector<const ZoneKey*> published(UnixTime now) const;

  /// Keys active for signing at `now`, optionally filtered by role.
  std::vector<const ZoneKey*> active(UnixTime now) const;
  std::vector<const ZoneKey*> active_with_role(UnixTime now,
                                               KeyRole role) const;

 private:
  dns::Name zone_;
  // A deque keeps references returned by generate()/adopt() stable across
  // later insertions (vector reallocation invalidated them).
  std::deque<ZoneKey> keys_;
};

}  // namespace dfx::zone
