#include "zone/signer.h"

#include <algorithm>
#include <set>

#include "zone/nsec3.h"
#include "util/check.hpp"
#include "util/codec.h"

namespace dfx::zone {
namespace {

bool is_dnssec_type(dns::RRType type) {
  switch (type) {
    case dns::RRType::kRRSIG:
    case dns::RRType::kNSEC:
    case dns::RRType::kNSEC3:
    case dns::RRType::kNSEC3PARAM:
    case dns::RRType::kDNSKEY:
    case dns::RRType::kCDS:
    case dns::RRType::kCDNSKEY:
      return true;
    default:
      return false;
  }
}

/// Owner names the zone is authoritative for (everything not occluded by a
/// zone cut), in canonical order. Delegation points themselves count.
std::vector<dns::Name> authoritative_names(const Zone& zone) {
  std::vector<dns::Name> out;
  for (const auto& name : zone.owner_names()) {
    const auto cut = zone.covering_delegation(name);
    if (cut && *cut != name) continue;  // glue below a cut
    out.push_back(name);
  }
  return out;
}

/// Types present at `name` for the NSEC bitmap. At delegations only NS and
/// DS are authoritative (plus the NSEC itself and its RRSIG).
std::set<dns::RRType> bitmap_types(const Zone& zone, const dns::Name& name,
                                   bool delegation, dns::RRType denial_type,
                                   bool will_be_signed) {
  std::set<dns::RRType> types;
  for (const auto* rrset : zone.at(name)) {
    if (delegation && rrset->type() != dns::RRType::kNS &&
        rrset->type() != dns::RRType::kDS) {
      continue;
    }
    types.insert(rrset->type());
  }
  if (denial_type == dns::RRType::kNSEC) types.insert(dns::RRType::kNSEC);
  if (will_be_signed || !delegation ||
      types.contains(dns::RRType::kDS)) {
    types.insert(dns::RRType::kRRSIG);
  }
  if (delegation && !types.contains(dns::RRType::kDS)) {
    // Insecure delegation: NS only, no RRSIG over the cut.
    types.erase(dns::RRType::kRRSIG);
    if (denial_type == dns::RRType::kNSEC) types.insert(dns::RRType::kNSEC);
  }
  return types;
}

}  // namespace

dns::RrsigRdata make_rrsig(const dns::RRset& rrset, const ZoneKey& key,
                           const dns::Name& apex, UnixTime inception,
                           UnixTime expiration,
                           std::optional<std::uint8_t> labels_override) {
  dns::RrsigRdata sig;
  sig.type_covered = rrset.type();
  const crypto::DnssecAlgorithm alg = key.algorithm();
  sig.algorithm = static_cast<std::uint8_t>(alg);
  // RFC 4034 §3.1.3: the labels field excludes a leading "*" label, which
  // is how validators recognise wildcard-expandable signatures.
  const bool wildcard = rrset.owner().leftmost_label() == "*";
  // Any valid name has at most 127 labels; a count that would truncate in
  // the uint8 labels field means the owner name was built unchecked.
  DFX_DCHECK(rrset.owner().label_count() <= 127);
  sig.labels = labels_override.value_or(static_cast<std::uint8_t>(
      rrset.owner().label_count() - (wildcard ? 1 : 0)));
  sig.original_ttl = rrset.ttl();
  sig.expiration = expiration;
  sig.inception = inception;
  sig.key_tag = key.tag();
  sig.signer = apex;
  sig.signature = key.sign(rrset.signing_buffer(sig));
  return sig;
}

bool verify_rrsig(const dns::RRset& rrset, const dns::RrsigRdata& sig,
                  const dns::DnskeyRdata& key) {
  dns::RrsigRdata fields = sig;
  fields.signature.clear();
  // Reconstruct the exact buffer the signer hashed. The RRset TTL may have
  // been modified in flight; the canonical buffer uses original_ttl.
  dns::RRset canonical(rrset.owner(), rrset.type(), sig.original_ttl);
  for (const auto& rdata : rrset.rdatas()) canonical.add(rdata);
  const Bytes buffer = canonical.signing_buffer(fields);
  return crypto::verify_message(
      static_cast<crypto::DnssecAlgorithm>(key.algorithm), key.public_key,
      buffer, sig.signature);
}

dns::DsRdata make_ds(const ZoneKey& key, crypto::DigestType type) {
  return make_ds_from_dnskey(key.zone(), key.to_dnskey(), type);
}

dns::DsRdata make_ds_from_dnskey(const dns::Name& owner,
                                 const dns::DnskeyRdata& dnskey,
                                 crypto::DigestType type) {
  dns::DsRdata ds;
  ds.key_tag = dnskey.key_tag();
  ds.algorithm = dnskey.algorithm;
  ds.digest_type = static_cast<std::uint8_t>(type);
  ds.digest = crypto::ds_digest(type, owner.to_canonical_wire(),
                                dns::rdata_to_wire(dns::Rdata(dnskey)));
  return ds;
}

Zone strip_dnssec(const Zone& signed_zone) {
  Zone out(signed_zone.apex());
  for (const auto* rrset : signed_zone.all_rrsets()) {
    if (is_dnssec_type(rrset->type())) continue;
    // NSEC3 owners (hash labels) carry only DNSSEC types, so they vanish.
    out.put(*rrset);
  }
  return out;
}

Zone sign_zone(const Zone& unsigned_zone, const KeyStore& keys,
               const SigningConfig& config, UnixTime now) {
  Zone zone = strip_dnssec(unsigned_zone);
  const dns::Name& apex = zone.apex();
  const UnixTime inception = now - config.inception_offset;
  const UnixTime expiration = now + config.validity;

  // 1. DNSKEY RRset from the key directory.
  const std::uint32_t dnskey_ttl = 3600;
  dns::RRset dnskey_set(apex, dns::RRType::kDNSKEY, dnskey_ttl);
  for (const auto* key : keys.published(now)) {
    dnskey_set.add(key->to_dnskey());
  }
  if (!dnskey_set.empty()) zone.put(dnskey_set);

  // 1b. CDS/CDNSKEY publication (RFC 7344): the child's desired DS set,
  // derived from its active, non-revoked KSKs.
  if (config.publish_cds) {
    dns::RRset cds_set(apex, dns::RRType::kCDS, dnskey_ttl);
    dns::RRset cdnskey_set(apex, dns::RRType::kCDNSKEY, dnskey_ttl);
    for (const auto* key : keys.active_with_role(now, KeyRole::kKsk)) {
      if (key->revoked()) continue;
      cds_set.add(dns::CdsRdata{make_ds(*key, crypto::DigestType::kSha256)});
      cdnskey_set.add(dns::CdnskeyRdata{key->to_dnskey()});
    }
    if (!cds_set.empty()) {
      zone.put(std::move(cds_set));
      zone.put(std::move(cdnskey_set));
    }
  }

  // 2. Negative-proof chain.
  const std::uint32_t negative_ttl =
      zone.soa() != nullptr ? zone.soa()->minimum : 3600;
  const auto auth_names = authoritative_names(zone);

  // Empty non-terminals: names with descendants but no records. Needed for
  // a correct NSEC3 chain.
  std::set<dns::Name, dns::Name::Less> nsec3_names(auth_names.begin(),
                                                   auth_names.end());
  for (const auto& name : auth_names) {
    dns::Name cur = name.parent();
    // parent() strictly shrinks the label count, so 128 steps (the deepest
    // legal name) always suffice to climb to the apex.
    DFX_BOUNDED_LOOP(guard, 128);
    while (cur.label_count() > apex.label_count()) {
      guard.tick();
      nsec3_names.insert(cur);
      cur = cur.parent();
    }
  }

  if (config.denial == DenialMode::kNsec) {
    for (std::size_t i = 0; i < auth_names.size(); ++i) {
      const dns::Name& name = auth_names[i];
      const dns::Name& next = auth_names[(i + 1) % auth_names.size()];
      dns::NsecRdata nsec;
      nsec.next = next;
      nsec.types = bitmap_types(zone, name, zone.is_delegation(name),
                                dns::RRType::kNSEC, true);
      dns::RRset rrset(name, dns::RRType::kNSEC, negative_ttl);
      rrset.add(nsec);
      zone.put(std::move(rrset));
    }
  } else {
    // NSEC3PARAM advertises the chain parameters.
    dns::Nsec3ParamRdata param;
    param.iterations = config.nsec3_iterations;
    param.salt = config.nsec3_salt;
    dns::RRset param_set(apex, dns::RRType::kNSEC3PARAM, 0);
    param_set.add(param);
    zone.put(std::move(param_set));

    struct HashedName {
      Bytes hash;
      dns::Name name;
    };
    std::vector<HashedName> hashed;
    for (const auto& name : nsec3_names) {
      if (config.nsec3_opt_out && zone.is_delegation(name) &&
          zone.find(name, dns::RRType::kDS) == nullptr) {
        continue;  // opt-out: insecure delegations are not in the chain
      }
      hashed.push_back(
          {nsec3_hash(name, config.nsec3_salt, config.nsec3_iterations),
           name});
    }
    std::sort(hashed.begin(), hashed.end(),
              [](const HashedName& a, const HashedName& b) {
                return a.hash < b.hash;
              });
    for (std::size_t i = 0; i < hashed.size(); ++i) {
      const auto& cur = hashed[i];
      const auto& next = hashed[(i + 1) % hashed.size()];
      dns::Nsec3Rdata nsec3;
      nsec3.hash_algorithm = 1;
      nsec3.flags = config.nsec3_opt_out ? dns::kNsec3FlagOptOut : 0;
      nsec3.iterations = config.nsec3_iterations;
      nsec3.salt = config.nsec3_salt;
      nsec3.next_hashed = next.hash;
      nsec3.types = bitmap_types(zone, cur.name, zone.is_delegation(cur.name),
                                 dns::RRType::kNSEC3, true);
      nsec3.types.erase(dns::RRType::kNSEC3);  // never in its own bitmap
      dns::RRset rrset(apex.child(base32hex_encode(cur.hash)),
                       dns::RRType::kNSEC3, negative_ttl);
      rrset.add(nsec3);
      zone.put(std::move(rrset));
    }
  }

  // 3. Signatures.
  auto zsks = keys.active_with_role(now, KeyRole::kZsk);
  std::erase_if(zsks, [](const ZoneKey* k) { return k->revoked(); });
  auto ksks = keys.active_with_role(now, KeyRole::kKsk);
  // dnssec-signzone falls back to signing everything with the KSK when no
  // ZSK is available, and RFC 4035 requires every algorithm in the DNSKEY
  // RRset to sign the zone data — a KSK whose algorithm has no ZSK must
  // therefore co-sign the data RRsets.
  std::vector<const ZoneKey*> zone_signers = zsks.empty() ? ksks : zsks;
  if (!zsks.empty()) {
    for (const auto* ksk : ksks) {
      if (ksk->revoked()) continue;
      const bool covered = std::any_of(
          zone_signers.begin(), zone_signers.end(), [&](const ZoneKey* k) {
            return k->algorithm() == ksk->algorithm();
          });
      if (!covered) zone_signers.push_back(ksk);
    }
  }

  // All RRSIGs at one owner form a single RRset, whatever they cover.
  std::map<dns::Name, dns::RRset, dns::Name::Less> signatures;
  const auto add_sig = [&](const dns::Name& owner, std::uint32_t ttl,
                           dns::RrsigRdata sig) {
    auto it = signatures.find(owner);
    if (it == signatures.end()) {
      it = signatures
               .emplace(owner, dns::RRset(owner, dns::RRType::kRRSIG, ttl))
               .first;
    }
    it->second.add(std::move(sig));
  };
  for (const auto* rrset : zone.all_rrsets()) {
    if (rrset->type() == dns::RRType::kRRSIG) continue;
    const bool at_cut = zone.is_delegation(rrset->owner());
    if (at_cut && rrset->type() != dns::RRType::kDS &&
        rrset->type() != dns::RRType::kNSEC &&
        rrset->type() != dns::RRType::kNSEC3) {
      continue;  // NS and glue at/below cuts are not signed
    }
    if (!rrset->owner().is_subdomain_of(apex)) continue;
    const auto cut = zone.covering_delegation(rrset->owner());
    if (cut && *cut != rrset->owner()) continue;  // occluded glue

    if (rrset->type() == dns::RRType::kDNSKEY) {
      // KSKs sign the key set; revoked keys must also self-sign (RFC 5011).
      std::vector<const ZoneKey*> signers = ksks;
      if (signers.empty()) signers = zone_signers;
      for (const auto& key : keys.keys()) {
        if (key.revoked() && key.is_published(now)) {
          const bool already =
              std::any_of(signers.begin(), signers.end(),
                          [&](const ZoneKey* k) { return k == &key; });
          if (!already) signers.push_back(&key);
        }
      }
      for (const auto* key : signers) {
        add_sig(rrset->owner(), rrset->ttl(),
                make_rrsig(*rrset, *key, apex, inception, expiration));
      }
    } else {
      for (const auto* key : zone_signers) {
        add_sig(rrset->owner(), rrset->ttl(),
                make_rrsig(*rrset, *key, apex, inception, expiration));
      }
    }
  }
  for (auto& [owner, sigset] : signatures) zone.put(std::move(sigset));
  return zone;
}

}  // namespace dfx::zone
