// The zone-signing engine: our dnssec-signzone.
//
// Takes an unsigned zone plus a key store and produces a signed zone:
// DNSKEY RRset from the key directory, RRSIGs over every authoritative
// RRset, and a complete NSEC or NSEC3 chain (with NSEC3PARAM, iterations,
// salt and opt-out handling per RFC 5155).
#pragma once

#include <cstdint>
#include <optional>

#include "util/bytes.h"
#include "util/simclock.h"
#include "zone/key.h"
#include "zone/zone.h"

namespace dfx::zone {

/// Negative-proof style for a signed zone.
enum class DenialMode : std::uint8_t { kNsec, kNsec3 };

struct SigningConfig {
  DenialMode denial = DenialMode::kNsec;
  std::uint16_t nsec3_iterations = 0;  // RFC 9276 says 0
  Bytes nsec3_salt;                    // RFC 9276 says empty
  bool nsec3_opt_out = false;

  /// Signature validity window relative to signing time.
  UnixTime inception_offset = kHour;      // backdate 1h for clock skew
  UnixTime validity = 30 * kDay;          // BIND default

  /// Publish CDS/CDNSKEY records for the active KSKs (RFC 7344), so a
  /// parental agent can synchronize the DS set without manual registrar
  /// interaction — the automation §5.5.2 of the paper notes it could not
  /// rely on in the wild.
  bool publish_cds = false;

  bool operator==(const SigningConfig&) const = default;
};

/// Create one RRSIG over `rrset` using `key`. Exposed separately so error
/// injectors can produce signatures with deliberately wrong parameters.
dns::RrsigRdata make_rrsig(const dns::RRset& rrset, const ZoneKey& key,
                           const dns::Name& apex, UnixTime inception,
                           UnixTime expiration,
                           std::optional<std::uint8_t> labels_override =
                               std::nullopt);

/// Verify one RRSIG against a DNSKEY (crypto only; validity windows and key
/// matching are the analyzer's concern).
[[nodiscard]] bool verify_rrsig(const dns::RRset& rrset,
                                const dns::RrsigRdata& sig,
                  const dns::DnskeyRdata& key);

/// Sign `unsigned_zone`: returns a new zone with DNSKEY/RRSIG/NSEC(3)
/// records added. Pre-existing DNSSEC records in the input are discarded
/// (dnssec-signzone semantics). Keys marked revoked still co-sign the
/// DNSKEY RRset (RFC 5011) but nothing else.
Zone sign_zone(const Zone& unsigned_zone, const KeyStore& keys,
               const SigningConfig& config, UnixTime now);

/// Build a DS record for `key` at digest `type` (dnssec-dsfromkey).
dns::DsRdata make_ds(const ZoneKey& key, crypto::DigestType type);
dns::DsRdata make_ds_from_dnskey(const dns::Name& owner,
                                 const dns::DnskeyRdata& dnskey,
                                 crypto::DigestType type);

/// Strip all DNSSEC record types from a zone (the inverse of signing).
Zone strip_dnssec(const Zone& signed_zone);

}  // namespace dfx::zone
