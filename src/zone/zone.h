// Zone data model: all RRsets of one zone, in canonical name order.
#pragma once

#include <map>
#include <optional>
#include <vector>

#include "dnscore/name.h"
#include "dnscore/rrset.h"

namespace dfx::zone {

/// One zone's records, keyed by (owner, type). Owners are kept in canonical
/// DNSSEC order, which the NSEC chain builder and the negative-answer logic
/// both rely on.
class Zone {
 public:
  explicit Zone(dns::Name apex) : apex_(std::move(apex)) {}

  const dns::Name& apex() const { return apex_; }

  bool empty() const { return records_.empty(); }

  /// Add one record (merged into its RRset; the RRset TTL is the TTL of the
  /// first record added).
  void add(const dns::ResourceRecord& record);
  void add(const dns::Name& owner, dns::RRType type, std::uint32_t ttl,
           dns::Rdata rdata);

  /// Replace or insert a whole RRset.
  void put(dns::RRset rrset);

  /// Remove an RRset; true if present.
  bool remove(const dns::Name& owner, dns::RRType type);

  /// Remove a single rdata from an RRset (dropping the RRset when empty).
  bool remove_rdata(const dns::Name& owner, dns::RRType type,
                    const dns::Rdata& rdata);

  /// Remove every record at an owner name.
  void remove_name(const dns::Name& owner);

  const dns::RRset* find(const dns::Name& owner, dns::RRType type) const;
  dns::RRset* find(const dns::Name& owner, dns::RRType type);

  /// All RRsets at one owner.
  std::vector<const dns::RRset*> at(const dns::Name& owner) const;

  /// Does any record exist at or below `name`?
  bool name_exists(const dns::Name& name) const;
  bool name_or_descendant_exists(const dns::Name& name) const;

  /// Owner names in canonical order.
  std::vector<dns::Name> owner_names() const;

  /// Visit every RRset in canonical owner order without materializing the
  /// pointer vector all_rrsets() builds — for hot paths that walk the zone
  /// once (e.g. the zonelint admission scan on every ZoneStore upsert).
  template <typename Fn>
  void for_each_rrset(Fn&& fn) const {
    for (const auto& [name, by_type] : records_) {
      for (const auto& [type, rrset] : by_type) fn(rrset);
    }
  }

  /// All RRsets in canonical owner order.
  std::vector<const dns::RRset*> all_rrsets() const;

  /// Is `name` a delegation point (has NS but is not the apex)?
  bool is_delegation(const dns::Name& name) const;

  /// The deepest delegation point above-or-at `name`, if any (zone cuts
  /// hide everything below them).
  std::optional<dns::Name> covering_delegation(const dns::Name& name) const;

  /// Flatten to records (zone-file order: apex first, then canonical).
  std::vector<dns::ResourceRecord> to_records() const;

  /// SOA convenience accessors.
  const dns::SoaRdata* soa() const;
  void bump_serial();

 private:
  dns::Name apex_;
  std::map<dns::Name, std::map<dns::RRType, dns::RRset>, dns::Name::Less>
      records_;
};

}  // namespace dfx::zone
