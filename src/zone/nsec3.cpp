#include "zone/nsec3.h"

#include "crypto/sha1.h"
#include "util/codec.h"

namespace dfx::zone {

Bytes nsec3_hash(const dns::Name& name, ByteView salt,
                 std::uint16_t iterations) {
  Bytes input = name.to_canonical_wire();
  Bytes digest;
  for (std::uint32_t i = 0; i <= iterations; ++i) {
    crypto::Sha1 h;
    h.update(input);
    h.update(salt);
    const auto d = h.finish();
    digest.assign(d.begin(), d.end());
    input = digest;
  }
  return digest;
}

std::string nsec3_hash_label(const dns::Name& name, ByteView salt,
                             std::uint16_t iterations) {
  return base32hex_encode(nsec3_hash(name, salt, iterations));
}

dns::Name nsec3_owner(const dns::Name& name, const dns::Name& apex,
                      ByteView salt, std::uint16_t iterations) {
  return apex.child(nsec3_hash_label(name, salt, iterations));
}

}  // namespace dfx::zone
