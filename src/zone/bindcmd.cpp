#include "zone/bindcmd.h"

namespace dfx::zone {
namespace {

std::string arg_or(const std::map<std::string, std::string>& args,
                   const std::string& key, const std::string& dflt) {
  const auto it = args.find(key);
  return it == args.end() ? dflt : it->second;
}

}  // namespace

std::string instruction_kind_name(InstructionKind kind) {
  switch (kind) {
    case InstructionKind::kSignZone:
      return "Sign the zone";
    case InstructionKind::kRemoveIncorrectDs:
      return "Remove the incorrect DS record";
    case InstructionKind::kUploadDs:
      return "Upload the DS record";
    case InstructionKind::kGenerateKsk:
      return "Generate a KSK";
    case InstructionKind::kSyncAuthServers:
      return "Synchronize the DNS authoritative server";
    case InstructionKind::kGenerateZsk:
      return "Generate ZSK";
    case InstructionKind::kReduceTtl:
      return "Reduce TTL of a specific record";
    case InstructionKind::kRemoveRevokedKey:
      return "Remove the revoked key";
    case InstructionKind::kDeactivateKey:
      return "Deactivate the key";
    case InstructionKind::kWaitTtl:
      return "Wait out the TTL";
  }
  return "Unknown instruction";
}

std::string BindCommand::render() const {
  switch (kind) {
    case CommandKind::kDnssecKeygen:
      return "cd <key_dir> && dnssec-keygen" +
             std::string(arg_or(args, "ksk", "0") == "1" ? " -f KSK" : "") +
             " -a " + arg_or(args, "algorithm", "RSASHA256") + " -b " +
             arg_or(args, "bits", "2048") + " -n ZONE " +
             arg_or(args, "zone", ".");
    case CommandKind::kDnssecSignzone: {
      std::string out = "cd <key_dir> && dnssec-signzone -N INCREMENT";
      if (arg_or(args, "nsec3", "0") == "1") {
        out += " -3 " + arg_or(args, "salt", "-");
        out += " -H " + arg_or(args, "iterations", "0");
        if (arg_or(args, "optout", "0") == "1") out += " -A";
      }
      out += " -S -o " + arg_or(args, "zone", ".") +
             " -t <zone_dir>/" + arg_or(args, "zone_file", "db.unsigned");
      return out;
    }
    case CommandKind::kDnssecSettime:
      return "dnssec-settime -" + arg_or(args, "flag", "D") + " " +
             arg_or(args, "when", "now") + " <key_dir>/K" +
             arg_or(args, "zone", ".") + "+NNN+" +
             arg_or(args, "key_tag", "00000") + ".key";
    case CommandKind::kDnssecDsFromKey:
      return "cd <key_dir> && dnssec-dsfromkey -" +
             arg_or(args, "digest", "2") + " K" + arg_or(args, "zone", ".") +
             "+NNN+" + arg_or(args, "key_tag", "00000") + ".key";
    case CommandKind::kUploadDsToParent:
      return "[manual] Upload the DS record for key_tag=" +
             arg_or(args, "key_tag", "?") + " of zone " +
             arg_or(args, "zone", "?") +
             " to the parent zone via your registrar";
    case CommandKind::kRemoveDsFromParent:
      return "[manual] Remove the DS record referencing key_tag=" +
             arg_or(args, "key_tag", "?") + " of zone " +
             arg_or(args, "zone", "?") + " from the parent via your registrar";
    case CommandKind::kSyncServers:
      return "rsync <zone_dir>/" + arg_or(args, "zone_file", "db.signed") +
             " <secondary>:<zone_dir>/ && ssh <secondary> rndc reload " +
             arg_or(args, "zone", ".");
    case CommandKind::kReduceTtl:
      return "[edit] Set the TTL of " + arg_or(args, "owner", "?") + " " +
             arg_or(args, "type", "?") + " to " + arg_or(args, "ttl", "?") +
             " in the zone file, then re-sign";
    case CommandKind::kWaitTtl:
      return "[wait] Wait " + arg_or(args, "seconds", "?") +
             "s for the old records to expire from resolver caches";
    case CommandKind::kRemoveKeyFile:
      return "rm <key_dir>/K" + arg_or(args, "zone", ".") + "+NNN+" +
             arg_or(args, "key_tag", "00000") + ".{key,private}";
    case CommandKind::kPublishCds:
      return "dnssec-signzone ... -P (publish CDS/CDNSKEY for " +
             arg_or(args, "zone", ".") +
             "; the parent's parental agent synchronizes the DS set per "
             "RFC 7344)";
  }
  return "<unknown command>";
}

BindCommand cmd_keygen(const dns::Name& zone, crypto::DnssecAlgorithm alg,
                       std::size_t bits, bool ksk) {
  BindCommand cmd;
  cmd.kind = CommandKind::kDnssecKeygen;
  cmd.args["zone"] = zone.to_string();
  cmd.args["algorithm"] = crypto::algorithm_mnemonic(alg);
  cmd.args["algorithm_number"] = std::to_string(static_cast<int>(alg));
  cmd.args["bits"] = std::to_string(bits);
  cmd.args["ksk"] = ksk ? "1" : "0";
  return cmd;
}

BindCommand cmd_signzone(const SignZoneParams& params) {
  BindCommand cmd;
  cmd.kind = CommandKind::kDnssecSignzone;
  cmd.args["zone"] = params.zone.to_string();
  cmd.args["zone_file"] = "db." + params.zone.to_string() + "unsigned";
  cmd.args["nsec3"] = params.nsec3 ? "1" : "0";
  cmd.args["iterations"] = std::to_string(params.nsec3_iterations);
  cmd.args["salt"] = params.nsec3_salt_hex;
  cmd.args["optout"] = params.opt_out ? "1" : "0";
  return cmd;
}

BindCommand cmd_settime_delete(const dns::Name& zone, std::uint16_t key_tag,
                               UnixTime when) {
  BindCommand cmd;
  cmd.kind = CommandKind::kDnssecSettime;
  cmd.args["flag"] = "D";
  cmd.args["zone"] = zone.to_string();
  cmd.args["key_tag"] = std::to_string(key_tag);
  cmd.args["when"] = format_dnssec_time(when);
  return cmd;
}

BindCommand cmd_settime_revoke(const dns::Name& zone, std::uint16_t key_tag,
                               UnixTime when) {
  BindCommand cmd;
  cmd.kind = CommandKind::kDnssecSettime;
  cmd.args["flag"] = "R";
  cmd.args["zone"] = zone.to_string();
  cmd.args["key_tag"] = std::to_string(key_tag);
  cmd.args["when"] = format_dnssec_time(when);
  return cmd;
}

BindCommand cmd_dsfromkey(const dns::Name& zone, std::uint16_t key_tag,
                          crypto::DigestType digest) {
  BindCommand cmd;
  cmd.kind = CommandKind::kDnssecDsFromKey;
  cmd.args["zone"] = zone.to_string();
  cmd.args["key_tag"] = std::to_string(key_tag);
  cmd.args["digest"] = std::to_string(static_cast<int>(digest));
  return cmd;
}

BindCommand cmd_upload_ds(const dns::Name& zone, std::uint16_t key_tag,
                          crypto::DigestType digest) {
  BindCommand cmd;
  cmd.kind = CommandKind::kUploadDsToParent;
  cmd.args["zone"] = zone.to_string();
  cmd.args["key_tag"] = std::to_string(key_tag);
  cmd.args["digest"] = std::to_string(static_cast<int>(digest));
  return cmd;
}

BindCommand cmd_remove_ds(const dns::Name& zone, std::uint16_t key_tag,
                          const std::string& digest_hex) {
  BindCommand cmd;
  cmd.kind = CommandKind::kRemoveDsFromParent;
  cmd.args["zone"] = zone.to_string();
  cmd.args["key_tag"] = std::to_string(key_tag);
  if (!digest_hex.empty()) cmd.args["digest_hex"] = digest_hex;
  return cmd;
}

BindCommand cmd_sync_servers(const dns::Name& zone) {
  BindCommand cmd;
  cmd.kind = CommandKind::kSyncServers;
  cmd.args["zone"] = zone.to_string();
  cmd.args["zone_file"] = "db." + zone.to_string() + "signed";
  return cmd;
}

BindCommand cmd_reduce_ttl(const dns::Name& owner, const std::string& type,
                           std::uint32_t new_ttl) {
  BindCommand cmd;
  cmd.kind = CommandKind::kReduceTtl;
  cmd.args["owner"] = owner.to_string();
  cmd.args["type"] = type;
  cmd.args["ttl"] = std::to_string(new_ttl);
  return cmd;
}

BindCommand cmd_wait_ttl(std::uint32_t ttl_seconds) {
  BindCommand cmd;
  cmd.kind = CommandKind::kWaitTtl;
  cmd.args["seconds"] = std::to_string(ttl_seconds);
  return cmd;
}

BindCommand cmd_publish_cds(const dns::Name& zone) {
  BindCommand cmd;
  cmd.kind = CommandKind::kPublishCds;
  cmd.args["zone"] = zone.to_string();
  return cmd;
}

BindCommand cmd_remove_key_file(const dns::Name& zone, std::uint16_t key_tag) {
  BindCommand cmd;
  cmd.kind = CommandKind::kRemoveKeyFile;
  cmd.args["zone"] = zone.to_string();
  cmd.args["key_tag"] = std::to_string(key_tag);
  return cmd;
}

}  // namespace dfx::zone
