#include "zone/zone.h"

#include "util/check.hpp"

namespace dfx::zone {

void Zone::add(const dns::ResourceRecord& record) {
  add(record.owner, record.type, record.ttl, record.rdata);
}

void Zone::add(const dns::Name& owner, dns::RRType type, std::uint32_t ttl,
               dns::Rdata rdata) {
  // Zone contents originate in untrusted masterfiles/wire transfers; assert
  // the RFC 1035 name bound at the mutation boundary so an oversized owner
  // cannot enter the store.
  DFX_DCHECK(owner.wire_length() <= 255);
  auto& by_type = records_[owner];
  auto it = by_type.find(type);
  if (it == by_type.end()) {
    dns::RRset rrset(owner, type, ttl);
    rrset.add(std::move(rdata));
    by_type.emplace(type, std::move(rrset));
  } else {
    it->second.add(std::move(rdata));
  }
}

void Zone::put(dns::RRset rrset) {
  auto& by_type = records_[rrset.owner()];
  by_type.insert_or_assign(rrset.type(), std::move(rrset));
}

bool Zone::remove(const dns::Name& owner, dns::RRType type) {
  auto it = records_.find(owner);
  if (it == records_.end()) return false;
  const bool removed = it->second.erase(type) > 0;
  if (it->second.empty()) records_.erase(it);
  return removed;
}

bool Zone::remove_rdata(const dns::Name& owner, dns::RRType type,
                        const dns::Rdata& rdata) {
  auto it = records_.find(owner);
  if (it == records_.end()) return false;
  auto tit = it->second.find(type);
  if (tit == it->second.end()) return false;
  const bool removed = tit->second.remove(rdata);
  if (tit->second.empty()) it->second.erase(tit);
  if (it->second.empty()) records_.erase(it);
  return removed;
}

void Zone::remove_name(const dns::Name& owner) { records_.erase(owner); }

const dns::RRset* Zone::find(const dns::Name& owner, dns::RRType type) const {
  const auto it = records_.find(owner);
  if (it == records_.end()) return nullptr;
  const auto tit = it->second.find(type);
  return tit == it->second.end() ? nullptr : &tit->second;
}

dns::RRset* Zone::find(const dns::Name& owner, dns::RRType type) {
  auto it = records_.find(owner);
  if (it == records_.end()) return nullptr;
  auto tit = it->second.find(type);
  return tit == it->second.end() ? nullptr : &tit->second;
}

std::vector<const dns::RRset*> Zone::at(const dns::Name& owner) const {
  std::vector<const dns::RRset*> out;
  const auto it = records_.find(owner);
  if (it == records_.end()) return out;
  out.reserve(it->second.size());
  for (const auto& [type, rrset] : it->second) out.push_back(&rrset);
  return out;
}

bool Zone::name_exists(const dns::Name& name) const {
  return records_.find(name) != records_.end();
}

bool Zone::name_or_descendant_exists(const dns::Name& name) const {
  // Canonical order puts descendants of `name` immediately after it.
  auto it = records_.lower_bound(name);
  return it != records_.end() && it->first.is_subdomain_of(name);
}

std::vector<dns::Name> Zone::owner_names() const {
  std::vector<dns::Name> out;
  out.reserve(records_.size());
  for (const auto& [name, _] : records_) out.push_back(name);
  return out;
}

std::vector<const dns::RRset*> Zone::all_rrsets() const {
  std::vector<const dns::RRset*> out;
  for (const auto& [name, by_type] : records_) {
    for (const auto& [type, rrset] : by_type) out.push_back(&rrset);
  }
  return out;
}

bool Zone::is_delegation(const dns::Name& name) const {
  if (name == apex_) return false;
  return find(name, dns::RRType::kNS) != nullptr;
}

std::optional<dns::Name> Zone::covering_delegation(
    const dns::Name& name) const {
  dns::Name cur = name;
  while (cur != apex_ && cur.label_count() > apex_.label_count()) {
    if (is_delegation(cur)) return cur;
    cur = cur.parent();
  }
  return std::nullopt;
}

std::vector<dns::ResourceRecord> Zone::to_records() const {
  std::vector<dns::ResourceRecord> out;
  // Apex SOA first (zone-file convention), then everything else canonical.
  if (const auto* soa_set = find(apex_, dns::RRType::kSOA)) {
    const auto recs = soa_set->to_records();
    out.insert(out.end(), recs.begin(), recs.end());
  }
  for (const auto* rrset : all_rrsets()) {
    if (rrset->owner() == apex_ && rrset->type() == dns::RRType::kSOA) {
      continue;
    }
    const auto recs = rrset->to_records();
    out.insert(out.end(), recs.begin(), recs.end());
  }
  return out;
}

const dns::SoaRdata* Zone::soa() const {
  const auto* rrset = find(apex_, dns::RRType::kSOA);
  if (rrset == nullptr || rrset->empty()) return nullptr;
  return std::get_if<dns::SoaRdata>(&rrset->rdatas().front());
}

void Zone::bump_serial() {
  auto* rrset = find(apex_, dns::RRType::kSOA);
  if (rrset == nullptr || rrset->empty()) return;
  auto rdatas = rrset->rdatas();
  auto soa = std::get<dns::SoaRdata>(rdatas.front());
  soa.serial += 1;
  dns::RRset updated(apex_, dns::RRType::kSOA, rrset->ttl());
  updated.add(soa);
  put(std::move(updated));
}

}  // namespace dfx::zone
