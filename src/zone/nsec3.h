// NSEC3 hashing (RFC 5155 §5).
#pragma once

#include <cstdint>
#include <string>

#include "dnscore/name.h"
#include "util/bytes.h"

namespace dfx::zone {

/// Iterated SHA-1 hash of a name: H(x) = SHA1(x || salt), applied
/// `iterations + 1` times over the canonical wire form of `name`.
Bytes nsec3_hash(const dns::Name& name, ByteView salt,
                 std::uint16_t iterations);

/// The base32hex label form used as the NSEC3 owner name.
std::string nsec3_hash_label(const dns::Name& name, ByteView salt,
                             std::uint16_t iterations);

/// Owner name of an NSEC3 record: hash-label prepended to the zone apex.
dns::Name nsec3_owner(const dns::Name& name, const dns::Name& apex,
                      ByteView salt, std::uint16_t iterations);

}  // namespace dfx::zone
