#include "zone/key.h"

#include <cstdio>

namespace dfx::zone {

ZoneKey::ZoneKey(dns::Name zone, KeyRole role, crypto::KeyPair material,
                 UnixTime created)
    : zone_(std::move(zone)),
      role_(role),
      material_(std::move(material)),
      publish_(created),
      activate_(created) {}

bool ZoneKey::is_published(UnixTime now) const {
  if (publish_ == kUnsetTime || now < publish_) return false;
  if (delete_ != kUnsetTime && now >= delete_) return false;
  return true;
}

bool ZoneKey::is_active(UnixTime now) const {
  if (!is_published(now)) return false;
  if (activate_ == kUnsetTime || now < activate_) return false;
  // Revoked keys still *sign* (RFC 5011 requires a revoked key to sign the
  // DNSKEY RRset) but are not used for general zone data; the signer makes
  // that distinction.
  return true;
}

dns::DnskeyRdata ZoneKey::to_dnskey() const {
  dns::DnskeyRdata rdata;
  rdata.flags = dns::kDnskeyFlagZone;
  if (role_ == KeyRole::kKsk) rdata.flags |= dns::kDnskeyFlagSep;
  if (revoked_) rdata.flags |= dns::kDnskeyFlagRevoke;
  rdata.protocol = 3;
  rdata.algorithm = static_cast<std::uint8_t>(material_.algorithm);
  rdata.public_key = material_.public_key;
  return rdata;
}

std::uint16_t ZoneKey::tag() const { return to_dnskey().key_tag(); }

std::uint16_t ZoneKey::pre_revoke_tag() const {
  dns::DnskeyRdata rdata = to_dnskey();
  rdata.flags &= static_cast<std::uint16_t>(~dns::kDnskeyFlagRevoke);
  return rdata.key_tag();
}

std::string ZoneKey::file_base() const {
  char buf[32];
  std::snprintf(buf, sizeof buf, "+%03d+%05u",
                static_cast<int>(material_.algorithm), tag());
  return "K" + zone_.to_string() + buf;
}

Bytes ZoneKey::sign(ByteView message) const {
  return crypto::sign_message(material_, message);
}

ZoneKey& KeyStore::generate(Rng& rng, KeyRole role,
                            crypto::DnssecAlgorithm alg, UnixTime now,
                            std::size_t nominal_bits) {
  crypto::KeyPair material = crypto::generate_key(rng, alg, nominal_bits);
  keys_.emplace_back(zone_, role, std::move(material), now);
  return keys_.back();  // dfx-lint: allow(unchecked-front-back): just emplaced
}

ZoneKey& KeyStore::adopt(ZoneKey key) {
  keys_.push_back(std::move(key));
  return keys_.back();  // dfx-lint: allow(unchecked-front-back): just pushed
}

ZoneKey* KeyStore::find_by_tag(std::uint16_t tag) {
  for (auto& key : keys_) {
    if (key.tag() == tag) return &key;
  }
  return nullptr;
}

const ZoneKey* KeyStore::find_by_tag(std::uint16_t tag) const {
  for (const auto& key : keys_) {
    if (key.tag() == tag) return &key;
  }
  return nullptr;
}

bool KeyStore::remove_by_tag(std::uint16_t tag) {
  for (auto it = keys_.begin(); it != keys_.end(); ++it) {
    if (it->tag() == tag) {
      keys_.erase(it);
      return true;
    }
  }
  return false;
}

std::vector<const ZoneKey*> KeyStore::published(UnixTime now) const {
  std::vector<const ZoneKey*> out;
  for (const auto& key : keys_) {
    if (key.is_published(now)) out.push_back(&key);
  }
  return out;
}

std::vector<const ZoneKey*> KeyStore::active(UnixTime now) const {
  std::vector<const ZoneKey*> out;
  for (const auto& key : keys_) {
    if (key.is_active(now)) out.push_back(&key);
  }
  return out;
}

std::vector<const ZoneKey*> KeyStore::active_with_role(UnixTime now,
                                                       KeyRole role) const {
  std::vector<const ZoneKey*> out;
  for (const auto& key : keys_) {
    if (key.role() == role && key.is_active(now)) out.push_back(&key);
  }
  return out;
}

}  // namespace dfx::zone
