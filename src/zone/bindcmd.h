// The BIND command vocabulary DFixer emits.
//
// Every remediation step is represented both ways the paper needs it:
//  - render() produces the exact CLI string an operator would run
//    (dnssec-keygen, dnssec-signzone, dnssec-settime, dnssec-dsfromkey,
//    plus the manual registrar/ops steps), and
//  - the executor in the evaluation harness applies the same state change
//    to a sandboxed zone ("auto-apply" mode).
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "crypto/algorithm.h"
#include "dnscore/name.h"
#include "util/simclock.h"

namespace dfx::zone {

/// High-level instruction classes, matching Table 7 of the paper.
enum class InstructionKind : std::uint8_t {
  kSignZone,
  kRemoveIncorrectDs,
  kUploadDs,
  kGenerateKsk,
  kSyncAuthServers,
  kGenerateZsk,
  kReduceTtl,
  kRemoveRevokedKey,
  // Supporting steps referenced by Figure 8 but folded into the above in
  // Table 7 accounting:
  kDeactivateKey,
  kWaitTtl,
};

std::string instruction_kind_name(InstructionKind kind);

/// Concrete command kinds (one instruction may expand to several commands).
enum class CommandKind : std::uint8_t {
  kDnssecKeygen,
  kDnssecSignzone,
  kDnssecSettime,
  kDnssecDsFromKey,
  kUploadDsToParent,    // manual, via registrar
  kRemoveDsFromParent,  // manual, via registrar
  kSyncServers,         // rsync + rndc reload on the secondary
  kReduceTtl,           // edit zone file TTL
  kWaitTtl,             // wait out a cache TTL
  kRemoveKeyFile,       // delete K*.key/.private
  kPublishCds,          // RFC 7344: publish CDS/CDNSKEY, parental agent
                        // synchronizes the DS set (no registrar step)
};

/// One executable step: kind + named parameters.
struct BindCommand {
  CommandKind kind = CommandKind::kDnssecSignzone;
  /// Named parameters, e.g. {"zone","par.a.com."},{"algorithm","RSASHA256"}.
  std::map<std::string, std::string> args;

  /// Exact CLI (or manual-step description) string.
  std::string render() const;
};

/// One high-level instruction with its expansion into commands.
struct Instruction {
  InstructionKind kind = InstructionKind::kSignZone;
  std::string description;  // operator-facing sentence
  std::vector<BindCommand> commands;
};

// ---- Command builders (parameters populated from zone context) ----------

BindCommand cmd_keygen(const dns::Name& zone, crypto::DnssecAlgorithm alg,
                       std::size_t bits, bool ksk);

struct SignZoneParams {
  dns::Name zone;
  bool nsec3 = false;
  std::uint16_t nsec3_iterations = 0;
  std::string nsec3_salt_hex = "-";
  bool opt_out = false;
};
BindCommand cmd_signzone(const SignZoneParams& params);

BindCommand cmd_settime_delete(const dns::Name& zone, std::uint16_t key_tag,
                               UnixTime when);
BindCommand cmd_settime_revoke(const dns::Name& zone, std::uint16_t key_tag,
                               UnixTime when);
BindCommand cmd_dsfromkey(const dns::Name& zone, std::uint16_t key_tag,
                          crypto::DigestType digest);
BindCommand cmd_upload_ds(const dns::Name& zone, std::uint16_t key_tag,
                          crypto::DigestType digest);
/// `digest_hex` (optional) pins the exact DS record when several share a
/// key tag; empty removes every DS with the tag.
BindCommand cmd_remove_ds(const dns::Name& zone, std::uint16_t key_tag,
                          const std::string& digest_hex = "");
BindCommand cmd_sync_servers(const dns::Name& zone);
BindCommand cmd_reduce_ttl(const dns::Name& owner, const std::string& type,
                           std::uint32_t new_ttl);
BindCommand cmd_wait_ttl(std::uint32_t ttl_seconds);
BindCommand cmd_remove_key_file(const dns::Name& zone, std::uint16_t key_tag);
BindCommand cmd_publish_cds(const dns::Name& zone);

}  // namespace dfx::zone
