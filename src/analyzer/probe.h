// The probe stage: exhaustively query every authoritative server of every
// zone on the path from the (sandbox) root to the query domain, the way
// `dnsviz probe` does, and collect the raw responses for grok.
#pragma once

#include <map>
#include <string>
#include <vector>

#include "authserver/farm.h"
#include "dnscore/name.h"
#include "util/simclock.h"

namespace dfx::analyzer {

/// Everything one server said about one zone.
struct ServerProbe {
  std::string server;
  bool reachable = true;
  authserver::QueryResult dnskey;      // <apex> DNSKEY
  authserver::QueryResult soa;         // <apex> SOA
  authserver::QueryResult ns;          // <apex> NS
  authserver::QueryResult apex_a;      // <apex> A (positive-data probe)
  authserver::QueryResult nsec3param;  // <apex> NSEC3PARAM
  authserver::QueryResult nxdomain;    // <random-label>.<apex> A
  /// A label chosen to sort canonically after every real name, so the
  /// covering NSEC is the wrap-around record (exercises Incorrect Last NSEC).
  authserver::QueryResult nxdomain_last;
  authserver::QueryResult nodata;      // <apex> MX (type that never exists)
};

/// Everything collected about one zone, including the parent-side view.
struct ZoneProbe {
  dns::Name apex;
  std::vector<ServerProbe> servers;
  /// Parent-side responses (from the parent zone's servers): DS for this
  /// apex and the delegation NS RRset. Empty for the root zone.
  std::vector<ServerProbe> parent_servers;
  std::vector<authserver::QueryResult> parent_ds;
  std::vector<authserver::QueryResult> parent_ns;
};

struct ProbeData {
  dns::Name query_domain;
  UnixTime time = 0;
  /// Zones root-first down to the query zone.
  std::vector<ZoneProbe> chain;
};

/// Probe all servers for each zone in `zone_chain` (root first; each entry
/// must be an ancestor of the next and of `query_domain`).
ProbeData probe(const authserver::ServerFarm& farm,
                const std::vector<dns::Name>& zone_chain,
                const dns::Name& query_domain, UnixTime now);

/// The fixed non-existent name the prober asks for under `apex` (grok needs
/// it to interpret the NXDOMAIN probe — including the case where a wildcard
/// turns it into a synthesized positive answer).
dns::Name nx_probe_name(const dns::Name& apex);

/// The sorts-last probe name (`zzzzzzzz-…`) whose covering NSEC must be the
/// chain's wrap-around record.
dns::Name last_probe_name(const dns::Name& apex);

}  // namespace dfx::analyzer
