#include "analyzer/probe.h"

#include "util/metrics.h"

namespace dfx::analyzer {
namespace {

// A label that never exists in replicated zones; used for the negative
// response probe, mirroring DNSViz's random non-existent sub-label query.
constexpr const char* kNxLabel = "dnsviz-nxdomain-probe";
// Sorts after every label that appears in replicated zones (0xFA > any
// ASCII letter), so its covering NSEC is the wrap-around record.
constexpr const char* kNxLastLabel = "zzzzzzzz-dnsviz-last";

ServerProbe probe_server(const authserver::AuthServer& server,
                         const dns::Name& apex) {
  ServerProbe out;
  out.server = server.name();
  out.dnskey = server.query(apex, dns::RRType::kDNSKEY);
  out.reachable = out.dnskey.reachable;
  if (!out.reachable) return out;
  out.soa = server.query(apex, dns::RRType::kSOA);
  out.ns = server.query(apex, dns::RRType::kNS);
  out.apex_a = server.query(apex, dns::RRType::kA);
  out.nsec3param = server.query(apex, dns::RRType::kNSEC3PARAM);
  out.nxdomain = server.query(apex.child(kNxLabel), dns::RRType::kA);
  out.nxdomain_last = server.query(apex.child(kNxLastLabel), dns::RRType::kA);
  out.nodata = server.query(apex, dns::RRType::kMX);
  return out;
}

}  // namespace

dns::Name nx_probe_name(const dns::Name& apex) {
  return apex.child(kNxLabel);
}

dns::Name last_probe_name(const dns::Name& apex) {
  return apex.child(kNxLastLabel);
}

ProbeData probe(const authserver::ServerFarm& farm,
                const std::vector<dns::Name>& zone_chain,
                const dns::Name& query_domain, UnixTime now) {
  // Cached references: probe() is called per snapshot in tight loops, so
  // the registry lookup happens once (thread-safe magic statics).
  static auto& probe_hist =
      metrics::Registry::global().histogram("stage.analyze.probe");
  static auto& probe_count = metrics::Registry::global().counter("analyze.probes");
  metrics::ScopedTimer timer(probe_hist);
  probe_count.add(1);
  ProbeData data;
  data.query_domain = query_domain;
  data.time = now;
  for (std::size_t i = 0; i < zone_chain.size(); ++i) {
    ZoneProbe zp;
    zp.apex = zone_chain[i];
    for (const auto* server : farm.servers_for(zp.apex)) {
      zp.servers.push_back(probe_server(*server, zp.apex));
    }
    if (i > 0) {
      const dns::Name& parent_apex = zone_chain[i - 1];
      for (const auto* server : farm.servers_for(parent_apex)) {
        ServerProbe pp;
        pp.server = server->name();
        pp.reachable = !server->lame();
        zp.parent_servers.push_back(pp);
        // Ask the parent-side view explicitly: a server may host both sides
        // of the cut, but the prober needs the delegation as the parent
        // publishes it.
        zp.parent_ds.push_back(
            server->query_in_zone(parent_apex, zp.apex, dns::RRType::kDS));
        zp.parent_ns.push_back(
            server->query_in_zone(parent_apex, zp.apex, dns::RRType::kNS));
      }
    }
    data.chain.push_back(std::move(zp));
  }
  return data;
}

}  // namespace dfx::analyzer
