#include "analyzer/errorcode.h"

namespace dfx::analyzer {
namespace {

struct CodeInfo {
  ErrorCode code;
  ErrorCategory category;
  const char* name;
  int marker;      // 0 = none
  bool critical;   // breaks at least one validator path
};

constexpr CodeInfo kCodes[] = {
    {ErrorCode::kMissingKskForAlgorithm, ErrorCategory::kDelegation,
     "Missing KSK for Algorithm", 5, true},
    {ErrorCode::kInvalidDigest, ErrorCategory::kDelegation, "Invalid Digest",
     1, true},
    {ErrorCode::kInconsistentDnskeyBetweenServers, ErrorCategory::kKey,
     "Inconsistent DNSKEY b/w Servers", 3, true},
    {ErrorCode::kRevokedKey, ErrorCategory::kKey, "Revoked Key", 0, true},
    {ErrorCode::kBadKeyLength, ErrorCategory::kKey, "Bad Key Length", 0,
     true},
    {ErrorCode::kIncompleteAlgorithmSetup, ErrorCategory::kAlgorithm,
     "Incomplete Algorithm Setup", 2, false},
    {ErrorCode::kMissingSignature, ErrorCategory::kSignature,
     "Missing Signature", 7, true},
    {ErrorCode::kExpiredSignature, ErrorCategory::kSignature,
     "Expired Signature", 4, true},
    {ErrorCode::kInvalidSignature, ErrorCategory::kSignature,
     "Invalid Signature", 6, true},
    {ErrorCode::kIncorrectSigner, ErrorCategory::kSignature,
     "Incorrect Signer", 0, true},
    {ErrorCode::kNotYetValidSignature, ErrorCategory::kSignature,
     "Not Yet Valid Signature", 0, true},
    {ErrorCode::kIncorrectSignatureLabels, ErrorCategory::kSignature,
     "Incorrect Signature Labels", 0, true},
    {ErrorCode::kBadSignatureLength, ErrorCategory::kSignature,
     "Bad Signature Length", 0, true},
    {ErrorCode::kOriginalTtlExceedsRrsetTtl, ErrorCategory::kTtl,
     "Original TTL Exceeds RRSet TTL", 8, false},
    {ErrorCode::kTtlBeyondExpiration, ErrorCategory::kTtl,
     "TTL Beyond Expiration", 0, false},
    {ErrorCode::kMissingNonexistenceProof, ErrorCategory::kNsecCommon,
     "Missing Non-existence Proof", 7, true},
    {ErrorCode::kIncorrectTypeBitmap, ErrorCategory::kNsecCommon,
     "Incorrect Type Bitmap", 0, true},
    {ErrorCode::kBadNonexistenceProof, ErrorCategory::kNsecCommon,
     "Bad Non-existence Proof", 0, true},
    {ErrorCode::kIncorrectLastNsec, ErrorCategory::kNsecOnly,
     "Incorrect Last NSEC", 0, true},
    {ErrorCode::kNonzeroIterationCount, ErrorCategory::kNsec3Only,
     "Nonzero Iteration Count (NZIC)", 9, false},
    {ErrorCode::kInconsistentAncestorForNxdomain, ErrorCategory::kNsec3Only,
     "Inconsistent Ancestor for NXDOMAIN", 0, true},
    {ErrorCode::kIncorrectClosestEncloserProof, ErrorCategory::kNsec3Only,
     "Incorrect Closest Encloser Proof", 0, true},
    {ErrorCode::kInvalidNsec3Hash, ErrorCategory::kNsec3Only,
     "Invalid NSEC3 Hash", 0, true},
    {ErrorCode::kInvalidNsec3OwnerName, ErrorCategory::kNsec3Only,
     "Invalid NSEC3 Owner Name", 0, true},
    {ErrorCode::kIncorrectOptOutFlag, ErrorCategory::kNsec3Only,
     "Incorrect Opt-out Flag", 0, true},
    {ErrorCode::kUnsupportedNsec3Algorithm, ErrorCategory::kNsec3Only,
     "Unsupported NSEC3 Algorithm", 0, true},
    // Companions.
    {ErrorCode::kNoSecureEntryPoint, ErrorCategory::kCompanion,
     "No Secure Entry Point", 0, true},
    {ErrorCode::kMissingSignatureForAlgorithm, ErrorCategory::kCompanion,
     "Missing Signature for Algorithm", 0, false},
    {ErrorCode::kMissingDnskeyForDs, ErrorCategory::kCompanion,
     "Missing DNSKEY for DS", 0, true},
    {ErrorCode::kLameDelegation, ErrorCategory::kCompanion, "Lame Delegation",
     0, true},
    {ErrorCode::kMissingNsInParent, ErrorCategory::kCompanion,
     "Missing NS in Parent", 0, true},
    // Resource limits (KeyTrap-class).
    {ErrorCode::kCollidingKeyTags, ErrorCategory::kResourceLimit,
     "Colliding Key Tags", 0, false},
    {ErrorCode::kExcessiveSignatureValidations, ErrorCategory::kResourceLimit,
     "Excessive Signature Validations", 0, true},
    {ErrorCode::kExcessiveNsec3Iterations, ErrorCategory::kResourceLimit,
     "Excessive NSEC3 Iterations", 0, true},
    {ErrorCode::kValidatorWorkBudgetExceeded, ErrorCategory::kResourceLimit,
     "Validator Work Budget Exceeded", 0, true},
};

const CodeInfo& info(ErrorCode code) {
  for (const auto& ci : kCodes) {
    if (ci.code == code) return ci;
  }
  return kCodes[0];  // unreachable for valid enum values
}

}  // namespace

ErrorCategory category_of(ErrorCode code) { return info(code).category; }

std::string error_code_name(ErrorCode code) { return info(code).name; }

std::string error_category_name(ErrorCategory category) {
  switch (category) {
    case ErrorCategory::kDelegation:
      return "Delegation";
    case ErrorCategory::kKey:
      return "Key";
    case ErrorCategory::kAlgorithm:
      return "Algorithm";
    case ErrorCategory::kSignature:
      return "Signature";
    case ErrorCategory::kTtl:
      return "TTL";
    case ErrorCategory::kNsecCommon:
      return "NSEC(3)";
    case ErrorCategory::kNsecOnly:
      return "NSEC(Only)";
    case ErrorCategory::kNsec3Only:
      return "NSEC3(Only)";
    case ErrorCategory::kCompanion:
      return "Companion";
    case ErrorCategory::kResourceLimit:
      return "Resource Limit";
  }
  return "?";
}

std::optional<int> paper_marker(ErrorCode code) {
  const int m = info(code).marker;
  if (m == 0) return std::nullopt;
  return m;
}

bool is_critical(ErrorCode code) { return info(code).critical; }

const std::vector<ErrorCode>& table3_codes() {
  static const std::vector<ErrorCode> codes = [] {
    std::vector<ErrorCode> out;
    for (const auto& ci : kCodes) {
      if (ci.category == ErrorCategory::kCompanion ||
          ci.category == ErrorCategory::kResourceLimit) {
        continue;
      }
      out.push_back(ci.code);
    }
    return out;
  }();
  return codes;
}

std::set<ErrorCode> code_set(const std::vector<ErrorInstance>& errors) {
  std::set<ErrorCode> out;
  for (const auto& e : errors) out.insert(e.code);
  return out;
}

}  // namespace dfx::analyzer
