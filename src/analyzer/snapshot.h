// Snapshot: the grok output for one query domain at one point in time —
// the unit of the paper's measurement dataset and the input to ZReplicator
// and DFixer. Serializes to/from a DNSViz-like JSON schema.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "analyzer/errorcode.h"
#include "crypto/algorithm.h"
#include "dnscore/name.h"
#include "json/json.h"
#include "util/bytes.h"
#include "util/simclock.h"

namespace dfx::analyzer {

/// The six snapshot categories from §3.2.1 of the paper.
enum class SnapshotStatus : std::uint8_t {
  kSignedValid,           // sv
  kSignedValidMisconfig,  // svm
  kSignedBogus,           // sb
  kInsecure,              // is
  kLame,                  // lm
  kIncomplete,            // ic
};

std::string status_name(SnapshotStatus status);       // "sv", "svm", ...
std::optional<SnapshotStatus> status_from_name(std::string_view name);

/// One DNSKEY as observed (meta-parameters ZReplicator needs).
struct KeyMeta {
  std::uint16_t flags = 0x0100;
  std::uint8_t algorithm = 8;
  std::uint16_t key_tag = 0;
  std::size_t key_bits = 0;
  /// False when the key material's length is impossible for the algorithm.
  bool length_plausible = true;

  bool is_ksk() const { return (flags & 0x0001) != 0; }
  bool is_revoked() const { return (flags & 0x0080) != 0; }
};

/// One DS as observed at the parent.
struct DsMeta {
  std::uint16_t key_tag = 0;
  std::uint8_t algorithm = 8;
  std::uint8_t digest_type = 2;
  /// Hex of the digest bytes (identifies the exact record when several DS
  /// entries share a key tag).
  std::string digest_hex;
  /// Whether a DNSKEY matching (tag, algorithm) existed in the child.
  bool matches_dnskey = false;
  /// Whether the DS fully validated (matched a non-revoked DNSKEY and the
  /// digest verified) — i.e. it establishes a secure entry point.
  bool valid = false;
};

/// Zone meta-parameters extracted from a snapshot (Fig. 7 step 2): exactly
/// the knobs ZReplicator mirrors when rebuilding the zone locally.
struct ZoneMeta {
  dns::Name apex;
  int server_count = 2;
  std::vector<KeyMeta> keys;
  std::vector<DsMeta> ds_records;
  bool uses_nsec3 = false;
  std::uint16_t nsec3_iterations = 0;
  std::string nsec3_salt_hex;  // empty = no salt
  bool nsec3_opt_out = false;
  std::uint32_t max_ttl = 3600;
  /// The zone contains a catch-all wildcard (changes negative-answer
  /// behaviour: NXDOMAIN probes synthesize answers instead).
  bool has_wildcard = false;
};

/// One diagnostic snapshot of one query domain.
struct Snapshot {
  dns::Name query_domain;
  dns::Name query_zone;  // the zone containing query_domain
  UnixTime time = 0;
  SnapshotStatus status = SnapshotStatus::kInsecure;
  std::vector<ErrorInstance> errors;      // Table 3 codes, zone-attributed
  std::vector<ErrorInstance> companions;  // context codes for DResolver
  ZoneMeta target_meta;

  /// Errors whose zone is the query zone itself (DFixer's remit: §5.5
  /// limits fixing to the leaf zone and its delegation in the parent).
  std::vector<ErrorInstance> target_zone_errors() const;

  bool has_error(ErrorCode code) const;
  bool has_companion(ErrorCode code) const;
};

json::Value snapshot_to_json(const Snapshot& snapshot);
std::optional<Snapshot> snapshot_from_json(const json::Value& value);

}  // namespace dfx::analyzer
