// The grok stage: interpret probe data, build the chain of trust from the
// (sandbox) root to the query domain, and emit error codes wherever
// validation fails — our equivalent of `dnsviz grok`.
#pragma once

#include "analyzer/probe.h"
#include "analyzer/snapshot.h"

namespace dfx::analyzer {

struct GrokConfig {
  /// A minority of validators treat nonzero NSEC3 iterations as fatal
  /// (Daniluk et al., RFC 9276); DNSViz itself reports it as a warning-
  /// level violation, which is the default here.
  bool nzic_is_fatal = false;
};

/// Validate a probed chain and produce the diagnostic snapshot.
Snapshot grok(const ProbeData& data, const GrokConfig& config = {});

}  // namespace dfx::analyzer
