// The grok stage: interpret probe data, build the chain of trust from the
// (sandbox) root to the query domain, and emit error codes wherever
// validation fails — our equivalent of `dnsviz grok`.
#pragma once

#include "analyzer/probe.h"
#include "analyzer/snapshot.h"

namespace dfx::analyzer {

struct GrokConfig {
  /// A minority of validators treat nonzero NSEC3 iterations as fatal
  /// (Daniluk et al., RFC 9276); DNSViz itself reports it as a warning-
  /// level violation, which is the default here.
  bool nzic_is_fatal = false;

  // ---- KeyTrap hardening (CVE-2023-50387/50868) ------------------------
  // Work budgets enforced while validating one zone of the chain. A zone
  // that demands more work than the budget allows is abandoned with
  // kValidatorWorkBudgetExceeded (EDE 49) instead of burning CPU, the way
  // patched BIND/Unbound cap validation effort. Defaults are far above
  // anything a well-configured zone needs (the replication corpus peaks at
  // ~40 signature checks and 20 NSEC3 iterations per zone) but far below
  // what the KeyTrap shapes demand.

  /// Maximum signature-verification attempts per zone. Colliding key tags
  /// multiply attempts: every candidate key matching an RRSIG's
  /// (key tag, algorithm) pair must be tried before the RRSIG fails.
  std::size_t max_sig_validations = 200;

  /// Candidate (RRSIG, DNSKEY) pairings tolerated for a single RRset
  /// before the zone is flagged with kExcessiveSignatureValidations.
  std::size_t sig_pairing_threshold = 16;

  /// NSEC3 iteration counts above this are refused outright with
  /// kExcessiveNsec3Iterations and never hashed (BIND and Unbound cap at
  /// 150; RFC 9276 wants 0).
  std::uint16_t max_nsec3_iterations = 150;

  /// Total NSEC3 hashing budget per zone, in SHA-1 applications (one
  /// nsec3_hash call costs iterations + 1).
  std::size_t max_hash_cost = 5000;
};

/// Validate a probed chain and produce the diagnostic snapshot.
Snapshot grok(const ProbeData& data, const GrokConfig& config = {});

}  // namespace dfx::analyzer
