// Extended DNS Errors (RFC 8914) mapping.
//
// The paper motivates its measurement with Nosyk et al.'s EDE study (3.1M
// domains emitting EDEs). This module closes the loop: given a grokked
// snapshot, produce the EDE codes a validating resolver would attach to its
// SERVFAIL — useful for cross-checking our taxonomy against resolver-side
// telemetry and exposed by dfixer_cli.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "analyzer/snapshot.h"

namespace dfx::analyzer {

/// The RFC 8914 info-codes a DNSSEC validator can emit (subset relevant to
/// validation failures).
enum class EdeCode : std::uint16_t {
  kOther = 0,
  kUnsupportedDnskeyAlgorithm = 1,
  kUnsupportedDsDigestType = 2,
  kDnssecIndeterminate = 5,
  kDnssecBogus = 6,
  kSignatureExpired = 7,
  kSignatureNotYetValid = 8,
  kDnskeyMissing = 9,
  kRrsigsMissing = 10,
  kNoZoneKeyBitSet = 11,
  kNsecMissing = 12,
  // Local extension (no IANA assignment yet): the budgeted validator
  // abandoned the zone because its KeyTrap-class resource cost exceeded
  // the configured work budget. Picked from the first-come-first-served
  // range well above the registered codes.
  kValidationBudgetExceeded = 49,
};

std::string ede_code_name(EdeCode code);
std::string ede_purpose(EdeCode code);  // RFC 8914 "Purpose" text

/// One emitted EDE: the info-code plus EXTRA-TEXT a resolver would attach.
struct EdeEntry {
  EdeCode code;
  std::string extra_text;

  bool operator==(const EdeEntry& o) const { return code == o.code; }
};

/// The EDE option(s) a validating resolver would return for this snapshot.
/// Empty unless the snapshot is bogus (sv/svm/is resolve fine; lm/ic fail
/// before validation). Ordered most-specific first; kDnssecBogus appears
/// once as the catch-all when a more specific code does not apply.
std::vector<EdeEntry> ede_for_snapshot(const Snapshot& snapshot);

/// The most specific EDE for a single error code (kDnssecBogus when no
/// dedicated code exists; advisory-only codes map to kOther).
EdeCode ede_for_error(ErrorCode code);

}  // namespace dfx::analyzer
