#include "analyzer/grok.h"

#include <algorithm>
#include <map>
#include <set>

#include "util/codec.h"
#include "util/metrics.h"
#include "zone/nsec3.h"
#include "zone/signer.h"

namespace dfx::analyzer {
namespace {

enum class TrustState { kSecure, kInsecure, kBogus };

/// An RRset plus the RRSIGs covering it, pulled out of a response section.
struct RRsetView {
  dns::RRset rrset;
  std::vector<dns::RrsigRdata> sigs;
  bool present = false;
};

RRsetView extract(const std::vector<dns::ResourceRecord>& section,
                  const dns::Name& owner, dns::RRType type) {
  RRsetView view;
  view.rrset = dns::RRset(owner, type, 0);
  bool ttl_set = false;
  for (const auto& rr : section) {
    if (rr.owner != owner) continue;
    if (rr.type == type) {
      if (!ttl_set) {
        view.rrset.set_ttl(rr.ttl);
        ttl_set = true;
      }
      view.rrset.add(rr.rdata);
      view.present = true;
    } else if (rr.type == dns::RRType::kRRSIG) {
      const auto* sig = std::get_if<dns::RrsigRdata>(&rr.rdata);
      if (sig != nullptr && sig->type_covered == type) {
        view.sigs.push_back(*sig);
      }
    }
  }
  return view;
}

/// All NSEC or NSEC3 views (any owner) in a response's authority section.
std::vector<RRsetView> extract_proofs(const authserver::QueryResult& result,
                                      dns::RRType type) {
  std::vector<RRsetView> out;
  std::set<std::string> seen;
  for (const auto& rr : result.authorities) {
    if (rr.type != type) continue;
    const std::string key = rr.owner.to_string();
    if (!seen.insert(key).second) continue;
    out.push_back(extract(result.authorities, rr.owner, type));
  }
  return out;
}

bool nsec_covers(const dns::Name& owner, const dns::Name& next,
                 const dns::Name& name) {
  if (owner < next) return owner < name && name < next;
  return name > owner || name < next;
}

bool hash_covers(const Bytes& owner_hash, const Bytes& next_hash,
                 const Bytes& target) {
  if (owner_hash < next_hash) {
    return owner_hash < target && target < next_hash;
  }
  return target > owner_hash || target < next_hash;
}

/// Expected signature length plausibility by algorithm family.
bool plausible_signature_length(std::uint8_t algorithm, std::size_t size) {
  const auto info = crypto::algorithm_info(algorithm);
  if (!info) return size > 0;
  if (info->rsa_family) return size >= 24;  // smallest real modulus we emit
  return size == 16;                        // Schnorr-64 signatures
}

/// Plausibility of DNSKEY public key material by algorithm family.
bool plausible_key_length(std::uint8_t algorithm, ByteView public_key) {
  const auto info = crypto::algorithm_info(algorithm);
  if (!info) return !public_key.empty();
  if (info->rsa_family) {
    crypto::RsaPublicKey pub;
    if (!crypto::RsaPublicKey::decode(public_key, pub)) return false;
    return pub.n.bit_length() >= 128;
  }
  return public_key.size() == 8;
}

std::size_t observed_key_bits(const dns::DnskeyRdata& key) {
  const auto info = crypto::algorithm_info(key.algorithm);
  if (info && info->rsa_family) {
    crypto::RsaPublicKey pub;
    if (crypto::RsaPublicKey::decode(key.public_key, pub)) {
      return pub.n.bit_length();
    }
    return key.public_key.size() * 8;
  }
  if (info) return info->default_key_bits;
  return key.public_key.size() * 8;
}

/// Collector with de-duplication on (code, zone).
class ErrorSink {
 public:
  void add(ErrorCode code, const dns::Name& zone, std::string detail) {
    ErrorInstance e{code, zone, std::move(detail)};
    auto& dst = category_of(code) == ErrorCategory::kCompanion ? companions_
                                                               : errors_;
    for (const auto& existing : dst) {
      if (existing == e) return;
    }
    dst.push_back(std::move(e));
  }

  bool has(ErrorCode code) const {
    const auto& src = category_of(code) == ErrorCategory::kCompanion
                          ? companions_
                          : errors_;
    return std::any_of(src.begin(), src.end(), [&](const ErrorInstance& e) {
      return e.code == code;
    });
  }

  std::vector<ErrorInstance> errors_;
  std::vector<ErrorInstance> companions_;
};

/// Validation context for one zone in the chain.
struct ZoneChecker {
  const ZoneProbe& zp;
  const GrokConfig& config;
  UnixTime now;
  ErrorSink& sink;

  // Filled during checking.
  std::vector<dns::DnskeyRdata> dnskeys{};  // union across servers
  std::vector<dns::DsRdata> ds_set{};       // union across parent servers
  std::vector<bool> ds_valid{};             // parallel to ds_set
  bool ds_absence_proven = false;
  std::vector<const dns::DnskeyRdata*> sep_keys{};  // DS-validated keys
  bool any_validation_failure = false;

  // KeyTrap work accounting (per zone; see GrokConfig).
  std::size_t sig_validations_spent = 0;
  std::size_t hash_cost_spent = 0;
  bool budget_exhausted = false;

  const dns::Name& apex() const { return zp.apex; }

  void note_failure() { any_validation_failure = true; }

  void note_budget_exhausted(const std::string& what) {
    budget_exhausted = true;
    sink.add(ErrorCode::kValidatorWorkBudgetExceeded, apex(), what);
    note_failure();
  }

  /// Charge one signature-verification attempt; false once the budget is
  /// gone (the caller must skip the crypto).
  bool charge_sig_validation() {
    if (budget_exhausted) return false;
    if (sig_validations_spent >= config.max_sig_validations) {
      note_budget_exhausted(
          "signature-validation budget of " +
          std::to_string(config.max_sig_validations) +
          " attempts exhausted while validating the zone");
      return false;
    }
    ++sig_validations_spent;
    return true;
  }

  /// Charge `cost` SHA-1 applications of NSEC3 hashing; false once the
  /// budget is gone.
  bool charge_hash_cost(std::size_t cost) {
    if (budget_exhausted) return false;
    if (hash_cost_spent + cost > config.max_hash_cost) {
      note_budget_exhausted(
          "NSEC3 hashing budget of " + std::to_string(config.max_hash_cost) +
          " SHA-1 applications exhausted while validating the zone");
      return false;
    }
    hash_cost_spent += cost;
    return true;
  }

  // ---- DNSKEY gathering & key-level checks -----------------------------

  void gather_dnskeys() {
    std::vector<std::set<Bytes>> per_server;
    for (const auto& sp : zp.servers) {
      if (!sp.reachable) continue;
      std::set<Bytes> wires;
      const auto view =
          extract(sp.dnskey.answers, apex(), dns::RRType::kDNSKEY);
      for (const auto& rdata : view.rrset.rdatas()) {
        wires.insert(dns::rdata_to_wire(rdata));
        const auto* key = std::get_if<dns::DnskeyRdata>(&rdata);
        if (key == nullptr) continue;
        const bool known = std::any_of(
            dnskeys.begin(), dnskeys.end(), [&](const dns::DnskeyRdata& k) {
              return dns::rdata_to_wire(dns::Rdata(k)) ==
                     dns::rdata_to_wire(dns::Rdata(*key));
            });
        if (!known) dnskeys.push_back(*key);
      }
      per_server.push_back(std::move(wires));
    }
    // Inconsistency across servers.
    for (std::size_t i = 1; i < per_server.size(); ++i) {
      if (per_server[i] != per_server[0]) {
        sink.add(ErrorCode::kInconsistentDnskeyBetweenServers, apex(),
                 "DNSKEY RRset differs between authoritative servers");
        note_failure();
        break;
      }
    }
    // Key-level checks.
    for (const auto& key : dnskeys) {
      if (!plausible_key_length(key.algorithm, key.public_key)) {
        sink.add(ErrorCode::kBadKeyLength, apex(),
                 "DNSKEY key_tag=" + std::to_string(key.key_tag()) +
                     " has an invalid key length for algorithm " +
                     std::to_string(key.algorithm));
        note_failure();
      }
    }
    // Colliding key tags (KeyTrap): tags are only hints, so collisions are
    // legal — but every extra key sharing an RRSIG's (tag, algorithm) pair
    // multiplies the validation attempts a resolver must make. Advisory on
    // its own; the pairing blowup check in check_rrset is what bites.
    std::map<std::pair<std::uint16_t, std::uint8_t>, std::size_t> tag_count;
    for (const auto& key : dnskeys) {
      ++tag_count[{key.key_tag(), key.algorithm}];
    }
    for (const auto& [tag_alg, count] : tag_count) {
      if (count < 2) continue;
      sink.add(ErrorCode::kCollidingKeyTags, apex(),
               std::to_string(count) + " DNSKEYs share key_tag=" +
                   std::to_string(tag_alg.first) + " algorithm=" +
                   std::to_string(tag_alg.second));
    }
  }

  void gather_ds() {
    std::set<Bytes> seen;
    for (const auto& result : zp.parent_ds) {
      const auto view = extract(result.answers, apex(), dns::RRType::kDS);
      for (const auto& rdata : view.rrset.rdatas()) {
        if (!seen.insert(dns::rdata_to_wire(rdata)).second) continue;
        const auto* ds = std::get_if<dns::DsRdata>(&rdata);
        if (ds != nullptr) ds_set.push_back(*ds);
      }
      if (!view.present &&
          (result.rcode == dns::RCode::kNoError ||
           result.rcode == dns::RCode::kNXDomain)) {
        // Negative answer for DS; proof quality checked by caller when
        // the parent is signed.
        ds_absence_proven =
            ds_absence_proven || !result.negative_proofs().empty();
      }
    }
  }

  // ---- DS ↔ DNSKEY linkage ---------------------------------------------

  void validate_ds(const dns::Name& parent_apex) {
    (void)parent_apex;
    ds_valid.assign(ds_set.size(), false);
    for (std::size_t di = 0; di < ds_set.size(); ++di) {
      const auto& ds = ds_set[di];
      const dns::DnskeyRdata* matched = nullptr;
      bool algorithm_present = false;
      bool revoked_link = false;
      std::uint16_t revoked_tag = 0;
      for (const auto& key : dnskeys) {
        if (key.algorithm != ds.algorithm) continue;
        algorithm_present = true;
        if (key.key_tag() == ds.key_tag) {
          matched = &key;
          break;
        }
        // A DS created before the key was revoked references the
        // pre-revocation tag; detect that linkage explicitly.
        if (key.is_revoked()) {
          dns::DnskeyRdata unrevoked = key;
          unrevoked.flags &= static_cast<std::uint16_t>(~0x0080);
          if (unrevoked.key_tag() == ds.key_tag) {
            revoked_link = true;
            revoked_tag = key.key_tag();
          }
        }
      }
      const std::string ds_id = "DS key_tag=" + std::to_string(ds.key_tag) +
                                " algorithm=" + std::to_string(ds.algorithm);
      if (matched == nullptr) {
        if (revoked_link) {
          sink.add(ErrorCode::kRevokedKey, apex(),
                   ds_id + " is linked to a revoked DNSKEY (key_tag=" +
                       std::to_string(revoked_tag) + ")");
          sink.add(ErrorCode::kNoSecureEntryPoint, apex(),
                   ds_id + " provides no secure entry point (key revoked)");
        } else if (!algorithm_present) {
          sink.add(ErrorCode::kMissingKskForAlgorithm, apex(),
                   ds_id + " references an algorithm with no DNSKEY");
        } else if (dnskeys.empty()) {
          sink.add(ErrorCode::kMissingDnskeyForDs, apex(),
                   ds_id + " has no DNSKEY RRset to match");
        } else {
          sink.add(ErrorCode::kMissingDnskeyForDs, apex(),
                   ds_id + " matches no DNSKEY");
        }
        continue;
      }
      if (matched->is_revoked()) {
        sink.add(ErrorCode::kRevokedKey, apex(),
                 ds_id + " references a DNSKEY with the REVOKE flag set");
        sink.add(ErrorCode::kNoSecureEntryPoint, apex(),
                 ds_id + " provides no secure entry point (key revoked)");
        continue;
      }
      const auto digest_type =
          static_cast<crypto::DigestType>(ds.digest_type);
      const Bytes expected = crypto::ds_digest(
          digest_type, apex().to_canonical_wire(),
          dns::rdata_to_wire(dns::Rdata(*matched)));
      if (expected.empty()) continue;  // unsupported digest type: DS ignored
      if (expected != ds.digest) {
        sink.add(ErrorCode::kInvalidDigest, apex(),
                 ds_id + " digest does not match the DNSKEY");
        continue;
      }
      sep_keys.push_back(matched);
      ds_valid[di] = true;
    }
    if (!ds_set.empty() && dnskeys.empty()) {
      sink.add(ErrorCode::kMissingDnskeyForDs, apex(),
               "DS present at the parent but the zone has no DNSKEY RRset");
      note_failure();
    }
    if (!ds_set.empty() && sep_keys.empty()) {
      sink.add(ErrorCode::kNoSecureEntryPoint, apex(),
               "no DS record establishes a secure entry point");
      note_failure();
    }
  }

  // ---- RRSIG validation --------------------------------------------------

  /// Validate the signatures over one RRset. `allowed_keys` is the key set
  /// a valid path may use. Returns true if at least one signature fully
  /// validates. Emits per-signature anomalies.
  bool check_rrset(const RRsetView& view,
                   const std::vector<const dns::DnskeyRdata*>& allowed_keys,
                   bool require_signature) {
    if (!view.present) return true;  // nothing to validate
    if (view.sigs.empty()) {
      if (require_signature) {
        sink.add(ErrorCode::kMissingSignature, apex(),
                 "no RRSIG covering " + view.rrset.owner().to_string() + "/" +
                     dns::rrtype_to_string(view.rrset.type()));
        note_failure();
      }
      return !require_signature;
    }
    // KeyTrap pairing blowup: the work a validator may have to perform on
    // this RRset is the number of (RRSIG, candidate DNSKEY) pairings, not
    // the number of RRSIGs — colliding key tags multiply candidates.
    std::size_t pairings = 0;
    for (const auto& sig : view.sigs) {
      for (const auto* key : allowed_keys) {
        if (key->key_tag() == sig.key_tag &&
            key->algorithm == sig.algorithm) {
          ++pairings;
        }
      }
    }
    if (pairings > config.sig_pairing_threshold) {
      sink.add(ErrorCode::kExcessiveSignatureValidations, apex(),
               "RRset " + view.rrset.owner().to_string() + "/" +
                   dns::rrtype_to_string(view.rrset.type()) + " demands " +
                   std::to_string(pairings) +
                   " candidate signature validations (threshold " +
                   std::to_string(config.sig_pairing_threshold) + ")");
      note_failure();
    }
    bool any_valid = false;
    for (const auto& sig : view.sigs) {
      bool sig_ok = true;
      const std::string sig_id =
          "RRSIG " + view.rrset.owner().to_string() + "/" +
          dns::rrtype_to_string(view.rrset.type()) +
          " key_tag=" + std::to_string(sig.key_tag);
      if (sig.expiration < now) {
        sink.add(ErrorCode::kExpiredSignature, apex(),
                 sig_id + " expired at " + format_dnssec_time(sig.expiration));
        sig_ok = false;
      }
      if (sig.inception > now) {
        sink.add(ErrorCode::kNotYetValidSignature, apex(),
                 sig_id + " not valid before " +
                     format_dnssec_time(sig.inception));
        sig_ok = false;
      }
      if (sig.signer != apex()) {
        sink.add(ErrorCode::kIncorrectSigner, apex(),
                 sig_id + " signer " + sig.signer.to_string() +
                     " is not the zone apex");
        sig_ok = false;
      }
      // RFC 4034 §3.1.3: labels excludes a leading "*"; a count *below* the
      // owner's marks a wildcard-synthesized answer, a count above it is
      // plainly invalid.
      const std::size_t expected_labels =
          view.rrset.owner().label_count() -
          (view.rrset.owner().leftmost_label() == "*" ? 1 : 0);
      dns::Name signing_owner = view.rrset.owner();
      if (sig.labels > expected_labels) {
        sink.add(ErrorCode::kIncorrectSignatureLabels, apex(),
                 sig_id + " labels field " + std::to_string(sig.labels) +
                     " exceeds the owner's label count " +
                     std::to_string(expected_labels));
        sig_ok = false;
      } else if (sig.labels < expected_labels) {
        // Wildcard expansion: rebuild the source of synthesis and verify
        // against it.
        dns::Name closest = view.rrset.owner();
        while (closest.label_count() > sig.labels) closest = closest.parent();
        signing_owner = closest.child("*");
      }
      if (!plausible_signature_length(sig.algorithm,
                                      sig.signature.size())) {
        sink.add(ErrorCode::kBadSignatureLength, apex(),
                 sig_id + " has an implausible signature length " +
                     std::to_string(sig.signature.size()));
        sig_ok = false;
      }
      if (sig.original_ttl < view.rrset.ttl()) {
        sink.add(ErrorCode::kOriginalTtlExceedsRrsetTtl, apex(),
                 sig_id + " original TTL " +
                     std::to_string(sig.original_ttl) +
                     " is below the served RRset TTL " +
                     std::to_string(view.rrset.ttl()));
        // warning-level: does not invalidate the signature
      }
      if (sig.expiration > now &&
          static_cast<UnixTime>(view.rrset.ttl()) > sig.expiration - now) {
        sink.add(ErrorCode::kTtlBeyondExpiration, apex(),
                 sig_id + " allows caching beyond signature expiration");
      }
      // Find the candidate signing keys among the allowed keys. Key tags
      // are not unique identifiers (RFC 4034 App. B), so a validator must
      // try *every* key matching the RRSIG's (tag, algorithm) pair — the
      // lever KeyTrap pulls. Each attempt is charged against the budget.
      std::vector<const dns::DnskeyRdata*> candidates;
      for (const auto* key : allowed_keys) {
        if (key->key_tag() == sig.key_tag &&
            key->algorithm == sig.algorithm) {
          candidates.push_back(key);
        }
      }
      if (candidates.empty()) {
        bool known_elsewhere = std::any_of(
            dnskeys.begin(), dnskeys.end(), [&](const dns::DnskeyRdata& k) {
              return k.key_tag() == sig.key_tag &&
                     k.algorithm == sig.algorithm;
            });
        if (!known_elsewhere) {
          sink.add(ErrorCode::kInvalidSignature, apex(),
                   sig_id + " was made by a key not in the DNSKEY RRset");
        }
        continue;
      }
      if (sig_ok) {
        // For wildcard expansions the signed owner differs from the served
        // owner; verify against the reconstructed source of synthesis.
        dns::RRset canonical(signing_owner, view.rrset.type(),
                             view.rrset.ttl());
        for (const auto& rdata : view.rrset.rdatas()) canonical.add(rdata);
        bool verified = false;
        bool abandoned = false;
        for (const auto* signer : candidates) {
          if (!charge_sig_validation()) {
            abandoned = true;
            break;
          }
          if (zone::verify_rrsig(canonical, sig, *signer)) {
            verified = true;
            break;
          }
        }
        if (!verified) {
          // Only claim the signature is invalid when every candidate was
          // actually tried; an abandoned check is a budget failure, not a
          // crypto one.
          if (!abandoned) {
            sink.add(ErrorCode::kInvalidSignature, apex(),
                     sig_id + " failed cryptographic verification");
          }
          sig_ok = false;
        }
      }
      any_valid = any_valid || sig_ok;
    }
    if (!any_valid) note_failure();
    return any_valid;
  }

  /// Per-zone RFC 4035 algorithm-completeness check over the data RRsets.
  void check_algorithm_completeness(
      const std::vector<const RRsetView*>& signed_sets) {
    std::set<std::uint8_t> dnskey_algorithms;
    for (const auto& key : dnskeys) {
      if (key.is_revoked()) continue;
      dnskey_algorithms.insert(key.algorithm);
    }
    if (dnskey_algorithms.size() < 2 && ds_set.empty()) {
      // Single-algorithm zones cannot have an incomplete setup unless the
      // DS side disagrees (handled below).
    }
    for (const auto* view : signed_sets) {
      if (!view->present || view->sigs.empty()) continue;
      std::set<std::uint8_t> sig_algorithms;
      for (const auto& sig : view->sigs) sig_algorithms.insert(sig.algorithm);
      for (std::uint8_t alg : dnskey_algorithms) {
        if (!sig_algorithms.contains(alg)) {
          sink.add(ErrorCode::kIncompleteAlgorithmSetup, apex(),
                   "RRset " + view->rrset.owner().to_string() + "/" +
                       dns::rrtype_to_string(view->rrset.type()) +
                       " lacks an RRSIG with algorithm " +
                       std::to_string(alg));
        }
      }
    }
    // DS algorithms must sign the DNSKEY RRset.
    std::set<std::uint8_t> ds_algorithms;
    for (const auto& ds : ds_set) ds_algorithms.insert(ds.algorithm);
    for (const auto& sp : zp.servers) {
      if (!sp.reachable) continue;
      const auto view =
          extract(sp.dnskey.answers, apex(), dns::RRType::kDNSKEY);
      std::set<std::uint8_t> sig_algorithms;
      for (const auto& sig : view.sigs) sig_algorithms.insert(sig.algorithm);
      for (std::uint8_t alg : ds_algorithms) {
        if (!sig_algorithms.contains(alg) && view.present) {
          sink.add(ErrorCode::kMissingSignatureForAlgorithm, apex(),
                   "no RRSIG with DS algorithm " + std::to_string(alg) +
                       " covers the DNSKEY RRset");
        }
      }
      break;  // one representative server suffices for this zone-level check
    }
  }
};

/// Validate the negative responses (NXDOMAIN and NODATA probes) from one
/// server of a signed zone. Emits NSEC/NSEC3 error codes and downgrades
/// `zone_state` for critical failures.
void validate_negative(ZoneChecker& checker, const ServerProbe& sp,
                       const dns::Name& apex,
                       const std::vector<const dns::DnskeyRdata*>& all_keys,
                       TrustState& zone_state, const GrokConfig& config) {
  ErrorSink& sink = checker.sink;
  const auto fail = [&](ErrorCode code, std::string detail) {
    sink.add(code, apex, std::move(detail));
    if (code != ErrorCode::kNonzeroIterationCount || config.nzic_is_fatal) {
      zone_state = TrustState::kBogus;
    }
  };
  const auto warn = [&](ErrorCode code, std::string detail) {
    sink.add(code, apex, std::move(detail));
  };

  // Which denial mechanism does the zone use?
  const auto nsec3_nx = extract_proofs(sp.nxdomain, dns::RRType::kNSEC3);
  const auto nsec_nx = extract_proofs(sp.nxdomain, dns::RRType::kNSEC);
  const bool uses_nsec3 = !nsec3_nx.empty();

  // The NSEC3PARAM record advertises the chain parameters: a nonzero
  // iteration count is a violation even when negative proofs are absent.
  {
    const auto param_view =
        extract(sp.nsec3param.answers, apex, dns::RRType::kNSEC3PARAM);
    for (const auto& rdata : param_view.rrset.rdatas()) {
      const auto* param = std::get_if<dns::Nsec3ParamRdata>(&rdata);
      if (param != nullptr && param->iterations > 0) {
        warn(ErrorCode::kNonzeroIterationCount,
             "NSEC3PARAM iterations=" + std::to_string(param->iterations) +
                 " (RFC 9276 requires 0)");
        if (config.nzic_is_fatal) zone_state = TrustState::kBogus;
      }
      if (param != nullptr &&
          param->iterations > config.max_nsec3_iterations) {
        fail(ErrorCode::kExcessiveNsec3Iterations,
             "NSEC3PARAM iterations=" + std::to_string(param->iterations) +
                 " exceeds the validator cap of " +
                 std::to_string(config.max_nsec3_iterations));
      }
    }
  }

  // Validate proof signatures (tampered-but-unsigned proofs surface as
  // ordinary signature failures).
  for (const auto* group : {&nsec3_nx, &nsec_nx}) {
    for (const auto& view : *group) {
      if (!checker.check_rrset(view, all_keys, true)) {
        zone_state = TrustState::kBogus;
      }
    }
  }

  if (sp.nxdomain.rcode == dns::RCode::kNXDomain && nsec3_nx.empty() &&
      nsec_nx.empty()) {
    fail(ErrorCode::kMissingNonexistenceProof,
         "NXDOMAIN response carries no NSEC or NSEC3 records");
    return;
  }

  const dns::Name nx_name = apex.child("dnsviz-nxdomain-probe");

  if (uses_nsec3) {
    // --- NSEC3 record sanity ---------------------------------------------
    struct Entry {
      Bytes owner_hash;
      const dns::Nsec3Rdata* rdata;
      dns::Name owner;
    };
    std::vector<Entry> entries;
    bool params_ok = true;
    std::optional<bool> opt_out_seen;
    // Sanity checks run over every NSEC3 seen in any negative response of
    // this server (the NXDOMAIN probes and the NODATA probe): chain-level
    // inconsistencies like mixed opt-out flags are visible only across the
    // union.
    std::vector<RRsetView> sanity_views = nsec3_nx;
    for (const auto& view :
         extract_proofs(sp.nxdomain_last, dns::RRType::kNSEC3)) {
      sanity_views.push_back(view);
    }
    for (const auto& view : extract_proofs(sp.nodata, dns::RRType::kNSEC3)) {
      sanity_views.push_back(view);
    }
    std::set<std::string> seen_owner;
    for (const auto& view : sanity_views) {
      if (!seen_owner.insert(view.rrset.owner().to_string()).second) {
        continue;
      }
      const bool in_nxdomain = std::any_of(
          nsec3_nx.begin(), nsec3_nx.end(), [&](const RRsetView& v) {
            return v.rrset.owner() == view.rrset.owner();
          });
      for (const auto& rdata : view.rrset.rdatas()) {
        const auto* n3 = std::get_if<dns::Nsec3Rdata>(&rdata);
        if (n3 == nullptr) continue;
        if (n3->hash_algorithm != 1) {
          fail(ErrorCode::kUnsupportedNsec3Algorithm,
               "NSEC3 hash algorithm " +
                   std::to_string(n3->hash_algorithm) + " is not defined");
          params_ok = false;
        }
        if (n3->iterations > 0) {
          warn(ErrorCode::kNonzeroIterationCount,
               "NSEC3 iterations=" + std::to_string(n3->iterations) +
                   " (RFC 9276 requires 0)");
          if (config.nzic_is_fatal) zone_state = TrustState::kBogus;
        }
        if (n3->iterations > config.max_nsec3_iterations) {
          // KeyTrap hash variant: refuse oversized iteration counts before
          // hashing anything (patched validators treat the zone as bogus
          // rather than paying the per-lookup SHA-1 bill).
          fail(ErrorCode::kExcessiveNsec3Iterations,
               "NSEC3 iterations=" + std::to_string(n3->iterations) +
                   " exceeds the validator cap of " +
                   std::to_string(config.max_nsec3_iterations));
          params_ok = false;
        }
        if (n3->next_hashed.size() != 20) {
          fail(ErrorCode::kInvalidNsec3Hash,
               "NSEC3 next-hashed field has length " +
                   std::to_string(n3->next_hashed.size()) +
                   ", expected 20 (SHA-1)");
          params_ok = false;
        }
        auto decoded = base32hex_decode(view.rrset.owner().leftmost_label());
        if (!decoded || decoded->size() != 20) {
          fail(ErrorCode::kInvalidNsec3OwnerName,
               "NSEC3 owner label " + view.rrset.owner().leftmost_label() +
                   " is not a valid SHA-1 base32hex hash");
          params_ok = false;
          continue;
        }
        if (opt_out_seen.has_value() && *opt_out_seen != n3->opt_out()) {
          fail(ErrorCode::kIncorrectOptOutFlag,
               "NSEC3 records disagree on the opt-out flag");
        }
        opt_out_seen = n3->opt_out();
        if (in_nxdomain) {
          entries.push_back({*std::move(decoded), n3, view.rrset.owner()});
        }
      }
    }
    if (!params_ok || entries.empty()) return;
    const Bytes& salt = entries.front().rdata->salt;
    const std::uint16_t iterations = entries.front().rdata->iterations;
    // Every hash costs iterations+1 SHA-1 applications, charged against
    // the zone's hashing budget; once exhausted, hash_of yields empty and
    // the walk below bails out instead of emitting bogus proof errors.
    const auto hash_of = [&](const dns::Name& name) -> Bytes {
      if (!checker.charge_hash_cost(static_cast<std::size_t>(iterations) +
                                    1)) {
        return {};
      }
      return zone::nsec3_hash(name, salt, iterations);
    };
    const auto find_match = [&](const dns::Name& name) -> const Entry* {
      const Bytes h = hash_of(name);
      if (h.empty()) return nullptr;
      for (const auto& e : entries) {
        if (e.owner_hash == h) return &e;
      }
      return nullptr;
    };
    const auto find_cover = [&](const dns::Name& name) -> const Entry* {
      const Bytes h = hash_of(name);
      if (h.empty()) return nullptr;
      for (const auto& e : entries) {
        if (hash_covers(e.owner_hash, e.rdata->next_hashed, h)) return &e;
      }
      return nullptr;
    };

    if (sp.nxdomain.rcode == dns::RCode::kNXDomain) {
      // Closest-encloser proof (RFC 5155 §8.4). For the probe name the
      // closest encloser is the apex and the next closer is the probe name.
      const Entry* ce = nullptr;
      dns::Name ce_name = nx_name;
      while (ce_name.label_count() >= apex.label_count()) {
        if (ce_name.label_count() < nx_name.label_count()) {
          ce = find_match(ce_name);
          if (ce != nullptr) break;
        }
        if (ce_name.is_root()) break;
        ce_name = ce_name.parent();
      }
      if (checker.budget_exhausted) {
        zone_state = TrustState::kBogus;
        return;
      }
      if (ce == nullptr) {
        if (find_cover(nx_name) != nullptr) {
          fail(ErrorCode::kInconsistentAncestorForNxdomain,
               "no NSEC3 record matches any ancestor of the denied name");
        } else {
          fail(ErrorCode::kBadNonexistenceProof,
               "NSEC3 records neither match nor cover the denied name");
        }
        return;
      }
      dns::Name next_closer = nx_name;
      while (next_closer.label_count() > ce_name.label_count() + 1) {
        next_closer = next_closer.parent();
      }
      const Entry* nc_cover = find_cover(next_closer);
      if (checker.budget_exhausted) {
        zone_state = TrustState::kBogus;
        return;
      }
      if (nc_cover == nullptr) {
        fail(ErrorCode::kIncorrectClosestEncloserProof,
             "no NSEC3 record covers the next-closer name " +
                 next_closer.to_string());
        return;
      }
      const dns::Name wildcard = ce_name.child("*");
      if (find_cover(wildcard) == nullptr &&
          find_match(wildcard) == nullptr && !nc_cover->rdata->opt_out() &&
          !checker.budget_exhausted) {
        fail(ErrorCode::kBadNonexistenceProof,
             "no NSEC3 record denies the wildcard " + wildcard.to_string());
      }
      if (checker.budget_exhausted) {
        zone_state = TrustState::kBogus;
        return;
      }
    }

    // NODATA probe (apex MX): the matching NSEC3's bitmap is authoritative.
    const auto nodata_proofs = extract_proofs(sp.nodata, dns::RRType::kNSEC3);
    for (const auto& view : nodata_proofs) {
      if (!checker.check_rrset(view, all_keys, true)) {
        zone_state = TrustState::kBogus;
      }
      for (const auto& rdata : view.rrset.rdatas()) {
        const auto* n3 = std::get_if<dns::Nsec3Rdata>(&rdata);
        if (n3 == nullptr) continue;
        auto decoded = base32hex_decode(view.rrset.owner().leftmost_label());
        if (!decoded || *decoded != hash_of(apex)) continue;
        if (n3->types.contains(dns::RRType::kMX)) {
          fail(ErrorCode::kIncorrectTypeBitmap,
               "NSEC3 bitmap asserts MX exists at the apex, but the server "
               "answered NODATA");
        }
        if (!n3->types.contains(dns::RRType::kSOA) ||
            !n3->types.contains(dns::RRType::kNS)) {
          fail(ErrorCode::kIncorrectTypeBitmap,
               "NSEC3 bitmap at the apex omits SOA/NS");
        }
      }
    }
    if (sp.nodata.rcode == dns::RCode::kNoError &&
        nodata_proofs.empty() &&
        extract_proofs(sp.nodata, dns::RRType::kNSEC).empty()) {
      fail(ErrorCode::kMissingNonexistenceProof,
           "NODATA response carries no NSEC or NSEC3 records");
    }
    return;
  }

  // --- NSEC ----------------------------------------------------------------
  if (sp.nxdomain.rcode == dns::RCode::kNXDomain) {
    bool covered = false;
    for (const auto& view : nsec_nx) {
      for (const auto& rdata : view.rrset.rdatas()) {
        const auto* nsec = std::get_if<dns::NsecRdata>(&rdata);
        if (nsec == nullptr) continue;
        if (nsec_covers(view.rrset.owner(), nsec->next, nx_name)) {
          covered = true;
        }
      }
    }
    if (!covered) {
      fail(ErrorCode::kBadNonexistenceProof,
           "no NSEC record covers the denied name " + nx_name.to_string());
    }
    // Wrap-around sanity via the sorts-last probe: the covering NSEC there
    // must be the final chain record pointing back to the apex.
    const auto last_proofs =
        extract_proofs(sp.nxdomain_last, dns::RRType::kNSEC);
    const dns::Name last_name = apex.child("zzzzzzzz-dnsviz-last");
    for (const auto& view : last_proofs) {
      if (!checker.check_rrset(view, all_keys, true)) {
        zone_state = TrustState::kBogus;
      }
      for (const auto& rdata : view.rrset.rdatas()) {
        const auto* nsec = std::get_if<dns::NsecRdata>(&rdata);
        if (nsec == nullptr) continue;
        if (nsec_covers(view.rrset.owner(), nsec->next, last_name) &&
            view.rrset.owner() > nsec->next && nsec->next != apex) {
          fail(ErrorCode::kIncorrectLastNsec,
               "the final NSEC record points to " + nsec->next.to_string() +
                   " instead of the zone apex");
        }
      }
    }
  }

  // NODATA bitmap check.
  const auto nodata_proofs = extract_proofs(sp.nodata, dns::RRType::kNSEC);
  for (const auto& view : nodata_proofs) {
    if (!checker.check_rrset(view, all_keys, true)) {
      zone_state = TrustState::kBogus;
    }
    if (view.rrset.owner() != apex) continue;
    for (const auto& rdata : view.rrset.rdatas()) {
      const auto* nsec = std::get_if<dns::NsecRdata>(&rdata);
      if (nsec == nullptr) continue;
      if (nsec->types.contains(dns::RRType::kMX)) {
        fail(ErrorCode::kIncorrectTypeBitmap,
             "NSEC bitmap asserts MX exists at the apex, but the server "
             "answered NODATA");
      }
      if (!nsec->types.contains(dns::RRType::kSOA) ||
          !nsec->types.contains(dns::RRType::kNS)) {
        fail(ErrorCode::kIncorrectTypeBitmap,
             "NSEC bitmap at the apex omits SOA/NS");
      }
    }
  }
  if (sp.nodata.rcode == dns::RCode::kNoError && nodata_proofs.empty() &&
      extract_proofs(sp.nodata, dns::RRType::kNSEC3).empty()) {
    fail(ErrorCode::kMissingNonexistenceProof,
         "NODATA response carries no NSEC or NSEC3 records");
  }
}

/// Extract the zone meta-parameters ZReplicator mirrors (Fig. 7 step 2).
ZoneMeta extract_meta(const ZoneProbe& zp, const ZoneChecker& checker) {
  ZoneMeta meta;
  meta.apex = zp.apex;
  meta.server_count = static_cast<int>(zp.servers.size());
  for (const auto& key : checker.dnskeys) {
    KeyMeta km;
    km.flags = key.flags;
    km.algorithm = key.algorithm;
    km.key_tag = key.key_tag();
    km.key_bits = observed_key_bits(key);
    km.length_plausible = plausible_key_length(key.algorithm, key.public_key);
    meta.keys.push_back(km);
  }
  for (std::size_t di = 0; di < checker.ds_set.size(); ++di) {
    const auto& ds = checker.ds_set[di];
    DsMeta dm;
    dm.key_tag = ds.key_tag;
    dm.algorithm = ds.algorithm;
    dm.digest_type = ds.digest_type;
    dm.digest_hex = hex_encode(ds.digest);
    dm.matches_dnskey = std::any_of(
        checker.dnskeys.begin(), checker.dnskeys.end(),
        [&](const dns::DnskeyRdata& k) {
          return k.key_tag() == ds.key_tag && k.algorithm == ds.algorithm;
        });
    dm.valid = di < checker.ds_valid.size() && checker.ds_valid[di];
    meta.ds_records.push_back(dm);
  }
  // Denial mechanism from the observed proofs.
  for (const auto& sp : zp.servers) {
    if (!sp.reachable) continue;
    const auto nsec3 = extract_proofs(sp.nxdomain, dns::RRType::kNSEC3);
    if (!nsec3.empty()) {
      meta.uses_nsec3 = true;
      for (const auto& rdata : nsec3.front().rrset.rdatas()) {
        const auto* n3 = std::get_if<dns::Nsec3Rdata>(&rdata);
        if (n3 != nullptr) {
          meta.nsec3_iterations = n3->iterations;
          meta.nsec3_salt_hex = hex_encode(n3->salt);
          meta.nsec3_opt_out = n3->opt_out();
          break;
        }
      }
    }
    const auto soa = extract(sp.soa.answers, zp.apex, dns::RRType::kSOA);
    if (soa.present) meta.max_ttl = soa.rrset.ttl();
    break;
  }
  return meta;
}

}  // namespace

Snapshot grok(const ProbeData& data, const GrokConfig& config) {
  static auto& grok_hist =
      metrics::Registry::global().histogram("stage.analyze.grok");
  static auto& grok_count = metrics::Registry::global().counter("analyze.groks");
  metrics::ScopedTimer timer(grok_hist);
  grok_count.add(1);
  Snapshot snapshot;
  snapshot.query_domain = data.query_domain;
  snapshot.time = data.time;
  if (data.chain.empty()) {
    snapshot.status = SnapshotStatus::kLame;
    return snapshot;
  }
  snapshot.query_zone = data.chain.back().apex;

  ErrorSink sink;
  TrustState state = TrustState::kSecure;  // root anchors the chain
  bool chain_lame = false;
  bool chain_incomplete = false;

  for (std::size_t zi = 0; zi < data.chain.size(); ++zi) {
    const ZoneProbe& zp = data.chain[zi];
    const bool is_target = zi + 1 == data.chain.size();

    // Lameness: every server unreachable.
    const bool all_lame = std::all_of(
        zp.servers.begin(), zp.servers.end(),
        [](const ServerProbe& sp) { return !sp.reachable; });
    if (zp.servers.empty() || all_lame) {
      sink.add(ErrorCode::kLameDelegation, zp.apex,
               "no authoritative server for the zone responds");
      chain_lame = true;
      break;
    }

    // Delegation completeness: the parent must publish NS for the child.
    if (zi > 0) {
      bool parent_has_ns = false;
      for (const auto& result : zp.parent_ns) {
        const auto view = extract(result.authorities, zp.apex,
                                  dns::RRType::kNS);
        const auto direct =
            extract(result.answers, zp.apex, dns::RRType::kNS);
        if (view.present || direct.present) {
          parent_has_ns = true;
          break;
        }
      }
      if (!parent_has_ns) {
        sink.add(ErrorCode::kMissingNsInParent, zp.apex,
                 "the parent zone has no NS records for this delegation");
        chain_incomplete = true;
        break;
      }
    }

    ZoneChecker checker{zp, config, data.time, sink};
    checker.gather_dnskeys();
    if (zi > 0) checker.gather_ds();

    const bool zone_signed = !checker.dnskeys.empty();

    // Trust-state transition at the delegation.
    const TrustState parent_state = state;
    TrustState zone_state = state;
    if (state == TrustState::kSecure && zi > 0) {
      if (checker.ds_set.empty()) {
        // Insecure delegation; the proof of DS absence must be present.
        // (Attribute a bad proof to the *parent* zone: its NSEC(3) chain.)
        if (!checker.ds_absence_proven && zone_signed) {
          sink.add(ErrorCode::kBadNonexistenceProof,
                   data.chain[zi - 1].apex,
                   "the parent provides no valid proof of DS absence for " +
                       zp.apex.to_string());
          zone_state = TrustState::kBogus;

        } else {
          zone_state = TrustState::kInsecure;
        }
      } else {
        checker.validate_ds(data.chain[zi - 1].apex);
        if (checker.sep_keys.empty()) {
          zone_state = TrustState::kBogus;
        }
      }
    } else if (zi == 0 && !zone_signed) {
      zone_state = TrustState::kInsecure;
    }

    if (zone_signed) {
      // Validate the DNSKEY RRset per server.
      std::vector<const dns::DnskeyRdata*> dnskey_signers;
      if (zi == 0 || checker.ds_set.empty() ||
          parent_state != TrustState::kSecure) {
        // Trust-anchor zone, island of trust, or a signed zone below an
        // insecure cut: there is no DS-anchored SEP, so internal
        // consistency is checked against the zone's own key set.
        for (const auto& key : checker.dnskeys) {
          dnskey_signers.push_back(&key);
        }
      } else {
        dnskey_signers = checker.sep_keys;
      }
      std::vector<const dns::DnskeyRdata*> all_keys;
      for (const auto& key : checker.dnskeys) all_keys.push_back(&key);

      std::vector<RRsetView> views_storage;
      // data_views keeps pointers into views_storage: size it once so the
      // buffer never reallocates.
      views_storage.reserve(zp.servers.size() * 4);
      std::vector<const RRsetView*> data_views;
      for (const auto& sp : zp.servers) {
        if (!sp.reachable) continue;
        const auto dnskey_view =
            extract(sp.dnskey.answers, zp.apex, dns::RRType::kDNSKEY);
        const bool dnskey_ok =
            checker.check_rrset(dnskey_view, dnskey_signers, true);
        if (!dnskey_ok) zone_state = TrustState::kBogus;

        for (auto [section, owner, type] :
             {std::tuple{&sp.soa.answers, zp.apex, dns::RRType::kSOA},
              std::tuple{&sp.ns.answers, zp.apex, dns::RRType::kNS},
              std::tuple{&sp.apex_a.answers, zp.apex, dns::RRType::kA}}) {
          views_storage.push_back(extract(*section, owner, type));
          auto& view = views_storage.back();  // dfx-lint: allow(unchecked-front-back): just pushed
          if (!view.present) continue;
          const bool ok = checker.check_rrset(view, all_keys, true);
          if (!ok) zone_state = TrustState::kBogus;
          data_views.push_back(&view);
        }

        // A wildcard may turn the NXDOMAIN probe into a synthesized
        // positive answer; validate it (the labels-field logic inside
        // check_rrset reconstructs the source of synthesis) and require
        // the accompanying next-closer proof (RFC 4035 §3.1.3.3).
        views_storage.push_back(extract(sp.nxdomain.answers,
                                        nx_probe_name(zp.apex),
                                        dns::RRType::kA));
        {
          auto& wc_view = views_storage.back();  // dfx-lint: allow(unchecked-front-back): just pushed
          if (wc_view.present) {
            if (!checker.check_rrset(wc_view, all_keys, true)) {
              zone_state = TrustState::kBogus;
            }
            if (sp.nxdomain.negative_proofs().empty()) {
              sink.add(ErrorCode::kMissingNonexistenceProof, zp.apex,
                       "wildcard-synthesized answer lacks the proof that "
                       "the query name itself does not exist");
              zone_state = TrustState::kBogus;
            }
          }
        }

        // Negative responses.
        validate_negative(checker, sp, zp.apex, all_keys, zone_state,
                          config);
      }
      checker.check_algorithm_completeness(data_views);
      if (checker.any_validation_failure &&
          zone_state == TrustState::kSecure) {
        zone_state = TrustState::kBogus;
      }
    }

    if (is_target) {
      snapshot.target_meta = extract_meta(zp, checker);
    }
    state = zone_state;
    if (state == TrustState::kBogus && !zone_signed &&
        checker.ds_set.empty()) {
      state = TrustState::kInsecure;
    }
    // Everything below an insecure cut is plain DNS for a validator,
    // whatever its internal DNSSEC state looks like.
    if (parent_state == TrustState::kInsecure) {
      state = TrustState::kInsecure;
    }
  }

  snapshot.errors = sink.errors_;
  snapshot.companions = sink.companions_;

  // Final categorisation (§3.2.1).
  if (chain_lame) {
    snapshot.status = SnapshotStatus::kLame;
  } else if (chain_incomplete) {
    snapshot.status = SnapshotStatus::kIncomplete;
  } else if (state == TrustState::kBogus) {
    snapshot.status = SnapshotStatus::kSignedBogus;
  } else if (state == TrustState::kInsecure) {
    snapshot.status = SnapshotStatus::kInsecure;
  } else if (!snapshot.errors.empty()) {
    snapshot.status = SnapshotStatus::kSignedValidMisconfig;
  } else {
    snapshot.status = SnapshotStatus::kSignedValid;
  }
  return snapshot;
}

}  // namespace dfx::analyzer
