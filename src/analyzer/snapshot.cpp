#include "analyzer/snapshot.h"

#include <algorithm>

namespace dfx::analyzer {
namespace {

json::Value error_to_json(const ErrorInstance& e) {
  json::Object obj;
  obj["code"] = json::Value(static_cast<std::int64_t>(e.code));
  obj["name"] = json::Value(error_code_name(e.code));
  obj["zone"] = json::Value(e.zone.to_string());
  obj["detail"] = json::Value(e.detail);
  return json::Value(std::move(obj));
}

std::optional<ErrorInstance> error_from_json(const json::Value& v) {
  if (!v.is_object()) return std::nullopt;
  ErrorInstance e;
  e.code = static_cast<ErrorCode>(v.get_int("code", 0));
  auto zone = dns::Name::parse(v.get_string("zone", "."));
  if (!zone) return std::nullopt;
  e.zone = *zone;
  e.detail = v.get_string("detail", "");
  return e;
}

}  // namespace

std::string status_name(SnapshotStatus status) {
  switch (status) {
    case SnapshotStatus::kSignedValid:
      return "sv";
    case SnapshotStatus::kSignedValidMisconfig:
      return "svm";
    case SnapshotStatus::kSignedBogus:
      return "sb";
    case SnapshotStatus::kInsecure:
      return "is";
    case SnapshotStatus::kLame:
      return "lm";
    case SnapshotStatus::kIncomplete:
      return "ic";
  }
  return "?";
}

std::optional<SnapshotStatus> status_from_name(std::string_view name) {
  if (name == "sv") return SnapshotStatus::kSignedValid;
  if (name == "svm") return SnapshotStatus::kSignedValidMisconfig;
  if (name == "sb") return SnapshotStatus::kSignedBogus;
  if (name == "is") return SnapshotStatus::kInsecure;
  if (name == "lm") return SnapshotStatus::kLame;
  if (name == "ic") return SnapshotStatus::kIncomplete;
  return std::nullopt;
}

std::vector<ErrorInstance> Snapshot::target_zone_errors() const {
  std::vector<ErrorInstance> out;
  for (const auto& e : errors) {
    if (e.zone == query_zone) out.push_back(e);
  }
  return out;
}

bool Snapshot::has_error(ErrorCode code) const {
  return std::any_of(errors.begin(), errors.end(),
                     [&](const ErrorInstance& e) { return e.code == code; });
}

bool Snapshot::has_companion(ErrorCode code) const {
  return std::any_of(
      companions.begin(), companions.end(),
      [&](const ErrorInstance& e) { return e.code == code; });
}

json::Value snapshot_to_json(const Snapshot& snapshot) {
  json::Object obj;
  obj["query_domain"] = json::Value(snapshot.query_domain.to_string());
  obj["query_zone"] = json::Value(snapshot.query_zone.to_string());
  obj["time"] = json::Value(snapshot.time);
  obj["status"] = json::Value(status_name(snapshot.status));

  json::Array errors;
  for (const auto& e : snapshot.errors) errors.push_back(error_to_json(e));
  obj["errors"] = json::Value(std::move(errors));

  json::Array companions;
  for (const auto& e : snapshot.companions) {
    companions.push_back(error_to_json(e));
  }
  obj["companions"] = json::Value(std::move(companions));

  json::Object meta;
  meta["apex"] = json::Value(snapshot.target_meta.apex.to_string());
  meta["server_count"] =
      json::Value(static_cast<std::int64_t>(snapshot.target_meta.server_count));
  json::Array keys;
  for (const auto& k : snapshot.target_meta.keys) {
    json::Object key;
    key["flags"] = json::Value(static_cast<std::int64_t>(k.flags));
    key["algorithm"] = json::Value(static_cast<std::int64_t>(k.algorithm));
    key["key_tag"] = json::Value(static_cast<std::int64_t>(k.key_tag));
    key["key_bits"] = json::Value(static_cast<std::int64_t>(k.key_bits));
    key["length_plausible"] = json::Value(k.length_plausible);
    keys.push_back(json::Value(std::move(key)));
  }
  meta["keys"] = json::Value(std::move(keys));
  json::Array ds_records;
  for (const auto& d : snapshot.target_meta.ds_records) {
    json::Object ds;
    ds["key_tag"] = json::Value(static_cast<std::int64_t>(d.key_tag));
    ds["algorithm"] = json::Value(static_cast<std::int64_t>(d.algorithm));
    ds["digest_type"] = json::Value(static_cast<std::int64_t>(d.digest_type));
    ds["digest"] = json::Value(d.digest_hex);
    ds["matches_dnskey"] = json::Value(d.matches_dnskey);
    ds["valid"] = json::Value(d.valid);
    ds_records.push_back(json::Value(std::move(ds)));
  }
  meta["ds_records"] = json::Value(std::move(ds_records));
  meta["uses_nsec3"] = json::Value(snapshot.target_meta.uses_nsec3);
  meta["nsec3_iterations"] = json::Value(
      static_cast<std::int64_t>(snapshot.target_meta.nsec3_iterations));
  meta["nsec3_salt"] = json::Value(snapshot.target_meta.nsec3_salt_hex);
  meta["nsec3_opt_out"] = json::Value(snapshot.target_meta.nsec3_opt_out);
  meta["max_ttl"] =
      json::Value(static_cast<std::int64_t>(snapshot.target_meta.max_ttl));
  meta["has_wildcard"] = json::Value(snapshot.target_meta.has_wildcard);
  obj["target_meta"] = json::Value(std::move(meta));
  return json::Value(std::move(obj));
}

std::optional<Snapshot> snapshot_from_json(const json::Value& value) {
  if (!value.is_object()) return std::nullopt;
  Snapshot out;
  auto qd = dns::Name::parse(value.get_string("query_domain", ""));
  auto qz = dns::Name::parse(value.get_string("query_zone", ""));
  if (!qd || !qz) return std::nullopt;
  out.query_domain = *qd;
  out.query_zone = *qz;
  out.time = value.get_int("time", 0);
  auto status = status_from_name(value.get_string("status", ""));
  if (!status) return std::nullopt;
  out.status = *status;

  const auto read_errors = [&](const char* key,
                               std::vector<ErrorInstance>& dst) {
    const auto* arr = value.find(key);
    if (arr == nullptr || !arr->is_array()) return;
    for (const auto& item : arr->as_array()) {
      auto e = error_from_json(item);
      if (e) dst.push_back(*std::move(e));
    }
  };
  read_errors("errors", out.errors);
  read_errors("companions", out.companions);

  const auto* meta = value.find("target_meta");
  if (meta != nullptr && meta->is_object()) {
    auto apex = dns::Name::parse(meta->get_string("apex", "."));
    if (apex) out.target_meta.apex = *apex;
    out.target_meta.server_count =
        static_cast<int>(meta->get_int("server_count", 2));
    if (const auto* keys = meta->find("keys");
        keys != nullptr && keys->is_array()) {
      for (const auto& item : keys->as_array()) {
        KeyMeta k;
        k.flags = static_cast<std::uint16_t>(item.get_int("flags", 0x0100));
        k.algorithm = static_cast<std::uint8_t>(item.get_int("algorithm", 8));
        k.key_tag = static_cast<std::uint16_t>(item.get_int("key_tag", 0));
        k.key_bits =
            static_cast<std::size_t>(item.get_int("key_bits", 0));
        k.length_plausible = item.get_bool("length_plausible", true);
        out.target_meta.keys.push_back(k);
      }
    }
    if (const auto* ds_arr = meta->find("ds_records");
        ds_arr != nullptr && ds_arr->is_array()) {
      for (const auto& item : ds_arr->as_array()) {
        DsMeta d;
        d.key_tag = static_cast<std::uint16_t>(item.get_int("key_tag", 0));
        d.algorithm = static_cast<std::uint8_t>(item.get_int("algorithm", 8));
        d.digest_type =
            static_cast<std::uint8_t>(item.get_int("digest_type", 2));
        d.digest_hex = item.get_string("digest", "");
        d.matches_dnskey = item.get_bool("matches_dnskey", false);
        d.valid = item.get_bool("valid", false);
        out.target_meta.ds_records.push_back(d);
      }
    }
    out.target_meta.uses_nsec3 = meta->get_bool("uses_nsec3", false);
    out.target_meta.nsec3_iterations =
        static_cast<std::uint16_t>(meta->get_int("nsec3_iterations", 0));
    out.target_meta.nsec3_salt_hex = meta->get_string("nsec3_salt", "");
    out.target_meta.nsec3_opt_out = meta->get_bool("nsec3_opt_out", false);
    out.target_meta.max_ttl =
        static_cast<std::uint32_t>(meta->get_int("max_ttl", 3600));
    out.target_meta.has_wildcard = meta->get_bool("has_wildcard", false);
  }
  return out;
}

}  // namespace dfx::analyzer
