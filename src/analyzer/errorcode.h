// The DNSSEC error-code taxonomy from the paper (Table 3): 8 categories,
// 26 subcategories, plus companion codes grok emits for root-cause analysis
// (the paper's DResolver consumes these but Table 3 does not count them).
#pragma once

#include <cstdint>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "dnscore/name.h"

namespace dfx::analyzer {

enum class ErrorCategory : std::uint8_t {
  kDelegation,
  kKey,
  kAlgorithm,
  kSignature,
  kTtl,
  kNsecCommon,  // "NSEC(3)" in the paper
  kNsecOnly,
  kNsec3Only,
  kCompanion,      // not counted in Table 3
  kResourceLimit,  // KeyTrap-class resource-cost findings, outside Table 3
};

enum class ErrorCode : std::uint8_t {
  // Delegation
  kMissingKskForAlgorithm,   // ⑤ DS algorithm has no matching KSK
  kInvalidDigest,            // ① DS digest does not match any DNSKEY
  // Key
  kInconsistentDnskeyBetweenServers,  // ③
  kRevokedKey,
  kBadKeyLength,
  // Algorithm
  kIncompleteAlgorithmSetup,  // ②
  // Signature
  kMissingSignature,
  kExpiredSignature,     // ④
  kInvalidSignature,     // ⑥
  kIncorrectSigner,
  kNotYetValidSignature,
  kIncorrectSignatureLabels,
  kBadSignatureLength,
  // TTL
  kOriginalTtlExceedsRrsetTtl,  // ⑧
  kTtlBeyondExpiration,
  // NSEC(3) common
  kMissingNonexistenceProof,  // ⑦
  kIncorrectTypeBitmap,
  kBadNonexistenceProof,
  // NSEC only
  kIncorrectLastNsec,
  // NSEC3 only
  kNonzeroIterationCount,  // ⑨ (NZIC)
  kInconsistentAncestorForNxdomain,
  kIncorrectClosestEncloserProof,
  kInvalidNsec3Hash,
  kInvalidNsec3OwnerName,
  kIncorrectOptOutFlag,
  kUnsupportedNsec3Algorithm,
  // Companion codes (context for DResolver, outside Table 3)
  kNoSecureEntryPoint,
  kMissingSignatureForAlgorithm,
  kMissingDnskeyForDs,
  kLameDelegation,
  kMissingNsInParent,
  // Resource-limit codes (KeyTrap-class, CVE-2023-50387/50868; outside
  // Table 3 — the paper's dataset predates the attack class).
  kCollidingKeyTags,                // >=2 DNSKEYs share (key tag, algorithm)
  kExcessiveSignatureValidations,   // keys x RRSIGs pairing blowup
  kExcessiveNsec3Iterations,        // iteration count above validator caps
  kValidatorWorkBudgetExceeded,     // budgeted validator gave up mid-zone
};

/// Count of Table 3 subcategory codes (companions excluded).
constexpr std::size_t kTable3CodeCount = 26;

ErrorCategory category_of(ErrorCode code);
std::string error_code_name(ErrorCode code);
std::string error_category_name(ErrorCategory category);

/// The ①-⑨ marker index from Table 3 / Figure 4, when the code has one.
std::optional<int> paper_marker(ErrorCode code);

/// Codes whose presence breaks validation for at least one validator path
/// (drives sb), vs. violations most validators tolerate (svm).
bool is_critical(ErrorCode code);

/// All Table 3 codes in table order.
const std::vector<ErrorCode>& table3_codes();

/// One concrete finding: code + the zone it was found in + object detail.
struct ErrorInstance {
  ErrorCode code;
  dns::Name zone;
  std::string detail;

  bool operator==(const ErrorInstance& o) const {
    return code == o.code && zone == o.zone;
  }
  bool operator<(const ErrorInstance& o) const {
    if (code != o.code) return code < o.code;
    return zone < o.zone;
  }
};

/// The set-of-codes view the evaluation metrics (IE/GE/AE) use.
std::set<ErrorCode> code_set(const std::vector<ErrorInstance>& errors);

}  // namespace dfx::analyzer
