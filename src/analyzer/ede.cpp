#include "analyzer/ede.h"

#include <algorithm>

namespace dfx::analyzer {

std::string ede_code_name(EdeCode code) {
  switch (code) {
    case EdeCode::kOther: return "Other";
    case EdeCode::kUnsupportedDnskeyAlgorithm:
      return "Unsupported DNSKEY Algorithm";
    case EdeCode::kUnsupportedDsDigestType:
      return "Unsupported DS Digest Type";
    case EdeCode::kDnssecIndeterminate: return "DNSSEC Indeterminate";
    case EdeCode::kDnssecBogus: return "DNSSEC Bogus";
    case EdeCode::kSignatureExpired: return "Signature Expired";
    case EdeCode::kSignatureNotYetValid: return "Signature Not Yet Valid";
    case EdeCode::kDnskeyMissing: return "DNSKEY Missing";
    case EdeCode::kRrsigsMissing: return "RRSIGs Missing";
    case EdeCode::kNoZoneKeyBitSet: return "No Zone Key Bit Set";
    case EdeCode::kNsecMissing: return "NSEC Missing";
    case EdeCode::kValidationBudgetExceeded:
      return "Validation Budget Exceeded";
  }
  return "?";
}

std::string ede_purpose(EdeCode code) {
  switch (code) {
    case EdeCode::kSignatureExpired:
      return "The resolver attempted to perform DNSSEC validation, but a "
             "signature in the validation chain was expired.";
    case EdeCode::kSignatureNotYetValid:
      return "The resolver attempted to perform DNSSEC validation, but a "
             "signature in the validation chain was not yet valid.";
    case EdeCode::kDnskeyMissing:
      return "A DS record existed at a parent, but no supported matching "
             "DNSKEY record could be found for the child.";
    case EdeCode::kRrsigsMissing:
      return "The resolver attempted to perform DNSSEC validation, but no "
             "RRSIGs could be found for at least one RRset where RRSIGs "
             "were expected.";
    case EdeCode::kNsecMissing:
      return "The resolver attempted to perform DNSSEC validation, but the "
             "requested data was missing and a covering NSEC or NSEC3 "
             "record was not provided.";
    case EdeCode::kDnssecBogus:
      return "The resolver attempted to perform DNSSEC validation, but "
             "validation ended in the BOGUS state.";
    case EdeCode::kValidationBudgetExceeded:
      return "The resolver attempted to perform DNSSEC validation, but the "
             "zone demanded more signature validations or hash iterations "
             "than the resolver's work budget allows (KeyTrap hardening).";
    default:
      return "See RFC 8914.";
  }
}

EdeCode ede_for_error(ErrorCode code) {
  switch (code) {
    case ErrorCode::kExpiredSignature:
      return EdeCode::kSignatureExpired;
    case ErrorCode::kNotYetValidSignature:
      return EdeCode::kSignatureNotYetValid;
    case ErrorCode::kMissingKskForAlgorithm:
    case ErrorCode::kMissingDnskeyForDs:
      return EdeCode::kDnskeyMissing;
    case ErrorCode::kMissingSignature:
    case ErrorCode::kMissingSignatureForAlgorithm:
      return EdeCode::kRrsigsMissing;
    case ErrorCode::kMissingNonexistenceProof:
    case ErrorCode::kBadNonexistenceProof:
    case ErrorCode::kIncorrectClosestEncloserProof:
    case ErrorCode::kInconsistentAncestorForNxdomain:
    case ErrorCode::kIncorrectLastNsec:
      return EdeCode::kNsecMissing;
    case ErrorCode::kUnsupportedNsec3Algorithm:
      return EdeCode::kDnssecIndeterminate;
    // KeyTrap-class: the budgeted validator refuses the zone outright.
    case ErrorCode::kExcessiveSignatureValidations:
    case ErrorCode::kExcessiveNsec3Iterations:
    case ErrorCode::kValidatorWorkBudgetExceeded:
      return EdeCode::kValidationBudgetExceeded;
    // Colliding tags alone are legal (tags are not unique identifiers);
    // advisory until the pairing count actually blows up.
    case ErrorCode::kCollidingKeyTags:
      return EdeCode::kOther;
    // Advisory violations do not surface as EDEs on their own.
    case ErrorCode::kNonzeroIterationCount:
    case ErrorCode::kOriginalTtlExceedsRrsetTtl:
    case ErrorCode::kTtlBeyondExpiration:
    case ErrorCode::kIncompleteAlgorithmSetup:
      return EdeCode::kOther;
    default:
      return EdeCode::kDnssecBogus;
  }
}

std::vector<EdeEntry> ede_for_snapshot(const Snapshot& snapshot) {
  std::vector<EdeEntry> out;
  if (snapshot.status != SnapshotStatus::kSignedBogus) return out;
  const auto add = [&](EdeCode code, const std::string& extra) {
    if (code == EdeCode::kOther) return;
    for (const auto& existing : out) {
      if (existing.code == code) return;
    }
    out.push_back({code, extra});
  };
  std::vector<ErrorInstance> all = snapshot.errors;
  all.insert(all.end(), snapshot.companions.begin(),
             snapshot.companions.end());
  for (const auto& e : all) {
    add(ede_for_error(e.code), e.detail);
  }
  // Specific codes first; Bogus as the trailing catch-all.
  std::stable_sort(out.begin(), out.end(),
                   [](const EdeEntry& a, const EdeEntry& b) {
                     return (a.code != EdeCode::kDnssecBogus) >
                            (b.code != EdeCode::kDnssecBogus);
                   });
  if (out.empty()) {
    out.push_back({EdeCode::kDnssecBogus,
                   "validation ended in the BOGUS state"});
  }
  return out;
}

}  // namespace dfx::analyzer
