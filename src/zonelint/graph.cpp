#include "zonelint/graph.h"

#include <set>
#include <string>

#include "crypto/algorithm.h"
#include "crypto/rsa.h"
#include "util/codec.h"

namespace dfx::zonelint {
namespace {

/// Plausibility of DNSKEY public key material by algorithm family — the
/// same judgement grok applies to probed keys (analyzer/grok.cpp), applied
/// here to the zone file's own records.
bool plausible_key_length(std::uint8_t algorithm, ByteView public_key) {
  const auto info = crypto::algorithm_info(algorithm);
  if (!info) return !public_key.empty();
  if (info->rsa_family) {
    crypto::RsaPublicKey pub;
    if (!crypto::RsaPublicKey::decode(public_key, pub)) return false;
    return pub.n.bit_length() >= 128;
  }
  return public_key.size() == 8;
}

}  // namespace

std::vector<std::size_t> TrustGraph::keys_matching(
    std::uint16_t tag, std::uint8_t algorithm) const {
  std::vector<std::size_t> out;
  for (std::size_t i = 0; i < keys.size(); ++i) {
    if (keys[i].tag == tag && keys[i].rdata.algorithm == algorithm) {
      out.push_back(i);
    }
  }
  return out;
}

TrustGraph build_trust_graph(const zone::Zone& zone,
                             std::span<const dns::DsRdata> parent_ds) {
  TrustGraph g;
  g.zone = &zone;
  const dns::Name& apex = zone.apex();

  // ---- Key nodes ----------------------------------------------------------
  if (const auto* dnskeys = zone.find(apex, dns::RRType::kDNSKEY)) {
    for (const auto& rdata : dnskeys->rdatas()) {
      const auto* key = std::get_if<dns::DnskeyRdata>(&rdata);
      if (key == nullptr) continue;
      KeyNode node;
      node.rdata = *key;
      node.tag = key->key_tag();
      node.revoked = key->is_revoked();
      node.sep = (key->flags & 0x0001) != 0;
      node.plausible_length =
          plausible_key_length(key->algorithm, key->public_key);
      g.keys.push_back(std::move(node));
    }
  }

  // ---- Delegation cuts ----------------------------------------------------
  std::vector<dns::Name> cuts;
  for (const auto* rrset : zone.all_rrsets()) {
    if (rrset->type() == dns::RRType::kNS && rrset->owner() != apex) {
      cuts.push_back(rrset->owner());
    }
  }
  const auto below_a_cut = [&](const dns::Name& owner) {
    for (const auto& cut : cuts) {
      if (owner != cut && owner.is_subdomain_of(cut)) return true;
    }
    return false;
  };

  // ---- RRset nodes with RRSIG → DNSKEY edges ------------------------------
  for (const auto* rrset : zone.all_rrsets()) {
    if (rrset->type() == dns::RRType::kRRSIG) continue;
    RRsetNode node;
    node.rrset = rrset;
    node.delegation_ns =
        rrset->type() == dns::RRType::kNS && rrset->owner() != apex;
    // Below a cut only occluded glue lives; at the cut itself the parent
    // side is authoritative solely for DS (and the denial records).
    if (node.delegation_ns || below_a_cut(rrset->owner())) {
      node.authoritative = false;
    } else if (zone.is_delegation(rrset->owner()) &&
               rrset->type() != dns::RRType::kDS &&
               rrset->type() != dns::RRType::kNSEC &&
               rrset->type() != dns::RRType::kNSEC3) {
      node.authoritative = false;
    }
    if (const auto* sigs = zone.find(rrset->owner(), dns::RRType::kRRSIG)) {
      for (const auto& rdata : sigs->rdatas()) {
        const auto* sig = std::get_if<dns::RrsigRdata>(&rdata);
        if (sig == nullptr || sig->type_covered != rrset->type()) continue;
        SigEdge edge;
        edge.rdata = *sig;
        edge.candidates = g.keys_matching(sig->key_tag, sig->algorithm);
        node.sigs.push_back(std::move(edge));
      }
    }
    g.rrsets.push_back(std::move(node));
  }

  // ---- DS links -----------------------------------------------------------
  for (const auto& ds : parent_ds) {
    DsLink link;
    link.rdata = ds;
    for (std::size_t i = 0; i < g.keys.size(); ++i) {
      const KeyNode& key = g.keys[i];
      if (key.rdata.algorithm != ds.algorithm) continue;
      link.algorithm_present = true;
      if (key.tag == ds.key_tag) {
        link.matched_key = i;
        break;
      }
      if (key.revoked && !link.revoked_link.has_value()) {
        dns::DnskeyRdata unrevoked = key.rdata;
        unrevoked.flags &= static_cast<std::uint16_t>(~0x0080);
        if (unrevoked.key_tag() == ds.key_tag) link.revoked_link = i;
      }
    }
    if (link.matched_key.has_value()) {
      const auto digest_type = static_cast<crypto::DigestType>(ds.digest_type);
      const Bytes expected = crypto::ds_digest(
          digest_type, apex.to_canonical_wire(),
          dns::rdata_to_wire(dns::Rdata(g.keys[*link.matched_key].rdata)));
      link.digest_supported = !expected.empty();
      link.digest_ok = link.digest_supported && expected == ds.digest;
    }
    g.ds_links.push_back(std::move(link));
  }

  // ---- Denial chain -------------------------------------------------------
  if (const auto* params = zone.find(apex, dns::RRType::kNSEC3PARAM)) {
    if (!params->empty()) {
      const auto* p =
          std::get_if<dns::Nsec3ParamRdata>(&params->rdatas().front());
      if (p != nullptr) g.denial.params = *p;
    }
  }
  for (const auto* rrset : zone.all_rrsets()) {
    if (rrset->type() == dns::RRType::kNSEC) {
      for (const auto& rdata : rrset->rdatas()) {
        const auto* nsec = std::get_if<dns::NsecRdata>(&rdata);
        if (nsec != nullptr) g.denial.nsec.push_back({rrset->owner(), *nsec});
      }
    } else if (rrset->type() == dns::RRType::kNSEC3) {
      for (const auto& rdata : rrset->rdatas()) {
        const auto* n3 = std::get_if<dns::Nsec3Rdata>(&rdata);
        if (n3 == nullptr) continue;
        Nsec3Span span{rrset->owner(), *n3, std::nullopt};
        auto decoded = base32hex_decode(rrset->owner().leftmost_label());
        if (decoded && decoded->size() == 20) {
          span.owner_hash = *std::move(decoded);
        }
        g.denial.nsec3.push_back(std::move(span));
      }
    }
  }
  return g;
}

}  // namespace dfx::zonelint
