#include "zonelint/zonelint.h"

#include <algorithm>
#include <map>
#include <optional>
#include <utility>

#include "analyzer/probe.h"
#include "crypto/algorithm.h"
#include "dnscore/rr.h"
#include "util/codec.h"
#include "zone/nsec3.h"

namespace dfx::zonelint {
namespace {

using analyzer::ErrorCategory;
using analyzer::ErrorCode;

/// Expected signature length plausibility by algorithm family (the same
/// judgement grok applies to probed RRSIGs).
bool plausible_signature_length(std::uint8_t algorithm, std::size_t size) {
  const auto info = crypto::algorithm_info(algorithm);
  if (!info) return size > 0;
  if (info->rsa_family) return size >= 24;
  return size == 16;
}

// ---- Fix-spec builders ----------------------------------------------------

/// Re-sign the zone with its current denial parameters (optionally forcing
/// the NSEC3 iteration count down) and push to every server.
zone::Instruction fix_resign(const TrustGraph& g, const dns::Name& apex,
                             std::optional<std::uint16_t> iterations = {}) {
  zone::Instruction ins;
  ins.kind = zone::InstructionKind::kSignZone;
  zone::SignZoneParams p;
  p.zone = apex;
  if (g.denial.uses_nsec3()) {
    p.nsec3 = true;
    std::uint16_t current = 0;
    if (g.denial.params.has_value()) {
      current = g.denial.params->iterations;
      if (!g.denial.params->salt.empty()) {
        p.nsec3_salt_hex = hex_encode(g.denial.params->salt);
      }
    }
    p.nsec3_iterations = iterations.value_or(current);
    for (const auto& span : g.denial.nsec3) {
      if (span.rdata.opt_out()) {
        p.opt_out = true;
        break;
      }
    }
  }
  ins.description = iterations.has_value()
                        ? "re-sign the zone with NSEC3 iterations=" +
                              std::to_string(*iterations) +
                              " and synchronize all servers"
                        : "re-sign the zone and synchronize all servers";
  ins.commands.push_back(zone::cmd_signzone(p));
  ins.commands.push_back(zone::cmd_sync_servers(apex));
  return ins;
}

/// Remove every surplus key of each colliding (key tag, algorithm) group,
/// then re-sign. This is the DFixer repair for the KeyTrap pairing shapes.
zone::Instruction fix_prune_colliding(const TrustGraph& g,
                                      const dns::Name& apex) {
  zone::Instruction ins;
  ins.kind = zone::InstructionKind::kRemoveRevokedKey;
  ins.description =
      "remove the surplus DNSKEYs sharing a (key tag, algorithm) pair, "
      "then re-sign";
  std::map<std::pair<std::uint16_t, std::uint8_t>, std::size_t> tag_count;
  for (const auto& key : g.keys) {
    ++tag_count[{key.tag, key.rdata.algorithm}];
  }
  for (const auto& [tag_alg, count] : tag_count) {
    if (count < 2) continue;
    ins.commands.push_back(zone::cmd_remove_key_file(apex, tag_alg.first));
  }
  const auto resign = fix_resign(g, apex);
  for (const auto& cmd : resign.commands) ins.commands.push_back(cmd);
  return ins;
}

zone::Instruction fix_remove_key(const dns::Name& apex, std::uint16_t tag) {
  zone::Instruction ins;
  ins.kind = zone::InstructionKind::kRemoveRevokedKey;
  ins.description = "remove DNSKEY key_tag=" + std::to_string(tag) +
                    " and re-sign the zone";
  ins.commands.push_back(zone::cmd_remove_key_file(apex, tag));
  ins.commands.push_back(zone::cmd_signzone({.zone = apex}));
  ins.commands.push_back(zone::cmd_sync_servers(apex));
  return ins;
}

zone::Instruction fix_remove_ds(const dns::Name& apex,
                                const dns::DsRdata& ds) {
  zone::Instruction ins;
  ins.kind = zone::InstructionKind::kRemoveIncorrectDs;
  ins.description = "remove the stale DS key_tag=" +
                    std::to_string(ds.key_tag) + " at the parent";
  ins.commands.push_back(
      zone::cmd_remove_ds(apex, ds.key_tag, hex_encode(ds.digest)));
  return ins;
}

// ---- Finding sink ---------------------------------------------------------

/// Mirrors grok's ErrorSink: de-duplicate by code (one zone here), route
/// companion-category codes to the companion list.
class Sink {
 public:
  explicit Sink(Report& report) : report_(report) {}

  void add(ErrorCode code, const dns::Name& zone, std::string detail,
           zone::Instruction fix = {}) {
    auto& dst = analyzer::category_of(code) == ErrorCategory::kCompanion
                    ? report_.companions
                    : report_.findings;
    for (const auto& f : dst) {
      if (f.code == code) return;
    }
    dst.push_back(Finding{code, zone, std::move(detail), std::move(fix)});
  }

 private:
  Report& report_;
};

// ---- Server-response emulation --------------------------------------------
//
// grok judges the proof records a *server selects for a response*, not the
// whole chain in the zone file. An authoritative server picks proofs by
// predecessor in canonical (NSEC) or hash (NSEC3) order, wrapping to the
// last record, and serves whatever its chain says is adjacent — validation
// is the resolver's job. Running grok's walk over the full zone chain would
// diverge (e.g. a salt-tampered NSEC3 ring always yields *some* cover
// zone-wide, flipping kBadNonexistenceProof into
// kInconsistentAncestorForNxdomain), so the lint reproduces the selection
// first and applies grok's rules to exactly that subset.

/// One simulated negative-probe response: the rcode the server would return
/// and the proof-record owners it would serve, in emission order.
struct SimResponse {
  dns::RCode rcode = dns::RCode::kNoError;
  std::vector<dns::Name> owners;
  bool positive = false;  // answered from an existing RRset
  bool wildcard = false;  // wildcard-synthesized positive answer
};

void select_nsec(const zone::Zone& zone, const dns::Name& qname,
                 bool nxdomain, std::vector<dns::Name>& out) {
  struct Entry {
    dns::Name owner;
    const dns::NsecRdata* rdata;
  };
  std::vector<Entry> chain;
  for (const auto* rrset : zone.all_rrsets()) {
    if (rrset->type() != dns::RRType::kNSEC || rrset->empty()) continue;
    const auto* nsec = std::get_if<dns::NsecRdata>(&rrset->rdatas().front());
    if (nsec != nullptr) chain.push_back({rrset->owner(), nsec});
  }
  std::sort(chain.begin(), chain.end(),
            [](const Entry& a, const Entry& b) { return a.owner < b.owner; });
  const auto predecessor = [&](const dns::Name& name) -> const Entry* {
    const Entry* best = nullptr;
    for (const auto& entry : chain) {
      if (entry.owner <= name) best = &entry;
    }
    if (best == nullptr && !chain.empty()) best = &chain.back();  // wrap
    return best;
  };
  if (chain.empty()) return;
  if (!nxdomain) {
    for (const auto& entry : chain) {
      if (entry.owner == qname) {
        out.push_back(entry.owner);
        return;
      }
    }
  }
  if (const auto* cover = predecessor(qname)) out.push_back(cover->owner);
  if (nxdomain) {
    const dns::Name wildcard = zone.apex().child("*");
    if (const auto* cover = predecessor(wildcard)) out.push_back(cover->owner);
  }
}

void select_nsec3(const zone::Zone& zone, const dns::Name& qname,
                  bool nxdomain, std::vector<dns::Name>& out) {
  const auto* param_set =
      zone.find(zone.apex(), dns::RRType::kNSEC3PARAM);
  if (param_set == nullptr || param_set->empty()) return;
  const auto* param =
      std::get_if<dns::Nsec3ParamRdata>(&param_set->rdatas().front());
  if (param == nullptr) return;

  struct Entry {
    dns::Name owner;
    Bytes owner_hash;
  };
  std::vector<Entry> chain;
  std::vector<dns::Name> undecodable;
  for (const auto* rrset : zone.all_rrsets()) {
    if (rrset->type() != dns::RRType::kNSEC3 || rrset->empty()) continue;
    if (std::get_if<dns::Nsec3Rdata>(&rrset->rdatas().front()) == nullptr) {
      continue;
    }
    auto decoded = base32hex_decode(rrset->owner().leftmost_label());
    if (!decoded) {
      undecodable.push_back(rrset->owner());
      continue;
    }
    chain.push_back({rrset->owner(), *std::move(decoded)});
  }
  std::sort(chain.begin(), chain.end(), [](const Entry& a, const Entry& b) {
    return a.owner_hash < b.owner_hash;
  });
  const auto hash_of = [&](const dns::Name& name) {
    return zone::nsec3_hash(name, param->salt, param->iterations);
  };
  const auto emit_match = [&](const dns::Name& name) {
    const Bytes h = hash_of(name);
    for (const auto& e : chain) {
      if (e.owner_hash == h) {
        out.push_back(e.owner);
        return;
      }
    }
  };
  const auto emit_cover = [&](const dns::Name& name) {
    if (chain.empty()) return;
    const Bytes h = hash_of(name);
    const Entry* best = nullptr;
    for (const auto& e : chain) {
      if (e.owner_hash <= h) best = &e;
    }
    if (best == nullptr) best = &chain.back();  // wrap-around
    out.push_back(best->owner);
  };

  for (const auto& owner : undecodable) out.push_back(owner);

  if (!nxdomain) {
    emit_match(qname);
    return;
  }
  dns::Name closest = qname;
  while (closest.label_count() > zone.apex().label_count()) {
    closest = closest.parent();
    if (zone.name_exists(closest) ||
        zone.name_or_descendant_exists(closest) ||
        closest == zone.apex()) {
      break;
    }
  }
  emit_match(closest);
  const std::size_t next_labels = closest.label_count() + 1;
  dns::Name next_closer = qname;
  while (next_closer.label_count() > next_labels) {
    next_closer = next_closer.parent();
  }
  emit_cover(next_closer);
  emit_cover(closest.child("*"));
}

/// Emulate one negative probe against the zone, mirroring the auth server's
/// answer path (positive / NODATA / wildcard synthesis / NXDOMAIN) and its
/// proof selection. `out.owners` is de-duplicated in emission order, like
/// grok's per-owner view extraction.
SimResponse simulate_probe(const zone::Zone& zone, const dns::Name& qname,
                           dns::RRType qtype, bool nsec3_path) {
  SimResponse out;
  std::vector<dns::Name> raw;
  const auto select = [&](const dns::Name& name, bool nxdomain) {
    if (nsec3_path) {
      select_nsec3(zone, name, nxdomain, raw);
    } else {
      select_nsec(zone, name, nxdomain, raw);
    }
  };
  if (zone.find(qname, qtype) != nullptr ||
      (qtype != dns::RRType::kCNAME &&
       zone.find(qname, dns::RRType::kCNAME) != nullptr)) {
    out.rcode = dns::RCode::kNoError;
    out.positive = true;
  } else if (zone.name_exists(qname) ||
             zone.name_or_descendant_exists(qname)) {
    out.rcode = dns::RCode::kNoError;
    select(qname, /*nxdomain=*/false);
  } else {
    dns::Name closest = qname.parent();
    while (closest.label_count() > zone.apex().label_count() &&
           !zone.name_or_descendant_exists(closest)) {
      closest = closest.parent();
    }
    if (zone.find(closest.child("*"), qtype) != nullptr) {
      out.rcode = dns::RCode::kNoError;
      out.wildcard = true;
      select(qname, /*nxdomain=*/true);
    } else {
      out.rcode = dns::RCode::kNXDomain;
      select(qname, /*nxdomain=*/true);
    }
  }
  std::vector<dns::Name> deduped;
  for (const auto& owner : raw) {
    if (std::find(deduped.begin(), deduped.end(), owner) == deduped.end()) {
      deduped.push_back(owner);
    }
  }
  out.owners = std::move(deduped);
  return out;
}

// ---- The rules engine -----------------------------------------------------

class Linter {
 public:
  Linter(const zone::Zone& zone, const TrustGraph& g,
         const LintOptions& options, Report& report)
      : zone_(zone),
        g_(g),
        options_(options),
        apex_(zone.apex()),
        sink_(report) {
    for (std::size_t i = 0; i < g_.keys.size(); ++i) all_keys_.push_back(i);
  }

  void run() {
    check_keys();
    check_ds();
    if (!g_.is_signed()) return;
    check_visible_rrsets();
    check_algorithm_completeness();
    check_denial();
    check_budget();
  }

 private:
  const RRsetNode* find_node(const dns::Name& owner, dns::RRType type) const {
    for (const auto& node : g_.rrsets) {
      if (node.rrset->owner() == owner && node.rrset->type() == type) {
        return &node;
      }
    }
    return nullptr;
  }

  // Rule A — key-level checks (grok's gather_dnskeys).
  void check_keys() {
    if (!g_.is_signed()) return;
    for (const auto& key : g_.keys) {
      if (!key.plausible_length) {
        sink_.add(ErrorCode::kBadKeyLength, apex_,
                  "DNSKEY key_tag=" + std::to_string(key.tag) +
                      " has an invalid key length for algorithm " +
                      std::to_string(key.rdata.algorithm),
                  fix_remove_key(apex_, key.tag));
      }
    }
    std::map<std::pair<std::uint16_t, std::uint8_t>, std::size_t> tag_count;
    for (const auto& key : g_.keys) {
      ++tag_count[{key.tag, key.rdata.algorithm}];
    }
    for (const auto& [tag_alg, count] : tag_count) {
      if (count < 2) continue;
      sink_.add(ErrorCode::kCollidingKeyTags, apex_,
                std::to_string(count) + " DNSKEYs share key_tag=" +
                    std::to_string(tag_alg.first) + " algorithm=" +
                    std::to_string(tag_alg.second),
                fix_prune_colliding(g_, apex_));
    }
  }

  // Rule B — DS ↔ DNSKEY linkage (grok's validate_ds), per parent DS link.
  void check_ds() {
    if (g_.ds_links.empty()) return;
    for (const auto& link : g_.ds_links) {
      const auto& ds = link.rdata;
      const std::string ds_id = "DS key_tag=" + std::to_string(ds.key_tag) +
                                " algorithm=" + std::to_string(ds.algorithm);
      if (!link.matched_key.has_value()) {
        if (link.revoked_link.has_value()) {
          const auto& key = g_.keys[*link.revoked_link];
          sink_.add(ErrorCode::kRevokedKey, apex_,
                    ds_id + " is linked to a revoked DNSKEY (key_tag=" +
                        std::to_string(key.tag) + ")",
                    fix_remove_key(apex_, key.tag));
          sink_.add(ErrorCode::kNoSecureEntryPoint, apex_,
                    ds_id + " provides no secure entry point (key revoked)");
        } else if (!link.algorithm_present) {
          sink_.add(ErrorCode::kMissingKskForAlgorithm, apex_,
                    ds_id + " references an algorithm with no DNSKEY",
                    fix_remove_ds(apex_, ds));
        } else {
          sink_.add(ErrorCode::kMissingDnskeyForDs, apex_,
                    g_.keys.empty() ? ds_id + " has no DNSKEY RRset to match"
                                    : ds_id + " matches no DNSKEY",
                    fix_remove_ds(apex_, ds));
        }
        continue;
      }
      const KeyNode& matched = g_.keys[*link.matched_key];
      if (matched.revoked) {
        sink_.add(ErrorCode::kRevokedKey, apex_,
                  ds_id + " references a DNSKEY with the REVOKE flag set",
                  fix_remove_key(apex_, matched.tag));
        sink_.add(ErrorCode::kNoSecureEntryPoint, apex_,
                  ds_id + " provides no secure entry point (key revoked)");
        continue;
      }
      if (!link.digest_supported) continue;  // unsupported digest: DS ignored
      if (!link.digest_ok) {
        sink_.add(ErrorCode::kInvalidDigest, apex_,
                  ds_id + " digest does not match the DNSKEY",
                  fix_remove_ds(apex_, ds));
        continue;
      }
      sep_keys_.push_back(*link.matched_key);
    }
    if (g_.keys.empty()) {
      sink_.add(ErrorCode::kMissingDnskeyForDs, apex_,
                "DS present at the parent but the zone has no DNSKEY RRset");
    }
    if (sep_keys_.empty()) {
      sink_.add(ErrorCode::kNoSecureEntryPoint, apex_,
                "no DS record establishes a secure entry point");
    }
  }

  // Rule C — signature checks over the RRsets a validator actually
  // inspects: the apex DNSKEY/SOA/NS/A sets, a wildcard-synthesized
  // answer, and the proof records the server would select (Rule E calls
  // back in for those). Mirrors grok's check_rrset.
  void check_rrset_node(const RRsetNode* node,
                        const std::vector<std::size_t>& allowed,
                        bool require_signature) {
    if (node == nullptr || node->rrset->empty()) return;
    const auto& rrset = *node->rrset;
    if (node->sigs.empty()) {
      if (require_signature) {
        sink_.add(ErrorCode::kMissingSignature, apex_,
                  "no RRSIG covering " + rrset.owner().to_string() + "/" +
                      dns::rrtype_to_string(rrset.type()),
                  fix_resign(g_, apex_));
      }
      return;
    }
    const auto allowed_candidates = [&](const SigEdge& sig) {
      std::vector<std::size_t> out;
      for (std::size_t ki : sig.candidates) {
        if (std::find(allowed.begin(), allowed.end(), ki) != allowed.end()) {
          out.push_back(ki);
        }
      }
      return out;
    };
    std::size_t pairings = 0;
    for (const auto& sig : node->sigs) {
      pairings += allowed_candidates(sig).size();
    }
    if (pairings > options_.budget.sig_pairing_threshold) {
      sink_.add(ErrorCode::kExcessiveSignatureValidations, apex_,
                "RRset " + rrset.owner().to_string() + "/" +
                    dns::rrtype_to_string(rrset.type()) + " demands " +
                    std::to_string(pairings) +
                    " candidate signature validations (threshold " +
                    std::to_string(options_.budget.sig_pairing_threshold) +
                    ")",
                fix_prune_colliding(g_, apex_));
    }
    for (const auto& edge : node->sigs) {
      const auto& sig = edge.rdata;
      const std::string sig_id =
          "RRSIG " + rrset.owner().to_string() + "/" +
          dns::rrtype_to_string(rrset.type()) +
          " key_tag=" + std::to_string(sig.key_tag);
      if (options_.now != 0) {
        if (sig.expiration < options_.now) {
          sink_.add(ErrorCode::kExpiredSignature, apex_, sig_id + " expired",
                    fix_resign(g_, apex_));
        }
        if (sig.inception > options_.now) {
          sink_.add(ErrorCode::kNotYetValidSignature, apex_,
                    sig_id + " is not yet valid", fix_resign(g_, apex_));
        }
      }
      if (sig.signer != apex_) {
        sink_.add(ErrorCode::kIncorrectSigner, apex_,
                  sig_id + " signer " + sig.signer.to_string() +
                      " is not the zone apex",
                  fix_resign(g_, apex_));
      }
      const std::size_t expected_labels =
          rrset.owner().label_count() -
          (rrset.owner().leftmost_label() == "*" ? 1 : 0);
      if (sig.labels > expected_labels) {
        sink_.add(ErrorCode::kIncorrectSignatureLabels, apex_,
                  sig_id + " labels field " + std::to_string(sig.labels) +
                      " exceeds the owner's label count " +
                      std::to_string(expected_labels),
                  fix_resign(g_, apex_));
      }
      if (!plausible_signature_length(sig.algorithm, sig.signature.size())) {
        sink_.add(ErrorCode::kBadSignatureLength, apex_,
                  sig_id + " has an implausible signature length " +
                      std::to_string(sig.signature.size()),
                  fix_resign(g_, apex_));
      }
      if (sig.original_ttl < rrset.ttl()) {
        sink_.add(ErrorCode::kOriginalTtlExceedsRrsetTtl, apex_,
                  sig_id + " original TTL " +
                      std::to_string(sig.original_ttl) +
                      " is below the served RRset TTL " +
                      std::to_string(rrset.ttl()),
                  fix_resign(g_, apex_));
      }
      if (options_.now != 0 && sig.expiration > options_.now &&
          static_cast<UnixTime>(rrset.ttl()) > sig.expiration - options_.now) {
        sink_.add(ErrorCode::kTtlBeyondExpiration, apex_,
                  sig_id + " allows caching beyond signature expiration",
                  fix_resign(g_, apex_));
      }
      // A signature by a key entirely absent from the DNSKEY RRset is the
      // one kInvalidSignature case visible without cryptography.
      if (allowed_candidates(edge).empty() && edge.candidates.empty()) {
        sink_.add(ErrorCode::kInvalidSignature, apex_,
                  sig_id + " was made by a key not in the DNSKEY RRset",
                  fix_resign(g_, apex_));
      }
    }
  }

  void check_visible_rrsets() {
    // DNSKEY RRset: when DS-anchored, only SEP keys may sign it; islands
    // of trust fall back to internal consistency against all keys.
    const std::vector<std::size_t>& dnskey_signers =
        g_.ds_links.empty() ? all_keys_ : sep_keys_;
    check_rrset_node(find_node(apex_, dns::RRType::kDNSKEY), dnskey_signers,
                     true);
    for (dns::RRType type :
         {dns::RRType::kSOA, dns::RRType::kNS, dns::RRType::kA}) {
      check_rrset_node(find_node(apex_, type), all_keys_, true);
    }
  }

  // Rule D — RFC 4035 algorithm completeness (grok's
  // check_algorithm_completeness over the apex data RRsets).
  void check_algorithm_completeness() {
    std::set<std::uint8_t> dnskey_algorithms;
    for (const auto& key : g_.keys) {
      if (key.revoked) continue;
      dnskey_algorithms.insert(key.rdata.algorithm);
    }
    for (dns::RRType type :
         {dns::RRType::kSOA, dns::RRType::kNS, dns::RRType::kA}) {
      const RRsetNode* node = find_node(apex_, type);
      if (node == nullptr || node->rrset->empty() || node->sigs.empty()) {
        continue;
      }
      std::set<std::uint8_t> sig_algorithms;
      for (const auto& sig : node->sigs) {
        sig_algorithms.insert(sig.rdata.algorithm);
      }
      for (std::uint8_t alg : dnskey_algorithms) {
        if (!sig_algorithms.contains(alg)) {
          sink_.add(ErrorCode::kIncompleteAlgorithmSetup, apex_,
                    "RRset " + node->rrset->owner().to_string() + "/" +
                        dns::rrtype_to_string(node->rrset->type()) +
                        " lacks an RRSIG with algorithm " +
                        std::to_string(alg),
                    fix_resign(g_, apex_));
        }
      }
    }
    std::set<std::uint8_t> ds_algorithms;
    for (const auto& link : g_.ds_links) {
      ds_algorithms.insert(link.rdata.algorithm);
    }
    const RRsetNode* dnskey_node = find_node(apex_, dns::RRType::kDNSKEY);
    if (dnskey_node != nullptr && !dnskey_node->rrset->empty()) {
      std::set<std::uint8_t> sig_algorithms;
      for (const auto& sig : dnskey_node->sigs) {
        sig_algorithms.insert(sig.rdata.algorithm);
      }
      for (std::uint8_t alg : ds_algorithms) {
        if (!sig_algorithms.contains(alg)) {
          sink_.add(ErrorCode::kMissingSignatureForAlgorithm, apex_,
                    "no RRSIG with DS algorithm " + std::to_string(alg) +
                        " covers the DNSKEY RRset");
        }
      }
    }
  }

  // Rule E — denial-of-existence (grok's validate_negative, run over the
  // emulated server responses to the three negative probes).
  void check_denial() {
    // The NSEC3PARAM advertisement is checked regardless of which proofs a
    // negative answer would carry.
    if (g_.denial.params.has_value()) {
      const auto& p = *g_.denial.params;
      if (p.iterations > 0) {
        sink_.add(ErrorCode::kNonzeroIterationCount, apex_,
                  "NSEC3PARAM iterations=" + std::to_string(p.iterations) +
                      " (RFC 9276 requires 0)",
                  fix_resign(g_, apex_, std::uint16_t{0}));
      }
      if (p.iterations > options_.budget.max_nsec3_iterations) {
        sink_.add(ErrorCode::kExcessiveNsec3Iterations, apex_,
                  "NSEC3PARAM iterations=" + std::to_string(p.iterations) +
                      " exceeds the validator cap of " +
                      std::to_string(options_.budget.max_nsec3_iterations),
                  fix_resign(g_, apex_, std::uint16_t{0}));
      }
    }

    // The server picks the proof mechanism off the apex NSEC3PARAM RRset.
    const bool nsec3_path =
        zone_.find(apex_, dns::RRType::kNSEC3PARAM) != nullptr;
    const dns::Name nx_name = analyzer::nx_probe_name(apex_);
    const dns::Name last_name = analyzer::last_probe_name(apex_);
    const SimResponse nx =
        simulate_probe(zone_, nx_name, dns::RRType::kA, nsec3_path);
    const SimResponse last =
        simulate_probe(zone_, last_name, dns::RRType::kA, nsec3_path);
    const SimResponse nodata =
        simulate_probe(zone_, apex_, dns::RRType::kMX, nsec3_path);
    const dns::RRType proof_type =
        nsec3_path ? dns::RRType::kNSEC3 : dns::RRType::kNSEC;

    // A wildcard-synthesized positive answer must be signed and carry the
    // next-closer proof (RFC 4035 §3.1.3.3).
    if (nx.wildcard) {
      check_rrset_node(find_node(apex_.child("*"), dns::RRType::kA),
                       all_keys_, true);
      if (nx.owners.empty()) {
        sink_.add(ErrorCode::kMissingNonexistenceProof, apex_,
                  "wildcard-synthesized answer lacks the proof that the "
                  "query name itself does not exist",
                  fix_resign(g_, apex_));
      }
    }

    // Proof signatures of the NXDOMAIN response.
    for (const auto& owner : nx.owners) {
      check_rrset_node(find_node(owner, proof_type), all_keys_, true);
    }
    if (nx.rcode == dns::RCode::kNXDomain && nx.owners.empty()) {
      sink_.add(ErrorCode::kMissingNonexistenceProof, apex_,
                "NXDOMAIN response carries no NSEC or NSEC3 records",
                fix_resign(g_, apex_));
      return;
    }

    const bool uses_nsec3 = nsec3_path && !nx.owners.empty();
    if (uses_nsec3) {
      check_denial_nsec3(nx, last, nodata, nx_name);
    } else {
      check_denial_nsec(nx, last, nodata, nx_name, last_name);
    }
  }

  void check_denial_nsec3(const SimResponse& nx, const SimResponse& last,
                          const SimResponse& nodata,
                          const dns::Name& nx_name) {
    struct Entry {
      Bytes owner_hash;
      const dns::Nsec3Rdata* rdata;
    };
    std::vector<Entry> entries;
    bool params_ok = true;
    std::optional<bool> opt_out_seen;
    // Sanity runs over the union of every NSEC3 any negative response
    // serves, de-duplicated by owner in response order.
    std::vector<dns::Name> sanity_owners;
    for (const auto* sim : {&nx, &last, &nodata}) {
      for (const auto& owner : sim->owners) {
        if (std::find(sanity_owners.begin(), sanity_owners.end(), owner) ==
            sanity_owners.end()) {
          sanity_owners.push_back(owner);
        }
      }
    }
    for (const auto& owner : sanity_owners) {
      const bool in_nxdomain =
          std::find(nx.owners.begin(), nx.owners.end(), owner) !=
          nx.owners.end();
      const auto* rrset = zone_.find(owner, dns::RRType::kNSEC3);
      if (rrset == nullptr) continue;
      for (const auto& rdata : rrset->rdatas()) {
        const auto* n3 = std::get_if<dns::Nsec3Rdata>(&rdata);
        if (n3 == nullptr) continue;
        if (n3->hash_algorithm != 1) {
          sink_.add(ErrorCode::kUnsupportedNsec3Algorithm, apex_,
                    "NSEC3 hash algorithm " +
                        std::to_string(n3->hash_algorithm) +
                        " is not defined",
                    fix_resign(g_, apex_));
          params_ok = false;
        }
        if (n3->iterations > 0) {
          sink_.add(ErrorCode::kNonzeroIterationCount, apex_,
                    "NSEC3 iterations=" + std::to_string(n3->iterations) +
                        " (RFC 9276 requires 0)",
                    fix_resign(g_, apex_, std::uint16_t{0}));
        }
        if (n3->iterations > options_.budget.max_nsec3_iterations) {
          sink_.add(ErrorCode::kExcessiveNsec3Iterations, apex_,
                    "NSEC3 iterations=" + std::to_string(n3->iterations) +
                        " exceeds the validator cap of " +
                        std::to_string(
                            options_.budget.max_nsec3_iterations),
                    fix_resign(g_, apex_, std::uint16_t{0}));
          params_ok = false;
        }
        if (n3->next_hashed.size() != 20) {
          sink_.add(ErrorCode::kInvalidNsec3Hash, apex_,
                    "NSEC3 next-hashed field has length " +
                        std::to_string(n3->next_hashed.size()) +
                        ", expected 20 (SHA-1)",
                    fix_resign(g_, apex_));
          params_ok = false;
        }
        auto decoded = base32hex_decode(owner.leftmost_label());
        if (!decoded || decoded->size() != 20) {
          sink_.add(ErrorCode::kInvalidNsec3OwnerName, apex_,
                    "NSEC3 owner label " + owner.leftmost_label() +
                        " is not a valid SHA-1 base32hex hash",
                    fix_resign(g_, apex_));
          params_ok = false;
          continue;
        }
        if (opt_out_seen.has_value() && *opt_out_seen != n3->opt_out()) {
          sink_.add(ErrorCode::kIncorrectOptOutFlag, apex_,
                    "NSEC3 records disagree on the opt-out flag",
                    fix_resign(g_, apex_));
        }
        opt_out_seen = n3->opt_out();
        if (in_nxdomain) entries.push_back({*std::move(decoded), n3});
      }
    }
    if (!params_ok || entries.empty()) return;
    const Bytes& salt = entries.front().rdata->salt;
    const std::uint16_t iterations = entries.front().rdata->iterations;
    const auto hash_of = [&](const dns::Name& name) {
      return zone::nsec3_hash(name, salt, iterations);
    };
    const auto find_match = [&](const dns::Name& name) -> const Entry* {
      const Bytes h = hash_of(name);
      for (const auto& e : entries) {
        if (e.owner_hash == h) return &e;
      }
      return nullptr;
    };
    const auto hash_covers = [](const Bytes& owner_hash,
                                const Bytes& next_hash, const Bytes& target) {
      if (owner_hash < next_hash) {
        return owner_hash < target && target < next_hash;
      }
      return target > owner_hash || target < next_hash;
    };
    const auto find_cover = [&](const dns::Name& name) -> const Entry* {
      const Bytes h = hash_of(name);
      for (const auto& e : entries) {
        if (hash_covers(e.owner_hash, e.rdata->next_hashed, h)) return &e;
      }
      return nullptr;
    };

    if (nx.rcode == dns::RCode::kNXDomain) {
      // Closest-encloser proof (RFC 5155 §8.4) over the served subset.
      const Entry* ce = nullptr;
      dns::Name ce_name = nx_name;
      while (ce_name.label_count() >= apex_.label_count()) {
        if (ce_name.label_count() < nx_name.label_count()) {
          ce = find_match(ce_name);
          if (ce != nullptr) break;
        }
        if (ce_name.is_root()) break;
        ce_name = ce_name.parent();
      }
      if (ce == nullptr) {
        if (find_cover(nx_name) != nullptr) {
          sink_.add(ErrorCode::kInconsistentAncestorForNxdomain, apex_,
                    "no NSEC3 record matches any ancestor of the denied name",
                    fix_resign(g_, apex_));
        } else {
          sink_.add(ErrorCode::kBadNonexistenceProof, apex_,
                    "NSEC3 records neither match nor cover the denied name",
                    fix_resign(g_, apex_));
        }
        return;
      }
      dns::Name next_closer = nx_name;
      while (next_closer.label_count() > ce_name.label_count() + 1) {
        next_closer = next_closer.parent();
      }
      const Entry* nc_cover = find_cover(next_closer);
      if (nc_cover == nullptr) {
        sink_.add(ErrorCode::kIncorrectClosestEncloserProof, apex_,
                  "no NSEC3 record covers the next-closer name " +
                      next_closer.to_string(),
                  fix_resign(g_, apex_));
        return;
      }
      const dns::Name wildcard = ce_name.child("*");
      if (find_cover(wildcard) == nullptr && find_match(wildcard) == nullptr &&
          !nc_cover->rdata->opt_out()) {
        sink_.add(ErrorCode::kBadNonexistenceProof, apex_,
                  "no NSEC3 record denies the wildcard " +
                      wildcard.to_string(),
                  fix_resign(g_, apex_));
      }
    }

    // NODATA probe: the NSEC3 matching the apex owns the type bitmap.
    for (const auto& owner : nodata.owners) {
      check_rrset_node(find_node(owner, dns::RRType::kNSEC3), all_keys_,
                       true);
      const auto* rrset = zone_.find(owner, dns::RRType::kNSEC3);
      if (rrset == nullptr) continue;
      for (const auto& rdata : rrset->rdatas()) {
        const auto* n3 = std::get_if<dns::Nsec3Rdata>(&rdata);
        if (n3 == nullptr) continue;
        auto decoded = base32hex_decode(owner.leftmost_label());
        if (!decoded || *decoded != hash_of(apex_)) continue;
        if (n3->types.contains(dns::RRType::kMX)) {
          sink_.add(ErrorCode::kIncorrectTypeBitmap, apex_,
                    "NSEC3 bitmap asserts MX exists at the apex, but the "
                    "server answered NODATA",
                    fix_resign(g_, apex_));
        }
        if (!n3->types.contains(dns::RRType::kSOA) ||
            !n3->types.contains(dns::RRType::kNS)) {
          sink_.add(ErrorCode::kIncorrectTypeBitmap, apex_,
                    "NSEC3 bitmap at the apex omits SOA/NS",
                    fix_resign(g_, apex_));
        }
      }
    }
    if (nodata.rcode == dns::RCode::kNoError && !nodata.positive &&
        nodata.owners.empty()) {
      sink_.add(ErrorCode::kMissingNonexistenceProof, apex_,
                "NODATA response carries no NSEC or NSEC3 records",
                fix_resign(g_, apex_));
    }
  }

  void check_denial_nsec(const SimResponse& nx, const SimResponse& last,
                         const SimResponse& nodata, const dns::Name& nx_name,
                         const dns::Name& last_name) {
    const auto nsec_covers = [](const dns::Name& owner, const dns::Name& next,
                                const dns::Name& name) {
      if (owner < next) return owner < name && name < next;
      return name > owner || name < next;
    };
    if (nx.rcode == dns::RCode::kNXDomain) {
      bool covered = false;
      for (const auto& owner : nx.owners) {
        const auto* rrset = zone_.find(owner, dns::RRType::kNSEC);
        if (rrset == nullptr) continue;
        for (const auto& rdata : rrset->rdatas()) {
          const auto* nsec = std::get_if<dns::NsecRdata>(&rdata);
          if (nsec == nullptr) continue;
          if (nsec_covers(owner, nsec->next, nx_name)) covered = true;
        }
      }
      if (!covered) {
        sink_.add(ErrorCode::kBadNonexistenceProof, apex_,
                  "no NSEC record covers the denied name " +
                      nx_name.to_string(),
                  fix_resign(g_, apex_));
      }
      // Wrap-around sanity via the sorts-last probe.
      for (const auto& owner : last.owners) {
        check_rrset_node(find_node(owner, dns::RRType::kNSEC), all_keys_,
                         true);
        const auto* rrset = zone_.find(owner, dns::RRType::kNSEC);
        if (rrset == nullptr) continue;
        for (const auto& rdata : rrset->rdatas()) {
          const auto* nsec = std::get_if<dns::NsecRdata>(&rdata);
          if (nsec == nullptr) continue;
          if (nsec_covers(owner, nsec->next, last_name) &&
              owner > nsec->next && nsec->next != apex_) {
            sink_.add(ErrorCode::kIncorrectLastNsec, apex_,
                      "the final NSEC record points to " +
                          nsec->next.to_string() +
                          " instead of the zone apex",
                      fix_resign(g_, apex_));
          }
        }
      }
    }
    // NODATA bitmap check at the apex.
    for (const auto& owner : nodata.owners) {
      check_rrset_node(find_node(owner, dns::RRType::kNSEC), all_keys_,
                       true);
      if (owner != apex_) continue;
      const auto* rrset = zone_.find(owner, dns::RRType::kNSEC);
      if (rrset == nullptr) continue;
      for (const auto& rdata : rrset->rdatas()) {
        const auto* nsec = std::get_if<dns::NsecRdata>(&rdata);
        if (nsec == nullptr) continue;
        if (nsec->types.contains(dns::RRType::kMX)) {
          sink_.add(ErrorCode::kIncorrectTypeBitmap, apex_,
                    "NSEC bitmap asserts MX exists at the apex, but the "
                    "server answered NODATA",
                    fix_resign(g_, apex_));
        }
        if (!nsec->types.contains(dns::RRType::kSOA) ||
            !nsec->types.contains(dns::RRType::kNS)) {
          sink_.add(ErrorCode::kIncorrectTypeBitmap, apex_,
                    "NSEC bitmap at the apex omits SOA/NS",
                    fix_resign(g_, apex_));
        }
      }
    }
    if (nodata.rcode == dns::RCode::kNoError && !nodata.positive &&
        nodata.owners.empty()) {
      sink_.add(ErrorCode::kMissingNonexistenceProof, apex_,
                "NODATA response carries no NSEC or NSEC3 records",
                fix_resign(g_, apex_));
    }
  }

  // Rule F — the validator work budget. The cost model prices the whole
  // zone's worst case; a validator enforcing the same budgets would abandon
  // the zone with kValidatorWorkBudgetExceeded (EDE 49). The hashing side
  // only applies when the iteration count is *under* the refusal cap — at
  // or above the cap a validator refuses before hashing anything.
  void check_budget() {
    if (cost_.signature_attempts > options_.budget.max_sig_validations) {
      sink_.add(ErrorCode::kValidatorWorkBudgetExceeded, apex_,
                "worst-case signature validations " +
                    std::to_string(cost_.signature_attempts) +
                    " exceed the budget of " +
                    std::to_string(options_.budget.max_sig_validations),
                fix_prune_colliding(g_, apex_));
      return;
    }
    if (g_.denial.uses_nsec3() &&
        cost_.nsec3_iterations <= options_.budget.max_nsec3_iterations &&
        cost_.negative_proof_hash_cost > options_.budget.max_hash_cost) {
      sink_.add(ErrorCode::kValidatorWorkBudgetExceeded, apex_,
                "worst-case NSEC3 hashing cost " +
                    std::to_string(cost_.negative_proof_hash_cost) +
                    " exceeds the budget of " +
                    std::to_string(options_.budget.max_hash_cost),
                fix_resign(g_, apex_, std::uint16_t{0}));
    }
  }

 public:
  void set_cost(const ValidationCost& cost) { cost_ = cost; }

 private:
  const zone::Zone& zone_;
  const TrustGraph& g_;
  const LintOptions& options_;
  dns::Name apex_;
  Sink sink_;
  std::vector<std::size_t> all_keys_;
  std::vector<std::size_t> sep_keys_;
  ValidationCost cost_;
};

}  // namespace

Report lint_zone(const zone::Zone& zone,
                 std::span<const dns::DsRdata> parent_ds,
                 const LintOptions& options) {
  Report report;
  report.apex = zone.apex();
  const TrustGraph graph = build_trust_graph(zone, parent_ds);
  report.zone_signed = graph.is_signed();
  report.cost = estimate_cost(graph);
  Linter linter(zone, graph, options, report);
  linter.set_cost(report.cost);
  linter.run();
  return report;
}

std::set<analyzer::ErrorCode> finding_codes(const Report& report) {
  std::set<analyzer::ErrorCode> codes;
  for (const auto& f : report.findings) codes.insert(f.code);
  return codes;
}

}  // namespace dfx::zonelint
