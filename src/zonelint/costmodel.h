// Worst-case validator work for one zone, computed from the trust graph.
//
// The model prices exactly the two resources the KeyTrap attack class
// (CVE-2023-50387/50868) exhausts:
//
//  - Signature verifications. A validator must try every DNSKEY matching
//    an RRSIG's (key tag, algorithm) pair, so the worst case for one RRset
//    is sum over its RRSIGs of the candidate-key count — colliding tags
//    multiply the candidates, many RRSIGs multiply the sums.
//  - NSEC3 hashing. One RFC 5155 §8.4 nonexistence proof hashes the
//    closest-encloser candidates, the next-closer name and the wildcard;
//    each hash costs iterations + 1 SHA-1 applications.
//
// The numbers mirror what the budgeted validator (analyzer/grok.cpp)
// actually charges per zone view, so a zone whose static cost fits the
// GrokConfig budget validates without tripping
// kValidatorWorkBudgetExceeded.
#pragma once

#include <cstddef>
#include <cstdint>

#include "zonelint/graph.h"

namespace dfx::zonelint {

/// Hashes one negative lookup may need under §8.4: the closest-encloser
/// probe at the apex, the next-closer cover, wildcard cover + match, and
/// the NODATA bitmap match at the apex.
inline constexpr std::size_t kHashProbesPerNegativeLookup = 5;

struct ValidationCost {
  /// Worst-case signature-verification attempts across every signed RRset.
  std::size_t signature_attempts = 0;
  /// The single worst RRset's (RRSIG, candidate DNSKEY) pairing count.
  std::size_t max_rrset_pairings = 0;
  /// (key tag, algorithm) groups shared by two or more DNSKEYs, and how
  /// many surplus keys those groups hold in total.
  std::size_t colliding_tag_groups = 0;
  std::size_t surplus_colliding_keys = 0;
  /// Highest NSEC3 iteration count advertised anywhere in the zone.
  std::uint16_t nsec3_iterations = 0;
  /// SHA-1 applications one negative lookup costs at that iteration count.
  std::size_t negative_proof_hash_cost = 0;
};

ValidationCost estimate_cost(const TrustGraph& graph);

}  // namespace dfx::zonelint
