// ZoneStore admission checking backed by zonelint's cost model.
//
// The serving path must not let a KeyTrap-shaped zone through to resolvers:
// once served, every validating client pays the blowup. The admission
// policy runs a dedicated single-pass cost scan — no trust-graph node
// construction, no denial-chain decoding, no probe emulation — so upsert
// latency stays within the benchmarked <5% overhead budget
// (bench/bench_zonelint.cpp).
//
// Verdicts:
//  - kReject: the zone's worst-case validator work exceeds the budget
//    (pairing blowup) or its NSEC3 iteration count is above the refusal
//    cap. The store refuses the upsert.
//  - kFlag: colliding key tags present but the work still fits the budget.
//    Admitted, counted, for operators to chase.
//  - kAdmit: everything else.
#pragma once

#include "analyzer/grok.h"
#include "server/zonestore.h"
#include "zonelint/costmodel.h"

namespace dfx::zonelint {

/// The single-pass cost scan the admission policy runs: one walk over the
/// zone's RRsets, no graph allocation. Agrees with
/// estimate_cost(build_trust_graph(zone)) on the priced fields for any
/// zone without signed occluded glue (where it over-counts — a deliberate
/// upper bound on the validator's work). `zone_signed`, when non-null,
/// receives whether the zone carries DNSKEYs or RRSIGs at all.
ValidationCost admission_cost_scan(const zone::Zone& zone,
                                   bool* zone_signed = nullptr);

/// Build an admission policy enforcing `budget` (defaults mirror the
/// budgeted validator). Install with ZoneStore::set_admission_policy; the
/// returned callable is self-contained and thread-compatible (the store
/// serializes calls under its writer lock).
server::AdmissionPolicy make_admission_policy(
    analyzer::GrokConfig budget = {});

}  // namespace dfx::zonelint
