#include "zonelint/admission.h"

#include <algorithm>
#include <string>
#include <vector>

#include "zonelint/costmodel.h"

namespace dfx::zonelint {

namespace {

/// (key tag, algorithm) → DNSKEY count, as a flat linearly-searched array:
/// real key sets hold a handful of entries and the scan runs on the upsert
/// hot path, where per-node map allocations dominate the walk itself.
struct TagCounts {
  struct Entry {
    std::uint16_t tag;
    std::uint8_t algorithm;
    std::size_t count;
  };
  std::vector<Entry> entries;

  void add(std::uint16_t tag, std::uint8_t algorithm) {
    for (auto& e : entries) {
      if (e.tag == tag && e.algorithm == algorithm) {
        ++e.count;
        return;
      }
    }
    entries.push_back({tag, algorithm, 1});
  }
  std::size_t count_of(std::uint16_t tag, std::uint8_t algorithm) const {
    for (const auto& e : entries) {
      if (e.tag == tag && e.algorithm == algorithm) return e.count;
    }
    return 0;
  }
};

}  // namespace

ValidationCost admission_cost_scan(const zone::Zone& zone,
                                   bool* zone_signed) {
  ValidationCost cost;
  const dns::Name& apex = zone.apex();
  bool saw_signed = false;
  bool saw_nsec3 = false;

  TagCounts tag_count;
  if (const auto* dnskeys = zone.find(apex, dns::RRType::kDNSKEY)) {
    saw_signed = !dnskeys->empty();
    for (const auto& rdata : dnskeys->rdatas()) {
      if (const auto* key = std::get_if<dns::DnskeyRdata>(&rdata)) {
        tag_count.add(key->key_tag(), key->algorithm);
      }
    }
  }
  for (const auto& e : tag_count.entries) {
    if (e.count < 2) continue;
    ++cost.colliding_tag_groups;
    cost.surplus_colliding_keys += e.count - 1;
  }

  std::uint16_t iterations = 0;
  if (const auto* params = zone.find(apex, dns::RRType::kNSEC3PARAM)) {
    saw_nsec3 = true;
    for (const auto& rdata : params->rdatas()) {
      if (const auto* p = std::get_if<dns::Nsec3ParamRdata>(&rdata)) {
        iterations = std::max(iterations, p->iterations);
      }
    }
  }

  // Scratch for the per-RRSIG-rrset pairing tally, hoisted so the walk
  // allocates at most once. A sane RRSIG set covers one or two types.
  struct TypePairings {
    dns::RRType type;
    std::size_t pairings;
  };
  std::vector<TypePairings> per_type;
  zone.for_each_rrset([&](const dns::RRset& rrset) {
    if (rrset.type() == dns::RRType::kNSEC3) {
      saw_nsec3 = true;
      for (const auto& rdata : rrset.rdatas()) {
        if (const auto* n = std::get_if<dns::Nsec3Rdata>(&rdata)) {
          iterations = std::max(iterations, n->iterations);
        }
      }
      return;
    }
    if (rrset.type() != dns::RRType::kRRSIG) return;
    saw_signed = true;
    // Pairings per covered RRset at this owner: sum of candidate counts
    // over the sigs sharing a type_covered (the per-RRset blowup KeyTrap
    // maximizes). Counts stray RRSIGs over absent types too — a deliberate
    // upper bound; a validator still has to recognize them.
    per_type.clear();
    for (const auto& rdata : rrset.rdatas()) {
      const auto* sig = std::get_if<dns::RrsigRdata>(&rdata);
      if (sig == nullptr) continue;
      const std::size_t candidates =
          tag_count.count_of(sig->key_tag, sig->algorithm);
      bool merged = false;
      for (auto& tp : per_type) {
        if (tp.type == sig->type_covered) {
          tp.pairings += candidates;
          merged = true;
          break;
        }
      }
      if (!merged) per_type.push_back({sig->type_covered, candidates});
    }
    for (const auto& tp : per_type) {
      cost.signature_attempts += tp.pairings;
      cost.max_rrset_pairings =
          std::max(cost.max_rrset_pairings, tp.pairings);
    }
  });

  cost.nsec3_iterations = iterations;
  if (saw_nsec3) {
    cost.negative_proof_hash_cost =
        kHashProbesPerNegativeLookup *
        (static_cast<std::size_t>(iterations) + 1);
  }
  if (zone_signed != nullptr) *zone_signed = saw_signed;
  return cost;
}

server::AdmissionPolicy make_admission_policy(analyzer::GrokConfig budget) {
  return [budget](const zone::Zone& zone) {
    server::AdmissionVerdict verdict;
    bool zone_signed = false;
    const ValidationCost cost = admission_cost_scan(zone, &zone_signed);
    if (!zone_signed) return verdict;  // plain DNS: nothing to price
    if (cost.nsec3_iterations > budget.max_nsec3_iterations) {
      verdict.action = server::AdmissionVerdict::Action::kReject;
      verdict.reason = "NSEC3 iterations=" +
                       std::to_string(cost.nsec3_iterations) +
                       " above the validator cap of " +
                       std::to_string(budget.max_nsec3_iterations);
      return verdict;
    }
    if (cost.signature_attempts > budget.max_sig_validations ||
        cost.max_rrset_pairings > budget.sig_pairing_threshold) {
      verdict.action = server::AdmissionVerdict::Action::kReject;
      verdict.reason =
          "worst-case validator work " +
          std::to_string(cost.signature_attempts) +
          " signature attempts (single-RRset peak " +
          std::to_string(cost.max_rrset_pairings) +
          ") exceeds the budget";
      return verdict;
    }
    if (cost.colliding_tag_groups > 0) {
      verdict.action = server::AdmissionVerdict::Action::kFlag;
      verdict.reason = std::to_string(cost.colliding_tag_groups) +
                       " DNSKEY (key tag, algorithm) collision group(s), " +
                       std::to_string(cost.surplus_colliding_keys) +
                       " surplus key(s)";
    }
    return verdict;
  };
}

}  // namespace dfx::zonelint
