#include "zonelint/costmodel.h"

#include <algorithm>
#include <map>
#include <utility>

namespace dfx::zonelint {

ValidationCost estimate_cost(const TrustGraph& graph) {
  ValidationCost cost;

  for (const auto& node : graph.rrsets) {
    if (!node.authoritative) continue;
    std::size_t pairings = 0;
    for (const auto& sig : node.sigs) {
      pairings += sig.candidates.size();
    }
    cost.signature_attempts += pairings;
    cost.max_rrset_pairings = std::max(cost.max_rrset_pairings, pairings);
  }

  std::map<std::pair<std::uint16_t, std::uint8_t>, std::size_t> tag_count;
  for (const auto& key : graph.keys) {
    ++tag_count[{key.tag, key.rdata.algorithm}];
  }
  for (const auto& [tag_alg, count] : tag_count) {
    if (count < 2) continue;
    ++cost.colliding_tag_groups;
    cost.surplus_colliding_keys += count - 1;
  }

  std::uint16_t iterations = 0;
  if (graph.denial.params.has_value()) {
    iterations = graph.denial.params->iterations;
  }
  for (const auto& span : graph.denial.nsec3) {
    iterations = std::max(iterations, span.rdata.iterations);
  }
  cost.nsec3_iterations = iterations;
  if (graph.denial.uses_nsec3()) {
    cost.negative_proof_hash_cost =
        kHashProbesPerNegativeLookup *
        (static_cast<std::size_t>(iterations) + 1);
  }
  return cost;
}

}  // namespace dfx::zonelint
