// The explicit chain-of-trust graph zonelint analyses.
//
// Where the analyzer's grok stage reconstructs trust from *probe responses*
// (what servers actually answered), this graph is built statically from the
// zone data itself: DS → DNSKEY links, RRSIG → candidate-DNSKEY edges per
// RRset, and the NSEC/NSEC3 denial spans. Rules over the graph predict the
// grok error codes a validator would emit — without performing a single
// signature verification — and the cost model (costmodel.h) reads the same
// edges to bound the validator's worst-case work. The graph is also the
// substrate for whole-chain reasoning across delegations (ROADMAP item 4):
// every cut below the apex is recorded as a delegation edge.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "dnscore/rdata.h"
#include "dnscore/rrset.h"
#include "zone/zone.h"

namespace dfx::zonelint {

/// One DNSKEY in the apex key set, with the static facts rules need.
struct KeyNode {
  dns::DnskeyRdata rdata;
  std::uint16_t tag = 0;
  bool revoked = false;
  bool sep = false;               // SEP bit (operationally: a KSK)
  bool plausible_length = true;   // key material decodes for its algorithm
};

/// One RRSIG over one RRset, with edges to every DNSKEY a validator would
/// have to try: key tags are not unique (RFC 4034 App. B), so all keys
/// matching the RRSIG's (key tag, algorithm) pair are candidates — the
/// multiplicity KeyTrap exploits.
struct SigEdge {
  dns::RrsigRdata rdata;
  std::vector<std::size_t> candidates;  // indices into TrustGraph::keys
};

/// One RRset node plus its covering signatures. Non-authoritative nodes
/// (delegation NS sets, occluded glue) exist in the graph — delegations are
/// the cross-zone edges — but are exempt from signature requirements.
struct RRsetNode {
  const dns::RRset* rrset = nullptr;
  bool authoritative = true;
  bool delegation_ns = false;  // an NS set at a cut below the apex
  std::vector<SigEdge> sigs;
};

/// Parent DS → child DNSKEY link. Only present when the caller supplies
/// the parent's DS set; a standalone zone has no DS links and is analysed
/// as an island of trust.
struct DsLink {
  dns::DsRdata rdata;
  std::optional<std::size_t> matched_key;   // (tag, algorithm) match
  bool algorithm_present = false;           // some key carries the algorithm
  std::optional<std::size_t> revoked_link;  // matches a pre-revocation tag
  bool digest_supported = true;
  bool digest_ok = false;  // digest recomputed over the matched key agrees
};

/// One span of the NSEC chain.
struct NsecSpan {
  dns::Name owner;
  dns::NsecRdata rdata;
};

/// One span of the NSEC3 ring, with the owner hash decoded from the label
/// when it is well-formed (nullopt marks a broken owner name).
struct Nsec3Span {
  dns::Name owner;
  dns::Nsec3Rdata rdata;
  std::optional<Bytes> owner_hash;
};

/// The zone's negative-proof machinery.
struct DenialChain {
  std::optional<dns::Nsec3ParamRdata> params;  // apex NSEC3PARAM, if any
  std::vector<NsecSpan> nsec;
  std::vector<Nsec3Span> nsec3;

  bool uses_nsec3() const { return !nsec3.empty() || params.has_value(); }
};

struct TrustGraph {
  const zone::Zone* zone = nullptr;
  std::vector<KeyNode> keys;
  std::vector<RRsetNode> rrsets;  // every RRset except the RRSIGs themselves
  std::vector<DsLink> ds_links;
  DenialChain denial;

  bool is_signed() const { return !keys.empty(); }

  /// Indices of every key a validator must try for (tag, algorithm).
  std::vector<std::size_t> keys_matching(std::uint16_t tag,
                                         std::uint8_t algorithm) const;
};

/// Build the graph for one zone. `parent_ds` is the DS set the parent
/// publishes for this zone's apex (empty when unknown: DS-linkage rules
/// are then skipped, everything else still runs).
TrustGraph build_trust_graph(const zone::Zone& zone,
                             std::span<const dns::DsRdata> parent_ds = {});

}  // namespace dfx::zonelint
