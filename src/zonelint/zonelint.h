// zonelint: static trust-chain analysis of zone data.
//
// Runs rule-based checks over the chain-of-trust graph (graph.h) and the
// validator cost model (costmodel.h) to predict the DNSViz-style error
// codes grok would emit for the zone — without a single signature
// verification or probe. The prediction is exact for every code whose
// evidence is visible in zone data; two codes are inherently out of reach:
//
//  - kInvalidSignature from a *corrupted* signature: indistinguishable from
//    a valid one without doing the crypto (an RRSIG by a key absent from
//    the DNSKEY RRset is still reported — that case is structural).
//  - kInconsistentDnskeyBetweenServers: a cross-server property; a single
//    zone file has nothing to disagree with.
//
// Every finding carries a machine-applicable fix (a zone::Instruction, the
// same vocabulary DFixer emits) so downstream tooling can repair what the
// lint flagged.
#pragma once

#include <set>
#include <span>
#include <string>
#include <vector>

#include "analyzer/errorcode.h"
#include "analyzer/grok.h"
#include "util/simclock.h"
#include "zone/bindcmd.h"
#include "zonelint/costmodel.h"
#include "zonelint/graph.h"

namespace dfx::zonelint {

struct LintOptions {
  /// The work budgets the live validator enforces (grok uses the same
  /// defaults); the lint flags any zone whose static worst-case cost would
  /// trip them.
  analyzer::GrokConfig budget;
  /// Reference time for the signature-window rules. 0 disables the
  /// temporal checks (useful when linting archived zone files).
  UnixTime now = 0;
};

/// One predicted error with its location, evidence and repair.
struct Finding {
  analyzer::ErrorCode code = analyzer::ErrorCode::kMissingSignature;
  dns::Name zone;
  std::string detail;
  /// Machine-applicable repair in DFixer's instruction vocabulary (empty
  /// command list when no automatic fix applies).
  zone::Instruction fix;
};

struct Report {
  dns::Name apex;
  bool zone_signed = false;
  ValidationCost cost;
  /// Error-level predictions (grok's `errors`) and companion-category
  /// predictions (grok's `companions`), both de-duplicated by code.
  std::vector<Finding> findings;
  std::vector<Finding> companions;
};

/// Analyse one zone. `parent_ds` is the DS set the parent publishes for
/// this apex; empty skips the DS-linkage rules (island of trust).
Report lint_zone(const zone::Zone& zone,
                 std::span<const dns::DsRdata> parent_ds = {},
                 const LintOptions& options = {});

/// The error-level codes of a report, as a set (prediction comparisons).
std::set<analyzer::ErrorCode> finding_codes(const Report& report);

}  // namespace dfx::zonelint
