#include "util/codec.h"

#include <array>
#include <cctype>

namespace dfx {
namespace {

constexpr char kHexDigits[] = "0123456789abcdef";
constexpr char kBase32Hex[] = "0123456789ABCDEFGHIJKLMNOPQRSTUV";
constexpr char kBase64[] =
    "ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz0123456789+/";

// Decode tables: one 256-entry lookup per alphabet replaces the per-char
// compare chains, so the decode inner loops are branchless except for the
// single `< 0` validity test. Sentinel values (all < 0):
//   kBad  — byte is not in the alphabet (decode fails)
//   kPad  — '=' padding (ends the payload)
//   kSkip — whitespace (ignored where the codec allows it)
constexpr std::int8_t kBad = -1;
constexpr std::int8_t kPad = -2;
constexpr std::int8_t kSkip = -3;

using DecodeTable = std::array<std::int8_t, 256>;

constexpr DecodeTable make_hex_table() {
  DecodeTable t{};
  for (auto& v : t) v = kBad;
  for (int i = 0; i < 10; ++i) t[static_cast<std::size_t>('0' + i)] =
      static_cast<std::int8_t>(i);
  for (int i = 0; i < 6; ++i) {
    t[static_cast<std::size_t>('a' + i)] = static_cast<std::int8_t>(10 + i);
    t[static_cast<std::size_t>('A' + i)] = static_cast<std::int8_t>(10 + i);
  }
  return t;
}

constexpr DecodeTable make_base32hex_table() {
  DecodeTable t{};
  for (auto& v : t) v = kBad;
  for (int i = 0; i < 10; ++i) t[static_cast<std::size_t>('0' + i)] =
      static_cast<std::int8_t>(i);
  for (int i = 0; i < 22; ++i) {  // A..V / a..v
    t[static_cast<std::size_t>('A' + i)] = static_cast<std::int8_t>(10 + i);
    t[static_cast<std::size_t>('a' + i)] = static_cast<std::int8_t>(10 + i);
  }
  t[static_cast<std::size_t>('=')] = kPad;
  return t;
}

constexpr DecodeTable make_base64_table() {
  DecodeTable t{};
  for (auto& v : t) v = kBad;
  for (int i = 0; i < 26; ++i) {
    t[static_cast<std::size_t>('A' + i)] = static_cast<std::int8_t>(i);
    t[static_cast<std::size_t>('a' + i)] = static_cast<std::int8_t>(26 + i);
  }
  for (int i = 0; i < 10; ++i) t[static_cast<std::size_t>('0' + i)] =
      static_cast<std::int8_t>(52 + i);
  t[static_cast<std::size_t>('+')] = 62;
  t[static_cast<std::size_t>('/')] = 63;
  t[static_cast<std::size_t>('=')] = kPad;
  // base64_decode historically skipped ASCII whitespace (PEM-style input).
  for (unsigned char c : {' ', '\t', '\n', '\v', '\f', '\r'}) t[c] = kSkip;
  return t;
}

constexpr DecodeTable kHexTable = make_hex_table();
constexpr DecodeTable kBase32HexTable = make_base32hex_table();
constexpr DecodeTable kBase64Table = make_base64_table();

}  // namespace

std::string hex_encode(ByteView data) {
  std::string out;
  out.resize(data.size() * 2);
  char* p = out.data();
  for (std::uint8_t b : data) {
    *p++ = kHexDigits[b >> 4];
    *p++ = kHexDigits[b & 0xF];
  }
  return out;
}

std::optional<Bytes> hex_decode(std::string_view text) {
  if (text == "-") return Bytes{};
  if (text.size() % 2 != 0) return std::nullopt;
  Bytes out(text.size() / 2);
  std::uint8_t* p = out.data();
  for (std::size_t i = 0; i < text.size(); i += 2) {
    const std::int8_t hi = kHexTable[static_cast<std::uint8_t>(text[i])];
    const std::int8_t lo = kHexTable[static_cast<std::uint8_t>(text[i + 1])];
    if ((hi | lo) < 0) return std::nullopt;  // one test for both digits
    *p++ = static_cast<std::uint8_t>((hi << 4) | lo);
  }
  return out;
}

// dfx-lint: allow(hot-path-cost): the output buffer is the product.
std::string base32hex_encode(ByteView data) {
  std::string out;
  out.reserve((data.size() * 8 + 4) / 5);
  std::uint32_t buffer = 0;
  int bits = 0;
  for (std::uint8_t b : data) {
    buffer = (buffer << 8) | b;
    bits += 8;
    while (bits >= 5) {
      bits -= 5;
      out.push_back(kBase32Hex[(buffer >> bits) & 0x1F]);
    }
  }
  if (bits > 0) {
    out.push_back(kBase32Hex[(buffer << (5 - bits)) & 0x1F]);
  }
  return out;
}

// dfx-lint: allow(hot-path-cost): the output buffer is the product.
std::optional<Bytes> base32hex_decode(std::string_view text) {
  Bytes out;
  out.reserve(text.size() * 5 / 8);
  std::uint32_t buffer = 0;
  int bits = 0;
  for (char c : text) {
    const std::int8_t v = kBase32HexTable[static_cast<std::uint8_t>(c)];
    if (v < 0) {
      if (v == kPad) break;  // padding: remainder must be zero bits
      return std::nullopt;
    }
    buffer = (buffer << 5) | static_cast<std::uint32_t>(v);
    bits += 5;
    if (bits >= 8) {
      bits -= 8;
      out.push_back(static_cast<std::uint8_t>((buffer >> bits) & 0xFF));
    }
  }
  return out;
}

// dfx-lint: allow(hot-path-cost): the output buffer is the product.
std::string base64_encode(ByteView data) {
  std::string out;
  out.resize(((data.size() + 2) / 3) * 4);
  char* p = out.data();
  std::size_t i = 0;
  for (; i + 3 <= data.size(); i += 3) {
    const std::uint32_t v = (static_cast<std::uint32_t>(data[i]) << 16) |
                            (static_cast<std::uint32_t>(data[i + 1]) << 8) |
                            data[i + 2];
    *p++ = kBase64[(v >> 18) & 0x3F];
    *p++ = kBase64[(v >> 12) & 0x3F];
    *p++ = kBase64[(v >> 6) & 0x3F];
    *p++ = kBase64[v & 0x3F];
  }
  const std::size_t rem = data.size() - i;
  if (rem == 1) {
    const std::uint32_t v = static_cast<std::uint32_t>(data[i]) << 16;
    *p++ = kBase64[(v >> 18) & 0x3F];
    *p++ = kBase64[(v >> 12) & 0x3F];
    *p++ = '=';
    *p++ = '=';
  } else if (rem == 2) {
    const std::uint32_t v = (static_cast<std::uint32_t>(data[i]) << 16) |
                            (static_cast<std::uint32_t>(data[i + 1]) << 8);
    *p++ = kBase64[(v >> 18) & 0x3F];
    *p++ = kBase64[(v >> 12) & 0x3F];
    *p++ = kBase64[(v >> 6) & 0x3F];
    *p++ = '=';
  }
  return out;
}

// dfx-lint: allow(hot-path-cost): the output buffer is the product.
std::optional<Bytes> base64_decode(std::string_view text) {
  Bytes out;
  out.reserve(text.size() * 3 / 4);
  std::uint32_t buffer = 0;
  int bits = 0;
  for (char c : text) {
    const std::int8_t v = kBase64Table[static_cast<std::uint8_t>(c)];
    if (v < 0) {
      if (v == kSkip) continue;  // whitespace is tolerated (PEM-style)
      if (v == kPad) break;
      return std::nullopt;
    }
    buffer = (buffer << 6) | static_cast<std::uint32_t>(v);
    bits += 6;
    if (bits >= 8) {
      bits -= 8;
      out.push_back(static_cast<std::uint8_t>((buffer >> bits) & 0xFF));
    }
  }
  return out;
}

}  // namespace dfx
