#include "util/codec.h"

#include <array>
#include <cctype>

namespace dfx {
namespace {

constexpr char kHexDigits[] = "0123456789abcdef";
constexpr char kBase32Hex[] = "0123456789ABCDEFGHIJKLMNOPQRSTUV";
constexpr char kBase64[] =
    "ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz0123456789+/";

int hex_value(char c) {
  if (c >= '0' && c <= '9') return c - '0';
  if (c >= 'a' && c <= 'f') return c - 'a' + 10;
  if (c >= 'A' && c <= 'F') return c - 'A' + 10;
  return -1;
}

int base32hex_value(char c) {
  if (c >= '0' && c <= '9') return c - '0';
  if (c >= 'A' && c <= 'V') return c - 'A' + 10;
  if (c >= 'a' && c <= 'v') return c - 'a' + 10;
  return -1;
}

int base64_value(char c) {
  if (c >= 'A' && c <= 'Z') return c - 'A';
  if (c >= 'a' && c <= 'z') return c - 'a' + 26;
  if (c >= '0' && c <= '9') return c - '0' + 52;
  if (c == '+') return 62;
  if (c == '/') return 63;
  return -1;
}

}  // namespace

std::string hex_encode(ByteView data) {
  std::string out;
  out.reserve(data.size() * 2);
  for (std::uint8_t b : data) {
    out.push_back(kHexDigits[b >> 4]);
    out.push_back(kHexDigits[b & 0xF]);
  }
  return out;
}

std::optional<Bytes> hex_decode(std::string_view text) {
  if (text == "-") return Bytes{};
  if (text.size() % 2 != 0) return std::nullopt;
  Bytes out;
  out.reserve(text.size() / 2);
  for (std::size_t i = 0; i < text.size(); i += 2) {
    const int hi = hex_value(text[i]);
    const int lo = hex_value(text[i + 1]);
    if (hi < 0 || lo < 0) return std::nullopt;
    out.push_back(static_cast<std::uint8_t>((hi << 4) | lo));
  }
  return out;
}

std::string base32hex_encode(ByteView data) {
  std::string out;
  out.reserve((data.size() * 8 + 4) / 5);
  std::uint32_t buffer = 0;
  int bits = 0;
  for (std::uint8_t b : data) {
    buffer = (buffer << 8) | b;
    bits += 8;
    while (bits >= 5) {
      bits -= 5;
      out.push_back(kBase32Hex[(buffer >> bits) & 0x1F]);
    }
  }
  if (bits > 0) {
    out.push_back(kBase32Hex[(buffer << (5 - bits)) & 0x1F]);
  }
  return out;
}

std::optional<Bytes> base32hex_decode(std::string_view text) {
  Bytes out;
  std::uint32_t buffer = 0;
  int bits = 0;
  for (char c : text) {
    if (c == '=') break;  // padding: remainder must be zero bits
    const int v = base32hex_value(c);
    if (v < 0) return std::nullopt;
    buffer = (buffer << 5) | static_cast<std::uint32_t>(v);
    bits += 5;
    if (bits >= 8) {
      bits -= 8;
      out.push_back(static_cast<std::uint8_t>((buffer >> bits) & 0xFF));
    }
  }
  return out;
}

std::string base64_encode(ByteView data) {
  std::string out;
  out.reserve(((data.size() + 2) / 3) * 4);
  std::size_t i = 0;
  for (; i + 3 <= data.size(); i += 3) {
    const std::uint32_t v = (static_cast<std::uint32_t>(data[i]) << 16) |
                            (static_cast<std::uint32_t>(data[i + 1]) << 8) |
                            data[i + 2];
    out.push_back(kBase64[(v >> 18) & 0x3F]);
    out.push_back(kBase64[(v >> 12) & 0x3F]);
    out.push_back(kBase64[(v >> 6) & 0x3F]);
    out.push_back(kBase64[v & 0x3F]);
  }
  const std::size_t rem = data.size() - i;
  if (rem == 1) {
    const std::uint32_t v = static_cast<std::uint32_t>(data[i]) << 16;
    out.push_back(kBase64[(v >> 18) & 0x3F]);
    out.push_back(kBase64[(v >> 12) & 0x3F]);
    out.push_back('=');
    out.push_back('=');
  } else if (rem == 2) {
    const std::uint32_t v = (static_cast<std::uint32_t>(data[i]) << 16) |
                            (static_cast<std::uint32_t>(data[i + 1]) << 8);
    out.push_back(kBase64[(v >> 18) & 0x3F]);
    out.push_back(kBase64[(v >> 12) & 0x3F]);
    out.push_back(kBase64[(v >> 6) & 0x3F]);
    out.push_back('=');
  }
  return out;
}

std::optional<Bytes> base64_decode(std::string_view text) {
  Bytes out;
  std::uint32_t buffer = 0;
  int bits = 0;
  for (char c : text) {
    if (std::isspace(static_cast<unsigned char>(c)) != 0) continue;
    if (c == '=') break;
    const int v = base64_value(c);
    if (v < 0) return std::nullopt;
    buffer = (buffer << 6) | static_cast<std::uint32_t>(v);
    bits += 6;
    if (bits >= 8) {
      bits -= 8;
      out.push_back(static_cast<std::uint8_t>((buffer >> bits) & 0xFF));
    }
  }
  return out;
}

}  // namespace dfx
