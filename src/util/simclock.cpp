#include "util/simclock.h"

#include <cstdio>
#include <stdexcept>

namespace dfx {
namespace {

constexpr bool is_leap(int y) {
  return (y % 4 == 0 && y % 100 != 0) || y % 400 == 0;
}

constexpr int kDaysInMonth[12] = {31, 28, 31, 30, 31, 30,
                                  31, 31, 30, 31, 30, 31};

int days_in_month(int y, int m) {
  if (m == 2 && is_leap(y)) return 29;
  return kDaysInMonth[m - 1];
}

}  // namespace

void SimClock::advance(UnixTime delta) {
  if (delta < 0) throw std::invalid_argument("SimClock::advance: negative");
  now_ += delta;
}

void SimClock::advance_to(UnixTime t) {
  if (t < now_) throw std::invalid_argument("SimClock::advance_to: backward");
  now_ = t;
}

std::string format_dnssec_time(UnixTime t) {
  // Civil-time conversion without <ctime> to stay locale/thread safe.
  std::int64_t days = t / kDay;
  std::int64_t secs = t % kDay;
  if (secs < 0) {
    secs += kDay;
    days -= 1;
  }
  int year = 1970;
  while (true) {
    const int ydays = is_leap(year) ? 366 : 365;
    if (days >= ydays) {
      days -= ydays;
      ++year;
    } else {
      break;
    }
  }
  int month = 1;
  while (days >= days_in_month(year, month)) {
    days -= days_in_month(year, month);
    ++month;
  }
  const int day = static_cast<int>(days) + 1;
  const int hh = static_cast<int>(secs / 3600);
  const int mm = static_cast<int>((secs % 3600) / 60);
  const int ss = static_cast<int>(secs % 60);
  char buf[40];
  std::snprintf(buf, sizeof buf, "%04d%02d%02d%02d%02d%02d", year, month, day,
                hh, mm, ss);
  return buf;
}

UnixTime parse_dnssec_time(const std::string& text) {
  if (text.size() != 14) return -1;
  for (char c : text) {
    if (c < '0' || c > '9') return -1;
  }
  const int year = std::stoi(text.substr(0, 4));
  const int month = std::stoi(text.substr(4, 2));
  const int day = std::stoi(text.substr(6, 2));
  const int hh = std::stoi(text.substr(8, 2));
  const int mm = std::stoi(text.substr(10, 2));
  const int ss = std::stoi(text.substr(12, 2));
  if (year < 1970 || month < 1 || month > 12) return -1;
  if (day < 1 || day > days_in_month(year, month)) return -1;
  if (hh > 23 || mm > 59 || ss > 59) return -1;
  std::int64_t days = 0;
  for (int y = 1970; y < year; ++y) days += is_leap(y) ? 366 : 365;
  for (int m = 1; m < month; ++m) days += days_in_month(year, m);
  days += day - 1;
  return days * kDay + hh * 3600 + mm * 60 + ss;
}

}  // namespace dfx
