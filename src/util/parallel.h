// Bounded work-stealing thread pool with deterministic data-parallel loops.
//
// The pool powers the per-domain sharding of corpus generation
// (`dataset/generator.cpp`) and the Table/Figure analyses
// (`measure/measure.cpp`). Three guarantees shape the design:
//
//   1. **Determinism.** `parallel_for`/`parallel_map`/`parallel_reduce`
//      split an index range into fixed-size chunks whose boundaries depend
//      only on (n, grain) — never on the thread count — and reductions
//      merge chunk results in ascending chunk order. Results are therefore
//      bit-identical to a serial run, whatever the scheduling.
//   2. **Bounded queues.** Each worker owns a deque capped at
//      `kMaxQueuedPerWorker`; a submission that would overflow runs the
//      task inline in the submitting thread (backpressure, never
//      unbounded memory).
//   3. **Work stealing.** Workers pop their own deque LIFO and steal FIFO
//      from their neighbours; the submitting thread participates in the
//      batch instead of blocking idle.
//
// Thread-safety: a ThreadPool may execute batches submitted concurrently
// from multiple threads. Reconfiguring the *global* pool
// (`set_global_thread_count`) while batches are in flight is undefined —
// reconfigure only between parallel regions (the bench sweep does exactly
// this). Loop bodies must not retain references to chunk-local state
// beyond their call.
//
// Worker threads and RNG: never share an `Rng` across loop iterations that
// may land on different threads — derive one per shard with
// `Rng::for_shard` (see util/rng.h).
#pragma once

#include <cstddef>
#include <functional>
#include <memory>
#include <type_traits>
#include <utility>
#include <vector>

namespace dfx {

class ThreadPool {
 public:
  /// A pool advertising `threads` lanes of parallelism spawns `threads - 1`
  /// workers: the thread that submits a batch always executes chunks too.
  /// `threads <= 1` means fully inline, serial execution.
  explicit ThreadPool(unsigned threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Total parallel lanes (workers + the submitting thread).
  unsigned thread_count() const { return threads_; }

  /// Execute `task(k)` for every k in [0, task_count). Blocks until all
  /// tasks finished; rethrows the first exception a task raised. Tasks may
  /// run in any order on any lane — determinism comes from keying results
  /// by k, which the loop templates below do.
  void run_batch(std::size_t task_count,
                 const std::function<void(std::size_t)>& task);

  /// The process-wide pool, created on first use with `DFX_THREADS` (env)
  /// or `std::thread::hardware_concurrency()` lanes.
  static ThreadPool& global();

  /// Rebuild the global pool with `threads` lanes (0 = auto). Call only
  /// between parallel regions.
  static void set_global_thread_count(unsigned threads);

  /// Lane count the next `global()` call will use.
  static unsigned resolved_global_thread_count();

  /// Per-worker deque cap; submissions beyond it run inline.
  static constexpr std::size_t kMaxQueuedPerWorker = 4096;

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;  // null when the pool runs fully inline
  unsigned threads_ = 1;
};

namespace parallel_detail {

/// Chunk boundaries depend only on (n, grain): chunk c covers
/// [c*grain, min(n, (c+1)*grain)).
inline std::size_t chunk_count(std::size_t n, std::size_t grain) {
  if (n == 0) return 0;
  if (grain == 0) grain = 1;
  return (n + grain - 1) / grain;
}

}  // namespace parallel_detail

/// Default chunk size for domain-granular loops. Fixed (not derived from
/// the thread count) so chunk boundaries — and with them reduction order —
/// are identical at every thread count.
inline constexpr std::size_t kDefaultGrain = 128;

/// Run `body(begin, end)` over disjoint sub-ranges covering [0, n).
template <typename Body>
void parallel_for(ThreadPool& pool, std::size_t n, std::size_t grain,
                  Body&& body) {
  if (n == 0) return;
  if (grain == 0) grain = 1;
  const std::size_t chunks = parallel_detail::chunk_count(n, grain);
  pool.run_batch(chunks, [&](std::size_t c) {
    const std::size_t begin = c * grain;
    const std::size_t end = begin + grain < n ? begin + grain : n;
    body(begin, end);
  });
}

/// Map [0, n) through `fn`, returning results in index order.
template <typename Fn>
auto parallel_map(ThreadPool& pool, std::size_t n, std::size_t grain,
                  Fn&& fn) {
  using R = std::decay_t<decltype(fn(std::size_t{0}))>;
  static_assert(!std::is_same_v<R, bool>,
                "bool would hit the std::vector<bool> proxy; wrap it");
  std::vector<R> out(n);
  parallel_for(pool, n, grain, [&](std::size_t begin, std::size_t end) {
    for (std::size_t i = begin; i < end; ++i) out[i] = fn(i);
  });
  return out;
}

/// Chunked reduction: each chunk folds its indices into a default-
/// constructed `Acc` via `body(acc, i)` (ascending i), then chunk
/// accumulators merge in ascending chunk order via `merge(into, from)`.
/// With the same grain, the result is bit-identical at every thread count
/// — including floating-point accumulations, whose operation order is
/// fully pinned.
template <typename Acc, typename Body, typename Merge>
Acc parallel_reduce(ThreadPool& pool, std::size_t n, std::size_t grain,
                    Body&& body, Merge&& merge) {
  if (n == 0) return Acc{};
  if (grain == 0) grain = 1;
  const std::size_t chunks = parallel_detail::chunk_count(n, grain);
  std::vector<Acc> partial(chunks);
  pool.run_batch(chunks, [&](std::size_t c) {
    const std::size_t begin = c * grain;
    const std::size_t end = begin + grain < n ? begin + grain : n;
    Acc& acc = partial[c];
    for (std::size_t i = begin; i < end; ++i) body(acc, i);
  });
  Acc out = std::move(partial[0]);
  for (std::size_t c = 1; c < chunks; ++c) {
    merge(out, std::move(partial[c]));
  }
  return out;
}

}  // namespace dfx
