// Thread-safety capability annotations and the annotated Mutex/MutexLock
// pair every module outside util/ must use for shared state.
//
// Under clang the DFX_* macros expand to the thread-safety-analysis
// attributes, making "data guarded by lock" a property of the type system:
// a `-Wthread-safety -Werror` build (the `clang-tsa` CI job) rejects any
// access to a `DFX_GUARDED_BY` field without its mutex held and any call
// to a `DFX_REQUIRES` function outside the lock. Under gcc (and any other
// compiler) the macros expand to nothing and `Mutex`/`MutexLock` behave
// exactly like `std::mutex`/`std::lock_guard`.
//
// House rules (see docs/STATIC_ANALYSIS.md, "Thread-safety annotations"):
//
//   - Every field shared between threads gets `DFX_GUARDED_BY(mu_)`.
//   - A private helper that assumes the caller already locked is annotated
//     `DFX_REQUIRES(mu_)` — never documented-by-comment only.
//   - A public method that must NOT be called with the lock held (it locks
//     internally) is annotated `DFX_EXCLUDES(mu_)`.
//   - Raw `std::mutex`/`std::lock_guard` outside `src/util/` is a lint
//     error (`raw-std-mutex`).
//
// In Debug and sanitizer builds each Mutex additionally feeds the runtime
// lock-order checker (util/lockgraph.h); release builds compile the hooks
// out entirely.
#pragma once

#include <mutex>
#include <source_location>

#include "util/lockgraph.h"

// Clang's analysis attributes; no-ops elsewhere. Attribute reference:
// https://clang.llvm.org/docs/ThreadSafetyAnalysis.html
#if defined(__clang__)
#define DFX_THREAD_ANNOTATION(x) __attribute__((x))
#else
#define DFX_THREAD_ANNOTATION(x)
#endif

/// Marks a type as a lockable capability ("mutex" names the capability
/// kind in diagnostics).
#define DFX_CAPABILITY(x) DFX_THREAD_ANNOTATION(capability(x))

/// Marks an RAII type whose constructor acquires and destructor releases.
#define DFX_SCOPED_CAPABILITY DFX_THREAD_ANNOTATION(scoped_lockable)

/// Field may only be read/written with the given capability held.
#define DFX_GUARDED_BY(x) DFX_THREAD_ANNOTATION(guarded_by(x))

/// Pointer field: the *pointee* is guarded; the pointer itself is not.
#define DFX_PT_GUARDED_BY(x) DFX_THREAD_ANNOTATION(pt_guarded_by(x))

/// Function requires the capability to be held by the caller (and does not
/// release it). Use for `_locked()` helpers.
#define DFX_REQUIRES(...) \
  DFX_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))

/// Function acquires the capability (empty argument list = `this`).
#define DFX_ACQUIRE(...) \
  DFX_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))

/// Function releases the capability (empty argument list = `this`).
#define DFX_RELEASE(...) \
  DFX_THREAD_ANNOTATION(release_capability(__VA_ARGS__))

/// Function acquires the capability when it returns the given value.
#define DFX_TRY_ACQUIRE(...) \
  DFX_THREAD_ANNOTATION(try_acquire_capability(__VA_ARGS__))

/// Caller must NOT hold the capability — the function (re)locks it itself.
/// Prevents self-deadlock on non-recursive mutexes.
#define DFX_EXCLUDES(...) DFX_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))

/// Function returns a reference to the named capability.
#define DFX_RETURN_CAPABILITY(x) DFX_THREAD_ANNOTATION(lock_returned(x))

/// Escape hatch: disables the analysis for one function. Requires a
/// comment explaining why the analysis cannot see the invariant.
#define DFX_NO_THREAD_SAFETY_ANALYSIS \
  DFX_THREAD_ANNOTATION(no_thread_safety_analysis)

namespace dfx {

/// std::mutex with (a) capability annotations so clang can check lock
/// discipline at compile time and (b) lock-order-graph hooks so Debug and
/// sanitizer builds abort on the first inconsistent acquisition order
/// (potential deadlock) instead of waiting for the interleaving that
/// actually deadlocks. Satisfies BasicLockable/Lockable, so it works with
/// `std::condition_variable_any`.
class DFX_CAPABILITY("mutex") Mutex {
 public:
  Mutex() : graph_id_(lockgraph::register_mutex()) {}
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void lock([[maybe_unused]] const std::source_location loc =
                std::source_location::current()) DFX_ACQUIRE() {
    // Order check happens *before* blocking: a real ABBA interleaving
    // aborts with the two sites instead of hanging in mu_.lock().
    lockgraph::on_acquire(graph_id_, loc);
    mu_.lock();
  }

  void unlock() DFX_RELEASE() {
    // Copy the id first: the moment mu_ is released, the owner may destroy
    // this Mutex (the stack-allocated-batch idiom in parallel.cpp relies on
    // exactly that), so no member may be touched after mu_.unlock().
    const lockgraph::MutexId id = graph_id_;
    mu_.unlock();
    lockgraph::on_release(id);
  }

  bool try_lock([[maybe_unused]] const std::source_location loc =
                    std::source_location::current()) DFX_TRY_ACQUIRE(true) {
    if (!mu_.try_lock()) return false;
    // A successful try_lock cannot deadlock, but it still establishes an
    // order other threads may rely on, so it is recorded (not checked).
    lockgraph::on_try_acquire(graph_id_, loc);
    return true;
  }

 private:
  std::mutex mu_;
  [[maybe_unused]] lockgraph::MutexId graph_id_;
};

/// RAII scope lock over Mutex, the analogue of std::lock_guard. The
/// DFX_SCOPED_CAPABILITY annotation tells clang the capability is held for
/// the lifetime of the object.
class DFX_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu, const std::source_location loc =
                                    std::source_location::current())
      DFX_ACQUIRE(mu)
      : mu_(mu) {
    mu_.lock(loc);
  }
  ~MutexLock() DFX_RELEASE() { mu_.unlock(); }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex& mu_;
};

}  // namespace dfx
