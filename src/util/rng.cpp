#include "util/rng.h"

#include <bit>
#include <cmath>
#include <stdexcept>

namespace dfx {
namespace {

// splitmix64: seeds the xoshiro state from a single 64-bit value.
std::uint64_t splitmix64(std::uint64_t& x) {
  x += 0x9E3779B97F4A7C15ULL;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

std::uint64_t fnv1a(std::string_view s) {
  std::uint64_t h = 0xCBF29CE484222325ULL;
  for (char c : s) {
    h ^= static_cast<std::uint8_t>(c);
    h *= 0x100000001B3ULL;
  }
  return h;
}

}  // namespace

Rng::Rng(std::uint64_t seed) {
  std::uint64_t x = seed;
  for (auto& s : state_) s = splitmix64(x);
}

std::uint64_t Rng::next_u64() {
  const std::uint64_t result = std::rotl(state_[1] * 5, 7) * 9;
  const std::uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = std::rotl(state_[3], 45);
  return result;
}

std::uint64_t Rng::uniform(std::uint64_t bound) {
  if (bound == 0) throw std::invalid_argument("Rng::uniform: bound == 0");
  // Rejection sampling to avoid modulo bias.
  const std::uint64_t limit = bound * (UINT64_MAX / bound);
  std::uint64_t v = next_u64();
  while (v >= limit) v = next_u64();
  return v % bound;
}

std::int64_t Rng::uniform_range(std::int64_t lo, std::int64_t hi) {
  if (lo > hi) throw std::invalid_argument("Rng::uniform_range: lo > hi");
  const std::uint64_t span = static_cast<std::uint64_t>(hi - lo) + 1;
  return lo + static_cast<std::int64_t>(span == 0 ? next_u64() : uniform(span));
}

double Rng::uniform01() {
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

bool Rng::chance(double p) { return uniform01() < p; }

double Rng::exponential(double mean) {
  double u = uniform01();
  if (u <= 0.0) u = 0x1.0p-53;
  return -mean * std::log(u);
}

double Rng::lognormal(double median, double sigma) {
  // Box-Muller normal, then exponentiate around log(median).
  double u1 = uniform01();
  if (u1 <= 0.0) u1 = 0x1.0p-53;
  const double u2 = uniform01();
  const double z =
      std::sqrt(-2.0 * std::log(u1)) * std::cos(6.283185307179586 * u2);
  return std::exp(std::log(median) + sigma * z);
}

void Rng::fill(std::span<std::uint8_t> out) {
  std::size_t i = 0;
  while (i < out.size()) {
    std::uint64_t v = next_u64();
    for (int b = 0; b < 8 && i < out.size(); ++b, ++i) {
      out[i] = static_cast<std::uint8_t>(v);
      v >>= 8;
    }
  }
}

std::size_t Rng::weighted_pick(std::span<const double> weights) {
  double total = 0.0;
  for (double w : weights) total += w;
  if (total <= 0.0) throw std::invalid_argument("weighted_pick: zero total");
  double target = uniform01() * total;
  for (std::size_t i = 0; i < weights.size(); ++i) {
    target -= weights[i];
    if (target < 0.0) return i;
  }
  return weights.size() - 1;
}

Rng Rng::fork(std::string_view label) {
  return Rng(next_u64() ^ fnv1a(label));
}

Rng Rng::for_shard(std::uint64_t seed, std::string_view label,
                   std::uint64_t index) {
  // Each component passes through a full splitmix64 round before mixing,
  // so (seed, label, index) triples that differ in one coordinate land in
  // decorrelated states; the Rng constructor then runs its own splitmix
  // chain on top.
  std::uint64_t a = seed;
  std::uint64_t b = fnv1a(label);
  std::uint64_t c = index + 0x9E3779B97F4A7C15ULL;
  return Rng(splitmix64(a) ^ splitmix64(b) ^ splitmix64(c));
}

}  // namespace dfx
