// Fail-fast contract macros for untrusted-input hot paths.
//
// These guard *internal invariants* — conditions that can only be false when
// the programme itself is wrong, never merely because network input is
// malformed. Parsers stay total (they return nullopt/error on bad input);
// contracts catch the cases where a parser's own bookkeeping went wrong, a
// cast would silently truncate, or a loop could run unbounded on crafted
// input (KeyTrap-style complexity blowups).
//
// Thread-safety: the macros keep no shared state; a failing check writes to
// stderr and aborts, which is safe to trigger from any thread (including
// thread-pool workers, where the abort surfaces before the batch returns).
//
//   DFX_CHECK(cond)                 always-on assertion; aborts with
//   DFX_CHECK(cond, "fmt", ...)     file:line, the expression and an
//                                   optional printf-formatted message.
//   DFX_DCHECK(cond, ...)           same, but compiled out when
//                                   DFX_ENABLE_DCHECKS is 0 (defaults to on
//                                   in debug builds, off under NDEBUG).
//   DFX_BOUNDED_LOOP(guard, bound)  declares a loop guard before a loop;
//                                   call guard.tick() each iteration — the
//                                   process aborts once `bound` is exceeded.
//
// Usage rules are documented in docs/STATIC_ANALYSIS.md.
#pragma once

#include <cstdint>

namespace dfx::check_detail {

/// Print "file:line: kind failed: expr — message" to stderr and abort.
[[noreturn]] void check_fail(const char* file, int line, const char* kind,
                             const char* expr, const char* fmt = nullptr, ...)
#if defined(__GNUC__) || defined(__clang__)
    __attribute__((format(printf, 5, 6)))
#endif
    ;

/// Iteration cap for loops whose trip count an attacker could otherwise
/// inflate. Declare via DFX_BOUNDED_LOOP so the file:line is captured.
class LoopBound {
 public:
  LoopBound(std::uint64_t bound, const char* file, int line)
      : bound_(bound), file_(file), line_(line) {}

  void tick() {
    if (++count_ > bound_) trip();
  }

  std::uint64_t count() const { return count_; }

 private:
  [[noreturn]] void trip() const;

  std::uint64_t count_ = 0;
  std::uint64_t bound_;
  const char* file_;
  int line_;
};

}  // namespace dfx::check_detail

#define DFX_CHECK(cond, ...)                                              \
  (static_cast<bool>(cond)                                                \
       ? static_cast<void>(0)                                             \
       : ::dfx::check_detail::check_fail(__FILE__, __LINE__, "DFX_CHECK", \
                                         #cond __VA_OPT__(, ) __VA_ARGS__))

#ifndef DFX_ENABLE_DCHECKS
#ifdef NDEBUG
#define DFX_ENABLE_DCHECKS 0
#else
#define DFX_ENABLE_DCHECKS 1
#endif
#endif

#if DFX_ENABLE_DCHECKS
#define DFX_DCHECK(cond, ...)                                              \
  (static_cast<bool>(cond)                                                 \
       ? static_cast<void>(0)                                              \
       : ::dfx::check_detail::check_fail(__FILE__, __LINE__, "DFX_DCHECK", \
                                         #cond __VA_OPT__(, ) __VA_ARGS__))
#else
// Keep the condition syntactically checked but never evaluated.
#define DFX_DCHECK(cond, ...) static_cast<void>(sizeof(!(cond)))
#endif

// Parenthesised (not braced) construction: the commas stay protected when
// this macro is expanded inside another macro's argument list.
#define DFX_BOUNDED_LOOP(guard, bound)     \
  ::dfx::check_detail::LoopBound guard(    \
      static_cast<std::uint64_t>(bound), __FILE__, __LINE__)

// Taint annotations for dfixer_lint's dataflow engine (docs/STATIC_ANALYSIS
// "Dataflow engine"). Both expand to nothing — they exist purely so the
// analyzer can tell attacker-controlled values apart from trusted ones.
//
//   DFX_TAINTED            on a function declaration: its return value is
//                          raw wire data. On a struct field: the field holds
//                          raw wire data wherever it is read. On a
//                          parameter: the argument arrives tainted in this
//                          function's body.
//   DFX_TAINT_PASSTHROUGH  on a function declaration: the result is tainted
//                          exactly when one of its arguments is.
//
// Tainted values must pass a DFX_CHECK/DFX_DCHECK or an explicit bound test
// on every path before indexing a buffer, sizing an allocation, or bounding
// a loop; the `unchecked-taint-flow` rule enforces this.
#define DFX_TAINTED
#define DFX_TAINT_PASSTHROUGH

// Hot-path cost annotations for dfixer_lint's interprocedural pass
// (docs/STATIC_ANALYSIS.md, "Interprocedural analysis"). Both expand to
// nothing — they only exist for the analyzer.
//
//   DFX_HOT_PATH       on a function declaration: the function sits on the
//                      packet-serving fast path. The `hot-path-cost` rule
//                      rejects it when it — or anything it transitively
//                      calls — may allocate, acquire a writer mutex, or
//                      throw.
//   DFX_COLD(reason)   on a function declaration: exempt the function (and
//                      everything it calls) from hot-path cost accounting.
//                      Use it for genuinely cold branches reachable from a
//                      hot function (cache-miss/error paths) or for audited
//                      inherent costs. The reason must be a string literal;
//                      a DFX_COLD with no reason is itself a
//                      `hot-path-cost` violation.
//
// Inherent costs inside a DFX_HOT_PATH function's own body (e.g. the one
// output-buffer allocation of an encoder) are waived with a
// `// dfx-lint: allow(hot-path-cost): reason` comment on the definition.
#define DFX_HOT_PATH
#define DFX_COLD(reason)
